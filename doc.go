// Package cdbtune is a from-scratch Go reproduction of "An End-to-End
// Automatic Cloud Database Tuning System Using Deep Reinforcement
// Learning" (CDBTune, SIGMOD 2019): a DDPG agent that maps 63 internal
// database metrics to full knob configurations, trained try-and-error
// against a simulated cloud-database fleet, with the OtterTune, BestConfig
// and expert-DBA baselines the paper compares against.
//
// The public entry points live under cmd/ (the cdbtune and expdriver
// binaries) and examples/; the library packages are under internal/ — see
// README.md for the architecture overview and DESIGN.md for the paper-to-
// package mapping. bench_test.go in this directory regenerates every table
// and figure of the paper's evaluation.
package cdbtune
