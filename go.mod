module cdbtune

go 1.22
