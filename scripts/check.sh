#!/bin/sh
# check.sh runs the repo's full verification gate: static analysis, the
# full test suite (shuffled, to catch inter-test state leaks), the seeded
# chaos smoke scenario, and a race-detector pass. The parallel trainer shares
# one agent across worker goroutines, so -race is part of the standard
# gate, not an optional extra. The race pass runs with -short: the long
# expr integration test exceeds the per-package timeout under race
# instrumentation, and every concurrency-sensitive test (internal/core,
# internal/rl, internal/rl/ddpg) runs in short mode too.
set -eu
cd "$(dirname "$0")/.."

echo "== package docs =="
# Every internal package keeps its package-level contract in a doc.go, so
# the documented invariants (buffer ownership, concurrency, timeline
# semantics, drift thresholds) have one canonical home.
for d in internal/*/ internal/rl/ddpg/ internal/simdb/lsm/; do
    if [ ! -f "${d}doc.go" ]; then
        echo "missing ${d}doc.go" >&2
        exit 1
    fi
done

echo "== os.Rename lint =="
# Atomic-write discipline: every durable file lands through nn.WriteAtomic
# (temp file, fsync, rename, directory fsync) — the lease files, change
# log, registry entries and fleet journal all depend on never observing a
# torn file. A bare os.Rename anywhere else skips the fsyncs and breaks
# that contract on crash.
rename_hits="$(grep -rn 'os\.Rename' --include='*.go' . \
    | grep -v '^\./internal/nn/io\.go:' \
    | grep -v '^\./internal/vfs/os\.go:' || true)"
if [ -n "$rename_hits" ]; then
    echo "direct os.Rename outside the atomic-write helper (use nn.WriteAtomic):" >&2
    echo "$rename_hits" >&2
    exit 1
fi

echo "== vfs interposition lint =="
# Crash-testability discipline: every durable path goes through a vfs.FS
# handle so the crashtest harness can interpose fault injection and
# power-cut simulation. A direct os.* filesystem mutation in a ported
# package is invisible to the harness — it would silently shrink the
# torture suite's coverage. Only the vfs passthrough (internal/vfs/os.go)
# may touch the os package; tests may use os.* for scaffolding.
vfs_hits="$(grep -rn 'os\.\(OpenFile\|Rename\|Remove\|RemoveAll\|CreateTemp\|ReadFile\|WriteFile\|MkdirAll\|Mkdir\|ReadDir\|Link\|Truncate\)' \
        --include='*.go' \
        internal/registry internal/fleet internal/crashtest internal/nn/io.go internal/core/checkpoint.go \
    | grep -v '_test\.go:' \
    | grep -v ':[0-9]*:[[:space:]]*//' || true)"
if [ -n "$vfs_hits" ]; then
    echo "direct os filesystem call in a crash-tested package (route through vfs.FS):" >&2
    echo "$vfs_hits" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go test (shuffled) =="
go test -shuffle=on -timeout 120s ./...

echo "== chaos smoke =="
go test -count=1 -timeout 120s -run 'TestChaosSmoke|TestTuningRequestSurvivesCrashStorm' ./internal/controller/

echo "== divergence smoke =="
go test -count=1 -timeout 120s -run 'TestDivergence' ./internal/core/

echo "== serve smoke =="
go test -count=1 -timeout 120s -run 'TestServeSmoke' ./internal/server/

echo "== drift smoke =="
go test -count=1 -timeout 120s -run 'TestDriftSmoke' ./internal/core/

echo "== lsm smoke =="
# A short seeded DDPG tune on the LSM storage engine: tuned must beat
# defaults and at least one write-stall event must be observed.
go test -count=1 -timeout 120s -run 'TestLSMSmoke' ./internal/simdb/lsm/

echo "== crash smoke =="
# Systematic power-cut exploration: every crashtest workload, a crash
# before every mutating filesystem op, strict plus torn disk images at
# each point, zero tolerated invariant violations — plus the sensitivity
# test proving the harness catches a re-introduced torn-tail bug.
go test -count=1 -timeout 120s -run 'TestCrashSmoke|TestHarnessCatchesTornTailBug' ./internal/crashtest/

echo "== fleet smoke =="
# The multi-process robustness scenario: 3 serve processes, 50 tenants,
# one SIGKILL and one lease stall mid-run; must end with zero lost jobs,
# a recorded failover via lease steal, and a CRC-clean shared registry.
go run ./cmd/loadgen

echo "== go test -race (short) =="
go test -race -short -shuffle=on -timeout 20m ./...

echo "== bench smoke (1 iteration) =="
go test -run '^$' -bench 'BenchmarkMemoryAddSample|BenchmarkActBatched' -benchtime=1x -cpu 4 .

echo "== hot-path bench smoke =="
# A short-benchtime benchjson emission into a scratch file, validated by
# its own -check mode, plus a -check of the tracked BENCH_hotpath.json:
# proves the whole make-bench pipeline (measure -> JSON schema -> check)
# still works without paying for a full measurement. The scratch numbers
# are noisy by design and are discarded.
hotpath_tmp="$(mktemp /tmp/bench_hotpath.XXXXXX.json)"
trap 'rm -f "$hotpath_tmp"' EXIT
go run ./cmd/benchjson -quick -out "$hotpath_tmp"
go run ./cmd/benchjson -check "$hotpath_tmp"
if [ -f BENCH_hotpath.json ]; then
    go run ./cmd/benchjson -check BENCH_hotpath.json
fi
