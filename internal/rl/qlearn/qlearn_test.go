package qlearn

import (
	"math/rand"
	"testing"
)

func TestDiscretizeState(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.StateBins = 4
	a := New(cfg)
	tests := []struct {
		in   []float64
		want string
	}{
		{[]float64{0, 0.99}, "03"},
		{[]float64{0.25, 0.5}, "12"},
		{[]float64{1.0, -0.5}, "30"}, // clamped at both ends
	}
	for _, tc := range tests {
		if got := a.DiscretizeState(tc.in); got != tc.want {
			t.Errorf("DiscretizeState(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestUpdateBellman(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Alpha = 0.5
	cfg.Gamma = 0.9
	a := New(cfg)
	s, next := []float64{0.1}, []float64{0.9}
	// Seed next state's Q so max is 2.
	nq := a.row(a.DiscretizeState(next))
	nq[1] = 2
	a.Update(s, 0, 1, next, false)
	// Q(s,0) = 0 + 0.5*(1 + 0.9*2 − 0) = 1.4
	if got := a.row(a.DiscretizeState(s))[0]; got != 1.4 {
		t.Fatalf("Q(s,0) = %v, want 1.4", got)
	}
	// Terminal transition ignores bootstrap.
	a2 := New(cfg)
	a2.Update(s, 0, 1, next, true)
	if got := a2.row(a2.DiscretizeState(s))[0]; got != 0.5 {
		t.Fatalf("terminal Q(s,0) = %v, want 0.5", got)
	}
}

func TestUpdatePanicsOnBadAction(t *testing.T) {
	a := New(DefaultConfig(2))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.Update([]float64{0}, 5, 0, []float64{0}, true)
}

func TestLearnsBandit(t *testing.T) {
	cfg := DefaultConfig(3)
	cfg.Seed = 5
	a := New(cfg)
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 3000; i++ {
		s := []float64{rng.Float64()}
		act := a.ActEpsilonGreedy(s)
		var r float64
		if s[0] < 0.5 && act == 1 {
			r = 1
		}
		if s[0] >= 0.5 && act == 2 {
			r = 1
		}
		a.Update(s, act, r, s, true)
	}
	if got := a.Act([]float64{0.2}); got != 1 {
		t.Fatalf("low-state action = %d, want 1", got)
	}
	if got := a.Act([]float64{0.8}); got != 2 {
		t.Fatalf("high-state action = %d, want 2", got)
	}
}

// TestTableExplosion demonstrates the §3.3 state-space argument: with 63
// state dimensions, almost every observed state is distinct, so the table
// grows linearly with experience and generalizes nothing.
func TestTableExplosion(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.StateBins = 10
	a := New(cfg)
	rng := rand.New(rand.NewSource(7))
	const n = 500
	for i := 0; i < n; i++ {
		s := make([]float64, 63)
		for j := range s {
			s[j] = rng.Float64()
		}
		a.Update(s, 0, 0, s, true)
	}
	if a.TableSize() != n {
		t.Fatalf("table size = %d, want %d (every 63-dim state distinct)", a.TableSize(), n)
	}
}

func TestEpsilonFloor(t *testing.T) {
	a := New(DefaultConfig(2))
	for i := 0; i < 100000; i++ {
		a.ActEpsilonGreedy([]float64{0})
	}
	if a.Epsilon != a.cfg.EpsilonEnd {
		t.Fatalf("epsilon = %v, want %v", a.Epsilon, a.cfg.EpsilonEnd)
	}
}
