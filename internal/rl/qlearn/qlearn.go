// Package qlearn implements tabular Q-Learning (Watkins 1989) as described
// in §3.3 of the paper (Eq. 1). The paper uses it to argue that a Q-table
// cannot hold the database's state space (100^63 states for 63 metrics
// discretized into 100 bins); this implementation makes that argument
// measurable: states are coarsely discretized and hashed, and the §3.3
// ablation bench reports table blow-up and tuning quality against DDPG.
package qlearn

import (
	"fmt"
	"math/rand"
)

// Config holds the Q-Learning hyperparameters of Eq. 1.
type Config struct {
	NumActions int
	Alpha      float64 // learning rate
	Gamma      float64 // discount factor

	// StateBins is the number of discretization bins per state dimension
	// used by DiscretizeState.
	StateBins int

	EpsilonStart float64
	EpsilonEnd   float64
	EpsilonDecay float64

	Seed int64
}

// DefaultConfig mirrors the paper's α = 0.001 learning rate and γ = 0.99
// discount (Table 4) with a more practical tabular learning rate.
func DefaultConfig(numActions int) Config {
	return Config{
		NumActions:   numActions,
		Alpha:        0.1,
		Gamma:        0.99,
		StateBins:    4,
		EpsilonStart: 1.0,
		EpsilonEnd:   0.05,
		EpsilonDecay: 0.995,
		Seed:         1,
	}
}

// Agent is a tabular Q-learner keyed by discretized state strings.
type Agent struct {
	cfg     Config
	rng     *rand.Rand
	table   map[string][]float64
	Epsilon float64
}

// New builds a tabular Q-learning agent.
func New(cfg Config) *Agent {
	return &Agent{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		table:   make(map[string][]float64),
		Epsilon: cfg.EpsilonStart,
	}
}

// DiscretizeState maps a normalized state vector (values in [0,1]) to a
// table key by binning each dimension into cfg.StateBins levels.
func (a *Agent) DiscretizeState(state []float64) string {
	key := make([]byte, len(state))
	for i, v := range state {
		b := int(v * float64(a.cfg.StateBins))
		if b >= a.cfg.StateBins {
			b = a.cfg.StateBins - 1
		}
		if b < 0 {
			b = 0
		}
		key[i] = byte('0' + b)
	}
	return string(key)
}

func (a *Agent) row(key string) []float64 {
	if q, ok := a.table[key]; ok {
		return q
	}
	q := make([]float64, a.cfg.NumActions)
	a.table[key] = q
	return q
}

// Act returns the greedy action for the discretized state.
func (a *Agent) Act(state []float64) int {
	q := a.row(a.DiscretizeState(state))
	best := 0
	for i, v := range q {
		if v > q[best] {
			best = i
		}
	}
	return best
}

// ActEpsilonGreedy explores with probability Epsilon, then decays it.
func (a *Agent) ActEpsilonGreedy(state []float64) int {
	eps := a.Epsilon
	a.Epsilon = a.Epsilon * a.cfg.EpsilonDecay
	if a.Epsilon < a.cfg.EpsilonEnd {
		a.Epsilon = a.cfg.EpsilonEnd
	}
	if a.rng.Float64() < eps {
		return a.rng.Intn(a.cfg.NumActions)
	}
	return a.Act(state)
}

// Update applies the Eq. 1 Bellman backup:
//
//	Q(s,a) ← Q(s,a) + α[r + γ·max_a' Q(s',a') − Q(s,a)]
func (a *Agent) Update(state []float64, action int, reward float64, next []float64, done bool) {
	if action < 0 || action >= a.cfg.NumActions {
		panic(fmt.Sprintf("qlearn: action %d out of range [0,%d)", action, a.cfg.NumActions))
	}
	q := a.row(a.DiscretizeState(state))
	var maxNext float64
	if !done {
		nq := a.row(a.DiscretizeState(next))
		maxNext = nq[0]
		for _, v := range nq[1:] {
			if v > maxNext {
				maxNext = v
			}
		}
	}
	td := reward + a.cfg.Gamma*maxNext - q[action]
	q[action] += a.cfg.Alpha * td
}

// TableSize reports the number of distinct discretized states seen, the
// quantity whose explosion §3.3 is about.
func (a *Agent) TableSize() int { return len(a.table) }
