// Package dqn implements a Deep Q-Network baseline (Mnih et al. 2013).
//
// The paper (§3.3) argues DQN cannot tune databases because discretizing K
// continuous knobs into m levels yields m^K actions. This implementation
// exists to demonstrate exactly that: it is usable for a handful of knobs
// with coarse levels, and the §3.3 ablation bench shows the action-space
// explosion and the resulting performance gap against DDPG.
package dqn

import (
	"math"
	"math/rand"

	"cdbtune/internal/mat"
	"cdbtune/internal/nn"
	"cdbtune/internal/rl"
)

// Config selects the DQN architecture and hyperparameters.
type Config struct {
	StateDim   int
	NumActions int
	Hidden     []int

	LR    float64
	Gamma float64

	BatchSize      int
	MemoryCapacity int
	MinMemory      int

	// Epsilon-greedy exploration schedule.
	EpsilonStart float64
	EpsilonEnd   float64
	EpsilonDecay float64

	// TargetSync is the number of training steps between hard target
	// network synchronizations.
	TargetSync int

	Seed int64
}

// DefaultConfig returns sensible defaults for stateDim inputs and
// numActions discrete outputs.
func DefaultConfig(stateDim, numActions int) Config {
	return Config{
		StateDim:       stateDim,
		NumActions:     numActions,
		Hidden:         []int{128, 64},
		LR:             1e-3,
		Gamma:          0.99,
		BatchSize:      32,
		MemoryCapacity: 50000,
		MinMemory:      64,
		EpsilonStart:   1.0,
		EpsilonEnd:     0.05,
		EpsilonDecay:   0.995,
		TargetSync:     100,
		Seed:           1,
	}
}

// Agent is a DQN learner over a discrete action set. Actions are indices
// into an action table the caller maintains (e.g. enumerated knob levels).
type Agent struct {
	cfg Config
	rng *rand.Rand

	net    *nn.Network
	target *nn.Network
	opt    *nn.Adam

	Memory  *rl.UniformMemory
	Epsilon float64

	trainSteps int
}

// New builds a DQN agent from cfg.
func New(cfg Config) *Agent {
	rng := rand.New(rand.NewSource(cfg.Seed))
	build := func() *nn.Network {
		var layers []nn.Layer
		in := cfg.StateDim
		for _, h := range cfg.Hidden {
			layers = append(layers, nn.NewDense(in, h), nn.NewReLU())
			in = h
		}
		layers = append(layers, nn.NewDense(in, cfg.NumActions))
		return nn.NewNetwork(layers...)
	}
	a := &Agent{
		cfg:     cfg,
		rng:     rng,
		net:     build(),
		target:  build(),
		Memory:  rl.NewUniformMemory(cfg.MemoryCapacity),
		Epsilon: cfg.EpsilonStart,
	}
	a.net.InitUniform(rng, 0.1)
	a.net.CopyTo(a.target)
	a.opt = nn.NewAdam(a.net, cfg.LR)
	return a
}

// QValues returns the Q estimate for every action in state s.
func (a *Agent) QValues(state []float64) []float64 {
	x := mat.FromSlice(1, a.cfg.StateDim, append([]float64(nil), state...))
	out := a.net.Forward(x, false)
	return append([]float64(nil), out.Data...)
}

// Act returns the greedy action for state s.
func (a *Agent) Act(state []float64) int { return mat.ArgMax(a.QValues(state)) }

// ActEpsilonGreedy explores with probability Epsilon, then decays it.
func (a *Agent) ActEpsilonGreedy(state []float64) int {
	defer func() {
		a.Epsilon = math.Max(a.cfg.EpsilonEnd, a.Epsilon*a.cfg.EpsilonDecay)
	}()
	if a.rng.Float64() < a.Epsilon {
		return a.rng.Intn(a.cfg.NumActions)
	}
	return a.Act(state)
}

// Observe stores a transition whose Action slice holds the single action
// index in Action[0].
func (a *Agent) Observe(state []float64, action int, reward float64, next []float64, done bool) {
	a.Memory.Add(rl.Transition{
		State:     state,
		Action:    []float64{float64(action)},
		Reward:    reward,
		NextState: next,
		Done:      done,
	})
}

// TrainStep performs one gradient update from a replayed batch, returning
// the Huber loss, or ok=false if the memory is too small.
func (a *Agent) TrainStep() (loss float64, ok bool) {
	if a.Memory.Len() < a.cfg.MinMemory || a.Memory.Len() < a.cfg.BatchSize {
		return 0, false
	}
	n := a.cfg.BatchSize
	batch, _, _ := a.Memory.Sample(a.rng, n)

	states := mat.New(n, a.cfg.StateDim)
	next := mat.New(n, a.cfg.StateDim)
	for i, t := range batch {
		copy(states.Row(i), t.State)
		copy(next.Row(i), t.NextState)
	}
	nextQ := a.target.Forward(next, false)
	q := a.net.Forward(states, true)

	// Build targets equal to predictions except at the taken action, so
	// the gradient flows only through Q(s, a_taken).
	target := q.Clone()
	for i, t := range batch {
		act := int(t.Action[0])
		y := t.Reward
		if !t.Done {
			maxNext := nextQ.Row(i)[mat.ArgMax(nextQ.Row(i))]
			y += a.cfg.Gamma * maxNext
		}
		target.Set(i, act, y)
	}
	a.net.ZeroGrad()
	l, grad := nn.HuberLoss(q, target, 1)
	a.net.Backward(grad)
	a.net.ClipGradients(5)
	a.opt.Step()

	a.trainSteps++
	if a.trainSteps%a.cfg.TargetSync == 0 {
		a.net.CopyTo(a.target)
	}
	return l, true
}

// TrainSteps reports the number of gradient updates applied.
func (a *Agent) TrainSteps() int { return a.trainSteps }
