package dqn

import (
	"math/rand"
	"testing"
)

func smallConfig(stateDim, actions int) Config {
	cfg := DefaultConfig(stateDim, actions)
	cfg.Hidden = []int{32}
	cfg.BatchSize = 16
	cfg.MinMemory = 32
	return cfg
}

func TestQValuesShape(t *testing.T) {
	a := New(smallConfig(3, 5))
	q := a.QValues([]float64{0.1, 0.2, 0.3})
	if len(q) != 5 {
		t.Fatalf("QValues len = %d, want 5", len(q))
	}
}

func TestTrainRefusesWhenEmpty(t *testing.T) {
	a := New(smallConfig(2, 3))
	if _, ok := a.TrainStep(); ok {
		t.Fatal("TrainStep should refuse with empty memory")
	}
}

func TestEpsilonDecays(t *testing.T) {
	a := New(smallConfig(2, 3))
	start := a.Epsilon
	for i := 0; i < 50; i++ {
		a.ActEpsilonGreedy([]float64{0, 0})
	}
	if a.Epsilon >= start {
		t.Fatalf("epsilon did not decay: %v -> %v", start, a.Epsilon)
	}
	for i := 0; i < 10000; i++ {
		a.ActEpsilonGreedy([]float64{0, 0})
	}
	if a.Epsilon != a.cfg.EpsilonEnd {
		t.Fatalf("epsilon = %v, want floor %v", a.Epsilon, a.cfg.EpsilonEnd)
	}
}

// TestLearnsContextualBandit trains DQN on a 2-state bandit: state 0 prefers
// action 0, state 1 prefers action 2.
func TestLearnsContextualBandit(t *testing.T) {
	cfg := smallConfig(1, 3)
	cfg.Seed = 3
	a := New(cfg)
	rng := rand.New(rand.NewSource(4))
	reward := func(s []float64, act int) float64 {
		if s[0] < 0.5 {
			if act == 0 {
				return 1
			}
			return 0
		}
		if act == 2 {
			return 1
		}
		return 0
	}
	for ep := 0; ep < 1500; ep++ {
		s := []float64{float64(rng.Intn(2))}
		act := a.ActEpsilonGreedy(s)
		r := reward(s, act)
		a.Observe(s, act, r, s, true)
		a.TrainStep()
	}
	if got := a.Act([]float64{0}); got != 0 {
		t.Fatalf("state 0 action = %d, want 0 (Q=%v)", got, a.QValues([]float64{0}))
	}
	if got := a.Act([]float64{1}); got != 2 {
		t.Fatalf("state 1 action = %d, want 2 (Q=%v)", got, a.QValues([]float64{1}))
	}
}

func TestTargetSyncHappens(t *testing.T) {
	cfg := smallConfig(1, 2)
	cfg.TargetSync = 1 // sync after every step: nets must agree exactly
	a := New(cfg)
	for i := 0; i < 64; i++ {
		a.Observe([]float64{0.5}, i%2, 1, []float64{0.5}, true)
	}
	if _, ok := a.TrainStep(); !ok {
		t.Fatal("TrainStep refused")
	}
	sp, tp := a.net.Params(), a.target.Params()
	for i := range sp {
		for j := range sp[i].Value.Data {
			if sp[i].Value.Data[j] != tp[i].Value.Data[j] {
				t.Fatal("target network not synced")
			}
		}
	}
}

func TestTrainCounter(t *testing.T) {
	a := New(smallConfig(1, 2))
	for i := 0; i < 64; i++ {
		a.Observe([]float64{0}, 0, 0, []float64{0}, true)
	}
	a.TrainStep()
	a.TrainStep()
	if a.TrainSteps() != 2 {
		t.Fatalf("TrainSteps = %d, want 2", a.TrainSteps())
	}
}
