package rl

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
)

func TestShardedRoundsToPowerOfTwo(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {5, 8}, {8, 8}, {9, 16},
	} {
		m := NewShardedMemory(64, tc.in, false)
		if got := m.ShardCount(); got != tc.want {
			t.Fatalf("shards %d rounded to %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestShardedAddLenTransitions(t *testing.T) {
	m := NewShardedMemory(64, 4, true)
	const n = 10
	for i := 0; i < n; i++ {
		m.Add(tr(float64(i)))
	}
	if m.Len() != n {
		t.Fatalf("Len = %d, want %d", m.Len(), n)
	}
	seen := make(map[float64]bool)
	for _, x := range m.Transitions() {
		seen[x.Reward] = true
	}
	if len(seen) != n {
		t.Fatalf("Transitions covered %d distinct rewards, want %d", len(seen), n)
	}
}

// Round-robin insertion must keep the pool's total capacity and evict the
// oldest entries per shard, like the single-lock ring buffers do globally.
func TestShardedEviction(t *testing.T) {
	m := NewShardedMemory(8, 2, false)
	for i := 0; i < 20; i++ {
		m.Add(tr(float64(i)))
	}
	if m.Len() != 8 {
		t.Fatalf("Len = %d, want capacity 8", m.Len())
	}
	for _, x := range m.Transitions() {
		if x.Reward < 12 {
			t.Fatalf("transition %v survived eviction; oldest 12 must be gone", x.Reward)
		}
	}
}

// Sample must return exactly n transitions with valid (shard, slot)
// indices, and uniform weights must all be 1.
func TestShardedUniformSample(t *testing.T) {
	m := NewShardedMemory(64, 4, false)
	for i := 0; i < 32; i++ {
		m.Add(tr(float64(i)))
	}
	rng := rand.New(rand.NewSource(7))
	batch, indices, weights := m.Sample(rng, 64)
	if len(batch) != 64 || len(indices) != 64 || len(weights) != 64 {
		t.Fatalf("sample sizes %d/%d/%d, want 64", len(batch), len(indices), len(weights))
	}
	for i, w := range weights {
		if w != 1 {
			t.Fatalf("uniform weight[%d] = %v, want 1", i, w)
		}
		if indices[i] < 0 {
			t.Fatalf("negative index %d", indices[i])
		}
	}
}

// Boosting one sampled index's priority must concentrate subsequent draws
// on that transition — i.e. UpdatePriorities must route (shard, slot)
// indices back to the right shard's sum tree.
func TestShardedPrioritySampling(t *testing.T) {
	m := NewShardedMemory(64, 4, true)
	const n = 32
	for i := 0; i < n; i++ {
		m.Add(tr(float64(i)))
	}
	rng := rand.New(rand.NewSource(9))
	batch, indices, _ := m.Sample(rng, 1)
	want := batch[0].Reward
	m.UpdatePriorities(indices[:1], []float64{1000})

	hits := 0
	const draws = 512
	b2, _, w2 := m.Sample(rng, draws)
	for i, x := range b2 {
		if x.Reward == want {
			hits++
			// The boosted transition is the most probable one, so its
			// importance weight must be the batch minimum (< 1 after
			// normalization by the max).
			if w2[i] >= 1 {
				t.Fatalf("boosted transition weight %v, want < 1", w2[i])
			}
		}
	}
	// p ≈ 1001^0.6/(1001^0.6+31) ≈ 0.67; demand well above uniform (1/32).
	if hits < draws/3 {
		t.Fatalf("boosted transition drawn %d/%d times, want ≥ %d", hits, draws, draws/3)
	}
}

// Sampling proportionally across shard masses must reproduce the
// unsharded uniform distribution: every transition roughly equally often.
func TestShardedUniformDistribution(t *testing.T) {
	m := NewShardedMemory(16, 4, false)
	const n = 16
	for i := 0; i < n; i++ {
		m.Add(tr(float64(i)))
	}
	rng := rand.New(rand.NewSource(3))
	counts := make(map[float64]int)
	const draws = 8000
	batch, _, _ := m.Sample(rng, draws)
	for _, x := range batch {
		counts[x.Reward]++
	}
	want := draws / n
	for r, c := range counts {
		if c < want/2 || c > want*2 {
			t.Fatalf("transition %v drawn %d times, want ≈ %d", r, c, want)
		}
	}
}

// A sharded pool must round-trip through Save/Load, including across a
// different shard count and into the single-lock flavors.
func TestShardedSaveLoad(t *testing.T) {
	m := NewShardedMemory(64, 4, true)
	for i := 0; i < 12; i++ {
		m.Add(tr(float64(i)))
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	rewards := func(mem Memory) map[float64]bool {
		out := make(map[float64]bool)
		for _, x := range mem.Transitions() {
			out[x.Reward] = true
		}
		return out
	}
	want := rewards(m)

	m2 := NewShardedMemory(64, 8, false)
	if err := m2.Load(bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}
	if m2.Len() != 12 {
		t.Fatalf("reloaded Len = %d, want 12", m2.Len())
	}
	got := rewards(m2)
	for r := range want {
		if !got[r] {
			t.Fatalf("transition %v lost across Save/Load", r)
		}
	}

	u := NewUniformMemory(64)
	if err := u.Load(bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}
	if u.Len() != 12 {
		t.Fatalf("cross-flavor Len = %d, want 12", u.Len())
	}
}

// Every ShardedMemory method except Save/Load must tolerate concurrent
// use; this test exists to fail under the race detector (make check).
func TestShardedConcurrentUse(t *testing.T) {
	m := NewShardedMemory(4096, 8, true)
	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 200; i++ {
				m.Add(tr(rng.Float64()))
				if i%8 == 0 {
					if _, idx, _ := m.Sample(rng, 16); idx != nil {
						errs := make([]float64, len(idx))
						for j := range errs {
							errs[j] = rng.Float64()
						}
						m.UpdatePriorities(idx, errs)
					}
				}
				if i%32 == 0 {
					m.Len()
					m.Transitions()
				}
			}
		}(g)
	}
	wg.Wait()
	if got, want := m.Len(), goroutines*200; got != want {
		t.Fatalf("Len = %d after concurrent adds, want %d", got, want)
	}
}
