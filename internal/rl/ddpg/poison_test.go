package ddpg

import (
	"math"
	"math/rand"
	"testing"

	"cdbtune/internal/rl"
)

// poisonTestConfig is a small agent sized for the property loop.
func poisonTestConfig(shards int) Config {
	cfg := DefaultConfig(8, 4)
	cfg.ActorHidden = []int{16, 16}
	cfg.CriticHidden = []int{32, 16}
	cfg.BatchSize = 16
	cfg.MinMemory = 16
	cfg.MemoryCapacity = 4096
	cfg.MemoryShards = shards
	cfg.Seed = 11
	return cfg
}

// randTransition draws a well-formed transition, then (with the given
// probability) poisons one of its fields with NaN or ±Inf — the shapes a
// broken metrics collector or reward function would produce if the
// environment-side sanitizers were bypassed.
func randTransition(rng *rand.Rand, stateDim, actionDim int, poisonProb float64) (rl.Transition, bool) {
	vec := func(n int) []float64 {
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.Float64()
		}
		return v
	}
	tr := rl.Transition{
		State:     vec(stateDim),
		Action:    vec(actionDim),
		Reward:    rng.NormFloat64(),
		NextState: vec(stateDim),
		Done:      rng.Intn(10) == 0,
	}
	if rng.Float64() >= poisonProb {
		return tr, false
	}
	bad := math.NaN()
	if rng.Intn(2) == 0 {
		bad = math.Inf(1 - 2*rng.Intn(2))
	}
	switch rng.Intn(4) {
	case 0:
		tr.State[rng.Intn(stateDim)] = bad
	case 1:
		tr.Action[rng.Intn(actionDim)] = bad
	case 2:
		tr.Reward = bad
	default:
		tr.NextState[rng.Intn(stateDim)] = bad
	}
	return tr, true
}

// assertAgentFinite fails the test if any weight or BatchNorm running
// statistic of any of the agent's four networks is non-finite.
func assertAgentFinite(t *testing.T, a *Agent, context string) {
	t.Helper()
	for i, n := range a.networks() {
		if err := n.State().Finite(); err != nil {
			t.Fatalf("%s: %s network poisoned: %v", context, netNames[i], err)
		}
	}
}

// TestPoisonedTransitionsNeverReachWeights is the replay-poison property
// test: transitions carrying NaN/Inf in any field — stored through both
// the single-lock and the sharded pool — must never propagate into
// network weights or BatchNorm running statistics. Batches containing
// them are discarded (SkippedBatches advances) and clean batches keep
// training.
func TestPoisonedTransitionsNeverReachWeights(t *testing.T) {
	for _, shards := range []int{0, 4} {
		cfg := poisonTestConfig(shards)
		a := New(cfg)
		if shards >= 2 {
			if _, ok := a.Memory.(rl.ConcurrentMemory); !ok {
				t.Fatalf("shards=%d: expected a concurrent pool", shards)
			}
		}
		rng := rand.New(rand.NewSource(23))
		poisoned := 0
		for i := 0; i < 400; i++ {
			tr, bad := randTransition(rng, cfg.StateDim, cfg.ActionDim, 0.05)
			if bad {
				poisoned++
			}
			a.Observe(tr)
			info, ok := a.TrainStepInfo()
			if !ok {
				continue
			}
			if !info.SkippedNonFinite {
				// A batch the agent accepted must have produced finite
				// telemetry across the board.
				for name, v := range map[string]float64{
					"CriticLoss":     info.CriticLoss,
					"CriticGradNorm": info.CriticGradNorm,
					"MeanAbsQ":       info.MeanAbsQ,
					"MaxWeight":      info.MaxWeight,
				} {
					if !finite(v) {
						t.Fatalf("shards=%d step %d: accepted batch has non-finite %s = %v", shards, i, name, v)
					}
				}
			}
			if i%25 == 0 {
				assertAgentFinite(t, a, "mid-run")
			}
		}
		assertAgentFinite(t, a, "final")
		if poisoned == 0 {
			t.Fatal("property loop drew no poisoned transitions; raise the iteration count")
		}
		if a.SkippedBatches() == 0 {
			t.Errorf("shards=%d: %d poisoned transitions stored but no batch was skipped", shards, poisoned)
		}
		if a.TrainSteps() == 0 {
			t.Errorf("shards=%d: no clean batch trained — the skip guard is rejecting everything", shards)
		}
	}
}

// TestSkippedBatchLeavesWeightsUntouched pins the stronger invariant the
// property test relies on: a skipped update changes no parameter at all.
func TestSkippedBatchLeavesWeightsUntouched(t *testing.T) {
	cfg := poisonTestConfig(0)
	a := New(cfg)
	rng := rand.New(rand.NewSource(5))
	// Fill the pool entirely with poisoned rewards so every batch skips.
	for i := 0; i < cfg.MinMemory; i++ {
		tr, _ := randTransition(rng, cfg.StateDim, cfg.ActionDim, 0)
		tr.Reward = math.NaN()
		a.Observe(tr)
	}
	before := a.Snapshot()
	for i := 0; i < 5; i++ {
		info, ok := a.TrainStepInfo()
		if !ok {
			t.Fatal("pool is full; TrainStepInfo must run")
		}
		if !info.SkippedNonFinite {
			t.Fatal("all-NaN rewards must make every batch skip")
		}
	}
	after := a.Snapshot()
	for i := range before.nets {
		for j, p := range before.nets[i].Params {
			for k, v := range p {
				if after.nets[i].Params[j][k] != v {
					t.Fatalf("network %d param %d[%d] changed across skipped updates", i, j, k)
				}
			}
		}
	}
	if a.SkippedBatches() != 5 {
		t.Fatalf("SkippedBatches = %d, want 5", a.SkippedBatches())
	}
}
