package ddpg

import (
	"math/rand"
	"testing"

	"cdbtune/internal/rl"
)

// newBenchmarkAgent mirrors the tuner's production shape: the paper's
// default architecture over 63 metrics and a 20-knob action space, with
// a warm replay pool.
func newBenchmarkAgent() *Agent {
	cfg := DefaultConfig(63, 20)
	a := New(cfg)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 512; i++ {
		a.Observe(rl.Transition{
			State:     randUnitSlice(rng, 63),
			Action:    randUnitSlice(rng, 20),
			Reward:    rng.NormFloat64(),
			NextState: randUnitSlice(rng, 63),
		})
	}
	a.SetBCTarget(randUnitSlice(rng, 20))
	return a
}

func randUnitSlice(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.Float64()
	}
	return v
}

func BenchmarkTrainStepInfo(b *testing.B) {
	a := newBenchmarkAgent()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := a.TrainStepInfo(); !ok {
			b.Fatal("train step refused to run")
		}
	}
}

func BenchmarkActBatch8(b *testing.B) {
	a := newBenchmarkAgent()
	rng := rand.New(rand.NewSource(4))
	states := make([][]float64, 8)
	for i := range states {
		states[i] = randUnitSlice(rng, 63)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.ActBatch(states)
	}
}
