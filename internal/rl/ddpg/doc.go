// Package ddpg implements Deep Deterministic Policy Gradient (Lillicrap et
// al. 2015) exactly as CDBTune uses it (paper §4, Algorithm 1, Table 5):
// an actor µ(s|θ^µ) mapping the 63 internal database metrics to a full
// normalized knob configuration, and a critic Q(s, a|θ^Q) scoring the
// configuration, trained from the experience-replay memory pool with soft
// target networks.
//
// # Concurrency contract
//
// An Agent is not internally synchronized. Callers that share one agent
// across goroutines (core's parallel trainer does) must hold a single
// lock around every method that touches the networks, the optimizers or
// the agent's rng:
//
//   - Act, ActBatch, ActNoisy, ActNoisyFrom, Perturb (rng and/or network
//     reads that race with parameter updates)
//   - TrainStep, TrainStepInfo (parameter updates)
//   - Save, Load, SetBCTarget, BCTarget, QValue
//
// Observe is the one exception, and only conditionally: it does nothing
// but Memory.Add, so when the agent was built with Config.MemoryShards
// ≥ 2 — making Memory an rl.ConcurrentMemory — Observe is safe to call
// concurrently with every other method and needs no lock at all. With the
// default single-lock pools it must be serialized with Sample, i.e. with
// TrainStep, under the caller's lock like everything else.
//
// Batched inference exists to shrink that critical section: ActBatch runs
// one eval-mode forward pass (nn.Network.Infer, which writes no backward
// caches) over many states, so N concurrent action requests cost one lock
// acquisition and one network traversal instead of N.
package ddpg
