package ddpg

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"cdbtune/internal/rl"
)

func TestReflect01(t *testing.T) {
	tests := []struct{ in, want float64 }{
		{0.5, 0.5},
		{-0.2, 0.2},
		{1.3, 0.7},
		{-1.1, 0.9},
		{2.4, 0.4},
		{0, 0},
		{1, 1},
	}
	for _, tc := range tests {
		if got := reflect01(tc.in); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("reflect01(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestReflect01Property(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		x := rng.NormFloat64() * 3
		got := reflect01(x)
		if got < 0 || got > 1 {
			t.Fatalf("reflect01(%v) = %v out of [0,1]", x, got)
		}
	}
}

func TestActNoisyAvoidsBoundaryPileup(t *testing.T) {
	cfg := smallConfig(2, 4)
	cfg.NoiseSigma = 0.6 // heavy noise
	a := New(cfg)
	var boundary, total int
	for i := 0; i < 200; i++ {
		act := a.ActNoisy([]float64{0.5, 0.5})
		for _, v := range act {
			total++
			if v == 0 || v == 1 {
				boundary++
			}
		}
	}
	// Clamping would put ~30 % of mass exactly on the boundary here;
	// reflection leaves it in the interior.
	if frac := float64(boundary) / float64(total); frac > 0.02 {
		t.Fatalf("boundary mass %v, reflection should keep it ≈0", frac)
	}
}

func TestPolicyDelaySkipsActorUpdates(t *testing.T) {
	cfg := smallConfig(2, 2)
	cfg.PolicyDelay = 4
	a := New(cfg)
	for i := 0; i < 64; i++ {
		a.Observe(rl.Transition{State: []float64{0, 0}, Action: []float64{0.5, 0.5}, Reward: 1, NextState: []float64{0, 0}, Done: true})
	}
	snapshot := func() []float64 {
		var out []float64
		for _, p := range a.actor.Params() {
			out = append(out, p.Value.Data...)
		}
		return out
	}
	before := snapshot()
	// Three critic updates: no actor update yet (trainSteps 1..3).
	for i := 0; i < 3; i++ {
		if _, ok := a.TrainStep(); !ok {
			t.Fatal("TrainStep refused")
		}
	}
	after := snapshot()
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("actor changed before PolicyDelay elapsed")
		}
	}
	// The fourth update moves the actor.
	if _, ok := a.TrainStep(); !ok {
		t.Fatal("TrainStep refused")
	}
	after = snapshot()
	same := true
	for i := range before {
		if before[i] != after[i] {
			same = false
		}
	}
	if same {
		t.Fatal("actor never updated at the PolicyDelay boundary")
	}
}

func TestBCTargetPullsActor(t *testing.T) {
	cfg := smallConfig(3, 2)
	cfg.BCWeight = 5
	cfg.PolicyDelay = 1
	a := New(cfg)
	target := []float64{0.9, 0.1}
	a.SetBCTarget(target)
	if got := a.BCTarget(); got[0] != 0.9 || got[1] != 0.1 {
		t.Fatalf("BCTarget = %v", got)
	}
	state := []float64{0.2, 0.5, 0.8}
	for i := 0; i < 256; i++ {
		a.Observe(rl.Transition{State: state, Action: []float64{0.5, 0.5}, Reward: 0, NextState: state, Done: true})
	}
	before := a.Act(state)
	for i := 0; i < 400; i++ {
		a.TrainStep()
	}
	after := a.Act(state)
	dBefore := math.Abs(before[0]-target[0]) + math.Abs(before[1]-target[1])
	dAfter := math.Abs(after[0]-target[0]) + math.Abs(after[1]-target[1])
	if dAfter >= dBefore {
		t.Fatalf("self-imitation did not pull the actor toward the target: %v -> %v", dBefore, dAfter)
	}
	if dAfter > 0.4 {
		t.Fatalf("actor still far from target after training: %v", dAfter)
	}
	a.SetBCTarget(nil)
	if a.BCTarget() != nil {
		t.Fatal("SetBCTarget(nil) must clear")
	}
}

func TestTargetSmoothingKeepsActionsInRange(t *testing.T) {
	cfg := smallConfig(2, 3)
	a := New(cfg)
	for i := 0; i < 64; i++ {
		a.Observe(rl.Transition{State: []float64{0, 1}, Action: []float64{0, 0.5, 1}, Reward: 1, NextState: []float64{1, 0}, Done: false})
	}
	// The smoothed target actions feed the target critic; nothing here can
	// panic or produce NaN losses.
	for i := 0; i < 30; i++ {
		loss, ok := a.TrainStep()
		if !ok {
			t.Fatal("TrainStep refused")
		}
		if math.IsNaN(loss) || math.IsInf(loss, 0) {
			t.Fatalf("loss = %v", loss)
		}
	}
}

func TestDiagnostics(t *testing.T) {
	a := New(smallConfig(3, 4))
	d := a.Diagnose(nil)
	if d.TrainSteps != 0 || d.MemorySize != 0 || d.HasBCTarget {
		t.Fatalf("fresh diagnostics: %+v", d)
	}
	states := [][]float64{{0, 0.5, 1}, {0.2, 0.4, 0.6}}
	d = a.Diagnose(states)
	if d.ActionMean <= 0 || d.ActionMean >= 1 {
		t.Fatalf("action mean %v", d.ActionMean)
	}
	if d.Saturated < 0 || d.Saturated > 1 {
		t.Fatalf("saturation %v", d.Saturated)
	}
	a.SetBCTarget([]float64{0.1, 0.2, 0.3, 0.4})
	if !a.Diagnose(states).HasBCTarget {
		t.Fatal("BC target not reported")
	}
	if s := d.String(); len(s) == 0 {
		t.Fatal("empty String()")
	}
}

func TestSaveLoadPreservesBCTarget(t *testing.T) {
	cfg := smallConfig(2, 3)
	a := New(cfg)
	a.SetBCTarget([]float64{0.7, 0.2, 0.9})
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	b := New(cfg)
	if err := b.Load(&buf); err != nil {
		t.Fatal(err)
	}
	got := b.BCTarget()
	if got == nil || got[0] != 0.7 || got[2] != 0.9 {
		t.Fatalf("BC target lost across save/load: %v", got)
	}
	// And a nil target round-trips as nil/empty.
	c := New(cfg)
	var buf2 bytes.Buffer
	if err := c.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	d := New(cfg)
	if err := d.Load(&buf2); err != nil {
		t.Fatal(err)
	}
	if len(d.BCTarget()) != 0 {
		t.Fatalf("phantom BC target: %v", d.BCTarget())
	}
}
