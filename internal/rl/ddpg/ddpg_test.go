package ddpg

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"cdbtune/internal/rl"
)

func smallConfig(stateDim, actionDim int) Config {
	cfg := DefaultConfig(stateDim, actionDim)
	cfg.ActorHidden = []int{32, 32}
	cfg.CriticHidden = []int{64, 32}
	cfg.BatchSize = 16
	cfg.MinMemory = 32
	cfg.MemoryCapacity = 4096
	return cfg
}

func TestActShapesAndRange(t *testing.T) {
	a := New(smallConfig(6, 4))
	state := []float64{0.1, -0.2, 0.3, 0, 1, -1}
	act := a.Act(state)
	if len(act) != 4 {
		t.Fatalf("action dim = %d, want 4", len(act))
	}
	for _, v := range act {
		if v < 0 || v > 1 {
			t.Fatalf("action %v out of (0,1)", v)
		}
	}
	noisy := a.ActNoisy(state)
	for _, v := range noisy {
		if v < 0 || v > 1 {
			t.Fatalf("noisy action %v out of [0,1]", v)
		}
	}
}

func TestActDeterministic(t *testing.T) {
	a := New(smallConfig(3, 2))
	s := []float64{0.5, -0.5, 0.2}
	x, y := a.Act(s), a.Act(s)
	for i := range x {
		if x[i] != y[i] {
			t.Fatal("Act must be deterministic in eval mode")
		}
	}
}

func TestTrainStepRequiresMinMemory(t *testing.T) {
	a := New(smallConfig(3, 2))
	if _, ok := a.TrainStep(); ok {
		t.Fatal("TrainStep should refuse with empty memory")
	}
	for i := 0; i < a.cfg.MinMemory-1; i++ {
		a.Observe(rl.Transition{State: []float64{0, 0, 0}, Action: []float64{0.5, 0.5}, NextState: []float64{0, 0, 0}})
	}
	if _, ok := a.TrainStep(); ok {
		t.Fatal("TrainStep should refuse below MinMemory")
	}
	a.Observe(rl.Transition{State: []float64{0, 0, 0}, Action: []float64{0.5, 0.5}, NextState: []float64{0, 0, 0}})
	if _, ok := a.TrainStep(); !ok {
		t.Fatal("TrainStep should run at MinMemory")
	}
	if a.TrainSteps() != 1 {
		t.Fatalf("TrainSteps = %d, want 1", a.TrainSteps())
	}
}

// TestLearnsBanditTarget trains DDPG on a contextual-bandit environment:
// reward = 1 − |a − g(s)|² for a target g(s) that depends on the state.
// After training, µ(s) must be close to g(s). This exercises the full
// actor-critic loop end to end.
func TestLearnsBanditTarget(t *testing.T) {
	cfg := smallConfig(2, 2)
	cfg.Seed = 9
	cfg.NoiseSigma = 0.3
	a := New(cfg)
	rng := rand.New(rand.NewSource(10))

	g := func(s []float64) []float64 {
		return []float64{0.2 + 0.5*s[0], 0.8 - 0.5*s[1]}
	}
	reward := func(s, act []float64) float64 {
		tgt := g(s)
		var d2 float64
		for i := range act {
			d := act[i] - tgt[i]
			d2 += d * d
		}
		return 1 - d2
	}

	for ep := 0; ep < 1200; ep++ {
		s := []float64{rng.Float64(), rng.Float64()}
		act := a.ActNoisy(s)
		r := reward(s, act)
		a.Observe(rl.Transition{State: s, Action: act, Reward: r, NextState: s, Done: true})
		a.TrainStep()
		a.TrainStep()
		if ep%20 == 0 {
			a.Noise.Decay()
		}
	}

	var sum float64
	const probes = 50
	for i := 0; i < probes; i++ {
		s := []float64{rng.Float64(), rng.Float64()}
		act := a.Act(s)
		tgt := g(s)
		for j := range act {
			sum += math.Abs(act[j] - tgt[j])
		}
	}
	if mean := sum / (2 * probes); mean > 0.2 {
		t.Fatalf("mean policy error %v, want < 0.2", mean)
	}
	// At the center state the policy must be sharp.
	center := a.Act([]float64{0.5, 0.5})
	tgt := g([]float64{0.5, 0.5})
	for j := range center {
		if d := math.Abs(center[j] - tgt[j]); d > 0.15 {
			t.Fatalf("center policy error %v, want < 0.15", d)
		}
	}
}

func TestCriticLossDecreases(t *testing.T) {
	cfg := smallConfig(3, 2)
	cfg.Prioritized = false
	a := New(cfg)
	rng := rand.New(rand.NewSource(11))
	// Fixed-reward environment: critic must learn a constant.
	for i := 0; i < 256; i++ {
		s := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		a.Observe(rl.Transition{State: s, Action: []float64{0.5, 0.5}, Reward: 1, NextState: s, Done: true})
	}
	var first, last float64
	for i := 0; i < 300; i++ {
		loss, ok := a.TrainStep()
		if !ok {
			t.Fatal("TrainStep refused")
		}
		if i == 0 {
			first = loss
		}
		last = loss
	}
	if last >= first {
		t.Fatalf("critic loss did not decrease: first %v last %v", first, last)
	}
	// Q(s, a) should approach 1 for terminal transitions with reward 1.
	q := a.QValue([]float64{0.5, 0.5, 0.5}, []float64{0.5, 0.5})
	if math.Abs(q-1) > 0.3 {
		t.Fatalf("Q = %v, want ≈1", q)
	}
}

func TestDoneMasksBootstrap(t *testing.T) {
	cfg := smallConfig(2, 1)
	cfg.Prioritized = false
	cfg.Gamma = 0.99
	a := New(cfg)
	// All transitions terminal with reward 2: Q must converge to 2, not
	// 2/(1−γ) = 200.
	for i := 0; i < 128; i++ {
		a.Observe(rl.Transition{State: []float64{0, 0}, Action: []float64{0.5}, Reward: 2, NextState: []float64{0, 0}, Done: true})
	}
	for i := 0; i < 400; i++ {
		a.TrainStep()
	}
	q := a.QValue([]float64{0, 0}, []float64{0.5})
	if math.Abs(q-2) > 0.5 {
		t.Fatalf("terminal Q = %v, want ≈2 (done flag ignored?)", q)
	}
}

func TestSaveLoadPreservesPolicy(t *testing.T) {
	cfg := smallConfig(3, 2)
	a := New(cfg)
	// Train a little so weights are non-trivial.
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 64; i++ {
		s := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		a.Observe(rl.Transition{State: s, Action: []float64{0.1, 0.9}, Reward: rng.Float64(), NextState: s, Done: true})
	}
	for i := 0; i < 20; i++ {
		a.TrainStep()
	}
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	b := New(cfg)
	if err := b.Load(&buf); err != nil {
		t.Fatal(err)
	}
	s := []float64{0.3, 0.6, 0.9}
	x, y := a.Act(s), b.Act(s)
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("policy differs after reload: %v vs %v", x, y)
		}
	}
}

func TestTable5DefaultArchitecture(t *testing.T) {
	cfg := DefaultConfig(63, 266)
	a := New(cfg)
	act := a.Act(make([]float64, 63))
	if len(act) != 266 {
		t.Fatalf("default actor output dim = %d, want 266", len(act))
	}
	// Count parameters: actor first layer must be 63×128.
	p := a.actor.Params()[0]
	if p.Value.Rows != 63 || p.Value.Cols != 128 {
		t.Fatalf("actor first layer %dx%d, want 63x128", p.Value.Rows, p.Value.Cols)
	}
}

func TestPrioritizedAgentUpdatesPriorities(t *testing.T) {
	cfg := smallConfig(2, 1)
	cfg.Prioritized = true
	a := New(cfg)
	pm, ok := a.Memory.(*rl.PrioritizedMemory)
	if !ok {
		t.Fatal("expected prioritized memory")
	}
	for i := 0; i < 64; i++ {
		a.Observe(rl.Transition{State: []float64{0, 0}, Action: []float64{0.5}, Reward: float64(i % 2), NextState: []float64{0, 0}, Done: true})
	}
	before := pm.TotalPriority()
	for i := 0; i < 10; i++ {
		a.TrainStep()
	}
	if pm.TotalPriority() == before {
		t.Fatal("priorities never updated during training")
	}
}
