package ddpg

import (
	"math/rand"
	"runtime"
	"testing"

	"cdbtune/internal/rl"
)

func randUnitVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.Float64()
	}
	return v
}

// overlapTrainedWeights builds a small seeded agent, feeds it a fixed
// transition stream, applies the given number of updates, and returns
// every network weight.
func overlapTrainedWeights(t *testing.T, steps int) []float64 {
	t.Helper()
	cfg := DefaultConfig(6, 3)
	cfg.ActorHidden = []int{16, 8}
	cfg.CriticHidden = []int{16, 8}
	cfg.BatchSize = 8
	cfg.MinMemory = 8
	cfg.MemoryCapacity = 256
	cfg.Seed = 42
	a := New(cfg)
	a.SetBCTarget([]float64{0.5, 0.4, 0.6})
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 64; i++ {
		a.Observe(rl.Transition{
			State:     randUnitVec(rng, 6),
			Action:    randUnitVec(rng, 3),
			Reward:    rng.NormFloat64(),
			NextState: randUnitVec(rng, 6),
		})
	}
	for i := 0; i < steps; i++ {
		if _, ok := a.TrainStepInfo(); !ok {
			t.Fatal("train step refused to run")
		}
	}
	var ws []float64
	for _, net := range a.networks() {
		for _, p := range net.Params() {
			ws = append(ws, p.Value.Data...)
		}
	}
	return ws
}

// TestTrainStepDeterministicAcrossGOMAXPROCS pins the overlapped
// target/online schedule in TrainStepInfo (and the parallel GEMM path
// beneath it): training must be bit-for-bit reproducible from the seed
// regardless of available parallelism.
func TestTrainStepDeterministicAcrossGOMAXPROCS(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)

	serial := overlapTrainedWeights(t, 12)
	runtime.GOMAXPROCS(4)
	parallel := overlapTrainedWeights(t, 12)

	if len(serial) != len(parallel) {
		t.Fatalf("weight count mismatch: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("weights diverge at %d: GOMAXPROCS=1 %v vs GOMAXPROCS=4 %v", i, serial[i], parallel[i])
		}
	}
}
