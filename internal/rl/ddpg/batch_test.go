package ddpg

import (
	"math/rand"
	"testing"

	"cdbtune/internal/rl"
)

func batchTestConfig() Config {
	cfg := DefaultConfig(6, 4)
	cfg.ActorHidden = []int{16, 8}
	cfg.CriticHidden = []int{16, 8}
	return cfg
}

// ActBatch must agree with Act exactly, row for row: the batcher swapping
// N single-state passes for one batched pass must not change any action.
func TestActBatchMatchesAct(t *testing.T) {
	a := New(batchTestConfig())
	rng := rand.New(rand.NewSource(5))
	const n = 7
	states := make([][]float64, n)
	for i := range states {
		states[i] = make([]float64, 6)
		for j := range states[i] {
			states[i][j] = rng.NormFloat64()
		}
	}
	batched := a.ActBatch(states)
	if len(batched) != n {
		t.Fatalf("ActBatch returned %d rows, want %d", len(batched), n)
	}
	for i, s := range states {
		single := a.Act(s)
		for j := range single {
			if single[j] != batched[i][j] {
				t.Fatalf("state %d dim %d: Act %v != ActBatch %v", i, j, single[j], batched[i][j])
			}
		}
	}
}

// Config.MemoryShards must build a concurrency-safe sharded pool; the
// default must keep the single-lock flavor.
func TestMemoryShardsWiring(t *testing.T) {
	cfg := batchTestConfig()
	cfg.MemoryShards = 4
	a := New(cfg)
	sm, ok := a.Memory.(*rl.ShardedMemory)
	if !ok {
		t.Fatalf("MemoryShards=4 built %T, want *rl.ShardedMemory", a.Memory)
	}
	if sm.ShardCount() != 4 || !sm.Prioritized() {
		t.Fatalf("shards=%d prioritized=%v, want 4/true", sm.ShardCount(), sm.Prioritized())
	}
	if _, ok := a.Memory.(rl.ConcurrentMemory); !ok {
		t.Fatal("sharded pool must advertise rl.ConcurrentMemory")
	}
	cfg.MemoryShards = 0
	if _, ok := New(cfg).Memory.(rl.ConcurrentMemory); ok {
		t.Fatal("default pool must not claim concurrency safety")
	}
}
