package ddpg

import (
	"math/rand"

	"cdbtune/internal/mat"
	"cdbtune/internal/nn"
)

// parallelDense is the critic's first stage from Table 5 ("Parallel Full
// Connection 128+128"): the state and action halves of the input each pass
// through their own dense head and the results are concatenated.
type parallelDense struct {
	stateDim, actionDim int
	stateHead           *nn.Dense
	actionHead          *nn.Dense
}

func newParallelDense(stateDim, actionDim, width int) *parallelDense {
	half := width / 2
	return &parallelDense{
		stateDim:   stateDim,
		actionDim:  actionDim,
		stateHead:  nn.NewDense(stateDim, half),
		actionHead: nn.NewDense(actionDim, width-half),
	}
}

// Forward implements nn.Layer. The input batch columns are the state
// vector followed by the action vector.
func (p *parallelDense) Forward(x *mat.Matrix, train bool) *mat.Matrix {
	n := x.Rows
	s := mat.New(n, p.stateDim)
	a := mat.New(n, p.actionDim)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		copy(s.Row(i), row[:p.stateDim])
		copy(a.Row(i), row[p.stateDim:])
	}
	fs := p.stateHead.Forward(s, train)
	fa := p.actionHead.Forward(a, train)
	out := mat.New(n, fs.Cols+fa.Cols)
	for i := 0; i < n; i++ {
		row := out.Row(i)
		copy(row[:fs.Cols], fs.Row(i))
		copy(row[fs.Cols:], fa.Row(i))
	}
	return out
}

// Backward implements nn.Layer, returning the gradient with respect to the
// concatenated [state|action] input.
func (p *parallelDense) Backward(grad *mat.Matrix) *mat.Matrix {
	n := grad.Rows
	sw := p.stateHead.Out
	gs := mat.New(n, sw)
	ga := mat.New(n, grad.Cols-sw)
	for i := 0; i < n; i++ {
		row := grad.Row(i)
		copy(gs.Row(i), row[:sw])
		copy(ga.Row(i), row[sw:])
	}
	ds := p.stateHead.Backward(gs)
	da := p.actionHead.Backward(ga)
	out := mat.New(n, p.stateDim+p.actionDim)
	for i := 0; i < n; i++ {
		row := out.Row(i)
		copy(row[:p.stateDim], ds.Row(i))
		copy(row[p.stateDim:], da.Row(i))
	}
	return out
}

// Params implements nn.Layer.
func (p *parallelDense) Params() []*nn.Param {
	return append(p.stateHead.Params(), p.actionHead.Params()...)
}

// critic wraps the critic network, presenting a (state, action) interface
// over a network whose input is the concatenated pair.
type critic struct {
	network             *nn.Network
	stateDim, actionDim int
}

// newCritic assembles the Table 5 critic: parallel heads, leaky ReLU,
// Dense→Tanh→Dropout trunk stages, and a scalar output.
func newCritic(cfg Config, rng *rand.Rand) *critic {
	hidden := cfg.CriticHidden
	layers := []nn.Layer{
		newParallelDense(cfg.StateDim, cfg.ActionDim, hidden[0]),
		nn.NewLeakyReLU(0.2),
	}
	in := hidden[0]
	for i, h := range hidden[1:] {
		layers = append(layers, nn.NewDense(in, h), nn.NewTanh())
		if i == 0 {
			layers = append(layers, nn.NewDropout(cfg.Dropout, rng))
		}
		in = h
	}
	layers = append(layers, nn.NewDense(in, 1))
	return &critic{
		network:   nn.NewNetwork(layers...),
		stateDim:  cfg.StateDim,
		actionDim: cfg.ActionDim,
	}
}

func (c *critic) net() *nn.Network { return c.network }

func (c *critic) forward(states, actions *mat.Matrix, train bool) *mat.Matrix {
	n := states.Rows
	x := mat.New(n, c.stateDim+c.actionDim)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		copy(row[:c.stateDim], states.Row(i))
		copy(row[c.stateDim:], actions.Row(i))
	}
	return c.network.Forward(x, train)
}

// backward propagates grad through the critic and splits the input
// gradient into its state and action parts. The action part is the
// ∇_a Q(s, a) term of the deterministic policy gradient.
func (c *critic) backward(grad *mat.Matrix) (dState, dAction *mat.Matrix) {
	dx := c.network.Backward(grad)
	n := dx.Rows
	dState = mat.New(n, c.stateDim)
	dAction = mat.New(n, c.actionDim)
	for i := 0; i < n; i++ {
		row := dx.Row(i)
		copy(dState.Row(i), row[:c.stateDim])
		copy(dAction.Row(i), row[c.stateDim:])
	}
	return dState, dAction
}

func (c *critic) initUniform(rng *rand.Rand, a float64) { c.network.InitUniform(rng, a) }
func (c *critic) copyTo(dst *critic)                    { c.network.CopyTo(dst.network) }
func (c *critic) softUpdateFrom(src *critic, tau float64) {
	c.network.SoftUpdateFrom(src.network, tau)
}
