package ddpg

import (
	"math/rand"

	"cdbtune/internal/mat"
	"cdbtune/internal/nn"
)

// parallelDense is the critic's first stage from Table 5 ("Parallel Full
// Connection 128+128"): the state and action halves of the input each pass
// through their own dense head and the results are concatenated. Like the
// nn layers it pools its split/concat buffers, so the steady state
// allocates nothing; returned matrices are owned by the layer until its
// next call of the same kind.
type parallelDense struct {
	stateDim, actionDim int
	stateHead           *nn.Dense
	actionHead          *nn.Dense

	s, a, cat   *mat.Matrix // Forward scratch
	gs, ga, din *mat.Matrix // Backward scratch
}

func newParallelDense(stateDim, actionDim, width int) *parallelDense {
	half := width / 2
	return &parallelDense{
		stateDim:   stateDim,
		actionDim:  actionDim,
		stateHead:  nn.NewDense(stateDim, half),
		actionHead: nn.NewDense(actionDim, width-half),
	}
}

// Forward implements nn.Layer. The input batch columns are the state
// vector followed by the action vector.
func (p *parallelDense) Forward(x *mat.Matrix, train bool) *mat.Matrix {
	n := x.Rows
	p.s = mat.Reuse(p.s, n, p.stateDim)
	p.a = mat.Reuse(p.a, n, p.actionDim)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		copy(p.s.Row(i), row[:p.stateDim])
		copy(p.a.Row(i), row[p.stateDim:])
	}
	fs := p.stateHead.Forward(p.s, train)
	fa := p.actionHead.Forward(p.a, train)
	p.cat = mat.Reuse(p.cat, n, fs.Cols+fa.Cols)
	for i := 0; i < n; i++ {
		row := p.cat.Row(i)
		copy(row[:fs.Cols], fs.Row(i))
		copy(row[fs.Cols:], fa.Row(i))
	}
	return p.cat
}

// Backward implements nn.Layer, returning the gradient with respect to the
// concatenated [state|action] input.
func (p *parallelDense) Backward(grad *mat.Matrix) *mat.Matrix {
	n := grad.Rows
	sw := p.stateHead.Out
	p.gs = mat.Reuse(p.gs, n, sw)
	p.ga = mat.Reuse(p.ga, n, grad.Cols-sw)
	for i := 0; i < n; i++ {
		row := grad.Row(i)
		copy(p.gs.Row(i), row[:sw])
		copy(p.ga.Row(i), row[sw:])
	}
	ds := p.stateHead.Backward(p.gs)
	da := p.actionHead.Backward(p.ga)
	p.din = mat.Reuse(p.din, n, p.stateDim+p.actionDim)
	for i := 0; i < n; i++ {
		row := p.din.Row(i)
		copy(row[:p.stateDim], ds.Row(i))
		copy(row[p.stateDim:], da.Row(i))
	}
	return p.din
}

// BackwardInput implements nn.InputGradOnly: the same input gradient as
// Backward with the heads' weight-gradient GEMMs skipped.
func (p *parallelDense) BackwardInput(grad *mat.Matrix) *mat.Matrix {
	n := grad.Rows
	sw := p.stateHead.Out
	p.gs = mat.Reuse(p.gs, n, sw)
	p.ga = mat.Reuse(p.ga, n, grad.Cols-sw)
	for i := 0; i < n; i++ {
		row := grad.Row(i)
		copy(p.gs.Row(i), row[:sw])
		copy(p.ga.Row(i), row[sw:])
	}
	ds := p.stateHead.BackwardInput(p.gs)
	da := p.actionHead.BackwardInput(p.ga)
	p.din = mat.Reuse(p.din, n, p.stateDim+p.actionDim)
	for i := 0; i < n; i++ {
		row := p.din.Row(i)
		copy(row[:p.stateDim], ds.Row(i))
		copy(row[p.stateDim:], da.Row(i))
	}
	return p.din
}

// Params implements nn.Layer.
func (p *parallelDense) Params() []*nn.Param {
	return append(p.stateHead.Params(), p.actionHead.Params()...)
}

// critic wraps the critic network, presenting a (state, action) interface
// over a network whose input is the concatenated pair.
type critic struct {
	network             *nn.Network
	stateDim, actionDim int

	x               *mat.Matrix // forward concat scratch
	dState, dAction *mat.Matrix // backward split scratch
}

// newCritic assembles the Table 5 critic: parallel heads, leaky ReLU,
// Dense→Tanh→Dropout trunk stages, and a scalar output.
func newCritic(cfg Config, rng *rand.Rand) *critic {
	hidden := cfg.CriticHidden
	layers := []nn.Layer{
		newParallelDense(cfg.StateDim, cfg.ActionDim, hidden[0]),
		nn.NewLeakyReLU(0.2),
	}
	in := hidden[0]
	for i, h := range hidden[1:] {
		layers = append(layers, nn.NewDense(in, h), nn.NewTanh())
		if i == 0 {
			layers = append(layers, nn.NewDropout(cfg.Dropout, rng))
		}
		in = h
	}
	layers = append(layers, nn.NewDense(in, 1))
	return &critic{
		network:   nn.NewNetwork(layers...),
		stateDim:  cfg.StateDim,
		actionDim: cfg.ActionDim,
	}
}

func (c *critic) net() *nn.Network { return c.network }

// forward scores a batch of (state, action) pairs. The returned Q column
// is a network-owned buffer: it is overwritten by this critic's next
// forward, so callers must finish reading it (or copy) before then.
func (c *critic) forward(states, actions *mat.Matrix, train bool) *mat.Matrix {
	n := states.Rows
	c.x = mat.Reuse(c.x, n, c.stateDim+c.actionDim)
	for i := 0; i < n; i++ {
		row := c.x.Row(i)
		copy(row[:c.stateDim], states.Row(i))
		copy(row[c.stateDim:], actions.Row(i))
	}
	return c.network.Forward(c.x, train)
}

// backward propagates grad through the critic and splits the input
// gradient into its state and action parts. The action part is the
// ∇_a Q(s, a) term of the deterministic policy gradient. Both returned
// matrices are scratch, valid until the next backward call.
func (c *critic) backward(grad *mat.Matrix) (dState, dAction *mat.Matrix) {
	return c.splitInputGrad(c.network.Backward(grad))
}

// backwardInput is backward without accumulating any critic parameter
// gradient — the actor update only needs ∇_a Q, so the critic's
// weight-gradient GEMMs are skipped entirely rather than computed and
// zeroed.
func (c *critic) backwardInput(grad *mat.Matrix) (dState, dAction *mat.Matrix) {
	return c.splitInputGrad(c.network.BackwardInput(grad))
}

func (c *critic) splitInputGrad(dx *mat.Matrix) (dState, dAction *mat.Matrix) {
	n := dx.Rows
	c.dState = mat.Reuse(c.dState, n, c.stateDim)
	c.dAction = mat.Reuse(c.dAction, n, c.actionDim)
	for i := 0; i < n; i++ {
		row := dx.Row(i)
		copy(c.dState.Row(i), row[:c.stateDim])
		copy(c.dAction.Row(i), row[c.stateDim:])
	}
	return c.dState, c.dAction
}

func (c *critic) initUniform(rng *rand.Rand, a float64) { c.network.InitUniform(rng, a) }
func (c *critic) copyTo(dst *critic)                    { c.network.CopyTo(dst.network) }
func (c *critic) softUpdateFrom(src *critic, tau float64) {
	c.network.SoftUpdateFrom(src.network, tau)
}
