package ddpg

import (
	"fmt"
	"math"
)

// Diagnostics summarizes the agent's health for logging and tests:
// saturation of the policy outputs (actions pinned near 0/1 indicate a
// collapsed policy), Q-value statistics for a probe batch, and training
// progress counters.
type Diagnostics struct {
	TrainSteps int
	MemorySize int
	// Saturated is the fraction of probe action components within 0.02 of
	// a boundary.
	Saturated float64
	// ActionMean and ActionSpread summarize the probe actions.
	ActionMean   float64
	ActionSpread float64
	// QMean is the critic's mean score of the probe policy actions.
	QMean float64
	// HasBCTarget reports whether a remembered best configuration exists.
	HasBCTarget bool
}

// Diagnose probes the agent on the given states.
func (a *Agent) Diagnose(states [][]float64) Diagnostics {
	d := Diagnostics{
		TrainSteps:  a.trainSteps,
		MemorySize:  a.Memory.Len(),
		HasBCTarget: a.bcTarget != nil,
	}
	if len(states) == 0 {
		return d
	}
	var sum, sumSq, qSum float64
	var saturated, total int
	for _, s := range states {
		act := a.Act(s)
		for _, v := range act {
			sum += v
			sumSq += v * v
			total++
			if v < 0.02 || v > 0.98 {
				saturated++
			}
		}
		qSum += a.QValue(s, act)
	}
	n := float64(total)
	d.ActionMean = sum / n
	variance := sumSq/n - d.ActionMean*d.ActionMean
	if variance > 0 {
		d.ActionSpread = sqrtPos(variance)
	}
	d.Saturated = float64(saturated) / n
	d.QMean = qSum / float64(len(states))
	return d
}

// String implements fmt.Stringer with a compact single-line summary.
func (d Diagnostics) String() string {
	return fmt.Sprintf("steps=%d mem=%d sat=%.1f%% act=%.2f±%.2f Q=%.2f bc=%v",
		d.TrainSteps, d.MemorySize, d.Saturated*100, d.ActionMean, d.ActionSpread, d.QMean, d.HasBCTarget)
}

func sqrtPos(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}
