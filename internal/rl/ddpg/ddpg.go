package ddpg

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"math/rand"

	"cdbtune/internal/mat"
	"cdbtune/internal/nn"
	"cdbtune/internal/rl"
)

// Config selects the agent's architecture and hyperparameters. The zero
// value is not usable; call DefaultConfig and adjust.
type Config struct {
	StateDim  int // 63 internal metrics
	ActionDim int // number of tunable knobs

	// ActorHidden and CriticHidden list hidden-layer widths. The defaults
	// are Table 5 / Table 6's best row: actor 128-128-128-64, critic
	// 256-256-256-64 with a parallel 128+128 first stage.
	ActorHidden  []int
	CriticHidden []int

	ActorLR  float64 // paper Table 4: α = 0.001
	CriticLR float64
	// Gamma is the discount factor. The paper sets 0.99; the default here
	// is 0.2 because the Eq. 6 reward pays a recovery step in proportion
	// to the size of the dip it recovers from — with a long horizon the
	// bootstrapped value of deliberately bad configurations exceeds that
	// of staying tuned, and the policy oscillates. Knob tuning is nearly
	// a contextual bandit (the action fully determines the next
	// performance), so a short horizon loses nothing.
	Gamma float64
	Tau   float64 // soft target update rate

	BatchSize      int
	MemoryCapacity int
	Prioritized    bool // prioritized experience replay (§5.1)

	// MemoryShards, when ≥ 2, splits the replay pool across that many
	// independently locked shards (rounded up to a power of two; see
	// rl.ShardedMemory) so concurrent Observe calls stop serializing
	// behind the caller's agent lock — the package doc spells out which
	// methods that exempts from locking. 0 or 1 keeps the single-lock
	// pool, whose sampling sequence is exactly reproducible from Seed.
	MemoryShards int

	NoiseSigma float64 // initial exploration noise scale
	// ExploreDims, when positive, perturbs only that many randomly chosen
	// action dimensions per step instead of all of them. Isotropic noise
	// over hundreds of knobs displaces the configuration so far that the
	// best sample quality *drops* with dimensionality; sparse
	// coordinate-subset exploration keeps per-knob moves large while
	// bounding the joint displacement. 0 perturbs every dimension.
	ExploreDims int
	Dropout     float64 // Table 5: 0.3

	// MinMemory is the number of transitions required before learning
	// starts.
	MinMemory int

	// WeightDecay is the critic optimizer's L2 coefficient.
	WeightDecay float64

	// MaxGradNorm clips both the actor's and the critic's global L2
	// gradient norm per update (see nn.Network.ClipGradients); the pre-clip
	// norms are reported in StepInfo for learner-health supervision.
	// Values ≤ 0 disable clipping but the norms are still measured.
	MaxGradNorm float64

	// PolicyDelay applies the actor (and actor-target) update only every
	// PolicyDelay critic updates (Fujimoto et al. 2018), damping policy
	// oscillation on top of a still-converging critic.
	PolicyDelay int

	// ActionBias, when non-nil (length ActionDim), warm-starts the
	// untrained policy at the given normalized action: the output layer's
	// bias is set to logit(ActionBias) so µ(s) ≈ ActionBias before
	// training. For knob tuning this is the default configuration —
	// without it the fresh policy sets every knob to the sigmoid midpoint,
	// which for hundreds of minor knobs is strictly worse than their
	// defaults.
	ActionBias []float64

	// BCWeight adds a self-imitation term to the actor update: the actor
	// is additionally pulled toward the best-rewarded action the
	// exploration has discovered (set via SetBCTarget). In very high
	// dimensional knob spaces the deterministic policy gradient alone is
	// too diluted to move 266 outputs with a few thousand samples; the
	// paper's try-and-error exploration *does* find strong configurations
	// (its Figure 5 outliers), and this term distills them into the
	// policy, with the policy gradient refining around them. 0 disables.
	BCWeight float64

	Seed int64
}

// DefaultConfig returns the paper's hyperparameters for the given state
// and action dimensionality.
func DefaultConfig(stateDim, actionDim int) Config {
	return Config{
		StateDim:       stateDim,
		ActionDim:      actionDim,
		ActorHidden:    []int{128, 128, 128, 64},
		CriticHidden:   []int{256, 256, 256, 64},
		ActorLR:        1e-3,
		CriticLR:       1e-3,
		Gamma:          0.2,
		Tau:            0.01,
		BatchSize:      64,
		MemoryCapacity: 100000,
		Prioritized:    true,
		NoiseSigma:     0.2,
		ExploreDims:    32,
		Dropout:        0.3,
		MinMemory:      64,
		WeightDecay:    1e-4,
		MaxGradNorm:    5,
		PolicyDelay:    2,
		BCWeight:       2,
		Seed:           1,
	}
}

// Agent is a DDPG learner.
type Agent struct {
	cfg Config
	rng *rand.Rand

	actor       *nn.Network
	actorTarget *nn.Network
	critic      *critic
	critTarget  *critic

	actorOpt  *nn.Adam
	criticOpt *nn.Adam

	Memory rl.Memory
	Noise  rl.Noise

	bcTarget []float64

	trainSteps     int
	skippedBatches int

	// TrainStepInfo scratch, recycled across updates so a steady-state
	// gradient step allocates almost nothing (see BENCH_hotpath.json).
	states, actions, next *mat.Matrix
	target, grad, ones    *mat.Matrix
	smoothEps             []float64
	tdErrors              []float64
	targetDone            chan struct{}
}

// New builds a DDPG agent from cfg.
func New(cfg Config) *Agent {
	if cfg.StateDim <= 0 || cfg.ActionDim <= 0 {
		panic("ddpg: StateDim and ActionDim must be positive")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	a := &Agent{cfg: cfg, rng: rng}

	a.actor = buildActor(cfg, rng)
	a.actorTarget = buildActor(cfg, rng)
	// Table 4: θ^µ initialized from Normal(0, 0.01), ω (critic weights)
	// from Uniform(−0.1, 0.1).
	a.actor.InitNormal(rng, 0.01)
	if cfg.ActionBias != nil {
		if len(cfg.ActionBias) != cfg.ActionDim {
			panic(fmt.Sprintf("ddpg: ActionBias length %d != ActionDim %d", len(cfg.ActionBias), cfg.ActionDim))
		}
		// The output layer is the penultimate network layer (Sigmoid last).
		out := a.actor.Layers[len(a.actor.Layers)-2].(*nn.Dense)
		for j, x := range cfg.ActionBias {
			out.B.Value.Data[j] = logit(x)
		}
	}
	a.actor.CopyTo(a.actorTarget)

	a.critic = newCritic(cfg, rng)
	a.critTarget = newCritic(cfg, rng)
	a.critic.initUniform(rng, 0.1)
	a.critic.copyTo(a.critTarget)

	a.actorOpt = nn.NewAdam(a.actor, cfg.ActorLR)
	a.criticOpt = nn.NewAdam(a.critic.net(), cfg.CriticLR)
	a.criticOpt.WeightDecay = cfg.WeightDecay

	switch {
	case cfg.MemoryShards > 1:
		a.Memory = rl.NewShardedMemory(cfg.MemoryCapacity, cfg.MemoryShards, cfg.Prioritized)
	case cfg.Prioritized:
		a.Memory = rl.NewPrioritizedMemory(cfg.MemoryCapacity)
	default:
		a.Memory = rl.NewUniformMemory(cfg.MemoryCapacity)
	}
	a.Noise = rl.NewOUNoise(cfg.NoiseSigma)
	a.targetDone = make(chan struct{})
	return a
}

// buildActor assembles the Table 5 actor: Dense→LeakyReLU(0.2)→BatchNorm
// for the first stage, Dense→Tanh→Dropout for intermediate stages, a
// BatchNorm'd penultimate stage, and a Sigmoid output squashing normalized
// knob values into (0, 1).
func buildActor(cfg Config, rng *rand.Rand) *nn.Network {
	var layers []nn.Layer
	in := cfg.StateDim
	for i, h := range cfg.ActorHidden {
		layers = append(layers, nn.NewDense(in, h))
		switch i {
		case 0:
			layers = append(layers, nn.NewLeakyReLU(0.2), nn.NewBatchNorm(h))
		case len(cfg.ActorHidden) - 1:
			layers = append(layers, nn.NewTanh(), nn.NewBatchNorm(h))
		default:
			layers = append(layers, nn.NewTanh(), nn.NewDropout(cfg.Dropout, rng))
		}
		in = h
	}
	layers = append(layers, nn.NewDense(in, cfg.ActionDim), nn.NewSigmoid())
	return nn.NewNetwork(layers...)
}

// Config returns the agent's configuration.
func (a *Agent) Config() Config { return a.cfg }

// TrainSteps reports how many gradient updates have been applied.
func (a *Agent) TrainSteps() int { return a.trainSteps }

// Act returns the deterministic policy action µ(s) for a single state. It
// uses the cache-free nn.Network.Infer path, so the input needs no
// defensive copy and an interleaved gradient update's backward state is
// never disturbed.
func (a *Agent) Act(state []float64) []float64 {
	x := mat.FromSlice(1, a.cfg.StateDim, state)
	out := a.actor.Infer(x)
	return append([]float64(nil), out.Data...)
}

// ActBatch returns µ(s) for every state in one batched eval-mode forward
// pass — the path core's cross-worker inference batcher uses to amortize
// the network traversal over concurrent action requests. Row i of the
// result corresponds to states[i]. Like Act it must run under the
// caller's agent lock (it reads the actor's parameters), but one call
// serves the whole batch with a single traversal.
func (a *Agent) ActBatch(states [][]float64) [][]float64 {
	if len(states) == 0 {
		return nil
	}
	x := mat.New(len(states), a.cfg.StateDim)
	for i, s := range states {
		copy(x.Row(i), s)
	}
	out := a.actor.Infer(x)
	acts := make([][]float64, len(states))
	for i := range acts {
		acts[i] = append([]float64(nil), out.Row(i)...)
	}
	return acts
}

// ActNoisy returns µ(s) perturbed by exploration noise. Out-of-range
// values are reflected back into [0, 1] rather than clamped: clamping
// piles a large fraction of exploration exactly onto the boundary values,
// which for knobs like the buffer pool is the pathological corner of the
// configuration space.
func (a *Agent) ActNoisy(state []float64) []float64 {
	return a.ActNoisyFrom(state, a.Noise)
}

// ActNoisyFrom is ActNoisy drawing perturbations from the given noise
// process instead of the agent's own — parallel training workers each hold
// a fork of a.Noise so the OU temporal state is not shared across
// concurrent episodes. A nil src falls back to a.Noise.
func (a *Agent) ActNoisyFrom(state []float64, src rl.Noise) []float64 {
	return a.Perturb(a.Act(state), src)
}

// Perturb applies exploration noise from src (the agent's own process
// when nil) to a greedy action in place and returns it. It consumes the
// agent's rng, so it falls under the same caller-held lock as TrainStep;
// core's inference batcher uses it to noise each exploring request of a
// batch right after the shared ActBatch forward pass, inside one lock
// acquisition.
func (a *Agent) Perturb(act []float64, src rl.Noise) []float64 {
	if src == nil {
		src = a.Noise
	}
	noise := src.Sample(a.rng, len(act))
	k := a.cfg.ExploreDims
	if k <= 0 || k >= len(act) {
		for i := range act {
			act[i] = reflect01(act[i] + noise[i])
		}
		return act
	}
	for _, i := range a.rng.Perm(len(act))[:k] {
		act[i] = reflect01(act[i] + noise[i])
	}
	return act
}

// logit is the inverse sigmoid, clamped so extreme defaults stay inside
// the trainable region.
func logit(x float64) float64 {
	if x < 0.02 {
		x = 0.02
	}
	if x > 0.98 {
		x = 0.98
	}
	return math.Log(x / (1 - x))
}

// reflect01 folds x into [0, 1] by reflection at the boundaries.
func reflect01(x float64) float64 {
	for x < 0 || x > 1 {
		if x < 0 {
			x = -x
		}
		if x > 1 {
			x = 2 - x
		}
	}
	return x
}

// Observe stores a transition in the memory pool.
func (a *Agent) Observe(t rl.Transition) { a.Memory.Add(t) }

// SetBCTarget records the best-known action for the self-imitation term
// (see Config.BCWeight). Pass nil to clear it.
func (a *Agent) SetBCTarget(action []float64) {
	if action == nil {
		a.bcTarget = nil
		return
	}
	a.bcTarget = append(a.bcTarget[:0], action...)
}

// BCTarget returns the current self-imitation target, or nil.
func (a *Agent) BCTarget() []float64 { return a.bcTarget }

// StepInfo reports the losses and health signals of one gradient update,
// for training telemetry and learner-health supervision.
type StepInfo struct {
	// CriticLoss is the importance-weighted squared TD error of the batch.
	CriticLoss float64
	// ActorLoss is the actor objective −mean Q(s, µ(s)) over the batch;
	// only meaningful when ActorUpdated is true (PolicyDelay skips actor
	// updates on most critic steps).
	ActorLoss    float64
	ActorUpdated bool

	// CriticGradNorm and ActorGradNorm are the pre-clip global L2 gradient
	// norms of the update (ActorGradNorm only when ActorUpdated). A norm
	// orders of magnitude above Config.MaxGradNorm means the optimizer is
	// flying blind — every step is clipped down from a direction dominated
	// by a few outlier samples.
	CriticGradNorm float64
	ActorGradNorm  float64

	// MeanAbsQ is the critic's mean |Q(s, a)| over the replayed batch.
	// Stored rewards are bounded, so the achievable |return| is too;
	// MeanAbsQ growing past that bound is the TD3-style critic
	// overestimation spiral, the dominant DDPG failure mode.
	MeanAbsQ float64

	// MaxWeight is the largest parameter magnitude across the online actor
	// and critic after the update; NaN when any weight went non-finite.
	MaxWeight float64

	// ActorSaturation is the fraction of µ(s) outputs in the batch within
	// 0.02 of a [0,1] boundary (only measured when ActorUpdated). A fully
	// saturated policy has collapsed into an action-space corner and its
	// sigmoid gradients have vanished — it cannot learn its way back out.
	ActorSaturation float64

	// SkippedNonFinite marks a batch whose loss or gradients were not
	// finite: the update was discarded before touching any weight, and the
	// agent's skipped-batch counter advanced. All other fields except
	// CriticLoss are zero for a skipped batch.
	SkippedNonFinite bool
}

// TrainStep performs one critic and one actor update from a replayed
// batch, then soft-updates the target networks (Algorithm 1). It returns
// the critic loss, or ok=false if the memory pool is still too small.
func (a *Agent) TrainStep() (criticLoss float64, ok bool) {
	info, ok := a.TrainStepInfo()
	return info.CriticLoss, ok
}

// TrainStepInfo is TrainStep returning the full per-update losses.
func (a *Agent) TrainStepInfo() (StepInfo, bool) {
	if a.Memory.Len() < a.cfg.MinMemory || a.Memory.Len() < a.cfg.BatchSize {
		return StepInfo{}, false
	}
	n := a.cfg.BatchSize
	batch, indices, weights := a.Memory.Sample(a.rng, n)

	a.states = mat.Reuse(a.states, n, a.cfg.StateDim)
	a.actions = mat.Reuse(a.actions, n, a.cfg.ActionDim)
	a.next = mat.Reuse(a.next, n, a.cfg.StateDim)
	states, actions, next := a.states, a.actions, a.next
	for i, t := range batch {
		copy(states.Row(i), t.State)
		copy(actions.Row(i), t.Action)
		copy(next.Row(i), t.NextState)
	}

	// The target-action smoothing noise is pre-drawn here so the agent's
	// rng consumption order (Sample → smoothing → dropout masks) is the
	// same whether or not the target pass below overlaps the online one.
	a.smoothEps = mat.ReuseVec(a.smoothEps, n*a.cfg.ActionDim)
	for i := range a.smoothEps {
		eps := 0.05 * a.rng.NormFloat64()
		if eps > 0.1 {
			eps = 0.1
		}
		if eps < -0.1 {
			eps = -0.1
		}
		a.smoothEps[i] = eps
	}

	// Step 2-4 of Algorithm 1: y_i = r + γ·Q'(s', µ'(s')). The target
	// action is smoothed with small clipped noise (Fujimoto et al. 2018):
	// it regularizes the bootstrapped value against the critic's sharp
	// extrapolation errors, which otherwise drag the actor into
	// action-space corners.
	//
	// The whole target-side computation runs in a goroutine overlapping
	// the online critic's train-mode forward below: the two touch
	// disjoint networks and scratch buffers, the target side draws no
	// randomness (Infer skips dropout; the smoothing noise is pre-drawn),
	// and the channel join orders every write before the first read — so
	// the overlap is bit-for-bit identical to the sequential schedule.
	a.target = mat.Reuse(a.target, n, 1)
	target := a.target
	go func() {
		nextActions := a.actorTarget.Infer(next)
		for i := range nextActions.Data {
			nextActions.Data[i] = mat.Clamp(nextActions.Data[i]+a.smoothEps[i], 0, 1)
		}
		nextQ := a.critTarget.forward(next, nextActions, false)
		for i, t := range batch {
			y := t.Reward
			if !t.Done {
				y += a.cfg.Gamma * nextQ.Data[i]
			}
			target.Data[i] = y
		}
		a.targetDone <- struct{}{}
	}()

	// Step 5-6: critic regression toward y with importance weights.
	a.critic.net().ZeroGrad()
	q := a.critic.forward(states, actions, true)
	<-a.targetDone

	a.grad = mat.Reuse(a.grad, n, 1)
	grad := a.grad
	a.tdErrors = mat.ReuseVec(a.tdErrors, n)
	tdErrors := a.tdErrors
	var loss, absQ float64
	for i := 0; i < n; i++ {
		d := q.Data[i] - target.Data[i]
		tdErrors[i] = d
		w := weights[i]
		loss += w * d * d
		grad.Data[i] = 2 * w * d / float64(n)
		absQ += math.Abs(q.Data[i])
	}
	loss /= float64(n)
	absQ /= float64(n)
	if !finite(loss) {
		// A NaN/Inf loss means the batch carried a non-finite sample (or
		// the critic's weights are already ruined): applying it would
		// poison every parameter in one optimizer step. Discard the update
		// before any backward pass runs — in particular before the actor's
		// train-mode forward below would fold the poisoned states into
		// BatchNorm running statistics.
		a.skippedBatches++
		return StepInfo{CriticLoss: loss, SkippedNonFinite: true}, true
	}
	a.critic.backward(grad)
	criticNorm := a.critic.net().ClipGradients(a.cfg.MaxGradNorm)
	if !finite(criticNorm) {
		a.skippedBatches++
		a.critic.net().ZeroGrad()
		return StepInfo{CriticLoss: loss, SkippedNonFinite: true}, true
	}
	a.criticOpt.Step()
	a.Memory.UpdatePriorities(indices, tdErrors)
	a.critTarget.softUpdateFrom(a.critic, a.cfg.Tau)

	a.trainSteps++
	delay := a.cfg.PolicyDelay
	if delay < 1 {
		delay = 1
	}
	if a.trainSteps%delay != 0 {
		return StepInfo{
			CriticLoss:     loss,
			CriticGradNorm: criticNorm,
			MeanAbsQ:       absQ,
			MaxWeight:      a.maxAbsWeight(),
		}, true
	}

	// Step 7: actor ascends ∇_a Q(s, µ(s)) via the chain rule. The first
	// (train-mode) pass only refreshes BatchNorm running statistics; the
	// gradient pass runs in evaluation mode so the update applies to the
	// exact function that Act deploys (batch-vs-running-stats mismatch
	// otherwise biases the learned policy). Neither pass mutates states,
	// so both share the batch buffer.
	a.actor.Forward(states, true)
	a.actor.ZeroGrad()
	mu := a.actor.Forward(states, false)
	qPi := a.critic.forward(states, mu, false)
	var actorLoss, saturated float64
	for i := 0; i < n; i++ {
		actorLoss -= qPi.Data[i]
		for _, v := range mu.Row(i) {
			if v < 0.02 || v > 0.98 {
				saturated++
			}
		}
	}
	actorLoss /= float64(n)
	saturated /= float64(n * a.cfg.ActionDim)
	a.ones = mat.Reuse(a.ones, n, 1)
	ones := a.ones
	ones.Fill(-1.0 / float64(n)) // minimize −Q
	// backwardInput leaves the critic's parameter gradients untouched
	// (they are already zero after its optimizer step), so nothing needs
	// discarding afterwards.
	_, dAction := a.critic.backwardInput(ones)
	if a.cfg.BCWeight > 0 && a.bcTarget != nil {
		// Self-imitation: add the gradient of
		// BCWeight·‖µ(s) − a_best‖²/n to the action gradient.
		w := 2 * a.cfg.BCWeight / float64(n*len(a.bcTarget))
		for i := 0; i < n; i++ {
			row := mu.Row(i)
			drow := dAction.Row(i)
			for j := range drow {
				drow[j] += w * (row[j] - a.bcTarget[j])
			}
		}
	}
	a.actor.Backward(dAction)
	actorNorm := a.actor.ClipGradients(a.cfg.MaxGradNorm)
	if !finite(actorLoss) || !finite(actorNorm) {
		// The critic half of the update was finite and has been applied;
		// only the actor's half is poisoned (e.g. a critic weight crossed
		// into overflow during this pass). Discard the actor update alone.
		a.skippedBatches++
		a.actor.ZeroGrad()
		return StepInfo{
			CriticLoss:       loss,
			CriticGradNorm:   criticNorm,
			MeanAbsQ:         absQ,
			SkippedNonFinite: true,
		}, true
	}
	a.actorOpt.Step()

	// Soft target update: θ' ← τθ + (1−τ)θ'.
	a.actorTarget.SoftUpdateFrom(a.actor, a.cfg.Tau)
	return StepInfo{
		CriticLoss:      loss,
		ActorLoss:       actorLoss,
		ActorUpdated:    true,
		CriticGradNorm:  criticNorm,
		ActorGradNorm:   actorNorm,
		MeanAbsQ:        absQ,
		MaxWeight:       a.maxAbsWeight(),
		ActorSaturation: saturated,
	}, true
}

// finite reports whether v is neither NaN nor infinite.
func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// maxAbsWeight is the largest parameter magnitude across the online actor
// and critic (targets trail them, so scanning the online pair suffices);
// NaN as soon as any weight is NaN.
func (a *Agent) maxAbsWeight() float64 {
	w := a.actor.MaxAbsWeight()
	if math.IsNaN(w) {
		return w
	}
	if cw := a.critic.net().MaxAbsWeight(); math.IsNaN(cw) || cw > w {
		w = cw
	}
	return w
}

// SkippedBatches reports how many replayed batches were discarded because
// their loss or gradients were non-finite.
func (a *Agent) SkippedBatches() int { return a.skippedBatches }

// QValue returns the critic's score for a single (state, action) pair,
// used by diagnostics and tests.
func (a *Agent) QValue(state, action []float64) float64 {
	s := mat.FromSlice(1, a.cfg.StateDim, append([]float64(nil), state...))
	act := mat.FromSlice(1, a.cfg.ActionDim, append([]float64(nil), action...))
	return a.critic.forward(s, act, false).Data[0]
}

// Save serializes actor, critic, their targets, and the remembered best
// configuration (the self-imitation target that also seeds online
// recommendations).
func (a *Agent) Save(w io.Writer) error {
	for _, n := range a.networks() {
		if err := n.Save(w); err != nil {
			return fmt.Errorf("ddpg: save: %w", err)
		}
	}
	if err := gob.NewEncoder(w).Encode(agentExtras{BCTarget: a.bcTarget}); err != nil {
		return fmt.Errorf("ddpg: save extras: %w", err)
	}
	return nil
}

// netNames labels the networks in Save/Load order for error messages.
var netNames = [...]string{"actor", "actor target", "critic", "critic target"}

// Load restores state previously written by Save into an agent built with
// the same Config. Everything is decoded and validated before any weight
// is touched: each network's layer dimensions must match the architecture
// Config builds, every weight and BatchNorm statistic must be finite, and
// a stored self-imitation target must fit ActionDim. A corrupt or
// mismatched model is rejected with a descriptive error and the agent is
// left exactly as it was.
func (a *Agent) Load(r io.Reader) error {
	nets := a.networks()
	states := make([]*nn.NetworkState, len(nets))
	for i := range nets {
		st, err := nn.ReadState(r)
		if err != nil {
			return fmt.Errorf("ddpg: load %s: %w", netNames[i], err)
		}
		states[i] = st
	}
	var ex agentExtras
	if err := gob.NewDecoder(r).Decode(&ex); err != nil {
		return fmt.Errorf("ddpg: load extras: %w", err)
	}
	for i, st := range states {
		if err := nets[i].CheckState(st); err != nil {
			return fmt.Errorf("ddpg: load %s: model does not match Config (state %d, action %d): %w",
				netNames[i], a.cfg.StateDim, a.cfg.ActionDim, err)
		}
		if err := st.Finite(); err != nil {
			return fmt.Errorf("ddpg: load %s: corrupt model: %w", netNames[i], err)
		}
	}
	if ex.BCTarget != nil {
		if len(ex.BCTarget) != a.cfg.ActionDim {
			return fmt.Errorf("ddpg: load extras: best-action target has %d dims, want %d", len(ex.BCTarget), a.cfg.ActionDim)
		}
		for _, v := range ex.BCTarget {
			if !finite(v) {
				return fmt.Errorf("ddpg: load extras: best-action target contains non-finite value %v", v)
			}
		}
	}
	for i, st := range states {
		if err := nets[i].SetState(st); err != nil {
			return fmt.Errorf("ddpg: load %s: %w", netNames[i], err)
		}
	}
	a.bcTarget = ex.BCTarget
	return nil
}

// agentExtras is the non-network agent state included in Save/Load.
type agentExtras struct {
	BCTarget []float64
}
