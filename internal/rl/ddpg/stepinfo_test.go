package ddpg

import (
	"math"
	"math/rand"
	"testing"

	"cdbtune/internal/rl"
)

func TestTrainStepInfoPolicyDelay(t *testing.T) {
	cfg := smallConfig(3, 2)
	cfg.PolicyDelay = 2
	a := New(cfg)
	rng := rand.New(rand.NewSource(20))
	for i := 0; i < cfg.MinMemory; i++ {
		a.Observe(rl.Transition{
			State:     []float64{rng.Float64(), rng.Float64(), rng.Float64()},
			Action:    []float64{rng.Float64(), rng.Float64()},
			Reward:    rng.Float64(),
			NextState: []float64{rng.Float64(), rng.Float64(), rng.Float64()},
		})
	}
	first, ok := a.TrainStepInfo()
	if !ok {
		t.Fatal("TrainStepInfo should run at MinMemory")
	}
	if first.ActorUpdated || first.ActorLoss != 0 {
		t.Fatalf("PolicyDelay=2 must skip the actor on the first critic update: %+v", first)
	}
	second, ok := a.TrainStepInfo()
	if !ok {
		t.Fatal("second TrainStepInfo refused")
	}
	if !second.ActorUpdated {
		t.Fatal("second update must include the actor")
	}
	if math.IsNaN(second.ActorLoss) || math.IsInf(second.ActorLoss, 0) {
		t.Fatalf("actor loss = %v", second.ActorLoss)
	}
	if first.CriticLoss < 0 || second.CriticLoss < 0 {
		t.Fatalf("critic loss is a weighted square, must be ≥ 0: %v, %v", first.CriticLoss, second.CriticLoss)
	}
	// The legacy wrapper reports the same critic loss stream.
	if loss, ok := a.TrainStep(); !ok || loss < 0 {
		t.Fatalf("TrainStep wrapper: loss %v ok %v", loss, ok)
	}
	if a.TrainSteps() != 3 {
		t.Fatalf("TrainSteps = %d, want 3", a.TrainSteps())
	}
}
