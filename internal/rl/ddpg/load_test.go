package ddpg

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func loadTestConfig() Config {
	cfg := DefaultConfig(8, 4)
	cfg.ActorHidden = []int{16, 16}
	cfg.CriticHidden = []int{32, 16}
	cfg.Seed = 3
	return cfg
}

// TestLoadRejectsMismatchedDimensions: a model saved under one
// architecture must not load into an agent built for another, and the
// failed load must leave the destination agent exactly as it was.
func TestLoadRejectsMismatchedDimensions(t *testing.T) {
	src := New(loadTestConfig())
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}

	other := loadTestConfig()
	other.ActionDim = 6 // different knob count
	dst := New(other)
	before := dst.Snapshot()
	err := dst.Load(bytes.NewReader(buf.Bytes()))
	if err == nil {
		t.Fatal("loading a 4-action model into a 6-action agent must fail")
	}
	if !strings.Contains(err.Error(), "does not match Config") {
		t.Fatalf("dimension mismatch error should say so, got: %v", err)
	}
	after := dst.Snapshot()
	for i := range before.nets {
		for j, p := range before.nets[i].Params {
			for k, v := range p {
				if after.nets[i].Params[j][k] != v {
					t.Fatalf("failed Load modified network %d param %d[%d]", i, j, k)
				}
			}
		}
	}
}

// TestLoadRejectsNonFiniteWeights: a saved model carrying NaN/Inf weights
// (a divergence that escaped to disk, or on-disk corruption that survived
// gob) is rejected with a descriptive error before any weight is applied.
func TestLoadRejectsNonFiniteWeights(t *testing.T) {
	src := New(loadTestConfig())
	// Poison one actor weight, then save.
	src.actor.Layers[0].Params()[0].Value.Data[0] = math.NaN()
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}

	dst := New(loadTestConfig())
	err := dst.Load(bytes.NewReader(buf.Bytes()))
	if err == nil {
		t.Fatal("loading a NaN-weight model must fail")
	}
	if !strings.Contains(err.Error(), "corrupt model") || !strings.Contains(err.Error(), "actor") {
		t.Fatalf("non-finite weight error should name the network and corruption, got: %v", err)
	}
	if w := dst.maxAbsWeight(); math.IsNaN(w) {
		t.Fatal("failed Load leaked NaN into the destination agent")
	}
}

// TestLoadRejectsBadBCTarget: the stored self-imitation target is
// validated like everything else.
func TestLoadRejectsBadBCTarget(t *testing.T) {
	src := New(loadTestConfig())
	src.SetBCTarget([]float64{0.1, 0.2, math.Inf(1), 0.4})
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	dst := New(loadTestConfig())
	if err := dst.Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("loading an Inf best-action target must fail")
	}
}

// TestLoadRoundTrip: the validation path still accepts a healthy model.
func TestLoadRoundTrip(t *testing.T) {
	src := New(loadTestConfig())
	src.SetBCTarget([]float64{0.1, 0.2, 0.3, 0.4})
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	dst := New(loadTestConfig())
	if err := dst.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	state := []float64{0.5, 0.1, 0.9, 0.3, 0.7, 0.2, 0.8, 0.4}
	a, b := src.Act(state), dst.Act(state)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			t.Fatalf("round-tripped policy differs at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
