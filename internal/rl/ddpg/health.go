package ddpg

import (
	"fmt"

	"cdbtune/internal/nn"
)

// WeightSnapshot is a cheap in-memory copy of the agent's learnable state:
// the four networks' parameters and BatchNorm statistics plus the
// self-imitation target. It is what the learner-health supervisor rolls
// back to on divergence — no serialization, just slice copies, so taking
// one on a healthy cadence costs microseconds, not a disk round-trip.
type WeightSnapshot struct {
	nets     []*nn.NetworkState
	bcTarget []float64
}

// Snapshot captures the agent's current weights. Callers must hold the
// same lock that serializes TrainStep.
func (a *Agent) Snapshot() *WeightSnapshot {
	s := &WeightSnapshot{}
	for _, n := range a.networks() {
		s.nets = append(s.nets, n.State())
	}
	if a.bcTarget != nil {
		s.bcTarget = append([]float64(nil), a.bcTarget...)
	}
	return s
}

// Restore rolls the agent's weights back to a snapshot taken from this
// agent (or one with an identical Config) and resets both optimizers'
// Adam moments — moments estimated on the diverged trajectory would push
// the restored weights straight back toward the divergence. The replay
// memory, train-step counter and noise process are left untouched.
func (a *Agent) Restore(s *WeightSnapshot) error {
	nets := a.networks()
	if len(s.nets) != len(nets) {
		return fmt.Errorf("ddpg: snapshot has %d networks, want %d", len(s.nets), len(nets))
	}
	for i, n := range nets {
		if err := n.CheckState(s.nets[i]); err != nil {
			return fmt.Errorf("ddpg: restore snapshot: %w", err)
		}
	}
	for i, n := range nets {
		if err := n.SetState(s.nets[i]); err != nil {
			return fmt.Errorf("ddpg: restore snapshot: %w", err)
		}
	}
	a.bcTarget = nil
	if s.bcTarget != nil {
		a.bcTarget = append([]float64(nil), s.bcTarget...)
	}
	a.actorOpt.Reset()
	a.criticOpt.Reset()
	return nil
}

// ScaleLR multiplies both optimizers' learning rates by f — the
// supervisor's backoff after a rollback. It returns the critic's new rate
// for logging.
func (a *Agent) ScaleLR(f float64) float64 {
	a.actorOpt.LR *= f
	a.criticOpt.LR *= f
	return a.criticOpt.LR
}

// LearningRates reports the current actor and critic learning rates
// (they start at Config.ActorLR/CriticLR and shrink under ScaleLR).
func (a *Agent) LearningRates() (actor, critic float64) {
	return a.actorOpt.LR, a.criticOpt.LR
}

// networks lists the four networks in Save/Load order.
func (a *Agent) networks() []*nn.Network {
	return []*nn.Network{a.actor, a.actorTarget, a.critic.net(), a.critTarget.net()}
}
