package rl

import (
	"math"
	"math/rand"
)

// Transition is one experience-replay sample: the database state before the
// action, the normalized knob vector applied, the scalar reward, the state
// after, and whether the episode terminated (e.g. the instance crashed).
type Transition struct {
	State     []float64
	Action    []float64
	Reward    float64
	NextState []float64
	Done      bool
}

// Memory is the interface shared by the replay pools. UniformMemory and
// PrioritizedMemory require external serialization; ShardedMemory (which
// additionally implements ConcurrentMemory) is internally synchronized.
// See the package documentation for the full concurrency contract.
type Memory interface {
	// Add stores a transition, evicting the oldest when full.
	Add(t Transition)
	// Sample draws a batch of n transitions. The returned indices identify
	// the samples for UpdatePriorities; weights are importance-sampling
	// corrections (all 1 for uniform replay).
	Sample(rng *rand.Rand, n int) (batch []Transition, indices []int, weights []float64)
	// UpdatePriorities records new TD errors for previously sampled items.
	// Uniform replay ignores it.
	UpdatePriorities(indices []int, tdErrors []float64)
	// Len reports the number of stored transitions.
	Len() int
	// Transitions returns a copy of the stored transitions oldest-first,
	// for diagnostics and tests.
	Transitions() []Transition
}

// UniformMemory is a fixed-capacity ring buffer with uniform sampling.
type UniformMemory struct {
	capacity int
	buf      []Transition
	next     int
	full     bool
}

// NewUniformMemory returns a replay pool holding at most capacity
// transitions.
func NewUniformMemory(capacity int) *UniformMemory {
	if capacity <= 0 {
		panic("rl: memory capacity must be positive")
	}
	return &UniformMemory{capacity: capacity, buf: make([]Transition, 0, capacity)}
}

// Add implements Memory.
func (m *UniformMemory) Add(t Transition) {
	if len(m.buf) < m.capacity {
		m.buf = append(m.buf, t)
		return
	}
	m.buf[m.next] = t
	m.next = (m.next + 1) % m.capacity
	m.full = true
}

// Sample implements Memory.
func (m *UniformMemory) Sample(rng *rand.Rand, n int) ([]Transition, []int, []float64) {
	if len(m.buf) == 0 {
		return nil, nil, nil
	}
	batch := make([]Transition, n)
	indices := make([]int, n)
	weights := make([]float64, n)
	for i := 0; i < n; i++ {
		j := rng.Intn(len(m.buf))
		batch[i] = m.buf[j]
		indices[i] = j
		weights[i] = 1
	}
	return batch, indices, weights
}

// mass is the pool's total sampling mass: one unit per stored transition.
func (m *UniformMemory) mass() float64 { return float64(len(m.buf)) }

// UpdatePriorities implements Memory (no-op for uniform sampling).
func (m *UniformMemory) UpdatePriorities([]int, []float64) {}

// Len implements Memory.
func (m *UniformMemory) Len() int { return len(m.buf) }

// Transitions implements Memory.
func (m *UniformMemory) Transitions() []Transition { return m.ordered() }

// PrioritizedMemory implements proportional prioritized experience replay
// (Schaul et al. 2015) with a sum tree. New transitions enter with maximal
// priority so they are sampled at least once; sampled transitions are
// re-weighted by importance sampling with exponent beta.
type PrioritizedMemory struct {
	capacity int
	alpha    float64
	beta     float64
	eps      float64

	tree  []float64 // binary sum tree over leaf priorities
	data  []Transition
	next  int
	size  int
	maxPr float64
}

// NewPrioritizedMemory returns a prioritized pool with the usual exponents
// (alpha 0.6, beta 0.4).
func NewPrioritizedMemory(capacity int) *PrioritizedMemory {
	if capacity <= 0 {
		panic("rl: memory capacity must be positive")
	}
	return &PrioritizedMemory{
		capacity: capacity,
		alpha:    0.6,
		beta:     0.4,
		eps:      1e-3,
		tree:     make([]float64, 2*capacity),
		data:     make([]Transition, capacity),
		maxPr:    1,
	}
}

func (m *PrioritizedMemory) setPriority(leaf int, p float64) {
	i := leaf + m.capacity
	delta := p - m.tree[i]
	for ; i >= 1; i /= 2 {
		m.tree[i] += delta
	}
}

func (m *PrioritizedMemory) find(v float64) int {
	i := 1
	for i < m.capacity {
		left := 2 * i
		if v <= m.tree[left] || m.tree[left+1] == 0 {
			i = left
		} else {
			v -= m.tree[left]
			i = left + 1
		}
	}
	return i - m.capacity
}

// Add implements Memory.
func (m *PrioritizedMemory) Add(t Transition) {
	m.data[m.next] = t
	m.setPriority(m.next, m.maxPr)
	m.next = (m.next + 1) % m.capacity
	if m.size < m.capacity {
		m.size++
	}
}

// Sample implements Memory using stratified proportional sampling.
func (m *PrioritizedMemory) Sample(rng *rand.Rand, n int) ([]Transition, []int, []float64) {
	if m.size == 0 {
		return nil, nil, nil
	}
	total := m.tree[1]
	batch := make([]Transition, n)
	indices := make([]int, n)
	weights := make([]float64, n)
	seg := total / float64(n)
	var maxW float64
	for i := 0; i < n; i++ {
		v := seg*float64(i) + rng.Float64()*seg
		leaf := m.find(v)
		if leaf >= m.size { // can happen while filling; clamp
			leaf = rng.Intn(m.size)
		}
		indices[i] = leaf
		batch[i] = m.data[leaf]
		pr := m.tree[leaf+m.capacity] / total
		w := math.Pow(float64(m.size)*pr, -m.beta)
		weights[i] = w
		if w > maxW {
			maxW = w
		}
	}
	if maxW > 0 {
		for i := range weights {
			weights[i] /= maxW
		}
	}
	return batch, indices, weights
}

// mass is the pool's total sampling mass: the sum-tree root.
func (m *PrioritizedMemory) mass() float64 { return m.tree[1] }

// UpdatePriorities implements Memory.
func (m *PrioritizedMemory) UpdatePriorities(indices []int, tdErrors []float64) {
	for i, idx := range indices {
		p := math.Pow(math.Abs(tdErrors[i])+m.eps, m.alpha)
		if p > m.maxPr {
			m.maxPr = p
		}
		m.setPriority(idx, p)
	}
}

// Len implements Memory.
func (m *PrioritizedMemory) Len() int { return m.size }

// Transitions implements Memory.
func (m *PrioritizedMemory) Transitions() []Transition { return m.ordered() }

// TotalPriority exposes the root of the sum tree for testing.
func (m *PrioritizedMemory) TotalPriority() float64 { return m.tree[1] }
