package rl

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
)

// ConcurrentMemory marks Memory implementations that are safe for
// concurrent use by multiple goroutines with no external locking. core's
// Tuner checks for it to decide whether Observe may bypass the agent lock.
type ConcurrentMemory interface {
	Memory
	// ConcurrencySafe is a marker method: implementations synchronize Add,
	// Sample, UpdatePriorities, Len and Transitions internally (Save and
	// Load remain excluded; see the package documentation).
	ConcurrencySafe()
}

// memoryShard is one lock-striped slice of a ShardedMemory: a ring buffer
// (uniform or prioritized) behind its own mutex, plus lock-free mirrors
// of its sampling mass and length so Sample's proportional-allocation
// snapshot and Len never take the mutex at all. The trailing padding
// keeps adjacent shards off one cache line, so uncontended lock/unlock
// and atomic loads on neighboring shards do not false-share.
type memoryShard struct {
	mu  sync.Mutex
	uni *UniformMemory
	pri *PrioritizedMemory

	// massBits (the float64 bits of the shard's sampling mass) and n (its
	// length) are written under mu after every mutation and read without
	// it; readers therefore see a moment-in-time snapshot that can only
	// lag behind, never overshoot, the shard's true contents (pools only
	// grow). See the package documentation's staleness guarantee.
	massBits atomic.Uint64
	n        atomic.Int64

	_ [16]byte
}

// mass returns the shard's sampling mass. Callers hold the shard mutex.
func (s *memoryShard) mass() float64 {
	if s.pri != nil {
		return s.pri.mass()
	}
	return s.uni.mass()
}

// inner returns the shard's pool through the Memory interface. Callers
// hold the shard mutex.
func (s *memoryShard) inner() Memory {
	if s.pri != nil {
		return s.pri
	}
	return s.uni
}

// publishStats refreshes the lock-free mass/length mirrors. Callers hold
// the shard mutex.
func (s *memoryShard) publishStats() {
	s.massBits.Store(math.Float64bits(s.mass()))
	s.n.Store(int64(s.inner().Len()))
}

// ShardedMemory is a replay pool split across a power-of-two number of
// independently locked shards, so concurrent training workers can Add
// transitions without serializing behind one mutex — the scaling bottleneck
// the single-lock pools hit once many tuning episodes stream experience at
// once. Add round-robins inserts off an atomic counter; Sample draws each
// batch slot from a shard chosen proportionally to the shard's sampling
// mass (transition count for uniform shards, sum-tree total priority for
// prioritized shards) and merges the per-shard draws into one batch. See
// the package documentation for the concurrency contract and the exact
// sampling-distribution guarantee.
type ShardedMemory struct {
	shards      []memoryShard
	mask        uint64
	perShardCap int
	prioritized bool
	beta        float64 // importance-sampling exponent, mirrored from the shards
	ctr         atomic.Uint64
}

// Compile-time checks: ShardedMemory is a concurrency-safe Memory; the
// single-lock pools satisfy plain Memory.
var (
	_ ConcurrentMemory = (*ShardedMemory)(nil)
	_ Memory           = (*UniformMemory)(nil)
	_ Memory           = (*PrioritizedMemory)(nil)
)

// NewShardedMemory returns a pool of (at least) the given total capacity
// split across `shards` ring buffers. The shard count is rounded up to the
// next power of two; capacity is divided evenly across shards, rounding
// up. prioritized selects per-shard proportional prioritized replay with
// the usual exponents (see NewPrioritizedMemory).
func NewShardedMemory(capacity, shards int, prioritized bool) *ShardedMemory {
	if capacity <= 0 {
		panic("rl: memory capacity must be positive")
	}
	if shards < 1 {
		shards = 1
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	per := (capacity + n - 1) / n
	m := &ShardedMemory{
		shards:      make([]memoryShard, n),
		mask:        uint64(n - 1),
		perShardCap: per,
		prioritized: prioritized,
	}
	for i := range m.shards {
		if prioritized {
			m.shards[i].pri = NewPrioritizedMemory(per)
		} else {
			m.shards[i].uni = NewUniformMemory(per)
		}
	}
	if prioritized {
		m.beta = m.shards[0].pri.beta
	}
	return m
}

// ConcurrencySafe implements ConcurrentMemory.
func (m *ShardedMemory) ConcurrencySafe() {}

// ShardCount reports the number of shards (always a power of two).
func (m *ShardedMemory) ShardCount() int { return len(m.shards) }

// Prioritized reports whether the shards use prioritized replay.
func (m *ShardedMemory) Prioritized() bool { return m.prioritized }

// Add implements Memory. Inserts round-robin across shards off one atomic
// counter, so writers contend only on a single fetch-add plus the target
// shard's mutex — never on each other's shards.
func (m *ShardedMemory) Add(t Transition) {
	s := &m.shards[(m.ctr.Add(1)-1)&m.mask]
	s.mu.Lock()
	s.inner().Add(t)
	s.publishStats()
	s.mu.Unlock()
}

// Sample implements Memory: it snapshots every shard's sampling mass from
// the lock-free mirrors, assigns each of the n batch slots to a shard
// proportionally to that mass, then visits each shard exactly once —
// lock, draw all of its assigned slots, unlock — so a batch costs at most
// ShardCount lock round-trips no matter how large n is, and concurrent
// writers only ever wait out one shard's slice of the draw. Each slot
// spends a single rng draw: the residual of the shard pick, rescaled to
// [0,1), drives the intra-shard draw, mirroring how the single-tree
// implementation reuses one stratified variate per slot. Returned indices
// encode (shard, slot) as slot·ShardCount + shard for UpdatePriorities;
// weights are importance-sampling corrections computed against the
// pool-wide size and total mass (all 1 for uniform shards), normalized by
// the batch maximum.
func (m *ShardedMemory) Sample(rng *rand.Rand, n int) ([]Transition, []int, []float64) {
	k := len(m.shards)
	var massArr [64]float64
	masses := massArr[:0]
	if k > len(massArr) {
		masses = make([]float64, 0, k)
	}
	var total float64
	var totalLen int64
	// The snapshot reads the lock-free mirrors — no shard mutex is
	// touched until the draws themselves.
	for i := range m.shards {
		s := &m.shards[i]
		mass := math.Float64frombits(s.massBits.Load())
		masses = append(masses, mass)
		totalLen += s.n.Load()
		total += mass
	}
	if total <= 0 || totalLen == 0 {
		return nil, nil, nil
	}
	batch := make([]Transition, n)
	indices := make([]int, n)
	weights := make([]float64, n)
	// Assign every batch slot to a shard proportionally to the mass
	// snapshot, skipping empty shards; float round-off at v ≈ total falls
	// through to the last non-empty shard. The shard is parked in
	// indices[i] (overwritten with the final encoding during the per-shard
	// pass — a drawn slot's value is either its own shard or ≥ k, never a
	// not-yet-visited shard) and the pick's residual, rescaled to [0,1),
	// is parked in weights[i].
	for i := 0; i < n; i++ {
		v := rng.Float64() * total
		si := -1
		for j := 0; j < k; j++ {
			if masses[j] <= 0 {
				continue
			}
			si = j
			if v < masses[j] {
				break
			}
			v -= masses[j]
		}
		indices[i] = si
		u := v / masses[si]
		if u >= 1 { // float round-off on the fall-through path
			u = math.Nextafter(1, 0)
		}
		weights[i] = u
	}
	var maxW float64
	for si := 0; si < k; si++ {
		if masses[si] <= 0 {
			continue
		}
		s := &m.shards[si]
		s.mu.Lock()
		for i := 0; i < n; i++ {
			if indices[i] != si {
				continue
			}
			u := weights[i]
			var local int
			pr := 1.0
			if m.prioritized {
				p := s.pri
				local = p.find(u * p.tree[1])
				if local >= p.size { // zero-priority tail while filling; clamp
					local = p.size - 1
				}
				pr = p.tree[local+p.capacity]
				batch[i] = p.data[local]
			} else {
				buf := s.uni.buf
				local = int(u * float64(len(buf)))
				if local >= len(buf) {
					local = len(buf) - 1
				}
				batch[i] = buf[local]
			}
			w := 1.0
			if m.prioritized {
				w = math.Pow(float64(totalLen)*pr/total, -m.beta)
			}
			indices[i] = local*k + si
			weights[i] = w
			if w > maxW {
				maxW = w
			}
		}
		s.mu.Unlock()
	}
	if maxW > 0 {
		for i := range weights {
			weights[i] /= maxW
		}
	}
	return batch, indices, weights
}

// UpdatePriorities implements Memory, routing each (shard, slot)-encoded
// index back to its shard's sum tree. The updates are bucketed by shard
// in one pass so each shard's mutex is taken at most once per call.
// Uniform shards ignore it.
func (m *ShardedMemory) UpdatePriorities(indices []int, tdErrors []float64) {
	if !m.prioritized {
		return
	}
	k := len(m.shards)
	n := len(indices)
	var cntArr [64]int
	cnt := cntArr[:0]
	if k > len(cntArr) {
		cnt = make([]int, 0, k)
	}
	cnt = cnt[:k]
	for _, idx := range indices {
		cnt[idx%k]++
	}
	// start[si] is where shard si's bucket begins in the grouped arrays;
	// the fill loop below advances it to the bucket end, so the apply loop
	// recovers the start as start[si] - cnt[si].
	var startArr [64]int
	start := startArr[:0]
	if k > len(startArr) {
		start = make([]int, 0, k)
	}
	start = start[:k]
	sum := 0
	for si := 0; si < k; si++ {
		start[si] = sum
		sum += cnt[si]
	}
	local := make([]int, n)
	td := make([]float64, n)
	for i, idx := range indices {
		si := idx % k
		local[start[si]] = idx / k
		td[start[si]] = tdErrors[i]
		start[si]++
	}
	for si := 0; si < k; si++ {
		if cnt[si] == 0 {
			continue
		}
		lo, hi := start[si]-cnt[si], start[si]
		s := &m.shards[si]
		s.mu.Lock()
		s.pri.UpdatePriorities(local[lo:hi], td[lo:hi])
		s.publishStats()
		s.mu.Unlock()
	}
}

// Len implements Memory, summing the shards' lock-free length mirrors.
// With concurrent writers the result is a moment-in-time lower bound.
func (m *ShardedMemory) Len() int {
	var total int64
	for i := range m.shards {
		total += m.shards[i].n.Load()
	}
	return int(total)
}

// Transitions implements Memory. The order is per-shard oldest-first,
// concatenated shard by shard; because Add round-robins across shards,
// the global insertion order is interleaved, not preserved.
func (m *ShardedMemory) Transitions() []Transition {
	var out []Transition
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		out = append(out, s.inner().Transitions()...)
		s.mu.Unlock()
	}
	return out
}
