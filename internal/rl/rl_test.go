package rl

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func tr(r float64) Transition {
	return Transition{State: []float64{r}, Action: []float64{r}, Reward: r, NextState: []float64{r}}
}

func TestUniformMemoryRingBuffer(t *testing.T) {
	m := NewUniformMemory(3)
	for i := 0; i < 5; i++ {
		m.Add(tr(float64(i)))
	}
	if m.Len() != 3 {
		t.Fatalf("Len = %d, want 3", m.Len())
	}
	// Oldest two (0, 1) must have been evicted.
	rng := rand.New(rand.NewSource(1))
	batch, _, w := m.Sample(rng, 100)
	for i, b := range batch {
		if b.Reward < 2 {
			t.Fatalf("sampled evicted transition with reward %v", b.Reward)
		}
		if w[i] != 1 {
			t.Fatalf("uniform weight = %v, want 1", w[i])
		}
	}
}

func TestUniformMemoryEmptySample(t *testing.T) {
	m := NewUniformMemory(3)
	batch, idx, w := m.Sample(rand.New(rand.NewSource(1)), 4)
	if batch != nil || idx != nil || w != nil {
		t.Fatal("sampling empty memory should return nils")
	}
}

func TestMemoryCapacityPanics(t *testing.T) {
	for _, f := range []func(){func() { NewUniformMemory(0) }, func() { NewPrioritizedMemory(-1) }} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic for non-positive capacity")
				}
			}()
			f()
		}()
	}
}

func TestPrioritizedMemoryPrefersHighTDError(t *testing.T) {
	m := NewPrioritizedMemory(64)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 64; i++ {
		m.Add(tr(float64(i)))
	}
	// Give transition 7 a huge TD error and everything else a tiny one.
	idx := make([]int, 64)
	errs := make([]float64, 64)
	for i := range idx {
		idx[i] = i
		errs[i] = 0.001
	}
	errs[7] = 100
	m.UpdatePriorities(idx, errs)

	counts := make(map[float64]int)
	for i := 0; i < 200; i++ {
		batch, _, _ := m.Sample(rng, 8)
		for _, b := range batch {
			counts[b.Reward]++
		}
	}
	if counts[7] < 800 {
		t.Fatalf("high-priority sample drawn only %d/1600 times", counts[7])
	}
}

func TestPrioritizedMemoryWeightsNormalized(t *testing.T) {
	m := NewPrioritizedMemory(16)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 16; i++ {
		m.Add(tr(float64(i)))
	}
	_, _, w := m.Sample(rng, 8)
	var maxW float64
	for _, x := range w {
		if x <= 0 || x > 1+1e-12 {
			t.Fatalf("IS weight %v out of (0, 1]", x)
		}
		if x > maxW {
			maxW = x
		}
	}
	if math.Abs(maxW-1) > 1e-9 {
		t.Fatalf("max IS weight = %v, want 1", maxW)
	}
}

func TestPrioritizedMemoryEviction(t *testing.T) {
	m := NewPrioritizedMemory(4)
	for i := 0; i < 9; i++ {
		m.Add(tr(float64(i)))
	}
	if m.Len() != 4 {
		t.Fatalf("Len = %d, want 4", m.Len())
	}
	rng := rand.New(rand.NewSource(4))
	batch, _, _ := m.Sample(rng, 50)
	for _, b := range batch {
		if b.Reward < 5 {
			t.Fatalf("sampled evicted transition %v", b.Reward)
		}
	}
}

// Property: the sum-tree root always equals the sum of leaf priorities.
func TestSumTreeInvariantProperty(t *testing.T) {
	f := func(seed int64, opsRaw []uint8) bool {
		m := NewPrioritizedMemory(8)
		rng := rand.New(rand.NewSource(seed))
		for _, op := range opsRaw {
			if op%2 == 0 {
				m.Add(tr(rng.Float64()))
			} else if m.Len() > 0 {
				idx := []int{rng.Intn(m.Len())}
				m.UpdatePriorities(idx, []float64{rng.Float64() * 10})
			}
		}
		var leafSum float64
		for i := 0; i < m.capacity; i++ {
			leafSum += m.tree[i+m.capacity]
		}
		return math.Abs(leafSum-m.TotalPriority()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestOUNoiseTemporallyCorrelated(t *testing.T) {
	n := NewOUNoise(0.3)
	rng := rand.New(rand.NewSource(5))
	prev := n.Sample(rng, 4)
	var sumAbsDelta, sumAbs float64
	for i := 0; i < 200; i++ {
		cur := n.Sample(rng, 4)
		for j := range cur {
			sumAbsDelta += math.Abs(cur[j] - prev[j])
			sumAbs += math.Abs(cur[j])
		}
		prev = cur
	}
	// OU increments are smaller than the process magnitude on average.
	if sumAbsDelta >= sumAbs {
		t.Fatalf("OU noise not temporally correlated: Δ=%v |x|=%v", sumAbsDelta, sumAbs)
	}
}

func TestOUNoiseResetAndDecay(t *testing.T) {
	n := NewOUNoise(0.5)
	rng := rand.New(rand.NewSource(6))
	n.Sample(rng, 2)
	n.Reset()
	if n.state != nil {
		t.Fatal("Reset did not clear state")
	}
	s := n.Decay()
	if math.Abs(s-0.5*0.99) > 1e-12 {
		t.Fatalf("Decay = %v", s)
	}
	for i := 0; i < 10000; i++ {
		n.Decay()
	}
	if n.Sigma != n.MinSigma {
		t.Fatalf("Sigma = %v, want floor %v", n.Sigma, n.MinSigma)
	}
}

func TestGaussianNoiseStats(t *testing.T) {
	g := NewGaussianNoise(2)
	rng := rand.New(rand.NewSource(7))
	var sum, sq float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := g.Sample(rng, 1)[0]
		sum += v
		sq += v * v
	}
	mean := sum / n
	std := math.Sqrt(sq/n - mean*mean)
	if math.Abs(mean) > 0.05 || math.Abs(std-2) > 0.05 {
		t.Fatalf("gaussian noise mean %v std %v, want 0 / 2", mean, std)
	}
	g.Reset() // no-op, must not panic
	if d := g.Decay(); math.Abs(d-1.98) > 1e-12 {
		t.Fatalf("Decay = %v", d)
	}
}
