package rl

import (
	"math/rand"
	"testing"
)

func TestOUNoiseForkIndependentState(t *testing.T) {
	o := NewOUNoise(0.3)
	rng := rand.New(rand.NewSource(11))
	o.Sample(rng, 3)
	f, ok := o.Fork().(*OUNoise)
	if !ok {
		t.Fatal("OUNoise fork must be an OUNoise")
	}
	if f.state != nil {
		t.Fatal("fork must start with fresh temporal state")
	}
	if f.Sigma != o.Sigma || f.Theta != o.Theta || f.DecayRate != o.DecayRate || f.MinSigma != o.MinSigma {
		t.Fatal("fork must copy the process parameters")
	}
	// Advancing the fork must not disturb the parent's temporal state.
	before := append([]float64(nil), o.state...)
	f.Sample(rng, 3)
	for i := range before {
		if o.state[i] != before[i] {
			t.Fatal("fork shares temporal state with its parent")
		}
	}
	// Scale/SetScale keep a fork on the canonical annealing schedule.
	sigma := o.Decay()
	if o.Scale() != sigma {
		t.Fatalf("Scale = %v after Decay returned %v", o.Scale(), sigma)
	}
	f.SetScale(sigma)
	if f.Scale() != sigma || o.Scale() != sigma {
		t.Fatalf("SetScale: fork %v, parent %v, want both %v", f.Scale(), o.Scale(), sigma)
	}
}

func TestGaussianNoiseForkAndScale(t *testing.T) {
	g := NewGaussianNoise(0.4)
	f := g.Fork()
	g.SetScale(0.1)
	if f.Scale() != 0.4 {
		t.Fatal("fork shares scale storage with its parent")
	}
	f.SetScale(0.2)
	if g.Scale() != 0.1 || f.Scale() != 0.2 {
		t.Fatalf("scales entangled: parent %v, fork %v", g.Scale(), f.Scale())
	}
}

func TestMemoryTransitionsOrdered(t *testing.T) {
	for name, m := range map[string]Memory{
		"uniform":     NewUniformMemory(4),
		"prioritized": NewPrioritizedMemory(4),
	} {
		for i := 0; i < 6; i++ {
			m.Add(tr(float64(i)))
		}
		trs := m.Transitions()
		if len(trs) != 4 {
			t.Fatalf("%s: %d transitions, want 4", name, len(trs))
		}
		for i, x := range trs {
			if x.Reward != float64(i+2) {
				t.Fatalf("%s: transition %d has reward %v, want oldest-first order", name, i, x.Reward)
			}
		}
	}
}
