package rl

import (
	"bytes"
	"math/rand"
	"testing"
)

func fill(m Memory, n int) {
	for i := 0; i < n; i++ {
		m.Add(tr(float64(i)))
	}
}

func TestUniformMemorySaveLoadRoundTrip(t *testing.T) {
	src := NewUniformMemory(8)
	fill(src, 5)
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	dst := NewUniformMemory(8)
	if err := dst.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if dst.Len() != 5 {
		t.Fatalf("Len = %d, want 5", dst.Len())
	}
	got := dst.ordered()
	for i, tx := range got {
		if tx.Reward != float64(i) {
			t.Fatalf("transition %d reward %v, want %v (order lost)", i, tx.Reward, i)
		}
	}
}

func TestUniformMemoryOrderedAfterWrap(t *testing.T) {
	m := NewUniformMemory(3)
	fill(m, 5) // holds 2, 3, 4
	got := m.ordered()
	want := []float64{2, 3, 4}
	for i := range want {
		if got[i].Reward != want[i] {
			t.Fatalf("ordered[%d] = %v, want %v", i, got[i].Reward, want[i])
		}
	}
}

func TestPrioritizedMemorySaveLoadRoundTrip(t *testing.T) {
	src := NewPrioritizedMemory(8)
	fill(src, 10) // wraps: holds 2..9
	src.UpdatePriorities([]int{0, 1}, []float64{5, 0.001})
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	dst := NewPrioritizedMemory(8)
	if err := dst.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if dst.Len() != 8 {
		t.Fatalf("Len = %d, want 8", dst.Len())
	}
	// Sum tree rebuilt consistently: sampling works and only live
	// transitions appear.
	rng := rand.New(rand.NewSource(1))
	batch, _, _ := dst.Sample(rng, 64)
	for _, b := range batch {
		if b.Reward < 2 || b.Reward > 9 {
			t.Fatalf("sampled stale transition %v", b.Reward)
		}
	}
	// Round trip across flavors: prioritized save → uniform load.
	var buf2 bytes.Buffer
	if err := src.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	u := NewUniformMemory(16)
	if err := u.Load(&buf2); err != nil {
		t.Fatal(err)
	}
	if u.Len() != 8 {
		t.Fatalf("cross-flavor Len = %d", u.Len())
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	m := NewUniformMemory(4)
	if err := m.Load(bytes.NewReader([]byte("not gob"))); err == nil {
		t.Fatal("garbage input must error")
	}
	p := NewPrioritizedMemory(4)
	if err := p.Load(bytes.NewReader([]byte{0x01})); err == nil {
		t.Fatal("garbage input must error")
	}
}

func TestLoadSmallerThanCapacity(t *testing.T) {
	src := NewUniformMemory(4)
	fill(src, 3)
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	dst := NewPrioritizedMemory(16)
	if err := dst.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if dst.Len() != 3 {
		t.Fatalf("Len = %d, want 3", dst.Len())
	}
}
