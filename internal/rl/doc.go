// Package rl provides the reinforcement-learning building blocks shared by
// CDBTune's agents: the experience replay memory pool (uniform, prioritized
// and sharded), exploration noise processes, and the transition type.
//
// The paper calls the replay memory the "memory pool" (§2.2.4): each sample
// is a transition (s_t, r_t, a_t, s_{t+1}) and batches are drawn at random
// to break the sequential correlation between consecutive tuning steps.
// §5.1 reports that prioritized experience replay [38] halves the number of
// iterations to convergence, so both variants are provided; ShardedMemory
// scales either variant across concurrent training workers.
//
// # Concurrency contract
//
// UniformMemory and PrioritizedMemory are NOT safe for concurrent use.
// Every method — Add, Sample, UpdatePriorities, Len, Transitions, Save,
// Load — must be externally serialized; core's Tuner guards them with its
// agent lock.
//
// ShardedMemory is safe for concurrent use by any number of goroutines
// without external locking, and advertises that through the
// ConcurrentMemory marker interface. Internally it is lock-striped: the
// pool is split across a power-of-two number of shards, each a ring buffer
// behind its own mutex, so concurrent Adds proceed in parallel and an
// in-flight Sample only delays writers to the shard it is currently
// reading. Each shard additionally mirrors its sampling mass and length
// into lock-free atomics, so Sample's proportional-allocation snapshot
// and Len read them without touching any mutex; both therefore observe a
// moment-in-time view that can lag concurrent writers but never
// overshoots the pool's true contents. The exceptions are Save and Load,
// which snapshot/replace the whole pool and must not run concurrently
// with other use (persistence happens at service startup and shutdown).
//
// # Sampling distribution of the sharded pool
//
// Add assigns transitions to shards round-robin off one atomic counter, so
// shard occupancy stays balanced to within one transition regardless of
// how many goroutines insert. Sample first snapshots every shard's
// sampling mass — the stored-transition count for uniform shards, the
// sum-tree root (total priority) for prioritized shards — then draws each
// of the n batch slots from a shard chosen proportionally to that mass and
// delegates the draw to the shard (uniform pick, or a priority-
// proportional sum-tree descent). For a quiescent pool this reproduces the
// unsharded distribution exactly: every transition is selected with
// probability mass/totalMass per draw (1/Len for uniform). While writers
// run concurrently, draws may use a slightly stale mass snapshot; the skew
// is bounded by the transitions inserted during the call and decays to
// zero as the pool fills. Prioritized importance weights are computed
// against the global total mass and pool size and normalized by the batch
// maximum, matching the single-tree implementation.
//
// Noise processes (OUNoise, GaussianNoise) are not safe for concurrent
// use either: parallel workers must each hold their own Fork, with
// Decay/SetScale applied on the canonical process under the caller's lock
// (see core's trainer for the shared annealing schedule).
package rl
