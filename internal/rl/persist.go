package rl

import (
	"encoding/gob"
	"fmt"
	"io"
)

// memoryState is the serialized form of a replay pool: the transitions in
// oldest-to-newest order. Priorities are not persisted — a reloaded pool
// re-ranks as training resumes (fresh transitions get max priority, so
// the prioritization warms back up within one batch round).
type memoryState struct {
	Transitions []Transition
}

// Save writes the pool's transitions to w in gob format. The paper's
// memory pool (§2.2.4) accumulates experience across tuning requests;
// persisting it lets a restarted tuning service keep its accumulated
// try-and-error history ("incremental training", §2.1.1).
func (m *UniformMemory) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(memoryState{Transitions: m.ordered()})
}

// Load replaces the pool contents with transitions previously written by
// Save (either pool flavor).
func (m *UniformMemory) Load(r io.Reader) error {
	var st memoryState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return fmt.Errorf("rl: decode memory: %w", err)
	}
	m.buf = m.buf[:0]
	m.next = 0
	m.full = false
	for _, t := range st.Transitions {
		m.Add(t)
	}
	return nil
}

// ordered returns the buffer oldest-first.
func (m *UniformMemory) ordered() []Transition {
	if !m.full {
		return append([]Transition(nil), m.buf...)
	}
	out := make([]Transition, 0, len(m.buf))
	out = append(out, m.buf[m.next:]...)
	out = append(out, m.buf[:m.next]...)
	return out
}

// Save writes the pool's transitions (oldest first) to w.
func (m *PrioritizedMemory) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(memoryState{Transitions: m.ordered()})
}

// Load replaces the pool contents with transitions previously written by
// Save; every reloaded transition enters at maximal priority.
func (m *PrioritizedMemory) Load(r io.Reader) error {
	var st memoryState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return fmt.Errorf("rl: decode memory: %w", err)
	}
	for i := 0; i < m.size; i++ {
		m.setPriority(i, 0)
	}
	m.next = 0
	m.size = 0
	m.maxPr = 1
	for _, t := range st.Transitions {
		m.Add(t)
	}
	return nil
}

// Save writes the pool's transitions to w in the shared memoryState
// format (per-shard oldest-first, shard by shard), so a sharded pool can
// be reloaded into any Memory flavor and vice versa. Unlike the rest of
// ShardedMemory's methods, Save must not run concurrently with writers:
// it snapshots shards one at a time, and transitions added mid-snapshot
// may be missed.
func (m *ShardedMemory) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(memoryState{Transitions: m.Transitions()})
}

// Load replaces the pool contents with transitions previously written by
// Save (any pool flavor), redistributing them round-robin across fresh
// shards; prioritized shards re-enter every transition at maximal
// priority. Load must not run concurrently with any other use of the
// pool.
func (m *ShardedMemory) Load(r io.Reader) error {
	var st memoryState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return fmt.Errorf("rl: decode memory: %w", err)
	}
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		if m.prioritized {
			s.pri = NewPrioritizedMemory(m.perShardCap)
		} else {
			s.uni = NewUniformMemory(m.perShardCap)
		}
		s.publishStats()
		s.mu.Unlock()
	}
	m.ctr.Store(0)
	for _, t := range st.Transitions {
		m.Add(t)
	}
	return nil
}

// ordered returns stored transitions oldest-first.
func (m *PrioritizedMemory) ordered() []Transition {
	out := make([]Transition, 0, m.size)
	if m.size < m.capacity {
		out = append(out, m.data[:m.size]...)
		return out
	}
	out = append(out, m.data[m.next:]...)
	out = append(out, m.data[:m.next]...)
	return out
}
