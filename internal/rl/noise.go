package rl

import "math/rand"

// Noise perturbs a deterministic action for exploration.
type Noise interface {
	// Sample returns a perturbation vector of dimension dim.
	Sample(rng *rand.Rand, dim int) []float64
	// Reset clears any internal state at an episode boundary.
	Reset()
	// Decay reduces the noise scale after an episode; it returns the new
	// scale so callers can log it.
	Decay() float64
	// Scale reports the current noise scale (sigma).
	Scale() float64
	// SetScale overrides the noise scale, keeping forked processes on one
	// shared annealing schedule.
	SetScale(sigma float64)
	// Fork returns an independent process with the same parameters and a
	// fresh temporal state. Parallel training workers each fork the
	// canonical process so temporally correlated noise (OU) is not shared
	// across concurrent episodes.
	Fork() Noise
}

// OUNoise is an Ornstein-Uhlenbeck process, the exploration noise used by
// the original DDPG paper: temporally correlated perturbations suited to
// control problems where consecutive actions should not jump wildly — a
// good match for step-by-step knob adjustment.
type OUNoise struct {
	Theta float64
	Sigma float64
	Mu    float64
	// DecayRate multiplies Sigma after each Decay call; MinSigma bounds it.
	DecayRate float64
	MinSigma  float64

	state []float64
}

// NewOUNoise returns an OU process with the standard DDPG parameters
// (theta 0.15, sigma as given, mu 0).
func NewOUNoise(sigma float64) *OUNoise {
	return &OUNoise{Theta: 0.15, Sigma: sigma, DecayRate: 0.99, MinSigma: 0.01}
}

// Sample implements Noise.
func (o *OUNoise) Sample(rng *rand.Rand, dim int) []float64 {
	if len(o.state) != dim {
		o.state = make([]float64, dim)
	}
	out := make([]float64, dim)
	for i := range o.state {
		o.state[i] += o.Theta*(o.Mu-o.state[i]) + o.Sigma*rng.NormFloat64()
		out[i] = o.state[i]
	}
	return out
}

// Reset implements Noise.
func (o *OUNoise) Reset() { o.state = nil }

// Decay implements Noise.
func (o *OUNoise) Decay() float64 {
	o.Sigma *= o.DecayRate
	if o.Sigma < o.MinSigma {
		o.Sigma = o.MinSigma
	}
	return o.Sigma
}

// Scale implements Noise.
func (o *OUNoise) Scale() float64 { return o.Sigma }

// SetScale implements Noise.
func (o *OUNoise) SetScale(sigma float64) { o.Sigma = sigma }

// Fork implements Noise.
func (o *OUNoise) Fork() Noise {
	c := *o
	c.state = nil
	return &c
}

// GaussianNoise draws i.i.d. Normal(0, sigma) perturbations.
type GaussianNoise struct {
	Sigma     float64
	DecayRate float64
	MinSigma  float64
}

// NewGaussianNoise returns uncorrelated Gaussian exploration noise.
func NewGaussianNoise(sigma float64) *GaussianNoise {
	return &GaussianNoise{Sigma: sigma, DecayRate: 0.99, MinSigma: 0.01}
}

// Sample implements Noise.
func (g *GaussianNoise) Sample(rng *rand.Rand, dim int) []float64 {
	out := make([]float64, dim)
	for i := range out {
		out[i] = g.Sigma * rng.NormFloat64()
	}
	return out
}

// Reset implements Noise.
func (g *GaussianNoise) Reset() {}

// Decay implements Noise.
func (g *GaussianNoise) Decay() float64 {
	g.Sigma *= g.DecayRate
	if g.Sigma < g.MinSigma {
		g.Sigma = g.MinSigma
	}
	return g.Sigma
}

// Scale implements Noise.
func (g *GaussianNoise) Scale() float64 { return g.Sigma }

// SetScale implements Noise.
func (g *GaussianNoise) SetScale(sigma float64) { g.Sigma = sigma }

// Fork implements Noise.
func (g *GaussianNoise) Fork() Noise {
	c := *g
	return &c
}
