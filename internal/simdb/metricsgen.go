package simdb

import (
	"cdbtune/internal/knobs"
	"cdbtune/internal/metrics"
)

// metricIdx resolves canonical metric positions once at init.
var metricIdx = func() map[string]int {
	m := make(map[string]int, metrics.NumMetrics)
	for i, d := range metrics.Defs {
		m[d.Name] = i
	}
	return m
}()

// advance accumulates dt seconds of counter activity at the rates the
// performance model produced, with per-counter sampling noise.
func (db *DB) advance(p perf, dt float64) {
	add := func(name string, rate float64) {
		i := metricIdx[name]
		v := rate * dt * db.noise(0.02)
		if v < 0 {
			v = 0
		}
		db.cum[i] += v
	}
	ops := p.ReadOps + p.WriteOps
	commits := 0.0
	if ops > 0 {
		commits = p.TPS
	}
	insertOps := p.WriteOps * 0.45
	deleteOps := p.WriteOps * 0.15
	updateOps := p.WriteOps - insertOps - deleteOps

	add("bytes_received", ops*180)
	add("bytes_sent", p.ReadOps*900+p.WriteOps*60)
	add("com_select", p.ReadOps)
	add("com_insert", insertOps)
	add("com_update", updateOps)
	add("com_delete", deleteOps)
	add("com_commit", commits)
	add("com_rollback", commits*0.005)
	add("questions", ops+commits)
	add("queries", ops+commits)
	add("slow_queries", p.Scans*0.02+p.TmpDisk*0.05)
	add("buffer_pool_read_requests", p.PageReqs)
	add("buffer_pool_reads", p.PageMisses)
	add("buffer_pool_write_requests", p.WriteOps*3)
	add("buffer_pool_pages_flushed", p.PagesFlushed)
	add("buffer_pool_read_ahead", p.Scans*6)
	add("buffer_pool_read_ahead_evicted", p.Scans*0.8)
	add("buffer_pool_wait_free", p.PageMisses*0.02*p.MemPressure)
	add("data_reads", p.PageMisses+p.TmpDisk*4)
	add("data_writes", p.PagesFlushed+p.LogFsyncs)
	add("data_read_bytes", (p.PageMisses+p.TmpDisk*4)*16384)
	add("data_written_bytes", p.PagesFlushed*16384+p.LogWrites*420)
	add("data_fsyncs", p.LogFsyncs+p.PagesFlushed*0.02)
	add("log_writes", p.LogWrites)
	add("log_write_requests", p.LogWrites*1.6)
	add("os_log_written", p.LogWrites*420)
	add("os_log_fsyncs", p.LogFsyncs)
	add("log_waits", p.LogWrites*0.002)
	add("pages_created", insertOps*0.4)
	add("pages_read", p.PageMisses)
	add("pages_written", p.PagesFlushed)
	add("rows_read", p.ReadOps*3+p.Scans*220)
	add("rows_inserted", insertOps)
	add("rows_updated", updateOps)
	add("rows_deleted", deleteOps)
	add("row_lock_waits", p.LockWaits)
	add("row_lock_time_ms", p.LockWaits*18)
	add("lock_timeouts", p.LockWaits*0.01)
	add("created_tmp_tables", p.TmpTables)
	add("created_tmp_disk_tables", p.TmpDisk)
	add("created_tmp_files", p.TmpDisk*0.2)
	add("handler_read_first", p.Scans)
	add("handler_read_key", p.ReadOps*2.2)
	add("handler_read_next", p.Scans*200)
	add("handler_read_rnd_next", p.Scans*260)
	add("select_scan", p.Scans)
	add("sort_merge_passes", p.TmpDisk*0.6)
	add("sort_rows", p.SortRows)
	add("table_locks_waited", p.LockWaits*0.05)
}

// snapshot materializes the instantaneous gauge values on top of the
// accumulated counters.
func (db *DB) snapshot(p perf) metrics.Snapshot {
	var s metrics.Snapshot
	copy(s.Values[:], db.cum[:])
	set := func(name string, v float64) {
		if v < 0 {
			v = 0
		}
		s.Values[metricIdx[name]] = v * db.noise(0.01)
	}
	free := p.BPPagesTotal - p.BPPagesData
	set("buffer_pool_pages_data", p.BPPagesData)
	set("buffer_pool_pages_dirty", p.BPPagesData*p.DirtyRatio)
	set("buffer_pool_pages_free", free)
	set("buffer_pool_pages_total", p.BPPagesTotal)
	set("buffer_pool_hit_ratio", p.HitRatio)
	set("threads_running", p.Running)
	set("threads_connected", p.ActiveConns)
	set("threads_cached", db.roleValue(knobs.RoleThreadCacheSize, 9)*0.6)
	set("open_tables", minF(db.roleValue(knobs.RoleTableOpenCache, 2000), 4000))
	set("row_lock_current_waits", p.LockWaits*0.05)
	set("data_pending_reads", p.PageMisses*0.004)
	set("data_pending_writes", p.PagesFlushed*0.003)
	set("log_pending_fsyncs", p.LogFsyncs*0.001)
	set("dirty_page_ratio", p.DirtyRatio)
	return s
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
