// Package simdb simulates the cloud database instances the paper tunes.
//
// We have no Tencent CDB fleet, so this package is the substitute substrate
// (see DESIGN.md §1): a knob-driven performance model exposing exactly the
// surface the tuners consume — apply a configuration, run a stress test,
// read back the 63 internal metrics ("show status") and the two external
// metrics (throughput, 99th-percentile latency). The model reproduces the
// qualitative structure the paper reports: saturating buffer-pool returns
// with a swap cliff, redo-log checkpoint pressure with a crash when the log
// group outgrows the disk (§5.2.3), inverted-U IO-thread and concurrency
// responses, flush-durability tradeoffs, and a 266-dimensional nonlinear
// minor-knob surface with pairwise interactions (Figure 1d).
//
// The model is stateless in the workload: every RunWorkload evaluates the
// profile it is handed, so a time-varying caller (env.Env with a
// workload.Timeline) drives load dynamics simply by passing a different
// effective workload per measurement window — concurrency, read/write mix
// and working-set size all flow through the same cost model that shapes
// the stationary benchmarks.
package simdb
