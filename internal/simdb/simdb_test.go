package simdb

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"cdbtune/internal/knobs"
	"cdbtune/internal/metrics"
	"cdbtune/internal/workload"
)

func newDefault(t *testing.T) *DB {
	t.Helper()
	return New(knobs.EngineCDB, CDBA, 1)
}

// withKnobs returns a DB with the named normalized knob settings applied
// on top of the defaults.
func withKnobs(t *testing.T, inst Instance, settings map[string]float64) *DB {
	t.Helper()
	db := New(knobs.EngineCDB, inst, 1)
	cat := db.Catalog()
	x := cat.Defaults(db.Instance().HW.RAMGB, db.Instance().HW.DiskGB)
	for name, v := range settings {
		i := cat.Index(name)
		if i < 0 {
			t.Fatalf("unknown knob %q", name)
		}
		x[i] = v
	}
	if _, err := db.ApplyKnobs(cat, x); err != nil {
		t.Fatal(err)
	}
	return db
}

func run(t *testing.T, db *DB, w workload.Workload) Result {
	t.Helper()
	r, err := db.RunWorkload(w, 150)
	if err != nil {
		t.Fatalf("RunWorkload: %v", err)
	}
	return r
}

func TestTable1Instances(t *testing.T) {
	insts := Table1()
	if len(insts) != 5 {
		t.Fatalf("Table1 has %d instances, want 5", len(insts))
	}
	if CDBA.HW.RAMGB != 8 || CDBA.HW.DiskGB != 100 {
		t.Fatalf("CDB-A = %+v, want 8 GB / 100 GB", CDBA.HW)
	}
	if CDBE.HW.RAMGB != 32 || CDBE.HW.DiskGB != 300 {
		t.Fatalf("CDB-E = %+v", CDBE.HW)
	}
	x1 := MakeX1(64)
	if x1.HW.RAMGB != 64 || x1.HW.DiskGB != 100 {
		t.Fatalf("MakeX1(64) = %+v", x1.HW)
	}
	x2 := MakeX2(512)
	if x2.HW.RAMGB != 12 || x2.HW.DiskGB != 512 {
		t.Fatalf("MakeX2(512) = %+v", x2.HW)
	}
}

func TestRunProducesPositiveMetrics(t *testing.T) {
	db := newDefault(t)
	for _, w := range workload.All() {
		r, err := db.RunWorkload(w, 150)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if r.Ext.Throughput <= 0 || r.Ext.Latency99 <= 0 {
			t.Fatalf("%s: non-positive externals %+v", w.Name, r.Ext)
		}
		if len(r.State) != metrics.NumMetrics {
			t.Fatalf("%s: state dim %d", w.Name, len(r.State))
		}
	}
}

func TestBufferPoolMonotoneUntilSwap(t *testing.T) {
	w := workload.SysbenchRO()
	var prev float64
	// Raising the buffer pool (within RAM) must not hurt a read workload.
	for _, frac := range []float64{0.0, 0.3, 0.6, 0.85} {
		db := withKnobs(t, CDBA, map[string]float64{"innodb_buffer_pool_size": frac})
		tps := db.evaluate(w).TPS
		if tps < prev*0.999 {
			t.Fatalf("buffer pool %v lowered read throughput: %v < %v", frac, tps, prev)
		}
		prev = tps
	}
	// Max setting over-subscribes 8 GB RAM: swap cliff must bite.
	over := withKnobs(t, CDBA, map[string]float64{"innodb_buffer_pool_size": 1.0})
	sane := withKnobs(t, CDBA, map[string]float64{"innodb_buffer_pool_size": 0.85})
	if over.evaluate(w).TPS >= sane.evaluate(w).TPS {
		t.Fatal("over-subscribed buffer pool should hit the swap cliff")
	}
}

func TestLogSizeHelpsWrites(t *testing.T) {
	w := workload.SysbenchWO()
	small := withKnobs(t, CDBA, map[string]float64{"innodb_log_file_size": 0})
	big := withKnobs(t, CDBA, map[string]float64{"innodb_log_file_size": 0.8})
	if big.evaluate(w).TPS <= small.evaluate(w).TPS {
		t.Fatal("larger redo log must reduce checkpoint pressure for writes")
	}
}

func TestLogOverflowCrashes(t *testing.T) {
	db := withKnobs(t, CDBA, map[string]float64{
		"innodb_log_file_size":      1.0,
		"innodb_log_files_in_group": 1.0,
	})
	_, err := db.RunWorkload(workload.SysbenchWO(), 150)
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v, want ErrCrashed (log group > disk, §5.2.3)", err)
	}
}

func TestMemoryOversubscriptionCrashes(t *testing.T) {
	db := withKnobs(t, CDBA, map[string]float64{
		"innodb_buffer_pool_size": 1.0,
		"sort_buffer_size":        1.0,
		"join_buffer_size":        1.0,
	})
	_, err := db.RunWorkload(workload.SysbenchRW(), 150)
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
}

func TestFlushPolicyTradeoff(t *testing.T) {
	w := workload.SysbenchWO()
	durable := withKnobs(t, CDBA, map[string]float64{"innodb_flush_log_at_trx_commit": 0.5}) // =1
	relaxed := withKnobs(t, CDBA, map[string]float64{"innodb_flush_log_at_trx_commit": 0.0}) // =0
	if relaxed.evaluate(w).TPS <= durable.evaluate(w).TPS {
		t.Fatal("flush_log_at_trx_commit=0 must outrun =1 on writes")
	}
	// Flush policy must not matter on pure reads.
	ro := workload.SysbenchRO()
	d, r := durable.evaluate(ro).TPS, relaxed.evaluate(ro).TPS
	if d != r {
		t.Fatalf("flush policy changed read-only throughput: %v vs %v", d, r)
	}
}

func TestIOThreadsInvertedU(t *testing.T) {
	w := workload.SysbenchRO() // big miss pressure at default buffer pool
	low := withKnobs(t, CDBA, map[string]float64{"innodb_read_io_threads": 0.0})
	mid := withKnobs(t, CDBA, map[string]float64{"innodb_read_io_threads": 0.55})
	max := withKnobs(t, CDBA, map[string]float64{"innodb_read_io_threads": 1.0})
	tl, tm, th := low.evaluate(w).TPS, mid.evaluate(w).TPS, max.evaluate(w).TPS
	if !(tm > tl && tm > th) {
		t.Fatalf("read IO threads not inverted-U: low %v mid %v high %v", tl, tm, th)
	}
}

func TestQueryCacheHelpsROHurtsRW(t *testing.T) {
	on := map[string]float64{"query_cache_size": 0.6, "query_cache_type": 0.5}
	dbOn := withKnobs(t, CDBA, on)
	dbOff := newDefault(t)
	ro := workload.SysbenchRO()
	if dbOn.evaluate(ro).TPS <= dbOff.evaluate(ro).TPS {
		t.Fatal("query cache should help read-only")
	}
	rw := workload.SysbenchRW()
	if dbOn.evaluate(rw).TPS >= dbOff.evaluate(rw).TPS {
		t.Fatal("query cache invalidation should hurt read-write")
	}
}

func TestMaxConnectionsGate(t *testing.T) {
	w := workload.SysbenchRW()                                              // 1500 clients
	tight := withKnobs(t, CDBA, map[string]float64{"max_connections": 0.0}) // 100 conns
	ample := withKnobs(t, CDBA, map[string]float64{"max_connections": 0.55})
	pt, pa := tight.evaluate(w), ample.evaluate(w)
	if pt.TPS >= pa.TPS {
		t.Fatal("connection starvation must cap throughput")
	}
	if pt.LatencyMS <= pa.LatencyMS {
		t.Fatal("connection starvation must inflate tail latency")
	}
}

func TestMoreRAMHelps(t *testing.T) {
	w := workload.SysbenchWO()
	cfg := map[string]float64{"innodb_buffer_pool_size": 0.85}
	small := withKnobs(t, MakeX1(4), cfg)
	big := withKnobs(t, MakeX1(32), cfg)
	if big.evaluate(w).TPS <= small.evaluate(w).TPS {
		t.Fatal("same normalized config on more RAM must go faster (bigger pool)")
	}
}

func TestHigherThroughputLowerLatency(t *testing.T) {
	// Property: across random configurations, throughput and latency move
	// inversely (the paper's figures all show this coupling).
	w := workload.SysbenchRW()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := New(knobs.EngineCDB, CDBA, 1)
		cat := db.Catalog()
		x := cat.Defaults(db.Instance().HW.RAMGB, db.Instance().HW.DiskGB)
		// Perturb a handful of major knobs only, avoiding crash zones.
		for _, name := range []string{"innodb_buffer_pool_size", "innodb_log_file_size", "innodb_flush_log_at_trx_commit", "innodb_write_io_threads"} {
			x[cat.Index(name)] = rng.Float64() * 0.8
		}
		if _, err := db.ApplyKnobs(cat, x); err != nil {
			return false
		}
		p := db.evaluate(w)
		if p.Crashed {
			return true
		}
		q := New(knobs.EngineCDB, CDBA, 1).evaluate(w)
		// If p is faster than default q, its latency must be lower.
		if p.TPS > q.TPS*1.05 && p.LatencyMS > q.LatencyMS {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAuxSurfaceNonTrivial(t *testing.T) {
	db := newDefault(t)
	w := workload.SysbenchRW()
	base := db.aux.Factor(db.values, db.inst.HW, w)
	// Move every aux knob to its hidden peak: factor must rise.
	cat := db.Catalog()
	for i, k := range cat.Knobs {
		if k.Role != knobs.RoleAux {
			continue
		}
		for j, full := range db.aux.idx {
			if full == i {
				db.values[i] = k.Value(db.aux.peak[j], CDBA.HW.RAMGB, CDBA.HW.DiskGB)
			}
		}
	}
	tuned := db.aux.Factor(db.values, db.inst.HW, w)
	if tuned <= base {
		t.Fatalf("aux factor at peaks %v not above default %v", tuned, base)
	}
	if tuned/base < 1.02 {
		t.Fatalf("aux headroom too small: %v", tuned/base)
	}
}

func TestAuxSurfaceDeterministic(t *testing.T) {
	a := New(knobs.EngineCDB, CDBA, 1)
	b := New(knobs.EngineCDB, CDBA, 99) // different noise seed, same surface
	w := workload.TPCC()
	if a.aux.Factor(a.values, a.inst.HW, w) != b.aux.Factor(b.values, b.inst.HW, w) {
		t.Fatal("aux surface must be seed-independent (deterministic per engine)")
	}
}

func TestApplyKnobsSubset(t *testing.T) {
	db := newDefault(t)
	sub := db.Catalog().Subset([]int{0, 3}) // buffer pool, flush policy
	restarted, err := db.ApplyKnobs(sub, []float64{0.9, 0.0})
	if err != nil {
		t.Fatal(err)
	}
	if !restarted {
		t.Fatal("buffer pool resize requires restart")
	}
	bp, _ := db.KnobValue("innodb_buffer_pool_size")
	if bp <= 128 {
		t.Fatalf("buffer pool not applied: %v", bp)
	}
	// Non-subset knob untouched.
	lf, _ := db.KnobValue("innodb_log_file_size")
	if lf != 48 {
		t.Fatalf("log file size changed unexpectedly: %v", lf)
	}
}

func TestApplyKnobsErrors(t *testing.T) {
	db := newDefault(t)
	if _, err := db.ApplyKnobs(db.Catalog(), []float64{0.5}); err == nil {
		t.Fatal("length mismatch must error")
	}
	pg := knobs.Postgres()
	if _, err := db.ApplyKnobs(pg, pg.Defaults(8, 100)); err == nil {
		t.Fatal("engine mismatch must error")
	}
}

func TestCurrentKnobsRoundTrip(t *testing.T) {
	db := newDefault(t)
	cat := db.Catalog()
	x := cat.Defaults(db.Instance().HW.RAMGB, db.Instance().HW.DiskGB)
	x[cat.Index("innodb_buffer_pool_size")] = 0.7
	if _, err := db.ApplyKnobs(cat, x); err != nil {
		t.Fatal(err)
	}
	back := db.CurrentKnobs(cat)
	i := cat.Index("innodb_buffer_pool_size")
	if diff := back[i] - 0.7; diff > 0.02 || diff < -0.02 {
		t.Fatalf("CurrentKnobs round trip: got %v, want ≈0.7", back[i])
	}
}

func TestResetDefaults(t *testing.T) {
	db := newDefault(t)
	cat := db.Catalog()
	x := cat.Defaults(db.Instance().HW.RAMGB, db.Instance().HW.DiskGB)
	x[cat.Index("innodb_buffer_pool_size")] = 0.9
	db.ApplyKnobs(cat, x)
	db.ResetDefaults()
	bp, _ := db.KnobValue("innodb_buffer_pool_size")
	if bp != 128 {
		t.Fatalf("ResetDefaults: buffer pool %v, want 128", bp)
	}
}

func TestCountersMonotone(t *testing.T) {
	db := newDefault(t)
	w := workload.SysbenchRW()
	r1 := run(t, db, w)
	before := db.cum
	run(t, db, w)
	for i := metrics.NumGauges; i < metrics.NumMetrics; i++ {
		if db.cum[i] < before[i] {
			t.Fatalf("counter %s decreased", metrics.Defs[i].Name)
		}
	}
	_ = r1
}

func TestStateReflectsBufferPool(t *testing.T) {
	// The hit-ratio metric must respond to the buffer pool knob — this is
	// what lets the RL agent read the environment.
	w := workload.SysbenchRO()
	small := run(t, newDefault(t), w)
	big := run(t, withKnobs(t, CDBA, map[string]float64{"innodb_buffer_pool_size": 0.85}), w)
	hi := metrics.Index("buffer_pool_hit_ratio")
	if big.State[hi] <= small.State[hi] {
		t.Fatalf("hit ratio did not rise with buffer pool: %v vs %v", big.State[hi], small.State[hi])
	}
	mi := metrics.Index("buffer_pool_reads")
	if big.State[mi] >= small.State[mi] {
		t.Fatalf("physical reads did not fall with buffer pool: %v vs %v", big.State[mi], small.State[mi])
	}
}

func TestStateReflectsWorkloadMix(t *testing.T) {
	db := newDefault(t)
	ro := run(t, db, workload.SysbenchRO())
	wo := run(t, db, workload.SysbenchWO())
	sel := metrics.Index("com_select")
	ins := metrics.Index("com_insert")
	if ro.State[sel] <= wo.State[sel] {
		t.Fatal("read-only must issue more selects than write-only")
	}
	if wo.State[ins] <= ro.State[ins] {
		t.Fatal("write-only must issue more inserts than read-only")
	}
}

func TestOtherEnginesRun(t *testing.T) {
	for _, e := range []knobs.Engine{knobs.EngineLocalMySQL, knobs.EngineMongoDB, knobs.EnginePostgres} {
		db := New(e, CDBD, 2)
		var w workload.Workload
		switch e {
		case knobs.EngineMongoDB:
			w = workload.YCSB()
		default:
			w = workload.TPCC()
		}
		r, err := db.RunWorkload(w, 150)
		if err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		if r.Ext.Throughput <= 0 {
			t.Fatalf("%v: zero throughput", e)
		}
		// The common roles must exist so tuning has leverage.
		cat := db.Catalog()
		x := cat.Defaults(db.Instance().HW.RAMGB, db.Instance().HW.DiskGB)
		x[cat.RoleIndex(knobs.RoleBufferPool)] = 0.85
		if _, err := db.ApplyKnobs(cat, x); err != nil {
			t.Fatal(err)
		}
		r2, err := db.RunWorkload(w, 150)
		if err != nil {
			t.Fatal(err)
		}
		if r2.Ext.Throughput <= r.Ext.Throughput {
			t.Fatalf("%v: buffer-pool tuning had no effect", e)
		}
	}
}

func TestRestartAccounting(t *testing.T) {
	db := newDefault(t)
	cat := db.Catalog()
	x := cat.Defaults(db.Instance().HW.RAMGB, db.Instance().HW.DiskGB)
	x[cat.Index("innodb_max_dirty_pages_pct")] = 0.9 // dynamic knob
	restarted, err := db.ApplyKnobs(cat, x)
	if err != nil {
		t.Fatal(err)
	}
	if restarted {
		t.Fatal("dynamic-only change must not restart")
	}
	x[cat.Index("innodb_buffer_pool_size")] = 0.8
	restarted, err = db.ApplyKnobs(cat, x)
	if err != nil || !restarted {
		t.Fatalf("restart knob change: restarted=%v err=%v", restarted, err)
	}
	if db.Restarts() != 1 {
		t.Fatalf("Restarts = %d, want 1 (only the buffer-pool apply restarts)", db.Restarts())
	}
}

func TestRunsCounter(t *testing.T) {
	db := newDefault(t)
	run(t, db, workload.TPCC())
	run(t, db, workload.TPCC())
	if db.Runs() != 2 {
		t.Fatalf("Runs = %d, want 2", db.Runs())
	}
}

func TestRejectsInvalidWorkload(t *testing.T) {
	db := newDefault(t)
	_, err := db.RunWorkload(workload.Workload{Name: "bad"}, 150)
	if err == nil {
		t.Fatal("invalid workload must be rejected")
	}
}

func TestNoiseIsBounded(t *testing.T) {
	db := newDefault(t)
	w := workload.TPCC()
	base := db.evaluate(w).TPS
	for i := 0; i < 20; i++ {
		r := run(t, db, w)
		ratio := r.Ext.Throughput / base
		if ratio < 0.9 || ratio > 1.1 {
			t.Fatalf("measurement noise out of band: ratio %v", ratio)
		}
	}
}

func TestShowStatus(t *testing.T) {
	db := newDefault(t)
	s := db.ShowStatus(workload.TPCC())
	if s.Values[metrics.Index("buffer_pool_pages_total")] <= 0 {
		t.Fatal("ShowStatus gauge missing")
	}
}

func TestDiskKindAffectsMissCost(t *testing.T) {
	w := workload.SysbenchRO()
	ssd := Instance{Name: "ssd", HW: Hardware{RAMGB: 8, DiskGB: 100, Disk: DiskSSD, Cores: 12}}
	hdd := Instance{Name: "hdd", HW: Hardware{RAMGB: 8, DiskGB: 100, Disk: DiskHDD, Cores: 12}}
	nvm := Instance{Name: "nvm", HW: Hardware{RAMGB: 8, DiskGB: 100, Disk: DiskNVM, Cores: 12}}
	ts := New(knobs.EngineCDB, ssd, 1).evaluate(w).TPS
	th := New(knobs.EngineCDB, hdd, 1).evaluate(w).TPS
	tn := New(knobs.EngineCDB, nvm, 1).evaluate(w).TPS
	if !(tn > ts && ts > th) {
		t.Fatalf("disk media ordering wrong: nvm %v ssd %v hdd %v", tn, ts, th)
	}
}
