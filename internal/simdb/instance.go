package simdb

import "fmt"

// DiskKind is the storage medium; §5.3 notes experiments on SSD and NVM.
type DiskKind int

// Disk media.
const (
	DiskSSD DiskKind = iota
	DiskHDD
	DiskNVM
)

// Hardware describes one cloud instance's resources.
type Hardware struct {
	RAMGB  float64
	DiskGB float64
	Disk   DiskKind
	Cores  int
}

// Instance is a named CDB instance from Table 1.
type Instance struct {
	Name string
	HW   Hardware
}

// The Table 1 instance matrix. CDB-X1 varies RAM at 100 GB disk; CDB-X2
// varies disk at 12 GB RAM; use MakeX1/MakeX2 for those.
var (
	CDBA = Instance{Name: "CDB-A", HW: Hardware{RAMGB: 8, DiskGB: 100, Disk: DiskSSD, Cores: 12}}
	CDBB = Instance{Name: "CDB-B", HW: Hardware{RAMGB: 12, DiskGB: 100, Disk: DiskSSD, Cores: 12}}
	CDBC = Instance{Name: "CDB-C", HW: Hardware{RAMGB: 12, DiskGB: 200, Disk: DiskSSD, Cores: 12}}
	CDBD = Instance{Name: "CDB-D", HW: Hardware{RAMGB: 16, DiskGB: 200, Disk: DiskSSD, Cores: 12}}
	CDBE = Instance{Name: "CDB-E", HW: Hardware{RAMGB: 32, DiskGB: 300, Disk: DiskSSD, Cores: 12}}
)

// MakeX1 builds a CDB-X1 instance: X GB RAM, 100 GB disk. Valid X per
// Table 1: 4, 12, 32, 64, 128.
func MakeX1(ramGB float64) Instance {
	return Instance{
		Name: fmt.Sprintf("CDB-X1-%.0fG", ramGB),
		HW:   Hardware{RAMGB: ramGB, DiskGB: 100, Disk: DiskSSD, Cores: 12},
	}
}

// MakeX2 builds a CDB-X2 instance: 12 GB RAM, X GB disk. Valid X per
// Table 1: 32, 64, 100, 256, 512.
func MakeX2(diskGB float64) Instance {
	return Instance{
		Name: fmt.Sprintf("CDB-X2-%.0fG", diskGB),
		HW:   Hardware{RAMGB: 12, DiskGB: diskGB, Disk: DiskSSD, Cores: 12},
	}
}

// Table1 returns the five fixed instances.
func Table1() []Instance { return []Instance{CDBA, CDBB, CDBC, CDBD, CDBE} }

// ByName resolves a Table 1 instance by name (e.g. "CDB-C").
func ByName(name string) (Instance, bool) {
	for _, in := range Table1() {
		if in.Name == name {
			return in, true
		}
	}
	return Instance{}, false
}

// DiskSpeedFactor scales IO cost by medium: HDD misses hurt more, NVM
// less. Both engine families' cost models consume it.
func (h Hardware) DiskSpeedFactor() float64 {
	switch h.Disk {
	case DiskHDD:
		return 2.4
	case DiskNVM:
		return 0.55
	default:
		return 1.0
	}
}
