// Package lsm is the second simulated engine family: a deterministic,
// seeded performance model of an LSM-tree storage engine (RocksDB-style)
// behind the same env.Database surface as the buffer-pool engines in
// internal/simdb.
//
// Where simdb models a B-tree engine — buffer-pool hit ratios, redo-log
// checkpoint cliffs, dirty-page flushing — this package models the levers
// that make LSM trees different to tune:
//
//   - the amplification triangle: bloom bits and block cache buy read-amp
//     down but cost RAM; the level size multiplier buys space-amp down but
//     write-amp up under leveled compaction; tiered compaction inverts the
//     trade (low write-amp, high space-amp, ENOSPC pressure);
//   - compaction-debt dynamics: when ingest × write-amp outruns the
//     compaction thread pool, L0 files pile up, the slowdown trigger
//     throttles writers (inverted-U: too low throttles prematurely, too
//     high lets sorted runs degrade reads) and the stop trigger stalls
//     them — stall time is charged to the virtual clock via env.Staller;
//   - a WAL with its own sync-policy/size/buffering knobs decoupled from
//     any checkpointing.
//
// The model emits the same 63-metric internal state vector (reinterpreted:
// block cache → buffer_pool_*, WAL → log_*, flush+compaction → pages
// flushed, write stalls → lock waits), so registry fingerprints, drift
// detection and warm-start lookup work unchanged. The minor-knob surface
// is simdb.AuxSurface over the EngineLSM catalog.
package lsm
