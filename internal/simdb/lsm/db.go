package lsm

import (
	"fmt"
	"math/rand"
	"sync"

	"cdbtune/internal/knobs"
	"cdbtune/internal/metrics"
	"cdbtune/internal/simdb"
	"cdbtune/internal/workload"
)

// DB is one simulated LSM-engine instance. It implements the env.Database
// surface (structurally — this package must not import env) plus
// env.Staller: compaction write stalls charge extra virtual seconds.
type DB struct {
	inst    simdb.Instance
	catalog *knobs.Catalog // full EngineLSM catalog
	values  []float64      // actual knob values, aligned with catalog
	aux     *simdb.AuxSurface
	rng     *rand.Rand

	cum      [metrics.NumMetrics]float64 // cumulative counter state
	restarts int
	runs     int

	mu           sync.Mutex
	pendingStall float64 // stall seconds not yet drained via TakeStallSeconds
	stallEvents  int     // stress tests that hit the stop trigger
}

// New creates an LSM instance on the given hardware with every knob at its
// default. seed fixes the run-to-run measurement noise; the knob-response
// surface itself is seed-independent, like simdb's.
func New(inst simdb.Instance, seed int64) *DB {
	cat := knobs.ForEngine(knobs.EngineLSM)
	db := &DB{
		inst:    inst,
		catalog: cat,
		rng:     rand.New(rand.NewSource(seed)),
		aux:     simdb.NewAuxSurface(cat),
	}
	db.values = cat.Denormalize(cat.Defaults(inst.HW.RAMGB, inst.HW.DiskGB), inst.HW.RAMGB, inst.HW.DiskGB)
	return db
}

// Engine reports the engine variant.
func (db *DB) Engine() knobs.Engine { return knobs.EngineLSM }

// Instance reports the hardware instance.
func (db *DB) Instance() simdb.Instance { return db.inst }

// Catalog returns the full knob catalog of the engine.
func (db *DB) Catalog() *knobs.Catalog { return db.catalog }

// Restarts reports how many knob deployments required a restart.
func (db *DB) Restarts() int { return db.restarts }

// Runs reports how many stress tests have been executed.
func (db *DB) Runs() int { return db.runs }

// StallEvents reports how many stress tests hit the L0 stop trigger (or a
// flush/pending-debt stall) hard enough to charge stall time.
func (db *DB) StallEvents() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.stallEvents
}

// TakeStallSeconds implements env.Staller: it returns and clears the extra
// virtual time write stalls cost during the last stress tests.
func (db *DB) TakeStallSeconds() float64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	s := db.pendingStall
	db.pendingStall = 0
	return s
}

// ApplyKnobs deploys a normalized configuration over the knobs of cat
// (which may be a subset of the full catalog); knobs outside cat keep
// their current values. It reports whether the deployment needed a
// restart (§5.1.1 charges 2 minutes for restarts).
func (db *DB) ApplyKnobs(cat *knobs.Catalog, x []float64) (restarted bool, err error) {
	if cat.Engine != knobs.EngineLSM {
		return false, fmt.Errorf("lsm: catalog engine %v does not match instance engine %v", cat.Engine, knobs.EngineLSM)
	}
	if len(x) != cat.Len() {
		return false, fmt.Errorf("lsm: got %d knob values for %d knobs", len(x), cat.Len())
	}
	for i, k := range cat.Knobs {
		full := db.catalog.Index(k.Name)
		if full < 0 {
			return false, fmt.Errorf("lsm: knob %q not in engine catalog", k.Name)
		}
		v := k.Value(x[i], db.inst.HW.RAMGB, db.inst.HW.DiskGB)
		if v != db.values[full] && k.Restart {
			restarted = true
		}
		db.values[full] = v
	}
	if restarted {
		db.restarts++
	}
	return restarted, nil
}

// ResetDefaults restores every knob to its default value.
func (db *DB) ResetDefaults() {
	db.values = db.catalog.Denormalize(db.catalog.Defaults(db.inst.HW.RAMGB, db.inst.HW.DiskGB), db.inst.HW.RAMGB, db.inst.HW.DiskGB)
	db.restarts++
}

// CurrentKnobs returns the normalized current values of the knobs in cat.
func (db *DB) CurrentKnobs(cat *knobs.Catalog) []float64 {
	x := make([]float64, cat.Len())
	for i, k := range cat.Knobs {
		full := db.catalog.Index(k.Name)
		if full < 0 {
			continue
		}
		x[i] = k.Normalize(db.values[full], db.inst.HW.RAMGB, db.inst.HW.DiskGB)
	}
	return x
}

// KnobValue returns the actual value of the named knob.
func (db *DB) KnobValue(name string) (float64, bool) {
	i := db.catalog.Index(name)
	if i < 0 {
		return 0, false
	}
	return db.values[i], true
}

// RunWorkload stress-tests the instance under w for durationSec seconds of
// virtual time, sampling internal and external metrics every 5 seconds.
// On a crash (memory over-subscription or ENOSPC under space
// amplification) it returns simdb.ErrCrashed; write-stall time is banked
// for the environment to drain via TakeStallSeconds.
func (db *DB) RunWorkload(w workload.Workload, durationSec float64) (simdb.Result, error) {
	if err := w.Validate(); err != nil {
		return simdb.Result{}, err
	}
	db.runs++
	p := db.evaluate(w)
	if p.Crashed {
		return simdb.Result{}, fmt.Errorf("%w: %s", simdb.ErrCrashed, p.CrashReason)
	}
	n := int(durationSec / simdb.SamplePeriodSec)
	if n < 2 {
		n = 2
	}
	col := metrics.NewCollector()
	var ext []metrics.External
	for i := 0; i < n; i++ {
		db.advance(p, simdb.SamplePeriodSec)
		col.Add(db.snapshot(p))
		ext = append(ext, metrics.External{
			Throughput: p.TPS * db.noise(0.015),
			Latency99:  p.LatencyMS * db.noise(0.03),
		})
	}
	if stall := p.StallFrac * durationSec; stall > 0 {
		db.mu.Lock()
		db.pendingStall += stall * db.noise(0.1)
		if p.PStop > 0.02 {
			db.stallEvents++
		}
		db.mu.Unlock()
	}
	return simdb.Result{Ext: metrics.MeanExternal(ext), State: col.State()}, nil
}

// ShowStatus returns an instantaneous raw snapshot, the "show status"
// command a DBA runs by hand.
func (db *DB) ShowStatus(w workload.Workload) metrics.Snapshot {
	p := db.evaluate(w)
	return db.snapshot(p)
}

// noise draws a multiplicative 1±σ measurement perturbation.
func (db *DB) noise(sigma float64) float64 {
	f := 1 + sigma*db.rng.NormFloat64()
	if f < 0.5 {
		f = 0.5
	}
	return f
}
