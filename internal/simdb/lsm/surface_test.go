package lsm

import (
	"math"
	"strings"
	"testing"

	"cdbtune/internal/simdb"
	"cdbtune/internal/workload"
)

// set assigns an actual value to a named knob, bypassing normalization.
func set(t *testing.T, db *DB, name string, v float64) {
	t.Helper()
	i := db.catalog.Index(name)
	if i < 0 {
		t.Fatalf("no knob %q in the LSM catalog", name)
	}
	db.values[i] = v
}

// Read-amp falls monotonically as bloom bits are added: each bit cuts the
// false-positive rate of every sorted-run probe.
func TestBloomBitsReadAmpMonotone(t *testing.T) {
	db := New(simdb.CDBA, 1)
	w := workload.YCSB()
	prev := math.Inf(1)
	for _, bits := range []float64{0, 4, 8, 12, 16, 20} {
		set(t, db, "bloom_bits_per_key", bits)
		p := db.evaluate(w)
		if p.Crashed {
			t.Fatalf("crashed at bloom bits %v: %s", bits, p.CrashReason)
		}
		if p.ReadAmp >= prev {
			t.Fatalf("read-amp did not fall with bloom bits: %v bits → %v (prev %v)", bits, p.ReadAmp, prev)
		}
		prev = p.ReadAmp
	}
}

// Read-amp falls monotonically with block cache size (below the swap
// cliff): a bigger cache converts sorted-run probes into memory hits.
func TestBlockCacheReadAmpMonotone(t *testing.T) {
	db := New(simdb.CDBA, 1)
	w := workload.YCSB()
	prev := math.Inf(1)
	prevTput := 0.0
	for _, mb := range []float64{16, 64, 256, 1024, 2048, 4096} {
		set(t, db, "block_cache_size_mb", mb)
		p := db.evaluate(w)
		if p.Crashed {
			t.Fatalf("crashed at cache %v MB: %s", mb, p.CrashReason)
		}
		if p.ReadAmp >= prev {
			t.Fatalf("read-amp did not fall with block cache: %v MB → %v (prev %v)", mb, p.ReadAmp, prev)
		}
		if p.TPS <= prevTput {
			t.Fatalf("throughput did not rise with block cache below the cliff: %v MB → %v tx/s", mb, p.TPS)
		}
		prev, prevTput = p.ReadAmp, p.TPS
	}
}

// The read-path memory knobs are not free: maxing the block cache plus
// memtables over-subscribes RAM and crashes the instance — the RAM-budget
// side of the amplification triangle.
func TestBlockCacheCostsMemory(t *testing.T) {
	db := New(simdb.CDBA, 1)
	hw := simdb.CDBA.HW
	set(t, db, "block_cache_size_mb", 600*hw.RAMGB) // knob max
	set(t, db, "memtable_size_mb", 48*hw.RAMGB)
	set(t, db, "max_write_buffer_number", 16)
	p := db.evaluate(workload.YCSB())
	if !p.Crashed {
		t.Fatalf("maxed cache+memtables did not crash (memRatio %v)", p.MemPressure)
	}
	if !strings.Contains(p.CrashReason, "memory") {
		t.Fatalf("wrong crash reason: %s", p.CrashReason)
	}
}

// The L0 slowdown trigger is an inverted-U under compaction pressure:
// too low throttles writers prematurely, too high lets sorted runs pile
// deep enough to tax every read. The optimum is interior.
func TestL0SlowdownTriggerInvertedU(t *testing.T) {
	w := workload.YCSB()
	tput := func(trigger float64) float64 {
		db := New(simdb.CDBA, 1)
		set(t, db, "max_background_compactions", 1) // engineer pressure
		set(t, db, "level0_slowdown_writes_trigger", trigger)
		p := db.evaluate(w)
		if p.Crashed {
			t.Fatalf("crashed at trigger %v: %s", trigger, p.CrashReason)
		}
		return p.TPS
	}
	triggers := []float64{4, 8, 14, 20, 28, 40, 52, 64}
	vals := make([]float64, len(triggers))
	best, bestIdx := 0.0, 0
	for i, tr := range triggers {
		vals[i] = tput(tr)
		if vals[i] > best {
			best, bestIdx = vals[i], i
		}
	}
	if bestIdx == 0 || bestIdx == len(triggers)-1 {
		t.Fatalf("slowdown-trigger response is monotone, not inverted-U: %v → %v", triggers, vals)
	}
	if best < vals[0]*1.02 || best < vals[len(vals)-1]*1.02 {
		t.Fatalf("inverted-U too shallow: %v → %v", triggers, vals)
	}
}

// Leveled compaction rewrites each byte once per level fan-in; tiered
// defers merging. Write-amp must order leveled > tiered at defaults, and
// space-amp the other way around — the trade that makes compaction style
// a real decision.
func TestCompactionStyleAmplificationOrdering(t *testing.T) {
	w := workload.SysbenchWO()
	leveled := New(simdb.CDBA, 1)
	pl := leveled.evaluate(w)
	tiered := New(simdb.CDBA, 1)
	set(t, tiered, "compaction_style", 1)
	pt := tiered.evaluate(w)
	if pl.Crashed || pt.Crashed {
		t.Fatalf("defaults crashed: leveled=%v tiered=%v", pl.CrashReason, pt.CrashReason)
	}
	if pl.WriteAmp <= pt.WriteAmp {
		t.Fatalf("write-amp ordering violated: leveled %v ≤ tiered %v", pl.WriteAmp, pt.WriteAmp)
	}
	if pt.SpaceAmp <= pl.SpaceAmp {
		t.Fatalf("space-amp ordering violated: tiered %v ≤ leveled %v", pt.SpaceAmp, pl.SpaceAmp)
	}
}

// Under leveled compaction, write-amp grows with the level size
// multiplier: each level rewrites its input ~T/2 times before pushing
// down.
func TestWriteAmpGrowsWithLevelMultiplier(t *testing.T) {
	db := New(simdb.CDBA, 1)
	w := workload.SysbenchWO()
	prev := 0.0
	for _, mult := range []float64{4, 6, 8, 10, 14, 20} {
		set(t, db, "level_size_multiplier", mult)
		p := db.evaluate(w)
		if p.WriteAmp <= prev {
			t.Fatalf("write-amp did not grow with multiplier: %v → %v (prev %v)", mult, p.WriteAmp, prev)
		}
		prev = p.WriteAmp
	}
}

// Tiered compaction with garbage tolerance maxed and compression off runs
// the 35 GB YCSB dataset out of its 100 GB disk — the ENOSPC edge of the
// space-amp axis.
func TestTieredSpaceAmpENOSPC(t *testing.T) {
	db := New(simdb.CDBA, 1)
	set(t, db, "compaction_style", 1)
	set(t, db, "universal_max_size_amp_pct", 400)
	set(t, db, "compression_type", 0)
	set(t, db, "bottommost_compression", 0)
	p := db.evaluate(workload.YCSB())
	if !p.Crashed {
		t.Fatalf("tiered + no compression + max size-amp did not ENOSPC (spaceAmp %v)", p.SpaceAmp)
	}
	if !strings.Contains(p.CrashReason, "disk") {
		t.Fatalf("wrong crash reason: %s", p.CrashReason)
	}
	// The same configuration survives with compression on.
	db2 := New(simdb.CDBA, 1)
	set(t, db2, "compaction_style", 1)
	set(t, db2, "universal_max_size_amp_pct", 400)
	if p2 := db2.evaluate(workload.YCSB()); p2.Crashed {
		t.Fatalf("compressed tiered config should survive: %s", p2.CrashReason)
	}
}

// Starving compaction drives utilization past saturation: the stop
// trigger fires, stall time is banked for env.Staller, and the stall
// event counter moves.
func TestCompactionStallChargesStaller(t *testing.T) {
	db := New(simdb.CDBA, 1)
	set(t, db, "max_background_compactions", 1)
	set(t, db, "level_size_multiplier", 20)
	set(t, db, "level0_slowdown_writes_trigger", 12)
	set(t, db, "level0_stop_writes_trigger", 14)
	w := workload.SysbenchWO()
	p := db.evaluate(w)
	if p.PStop < 0.05 {
		t.Fatalf("starved compaction did not approach the stop trigger: u=%v l0=%v pStop=%v", p.CompactionUtil, p.L0Files, p.PStop)
	}
	if _, err := db.RunWorkload(w, simdb.StressTestSec); err != nil {
		t.Fatal(err)
	}
	if s := db.TakeStallSeconds(); s <= 0 {
		t.Fatalf("no stall seconds banked (pStop %v)", p.PStop)
	}
	if db.StallEvents() == 0 {
		t.Fatal("stall event counter did not move")
	}
	if s := db.TakeStallSeconds(); s != 0 {
		t.Fatalf("stall seconds not drained: %v", s)
	}
}

// The WAL sync policy trades durability for write cost: fsync-per-commit
// must be the slowest policy, no-sync the fastest.
func TestWALPolicyOrdering(t *testing.T) {
	w := workload.SysbenchWO()
	tput := func(policy float64) float64 {
		db := New(simdb.CDBA, 1)
		set(t, db, "wal_sync_policy", policy)
		return db.evaluate(w).TPS
	}
	off, perCommit, periodic := tput(0), tput(1), tput(2)
	if !(off > periodic && periodic > perCommit) {
		t.Fatalf("WAL policy ordering violated: off=%v periodic=%v perCommit=%v", off, periodic, perCommit)
	}
}

// The minor-knob surface is present and interacting, like the other
// engine family's.
func TestAuxSurfacePresent(t *testing.T) {
	db := New(simdb.CDBA, 1)
	w := workload.SysbenchRW()
	base := db.evaluate(w).TPS
	aux := 0
	for i, k := range db.catalog.Knobs {
		if k.Role == 0 { // knobs.RoleAux
			db.values[i] = k.Value(0.05, simdb.CDBA.HW.RAMGB, simdb.CDBA.HW.DiskGB)
			aux++
		}
	}
	if aux < 80 {
		t.Fatalf("LSM catalog has only %d minor knobs", aux)
	}
	if moved := db.evaluate(w).TPS; moved == base {
		t.Fatal("minor knobs have no effect on the LSM engine")
	}
}
