// The smoke test lives in an external test package so it can drive the
// full tuning stack (env, core, ddpg) against the LSM engine without
// creating an import cycle: the lsm package itself must stay importable
// by env.
package lsm_test

import (
	"testing"

	"cdbtune/internal/core"
	"cdbtune/internal/env"
	"cdbtune/internal/knobs"
	"cdbtune/internal/metrics"
	"cdbtune/internal/rl/ddpg"
	"cdbtune/internal/simdb"
	"cdbtune/internal/workload"
)

// TestLSMSmoke is the `make lsm-smoke` gate: a short seeded DDPG tune
// against the LSM engine on a write-only workload. It must (a) find a
// configuration that beats the shipped defaults on throughput and (b)
// observe at least one write-stall event along the way — the defaults'
// L0 triggers are deliberately tight enough that sysbench-wo pushes the
// engine into its slowdown/stop regime, so a tuner that never sees a
// stall is not exercising the compaction-debt dynamics at all.
func TestLSMSmoke(t *testing.T) {
	const seed = 11
	inst := simdb.CDBC
	w := workload.SysbenchWO()
	full := knobs.ForEngine(knobs.EngineLSM)
	idx := make([]int, 20)
	for i := range idx {
		idx[i] = i
	}
	cat := full.Subset(idx)

	var envs []*env.Env
	newLSMEnv := func(s int64) *env.Env {
		e := env.New(env.OpenEngine(knobs.EngineLSM, inst, s), cat, w)
		envs = append(envs, e)
		return e
	}

	base, err := newLSMEnv(seed).Measure()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("defaults: %.1f tx/s, p99 %.1f ms", base.Ext.Throughput, base.Ext.Latency99)

	cfg := core.DefaultConfig(cat)
	cfg.StepsPerEpisode = 6
	cfg.UpdatesPerStep = 2
	cfg.Seed = seed
	d := ddpg.DefaultConfig(metrics.NumMetrics, cat.Len())
	d.ActorHidden = []int{24, 24}
	d.CriticHidden = []int{32, 24}
	d.ActionBias = cat.Defaults(inst.HW.RAMGB, inst.HW.DiskGB)
	d.Seed = seed
	cfg.DDPG = d
	tuner, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tuner.OfflineTrain(func(ep int) *env.Env {
		return newLSMEnv(seed + 10 + int64(ep))
	}, 8); err != nil {
		t.Fatal(err)
	}

	res, err := tuner.OnlineTune(newLSMEnv(seed+99), 6, true)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("tuned: %.1f tx/s, p99 %.1f ms (%+.1f%%)",
		res.BestPerf.Throughput, res.BestPerf.Latency99,
		(res.BestPerf.Throughput/base.Ext.Throughput-1)*100)
	if res.BestPerf.Throughput <= base.Ext.Throughput {
		t.Errorf("tuned throughput %.1f did not beat defaults %.1f",
			res.BestPerf.Throughput, base.Ext.Throughput)
	}

	stalls := 0
	var stallSec float64
	for _, e := range envs {
		f := e.Faults()
		stalls += f.Stalls
		stallSec += f.StallSec
	}
	t.Logf("write stalls: %d events, %.1f s charged to the virtual clock", stalls, stallSec)
	if stalls < 1 {
		t.Error("no write-stall events observed: the smoke never reached the compaction-debt regime")
	}
	if stalls >= 1 && stallSec <= 0 {
		t.Error("stall events recorded but no stall seconds charged")
	}
}
