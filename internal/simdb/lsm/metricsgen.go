package lsm

import (
	"math"

	"cdbtune/internal/knobs"
	"cdbtune/internal/metrics"
)

// metricIdx resolves canonical metric positions once at init.
var metricIdx = func() map[string]int {
	m := make(map[string]int, metrics.NumMetrics)
	for i, d := range metrics.Defs {
		m[d.Name] = i
	}
	return m
}()

// advance accumulates dt seconds of counter activity at the rates the cost
// model produced. The 63 canonical metric names are reinterpreted with LSM
// semantics — block cache → buffer_pool_*, WAL → log_*, flush+compaction →
// pages flushed, write stalls → lock waits, compactions → sort merges — so
// fingerprints keep their shape while encoding a genuinely different
// engine signature.
func (db *DB) advance(p perf, dt float64) {
	add := func(name string, rate float64) {
		i := metricIdx[name]
		v := rate * dt * db.noise(0.02)
		if v < 0 {
			v = 0
		}
		db.cum[i] += v
	}
	ops := p.ReadOps + p.WriteOps
	commits := 0.0
	if ops > 0 {
		commits = p.TPS
	}
	insertOps := p.WriteOps * 0.5
	deleteOps := p.WriteOps * 0.1
	updateOps := p.WriteOps - insertOps - deleteOps
	flushBlocks := p.FlushMBps * 1024 / 16 // 16 KiB block writes /s
	compactBlocks := p.CompactionMBps * 1024 / 16

	add("bytes_received", ops*160)
	add("bytes_sent", p.ReadOps*700+p.WriteOps*40)
	add("com_select", p.ReadOps)
	add("com_insert", insertOps)
	add("com_update", updateOps)
	add("com_delete", deleteOps)
	add("com_commit", commits)
	add("com_rollback", commits*0.003)
	add("questions", ops+commits)
	add("queries", ops+commits)
	add("slow_queries", p.Scans*0.03+ops*0.2*p.PStop)
	add("buffer_pool_read_requests", p.BlockReqs)
	add("buffer_pool_reads", p.BlockMisses)
	add("buffer_pool_write_requests", flushBlocks)
	add("buffer_pool_pages_flushed", flushBlocks+compactBlocks)
	add("buffer_pool_read_ahead", compactBlocks*0.8+p.Scans*4)
	add("buffer_pool_read_ahead_evicted", compactBlocks*0.3)
	add("buffer_pool_wait_free", p.BlockMisses*0.02*p.MemPressure)
	add("data_reads", p.BlockMisses+compactBlocks)
	add("data_writes", flushBlocks+compactBlocks+p.WALFsyncs)
	add("data_read_bytes", (p.BlockMisses+compactBlocks)*16384)
	add("data_written_bytes", (flushBlocks+compactBlocks)*16384+p.WALWrites*float64(entryKB*1024))
	add("data_fsyncs", p.WALFsyncs+(flushBlocks+compactBlocks)*0.001)
	add("log_writes", p.WALWrites)
	add("log_write_requests", p.WALWrites*1.3)
	add("os_log_written", p.WALWrites*float64(entryKB*1024))
	add("os_log_fsyncs", p.WALFsyncs)
	add("log_waits", p.WALWrites*0.001*(1+5*p.PSlow))
	add("pages_created", flushBlocks)
	add("pages_read", p.BlockMisses)
	add("pages_written", flushBlocks+compactBlocks)
	add("rows_read", p.ReadOps*2+p.Scans*180)
	add("rows_inserted", insertOps)
	add("rows_updated", updateOps)
	add("rows_deleted", deleteOps)
	add("row_lock_waits", p.StallWaits)
	add("row_lock_time_ms", p.StallWaits*40)
	add("lock_timeouts", p.StallWaits*0.02*p.PStop)
	add("created_tmp_tables", compactBlocks/math.Max(1, 64*64)) // compaction output files
	add("created_tmp_disk_tables", flushBlocks/math.Max(1, 64*64))
	add("created_tmp_files", (flushBlocks+compactBlocks)/math.Max(1, 64*64))
	add("handler_read_first", p.Scans)
	add("handler_read_key", p.ReadOps*(1+p.ReadAmp))
	add("handler_read_next", p.Scans*160*(1+0.05*p.L0Files))
	add("handler_read_rnd_next", p.Scans*200)
	add("select_scan", p.Scans)
	add("sort_merge_passes", p.CompactionMBps/math.Max(1, 55)) // compactions in flight
	add("sort_rows", p.CompactionMBps*1024/float64(entryKB))   // entries merged /s
	add("table_locks_waited", p.StallWaits*0.1)
}

// snapshot materializes the instantaneous gauge values on top of the
// accumulated counters.
func (db *DB) snapshot(p perf) metrics.Snapshot {
	var s metrics.Snapshot
	copy(s.Values[:], db.cum[:])
	set := func(name string, v float64) {
		if v < 0 {
			v = 0
		}
		s.Values[metricIdx[name]] = v * db.noise(0.01)
	}
	cacheBlocks := p.CacheTotalMB * 64 // 16 KiB blocks
	fill := math.Min(1, 0.3+0.7*p.BlockHit)
	set("buffer_pool_pages_data", cacheBlocks*fill)
	set("buffer_pool_pages_dirty", cacheBlocks*fill*0.02) // cache is read-only; memtables are the dirty set
	set("buffer_pool_pages_free", cacheBlocks*(1-fill))
	set("buffer_pool_pages_total", cacheBlocks)
	set("buffer_pool_hit_ratio", p.BlockHit)
	set("threads_running", p.Running)
	set("threads_connected", p.ActiveConns)
	set("threads_cached", db.roleValue(knobs.RoleCompactionThreads, 2)+db.roleValue(knobs.RoleFlushThreads, 1))
	set("open_tables", math.Min(db.roleValue(knobs.RoleMaxOpenFiles, 1024), 4000))
	set("row_lock_current_waits", p.StallWaits*0.2)
	set("data_pending_reads", p.L0Files)
	set("data_pending_writes", p.PendingMB/1024)
	set("log_pending_fsyncs", p.WALFsyncs*0.001)
	set("dirty_page_ratio", math.Min(1, p.MemtableFill*0.7+0.3*math.Min(1, p.L0Files/36)))
	return s
}
