package lsm

import (
	"math"

	"cdbtune/internal/knobs"
	"cdbtune/internal/workload"
)

// perf is the deterministic output of the LSM cost model for the current
// configuration under one workload. Rates are per second.
type perf struct {
	TPS       float64
	LatencyMS float64

	Crashed     bool
	CrashReason string

	// The amplification triangle.
	WriteAmp float64 // bytes written to disk per byte ingested
	ReadAmp  float64 // expected disk reads per point lookup
	SpaceAmp float64 // on-disk bytes per live byte

	// Stall dynamics.
	CompactionUtil float64 // compaction demand / capacity
	L0Files        float64 // steady-state L0 sorted-run population
	PSlow          float64 // probability a write hits the slowdown regime
	PStop          float64 // probability a write hits a full stop
	StallFrac      float64 // fraction of wall time spent fully stalled

	// Model internals consumed by metric generation.
	BlockHit       float64 // block cache hit ratio
	MemtableFill   float64 // active memtable fill fraction
	Levels         float64 // sorted runs below L0
	ReadOps        float64 // read operations /s
	WriteOps       float64 // write operations /s
	BlockReqs      float64 // block cache requests /s
	BlockMisses    float64 // block cache misses (disk reads) /s
	FlushMBps      float64 // memtable flush bandwidth
	CompactionMBps float64 // compaction write bandwidth
	WALWrites      float64 // WAL appends /s
	WALFsyncs      float64 // WAL fsyncs /s
	Scans          float64 // range scans /s
	StallWaits     float64 // writer stall waits /s
	ActiveConns    float64
	Running        float64
	CacheTotalMB   float64
	PendingMB      float64 // pending compaction debt
	MemPressure    float64
}

// roleValue returns the current actual value of the first knob carrying
// the role, or def when the catalog subset lacks it.
func (db *DB) roleValue(r knobs.Role, def float64) float64 {
	i := db.catalog.RoleIndex(r)
	if i < 0 {
		return def
	}
	return db.values[i]
}

// logistic is the smooth trigger response: ~0 well below the threshold,
// ~1 well above, transitioning over ±2·width.
func logistic(x, width float64) float64 {
	return 1 / (1 + math.Exp(-x/width))
}

// sat clamps x into [0, hi].
func sat(x, hi float64) float64 {
	if x < 0 {
		return 0
	}
	if x > hi {
		return hi
	}
	return x
}

// compressionFactor maps a compression_type enum to an on-disk size factor
// and a CPU cost multiplier at level 3; the effort level scales the CPU
// side and sharpens the ratio slightly.
func compressionFactor(typ, level float64) (sizeF, cpuF float64) {
	switch int(typ) {
	case 0:
		return 1.0, 1.0
	case 1: // snappy
		sizeF, cpuF = 0.60, 1.020
	case 2: // lz4
		sizeF, cpuF = 0.55, 1.015
	case 3: // zstd
		sizeF, cpuF = 0.45, 1.060
	default: // zlib
		sizeF, cpuF = 0.50, 1.110
	}
	eff := (level - 3) / 6 // -0.33 at level 1 … +1 at level 9
	sizeF *= 1 - 0.06*eff
	cpuF = 1 + (cpuF-1)*(1+1.2*eff)
	return sizeF, cpuF
}

// entryKB is the modeled average logical entry size: key + value +
// per-entry overhead. DataSizeGB / entryKB gives the live key count.
const entryKB = 0.3

// evaluate runs the LSM cost model: knobs + workload + hardware →
// throughput, latency, the amplification triangle, stall dynamics, and
// the rates metric generation needs. It is a pure function of the current
// knob values (no RNG), so measurements are deterministic up to sampling
// noise.
func (db *DB) evaluate(w workload.Workload) perf {
	hw := db.inst.HW
	ramMB := hw.RAMGB * 1024
	diskMB := hw.DiskGB * 1024
	diskSpeed := hw.DiskSpeedFactor() // >1 = slower medium

	// ---- Knobs -----------------------------------------------------------
	memtMB := db.roleValue(knobs.RoleMemtableSize, 64)
	memtN := db.roleValue(knobs.RoleMemtableCount, 2)
	mergeMin := db.roleValue(knobs.RoleMemtableMergeMin, 1)
	walPolicy := db.roleValue(knobs.RoleWALPolicy, 1)
	walSyncKB := db.roleValue(knobs.RoleWALBytesPerSync, 0)
	walCapMB := db.roleValue(knobs.RoleWALSizeLimit, 64)
	walBufMB := db.roleValue(knobs.RoleLogBufferSize, 8)

	tiered := db.roleValue(knobs.RoleCompactionStyle, 0) >= 1
	levelMult := db.roleValue(knobs.RoleLevelMultiplier, 10)
	levelBaseMB := db.roleValue(knobs.RoleLevelBase, 256)
	numLevels := db.roleValue(knobs.RoleNumLevels, 7)
	dynLevel := db.roleValue(knobs.RoleDynamicLevelBytes, 0) >= 1
	l0Compact := db.roleValue(knobs.RoleL0CompactTrigger, 4)
	l0Slow := db.roleValue(knobs.RoleL0SlowdownTrigger, 20)
	l0Stop := db.roleValue(knobs.RoleL0StopTrigger, 36)
	targetMB := db.roleValue(knobs.RoleTargetFileSize, 64)
	targetMul := db.roleValue(knobs.RoleTargetFileMultiplier, 1)
	softPendGB := db.roleValue(knobs.RoleSoftPendingLimit, 16)
	hardPendGB := db.roleValue(knobs.RoleHardPendingLimit, 64)
	periodicHr := db.roleValue(knobs.RolePeriodicCompaction, 0)

	uniRatio := db.roleValue(knobs.RoleUniversalSizeRatio, 1)
	uniMerge := db.roleValue(knobs.RoleUniversalMinMerge, 2)
	uniMaxAmp := db.roleValue(knobs.RoleUniversalMaxSizeAmp, 200)

	compThreads := db.roleValue(knobs.RoleCompactionThreads, 2)
	flushThreads := db.roleValue(knobs.RoleFlushThreads, 1)
	subcomp := db.roleValue(knobs.RoleSubcompactions, 1)
	compReadKB := db.roleValue(knobs.RoleCompactionReadahead, 512)
	rateMBps := db.roleValue(knobs.RoleRateLimiter, 0)
	delayedMBps := db.roleValue(knobs.RoleDelayedWriteRate, 16)
	directIO := db.roleValue(knobs.RoleDirectIO, 0) >= 1

	bloomBits := db.roleValue(knobs.RoleBloomBits, 10)
	wholeKey := db.roleValue(knobs.RoleBloomWholeKey, 1) >= 1
	prefixBloom := db.roleValue(knobs.RolePrefixBloom, 0)
	cacheMB := db.roleValue(knobs.RoleBlockCache, 32)
	blockKB := db.roleValue(knobs.RoleBlockSize, 4)
	cacheIdxFilter := db.roleValue(knobs.RoleCacheIndexFilter, 0) >= 1
	pinL0 := db.roleValue(knobs.RolePinL0Filter, 0) >= 1
	rowCacheMB := db.roleValue(knobs.RoleRowCache, 0)
	optimizeHits := db.roleValue(knobs.RoleOptimizeFiltersHits, 0) >= 1
	iterReadKB := db.roleValue(knobs.RoleIteratorReadahead, 0)
	maxOpen := db.roleValue(knobs.RoleMaxOpenFiles, 1024)
	mmapReads := db.roleValue(knobs.RoleMmapRead, 0) >= 1

	compType := db.roleValue(knobs.RoleCompressionType, 1)
	compLevel := db.roleValue(knobs.RoleCompressionLevel, 3)
	bottomType := db.roleValue(knobs.RoleBottommostCompression, 3)

	pipelined := db.roleValue(knobs.RolePipelinedWrite, 0) >= 1
	concMemt := db.roleValue(knobs.RoleConcurrentMemtable, 1) >= 1
	writeYield := db.roleValue(knobs.RoleWriteThreadYield, 100)
	maxConn := db.roleValue(knobs.RoleMaxConnections, 1000)
	svcThreads := db.roleValue(knobs.RoleThreadConcurrency, 0)

	var p perf

	// ---- Workload facts --------------------------------------------------
	clients := float64(w.Threads)
	dataMB := w.DataSizeGB * 1024
	keysM := dataMB / entryKB / 1e6 // millions of live keys
	readShare := w.ReadFraction
	writeShare := w.WriteFraction()
	cores := float64(hw.Cores)

	// ---- Compression & on-disk geometry ---------------------------------
	topSize, topCPU := compressionFactor(compType, compLevel)
	botSize, botCPU := compressionFactor(bottomType, compLevel)
	// ~70 % of data lives in the bottommost sorted run.
	cf := 0.3*topSize + 0.7*botSize
	cpuComp := 0.3*topCPU + 0.7*botCPU
	onDiskMB := dataMB * cf

	// Sorted runs below L0. Leveled: geometric levels from the L1 base;
	// tiered: runs accumulate until the size-ratio/merge-width policy merges
	// them.
	var levels float64
	if tiered {
		levels = 2 + math.Log(math.Max(2, onDiskMB/math.Max(memtMB, 8)))/
			math.Log(uniMerge+0.5+uniRatio/25)
	} else {
		levels = 1 + math.Log(math.Max(1.01, onDiskMB/levelBaseMB))/math.Log(levelMult)
	}
	levels = sat(levels, numLevels)
	if levels < 1 {
		levels = 1
	}
	p.Levels = levels

	// ---- Write amplification --------------------------------------------
	// One WAL write + one flush + the merge cost of the compaction shape.
	var wa float64
	if tiered {
		wa = 2 + 0.55*levels*(1-uniRatio/120)
		wa *= 1 - 0.10*uniMaxAmp/400 // tolerating garbage defers merges
	} else {
		wa = 2 + 0.5*levelMult*(levels-1)
		if dynLevel {
			wa *= 0.93
		}
	}
	// Merging immutable memtables before flush dedups skewed overwrites.
	wa *= 1 - 0.12*w.Skew*(1-1/math.Max(1, mergeMin))
	if wa < 2 {
		wa = 2
	}
	p.WriteAmp = wa

	// ---- Space amplification & ENOSPC -----------------------------------
	var sa, transientMB float64
	if tiered {
		sa = 1 + 0.8*uniMaxAmp/100*0.5
		transientMB = onDiskMB // a full merge transiently doubles the data
	} else {
		sa = 1 + 1/levelMult + 0.12
		if dynLevel {
			sa -= 0.06
		}
		transientMB = 0.15 * onDiskMB
	}
	p.SpaceAmp = sa
	diskUseMB := onDiskMB*sa + transientMB + walCapMB
	if diskUseMB > 0.92*diskMB {
		p.Crashed = true
		p.CrashReason = "out of disk: space amplification (compaction style/garbage tolerance/compression) exceeds the disk budget"
		return p
	}

	// ---- Memory budget & swap cliff -------------------------------------
	bloomMB := bloomBits * keysM / 8
	idxHeapMB := onDiskMB * 0.004
	heapMetaMB := bloomMB + idxHeapMB
	cacheData := cacheMB
	if cacheIdxFilter {
		// Index+filter blocks charge the cache instead of the heap,
		// displacing data blocks (bounded — eviction protects some data).
		charged := math.Min(heapMetaMB, 0.6*cacheMB)
		cacheData = cacheMB - charged
		heapMetaMB -= charged
		if pinL0 {
			cacheData -= 0.02 * cacheMB
		}
	}
	memMB := memtMB*memtN + cacheMB + rowCacheMB + heapMetaMB + walBufMB +
		math.Min(clients, maxConn)*0.05 + 350
	memRatio := memMB / ramMB
	p.MemPressure = memRatio
	if memRatio > 1.32 {
		p.Crashed = true
		p.CrashReason = "memory over-subscription (memtables + block cache + filter/index heap exceed RAM)"
		return p
	}
	swapFactor := 1.0
	if over := memRatio - 0.92; over > 0 {
		swapFactor = 1 / (1 + 60*over*over)
	}

	// ---- Block cache hit ratio ------------------------------------------
	// The OS page cache backstops the block cache (bloom/index heap is
	// excluded from the free-RAM estimate: it is small and effectively
	// pinned); an OS-cache hit is still cheaper than a disk read, so both
	// tiers feed one effective cache size. Direct-IO compaction stops
	// compaction churn from evicting it.
	effWSMB := w.WorkingSetGB * 1024 * (1 - 0.5*w.Skew)
	if w.Class == workload.OLAP {
		effWSMB = (0.35*w.DataSizeGB + 0.65*w.WorkingSetGB) * 1024
	}
	osFreeMB := math.Max(0, ramMB-memtMB*memtN-cacheMB-rowCacheMB-350) * 0.5
	osWeight := 0.35
	if directIO {
		osWeight = 0.42
	}
	effCacheMB := math.Max(1, cacheData) + osWeight*osFreeMB
	hit := 0.5 + 0.497*(1-math.Exp(-2.2*effCacheMB/effWSMB))
	if hit > 0.999 {
		hit = 0.999
	}
	p.BlockHit = hit
	p.CacheTotalMB = cacheMB

	// ---- Ideal operation rate (pre-stall) -------------------------------
	// LSMs ingest faster than B-trees but scan slower (merging iterators).
	var base float64
	if w.Class == workload.OLAP {
		base = 240
	} else {
		base = 52000
	}

	// ---- Read cost -------------------------------------------------------
	// A point lookup probes the memtables, each L0 file and each deeper
	// sorted run; bloom filters short-circuit runs that cannot contain the
	// key. Every probed run costs CPU (filter/index checks) even on a
	// bloom skip; actual disk reads happen on cache misses.
	fpr := 1.0
	if bloomBits > 0 {
		fpr = math.Pow(0.6185, bloomBits)
		if !wholeKey {
			fpr = math.Min(1, fpr*1.6)
		}
		if optimizeHits {
			// No filters on the bottommost run: cheaper memory/CPU, but
			// misses fall through to it.
			fpr *= 0.9
		}
	}
	missCost := 2.4 * diskSpeed
	// Larger blocks read more bytes per point miss; slightly fewer IOs for
	// scans (handled below).
	pointBlockPenalty := 1 + 0.05*math.Log2(math.Max(1, blockKB/4))

	// Compaction debt shows up in reads before it stalls writes: the L0
	// population is probed by every lookup. Computed below; first pass uses
	// the compaction-trigger floor, then feeds back once.
	l0Floor := l0Compact * 0.5
	memtRuns := 1 + (memtN-1)*0.4 + (mergeMin-1)*0.3

	// ---- Write path & compaction debt -----------------------------------
	walCost := 1.0
	switch int(walPolicy) {
	case 0:
		walCost = 0.78
	case 2:
		walCost = 0.88
	}
	if pipelined && int(walPolicy) >= 1 {
		walCost *= 0.95
	}
	if walSyncKB > 0 && int(walPolicy) == 1 {
		walCost *= 0.98 // smoother writeback, marginal throughput
	}
	walCost *= 1 + 0.10*(1-walBufMB/(walBufMB+8))
	if !concMemt && clients > 64 {
		walCost *= 1.08
	}
	// Group-commit leader spin: inverted-U around a concurrency-scaled
	// optimum.
	yieldOpt := 40 + clients/8
	walCost *= 1 + 0.04*math.Abs(math.Log((writeYield+10)/yieldOpt))/3

	writeCost := walCost * cpuComp * (1 + 0.10*32/(memtMB+32)) // flush overhead amortizes with memtable size

	// Ideal throughput before stalls, to size the ingest estimate.
	readCost0 := (1 + missCost*(1-hit)*(1+(memtRuns-1+l0Floor+levels-1)*fpr)*pointBlockPenalty*0.4) * cpuComp
	opCost0 := readShare*readCost0 + writeShare*writeCost
	if opCost0 < 0.2 {
		opCost0 = 0.2
	}
	idealOps := base / opCost0
	ingestMBps := idealOps * writeShare * entryKB / 1024 // ops/s · KB/op → MB/s

	// Forced early flushes when the WAL cap is tight relative to memtable
	// capacity.
	forcedFlush := math.Max(0, memtMB*memtN*1.5-walCapMB) / (memtMB*memtN*1.5 + 1)
	flushMBps := ingestMBps * cf * (1 + 0.7*forcedFlush)

	// Compaction demand vs capacity. Compaction reads and rewrites
	// (WA − WAL − flush stages rewrite the rest): ≈ 1.7 bytes of disk
	// bandwidth per byte of amplified write.
	demandMBps := ingestMBps * cf * (wa - 1) * 1.7
	if periodicHr > 0 {
		demandMBps += onDiskMB / (periodicHr * 3600)
	}
	perThread := 55 / diskSpeed
	capacity := math.Min(compThreads, cores) * perThread
	if !tiered {
		capacity *= 1 + 0.25*math.Log(math.Max(1, subcomp))/math.Log(16)
	}
	capacity *= 1 - 0.10*(1-compReadKB/(compReadKB+512)) // readahead feeds the merge
	if directIO {
		capacity *= 0.95
	}
	if rateMBps > 0 {
		capacity = math.Min(capacity, rateMBps)
	}
	u0 := demandMBps / math.Max(1, capacity)

	// Free-running L0 population: the compaction-trigger floor plus a
	// backlog that grows steeply once utilization saturates (one unrolled
	// efficiency-feedback iteration — a deep L0 makes compaction less
	// incremental). A permissive slowdown trigger lets the pile ride higher
	// before the scheduler prioritizes L0 (the slack term).
	slack := 0.35 + 0.65*l0Slow/64
	backlog0 := 30 * math.Pow(sat((u0-0.6)/0.55, 1.2), 3)
	pileFree := l0Floor + backlog0*slack
	uEff := u0 * (1 + 0.015*pileFree)
	backlog := 30 * math.Pow(sat((uEff-0.6)/0.55, 1.2), 3)
	pileFree = l0Floor + backlog*slack

	// Triggers hold the realized pile near the slowdown trigger (that is
	// their whole point): writers are delayed exactly enough to pin it
	// there, and a stop never lets it run much past. RocksDB requires
	// slowdown ≤ stop; the model repairs an inconsistent pair the way the
	// engine would.
	stopEff := math.Max(l0Stop, l0Slow*1.15)
	l0Pop := math.Min(pileFree, math.Max(l0Floor, 1.06*l0Slow))
	if l0Pop > 1.03*stopEff {
		l0Pop = 1.03 * stopEff
	}
	p.L0Files = l0Pop

	// Trigger pressure is felt on the FREE pile plus bursty transients:
	// compaction arrives in episodes, so a tight trigger throttles on
	// bursts even when the mean pile is fine.
	burst := (2 + 3*math.Min(u0, 1)) * writeShare
	pSlow := logistic(pileFree+burst-l0Slow, 2.5)
	pStop := logistic(pileFree+burst-stopEff, 2.5)

	// Compaction batch efficiency is an inverted-U in the realized pile: a
	// pile pinned low by a tight trigger forces tiny, seek-bound L0→L1
	// merges; a deep pile re-reads L0 over and over. The sweet spot sits in
	// the mid-teens.
	batchEff := (l0Pop + 1.5) / (l0Pop + 6) / (1 + 0.018*math.Max(0, l0Pop-14))
	capEff := capacity * (0.55 + 0.58*batchEff)
	u := demandMBps / math.Max(1, capEff)
	p.CompactionUtil = u

	// Pending-compaction debt accrued across one stress test window.
	excess := math.Max(0, demandMBps-capEff)
	debtGB := excess * 150 / 1024
	p.PendingMB = debtGB * 1024
	pSlow = math.Min(1, pSlow+0.7*logistic(debtGB-softPendGB, math.Max(1, 0.25*softPendGB)))
	pStop = math.Min(1, pStop+0.8*logistic(debtGB-hardPendGB, math.Max(1, 0.25*hardPendGB)))

	// Memtable stalls: ingest outrunning flush capacity, absorbed by spare
	// memtables.
	flushCap := math.Min(flushThreads, cores) * 90 / diskSpeed
	pFlush := logistic(flushMBps-0.85*flushCap, 0.25*flushCap+1) - 0.9*sat((memtN-1)/6, 1)
	if pFlush < 0 {
		pFlush = 0
	}
	pStop = math.Min(1, pStop+0.6*pFlush)
	p.PSlow = pSlow
	p.PStop = pStop

	// ---- Read cost, final (with the real L0 population) ------------------
	runsTotal := memtRuns + l0Pop + (levels - 1)
	probes := 1 + (runsTotal-1)*fpr
	readAmp := probes * (1 - hit) * pointBlockPenalty
	p.ReadAmp = readAmp
	pointShare := 1 - w.ScanFraction
	readCost := 1 + missCost*readAmp*pointShare
	// Range scans merge every sorted run; blooms cannot help them (a
	// memtable prefix bloom trims a little), iterator readahead and bigger
	// blocks do.
	if w.ScanFraction > 0 {
		scanRuns := 1 + 0.18*l0Pop + 0.4*(levels-1)
		scanIO := missCost * (1 - hit) * scanRuns *
			(1 - 0.25*iterReadKB/(iterReadKB+1024)) *
			(1 - 0.15*math.Log2(math.Max(1, blockKB/4))/6) *
			(1 - 0.3*prefixBloom*4*w.Skew)
		readCost += w.ScanFraction * scanIO * 2.2
	}
	// Row cache short-circuits hot point lookups on skewed workloads.
	if rowCacheMB > 0 {
		rowHit := 0.5 * w.Skew * (1 - math.Exp(-rowCacheMB/256))
		readCost *= 1 - 0.3*rowHit*pointShare
	}
	if mmapReads {
		if int(compType) == 0 {
			readCost *= 0.97
		} else {
			readCost *= 1.02
		}
	}
	// Per-run CPU overhead (filter/index checks, merge iterators) is paid
	// even when blooms skip the IO — the read-side cost of a deep L0.
	readCost *= 1 + 0.009*runsTotal
	readCost *= cpuComp
	// Table-handle cache churn when the file population exceeds
	// max_open_files.
	files := onDiskMB/math.Max(4, targetMB*math.Max(1, targetMul*0.5)) + l0Pop
	readCost *= 1 + 0.10*(1-sat(maxOpen/math.Max(1, files), 1))

	// ---- Throughput ------------------------------------------------------
	concAdj := 1.0
	if svcThreads > 0 {
		d := math.Log(svcThreads) - math.Log(2.5*cores)
		concAdj = 0.80 + 0.20*math.Exp(-d*d/2)
	} else if clients > 6*cores {
		concAdj = 0.94
	}
	connCap := 1.0
	if maxConn < clients {
		connCap = 0.25 + 0.75*maxConn/clients
	}
	auxFactor := db.aux.Factor(db.values, hw, w)

	opCost := readShare*readCost + writeShare*writeCost
	if opCost < 0.2 {
		opCost = 0.2
	}
	// Overload self-regulates: sustained ingest cannot outrun what the
	// compaction pool drains, so throughput divides smoothly by the excess
	// utilization (monotone in offered load — a faster write path is never
	// slower end to end). Triggers shape HOW the excess is absorbed: smooth
	// slowdown delays cost a little (less with a generous delayed-write
	// rate), jagged full stops cost more.
	delayedRel := delayedMBps / (delayedMBps + math.Max(1, ingestMBps))
	overload := 1 + 0.9*math.Max(0, u-1)
	throttle := (1 - pSlow*writeShare*(0.05+0.18*(1-delayedRel))) * (1 - 0.18*pStop*writeShare) / overload
	opsPerSec := base * concAdj * connCap * swapFactor * auxFactor * throttle / opCost
	tps := opsPerSec / w.OpsPerTxn
	if tps < 0.1 {
		tps = 0.1
	}
	p.TPS = tps

	// Stall time charged to the virtual clock: stop stalls dominate, and a
	// deeper stop trigger means a bigger pile to drain once it fires.
	p.StallFrac = (0.22*math.Max(0, pStop-0.02) + 0.03*math.Max(0, pSlow-0.10)*writeShare) * (0.5 + stopEff/72)

	// ---- Latency (closed loop + stall-driven tail) -----------------------
	meanLatMS := clients / tps * 1000
	tail := 2.0 + 7*pStop + 2.2*pSlow*writeShare
	if int(walPolicy) == 1 {
		tail += 0.4 * writeShare * (1 - 0.3*sat(walSyncKB/4096, 1))
	}
	if clients > maxConn {
		tail += 1.5 * (1 - maxConn/clients)
	}
	if memRatio > 0.92 {
		tail += 2.5 * (memRatio - 0.92)
	}
	p.LatencyMS = math.Max(0.5, meanLatMS*tail/2.0)

	// ---- Rates for metric generation ------------------------------------
	ops := tps * w.OpsPerTxn
	p.ReadOps = ops * readShare
	p.WriteOps = ops * writeShare
	blocksPerRead := 1.2 + 10*w.ScanFraction
	p.BlockReqs = p.ReadOps * blocksPerRead * probes
	p.BlockMisses = p.BlockReqs * (1 - hit)
	realIngest := p.WriteOps * entryKB / 1024
	p.FlushMBps = realIngest * cf * (1 + 0.7*forcedFlush)
	p.CompactionMBps = math.Min(realIngest*cf*(wa-1), capacity)
	p.WALWrites = p.WriteOps
	switch int(walPolicy) {
	case 1:
		p.WALFsyncs = tps
	default:
		p.WALFsyncs = 1
	}
	p.Scans = p.ReadOps * w.ScanFraction
	p.StallWaits = clients * writeShare * (0.05*pSlow + 0.5*pStop)
	p.ActiveConns = math.Min(clients, maxConn)
	limit := clients
	if svcThreads > 0 {
		limit = svcThreads
	}
	p.Running = math.Min(math.Min(clients, limit), 4*cores*(0.5+0.5*(1-hit)))
	p.MemtableFill = 0.3 + 0.5*sat(u, 1)
	return p
}
