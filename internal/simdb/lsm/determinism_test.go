package lsm

import (
	"testing"
	"testing/quick"

	"cdbtune/internal/simdb"
	"cdbtune/internal/workload"
)

// TestEvaluateDeterministic: the LSM cost model (before measurement noise)
// is a pure function of (hardware, config, workload).
func TestEvaluateDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		mk := func() *DB {
			db := New(simdb.CDBB, 1)
			cat := db.Catalog()
			x := cat.Defaults(simdb.CDBB.HW.RAMGB, simdb.CDBB.HW.DiskGB)
			r2 := newSplitMix(seed)
			for i := range x {
				if r2.next() < 0.2 {
					x[i] = r2.next() * 0.8
				}
			}
			if _, err := db.ApplyKnobs(cat, x); err != nil {
				t.Fatal(err)
			}
			return db
		}
		a, b := mk().evaluate(workload.YCSB()), mk().evaluate(workload.YCSB())
		return a.TPS == b.TPS && a.LatencyMS == b.LatencyMS && a.Crashed == b.Crashed &&
			a.WriteAmp == b.WriteAmp && a.ReadAmp == b.ReadAmp && a.SpaceAmp == b.SpaceAmp
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// splitMix is a tiny deterministic generator for test configurations.
type splitMix struct{ s uint64 }

func newSplitMix(seed int64) *splitMix { return &splitMix{s: uint64(seed)} }

func (m *splitMix) next() float64 {
	m.s += 0x9e3779b97f4a7c15
	z := m.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// TestSameSeedSameRun: identical seed + knobs + workload reproduce a
// bit-identical Result, including every internal metric.
func TestSameSeedSameRun(t *testing.T) {
	run := func() simdb.Result {
		db := New(simdb.CDBA, 42)
		set(t, db, "bloom_bits_per_key", 12)
		set(t, db, "block_cache_size_mb", 512)
		r, err := db.RunWorkload(workload.YCSB(), simdb.StressTestSec)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.Ext != b.Ext {
		t.Fatalf("externals differ across identical seeds: %+v vs %+v", a.Ext, b.Ext)
	}
	for i := range a.State {
		if a.State[i] != b.State[i] {
			t.Fatalf("state[%d] differs across identical seeds", i)
		}
	}
}

// TestDifferentSeedDifferentNoise: measurement noise is seed-dependent even
// though the underlying surface is not.
func TestDifferentSeedDifferentNoise(t *testing.T) {
	run := func(seed int64) simdb.Result {
		db := New(simdb.CDBA, seed)
		r, err := db.RunWorkload(workload.YCSB(), simdb.StressTestSec)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	if a, b := run(1), run(2); a.Ext == b.Ext {
		t.Fatal("different seeds produced identical measurements")
	}
}
