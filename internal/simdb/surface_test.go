package simdb

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cdbtune/internal/knobs"
	"cdbtune/internal/workload"
)

// TestSurfaceNonMonotone reproduces the Figure 1(d) premise: the
// performance surface is not monotone in every direction — there exist
// knobs whose response has an interior optimum.
func TestSurfaceNonMonotone(t *testing.T) {
	db := New(knobs.EngineCDB, CDBA, 1)
	cat := db.Catalog()
	w := workload.SysbenchRW()
	i := cat.Index("innodb_write_io_threads")
	var prev float64
	direction := 0 // +1 rising, -1 falling
	changes := 0
	for _, x := range []float64{0.05, 0.2, 0.35, 0.5, 0.65, 0.8, 0.95} {
		cfg := cat.Defaults(8, 100)
		cfg[i] = x
		if _, err := db.ApplyKnobs(cat, cfg); err != nil {
			t.Fatal(err)
		}
		tps := db.evaluate(w).TPS
		if prev != 0 {
			d := 0
			if tps > prev {
				d = 1
			} else if tps < prev {
				d = -1
			}
			if d != 0 && direction != 0 && d != direction {
				changes++
			}
			if d != 0 {
				direction = d
			}
		}
		prev = tps
	}
	if changes == 0 {
		t.Fatal("write IO threads response is monotone; Figure 1(d) requires an interior optimum")
	}
}

// TestAuxInteractionsExist: at least one minor-knob pair interacts — the
// effect of moving knob A depends on where knob B sits.
func TestAuxInteractionsExist(t *testing.T) {
	db := New(knobs.EngineCDB, CDBA, 1)
	s := db.aux
	var pairIdx = -1
	for j, p := range s.pair {
		if p >= 0 && s.g[j] != 0 {
			pairIdx = j
			break
		}
	}
	if pairIdx < 0 {
		t.Fatal("no interacting minor-knob pairs generated")
	}
	w := workload.SysbenchRW()
	partner := s.pair[pairIdx]
	setAux := func(j int, x float64) {
		full := s.idx[j]
		k := db.catalog.Knobs[full]
		db.values[full] = k.Value(x, CDBA.HW.RAMGB, CDBA.HW.DiskGB)
	}
	effectOfA := func(bPos float64) float64 {
		setAux(partner, bPos)
		setAux(pairIdx, 0.1)
		lo := s.Factor(db.values, db.inst.HW, w)
		setAux(pairIdx, 0.9)
		hi := s.Factor(db.values, db.inst.HW, w)
		return hi - lo
	}
	d1 := effectOfA(0.1)
	d2 := effectOfA(0.9)
	if d1 == d2 {
		t.Fatal("knob A's effect is independent of knob B: no interaction")
	}
}

// Property: the aux factor is always positive and bounded (the clamps).
func TestAuxFactorBoundedProperty(t *testing.T) {
	db := New(knobs.EngineCDB, CDBA, 1)
	cat := db.Catalog()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := make([]float64, cat.Len())
		for i := range x {
			x[i] = rng.Float64()
		}
		if _, err := db.ApplyKnobs(cat, x); err != nil {
			return false
		}
		v := db.aux.Factor(db.values, db.inst.HW, workload.TPCC())
		return v > 0.25 && v < 2.5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestAuxWorkloadAffinity: a minor knob's contribution shifts with the
// read/write mix (the mix term).
func TestAuxWorkloadAffinity(t *testing.T) {
	db := New(knobs.EngineCDB, CDBA, 1)
	ro := db.aux.Factor(db.values, db.inst.HW, workload.SysbenchRO())
	wo := db.aux.Factor(db.values, db.inst.HW, workload.SysbenchWO())
	if ro == wo {
		t.Fatal("aux surface ignores the workload mix")
	}
}
