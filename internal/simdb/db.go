package simdb

import (
	"errors"
	"fmt"
	"math/rand"

	"cdbtune/internal/knobs"
	"cdbtune/internal/metrics"
	"cdbtune/internal/workload"
)

// ErrCrashed is returned by RunWorkload when the configuration makes the
// instance fall over mid-run — the paper's example is the redo-log group
// outgrowing the disk (§5.2.3), and memory over-subscription does the same.
var ErrCrashed = errors.New("simdb: instance crashed under this configuration")

// ErrTransient marks a measurement failure that did not change the
// instance: a dropped stress-test connection, a metric-collection timeout,
// a restart that must be retried. The simulator itself never fails this
// way; the chaos layer injects it, and env.Step/Measure retry it with
// backoff before giving up.
var ErrTransient = errors.New("simdb: transient measurement failure")

// ErrWorkerLost marks the training server behind an environment becoming
// unreachable mid-episode — the machine died, not the database
// configuration. The chaos layer injects it; the parallel trainer responds
// by respawning the worker and re-queueing the episode.
var ErrWorkerLost = errors.New("simdb: training server lost")

// Nominal wall-clock costs of one tuning step, from §5.1.1. The simulator
// completes instantly; the virtual clock in internal/core charges these.
const (
	StressTestSec     = 152.88
	MetricsCollectSec = 0.00086
	DeploySec         = 16.68
	RestartSec        = 120
	SamplePeriodSec   = 5 // external/internal metric sampling cadence

	// ObserveSec is the short observation window the dynamic-serving loop
	// uses between re-tunes: long enough for a handful of metric samples,
	// cheap enough to poll a timeline many times per simulated day.
	ObserveSec = 30
)

// DB is one simulated database instance.
type DB struct {
	engine  knobs.Engine
	inst    Instance
	catalog *knobs.Catalog // full engine catalog
	values  []float64      // actual knob values, aligned with catalog
	aux     *AuxSurface
	rng     *rand.Rand

	cum      [metrics.NumMetrics]float64 // cumulative counter state
	restarts int
	runs     int
}

// New creates an instance of the given engine on the given hardware with
// every knob at its default. seed fixes the run-to-run measurement noise.
// The LSM engine family lives in simdb/lsm (env.OpenEngine dispatches);
// this buffer-pool model cannot interpret its knobs.
func New(engine knobs.Engine, inst Instance, seed int64) *DB {
	if engine == knobs.EngineLSM {
		panic("simdb: EngineLSM is served by simdb/lsm (use lsm.New or env.OpenEngine)")
	}
	cat := knobs.ForEngine(engine)
	db := &DB{
		engine:  engine,
		inst:    inst,
		catalog: cat,
		rng:     rand.New(rand.NewSource(seed)),
		aux:     NewAuxSurface(cat),
	}
	db.values = cat.Denormalize(cat.Defaults(inst.HW.RAMGB, inst.HW.DiskGB), inst.HW.RAMGB, inst.HW.DiskGB)
	return db
}

// Engine reports the engine variant.
func (db *DB) Engine() knobs.Engine { return db.engine }

// Instance reports the hardware instance.
func (db *DB) Instance() Instance { return db.inst }

// Catalog returns the full knob catalog of the engine.
func (db *DB) Catalog() *knobs.Catalog { return db.catalog }

// Restarts reports how many knob deployments required a restart.
func (db *DB) Restarts() int { return db.restarts }

// Runs reports how many stress tests have been executed.
func (db *DB) Runs() int { return db.runs }

// ApplyKnobs deploys a normalized configuration over the knobs of cat
// (which may be a subset of the full catalog); knobs outside cat keep
// their current values. It reports whether the deployment needed a
// restart (§5.1.1 charges 2 minutes for restarts).
func (db *DB) ApplyKnobs(cat *knobs.Catalog, x []float64) (restarted bool, err error) {
	if cat.Engine != db.engine {
		return false, fmt.Errorf("simdb: catalog engine %v does not match instance engine %v", cat.Engine, db.engine)
	}
	if len(x) != cat.Len() {
		return false, fmt.Errorf("simdb: got %d knob values for %d knobs", len(x), cat.Len())
	}
	for i, k := range cat.Knobs {
		full := db.catalog.Index(k.Name)
		if full < 0 {
			return false, fmt.Errorf("simdb: knob %q not in engine catalog", k.Name)
		}
		v := k.Value(x[i], db.inst.HW.RAMGB, db.inst.HW.DiskGB)
		if v != db.values[full] && k.Restart {
			restarted = true
		}
		db.values[full] = v
	}
	if restarted {
		db.restarts++
	}
	return restarted, nil
}

// ResetDefaults restores every knob to its default value.
func (db *DB) ResetDefaults() {
	db.values = db.catalog.Denormalize(db.catalog.Defaults(db.inst.HW.RAMGB, db.inst.HW.DiskGB), db.inst.HW.RAMGB, db.inst.HW.DiskGB)
	db.restarts++
}

// CurrentKnobs returns the normalized current values of the knobs in cat.
func (db *DB) CurrentKnobs(cat *knobs.Catalog) []float64 {
	x := make([]float64, cat.Len())
	for i, k := range cat.Knobs {
		full := db.catalog.Index(k.Name)
		if full < 0 {
			continue
		}
		x[i] = k.Normalize(db.values[full], db.inst.HW.RAMGB, db.inst.HW.DiskGB)
	}
	return x
}

// KnobValue returns the actual value of the named knob.
func (db *DB) KnobValue(name string) (float64, bool) {
	i := db.catalog.Index(name)
	if i < 0 {
		return 0, false
	}
	return db.values[i], true
}

// Result is the outcome of one stress test: the averaged external metrics
// and the collector-reduced raw internal state vector.
type Result struct {
	Ext   metrics.External
	State []float64 // 63 raw internal metrics (collector output)
}

// RunWorkload stress-tests the instance under w for durationSec seconds of
// virtual time, sampling internal and external metrics every 5 seconds
// (§2.2.2). On a crash it returns ErrCrashed; the caller translates that
// into the paper's large negative reward.
func (db *DB) RunWorkload(w workload.Workload, durationSec float64) (Result, error) {
	if err := w.Validate(); err != nil {
		return Result{}, err
	}
	db.runs++
	p := db.evaluate(w)
	if p.Crashed {
		// A crash still moves the clock and leaves the counters as they
		// were; there is nothing meaningful to collect.
		return Result{}, fmt.Errorf("%w: %s", ErrCrashed, p.CrashReason)
	}
	n := int(durationSec / SamplePeriodSec)
	if n < 2 {
		n = 2
	}
	col := metrics.NewCollector()
	var ext []metrics.External
	for i := 0; i < n; i++ {
		db.advance(p, SamplePeriodSec)
		col.Add(db.snapshot(p))
		ext = append(ext, metrics.External{
			Throughput: p.TPS * db.noise(0.015),
			Latency99:  p.LatencyMS * db.noise(0.03),
		})
	}
	return Result{Ext: metrics.MeanExternal(ext), State: col.State()}, nil
}

// ShowStatus returns an instantaneous raw snapshot, the "show status"
// command a DBA runs by hand. Rates reflect the most recent evaluation of
// the idle default workload if nothing has run yet.
func (db *DB) ShowStatus(w workload.Workload) metrics.Snapshot {
	p := db.evaluate(w)
	return db.snapshot(p)
}

// noise draws a multiplicative 1±σ measurement perturbation.
func (db *DB) noise(sigma float64) float64 {
	f := 1 + sigma*db.rng.NormFloat64()
	if f < 0.5 {
		f = 0.5
	}
	return f
}
