package simdb

import (
	"hash/fnv"
	"math"

	"cdbtune/internal/knobs"
	"cdbtune/internal/workload"
)

// AuxSurface is the procedurally generated response surface of the minor
// (RoleAux) knobs. Each minor knob i contributes
//
//	amp_i · (1 − 6·(x_i − p_i)²) · mix_i(w)
//
// where x_i is the knob's normalized value, p_i its (hidden) optimum and
// mix_i a workload affinity; selected pairs add interaction terms
// g_ij·4·(x_i−p_i)·(x_j−p_j). The sum feeds an exponential factor, giving
// the smooth, non-convex, interacting high-dimensional landscape of
// Figure 1(d) and the knob-count behaviour of Figures 6-8. Amplitudes
// follow a power law: a few minor knobs matter, most barely do.
//
// The surface is engine-agnostic — it is keyed only on knob names and the
// catalog — so every engine family (the buffer-pool engines here and the
// LSM engine in simdb/lsm) shares the same construction while getting a
// different landscape from its own knob names.
type AuxSurface struct {
	cat  *knobs.Catalog
	idx  []int // positions of aux knobs in the full catalog
	peak []float64
	amp  []float64
	read []float64 // read-affinity in [0,1]; write affinity is 1−read
	pair []int     // partner index within idx (-1 = none)
	g    []float64 // interaction strength
}

// auxTotalAmplitude is the target sum of amplitudes. With peaks displaced
// up to ±0.4 from the defaults and the steep quadratic above, a tuner that
// masters every minor knob gains roughly +20-25 % over one that leaves
// them at defaults (the Figure 8 headroom), while uninformed settings —
// midpoint guesses and uniform random samples — land 25-35 % *below* the
// defaults. That asymmetry is what defeats sampling-based search in 266
// dimensions (Figures 6, 7, 9).
const auxTotalAmplitude = 0.6

// NewAuxSurface derives the minor-knob surface for a catalog.
func NewAuxSurface(cat *knobs.Catalog) *AuxSurface {
	s := &AuxSurface{cat: cat}
	for i, k := range cat.Knobs {
		if k.Role == knobs.RoleAux {
			s.idx = append(s.idx, i)
		}
	}
	n := len(s.idx)
	s.peak = make([]float64, n)
	s.amp = make([]float64, n)
	s.read = make([]float64, n)
	s.pair = make([]int, n)
	s.g = make([]float64, n)

	var ampSum float64
	for j, full := range s.idx {
		k := cat.Knobs[full]
		u1, u2, u3, u4 := hash01(k.Name, 1), hash01(k.Name, 2), hash01(k.Name, 3), hash01(k.Name, 4)
		// Peaks are anchored to the default but displaced: defaults are
		// sane, not optimal.
		xd := k.Normalize(k.Default, 1, 1)
		s.peak[j] = clamp01(xd + (u1-0.5)*0.8)
		// Power-law amplitude (u^4): a couple dozen minor knobs carry most
		// of the headroom, the rest are near-noise — matching the paper's
		// observation that knob importance is highly skewed (§5.2).
		s.amp[j] = math.Pow(u2, 4)
		ampSum += s.amp[j]
		s.read[j] = u3
		s.pair[j] = -1
		if u4 < 0.4 && n > 1 { // ~40 % of minor knobs interact with a partner
			s.pair[j] = (j + 7) % n
			s.g[j] = (hash01(k.Name, 5) - 0.5) * 2
		}
	}
	var gSum float64
	for j := range s.g {
		gSum += math.Abs(s.g[j])
	}
	for j := range s.amp {
		s.amp[j] *= auxTotalAmplitude / ampSum
		if gSum > 0 {
			s.g[j] *= 0.25 * auxTotalAmplitude / gSum
		}
	}
	return s
}

// Factor evaluates the minor-knob surface for the given actual knob values
// (aligned with the surface's catalog) under workload w on hardware hw,
// returning a multiplicative throughput factor.
func (s *AuxSurface) Factor(values []float64, hw Hardware, w workload.Workload) float64 {
	readShare := w.ReadFraction
	var sum float64
	dev := make([]float64, len(s.idx))
	for j, full := range s.idx {
		k := s.cat.Knobs[full]
		x := k.Normalize(values[full], hw.RAMGB, hw.DiskGB)
		dev[j] = x - s.peak[j]
	}
	for j := range s.idx {
		mix := s.read[j]*readShare + (1-s.read[j])*(1-readShare)
		sum += s.amp[j] * (1 - 6*dev[j]*dev[j]) * (0.5 + mix)
		if p := s.pair[j]; p >= 0 {
			sum += s.g[j] * 6 * dev[j] * dev[p]
		}
	}
	if sum > 0.8 {
		sum = 0.8
	}
	if sum < -1.2 {
		sum = -1.2
	}
	return math.Exp(sum)
}

// hash01 maps (name, salt) deterministically into [0,1).
func hash01(name string, salt byte) float64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	h.Write([]byte{salt})
	return float64(h.Sum64()%1_000_000) / 1_000_000
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
