package simdb

import (
	"math"

	"cdbtune/internal/knobs"
	"cdbtune/internal/workload"
)

// perf is the deterministic output of the performance model for the
// current configuration under one workload. Rates are per second.
type perf struct {
	TPS       float64
	LatencyMS float64

	Crashed     bool
	CrashReason string

	// Model internals consumed by metric generation.
	HitRatio     float64
	DirtyRatio   float64
	ReadOps      float64 // read operations /s
	WriteOps     float64 // write operations /s
	PageReqs     float64 // buffer pool page requests /s
	PageMisses   float64 // physical page reads /s
	PagesFlushed float64 // dirty page writes /s
	LogWrites    float64 // redo log writes /s
	LogFsyncs    float64 // redo/binlog fsyncs /s
	TmpTables    float64 // temp tables /s
	TmpDisk      float64 // on-disk temp tables /s
	LockWaits    float64 // row lock waits /s
	Scans        float64 // range/full scans /s
	SortRows     float64 // sorted rows /s
	ActiveConns  float64
	Running      float64
	BPPagesTotal float64
	BPPagesData  float64
	MemPressure  float64
}

// roleValue returns the current actual value of the first knob carrying
// the role, or def when the engine catalog lacks it.
func (db *DB) roleValue(r knobs.Role, def float64) float64 {
	i := db.catalog.RoleIndex(r)
	if i < 0 {
		return def
	}
	return db.values[i]
}

// gaussResponse is the inverted-U response used for thread-count and
// IO-capacity knobs: 1 at the optimum, decaying log-normally away from it.
func gaussResponse(v, opt, width float64) float64 {
	if v < 1 {
		v = 1
	}
	if opt < 1 {
		opt = 1
	}
	d := math.Log(v) - math.Log(opt)
	return math.Exp(-d * d / (2 * width * width))
}

// engineBase returns the ideal operations-per-second capacity of the
// engine for a workload class, before any cost factors.
func engineBase(e knobs.Engine, class workload.Class) float64 {
	var base float64
	if class == workload.OLAP {
		base = 360 // heavy analytic queries per second at ideal cache
	} else {
		base = 46000 // simple OLTP operations per second
	}
	switch e {
	case knobs.EngineLocalMySQL:
		return base * 0.93
	case knobs.EngineMongoDB:
		return base * 1.08
	case knobs.EnginePostgres:
		return base * 0.88
	default:
		return base
	}
}

// evaluate runs the cost model: it converts the current knob values, the
// workload profile and the hardware into throughput, latency and the
// internal rates that metric generation needs.
func (db *DB) evaluate(w workload.Workload) perf {
	hw := db.inst.HW
	ramMB := hw.RAMGB * 1024
	diskMB := hw.DiskGB * 1024

	bpMB := db.roleValue(knobs.RoleBufferPool, 128)
	logFileMB := db.roleValue(knobs.RoleLogFileSize, 48)
	logFiles := db.roleValue(knobs.RoleLogFilesInGroup, 2)
	flushPolicy := db.roleValue(knobs.RoleFlushLogAtCommit, 1)
	syncBinlog := db.roleValue(knobs.RoleSyncBinlog, 1)
	readThreads := db.roleValue(knobs.RoleReadIOThreads, 4)
	writeThreads := db.roleValue(knobs.RoleWriteIOThreads, 4)
	purgeThreads := db.roleValue(knobs.RolePurgeThreads, 1)
	threadConc := db.roleValue(knobs.RoleThreadConcurrency, 0)
	maxConn := db.roleValue(knobs.RoleMaxConnections, 151)
	ioCap := db.roleValue(knobs.RoleIOCapacity, 200)
	logBufMB := db.roleValue(knobs.RoleLogBufferSize, 8)
	qcacheMB := db.roleValue(knobs.RoleQueryCacheSize, 0)
	qcacheType := db.roleValue(knobs.RoleQueryCacheType, 0)
	ahi := db.roleValue(knobs.RoleAdaptiveHash, 1)
	maxDirty := db.roleValue(knobs.RoleMaxDirtyPct, 75)
	doublewrite := db.roleValue(knobs.RoleDoublewrite, 1)
	sortBufMB := db.roleValue(knobs.RoleSortBufferSize, 0.25)
	joinBufMB := db.roleValue(knobs.RoleJoinBufferSize, 0.25)
	tmpTableMB := db.roleValue(knobs.RoleTmpTableSize, 16)
	threadCache := db.roleValue(knobs.RoleThreadCacheSize, 9)
	tableCache := db.roleValue(knobs.RoleTableOpenCache, 2000)
	changeBuf := db.roleValue(knobs.RoleChangeBuffering, 5)
	readAhead := db.roleValue(knobs.RoleReadAhead, 56)

	var p perf

	// ---- Crash conditions (§5.2.3) -------------------------------------
	logCapMB := logFileMB * logFiles
	if logCapMB > 0.22*diskMB {
		p.Crashed = true
		p.CrashReason = "redo log group exceeds disk budget (innodb_log_files_in_group × innodb_log_file_size too large)"
		return p
	}

	// ---- Memory budget and swap cliff ----------------------------------
	clients := float64(w.Threads)
	activeConns := math.Min(clients, maxConn)
	// Per-connection work buffers are allocated per active operation, not
	// per connection; ~6 % of connections hold one at any instant.
	perConnMB := sortBufMB + joinBufMB + 0.4
	totalMemMB := bpMB + activeConns*perConnMB*0.06 + logBufMB + qcacheMB + 400
	memRatio := totalMemMB / ramMB
	p.MemPressure = memRatio
	if memRatio > 1.35 {
		p.Crashed = true
		p.CrashReason = "memory over-subscription (buffer pool + per-connection buffers exceed RAM)"
		return p
	}
	swapFactor := 1.0
	if over := memRatio - 0.92; over > 0 {
		swapFactor = 1 / (1 + 60*over*over)
	}

	// ---- Buffer pool hit ratio ------------------------------------------
	effWSMB := w.WorkingSetGB * 1024 * (1 - 0.45*w.Skew)
	if w.Class == workload.OLAP {
		effWSMB = (0.35*w.DataSizeGB + 0.65*w.WorkingSetGB) * 1024
	}
	hit := 0.5 + 0.497*(1-math.Exp(-2.2*bpMB/effWSMB))
	hit *= 1 - 0.10*w.ScanFraction*(1-bpMB/(bpMB+effWSMB)) // scan pollution
	if hit > 0.999 {
		hit = 0.999
	}
	p.HitRatio = hit
	miss := 1 - hit
	missCost := 2.6 * hw.DiskSpeedFactor()

	readShare := w.ReadFraction
	writeShare := w.WriteFraction()

	// ---- Read cost -------------------------------------------------------
	readCost := 1 + missCost*miss
	// Query cache: wins on (nearly) read-only workloads, costs on mixed.
	if qcacheType > 0 && qcacheMB > 0 {
		if writeShare < 0.05 {
			readCost *= 1 - 0.12*qcacheMB/(qcacheMB+128)
		} else {
			readCost *= 1.06 // invalidation overhead
		}
	}
	if ahi >= 1 {
		pointShare := 1 - w.ScanFraction
		readCost *= 1 - 0.05*pointShare*hit
	}
	// Read IO threads: optimum rises with miss pressure.
	readOpt := 2 + 44*miss*readShare
	readCost *= 1 + 0.28*(1-gaussResponse(readThreads, readOpt, 0.8))
	// Read-ahead threshold helps scans; inverted-U around 24.
	if w.ScanFraction > 0 {
		readCost *= 1 - 0.08*w.ScanFraction*gaussResponse(readAhead+1, 25, 0.7)
	}
	// Sorts / temp tables.
	sortNeedMB := 2 + 28*w.SortFraction
	sortAdeq := sortBufMB / (sortBufMB + sortNeedMB)
	tmpAdeq := tmpTableMB / (tmpTableMB + 24*(w.SortFraction+0.05))
	sortCost := 1 + 1.5*w.SortFraction*(1-0.5*sortAdeq-0.5*tmpAdeq)
	// Joins.
	joinNeedMB := 1 + 40*w.JoinFraction
	joinAdeq := joinBufMB / (joinBufMB + joinNeedMB)
	joinCost := 1 + 1.2*w.JoinFraction*(1-joinAdeq)
	readCost *= sortCost * joinCost

	// ---- Write cost -------------------------------------------------------
	writeCost := 1 + missCost*miss*0.35
	switch int(flushPolicy) {
	case 0:
		writeCost *= 0.70
	case 2:
		writeCost *= 0.78
	}
	switch {
	case syncBinlog == 0:
		writeCost *= 0.88
	case syncBinlog > 1:
		writeCost *= 1 - 0.12*(1-1/syncBinlog)
	}
	checkpointPenalty := 1 + 0.9*math.Exp(-logCapMB/1500)
	writeCost *= checkpointPenalty
	if doublewrite >= 1 {
		writeCost *= 1.12
	}
	dirtyOpt := 62 + 22*writeShare
	dd := (maxDirty - dirtyOpt) / 60
	writeCost *= 1 + 0.10*dd*dd
	ioOpt := 800 + 9000*writeShare/hw.DiskSpeedFactor()
	writeCost *= 1 + 0.20*(1-gaussResponse(ioCap, ioOpt, 0.9))
	writeOpt := 2 + 30*writeShare
	writeCost *= 1 + 0.30*(1-gaussResponse(writeThreads, writeOpt, 0.8))
	purgeOpt := 1 + 20*w.DeleteShare*writeShare
	writeCost *= 1 + 0.16*(1-gaussResponse(purgeThreads, purgeOpt, 0.8))
	writeCost *= 1 + 0.14*(1-logBufMB/(logBufMB+12))
	if changeBuf >= 3 {
		writeCost *= 0.95
	}

	// ---- Concurrency / admission ----------------------------------------
	cores := float64(hw.Cores)
	concAdj := 1.0
	if threadConc > 0 {
		concAdj = 0.78 + 0.22*gaussResponse(threadConc, 2.5*cores, 1.0)
	} else if clients > 6*cores {
		concAdj = 0.93 // unlimited admission thrashes under huge fan-in
	}
	connCap := 1.0
	if maxConn < clients {
		connCap = 0.25 + 0.75*maxConn/clients // rejected connections
	}
	tcAdj := 1 - 0.05*(1-threadCache/(threadCache+clients/8+1))
	tocAdj := 1 - 0.06*(1-tableCache/(tableCache+clients*2))

	// ---- Minor knobs ------------------------------------------------------
	auxFactor := db.aux.Factor(db.values, db.inst.HW, w)

	// ---- Throughput --------------------------------------------------------
	opCost := readShare*readCost + writeShare*writeCost
	base := engineBase(db.engine, w.Class)
	opsPerSec := base * concAdj * connCap * tcAdj * tocAdj * swapFactor * auxFactor / opCost
	tps := opsPerSec / w.OpsPerTxn
	if tps < 0.1 {
		tps = 0.1
	}
	p.TPS = tps

	// ---- Latency (closed-loop: Little's law + tail inflation) -------------
	// All clients count, admitted or not: a rejected connection retries
	// and its wall-clock wait is part of the observed tail.
	meanLatMS := clients / tps * 1000
	tail := 2.1
	dirtyPressure := math.Min(1, writeShare*(maxDirty/100)*checkpointPenalty/1.6)
	tail += 1.2 * dirtyPressure
	if int(flushPolicy) == 1 {
		tail += 0.5 * writeShare
	}
	if clients > maxConn {
		tail += 1.5 * (1 - maxConn/clients)
	}
	if memRatio > 0.92 {
		tail += 2.5 * (memRatio - 0.92)
	}
	p.LatencyMS = math.Max(0.5, meanLatMS*tail/2.1)

	// ---- Rates for metric generation --------------------------------------
	ops := tps * w.OpsPerTxn
	p.ReadOps = ops * readShare
	p.WriteOps = ops * writeShare
	pagesPerRead := 2.5 + 24*w.ScanFraction
	p.PageReqs = p.ReadOps*pagesPerRead + p.WriteOps*3
	p.PageMisses = p.PageReqs * miss
	p.DirtyRatio = math.Min(maxDirty/100, 0.08+0.9*writeShare) * (0.5 + 0.5*dirtyPressure)
	p.PagesFlushed = p.WriteOps * 1.8 * (0.4 + 0.6*checkpointPenalty/1.9)
	switch int(flushPolicy) {
	case 1:
		p.LogFsyncs = tps
	case 2:
		p.LogFsyncs = 1
	default:
		p.LogFsyncs = 1
	}
	if syncBinlog >= 1 {
		p.LogFsyncs += tps / math.Max(1, syncBinlog)
	}
	p.LogWrites = p.WriteOps
	p.TmpTables = ops * w.SortFraction
	p.TmpDisk = p.TmpTables * (1 - tmpAdeq)
	contention := p.WriteOps * clients / 60000
	p.LockWaits = contention * (0.3 + 0.7*writeShare)
	p.Scans = p.ReadOps * w.ScanFraction
	p.SortRows = p.TmpTables * 800
	p.ActiveConns = activeConns
	limit := clients
	if threadConc > 0 {
		limit = threadConc
	}
	p.Running = math.Min(math.Min(clients, limit), 4*cores*(0.5+0.5*miss))
	p.BPPagesTotal = bpMB * 64 // 16 KiB pages
	fill := math.Min(1, w.DataSizeGB*1024*64/p.BPPagesTotal)
	p.BPPagesData = p.BPPagesTotal * fill * (0.55 + 0.45*hit)
	return p
}
