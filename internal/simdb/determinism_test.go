package simdb

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cdbtune/internal/knobs"
	"cdbtune/internal/workload"
)

// TestEvaluateDeterministic: the cost model itself (before measurement
// noise) is a pure function of (engine, hardware, config, workload).
func TestEvaluateDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() *DB {
			db := New(knobs.EngineCDB, CDBB, 1)
			cat := db.Catalog()
			x := cat.Defaults(12, 100)
			r2 := rand.New(rand.NewSource(seed))
			for i := range x {
				if r2.Float64() < 0.2 {
					x[i] = r2.Float64() * 0.8
				}
			}
			db.ApplyKnobs(cat, x)
			return db
		}
		a, b := mk().evaluate(workload.TPCC()), mk().evaluate(workload.TPCC())
		_ = rng
		return a.TPS == b.TPS && a.LatencyMS == b.LatencyMS && a.Crashed == b.Crashed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestSameSeedSameRun: identical seeds reproduce identical measured runs.
func TestSameSeedSameRun(t *testing.T) {
	run := func() Result {
		db := New(knobs.EngineCDB, CDBA, 42)
		r, err := db.RunWorkload(workload.SysbenchRW(), 150)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.Ext != b.Ext {
		t.Fatalf("externals differ across identical seeds: %+v vs %+v", a.Ext, b.Ext)
	}
	for i := range a.State {
		if a.State[i] != b.State[i] {
			t.Fatalf("state[%d] differs across identical seeds", i)
		}
	}
}

// TestWorkloadsOrderingUnderDefaults: lighter per-transaction workloads
// run at higher transaction rates under identical configurations.
func TestWorkloadsOrderingUnderDefaults(t *testing.T) {
	db := New(knobs.EngineCDB, CDBA, 1)
	ycsb := db.evaluate(workload.YCSB()).TPS     // 1 op/txn
	rw := db.evaluate(workload.SysbenchRW()).TPS // 18 ops/txn
	if ycsb <= rw {
		t.Fatalf("YCSB (%v) should out-rate Sysbench RW (%v) per txn", ycsb, rw)
	}
	tpch := db.evaluate(workload.TPCH()).TPS
	if tpch >= rw {
		t.Fatalf("TPC-H (%v) analytic queries cannot out-rate OLTP (%v)", tpch, rw)
	}
}

// TestPerfFieldsConsistent: derived rates are internally consistent.
func TestPerfFieldsConsistent(t *testing.T) {
	db := New(knobs.EngineCDB, CDBA, 1)
	for _, w := range workload.All() {
		p := db.evaluate(w)
		if p.Crashed {
			t.Fatalf("%s: defaults must not crash", w.Name)
		}
		ops := p.ReadOps + p.WriteOps
		want := p.TPS * w.OpsPerTxn
		if math.Abs(ops-want) > want*1e-6 {
			t.Fatalf("%s: ops %v != tps×opsPerTxn %v", w.Name, ops, want)
		}
		if p.HitRatio <= 0 || p.HitRatio >= 1 {
			t.Fatalf("%s: hit ratio %v out of (0,1)", w.Name, p.HitRatio)
		}
		if p.PageMisses > p.PageReqs {
			t.Fatalf("%s: misses exceed requests", w.Name)
		}
		if w.ReadFraction == 0 && p.ReadOps != 0 {
			t.Fatalf("%s: write-only workload has reads", w.Name)
		}
		if w.ReadFraction == 1 && p.WriteOps != 0 {
			t.Fatalf("%s: read-only workload has writes", w.Name)
		}
	}
}

// TestYCSBVariantShapes: the extension variants respond sensibly — the
// read-only variant benefits from the cache, the scan variant pays for
// scans.
func TestYCSBVariantShapes(t *testing.T) {
	db := New(knobs.EngineCDB, CDBE, 1)
	a := db.evaluate(workload.YCSB()).TPS
	c := db.evaluate(workload.YCSBC()).TPS
	e := db.evaluate(workload.YCSBE()).TPS
	if c <= a {
		t.Fatalf("read-only YCSB-C (%v) should out-run update-heavy A (%v) at defaults", c, a)
	}
	if e >= c {
		t.Fatalf("scan-heavy YCSB-E (%v) should trail point-read C (%v)", e, c)
	}
}
