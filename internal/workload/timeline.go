package workload

import (
	"fmt"
	"math"
	"strings"
)

// SegmentKind names the load shape a timeline segment applies over its
// span of simulated hours.
type SegmentKind int

// Segment kinds.
const (
	// Steady holds the segment's Rate multiplier constant.
	Steady SegmentKind = iota
	// Diurnal modulates Rate with a sinusoid: Rate·(1 + Amplitude·sin),
	// one full period every PeriodHours, starting at the mean.
	Diurnal
	// Batch is a steady window intended for bulk/ETL load: typically a
	// write-heavier mix (negative ReadDelta) and a larger working set.
	Batch
	// Burst is a steady window at an elevated Rate — a flash crowd.
	Burst
	// Ramp interpolates the multiplier linearly from Rate to RateTo
	// across the segment.
	Ramp
)

// String returns the lowercase kind name.
func (k SegmentKind) String() string {
	switch k {
	case Steady:
		return "steady"
	case Diurnal:
		return "diurnal"
	case Batch:
		return "batch"
	case Burst:
		return "burst"
	case Ramp:
		return "ramp"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Segment is one phase of a Timeline: a load shape held for Hours
// simulated hours, plus optional modifiers on the base workload's mix
// and working set.
type Segment struct {
	Name  string
	Kind  SegmentKind
	Hours float64

	// Rate is the request-rate multiplier applied to the base workload's
	// client concurrency (Threads). Zero means 1 (inherit base load).
	Rate float64
	// RateTo is the multiplier at the end of a Ramp segment; ignored for
	// other kinds.
	RateTo float64
	// Amplitude is the relative swing of a Diurnal sinusoid around Rate
	// (0.4 ⇒ ±40%). Ignored for other kinds.
	Amplitude float64
	// PeriodHours is the sinusoid period of a Diurnal segment; zero
	// defaults to the segment length.
	PeriodHours float64

	// ReadDelta shifts the base ReadFraction additively (clamped to
	// [0,1]). Zero inherits the base mix; use a negative delta for
	// write-heavier phases. An additive delta keeps the zero value
	// meaning "unchanged", so plain segments need no boilerplate.
	ReadDelta float64
	// WorkingSetScale multiplies the base WorkingSetGB (clamped to
	// DataSizeGB). Zero means 1.
	WorkingSetScale float64
}

// rateAt returns the request-rate multiplier at offset h hours into the
// segment (0 ≤ h < s.Hours).
func (s Segment) rateAt(h float64) float64 {
	base := s.Rate
	if base == 0 {
		base = 1
	}
	switch s.Kind {
	case Ramp:
		to := s.RateTo
		if to == 0 {
			to = base
		}
		if s.Hours <= 0 {
			return to
		}
		return base + (to-base)*(h/s.Hours)
	case Diurnal:
		period := s.PeriodHours
		if period <= 0 {
			period = s.Hours
		}
		if period <= 0 {
			return base
		}
		return base * (1 + s.Amplitude*math.Sin(2*math.Pi*h/period))
	default:
		return base
	}
}

// Timeline composes segments into a time-varying workload over simulated
// hours. The virtual clock (env.Clock, in simulated seconds) maps onto
// the timeline through TimeScale: one clock second advances the timeline
// by TimeScale simulated seconds, so a full day can play out within a
// tuning session's virtual-time budget.
type Timeline struct {
	Name string
	// Base is the stationary profile the segments modulate.
	Base Workload
	// TimeScale is simulated timeline-seconds per virtual clock-second.
	// Zero means 60 (one virtual minute per simulated hour... i.e. a
	// 24-hour day compresses into 24 virtual minutes).
	TimeScale float64
	// Repeat wraps the timeline after TotalHours instead of holding the
	// last segment forever.
	Repeat   bool
	Segments []Segment
}

// DefaultTimeScale is the compression used when Timeline.TimeScale is
// zero: 60 simulated seconds per virtual second, i.e. one simulated hour
// per virtual minute.
const DefaultTimeScale = 60

// Validate reports whether the timeline is internally consistent: a
// valid base workload, at least one segment, positive segment lengths,
// non-negative rates, and modifiers that keep every instantaneous
// effective workload valid.
func (t *Timeline) Validate() error {
	if err := t.Base.Validate(); err != nil {
		return fmt.Errorf("timeline %s: base: %w", t.Name, err)
	}
	if len(t.Segments) == 0 {
		return fmt.Errorf("timeline %s: no segments", t.Name)
	}
	if t.TimeScale < 0 {
		return fmt.Errorf("timeline %s: negative TimeScale %v", t.Name, t.TimeScale)
	}
	for i, s := range t.Segments {
		if s.Hours <= 0 {
			return fmt.Errorf("timeline %s: segment %d (%s): non-positive Hours %v", t.Name, i, s.Name, s.Hours)
		}
		if s.Rate < 0 || s.RateTo < 0 {
			return fmt.Errorf("timeline %s: segment %d (%s): negative rate", t.Name, i, s.Name)
		}
		if s.Kind == Diurnal && (s.Amplitude < 0 || s.Amplitude > 1) {
			return fmt.Errorf("timeline %s: segment %d (%s): Amplitude %v out of [0,1]", t.Name, i, s.Name, s.Amplitude)
		}
		if s.WorkingSetScale < 0 {
			return fmt.Errorf("timeline %s: segment %d (%s): negative WorkingSetScale", t.Name, i, s.Name)
		}
	}
	return nil
}

// TotalHours is the sum of all segment lengths.
func (t *Timeline) TotalHours() float64 {
	var h float64
	for _, s := range t.Segments {
		h += s.Hours
	}
	return h
}

// Scale returns the effective TimeScale (DefaultTimeScale when unset).
func (t *Timeline) Scale() float64 {
	if t.TimeScale > 0 {
		return t.TimeScale
	}
	return DefaultTimeScale
}

// HourAt converts virtual clock seconds into simulated timeline hours.
func (t *Timeline) HourAt(clockSec float64) float64 {
	return clockSec * t.Scale() / 3600
}

// locate resolves a simulated hour to a segment and the offset into it.
// Past the end, a repeating timeline wraps; otherwise the last segment
// holds at its final instant.
func (t *Timeline) locate(hour float64) (Segment, float64) {
	total := t.TotalHours()
	if total <= 0 || len(t.Segments) == 0 {
		return Segment{Kind: Steady, Hours: 1}, 0
	}
	if hour < 0 {
		hour = 0
	}
	if hour >= total {
		if t.Repeat {
			hour = math.Mod(hour, total)
		} else {
			last := t.Segments[len(t.Segments)-1]
			return last, last.Hours
		}
	}
	for _, s := range t.Segments {
		if hour < s.Hours {
			return s, hour
		}
		hour -= s.Hours
	}
	last := t.Segments[len(t.Segments)-1]
	return last, last.Hours
}

// SegmentAt returns the segment active at the given simulated hour.
func (t *Timeline) SegmentAt(hour float64) Segment {
	s, _ := t.locate(hour)
	return s
}

// LoadAt returns the instantaneous request-rate multiplier at the given
// simulated hour — the compressed load curve the experiments plot.
func (t *Timeline) LoadAt(hour float64) float64 {
	s, off := t.locate(hour)
	return s.rateAt(off)
}

// At materializes the effective workload at the given simulated hour:
// the base profile with the active segment's rate multiplier applied to
// client concurrency, its ReadDelta applied to the read/write mix, and
// its WorkingSetScale applied to the hot-set size (clamped to the data
// size). The result always satisfies Validate.
func (t *Timeline) At(hour float64) Workload {
	s, off := t.locate(hour)
	w := t.Base
	if s.Name != "" {
		w.Name = t.Base.Name + "@" + s.Name
	}
	rate := s.rateAt(off)
	thr := int(math.Round(float64(t.Base.Threads) * rate))
	if thr < 1 {
		thr = 1
	}
	w.Threads = thr
	w.ReadFraction = clamp01(t.Base.ReadFraction + s.ReadDelta)
	scale := s.WorkingSetScale
	if scale == 0 {
		scale = 1
	}
	ws := t.Base.WorkingSetGB * scale
	if ws > t.Base.DataSizeGB {
		ws = t.Base.DataSizeGB
	}
	if ws <= 0 {
		ws = t.Base.WorkingSetGB
	}
	w.WorkingSetGB = ws
	return w
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Diurnal24 builds a compressed 24-hour tenant day over the given base
// workload: an overnight trough, a morning ramp, daytime diurnal
// wobble, a write-heavy batch window, an evening flash crowd, and a
// wind-down — the canonical dynamic-serving scenario of the experiments.
// The timeline repeats, so serving windows longer than a day keep
// cycling.
func Diurnal24(base Workload) *Timeline {
	return &Timeline{
		Name: "diurnal24",
		Base: base,
		// Default compression: 24 simulated hours in 24 virtual minutes.
		TimeScale: DefaultTimeScale,
		Repeat:    true,
		Segments: []Segment{
			{Name: "night", Kind: Steady, Hours: 6, Rate: 0.35},
			{Name: "morning-ramp", Kind: Ramp, Hours: 3, Rate: 0.35, RateTo: 1.0},
			{Name: "daytime", Kind: Diurnal, Hours: 8, Rate: 1.0, Amplitude: 0.15, PeriodHours: 8},
			{Name: "batch-window", Kind: Batch, Hours: 2, Rate: 0.9, ReadDelta: -0.45, WorkingSetScale: 1.6},
			{Name: "evening-burst", Kind: Burst, Hours: 2, Rate: 2.2, WorkingSetScale: 1.3},
			{Name: "wind-down", Kind: Ramp, Hours: 3, Rate: 1.0, RateTo: 0.35},
		},
	}
}

// FlashCrowd builds a short three-phase timeline — steady, a hard burst
// at 3× load with a larger hot set, steady again — used by the drift
// smoke test and quick demos.
func FlashCrowd(base Workload) *Timeline {
	return &Timeline{
		Name:      "flashcrowd",
		Base:      base,
		TimeScale: DefaultTimeScale,
		Repeat:    true,
		Segments: []Segment{
			{Name: "calm", Kind: Steady, Hours: 1, Rate: 1.0},
			{Name: "burst", Kind: Burst, Hours: 2, Rate: 3.0, WorkingSetScale: 1.8},
			{Name: "recovery", Kind: Steady, Hours: 1, Rate: 1.0},
		},
	}
}

// Timelines lists the named timeline builders available to the CLI.
func Timelines() []string { return []string{"diurnal24", "flashcrowd"} }

// TimelineByName resolves a named timeline over the given base workload.
func TimelineByName(name string, base Workload) (*Timeline, error) {
	switch name {
	case "diurnal24":
		return Diurnal24(base), nil
	case "flashcrowd":
		return FlashCrowd(base), nil
	}
	return nil, fmt.Errorf("workload: unknown timeline %q (have %s)", name, strings.Join(Timelines(), ", "))
}
