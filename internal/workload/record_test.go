package workload

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestRecordDeterministic: identical seeds reproduce identical traces.
func TestRecordDeterministic(t *testing.T) {
	mk := func() Trace {
		return Record(TPCC(), 60, 100, rand.New(rand.NewSource(9)))
	}
	a, b := mk(), mk()
	if len(a.Ops) != len(b.Ops) {
		t.Fatalf("op counts differ: %d vs %d", len(a.Ops), len(b.Ops))
	}
	for i := range a.Ops {
		if a.Ops[i] != b.Ops[i] {
			t.Fatalf("op %d differs", i)
		}
	}
}

// Property: replaying any recorded trace yields a valid workload whose
// read fraction is within sampling error of the source.
func TestRecordReplayProperty(t *testing.T) {
	ws := All()
	f := func(seed int64, wi uint8) bool {
		w := ws[int(wi)%len(ws)]
		tr := Record(w, 60, 200, rand.New(rand.NewSource(seed)))
		got, err := Replay(tr)
		if err != nil {
			return false
		}
		if err := got.Validate(); err != nil {
			return false
		}
		diff := got.ReadFraction - w.ReadFraction
		if diff < 0 {
			diff = -diff
		}
		return diff < 0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestOpKindsCovered: a mixed workload's trace contains every op family.
func TestOpKindsCovered(t *testing.T) {
	tr := Record(SysbenchRW(), 120, 300, rand.New(rand.NewSource(3)))
	seen := map[OpKind]bool{}
	for _, op := range tr.Ops {
		seen[op.Kind] = true
	}
	for _, k := range []OpKind{OpPointRead, OpScanRead, OpInsert, OpUpdate, OpDelete} {
		if !seen[k] {
			t.Fatalf("op kind %d never recorded from a RW workload", k)
		}
	}
}
