package workload

import (
	"math"
	"testing"
)

func TestTPCHQueryCatalog(t *testing.T) {
	qs := TPCHQueries()
	if len(qs) != 22 {
		t.Fatalf("TPC-H has %d queries, want 22", len(qs))
	}
	seen := map[string]bool{}
	for _, q := range qs {
		if q.ScanShare <= 0 || q.ScanShare > 1 {
			t.Errorf("%s: scan share %v", q.Name, q.ScanShare)
		}
		if q.Joins < 1 {
			t.Errorf("%s: joins %d", q.Name, q.Joins)
		}
		if q.Weight <= 0 {
			t.Errorf("%s: weight %v", q.Name, q.Weight)
		}
		if seen[q.Name] {
			t.Errorf("duplicate query %s", q.Name)
		}
		seen[q.Name] = true
	}
}

func TestTPCHFromQueriesConsistent(t *testing.T) {
	derived := TPCHFromQueries()
	if err := derived.Validate(); err != nil {
		t.Fatal(err)
	}
	// The aggregate must stay close to the hand-written profile the rest
	// of the suite uses — they describe the same benchmark.
	base := TPCH()
	if math.Abs(derived.ScanFraction-base.ScanFraction) > 0.4 {
		t.Fatalf("derived scan fraction %v far from profile %v", derived.ScanFraction, base.ScanFraction)
	}
	if derived.JoinFraction < 0.3 {
		t.Fatalf("TPC-H must be join heavy: %v", derived.JoinFraction)
	}
	if derived.SortFraction < 0.5 {
		t.Fatalf("TPC-H must be sort heavy: %v", derived.SortFraction)
	}
	// Shape preserved: still OLAP on the same dataset.
	if derived.Class != OLAP || derived.DataSizeGB != base.DataSizeGB {
		t.Fatal("aggregation changed the benchmark identity")
	}
}

func TestQ1IsScanHeavyQ2IsNot(t *testing.T) {
	qs := TPCHQueries()
	if qs[0].ScanShare < 0.9 {
		t.Fatalf("Q1 scans nearly the full lineitem table: %v", qs[0].ScanShare)
	}
	if qs[1].ScanShare > 0.2 {
		t.Fatalf("Q2 is a selective lookup: %v", qs[1].ScanShare)
	}
}
