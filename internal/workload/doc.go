// Package workload models the six benchmark workloads the paper evaluates
// (§5: Sysbench read-only / write-only / read-write, TPC-C, TPC-H, YCSB)
// plus the user-workload replay mechanism of the workload generator
// (§2.2.1). The tuners never see SQL; what matters to the performance
// model is each workload's operational profile: read/write mix, scan and
// sort intensity, working-set size, access skew and client concurrency —
// the dimensions along which the paper's benchmarks actually differ.
//
// # Timelines
//
// A Timeline makes a profile time-varying: an ordered list of Segments
// (steady, diurnal sinusoid, batch window, burst spike, ramp), each
// spanning a number of simulated hours and modulating the base
// workload's request rate (client concurrency), read/write mix
// (additive ReadDelta) and working-set size (WorkingSetScale).
// Timeline.At(hour) materializes the instantaneous effective Workload;
// the result always satisfies Validate — threads stay ≥ 1, the mix is
// clamped to [0,1], and the working set is clamped to the data size.
// Within one segment the modifiers are deterministic functions of the
// hour, so two runs over the same timeline see the same load curve.
//
// # Virtual-clock charging
//
// Timelines live in simulated time, but tuning sessions are budgeted in
// virtual seconds on env.Clock (measurements charge StressTestSec,
// deploys charge DeploySec + RestartSec, and so on — see internal/simdb).
// TimeScale bridges the two: one virtual clock-second advances the
// timeline by TimeScale simulated seconds. The default (DefaultTimeScale
// = 60) compresses a simulated hour into a virtual minute, so a 24-hour
// tenant day plays out across ~24 virtual minutes of charged
// measurements, and a guarded re-tune of a few steps consumes a couple
// of simulated hours — long enough that reacting late visibly costs
// throughput, which is the dynamic-tuning trade-off the experiments
// surface. The timeline itself never advances the clock; it is a pure
// function from clock time (HourAt) to effective workload, so whoever
// owns the env (core.ServeDynamic, the server) controls pacing solely by
// spending virtual time.
package workload
