package workload

import "fmt"

// Class broadly separates transactional and analytical workloads.
type Class int

// Workload classes.
const (
	OLTP Class = iota
	OLAP
)

// Workload is the operational profile of a benchmark or of a replayed user
// workload.
type Workload struct {
	Name  string
	Class Class

	// ReadFraction is the share of operations that are reads; the rest are
	// writes (insert/update/delete).
	ReadFraction float64
	// ScanFraction is the share of reads that are range scans or full
	// scans rather than point lookups.
	ScanFraction float64
	// SortFraction is the share of queries requiring sorts / temp tables.
	SortFraction float64
	// JoinFraction is the share of queries with multi-table joins.
	JoinFraction float64

	// DataSizeGB is the resident dataset size; WorkingSetGB the hot part.
	DataSizeGB   float64
	WorkingSetGB float64
	// Skew in [0,1] is access skew (1 = extremely hot-spotted, highly
	// cacheable; 0 = uniform).
	Skew float64

	// Threads is the number of concurrent client connections the load
	// generator drives.
	Threads int
	// OpsPerTxn is the mean number of operations per transaction.
	OpsPerTxn float64
	// DeleteShare is the fraction of writes that are deletes (purge
	// pressure).
	DeleteShare float64
}

// Validate reports whether the profile is internally consistent.
func (w Workload) Validate() error {
	switch {
	case w.ReadFraction < 0 || w.ReadFraction > 1:
		return fmt.Errorf("workload %s: ReadFraction %v out of [0,1]", w.Name, w.ReadFraction)
	case w.ScanFraction < 0 || w.ScanFraction > 1:
		return fmt.Errorf("workload %s: ScanFraction %v out of [0,1]", w.Name, w.ScanFraction)
	case w.WorkingSetGB <= 0 || w.DataSizeGB <= 0:
		return fmt.Errorf("workload %s: non-positive data sizes", w.Name)
	case w.WorkingSetGB > w.DataSizeGB+1e-9:
		return fmt.Errorf("workload %s: working set %v exceeds data size %v", w.Name, w.WorkingSetGB, w.DataSizeGB)
	case w.Threads <= 0:
		return fmt.Errorf("workload %s: Threads must be positive", w.Name)
	case w.OpsPerTxn <= 0:
		return fmt.Errorf("workload %s: OpsPerTxn must be positive", w.Name)
	}
	return nil
}

// WriteFraction is 1 − ReadFraction.
func (w Workload) WriteFraction() float64 { return 1 - w.ReadFraction }

// SysbenchRO is Sysbench's read-only OLTP workload with the paper's setup:
// 16 tables × 200K records ≈ 8.5 GB, 1500 client threads.
func SysbenchRO() Workload {
	return Workload{
		Name: "sysbench-ro", Class: OLTP,
		ReadFraction: 1.0, ScanFraction: 0.25, SortFraction: 0.15, JoinFraction: 0.0,
		DataSizeGB: 8.5, WorkingSetGB: 3.5, Skew: 0.55,
		Threads: 1500, OpsPerTxn: 14,
	}
}

// SysbenchWO is Sysbench's write-only workload (same dataset and threads).
func SysbenchWO() Workload {
	return Workload{
		Name: "sysbench-wo", Class: OLTP,
		ReadFraction: 0.0, ScanFraction: 0, SortFraction: 0, JoinFraction: 0,
		DataSizeGB: 8.5, WorkingSetGB: 3.5, Skew: 0.55,
		Threads: 1500, OpsPerTxn: 4, DeleteShare: 0.25,
	}
}

// SysbenchRW is Sysbench's mixed read-write workload (≈70/30 mix).
func SysbenchRW() Workload {
	return Workload{
		Name: "sysbench-rw", Class: OLTP,
		ReadFraction: 0.7, ScanFraction: 0.2, SortFraction: 0.1, JoinFraction: 0,
		DataSizeGB: 8.5, WorkingSetGB: 3.5, Skew: 0.55,
		Threads: 1500, OpsPerTxn: 18, DeleteShare: 0.15,
	}
}

// TPCC is the TPC-C OLTP workload: 200 warehouses ≈ 12.8 GB, 32
// connections (§5 Workload).
func TPCC() Workload {
	return Workload{
		Name: "tpcc", Class: OLTP,
		ReadFraction: 0.54, ScanFraction: 0.1, SortFraction: 0.05, JoinFraction: 0.15,
		DataSizeGB: 12.8, WorkingSetGB: 4.5, Skew: 0.65,
		Threads: 32, OpsPerTxn: 26, DeleteShare: 0.04,
	}
}

// TPCH is the TPC-H OLAP workload: 16 tables ≈ 16 GB, scan/join heavy,
// low concurrency.
func TPCH() Workload {
	return Workload{
		Name: "tpch", Class: OLAP,
		ReadFraction: 0.99, ScanFraction: 0.85, SortFraction: 0.6, JoinFraction: 0.8,
		DataSizeGB: 16, WorkingSetGB: 12, Skew: 0.1,
		Threads: 8, OpsPerTxn: 1,
	}
}

// YCSB is the YCSB key-value workload: 35 GB of data, 50 threads, 20M
// operations (§5 Workload); a 50/50 update-heavy mix (workload A).
func YCSB() Workload {
	return Workload{
		Name: "ycsb", Class: OLTP,
		ReadFraction: 0.5, ScanFraction: 0.05, SortFraction: 0, JoinFraction: 0,
		DataSizeGB: 35, WorkingSetGB: 10, Skew: 0.7,
		Threads: 50, OpsPerTxn: 1,
	}
}

// All returns the six paper workloads in the order the evaluation lists
// them.
func All() []Workload {
	return []Workload{SysbenchRO(), SysbenchWO(), SysbenchRW(), TPCC(), TPCH(), YCSB()}
}

// ByName resolves a workload by its Name field.
func ByName(name string) (Workload, error) {
	for _, w := range All() {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("workload: unknown workload %q", name)
}
