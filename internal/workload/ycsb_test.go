package workload

import "testing"

func TestYCSBVariantsValid(t *testing.T) {
	vs := YCSBVariants()
	if len(vs) != 5 {
		t.Fatalf("variants = %d, want 5 (B-F)", len(vs))
	}
	seen := map[string]bool{}
	for _, w := range vs {
		if err := w.Validate(); err != nil {
			t.Errorf("%s invalid: %v", w.Name, err)
		}
		if seen[w.Name] {
			t.Errorf("duplicate variant name %s", w.Name)
		}
		seen[w.Name] = true
	}
}

func TestYCSBVariantProfiles(t *testing.T) {
	if b := YCSBB(); b.ReadFraction != 0.95 {
		t.Fatalf("B read fraction = %v", b.ReadFraction)
	}
	if c := YCSBC(); c.ReadFraction != 1.0 {
		t.Fatalf("C read fraction = %v", c.ReadFraction)
	}
	if d := YCSBD(); d.Skew <= YCSB().Skew {
		t.Fatal("D must be more skewed than A (read-latest)")
	}
	if e := YCSBE(); e.ScanFraction <= YCSB().ScanFraction {
		t.Fatal("E must be scan-heavy")
	}
	if f := YCSBF(); f.OpsPerTxn != 2 {
		t.Fatalf("F ops/txn = %v, want 2 (read-modify-write)", f.OpsPerTxn)
	}
	// Variants must not leak into the paper's canonical six.
	if len(All()) != 6 {
		t.Fatal("All() must stay the paper's six workloads")
	}
}
