package workload

// YCSB core workload variants beyond the paper's update-heavy default
// (workload A). The paper's §5 evaluation uses YCSB with a 50/50 mix;
// these variants support the extension experiments and examples.

// YCSBB is YCSB workload B: read-mostly, 95/5.
func YCSBB() Workload {
	w := YCSB()
	w.Name = "ycsb-b"
	w.ReadFraction = 0.95
	return w
}

// YCSBC is YCSB workload C: read-only key-value lookups.
func YCSBC() Workload {
	w := YCSB()
	w.Name = "ycsb-c"
	w.ReadFraction = 1.0
	return w
}

// YCSBD is YCSB workload D: read-latest — reads skewed toward recent
// inserts (higher cacheability), 95/5 with inserts only.
func YCSBD() Workload {
	w := YCSB()
	w.Name = "ycsb-d"
	w.ReadFraction = 0.95
	w.Skew = 0.85
	w.DeleteShare = 0
	return w
}

// YCSBE is YCSB workload E: short range scans, 95/5.
func YCSBE() Workload {
	w := YCSB()
	w.Name = "ycsb-e"
	w.ReadFraction = 0.95
	w.ScanFraction = 0.95
	return w
}

// YCSBF is YCSB workload F: read-modify-write, 50/50 with every write
// preceded by a read of the same key.
func YCSBF() Workload {
	w := YCSB()
	w.Name = "ycsb-f"
	w.ReadFraction = 0.5
	w.OpsPerTxn = 2
	return w
}

// YCSBVariants returns the five extension variants (B-F).
func YCSBVariants() []Workload {
	return []Workload{YCSBB(), YCSBC(), YCSBD(), YCSBE(), YCSBF()}
}
