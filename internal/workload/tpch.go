package workload

// QueryClass describes one analytic query template's operational
// character: how much of the dataset it scans, how deep its join tree is,
// whether it sorts/aggregates heavily, and its relative execution weight
// in the power run. The TPC-H profile the simulator consumes is the
// weighted aggregate of the 22 classes below.
type QueryClass struct {
	Name string
	// ScanShare is the fraction of the database the query touches.
	ScanShare float64
	// Joins is the number of joined tables.
	Joins int
	// Sorts marks ORDER BY / GROUP BY heavy queries.
	Sorts bool
	// Weight is the query's relative cost share of the full run.
	Weight float64
}

// TPCHQueries lists the 22 TPC-H query templates with their approximate
// characters (scan shares and join depths follow the spec's query
// definitions; weights follow commonly reported per-query cost shares).
func TPCHQueries() []QueryClass {
	return []QueryClass{
		{Name: "Q1 pricing summary", ScanShare: 0.95, Joins: 1, Sorts: true, Weight: 1.6},
		{Name: "Q2 minimum cost supplier", ScanShare: 0.10, Joins: 5, Sorts: true, Weight: 0.4},
		{Name: "Q3 shipping priority", ScanShare: 0.55, Joins: 3, Sorts: true, Weight: 1.1},
		{Name: "Q4 order priority", ScanShare: 0.40, Joins: 2, Sorts: true, Weight: 0.7},
		{Name: "Q5 local supplier volume", ScanShare: 0.50, Joins: 6, Sorts: true, Weight: 1.1},
		{Name: "Q6 forecast revenue", ScanShare: 0.90, Joins: 1, Sorts: false, Weight: 0.6},
		{Name: "Q7 volume shipping", ScanShare: 0.45, Joins: 6, Sorts: true, Weight: 1.2},
		{Name: "Q8 market share", ScanShare: 0.40, Joins: 8, Sorts: true, Weight: 1.0},
		{Name: "Q9 product type profit", ScanShare: 0.80, Joins: 6, Sorts: true, Weight: 2.2},
		{Name: "Q10 returned items", ScanShare: 0.45, Joins: 4, Sorts: true, Weight: 1.0},
		{Name: "Q11 important stock", ScanShare: 0.15, Joins: 3, Sorts: true, Weight: 0.4},
		{Name: "Q12 shipping modes", ScanShare: 0.50, Joins: 2, Sorts: true, Weight: 0.7},
		{Name: "Q13 customer distribution", ScanShare: 0.35, Joins: 2, Sorts: true, Weight: 1.2},
		{Name: "Q14 promotion effect", ScanShare: 0.55, Joins: 2, Sorts: false, Weight: 0.6},
		{Name: "Q15 top supplier", ScanShare: 0.55, Joins: 2, Sorts: true, Weight: 0.6},
		{Name: "Q16 parts/supplier relation", ScanShare: 0.20, Joins: 3, Sorts: true, Weight: 0.5},
		{Name: "Q17 small-quantity revenue", ScanShare: 0.60, Joins: 2, Sorts: false, Weight: 1.3},
		{Name: "Q18 large volume customer", ScanShare: 0.70, Joins: 3, Sorts: true, Weight: 1.8},
		{Name: "Q19 discounted revenue", ScanShare: 0.60, Joins: 2, Sorts: false, Weight: 0.8},
		{Name: "Q20 potential promotion", ScanShare: 0.40, Joins: 5, Sorts: true, Weight: 0.9},
		{Name: "Q21 waiting suppliers", ScanShare: 0.60, Joins: 6, Sorts: true, Weight: 1.9},
		{Name: "Q22 global sales opportunity", ScanShare: 0.15, Joins: 2, Sorts: true, Weight: 0.4},
	}
}

// TPCHFromQueries derives the TPC-H workload profile by aggregating the
// 22 query classes: scan fraction is the weighted mean scan share, join
// and sort fractions come from the weighted share of join-heavy and
// sorting queries. The dataset/working-set shape and concurrency match
// the paper's setup (16 tables, ≈16 GB, low concurrency).
func TPCHFromQueries() Workload {
	qs := TPCHQueries()
	var totalW, scan, joins, sorts float64
	for _, q := range qs {
		totalW += q.Weight
		scan += q.Weight * q.ScanShare
		if q.Joins >= 3 {
			joins += q.Weight
		}
		if q.Sorts {
			sorts += q.Weight
		}
	}
	w := TPCH()
	w.ScanFraction = scan / totalW
	w.JoinFraction = joins / totalW
	w.SortFraction = sorts / totalW
	return w
}
