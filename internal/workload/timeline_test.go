package workload

import (
	"math"
	"testing"
)

func TestTimelineValidateBuilders(t *testing.T) {
	for _, name := range Timelines() {
		tl, err := TimelineByName(name, SysbenchRW())
		if err != nil {
			t.Fatalf("TimelineByName(%q): %v", name, err)
		}
		if err := tl.Validate(); err != nil {
			t.Errorf("%s: Validate: %v", name, err)
		}
		// Every instantaneous workload across the whole span must be valid.
		total := tl.TotalHours()
		for h := 0.0; h < total; h += total / 97 {
			if err := tl.At(h).Validate(); err != nil {
				t.Errorf("%s: At(%v) invalid: %v", name, h, err)
			}
		}
	}
	if _, err := TimelineByName("nope", SysbenchRW()); err == nil {
		t.Error("TimelineByName accepted unknown name")
	}
}

func TestTimelinePhaseBoundaries(t *testing.T) {
	tl := Diurnal24(TPCC())
	if got := tl.TotalHours(); got != 24 {
		t.Fatalf("TotalHours = %v, want 24", got)
	}
	cases := []struct {
		hour float64
		seg  string
	}{
		{0, "night"},
		{5.999, "night"},
		{6, "morning-ramp"},
		{8.999, "morning-ramp"},
		{9, "daytime"},
		{16.999, "daytime"},
		{17, "batch-window"},
		{19, "evening-burst"},
		{20.999, "evening-burst"},
		{21, "wind-down"},
		{23.999, "wind-down"},
		{24, "night"}, // Repeat wraps
		{24 + 19.5, "evening-burst"},
	}
	for _, c := range cases {
		if got := tl.SegmentAt(c.hour).Name; got != c.seg {
			t.Errorf("SegmentAt(%v) = %q, want %q", c.hour, got, c.seg)
		}
	}
}

func TestTimelineDeterministicAndShapes(t *testing.T) {
	tl := Diurnal24(SysbenchRW())
	base := tl.Base

	// Determinism: same hour, same effective workload.
	for _, h := range []float64{0, 7.5, 13.2, 17.5, 19.9, 22.1} {
		a, b := tl.At(h), tl.At(h)
		if a != b {
			t.Fatalf("At(%v) not deterministic: %+v vs %+v", h, a, b)
		}
	}

	// Night trough: 0.35× threads, base mix untouched.
	night := tl.At(3)
	if want := int(math.Round(float64(base.Threads) * 0.35)); night.Threads != want {
		t.Errorf("night Threads = %d, want %d", night.Threads, want)
	}
	if night.ReadFraction != base.ReadFraction {
		t.Errorf("night ReadFraction = %v, want base %v", night.ReadFraction, base.ReadFraction)
	}

	// Ramp interpolates: mid-morning sits strictly between trough and peak.
	ramp := tl.LoadAt(7.5) // halfway through the 3h 0.35→1.0 ramp
	if math.Abs(ramp-(0.35+1.0)/2) > 1e-9 {
		t.Errorf("mid-ramp load = %v, want %v", ramp, (0.35+1.0)/2)
	}

	// Batch window: write-heavier mix, bigger working set, clamped to data.
	batch := tl.At(17.5)
	if batch.ReadFraction >= base.ReadFraction {
		t.Errorf("batch ReadFraction %v not below base %v", batch.ReadFraction, base.ReadFraction)
	}
	if batch.WorkingSetGB <= base.WorkingSetGB || batch.WorkingSetGB > base.DataSizeGB+1e-9 {
		t.Errorf("batch WorkingSetGB = %v (base %v, data %v)", batch.WorkingSetGB, base.WorkingSetGB, base.DataSizeGB)
	}

	// Burst: >2× the threads.
	burst := tl.At(19.5)
	if burst.Threads <= 2*base.Threads {
		t.Errorf("burst Threads = %d, want > %d", burst.Threads, 2*base.Threads)
	}

	// Diurnal segment oscillates around its mean within ±Amplitude.
	for h := 9.0; h < 17; h += 0.25 {
		l := tl.LoadAt(h)
		if l < 1.0-0.15-1e-9 || l > 1.0+0.15+1e-9 {
			t.Errorf("daytime load at %v = %v outside [0.85, 1.15]", h, l)
		}
	}
	// Non-repeating timeline holds its last segment past the end.
	fixed := *tl
	fixed.Repeat = false
	endLoad := fixed.LoadAt(500)
	if math.Abs(endLoad-0.35) > 1e-9 {
		t.Errorf("held final load = %v, want 0.35", endLoad)
	}
}

func TestTimelineTimeScale(t *testing.T) {
	tl := FlashCrowd(YCSB())
	if tl.Scale() != DefaultTimeScale {
		t.Fatalf("Scale = %v, want default %v", tl.Scale(), DefaultTimeScale)
	}
	// At 60× compression, 60 virtual seconds = 1 simulated hour.
	if got := tl.HourAt(60); math.Abs(got-1) > 1e-12 {
		t.Errorf("HourAt(60) = %v, want 1", got)
	}
	tl.TimeScale = 360 // 10 virtual seconds per simulated hour
	if got := tl.HourAt(10); math.Abs(got-1) > 1e-12 {
		t.Errorf("HourAt(10) @360x = %v, want 1", got)
	}
	// The clock-to-segment mapping respects the scale: 15 virtual
	// seconds at 360× is 1.5 simulated hours — inside the burst.
	if got := tl.SegmentAt(tl.HourAt(15)).Name; got != "burst" {
		t.Errorf("segment at 15 vsec @360x = %q, want burst", got)
	}
}

func TestTimelineValidateRejects(t *testing.T) {
	base := SysbenchRW()
	bad := []*Timeline{
		{Name: "empty", Base: base},
		{Name: "zerohours", Base: base, Segments: []Segment{{Hours: 0}}},
		{Name: "negrate", Base: base, Segments: []Segment{{Hours: 1, Rate: -1}}},
		{Name: "amp", Base: base, Segments: []Segment{{Kind: Diurnal, Hours: 1, Amplitude: 1.5}}},
		{Name: "badbase", Base: Workload{Name: "x"}, Segments: []Segment{{Hours: 1}}},
	}
	for _, tl := range bad {
		if err := tl.Validate(); err == nil {
			t.Errorf("timeline %s: Validate accepted invalid spec", tl.Name)
		}
	}
}
