package workload

import (
	"fmt"
	"math/rand"
)

// OpKind classifies one captured operation for replay.
type OpKind int

// Captured operation kinds.
const (
	OpPointRead OpKind = iota
	OpScanRead
	OpInsert
	OpUpdate
	OpDelete
)

// Op is one record in a captured user-workload trace.
type Op struct {
	Kind OpKind
	// AtMS is the capture-relative timestamp in milliseconds.
	AtMS int
	// Sorted marks queries that needed a sort / temp table.
	Sorted bool
	// Joined marks multi-table queries.
	Joined bool
}

// Trace is a captured slice of a user's real workload, the input to the
// workload generator's replay mechanism (§2.2.1). The paper captures
// roughly 150 seconds of the user's SQL records.
type Trace struct {
	Ops []Op
	// DurationMS is the capture window length.
	DurationMS int
	// Threads and data sizes are observable from the connection count and
	// catalog stats at capture time.
	Threads      int
	DataSizeGB   float64
	WorkingSetGB float64
	Skew         float64
}

// Record simulates capturing a trace of the given workload over windowSec
// seconds at the given operation rate (ops/sec). The sampled operation mix
// follows the workload's profile, so replaying the trace reconstructs an
// equivalent profile up to sampling noise.
func Record(w Workload, windowSec int, opsPerSec float64, rng *rand.Rand) Trace {
	n := int(float64(windowSec) * opsPerSec)
	if n < 1 {
		n = 1
	}
	tr := Trace{
		DurationMS:   windowSec * 1000,
		Threads:      w.Threads,
		DataSizeGB:   w.DataSizeGB,
		WorkingSetGB: w.WorkingSetGB,
		Skew:         w.Skew,
		Ops:          make([]Op, 0, n),
	}
	for i := 0; i < n; i++ {
		op := Op{AtMS: rng.Intn(tr.DurationMS)}
		if rng.Float64() < w.ReadFraction {
			if rng.Float64() < w.ScanFraction {
				op.Kind = OpScanRead
			} else {
				op.Kind = OpPointRead
			}
		} else {
			switch {
			case rng.Float64() < w.DeleteShare:
				op.Kind = OpDelete
			case rng.Float64() < 0.5:
				op.Kind = OpUpdate
			default:
				op.Kind = OpInsert
			}
		}
		op.Sorted = rng.Float64() < w.SortFraction
		op.Joined = rng.Float64() < w.JoinFraction
		tr.Ops = append(tr.Ops, op)
	}
	return tr
}

// Replay reconstructs a workload profile from a captured trace: the
// replayed stress test drives the database with the same operation mix,
// concurrency and data shape the user's workload exhibited.
func Replay(tr Trace) (Workload, error) {
	if len(tr.Ops) == 0 {
		return Workload{}, fmt.Errorf("workload: empty trace")
	}
	var reads, scans, inserts, updates, deletes, sorted, joined int
	for _, op := range tr.Ops {
		switch op.Kind {
		case OpPointRead:
			reads++
		case OpScanRead:
			reads++
			scans++
		case OpInsert:
			inserts++
		case OpUpdate:
			updates++
		case OpDelete:
			deletes++
		}
		if op.Sorted {
			sorted++
		}
		if op.Joined {
			joined++
		}
	}
	total := float64(len(tr.Ops))
	writes := float64(inserts + updates + deletes)
	w := Workload{
		Name:         "replayed",
		Class:        OLTP,
		ReadFraction: float64(reads) / total,
		SortFraction: float64(sorted) / total,
		JoinFraction: float64(joined) / total,
		DataSizeGB:   tr.DataSizeGB,
		WorkingSetGB: tr.WorkingSetGB,
		Skew:         tr.Skew,
		Threads:      tr.Threads,
		OpsPerTxn:    10,
	}
	if reads > 0 {
		w.ScanFraction = float64(scans) / float64(reads)
	}
	if w.ScanFraction > 0.5 && w.ReadFraction > 0.9 {
		w.Class = OLAP
	}
	if writes > 0 {
		w.DeleteShare = float64(deletes) / writes
	}
	if err := w.Validate(); err != nil {
		return Workload{}, err
	}
	return w, nil
}
