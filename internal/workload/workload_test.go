package workload

import (
	"math"
	"math/rand"
	"testing"
)

func TestAllWorkloadsValid(t *testing.T) {
	ws := All()
	if len(ws) != 6 {
		t.Fatalf("All() returned %d workloads, want 6 (paper §5)", len(ws))
	}
	for _, w := range ws {
		if err := w.Validate(); err != nil {
			t.Errorf("workload %s invalid: %v", w.Name, err)
		}
	}
}

func TestWorkloadProfiles(t *testing.T) {
	if ro := SysbenchRO(); ro.ReadFraction != 1 || ro.WriteFraction() != 0 {
		t.Fatal("sysbench-ro must be pure reads")
	}
	if wo := SysbenchWO(); wo.ReadFraction != 0 {
		t.Fatal("sysbench-wo must be pure writes")
	}
	rw := SysbenchRW()
	if rw.ReadFraction <= 0 || rw.ReadFraction >= 1 {
		t.Fatal("sysbench-rw must be mixed")
	}
	if tpch := TPCH(); tpch.Class != OLAP || tpch.ScanFraction < 0.5 {
		t.Fatal("tpc-h must be scan-heavy OLAP")
	}
	if tpcc := TPCC(); tpcc.Class != OLTP || tpcc.Threads != 32 {
		t.Fatalf("tpc-c profile wrong: %+v", tpcc)
	}
	// Paper §5: Sysbench uses 1500 threads, YCSB 50.
	if SysbenchRW().Threads != 1500 || YCSB().Threads != 50 {
		t.Fatal("thread counts do not match paper setup")
	}
}

func TestByName(t *testing.T) {
	w, err := ByName("tpcc")
	if err != nil || w.Name != "tpcc" {
		t.Fatalf("ByName(tpcc) = %v, %v", w.Name, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("ByName should fail for unknown workload")
	}
}

func TestValidateCatchesBadProfiles(t *testing.T) {
	bad := []Workload{
		{Name: "a", ReadFraction: 1.5, DataSizeGB: 1, WorkingSetGB: 1, Threads: 1, OpsPerTxn: 1},
		{Name: "b", ReadFraction: 0.5, ScanFraction: -0.1, DataSizeGB: 1, WorkingSetGB: 1, Threads: 1, OpsPerTxn: 1},
		{Name: "c", ReadFraction: 0.5, DataSizeGB: 0, WorkingSetGB: 0, Threads: 1, OpsPerTxn: 1},
		{Name: "d", ReadFraction: 0.5, DataSizeGB: 1, WorkingSetGB: 2, Threads: 1, OpsPerTxn: 1},
		{Name: "e", ReadFraction: 0.5, DataSizeGB: 1, WorkingSetGB: 1, Threads: 0, OpsPerTxn: 1},
		{Name: "f", ReadFraction: 0.5, DataSizeGB: 1, WorkingSetGB: 1, Threads: 1, OpsPerTxn: 0},
	}
	for _, w := range bad {
		if err := w.Validate(); err == nil {
			t.Errorf("workload %s should be invalid", w.Name)
		}
	}
}

func TestRecordReplayRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	orig := SysbenchRW()
	tr := Record(orig, 150, 200, rng)
	if len(tr.Ops) != 150*200 {
		t.Fatalf("trace has %d ops, want 30000", len(tr.Ops))
	}
	got, err := Replay(tr)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.ReadFraction-orig.ReadFraction) > 0.02 {
		t.Fatalf("replayed ReadFraction %v, want ≈%v", got.ReadFraction, orig.ReadFraction)
	}
	if math.Abs(got.ScanFraction-orig.ScanFraction) > 0.03 {
		t.Fatalf("replayed ScanFraction %v, want ≈%v", got.ScanFraction, orig.ScanFraction)
	}
	if got.Threads != orig.Threads || got.DataSizeGB != orig.DataSizeGB {
		t.Fatal("replay lost connection/data shape")
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("replayed workload invalid: %v", err)
	}
}

func TestReplayClassifiesOLAP(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr := Record(TPCH(), 150, 50, rng)
	got, err := Replay(tr)
	if err != nil {
		t.Fatal(err)
	}
	if got.Class != OLAP {
		t.Fatalf("replayed TPC-H classified as %v, want OLAP", got.Class)
	}
}

func TestReplayEmptyTrace(t *testing.T) {
	if _, err := Replay(Trace{}); err == nil {
		t.Fatal("empty trace should error")
	}
}

func TestRecordTimestampsWithinWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := Record(YCSB(), 10, 100, rng)
	for _, op := range tr.Ops {
		if op.AtMS < 0 || op.AtMS >= tr.DurationMS {
			t.Fatalf("op timestamp %d outside window %d", op.AtMS, tr.DurationMS)
		}
	}
}

func TestReplayPureWrites(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tr := Record(SysbenchWO(), 60, 100, rng)
	got, err := Replay(tr)
	if err != nil {
		t.Fatal(err)
	}
	if got.ReadFraction != 0 {
		t.Fatalf("replayed WO ReadFraction = %v, want 0", got.ReadFraction)
	}
	if got.DeleteShare == 0 {
		t.Fatal("replayed WO lost delete share")
	}
}
