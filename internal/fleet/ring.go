package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVnodes is the virtual-node count per member — enough to spread
// a handful of processes evenly without making ring rebuilds expensive.
const DefaultVnodes = 64

// Ring is a consistent-hash ring mapping session keys to fleet members.
// Each member owns DefaultVnodes points on a 64-bit circle; a key routes
// to the first point clockwise from its own hash, so adding or removing
// one member only remaps the keys that landed on its points.
type Ring struct {
	points []uint64
	owner  map[uint64]string
}

// NewRing builds a ring over the given member IDs (order irrelevant,
// duplicates collapse). An empty member list yields an empty ring.
func NewRing(members []string) *Ring {
	r := &Ring{owner: make(map[uint64]string, len(members)*DefaultVnodes)}
	seen := make(map[string]bool, len(members))
	for _, m := range members {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		for v := 0; v < DefaultVnodes; v++ {
			h := hash64(fmt.Sprintf("%s#%d", m, v))
			// On the (vanishingly rare) collision the lexically smaller
			// member wins, on every process identically.
			if prev, ok := r.owner[h]; ok && prev <= m {
				continue
			}
			r.owner[h] = m
			r.points = append(r.points, h)
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i] < r.points[j] })
	return r
}

// Len reports the number of distinct members on the ring.
func (r *Ring) Len() int {
	seen := make(map[string]bool)
	for _, m := range r.owner {
		seen[m] = true
	}
	return len(seen)
}

// Owner maps a key to its member, false on an empty ring.
func (r *Ring) Owner(key string) (string, bool) {
	c := r.Candidates(key, 1)
	if len(c) == 0 {
		return "", false
	}
	return c[0], true
}

// Candidates returns up to n distinct members in ring order starting at
// the key's owner — the forwarding fallback chain when the owner is
// unreachable.
func (r *Ring) Candidates(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i] >= h })
	var out []string
	seen := make(map[string]bool)
	for k := 0; k < len(r.points) && len(out) < n; k++ {
		m := r.owner[r.points[(i+k)%len(r.points)]]
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	return out
}

// hash64 is FNV-1a with a 64-bit avalanche finalizer: raw FNV keeps
// sequential keys ("task-1", "task-2", ...) on nearby circle points,
// which defeats the spread the ring exists for.
func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
