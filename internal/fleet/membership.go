package fleet

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cdbtune/internal/registry"
	"cdbtune/internal/vfs"
)

// Membership advertises this process in the fleet's member directory and
// reads the live member set. Each member owns one lease file
// (members/<id>.lease) renewed on a background loop; its Data field
// carries the member's HTTP address, which is how peers learn where to
// forward sessions. A member whose lease expires — crashed, or stalled
// past the TTL — drops out of Alive and becomes failover prey.
type Membership struct {
	dir  string
	id   string
	addr string
	ttl  time.Duration

	lease *registry.Lease
	logf  func(string, ...any)

	// stallUntil (unix nanos) pauses renewals — the chaos hook that
	// simulates a wedged process without killing it.
	stallUntil atomic.Int64

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewMembership prepares (but does not start) a member advertisement.
func NewMembership(dir, id, addr string, ttl time.Duration, logf func(string, ...any)) (*Membership, error) {
	if err := vfs.MkdirAllDurable(vfs.OS, dir, 0o755); err != nil {
		return nil, fmt.Errorf("fleet: member dir: %w", err)
	}
	if ttl <= 0 {
		ttl = registry.DefaultLeaseTTL
	}
	m := &Membership{
		dir:   dir,
		id:    id,
		addr:  addr,
		ttl:   ttl,
		lease: registry.NewLease(filepath.Join(dir, id+".lease"), id, ttl),
		logf:  logf,
		stop:  make(chan struct{}),
	}
	m.lease.SetData(addr)
	return m, nil
}

// Start claims the member lease (stealing a stale one left by a dead
// prior incarnation) and begins renewing it every TTL/3.
func (m *Membership) Start() error {
	ok, err := m.lease.TryAcquire()
	if err != nil {
		return fmt.Errorf("fleet: member lease: %w", err)
	}
	if !ok {
		// A failover holder has our slot for up to one TTL; the renew loop
		// will reclaim it when it lapses.
		m.logf("fleet: %s: member lease busy at start; reclaiming in background", m.id)
	}
	m.wg.Add(1)
	go m.renewLoop()
	return nil
}

// Stop halts renewals and releases the lease so peers see this member
// leave immediately instead of after a TTL.
func (m *Membership) Stop() {
	close(m.stop)
	m.wg.Wait()
	if err := m.lease.Release(); err != nil {
		m.logf("fleet: %s: releasing member lease: %v", m.id, err)
	}
}

// Abandon halts renewals without releasing the lease — the simulated
// crash: peers only notice once the lease expires.
func (m *Membership) Abandon() {
	close(m.stop)
	m.wg.Wait()
}

// StallFor pauses lease renewals for d — chaos injection: the member
// keeps running but looks dead once the stall outlives the TTL.
func (m *Membership) StallFor(d time.Duration) {
	m.stallUntil.Store(time.Now().Add(d).UnixNano())
}

// Lease exposes the member lease (epoch and steal counters for metrics).
func (m *Membership) Lease() *registry.Lease { return m.lease }

func (m *Membership) renewLoop() {
	defer m.wg.Done()
	tick := time.NewTicker(m.ttl / 3)
	defer tick.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-tick.C:
		}
		if time.Now().UnixNano() < m.stallUntil.Load() {
			continue
		}
		// TryAcquire renews when held, steals back when a failover holder's
		// grip has lapsed, and reports busy (not an error) in between.
		if _, err := m.lease.TryAcquire(); err != nil {
			m.logf("fleet: %s: renewing member lease: %v", m.id, err)
		}
	}
}

// Alive scans the member directory and returns id → HTTP address for
// every member with a live lease. A lease stolen by a failover peer
// carries no address and is skipped, so a failed-over member stays
// unroutable until it reclaims its own slot.
func Alive(dir string) (map[string]string, error) {
	ents, err := vfs.OS.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("fleet: scanning members: %w", err)
	}
	now := time.Now()
	out := make(map[string]string)
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".lease") {
			continue
		}
		info, ok, err := registry.ReadLeaseFile(filepath.Join(dir, e.Name()))
		if err != nil || !ok {
			continue // torn or vanished mid-scan: treat as absent
		}
		if info.ExpiredAt(now) || info.Data == "" {
			continue
		}
		out[info.Owner] = info.Data
	}
	return out, nil
}
