package fleet

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// Router forwarding defaults: per-attempt timeout, bounded retries with
// exponential backoff and full jitter.
const (
	DefaultForwardTimeout = 5 * time.Second
	DefaultForwardRetries = 3
	DefaultBackoffBase    = 50 * time.Millisecond
)

// Router issues inter-process forwards with bounded retry, timeout and
// jittered exponential backoff. It retries transport errors and 502/503
// (the peer is mid-drain or mid-restart); any other response — including
// a 429 — is the peer's answer, not the network's, and comes straight
// back.
type Router struct {
	client  *http.Client
	retries int
	backoff time.Duration

	mu  sync.Mutex
	rng *rand.Rand
}

// NewRouter builds a router; zero arguments take the defaults.
func NewRouter(timeout time.Duration, retries int) *Router {
	if timeout <= 0 {
		timeout = DefaultForwardTimeout
	}
	if retries <= 0 {
		retries = DefaultForwardRetries
	}
	return &Router{
		client:  &http.Client{Timeout: timeout},
		retries: retries,
		backoff: DefaultBackoffBase,
		rng:     rand.New(rand.NewSource(time.Now().UnixNano())),
	}
}

// Post sends body to url, retrying up to the retry budget. The returned
// response's body is fully read and returned as bytes so the connection
// is always reclaimed.
func (rt *Router) Post(url string, body []byte) (int, []byte, error) {
	var lastErr error
	for attempt := 0; attempt < rt.retries; attempt++ {
		if attempt > 0 {
			rt.sleep(attempt)
		}
		resp, err := rt.client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			lastErr = err
			continue
		}
		data, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			lastErr = rerr
			continue
		}
		if resp.StatusCode == http.StatusBadGateway || resp.StatusCode == http.StatusServiceUnavailable {
			lastErr = fmt.Errorf("fleet: %s answered %d", url, resp.StatusCode)
			continue
		}
		return resp.StatusCode, data, nil
	}
	return 0, nil, fmt.Errorf("fleet: %d attempts to %s failed: %w", rt.retries, url, lastErr)
}

// Get fetches url with the same retry budget.
func (rt *Router) Get(url string) (int, []byte, error) {
	var lastErr error
	for attempt := 0; attempt < rt.retries; attempt++ {
		if attempt > 0 {
			rt.sleep(attempt)
		}
		resp, err := rt.client.Get(url)
		if err != nil {
			lastErr = err
			continue
		}
		data, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			lastErr = rerr
			continue
		}
		if resp.StatusCode == http.StatusBadGateway || resp.StatusCode == http.StatusServiceUnavailable {
			lastErr = fmt.Errorf("fleet: %s answered %d", url, resp.StatusCode)
			continue
		}
		return resp.StatusCode, data, nil
	}
	return 0, nil, fmt.Errorf("fleet: %d attempts to %s failed: %w", rt.retries, url, lastErr)
}

// sleep backs off before retry attempt n: full jitter over
// backoff * 2^(n-1).
func (rt *Router) sleep(n int) {
	max := rt.backoff << (n - 1)
	rt.mu.Lock()
	d := time.Duration(rt.rng.Int63n(int64(max) + 1))
	rt.mu.Unlock()
	time.Sleep(d)
}
