// Package fleet turns the single-process tuning service into a
// crash-tolerant multi-process fleet sharing one on-disk directory: a
// lease-replicated model registry (registry.Shared), per-member lease
// files advertising each process's HTTP address, a durable job journal
// keyed by client idempotency keys, and consistent-hash session routing
// with bounded-retry forwarding between processes.
//
// A submission (POST /fleet/jobs on any node) hashes its idempotency key
// onto a ring built from the live member set; the owning node admits it,
// journals an accepted record, and runs the ordinary tuning pipeline. If
// the owner is unreachable the forwarder walks the candidate chain and
// finally admits locally, so no single peer is load-bearing. Every
// terminal session state is journaled, which makes retries and re-runs
// of a key converge on one record.
//
// Failure handling is built from the same lease primitive the registry
// uses. A member that stops renewing — crashed, or stalled past the
// TTL — expires out of the live set; each peer sweeps once per TTL for
// dead members with non-terminal journal records, and adoption is
// serialized by stealing the dead member's own lease (an epoch bump, the
// observable failover). The winner re-submits those jobs into its own
// pipeline and rewrites their records; duplicate completions caused by a
// member that was merely slow are resolved last-writer-wins in the
// journal, which idempotency keys make safe. cmd/loadgen drives a
// three-process fleet through exactly these faults and asserts zero lost
// jobs and bounded submit-to-deploy latency.
package fleet
