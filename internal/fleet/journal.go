package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"cdbtune/internal/nn"
	"cdbtune/internal/server"
	"cdbtune/internal/vfs"
)

// StateAccepted marks a journaled job that has been admitted somewhere
// but has not reached a terminal state yet — the set failover re-queues.
const StateAccepted = "accepted"

// Record is one durable job entry: enough to re-submit the job on another
// process if its owner dies. Key is the client's idempotency key; a retry
// or failover re-run of the same Key converges on one record.
type Record struct {
	Key     string            `json:"key"`
	Node    string            `json:"node"`
	JobID   string            `json:"job_id,omitempty"`
	State   string            `json:"state"`
	Request server.JobRequest `json:"request"`
	// Requeues counts failover re-submissions of this job.
	Requeues int   `json:"requeues,omitempty"`
	UnixMs   int64 `json:"unix_ms"`

	// Terminal outcome, copied from the session status.
	Improvement float64 `json:"improvement,omitempty"`
	ModelID     string  `json:"model_id,omitempty"`
	Error       string  `json:"error,omitempty"`
}

// Terminal reports whether the record's job needs no further work.
func (r Record) Terminal() bool {
	switch r.State {
	case server.StateDone, server.StateFailed, server.StateCanceled:
		return true
	}
	return false
}

// Journal is the fleet's durable job log: one atomically-written JSON
// file per idempotency key, shared by every process through the fleet
// directory. Writes go through nn.WriteAtomic (temp file, fsync, rename,
// dir fsync) so a crash never leaves a torn record; cross-process writers
// of one key are last-writer-wins, which is safe because a record is only
// mutated by the node named in it while that node is alive. Within one
// process, mu serializes read-modify-write cycles (Update) against plain
// Puts, so a session's terminal write and a failover stamp-back cannot
// interleave into a lost state.
type Journal struct {
	dir string
	fs  vfs.FS
	mu  sync.Mutex
}

// OpenJournal creates the journal directory if needed — durably: the new
// directory's parent is fsynced, so a power cut right after the first
// acked record cannot drop the whole journal subtree (an un-fsynced
// directory entry takes every record inside it along when it vanishes).
func OpenJournal(dir string) (*Journal, error) {
	return OpenJournalFS(vfs.OS, dir)
}

// OpenJournalFS is OpenJournal over an explicit filesystem (fault
// injection, crash-consistency exploration).
func OpenJournalFS(fsys vfs.FS, dir string) (*Journal, error) {
	if err := vfs.MkdirAllDurable(fsys, dir, 0o755); err != nil {
		return nil, fmt.Errorf("fleet: journal dir: %w", err)
	}
	return &Journal{dir: dir, fs: fsys}, nil
}

func (j *Journal) path(key string) (string, error) {
	for _, r := range key {
		if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' ||
			r == '-' || r == '_' || r == '.' {
			continue
		}
		return "", fmt.Errorf("fleet: job key %q: only [A-Za-z0-9._-] allowed", key)
	}
	if key == "" || strings.HasPrefix(key, ".") {
		return "", fmt.Errorf("fleet: invalid job key %q", key)
	}
	return filepath.Join(j.dir, key+".json"), nil
}

// Put writes (or overwrites) the key's record.
func (j *Journal) Put(rec Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.putLocked(rec)
}

func (j *Journal) putLocked(rec Record) error {
	p, err := j.path(rec.Key)
	if err != nil {
		return err
	}
	rec.UnixMs = time.Now().UnixMilli()
	return nn.WriteAtomicFS(j.fs, p, func(w io.Writer) error {
		return json.NewEncoder(w).Encode(rec)
	})
}

// Update applies fn to the key's current record (zero-value Record with
// the Key set when the key has never been journaled) and writes the
// result, all under the journal's write lock — the compare-and-swap that
// lets concurrent in-process writers of one key resolve by state instead
// of by timing. fn returning false skips the write.
func (j *Journal) Update(key string, fn func(cur Record, found bool) (Record, bool)) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	cur, found, err := j.Get(key)
	if err != nil {
		return err
	}
	if !found {
		cur = Record{Key: key}
	}
	next, write := fn(cur, found)
	if !write {
		return nil
	}
	next.Key = key
	return j.putLocked(next)
}

// Get reads one record; ok is false when the key has never been journaled.
func (j *Journal) Get(key string) (Record, bool, error) {
	p, err := j.path(key)
	if err != nil {
		return Record{}, false, err
	}
	data, err := j.fs.ReadFile(p)
	if os.IsNotExist(err) {
		return Record{}, false, nil
	}
	if err != nil {
		return Record{}, false, err
	}
	var rec Record
	if err := json.Unmarshal(data, &rec); err != nil {
		return Record{}, false, fmt.Errorf("fleet: journal %s: %w", key, err)
	}
	return rec, true, nil
}

// All returns every journaled record (unordered).
func (j *Journal) All() ([]Record, error) {
	ents, err := j.fs.ReadDir(j.dir)
	if err != nil {
		return nil, err
	}
	var out []Record
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		rec, ok, err := j.Get(strings.TrimSuffix(e.Name(), ".json"))
		if err != nil || !ok {
			continue // a record vanishing or torn mid-scan resolves next sweep
		}
		out = append(out, rec)
	}
	return out, nil
}

// PendingOn returns the non-terminal records owned by the given node —
// the jobs a failover must re-queue when that node dies.
func (j *Journal) PendingOn(node string) ([]Record, error) {
	all, err := j.All()
	if err != nil {
		return nil, err
	}
	var out []Record
	for _, rec := range all {
		if rec.Node == node && !rec.Terminal() {
			out = append(out, rec)
		}
	}
	return out, nil
}
