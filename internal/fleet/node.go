package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"cdbtune/internal/registry"
	"cdbtune/internal/server"
	"cdbtune/internal/vfs"
)

// Config assembles one fleet node.
type Config struct {
	// ID is this process's stable node name ("node1"); it prefixes job
	// IDs, names the member lease and owns journal records. Required.
	ID string
	// Dir is the shared fleet directory (registry/, members/, jobs/).
	// Required; every node of one fleet points at the same directory.
	Dir string
	// Addr is the listen address ("127.0.0.1:0" picks a free port).
	Addr string

	// LeaseTTL governs both the registry write lease and the member
	// lease (default registry.DefaultLeaseTTL). Failover latency is one
	// TTL plus a sweep interval.
	LeaseTTL time.Duration

	// Server configures the tuning pipeline. Registry, IDPrefix and
	// OnJobDone are owned by the node and overwritten.
	Server server.Config
	// RegistryOpts apply to the shared registry (WithMaxEntries, ...).
	RegistryOpts []registry.Option

	// Logf receives node log lines (default: the server config's Logf,
	// then log.Printf).
	Logf func(format string, args ...any)
}

// SubmitRequest is the body of POST /fleet/jobs: an idempotency key plus
// the tuning request. Retrying the same Key — against any node, any
// number of times — yields one logical job.
type SubmitRequest struct {
	Key     string            `json:"key"`
	Request server.JobRequest `json:"request"`
}

// Stats is the node snapshot behind GET /fleet/stats.
type Stats struct {
	Node      string            `json:"node"`
	Addr      string            `json:"addr"`
	Members   map[string]string `json:"members"`
	Failovers int               `json:"failovers"`
	Requeued  int               `json:"requeued"`
	Forwarded int               `json:"forwarded"`
	Pending   int               `json:"pending"`

	RegistryLeaseEpoch  int64 `json:"registry_lease_epoch"`
	RegistryLeaseSteals int   `json:"registry_lease_steals"`
	MemberLeaseEpoch    int64 `json:"member_lease_epoch"`
}

// Node is one serve process of the fleet: a tuning Manager/Server pair
// over the shared lease-replicated registry, advertised through a member
// lease, routing sessions by consistent hash, journaling every accepted
// job, and sweeping for dead peers whose pending jobs it adopts.
type Node struct {
	cfg     Config
	reg     *registry.Shared
	mgr     *server.Manager
	srv     *server.Server
	members *Membership
	journal *Journal
	router  *Router
	addr    string
	logf    func(string, ...any)

	stop chan struct{}
	wg   sync.WaitGroup

	mu        sync.Mutex
	failovers int
	requeued  int
	forwarded int
}

// Start opens the shared state, binds the HTTP API and joins the fleet.
func Start(cfg Config) (*Node, error) {
	if cfg.ID == "" || cfg.Dir == "" {
		return nil, errors.New("fleet: Config.ID and Config.Dir are required")
	}
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = registry.DefaultLeaseTTL
	}
	logf := cfg.Logf
	if logf == nil {
		logf = cfg.Server.Logf
	}
	if logf == nil {
		logf = log.Printf
	}

	// Durable mkdir: the node's subtrees must survive a power cut, or every
	// fsync'd lease/record/entry inside vanishes with the directory entry.
	for _, sub := range []string{"registry", "members", "jobs"} {
		if err := vfs.MkdirAllDurable(vfs.OS, filepath.Join(cfg.Dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("fleet: %w", err)
		}
	}
	reg, err := registry.OpenShared(filepath.Join(cfg.Dir, "registry"), cfg.ID,
		cfg.RegistryOpts, registry.WithLeaseTTL(cfg.LeaseTTL))
	if err != nil {
		return nil, err
	}
	journal, err := OpenJournal(filepath.Join(cfg.Dir, "jobs"))
	if err != nil {
		return nil, err
	}

	n := &Node{
		cfg:     cfg,
		reg:     reg,
		journal: journal,
		router:  NewRouter(0, 0),
		stop:    make(chan struct{}),
	}

	n.logf = logf
	scfg := cfg.Server
	scfg.Registry = reg
	scfg.IDPrefix = cfg.ID
	scfg.OnJobDone = n.onJobDone
	n.mgr, err = server.NewManager(scfg)
	if err != nil {
		return nil, err
	}

	n.srv = server.NewServer(n.mgr)
	n.srv.Handle("POST /fleet/jobs", n.handleSubmit)
	n.srv.Handle("POST /fleet/local", n.handleLocal)
	n.srv.Handle("GET /fleet/jobs/{key}", n.handleJob)
	n.srv.Handle("GET /fleet/stats", n.handleStats)
	n.srv.Handle("POST /fleet/chaos/stall", n.handleStall)
	n.srv.SetPromExtra(n.promMetrics)
	n.addr, err = n.srv.Start(cfg.Addr)
	if err != nil {
		n.mgr.Close()
		return nil, err
	}

	n.members, err = NewMembership(filepath.Join(cfg.Dir, "members"), cfg.ID, n.addr, cfg.LeaseTTL, n.logf)
	if err == nil {
		err = n.members.Start()
	}
	if err != nil {
		_ = n.srv.Close()
		return nil, err
	}

	n.wg.Add(1)
	go n.failoverLoop()
	n.logf("fleet: %s serving at %s (lease ttl %s)", cfg.ID, n.addr, cfg.LeaseTTL)
	return n, nil
}

// Addr is the node's bound HTTP address.
func (n *Node) Addr() string { return n.addr }

// Manager exposes the node's tuning pipeline (tests, metrics).
func (n *Node) Manager() *server.Manager { return n.mgr }

// Registry exposes the node's shared registry handle.
func (n *Node) Registry() *registry.Shared { return n.reg }

// Membership exposes the member advertisement (chaos stalls it).
func (n *Node) Membership() *Membership { return n.members }

// Stop leaves the fleet cleanly: the member lease is released (peers see
// the departure at once), the HTTP server drains, queued and running
// sessions finish, the failover loop and registry close last. Pending
// jobs left anyway (drain timeout) are adopted by peers.
func (n *Node) Stop() error {
	close(n.stop)
	n.wg.Wait()
	n.members.Stop()
	err := n.srv.Close()
	if cerr := n.reg.Close(); err == nil {
		err = cerr
	}
	return err
}

// Stats snapshots the node's fleet counters.
func (n *Node) Stats() Stats {
	members, _ := Alive(filepath.Join(n.cfg.Dir, "members"))
	pending, _ := n.journal.PendingOn(n.cfg.ID)
	n.mu.Lock()
	defer n.mu.Unlock()
	return Stats{
		Node: n.cfg.ID, Addr: n.addr, Members: members,
		Failovers: n.failovers, Requeued: n.requeued, Forwarded: n.forwarded,
		Pending:             len(pending),
		RegistryLeaseEpoch:  n.reg.Lease().Epoch(),
		RegistryLeaseSteals: n.reg.Lease().Steals(),
		MemberLeaseEpoch:    n.members.Lease().Epoch(),
	}
}

// onJobDone journals a session's terminal state under its idempotency
// key — the write that tells the failover sweep this job needs no
// adoption. The key rides on the job status itself (JobRequest.IdemKey),
// so a session that finishes the instant Submit returns is still
// journaled: there is no side table to miss a racing write.
func (n *Node) onJobDone(st server.JobStatus) {
	key := st.IdemKey
	if key == "" {
		return // a job submitted through the plain API, not the fleet
	}
	err := n.journal.Update(key, func(rec Record, _ bool) (Record, bool) {
		rec.Node, rec.JobID, rec.State = n.cfg.ID, st.ID, st.State
		rec.Improvement, rec.ModelID, rec.Error = st.Improvement, st.ModelID, st.Error
		return rec, true
	})
	if err != nil {
		n.logf("fleet: %s: journaling %s terminal state: %v", n.cfg.ID, key, err)
	}
}

// submitLocal admits a fleet job on this node: journal first look-up for
// idempotency, then Manager.Submit, then the accepted record. A crash
// between Submit and Put re-runs the job on retry — at-least-once, made
// safe by the idempotency key.
func (n *Node) submitLocal(req SubmitRequest) (Record, int, error) {
	if rec, ok, err := n.journal.Get(req.Key); err != nil {
		return Record{}, http.StatusBadRequest, err
	} else if ok && (rec.Terminal() || n.nodeAlive(rec.Node)) {
		return rec, http.StatusOK, nil // duplicate submission: converge on the record
	}
	// The idempotency key travels on the job itself so the terminal-status
	// hook can journal the outcome no matter how fast the session finishes.
	req.Request.IdemKey = req.Key
	st, err := n.mgr.Submit(req.Request)
	if err != nil {
		switch {
		case errors.Is(err, server.ErrQueueFull), errors.Is(err, server.ErrTenantBusy):
			return Record{}, http.StatusTooManyRequests, err
		case errors.Is(err, server.ErrDraining):
			return Record{}, http.StatusServiceUnavailable, err
		}
		return Record{}, http.StatusBadRequest, err
	}
	rec := Record{
		Key: req.Key, Node: n.cfg.ID, JobID: st.ID,
		State: StateAccepted, Request: req.Request,
	}
	// A fast session may have journaled its terminal state already; the
	// accepted record must lose to it, not overwrite it.
	perr := n.journal.Update(req.Key, func(cur Record, found bool) (Record, bool) {
		if found && cur.Terminal() {
			rec = cur
			return cur, false
		}
		return rec, true
	})
	if perr != nil {
		return Record{}, http.StatusInternalServerError, perr
	}
	return rec, http.StatusAccepted, nil
}

func (n *Node) nodeAlive(id string) bool {
	if id == n.cfg.ID {
		return true
	}
	alive, _ := Alive(filepath.Join(n.cfg.Dir, "members"))
	_, ok := alive[id]
	return ok
}

// handleSubmit routes a fleet submission: the key's ring owner admits it;
// an unreachable owner falls through the candidate chain and finally to
// this node, so a submission outlives any single peer.
func (n *Node) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if req.Key == "" {
		httpError(w, http.StatusBadRequest, errors.New("fleet: submission key required"))
		return
	}
	alive, err := Alive(filepath.Join(n.cfg.Dir, "members"))
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	ids := make([]string, 0, len(alive))
	for id := range alive {
		ids = append(ids, id)
	}
	for _, owner := range NewRing(ids).Candidates(req.Key, 3) {
		if owner == n.cfg.ID {
			break
		}
		addr, ok := alive[owner]
		if !ok {
			continue
		}
		body, _ := json.Marshal(req)
		code, data, err := n.router.Post("http://"+addr+"/fleet/local", body)
		if err != nil {
			n.logf("fleet: %s: forward %s to %s failed: %v", n.cfg.ID, req.Key, owner, err)
			continue // next candidate, ultimately local
		}
		n.mu.Lock()
		n.forwarded++
		n.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		_, _ = w.Write(data)
		return
	}
	n.respondLocal(w, req)
}

// handleLocal is the owner-side admission endpoint: no re-routing, so a
// forward can not loop even while peers disagree about the ring.
func (n *Node) handleLocal(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if req.Key == "" {
		httpError(w, http.StatusBadRequest, errors.New("fleet: submission key required"))
		return
	}
	n.respondLocal(w, req)
}

func (n *Node) respondLocal(w http.ResponseWriter, req SubmitRequest) {
	rec, code, err := n.submitLocal(req)
	if err != nil {
		if code == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", strconv.Itoa(server.RetryAfterSec))
		}
		httpError(w, code, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(rec)
}

func (n *Node) handleJob(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	rec, ok, err := n.journal.Get(key)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("fleet: no job %q", key))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(rec)
}

func (n *Node) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(n.Stats())
}

// handleStall injects a lease-renewal stall ({"ms": N}) — the chaos
// harness's wedged-process fault.
func (n *Node) handleStall(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Ms int `json:"ms"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Ms <= 0 {
		httpError(w, http.StatusBadRequest, errors.New("fleet: body must be {\"ms\": N>0}"))
		return
	}
	n.members.StallFor(time.Duration(req.Ms) * time.Millisecond)
	n.logf("fleet: %s: lease renewals stalled for %dms", n.cfg.ID, req.Ms)
	w.WriteHeader(http.StatusOK)
	_ = json.NewEncoder(w).Encode(map[string]any{"stalled_ms": req.Ms})
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// failoverLoop sweeps once per TTL for dead peers with pending journal
// jobs. Adoption is serialized through the dead peer's own member lease:
// the sweeper steals it (epoch bump — the recorded failover), re-submits
// the peer's non-terminal jobs locally, and rewrites their records to
// point here. The steal's one-TTL hold keeps other sweepers off the same
// carcass; records that fail to resubmit (admission pressure) stay on
// the dead node and are retried next sweep.
func (n *Node) failoverLoop() {
	defer n.wg.Done()
	tick := time.NewTicker(n.cfg.LeaseTTL)
	defer tick.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-tick.C:
		}
		if err := n.failoverSweep(); err != nil {
			n.logf("fleet: %s: failover sweep: %v", n.cfg.ID, err)
		}
	}
}

func (n *Node) failoverSweep() error {
	alive, err := Alive(filepath.Join(n.cfg.Dir, "members"))
	if err != nil {
		return err
	}
	all, err := n.journal.All()
	if err != nil {
		return err
	}
	dead := make(map[string][]Record)
	var orphans []Record
	for _, rec := range all {
		if rec.Terminal() {
			continue
		}
		if rec.Node == n.cfg.ID {
			// Our own record with no live session behind it: a crashed
			// prior incarnation of this node ID, or an admission that was
			// journaled but rejected mid-requeue. Re-queue locally.
			if rec.JobID != "" {
				if _, ok := n.mgr.Job(rec.JobID); ok {
					continue
				}
			}
			orphans = append(orphans, rec)
			continue
		}
		if _, ok := alive[rec.Node]; ok {
			continue
		}
		dead[rec.Node] = append(dead[rec.Node], rec)
	}
	n.requeue(orphans)
	for node, recs := range dead {
		n.adopt(node, recs)
	}
	return nil
}

// adopt steals the dead node's member lease and re-queues its jobs here.
func (n *Node) adopt(node string, recs []Record) {
	path := filepath.Join(n.cfg.Dir, "members", node+".lease")
	prev, _, _ := registry.ReadLeaseFile(path)
	claim := registry.NewLease(path, n.cfg.ID, n.cfg.LeaseTTL)
	ok, err := claim.TryAcquire()
	if err != nil || !ok {
		// Still within its TTL, or another sweeper beat us to it.
		return
	}
	if prev.Owner == node {
		// A genuine steal from the dead owner — the recorded failover.
		n.mu.Lock()
		n.failovers++
		n.mu.Unlock()
		n.logf("fleet: %s: failover — stole %s's member lease (epoch %d → %d), adopting %d jobs",
			n.cfg.ID, node, prev.Epoch, claim.Epoch(), len(recs))
	}
	n.requeue(recs)
}

// requeue re-admits journal records into this node's pipeline. The record
// is rewritten before Submit: once Submit returns, the session can reach
// its terminal state (and journal it) at any moment, and that write must
// land after this one. A record whose Submit is rejected keeps Node=self
// and no JobID, which the next sweep's self-orphan pass retries.
func (n *Node) requeue(recs []Record) {
	for _, rec := range recs {
		rec.Node, rec.JobID, rec.State = n.cfg.ID, "", StateAccepted
		rec.Requeues++
		rec.Request.IdemKey = rec.Key // records from older journals may predate the field
		if err := n.journal.Put(rec); err != nil {
			n.logf("fleet: %s: rewriting journal %s: %v", n.cfg.ID, rec.Key, err)
			continue
		}
		st, err := n.mgr.Submit(rec.Request)
		if err != nil {
			n.logf("fleet: %s: re-queueing %s: %v (retrying next sweep)", n.cfg.ID, rec.Key, err)
			continue
		}
		n.mu.Lock()
		n.requeued++
		n.mu.Unlock()
		// Stamp the live job ID so the next sweep sees a backed record.
		// The compare-and-swap skips the write when the session already
		// journaled its terminal state — a terminal record is never
		// regressed to accepted by a slow stamp.
		err = n.journal.Update(rec.Key, func(cur Record, found bool) (Record, bool) {
			if !found || cur.Terminal() {
				return cur, false
			}
			cur.JobID = st.ID
			return cur, true
		})
		if err != nil {
			n.logf("fleet: %s: stamping journal %s: %v", n.cfg.ID, rec.Key, err)
		}
	}
}

// promMetrics contributes the fleet layer to the node's /metrics.
func (n *Node) promMetrics() []server.PromMetric {
	st := n.Stats()
	node := map[string]string{"node": st.Node}
	return []server.PromMetric{
		{Name: "cdbtune_fleet_members", Help: "Members with a live lease.", Type: "gauge", Value: float64(len(st.Members))},
		{Name: "cdbtune_fleet_failovers_total", Help: "Dead-peer member leases stolen by this node.", Type: "counter", Labels: node, Value: float64(st.Failovers)},
		{Name: "cdbtune_fleet_requeued_total", Help: "Jobs adopted from dead peers.", Type: "counter", Labels: node, Value: float64(st.Requeued)},
		{Name: "cdbtune_fleet_forwarded_total", Help: "Submissions forwarded to their ring owner.", Type: "counter", Labels: node, Value: float64(st.Forwarded)},
		{Name: "cdbtune_fleet_journal_pending", Help: "Non-terminal journal records owned here.", Type: "gauge", Labels: node, Value: float64(st.Pending)},
		{Name: "cdbtune_registry_lease_epoch", Help: "Registry write-lease epoch as last seen here.", Type: "gauge", Labels: node, Value: float64(st.RegistryLeaseEpoch)},
		{Name: "cdbtune_registry_lease_steals_total", Help: "Registry write-lease steals by this node.", Type: "counter", Labels: node, Value: float64(st.RegistryLeaseSteals)},
		{Name: "cdbtune_member_lease_epoch", Help: "This node's member-lease epoch.", Type: "gauge", Labels: node, Value: float64(st.MemberLeaseEpoch)},
	}
}

// Drain puts the node's manager into draining mode without stopping the
// HTTP listener — operators call it ahead of Stop to shed load early.
func (n *Node) Drain(ctx context.Context) error { return n.mgr.Drain(ctx) }
