package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"cdbtune/internal/core"
	"cdbtune/internal/env"
	"cdbtune/internal/knobs"
	"cdbtune/internal/metrics"
	"cdbtune/internal/registry"
	"cdbtune/internal/rl/ddpg"
	"cdbtune/internal/server"
	"cdbtune/internal/simdb"
)

// fastServerConfig is the server test suite's small-network configuration
// — sessions finish in tens of milliseconds against the simulator.
func fastServerConfig(t *testing.T) server.Config {
	t.Helper()
	full := knobs.MySQL(knobs.EngineCDB)
	idx := make([]int, 8)
	for i := range idx {
		idx[i] = i
	}
	cat := full.Subset(idx)
	return server.Config{
		Workers:             2,
		OnlineSteps:         3,
		MinScratchEpisodes:  2,
		MaxScratchEpisodes:  4,
		MaxFineTuneEpisodes: 2,
		ChunkEpisodes:       2,
		ProbeSteps:          2,
		MatchRadius:         0.25,
		Seed:                11,
		Catalog:             cat,
		TunerConfig: func(cat *knobs.Catalog) core.Config {
			cfg := core.DefaultConfig(cat)
			d := ddpg.DefaultConfig(metrics.NumMetrics, cat.Len())
			d.ActorHidden = []int{24, 24}
			d.CriticHidden = []int{32, 24}
			cfg.DDPG = d
			cfg.StepsPerEpisode = 6
			cfg.UpdatesPerStep = 1
			return cfg
		},
		Logf: t.Logf,
	}
}

func startNode(t *testing.T, dir, id string, ttl time.Duration, scfg server.Config) *Node {
	t.Helper()
	n, err := Start(Config{
		ID: id, Dir: dir, LeaseTTL: ttl,
		Server: scfg,
		Logf:   t.Logf,
	})
	if err != nil {
		t.Fatalf("starting %s: %v", id, err)
	}
	t.Cleanup(func() { _ = n.Stop() })
	return n
}

func waitCond(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestRingRouting(t *testing.T) {
	r := NewRing([]string{"n1", "n2", "n3"})
	if r.Len() != 3 {
		t.Fatalf("ring members = %d", r.Len())
	}
	counts := map[string]int{}
	for i := 0; i < 300; i++ {
		owner, ok := r.Owner(fmt.Sprintf("tenant-%d", i))
		if !ok {
			t.Fatal("no owner on populated ring")
		}
		counts[owner]++
	}
	for m, c := range counts {
		if c == 0 {
			t.Fatalf("member %s owns nothing: %v", m, counts)
		}
	}
	// Candidates are distinct and start with the owner.
	cands := r.Candidates("tenant-7", 3)
	if len(cands) != 3 || cands[0] != mustOwner(t, r, "tenant-7") {
		t.Fatalf("candidates %v", cands)
	}
	seen := map[string]bool{}
	for _, c := range cands {
		if seen[c] {
			t.Fatalf("duplicate candidate in %v", cands)
		}
		seen[c] = true
	}
	// Removing one member remaps only its keys.
	r2 := NewRing([]string{"n1", "n3"})
	moved := 0
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("tenant-%d", i)
		before := mustOwner(t, r, key)
		after := mustOwner(t, r2, key)
		if before != "n2" && before != after {
			t.Fatalf("key %s moved %s → %s though %s is still alive", key, before, after, before)
		}
		if before == "n2" {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no keys were owned by n2")
	}
	if _, ok := NewRing(nil).Owner("x"); ok {
		t.Fatal("empty ring must not route")
	}
}

func mustOwner(t *testing.T, r *Ring, key string) string {
	t.Helper()
	o, ok := r.Owner(key)
	if !ok {
		t.Fatalf("no owner for %s", key)
	}
	return o
}

func TestJournalRoundTrip(t *testing.T) {
	j, err := OpenJournal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rec := Record{
		Key: "acme-1", Node: "n1", JobID: "n1-job-0001", State: StateAccepted,
		Request: server.JobRequest{Tenant: "acme", Workload: "sysbench-ro"},
	}
	if err := j.Put(rec); err != nil {
		t.Fatal(err)
	}
	got, ok, err := j.Get("acme-1")
	if err != nil || !ok {
		t.Fatalf("get: %v %v", ok, err)
	}
	if got.Node != "n1" || got.Terminal() {
		t.Fatalf("got %+v", got)
	}
	pend, err := j.PendingOn("n1")
	if err != nil || len(pend) != 1 {
		t.Fatalf("pending: %v %v", pend, err)
	}
	got.State = server.StateDone
	if err := j.Put(got); err != nil {
		t.Fatal(err)
	}
	pend, _ = j.PendingOn("n1")
	if len(pend) != 0 {
		t.Fatalf("terminal record still pending: %v", pend)
	}
	if _, ok, _ := j.Get("never"); ok {
		t.Fatal("missing key resolved")
	}
	if err := j.Put(Record{Key: "../escape"}); err == nil {
		t.Fatal("path-escaping key accepted")
	}
}

// TestRouterRetriesTransientFailures pins the bounded-retry contract: a
// peer answering 503 twice then 202 is retried through; a peer answering
// 429 is NOT retried (it is an answer, not an outage).
func TestRouterRetriesTransientFailures(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusAccepted)
	}))
	defer ts.Close()
	rt := NewRouter(time.Second, 3)
	code, _, err := rt.Post(ts.URL, []byte("{}"))
	if err != nil || code != http.StatusAccepted {
		t.Fatalf("post: %d %v", code, err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("attempts = %d, want 3", got)
	}

	calls.Store(0)
	busy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer busy.Close()
	code, _, err = rt.Post(busy.URL, []byte("{}"))
	if err != nil || code != http.StatusTooManyRequests {
		t.Fatalf("busy post: %d %v", code, err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("429 was retried %d times", got)
	}

	// A dead address exhausts the budget and reports the transport error.
	if _, _, err := rt.Post("http://127.0.0.1:1/none", nil); err == nil {
		t.Fatal("dead peer must error")
	}
}

// TestFleetThreeNodeSmoke runs three in-process nodes over one directory:
// keyed submissions through one node spread across the fleet by
// consistent hash, every job reaches a terminal journal record, duplicate
// submissions converge, and the shared registry verifies clean.
func TestFleetThreeNodeSmoke(t *testing.T) {
	dir := t.TempDir()
	ttl := 300 * time.Millisecond
	n1 := startNode(t, dir, "n1", ttl, fastServerConfig(t))
	n2 := startNode(t, dir, "n2", ttl, fastServerConfig(t))
	n3 := startNode(t, dir, "n3", ttl, fastServerConfig(t))

	waitCond(t, 5*time.Second, "3 live members", func() bool {
		alive, _ := Alive(filepath.Join(dir, "members"))
		return len(alive) == 3
	})

	submit := func(key string) Record {
		body, _ := json.Marshal(SubmitRequest{
			Key:     key,
			Request: server.JobRequest{Tenant: "acme", Workload: "sysbench-ro"},
		})
		resp, err := http.Post("http://"+n1.Addr()+"/fleet/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
			t.Fatalf("submit %s: %d", key, resp.StatusCode)
		}
		var rec Record
		if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
			t.Fatal(err)
		}
		return rec
	}

	keys := make([]string, 6)
	owners := map[string]bool{}
	for i := range keys {
		keys[i] = fmt.Sprintf("acme-task-%d", i)
		rec := submit(keys[i])
		if rec.Key != keys[i] || rec.State != StateAccepted {
			t.Fatalf("submission record %+v", rec)
		}
		owners[rec.Node] = true
	}
	if len(owners) < 2 {
		t.Fatalf("6 keys all landed on one node: %v", owners)
	}

	journal, _ := OpenJournal(filepath.Join(dir, "jobs"))
	waitCond(t, 2*time.Minute, "all jobs terminal", func() bool {
		for _, k := range keys {
			rec, ok, _ := journal.Get(k)
			if !ok || !rec.Terminal() {
				return false
			}
		}
		return true
	})
	for _, k := range keys {
		rec, _, _ := journal.Get(k)
		if rec.State != server.StateDone {
			t.Fatalf("job %s: %s (%s)", k, rec.State, rec.Error)
		}
	}

	// Re-submitting a finished key converges on its record, no new job.
	before := n1.Manager().Metrics().Submitted + n2.Manager().Metrics().Submitted + n3.Manager().Metrics().Submitted
	dup := submit(keys[0])
	if !dup.Terminal() {
		t.Fatalf("duplicate submit re-ran the job: %+v", dup)
	}
	after := n1.Manager().Metrics().Submitted + n2.Manager().Metrics().Submitted + n3.Manager().Metrics().Submitted
	if after != before {
		t.Fatalf("duplicate submit admitted a session (%d → %d)", before, after)
	}

	// GET /fleet/jobs/{key} serves the record from any node.
	resp, err := http.Get("http://" + n3.Addr() + "/fleet/jobs/" + keys[1])
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("journal over HTTP: %d", resp.StatusCode)
	}

	// The shared registry holds CRC-clean models after the run.
	healthy, corrupt := n1.Registry().Verify()
	if healthy == 0 || len(corrupt) != 0 {
		t.Fatalf("registry verify: %d healthy, corrupt %v", healthy, corrupt)
	}
}

// TestFailoverAdoptsDeadNodesJobs pins the failover path deterministically:
// a journal record owned by a member whose lease has expired is adopted by
// a live node — the dead member's lease is stolen (epoch bump), the job
// re-queued locally, and driven to done.
func TestFailoverAdoptsDeadNodesJobs(t *testing.T) {
	dir := t.TempDir()
	ttl := 200 * time.Millisecond
	n1 := startNode(t, dir, "n1", ttl, fastServerConfig(t))

	// A ghost member: lease written once, never renewed — dead after TTL.
	ghost := registry.NewLease(filepath.Join(dir, "members", "ghost.lease"), "ghost", ttl)
	ghost.SetData("127.0.0.1:1")
	if ok, err := ghost.TryAcquire(); err != nil || !ok {
		t.Fatalf("ghost lease: %v %v", ok, err)
	}
	journal, _ := OpenJournal(filepath.Join(dir, "jobs"))
	if err := journal.Put(Record{
		Key: "orphan-1", Node: "ghost", JobID: "ghost-job-0000", State: StateAccepted,
		Request: server.JobRequest{Tenant: "acme", Workload: "sysbench-ro"},
	}); err != nil {
		t.Fatal(err)
	}

	waitCond(t, 10*time.Second, "orphan adopted and finished", func() bool {
		rec, ok, _ := journal.Get("orphan-1")
		return ok && rec.Node == "n1" && rec.State == server.StateDone
	})
	rec, _, _ := journal.Get("orphan-1")
	if rec.Requeues != 1 {
		t.Fatalf("requeues = %d, want 1", rec.Requeues)
	}
	st := n1.Stats()
	if st.Failovers < 1 || st.Requeued < 1 {
		t.Fatalf("failover counters: %+v", st)
	}
	// The steal is recorded in the ghost's lease: owner n1, epoch bumped.
	info, ok, err := registry.ReadLeaseFile(filepath.Join(dir, "members", "ghost.lease"))
	if err != nil || !ok {
		t.Fatalf("ghost lease after steal: %v %v", ok, err)
	}
	if info.Owner != "n1" || info.Epoch != 2 {
		t.Fatalf("ghost lease owner %q epoch %d, want n1/2", info.Owner, info.Epoch)
	}
}

// TestLeaseStallTriggersFailover injects the wedged-process fault: a node
// whose renewals stall past the TTL loses its member lease, a peer adopts
// its still-pending job, and the job completes on the adopter even while
// the stalled process is technically alive.
func TestLeaseStallTriggersFailover(t *testing.T) {
	dir := t.TempDir()
	ttl := 200 * time.Millisecond

	// n2's sessions block at the first instance build until released, so
	// its accepted job is guaranteed still pending when the stall hits.
	blocked := make(chan struct{})
	cfg2 := fastServerConfig(t)
	inner := func(inst simdb.Instance, seed int64) env.Database {
		return simdb.New(knobs.EngineCDB, inst, seed)
	}
	cfg2.MakeDB = func(inst simdb.Instance, seed int64) env.Database {
		<-blocked
		return inner(inst, seed)
	}
	defer close(blocked)

	n1 := startNode(t, dir, "n1", ttl, fastServerConfig(t))
	n2 := startNode(t, dir, "n2", ttl, cfg2)

	waitCond(t, 5*time.Second, "2 live members", func() bool {
		alive, _ := Alive(filepath.Join(dir, "members"))
		return len(alive) == 2
	})

	// Submit straight to n2's local endpoint so the job is owned there.
	body, _ := json.Marshal(SubmitRequest{
		Key:     "stall-1",
		Request: server.JobRequest{Tenant: "acme", Workload: "sysbench-ro"},
	})
	resp, err := http.Post("http://"+n2.Addr()+"/fleet/local", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("local submit: %d", resp.StatusCode)
	}

	// Chaos: stall n2's renewals over the HTTP fault endpoint.
	sbody, _ := json.Marshal(map[string]int{"ms": 5000})
	sresp, err := http.Post("http://"+n2.Addr()+"/fleet/chaos/stall", "application/json", bytes.NewReader(sbody))
	if err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()

	journal, _ := OpenJournal(filepath.Join(dir, "jobs"))
	waitCond(t, 10*time.Second, "stalled node's job adopted by n1", func() bool {
		rec, ok, _ := journal.Get("stall-1")
		return ok && rec.Node == "n1" && rec.State == server.StateDone
	})
	if st := n1.Stats(); st.Failovers < 1 {
		t.Fatalf("n1 recorded no failover: %+v", st)
	}
}

// TestJournalUpdateTerminalWins pins the stamp-back compare-and-swap: an
// Update that finds a terminal record skips its write, so a slow failover
// stamp can never regress a finished job back to accepted.
func TestJournalUpdateTerminalWins(t *testing.T) {
	j, err := OpenJournal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	done := Record{Key: "k", Node: "n1", JobID: "a", State: server.StateDone, Improvement: 0.4}
	if err := j.Put(done); err != nil {
		t.Fatal(err)
	}
	err = j.Update("k", func(cur Record, found bool) (Record, bool) {
		if !found || cur.Terminal() {
			return cur, false
		}
		cur.JobID = "b"
		return cur, true
	})
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err := j.Get("k")
	if err != nil || !ok {
		t.Fatalf("get: %v %v", ok, err)
	}
	if got.JobID != "a" || got.State != server.StateDone || got.Improvement != 0.4 {
		t.Fatalf("terminal record was overwritten: %+v", got)
	}

	// A missing key is reported as found=false and may be created.
	err = j.Update("fresh", func(cur Record, found bool) (Record, bool) {
		if found {
			t.Fatalf("phantom record: %+v", cur)
		}
		cur.Node, cur.State = "n1", StateAccepted
		return cur, true
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, ok, _ := j.Get("fresh"); !ok || got.Node != "n1" || got.Key != "fresh" {
		t.Fatalf("created record: ok=%v %+v", ok, got)
	}
}
