package chaos

import (
	"context"
	"sort"
	"sync"
	"time"
)

// Fleet-level fault kinds: killing a serve process outright (SIGKILL —
// no drain, no lease release) and stalling a process's lease renewals
// past the TTL (alive but apparently dead).
const (
	FleetKill  = "kill"
	FleetStall = "stall"
)

// FleetEvent is one scheduled process-level fault.
type FleetEvent struct {
	// At is the fault's offset from Run's start.
	At time.Duration
	// Kind is FleetKill or FleetStall.
	Kind string
	// Node indexes the target process in the harness's fleet.
	Node int
	// Stall is the renewal-stall duration (FleetStall only).
	Stall time.Duration
}

// FleetPlan is a deterministic schedule of process-level faults — the
// fleet-scale counterpart of the measurement-path Injector. The harness
// supplies the arm that actually kills or stalls a process; the plan
// only owns the timing, so the same schedule drives in-process nodes in
// tests and real processes under cmd/loadgen.
type FleetPlan struct {
	Events []FleetEvent

	mu    sync.Mutex
	fired int
}

// Run fires each event at its offset by calling arm, in At order,
// stopping early when ctx ends. It blocks until the last event fired (or
// ctx ended); run it in a goroutine alongside the load. Fired returns
// how many events have fired so far.
func (p *FleetPlan) Run(ctx context.Context, arm func(FleetEvent)) {
	evs := append([]FleetEvent(nil), p.Events...)
	sort.Slice(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	start := time.Now()
	for _, ev := range evs {
		wait := ev.At - time.Since(start)
		if wait > 0 {
			select {
			case <-ctx.Done():
				return
			case <-time.After(wait):
			}
		} else if ctx.Err() != nil {
			return
		}
		arm(ev)
		p.mu.Lock()
		p.fired++
		p.mu.Unlock()
	}
}

// Fired reports how many events have fired.
func (p *FleetPlan) Fired() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fired
}
