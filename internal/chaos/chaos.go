package chaos

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"cdbtune/internal/env"
	"cdbtune/internal/knobs"
	"cdbtune/internal/simdb"
	"cdbtune/internal/workload"
)

// Config is the fault schedule. Zero-valued fields inject nothing, so the
// zero Config is a no-op wrapper.
type Config struct {
	// Seed fixes the probability draws.
	Seed int64

	// TransientProb is the per-stress-test probability of a transient
	// failure (dropped connection, collector timeout) — the kind
	// env.Measure retries with backoff.
	TransientProb float64

	// ApplyFailProb is the per-deployment probability that ApplyKnobs
	// fails (a restart that times out). The injected error chains to
	// simdb.ErrTransient, so hardened callers may retry the step.
	ApplyFailProb float64

	// StallProb and StallSec inject latency spikes: the stress test
	// succeeds but charges StallSec extra virtual seconds (scaled by a
	// jitter factor in [0.5, 1.5)) through env's Staller hook.
	StallProb float64
	StallSec  float64

	// DropoutProb corrupts the returned state vector: every entry becomes
	// NaN or zero (alternating by draw), simulating a metrics collector
	// that went dark mid-run.
	DropoutProb float64

	// CrashProb injects background crashes (simdb.ErrCrashed) on top of
	// whatever the simulator itself decides.
	CrashProb float64

	// RecoveryFailures makes the first N measurements that follow a
	// ResetDefaults fail transiently — a recovering instance that is not
	// yet accepting connections.
	RecoveryFailures int

	// CrashStormAtRun and CrashStormRuns define a storm window: every
	// stress test whose global 1-based run index falls in
	// [CrashStormAtRun, CrashStormAtRun+CrashStormRuns) crashes.
	// CrashStormAtRun = 0 disables the storm.
	CrashStormAtRun int
	CrashStormRuns  int

	// KillWorkerAtRun makes one stress test (the first whose global run
	// index reaches the value) fail with simdb.ErrWorkerLost — the
	// training server died, not the database. 0 disables.
	KillWorkerAtRun int

	// SpikeProb and SpikeFactor inject corrupted-but-finite measurements:
	// the stress test succeeds and the reported throughput is multiplied
	// by SpikeFactor (latency divided by it). Unlike a NaN dropout this
	// passes every finiteness check, so a quadratic reward function turns
	// it into an enormous reward spike — the learner-side poison the
	// learner-health supervisor exists to detect and heal. SpikeFactor
	// defaults to 100 when SpikeProb > 0.
	SpikeProb   float64
	SpikeFactor float64
}

// Counters reports how many of each fault the injector has fired.
type Counters struct {
	Runs          int // stress tests seen (including injected failures)
	Transients    int
	ApplyFails    int
	Stalls        int
	Dropouts      int
	Crashes       int // injected crashes, storm and background
	RecoveryFails int
	Kills         int
	Spikes        int // corrupted-measurement reward spikes
}

// Injector holds the shared fault schedule. Safe for concurrent use by
// multiple wrapped databases.
type Injector struct {
	cfg Config

	mu             sync.Mutex
	rng            *rand.Rand
	runs           int
	killed         bool
	recoveryBudget int
	ctr            Counters
}

// New builds an injector for the given schedule.
func New(cfg Config) *Injector {
	return &Injector{
		cfg:            cfg,
		rng:            rand.New(rand.NewSource(cfg.Seed)),
		recoveryBudget: cfg.RecoveryFailures,
	}
}

// Counters returns a snapshot of the fault counts so far.
func (in *Injector) Counters() Counters {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.ctr
}

// Wrap interposes the injector between a database and its environment.
func (in *Injector) Wrap(db env.Database) *DB { return &DB{inner: db, in: in} }

// DB is a fault-injecting env.Database. It delegates to the wrapped
// instance except where the schedule says otherwise.
type DB struct {
	inner env.Database
	in    *Injector

	mu         sync.Mutex
	stall      float64 // pending stall seconds, drained via TakeStallSeconds
	recovering bool    // set by ResetDefaults while recovery failures remain
}

var _ env.Database = (*DB)(nil)
var _ env.Staller = (*DB)(nil)

// ApplyKnobs injects deployment failures per Config.ApplyFailProb, else
// delegates. An injected failure leaves the wrapped instance untouched,
// like a restart that timed out before the new configuration took.
func (d *DB) ApplyKnobs(cat *knobs.Catalog, x []float64) (bool, error) {
	if d.in.drawApplyFail() {
		return false, fmt.Errorf("%w: chaos: restart timed out deploying configuration", simdb.ErrTransient)
	}
	return d.inner.ApplyKnobs(cat, x)
}

// ResetDefaults delegates and, when recovery failures remain in the
// budget, arms this instance so its next measurements fail transiently.
func (d *DB) ResetDefaults() {
	d.inner.ResetDefaults()
	d.mu.Lock()
	d.recovering = true
	d.mu.Unlock()
}

// RunWorkload applies the fault schedule: worker kill, crash storm,
// post-reset recovery failures, background crashes, transient failures —
// first match wins — then stalls and metric dropouts on a successful run.
func (d *DB) RunWorkload(w workload.Workload, durationSec float64) (simdb.Result, error) {
	v := d.in.draw(d)
	switch v.kind {
	case faultKill:
		return simdb.Result{}, fmt.Errorf("%w: chaos: training server unreachable", simdb.ErrWorkerLost)
	case faultCrash:
		return simdb.Result{}, fmt.Errorf("%w: chaos: injected crash", simdb.ErrCrashed)
	case faultTransient:
		return simdb.Result{}, fmt.Errorf("%w: chaos: stress-test connection dropped", simdb.ErrTransient)
	}
	res, err := d.inner.RunWorkload(w, durationSec)
	if err != nil {
		return res, err
	}
	if v.stallSec > 0 {
		d.mu.Lock()
		d.stall += v.stallSec
		d.mu.Unlock()
	}
	if v.dropout {
		corrupt := 0.0
		if v.dropoutNaN {
			corrupt = math.NaN()
		}
		for i := range res.State {
			res.State[i] = corrupt
		}
	}
	if v.spike > 0 {
		res.Ext.Throughput *= v.spike
		if res.Ext.Latency99 > 0 {
			res.Ext.Latency99 /= v.spike
		}
	}
	return res, nil
}

// TakeStallSeconds implements env.Staller: it returns and clears the
// extra virtual time the last stall cost. If the wrapped database stalls
// on its own (the LSM engine banks compaction write-stall time), that
// time is drained and charged too — injected and organic stalls compose.
func (d *DB) TakeStallSeconds() float64 {
	d.mu.Lock()
	s := d.stall
	d.stall = 0
	d.mu.Unlock()
	if st, ok := d.inner.(env.Staller); ok {
		s += st.TakeStallSeconds()
	}
	return s
}

// CurrentKnobs delegates.
func (d *DB) CurrentKnobs(cat *knobs.Catalog) []float64 { return d.inner.CurrentKnobs(cat) }

// Instance delegates.
func (d *DB) Instance() simdb.Instance { return d.inner.Instance() }

// KnobValue delegates.
func (d *DB) KnobValue(name string) (float64, bool) { return d.inner.KnobValue(name) }

// Runs delegates.
func (d *DB) Runs() int { return d.inner.Runs() }

// Unwrap returns the wrapped database (tests reach the simulator through
// it).
func (d *DB) Unwrap() env.Database { return d.inner }

type faultKind int

const (
	faultNone faultKind = iota
	faultKill
	faultCrash
	faultTransient
)

type verdict struct {
	kind       faultKind
	stallSec   float64
	dropout    bool
	dropoutNaN bool
	spike      float64 // throughput multiplier, 0 = none
}

// draw advances the global schedule by one stress test and decides what to
// inject.
func (in *Injector) draw(d *DB) verdict {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.runs++
	in.ctr.Runs++
	run := in.runs

	if in.cfg.KillWorkerAtRun > 0 && run >= in.cfg.KillWorkerAtRun && !in.killed {
		in.killed = true
		in.ctr.Kills++
		return verdict{kind: faultKill}
	}
	if in.cfg.CrashStormAtRun > 0 &&
		run >= in.cfg.CrashStormAtRun && run < in.cfg.CrashStormAtRun+in.cfg.CrashStormRuns {
		in.ctr.Crashes++
		return verdict{kind: faultCrash}
	}
	d.mu.Lock()
	recovering := d.recovering
	d.mu.Unlock()
	if recovering {
		if in.recoveryBudget > 0 {
			in.recoveryBudget--
			in.ctr.RecoveryFails++
			in.ctr.Transients++
			return verdict{kind: faultTransient}
		}
		d.mu.Lock()
		d.recovering = false
		d.mu.Unlock()
	}
	if in.cfg.CrashProb > 0 && in.rng.Float64() < in.cfg.CrashProb {
		in.ctr.Crashes++
		return verdict{kind: faultCrash}
	}
	if in.cfg.TransientProb > 0 && in.rng.Float64() < in.cfg.TransientProb {
		in.ctr.Transients++
		return verdict{kind: faultTransient}
	}
	var v verdict
	if in.cfg.StallProb > 0 && in.rng.Float64() < in.cfg.StallProb {
		v.stallSec = in.cfg.StallSec * (0.5 + in.rng.Float64())
		in.ctr.Stalls++
	}
	if in.cfg.DropoutProb > 0 && in.rng.Float64() < in.cfg.DropoutProb {
		v.dropout = true
		v.dropoutNaN = in.rng.Intn(2) == 0
		in.ctr.Dropouts++
	}
	if in.cfg.SpikeProb > 0 && in.rng.Float64() < in.cfg.SpikeProb {
		v.spike = in.cfg.SpikeFactor
		if v.spike <= 0 {
			v.spike = 100
		}
		in.ctr.Spikes++
	}
	return v
}

// drawApplyFail decides whether the next deployment fails.
func (in *Injector) drawApplyFail() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.cfg.ApplyFailProb > 0 && in.rng.Float64() < in.cfg.ApplyFailProb {
		in.ctr.ApplyFails++
		return true
	}
	return false
}
