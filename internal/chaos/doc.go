// Package chaos injects faults into the measurement path of a tuning
// environment. A seeded Injector wraps any env.Database and, on a
// deterministic schedule, makes stress tests fail transiently, stall
// (charging extra virtual time), drop metrics (NaN/zeroed state vectors),
// fail knob deployments, crash in storms, or report the training server
// itself as lost. Every consumer of the measurement path — env retries,
// core's guardrails and worker respawn, the controller's revert logic —
// is tested against this package rather than against hand-written stubs,
// so the failure semantics stay consistent across layers.
//
// One Injector may wrap many databases (e.g. one per training episode):
// the schedule counters — run index, crash-storm window, worker kill —
// are global across every wrapped instance, which is what lets a test
// script "the 7th stress test of this training run crashes" regardless
// of which episode issues it. Probability draws consume one shared seeded
// rng, so a serial run replays identically for a given seed; concurrent
// workers interleave draws nondeterministically (like real outages do).
//
// Above the measurement path, FleetPlan schedules process-level faults —
// SIGKILLing a serve process, stalling its lease renewals past the TTL —
// against a multi-process fleet. The plan owns only the timing; the
// harness (internal/fleet tests, cmd/loadgen) supplies the arm that
// delivers each fault, so one schedule drives both in-process nodes and
// real child processes.
package chaos
