package chaos

import (
	"errors"
	"math"
	"testing"

	"cdbtune/internal/knobs"
	"cdbtune/internal/simdb"
	"cdbtune/internal/simdb/lsm"
	"cdbtune/internal/workload"
)

func newDB() *simdb.DB { return simdb.New(knobs.EngineCDB, simdb.CDBA, 1) }

func TestZeroConfigIsTransparent(t *testing.T) {
	raw := newDB()
	wrapped := New(Config{}).Wrap(raw)
	w := workload.SysbenchRW()
	res, err := wrapped.RunWorkload(w, 150)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ext.Throughput <= 0 {
		t.Fatalf("throughput = %v", res.Ext.Throughput)
	}
	if wrapped.Instance() != raw.Instance() {
		t.Fatal("Instance not delegated")
	}
	if got := wrapped.TakeStallSeconds(); got != 0 {
		t.Fatalf("no stall configured, got %v", got)
	}
	if wrapped.Runs() != raw.Runs() {
		t.Fatal("Runs not delegated")
	}
}

func TestTransientAndCrashInjection(t *testing.T) {
	wrapped := New(Config{Seed: 7, TransientProb: 1}).Wrap(newDB())
	_, err := wrapped.RunWorkload(workload.SysbenchRW(), 150)
	if !errors.Is(err, simdb.ErrTransient) {
		t.Fatalf("err = %v, want ErrTransient", err)
	}
	wrapped = New(Config{Seed: 7, CrashProb: 1}).Wrap(newDB())
	_, err = wrapped.RunWorkload(workload.SysbenchRW(), 150)
	if !errors.Is(err, simdb.ErrCrashed) {
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
}

func TestCrashStormWindow(t *testing.T) {
	in := New(Config{CrashStormAtRun: 2, CrashStormRuns: 3})
	wrapped := in.Wrap(newDB())
	w := workload.SysbenchRW()
	var crashes []int
	for run := 1; run <= 6; run++ {
		_, err := wrapped.RunWorkload(w, 150)
		if errors.Is(err, simdb.ErrCrashed) {
			crashes = append(crashes, run)
		} else if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
	}
	if len(crashes) != 3 || crashes[0] != 2 || crashes[2] != 4 {
		t.Fatalf("storm hit runs %v, want [2 3 4]", crashes)
	}
	if got := in.Counters().Crashes; got != 3 {
		t.Fatalf("Crashes = %d, want 3", got)
	}
}

func TestWorkerKillFiresOnce(t *testing.T) {
	in := New(Config{KillWorkerAtRun: 3})
	wrapped := in.Wrap(newDB())
	w := workload.SysbenchRW()
	var kills int
	for run := 1; run <= 6; run++ {
		_, err := wrapped.RunWorkload(w, 150)
		if errors.Is(err, simdb.ErrWorkerLost) {
			kills++
			if run != 3 {
				t.Fatalf("kill fired at run %d, want 3", run)
			}
		} else if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
	}
	if kills != 1 {
		t.Fatalf("kills = %d, want exactly 1", kills)
	}
	// The kill schedule is global: a second wrapped DB on the same
	// injector must not be killed again.
	other := in.Wrap(newDB())
	if _, err := other.RunWorkload(w, 150); err != nil {
		t.Fatalf("second DB after kill: %v", err)
	}
}

func TestStallAndDropout(t *testing.T) {
	in := New(Config{Seed: 3, StallProb: 1, StallSec: 60, DropoutProb: 1})
	wrapped := in.Wrap(newDB())
	res, err := wrapped.RunWorkload(workload.SysbenchRW(), 150)
	if err != nil {
		t.Fatal(err)
	}
	stall := wrapped.TakeStallSeconds()
	if stall < 30 || stall > 90 {
		t.Fatalf("stall = %v, want 60±50%%", stall)
	}
	if wrapped.TakeStallSeconds() != 0 {
		t.Fatal("TakeStallSeconds must drain the pending stall")
	}
	allSame := true
	for _, v := range res.State {
		if !(v == 0 || math.IsNaN(v)) {
			allSame = false
		}
	}
	if !allSame {
		t.Fatalf("dropout must zero or NaN the state vector: %v", res.State[:4])
	}
	c := in.Counters()
	if c.Stalls != 1 || c.Dropouts != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestApplyFailLeavesKnobsUntouched(t *testing.T) {
	db := newDB()
	wrapped := New(Config{Seed: 1, ApplyFailProb: 1}).Wrap(db)
	cat := db.Catalog()
	x := cat.Defaults(db.Instance().HW.RAMGB, db.Instance().HW.DiskGB)
	x[cat.Index("innodb_buffer_pool_size")] = 0.9
	before, _ := db.KnobValue("innodb_buffer_pool_size")
	_, err := wrapped.ApplyKnobs(cat, x)
	if !errors.Is(err, simdb.ErrTransient) {
		t.Fatalf("err = %v, want transient apply failure", err)
	}
	after, _ := db.KnobValue("innodb_buffer_pool_size")
	if before != after {
		t.Fatal("failed deployment must not change the instance")
	}
}

func TestRecoveryFailureBudget(t *testing.T) {
	in := New(Config{RecoveryFailures: 2})
	wrapped := in.Wrap(newDB())
	w := workload.SysbenchRW()
	if _, err := wrapped.RunWorkload(w, 150); err != nil {
		t.Fatalf("pre-reset run must succeed: %v", err)
	}
	wrapped.ResetDefaults()
	for i := 0; i < 2; i++ {
		if _, err := wrapped.RunWorkload(w, 150); !errors.Is(err, simdb.ErrTransient) {
			t.Fatalf("post-reset run %d: err = %v, want transient", i, err)
		}
	}
	if _, err := wrapped.RunWorkload(w, 150); err != nil {
		t.Fatalf("budget exhausted, run must succeed: %v", err)
	}
	if got := in.Counters().RecoveryFails; got != 2 {
		t.Fatalf("RecoveryFails = %d, want 2", got)
	}
}

func TestDeterministicSchedule(t *testing.T) {
	seq := func() []bool {
		wrapped := New(Config{Seed: 11, TransientProb: 0.4}).Wrap(newDB())
		var out []bool
		for i := 0; i < 20; i++ {
			_, err := wrapped.RunWorkload(workload.SysbenchRW(), 150)
			out = append(out, err != nil)
		}
		return out
	}
	a, b := seq(), seq()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at run %d: %v vs %v", i, a, b)
		}
	}
}

// TestInnerStallerPropagates: a wrapped database that banks its own stall
// time (the LSM engine's compaction write stalls) surfaces it through the
// chaos layer's TakeStallSeconds, composed with injected stalls.
func TestInnerStallerPropagates(t *testing.T) {
	inner := lsm.New(simdb.CDBA, 1)
	cat := inner.Catalog()
	hw := inner.Instance().HW
	x := cat.Defaults(hw.RAMGB, hw.DiskGB)
	starve := func(name string, actual float64) {
		i := cat.Index(name)
		x[i] = cat.Knobs[i].Normalize(actual, hw.RAMGB, hw.DiskGB)
	}
	starve("max_background_compactions", 1)
	starve("level_size_multiplier", 20)
	starve("level0_slowdown_writes_trigger", 12)
	starve("level0_stop_writes_trigger", 14)
	wrapped := New(Config{}).Wrap(inner)
	if _, err := wrapped.ApplyKnobs(cat, x); err != nil {
		t.Fatal(err)
	}
	if _, err := wrapped.RunWorkload(workload.SysbenchWO(), 150); err != nil {
		t.Fatal(err)
	}
	if s := wrapped.TakeStallSeconds(); s <= 0 {
		t.Fatalf("organic stall did not propagate through the chaos wrapper: %v", s)
	}
	if s := wrapped.TakeStallSeconds(); s != 0 {
		t.Fatalf("stall not drained from the inner engine: %v", s)
	}
}
