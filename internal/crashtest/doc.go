// Package crashtest is the systematic power-cut explorer over the repo's
// durable paths. A Workload scripts real mutations — registry puts,
// promotions and evictions, journal submits and terminal updates, lease
// acquires, renewals and steals, checkpoint saves, WAL appends — against
// a vfs.FaultFS, recording an acked fact after each durable operation
// reports success. Explore runs the workload once cleanly to count its
// mutating filesystem operations, then re-runs it with a simulated power
// cut before every single one of them, materializes the surviving disk
// (both the strictly-fsynced image and seeded ext4-like torn variants),
// re-opens it through the normal recovery code paths, and asserts the
// durability contract: every acked fact survives, nothing is wedged, and
// epochs never regress.
//
// The acked-fact discipline is what makes the invariants crisp under
// arbitrary crash points: a workload only records a fact after the call
// that made it durable returned, so the fact is exactly the guarantee the
// caller was given. State the crash interrupted mid-flight is allowed to
// surface or vanish; state that was acked is not negotiable.
//
// The suite's sensitivity is itself tested: re-introducing the registry
// change log's historical torn-tail overwrite bug (via
// registry.DebugSkipTailReclaim) must make exploration report
// violations — a harness that cannot catch a bug it was built for is
// measuring nothing.
package crashtest
