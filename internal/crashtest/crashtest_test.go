package crashtest

import (
	"fmt"
	"os"
	"testing"

	"cdbtune/internal/registry"
	"cdbtune/internal/vfs"
)

// TestCrashSmoke is the bounded, seeded exploration wired into `make
// crash-smoke`: every workload, a power cut before every mutating
// filesystem operation, strict plus two torn images per point, zero
// tolerated violations.
func TestCrashSmoke(t *testing.T) {
	opts := Options{Stride: 1, TornVariants: 2, Seed: 42}
	total := 0
	for _, w := range AllWorkloads() {
		rep, err := Explore(w, opts)
		if err != nil {
			t.Fatalf("explore %s: %v", w.Name, err)
		}
		t.Logf("%s", rep)
		for _, v := range rep.Violations {
			t.Errorf("violation: %s", v)
		}
		total += rep.CrashPoints
	}
	if total < 200 {
		t.Errorf("explored %d crash points across the suite, want >= 200", total)
	}
}

// TestHarnessCatchesTornTailBug proves the detector detects: with the
// change log's historical bug re-introduced (Append overwrites a torn
// tail in place instead of truncating it), exploration must report
// violations. A harness this test fails under is measuring nothing.
func TestHarnessCatchesTornTailBug(t *testing.T) {
	registry.DebugSkipTailReclaim = true
	defer func() { registry.DebugSkipTailReclaim = false }()
	rep, err := Explore(WALWorkload(), Options{Stride: 1, TornVariants: 3, Seed: 7})
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	t.Logf("%s", rep)
	if len(rep.Violations) == 0 {
		t.Fatalf("re-introduced torn-tail overwrite bug was not caught (%d crash points, %d images)",
			rep.CrashPoints, rep.Executions)
	}
}

// TestWALReplayEveryByteOffset is the byte-granular torn-tail property:
// for a crash leaving any byte-length prefix of the final frame on disk,
// replay must return exactly the fully-fsynced preceding records — no
// error, no partial record, nothing dropped.
func TestWALReplayEveryByteOffset(t *testing.T) {
	const path = "/w/x.wal"
	build := vfs.NewFaultFS()
	if err := vfs.MkdirAllDurable(build, "/w", 0o755); err != nil {
		t.Fatal(err)
	}
	log, err := registry.OpenChangeLogFS(build, path)
	if err != nil {
		t.Fatal(err)
	}
	ids := []string{"alpha", "beta", "gamma-with-a-long-payload-so-the-final-frame-spans-a-useful-byte-range-0123456789"}
	for _, id := range ids {
		if _, err := log.Append(registry.Change{Op: registry.OpPut, ID: id, Version: 1}); err != nil {
			t.Fatal(err)
		}
		if id == ids[1] {
			break
		}
	}
	prefix, err := build.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := log.Append(registry.Change{Op: registry.OpPut, ID: ids[2], Version: 1}); err != nil {
		t.Fatal(err)
	}
	full, err := build.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) <= len(prefix) {
		t.Fatalf("final frame added no bytes (%d -> %d)", len(prefix), len(full))
	}

	replay := func(content []byte) ([]registry.Change, error) {
		img := vfs.NewFaultFS()
		if err := vfs.MkdirAllDurable(img, "/w", 0o755); err != nil {
			t.Fatal(err)
		}
		f, err := img.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(content); err != nil {
			t.Fatal(err)
		}
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
		f.Close()
		l, err := registry.OpenChangeLogFS(img, path)
		if err != nil {
			t.Fatal(err)
		}
		return l.Tail()
	}

	for cut := len(prefix); cut < len(full); cut++ {
		recs, err := replay(full[:cut])
		if err != nil {
			t.Fatalf("cut at byte %d: replay error: %v", cut, err)
		}
		if len(recs) != 2 {
			t.Fatalf("cut at byte %d: got %d records, want exactly the 2 complete ones", cut, len(recs))
		}
		for i, id := range ids[:2] {
			if recs[i].ID != id {
				t.Fatalf("cut at byte %d: record %d = %q, want %q", cut, i, recs[i].ID, id)
			}
		}
	}
	recs, err := replay(full)
	if err != nil || len(recs) != 3 {
		t.Fatalf("full log: got %d records (err %v), want 3", len(recs), err)
	}
}

// TestExploreRejectsBrokenWorkload ensures a workload that fails without
// any crash is an error, not a silently empty report.
func TestExploreRejectsBrokenWorkload(t *testing.T) {
	w := Workload{
		Name:   "broken",
		Run:    func(*vfs.FaultFS, *Ack) error { return fmt.Errorf("boom") },
		Verify: func(*vfs.FaultFS, *Ack) error { return nil },
	}
	if _, err := Explore(w, Options{}); err == nil {
		t.Fatal("want clean-run failure surfaced as an error")
	}
}
