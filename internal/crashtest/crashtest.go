package crashtest

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"cdbtune/internal/vfs"
)

// Ack records the facts a workload has been promised are durable: a key
// is Set only after the operation that made it durable returned success.
// Post-crash verification asserts exactly these facts against the
// surviving disk — anything the crash interrupted before its ack is
// allowed to surface or vanish.
type Ack struct {
	mu    sync.Mutex
	facts map[string]string
}

// NewAck returns an empty fact store.
func NewAck() *Ack {
	return &Ack{facts: make(map[string]string)}
}

// Set records (or overwrites) one acked fact.
func (a *Ack) Set(key, val string) {
	a.mu.Lock()
	a.facts[key] = val
	a.mu.Unlock()
}

// Get reports one fact.
func (a *Ack) Get(key string) (string, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	v, ok := a.facts[key]
	return v, ok
}

// Del withdraws a fact — how a workload downgrades a guarantee before an
// operation (eviction, delete) that legitimately destroys the state.
func (a *Ack) Del(key string) {
	a.mu.Lock()
	delete(a.facts, key)
	a.mu.Unlock()
}

// Keys returns the sorted fact keys with the given prefix.
func (a *Ack) Keys(prefix string) []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	var out []string
	for k := range a.facts {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Workload is one scripted durable-path exercise. Run mutates a fresh
// filesystem, acking facts as durable calls succeed; it returns early
// (any error) when the armed power cut fires. Verify opens the post-crash
// disk through the normal recovery paths and asserts the acked facts; an
// error is a durability-contract violation.
type Workload struct {
	Name   string
	Run    func(fsys *vfs.FaultFS, ack *Ack) error
	Verify func(fsys *vfs.FaultFS, ack *Ack) error
}

// Options shape an exploration.
type Options struct {
	// Stride explores every Stride-th crash point (default 1: all).
	Stride int
	// TornVariants is the number of seeded ext4-like torn crash images
	// verified per crash point, in addition to the strictly-fsynced one
	// (default 0: strict only).
	TornVariants int
	// Seed derives the torn-variant RNG seeds.
	Seed int64
	// SectorSize overrides the torn-write granularity (default 512).
	SectorSize int
}

// Violation is one failed post-crash assertion.
type Violation struct {
	Workload   string
	CrashPoint int
	Mode       string // "strict" or "torn-<variant>"
	Op         string // the op the crash fired before ("" when past the end)
	Err        error
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: crash before op %d (%s), %s image: %v", v.Workload, v.CrashPoint, v.Op, v.Mode, v.Err)
}

// Report summarizes one exploration.
type Report struct {
	Workload    string
	CrashPoints int // distinct crash points executed
	Executions  int // post-crash images verified (strict + torn variants)
	Violations  []Violation
}

func (r Report) String() string {
	return fmt.Sprintf("%s: %d crash points, %d images verified, %d violations",
		r.Workload, r.CrashPoints, r.Executions, len(r.Violations))
}

func newFS(opts Options) *vfs.FaultFS {
	fs := vfs.NewFaultFS()
	if opts.SectorSize > 0 {
		fs.SetSectorSize(opts.SectorSize)
	}
	return fs
}

// Explore runs the workload cleanly once (both Run and Verify must
// succeed — a workload broken without any crash measures nothing), then
// re-runs it with a power cut armed before every mutating filesystem
// operation, verifying the strictly-fsynced crash image and, per
// TornVariants, seeded torn images at each point. The workload's own
// errors during a crashed run are expected (the disk died under it) and
// ignored; only Verify failures count.
func Explore(w Workload, opts Options) (Report, error) {
	rep := Report{Workload: w.Name}
	stride := opts.Stride
	if stride < 1 {
		stride = 1
	}

	clean := newFS(opts)
	ack := NewAck()
	if err := w.Run(clean, ack); err != nil {
		return rep, fmt.Errorf("crashtest %s: clean run failed: %w", w.Name, err)
	}
	if err := w.Verify(clean, ack); err != nil {
		return rep, fmt.Errorf("crashtest %s: clean verify failed: %w", w.Name, err)
	}
	n := clean.OpCount()
	if n == 0 {
		return rep, fmt.Errorf("crashtest %s: workload performed no mutating filesystem operations", w.Name)
	}
	ops := clean.Ops()

	for i := 0; i < n; i += stride {
		fs := newFS(opts)
		fs.CrashBefore(i)
		ack := NewAck()
		_ = w.Run(fs, ack) // the power cut makes the run fail; that is the point
		rep.CrashPoints++

		opDesc := ""
		if i < len(ops) {
			opDesc = ops[i].String()
		}
		verify := func(mode string, img *vfs.FaultFS) {
			rep.Executions++
			if err := w.Verify(img, ack); err != nil {
				rep.Violations = append(rep.Violations, Violation{
					Workload: w.Name, CrashPoint: i, Mode: mode, Op: opDesc, Err: err,
				})
			}
		}
		verify("strict", fs.CrashImage())
		for v := 0; v < opts.TornVariants; v++ {
			seed := opts.Seed + int64(i)*1009 + int64(v)
			verify(fmt.Sprintf("torn-%d", v), fs.CrashImageTorn(seed))
		}
	}
	return rep, nil
}

// fakeClock is a hand-advanced clock shared between a FaultFS (file
// mtimes) and lease handles, so TTL expiry and steal-lock staleness are
// deterministic under exploration.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}
