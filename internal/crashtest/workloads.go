package crashtest

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"os"
	"strconv"
	"strings"
	"time"

	"cdbtune/internal/core"
	"cdbtune/internal/fleet"
	"cdbtune/internal/registry"
	"cdbtune/internal/server"
	"cdbtune/internal/vfs"
)

func quietLogf(string, ...any) {}

func itoa(v int64) string { return strconv.FormatInt(v, 10) }

func atoi(s string) int64 {
	v, _ := strconv.ParseInt(s, 10, 64)
	return v
}

// entryModel derives a deterministic model payload for an entry version,
// long enough (>1 sector) that torn materialization can cut it mid-write.
func entryModel(id string, version int) []byte {
	return bytes.Repeat([]byte(fmt.Sprintf("%s.v%d|", id, version)), 96)
}

func entryFact(version int, model []byte) string {
	return fmt.Sprintf("%d|%08x", version, crc32.ChecksumIEEE(model))
}

// RegistryWorkload exercises the full shared-registry stack — write
// lease, write-ahead change log, atomic entry files, promotion, eviction
// and deletion — and asserts after every crash point that acked entries
// survive byte-exact, acked removals stay removed (no resurrection), the
// directory is CRC-clean, the lease epoch never regresses, and a fresh
// process can still write.
func RegistryWorkload() Workload {
	const dir = "/reg"
	fp := []float64{1, 2, 3}
	put := func(s *registry.Shared, ack *Ack, id string, version int) error {
		model := entryModel(id, version)
		m, err := s.Put(registry.Meta{ID: id, Workload: "w", Fingerprint: fp}, model)
		if err != nil {
			return err
		}
		ack.Set("entry:"+m.ID, entryFact(m.Version, model))
		ack.Set("lease:epoch", itoa(s.Lease().Epoch()))
		return nil
	}
	return Workload{
		Name: "registry",
		Run: func(fs *vfs.FaultFS, ack *Ack) error {
			clk := newFakeClock()
			fs.SetClock(clk.Now)
			regOpts := []registry.Option{
				registry.WithFS(fs), registry.WithMaxEntries(3), registry.WithLogf(quietLogf),
			}
			s, err := registry.OpenShared(dir, "node1", regOpts,
				registry.WithLeaseTTL(time.Minute), registry.WithLeaseWait(500*time.Millisecond))
			if err != nil {
				return err
			}
			s.Lease().SetClock(clk.Now)
			for _, id := range []string{"m-a", "m-b", "m-c"} {
				if err := put(s, ack, id, 1); err != nil {
					return err
				}
			}
			if err := s.Promote("m-b"); err != nil {
				return err
			}
			ack.Set("pin:m-b", "1")
			if err := put(s, ack, "m-a", 2); err != nil { // fine-tune update
				return err
			}
			// The next put overflows the 3-entry bound and evicts the
			// lowest-seq unpinned entry. Which one dies is the registry's
			// call, so downgrade the candidates' guarantees first: an
			// evictable entry may be present (intact) or gone, never torn.
			for _, id := range []string{"m-a", "m-c"} {
				if v, ok := ack.Get("entry:" + id); ok {
					ack.Del("entry:" + id)
					ack.Set("evictable:"+id, v)
				}
			}
			if err := put(s, ack, "m-d", 1); err != nil {
				return err
			}
			// The put (and its eviction) is acked: re-promote survivors to
			// hard facts, and pin down the victims as durably gone.
			alive := make(map[string]bool)
			for _, m := range s.List() {
				alive[m.ID] = true
			}
			for _, id := range []string{"m-a", "m-c"} {
				v, ok := ack.Get("evictable:" + id)
				if !ok {
					continue
				}
				ack.Del("evictable:" + id)
				if alive[id] {
					ack.Set("entry:"+id, v)
				} else {
					ack.Set("gone:"+id, "evicted")
				}
			}
			// Operator delete of the pinned entry.
			ack.Del("pin:m-b")
			if v, ok := ack.Get("entry:m-b"); ok {
				ack.Del("entry:m-b")
				ack.Set("evictable:m-b", v)
			}
			if err := s.Delete("m-b"); err != nil {
				return err
			}
			ack.Del("evictable:m-b")
			ack.Set("gone:m-b", "deleted")
			return put(s, ack, "m-e", 1)
		},
		Verify: func(img *vfs.FaultFS, ack *Ack) error {
			future := newFakeClock()
			future.Advance(time.Hour)
			img.SetClock(future.Now)
			regOpts := []registry.Option{
				registry.WithFS(img), registry.WithMaxEntries(16), registry.WithLogf(quietLogf),
			}
			s, err := registry.OpenShared(dir, "recover", regOpts,
				registry.WithLeaseTTL(time.Minute), registry.WithLeaseWait(2*time.Second))
			if err != nil {
				return fmt.Errorf("recovery open: %w", err)
			}
			s.Lease().SetClock(future.Now)
			if _, corrupt := s.Verify(); len(corrupt) > 0 {
				return fmt.Errorf("corrupt entry files after crash: %v", corrupt)
			}
			for _, key := range ack.Keys("entry:") {
				id := strings.TrimPrefix(key, "entry:")
				fact, _ := ack.Get(key)
				wantVer := int(atoi(strings.SplitN(fact, "|", 2)[0]))
				meta, model, err := s.Get(id)
				if err != nil {
					return fmt.Errorf("acked entry %s unreadable: %w", id, err)
				}
				if meta.Version < wantVer {
					return fmt.Errorf("acked entry %s regressed to version %d (acked %d)", id, meta.Version, wantVer)
				}
				if meta.Version == wantVer && entryFact(meta.Version, model) != fact {
					return fmt.Errorf("acked entry %s has wrong bytes at acked version %d", id, wantVer)
				}
			}
			for _, key := range ack.Keys("pin:") {
				id := strings.TrimPrefix(key, "pin:")
				meta, ok := s.Peek(id)
				if !ok {
					return fmt.Errorf("acked pinned entry %s vanished", id)
				}
				if !meta.Pinned {
					return fmt.Errorf("acked promotion of %s lost", id)
				}
			}
			for _, key := range ack.Keys("gone:") {
				id := strings.TrimPrefix(key, "gone:")
				if _, err := img.Stat(dir + "/" + id + ".model"); !os.IsNotExist(err) {
					return fmt.Errorf("removed entry %s resurrected after crash", id)
				}
				if _, ok := s.Peek(id); ok {
					return fmt.Errorf("removed entry %s re-indexed after crash", id)
				}
			}
			// The write path must come back up: lease acquirable, WAL
			// appendable, entry writable.
			if _, err := s.Put(registry.Meta{ID: "probe", Workload: "w", Fingerprint: []float64{1, 2, 3}}, entryModel("probe", 1)); err != nil {
				return fmt.Errorf("post-crash write wedged: %w", err)
			}
			if acked := atoi(func() string { v, _ := ack.Get("lease:epoch"); return v }()); acked > 0 {
				if got := s.Lease().Epoch(); got <= acked {
					return fmt.Errorf("recovery lease epoch %d does not fence acked epoch %d", got, acked)
				}
			}
			return nil
		},
	}
}

// WALWorkload drives the registry change log alone with oversized records
// (frames span sectors, so torn images cut them mid-frame) and asserts
// that replay after any crash yields every acked record, that a torn tail
// never wedges the log, and that the next writer can append.
func WALWorkload() Workload {
	const path = "/wal/registry.wal"
	longID := func(i int) string {
		return fmt.Sprintf("m%02d-%s", i, strings.Repeat("x", 700))
	}
	return Workload{
		Name: "wal",
		Run: func(fs *vfs.FaultFS, ack *Ack) error {
			if err := vfs.MkdirAllDurable(fs, "/wal", 0o755); err != nil {
				return err
			}
			log, err := registry.OpenChangeLogFS(fs, path)
			if err != nil {
				return err
			}
			for i := 0; i < 6; i++ {
				ch, err := log.Append(registry.Change{Op: registry.OpPut, ID: longID(i), Version: 1})
				if err != nil {
					return err
				}
				ack.Set("wal:"+itoa(ch.Seq), ch.ID)
			}
			return nil
		},
		Verify: func(img *vfs.FaultFS, ack *Ack) error {
			// Recovery re-creates the directory tree before opening the
			// log, exactly as a restarting node does.
			if err := vfs.MkdirAllDurable(img, "/wal", 0o755); err != nil {
				return fmt.Errorf("reopen: %w", err)
			}
			log, err := registry.OpenChangeLogFS(img, path)
			if err != nil {
				return fmt.Errorf("reopen: %w", err)
			}
			recs, err := log.Tail()
			if err != nil {
				return fmt.Errorf("replay: %w", err)
			}
			seen := make(map[int64]string, len(recs))
			for _, r := range recs {
				seen[r.Seq] = r.ID
			}
			for _, key := range ack.Keys("wal:") {
				seq := atoi(strings.TrimPrefix(key, "wal:"))
				want, _ := ack.Get(key)
				if seen[seq] != want {
					return fmt.Errorf("acked record seq %d missing or wrong after replay", seq)
				}
			}
			// The log must accept the next writer: append (which reclaims
			// any torn tail first), then prove a second process replays a
			// clean log — acked history plus the new record, no damage.
			probe, err := log.Append(registry.Change{Op: registry.OpPut, ID: "post-crash-probe", Version: 1})
			if err != nil {
				return fmt.Errorf("post-crash append wedged: %w", err)
			}
			fresh, err := registry.OpenChangeLogFS(img, path)
			if err != nil {
				return fmt.Errorf("second reopen: %w", err)
			}
			all, err := fresh.Tail()
			if err != nil {
				return fmt.Errorf("replay after post-crash append: %w", err)
			}
			seen = make(map[int64]string, len(all))
			for _, r := range all {
				seen[r.Seq] = r.ID
			}
			for _, key := range ack.Keys("wal:") {
				seq := atoi(strings.TrimPrefix(key, "wal:"))
				want, _ := ack.Get(key)
				if seen[seq] != want {
					return fmt.Errorf("acked record seq %d damaged by post-crash append", seq)
				}
			}
			if seen[probe.Seq] != probe.ID {
				return fmt.Errorf("post-crash append not replayed")
			}
			return nil
		},
	}
}

// JournalWorkload submits fleet jobs and drives two to their terminal
// state, asserting acked records survive any crash — including the
// crash windows around the journal directory's own creation, which is
// why OpenJournal must fsync the new directory's parent.
func JournalWorkload() Workload {
	const dir = "/fleet/jobs"
	keys := []string{"job-a", "job-b", "job-c"}
	return Workload{
		Name: "journal",
		Run: func(fs *vfs.FaultFS, ack *Ack) error {
			j, err := fleet.OpenJournalFS(fs, dir)
			if err != nil {
				return err
			}
			for _, k := range keys {
				if err := j.Put(fleet.Record{Key: k, Node: "node1", State: fleet.StateAccepted}); err != nil {
					return err
				}
				ack.Set("job:"+k, fleet.StateAccepted)
			}
			for _, k := range keys[:2] {
				err := j.Update(k, func(cur fleet.Record, _ bool) (fleet.Record, bool) {
					cur.Node, cur.State, cur.Improvement = "node1", server.StateDone, 1.25
					return cur, true
				})
				if err != nil {
					return err
				}
				ack.Set("job:"+k, server.StateDone)
			}
			return nil
		},
		Verify: func(img *vfs.FaultFS, ack *Ack) error {
			j, err := fleet.OpenJournalFS(img, dir)
			if err != nil {
				return fmt.Errorf("reopen: %w", err)
			}
			for _, key := range ack.Keys("job:") {
				k := strings.TrimPrefix(key, "job:")
				want, _ := ack.Get(key)
				rec, ok, err := j.Get(k)
				if err != nil {
					return fmt.Errorf("acked record %s unreadable: %w", k, err)
				}
				if !ok {
					return fmt.Errorf("acked record %s vanished", k)
				}
				switch want {
				case server.StateDone:
					if rec.State != server.StateDone {
						return fmt.Errorf("record %s regressed to %q after acked terminal state", k, rec.State)
					}
				default:
					if rec.State != fleet.StateAccepted && rec.State != server.StateDone {
						return fmt.Errorf("record %s in unexpected state %q", k, rec.State)
					}
				}
			}
			if _, err := j.All(); err != nil {
				return fmt.Errorf("post-crash scan wedged: %w", err)
			}
			if err := j.Put(fleet.Record{Key: "probe", Node: "node2", State: fleet.StateAccepted}); err != nil {
				return fmt.Errorf("post-crash write wedged: %w", err)
			}
			return nil
		},
	}
}

// LeaseWorkload drives the lease protocol through its full lifecycle —
// fresh acquire, renewals, TTL expiry, steal (with its exclusive steal
// lock), release, re-steal — and asserts that after any crash the epoch
// never regresses below an acked value, a fresh handle can always
// acquire (reaping crashed stealers' locks), and no lock-file artifacts
// survive recovery.
func LeaseWorkload() Workload {
	const path = "/lease/x.lease"
	const ttl = 50 * time.Millisecond
	return Workload{
		Name: "lease",
		Run: func(fs *vfs.FaultFS, ack *Ack) error {
			clk := newFakeClock()
			fs.SetClock(clk.Now)
			if err := vfs.MkdirAllDurable(fs, "/lease", 0o755); err != nil {
				return err
			}
			alice := registry.NewLeaseFS(fs, path, "alice", ttl)
			alice.SetClock(clk.Now)
			ok, err := alice.TryAcquire()
			if err != nil {
				return err
			}
			if !ok {
				return fmt.Errorf("alice failed to acquire a fresh lease")
			}
			ack.Set("lease:epoch", itoa(alice.Epoch()))
			clk.Advance(10 * time.Millisecond)
			if err := alice.Renew(); err != nil {
				return err
			}
			clk.Advance(3 * ttl) // alice goes silent past her TTL
			bob := registry.NewLeaseFS(fs, path, "bob", ttl)
			bob.SetClock(clk.Now)
			ok, err = bob.TryAcquire()
			if err != nil {
				return err
			}
			if !ok {
				return fmt.Errorf("bob failed to steal the expired lease")
			}
			ack.Set("lease:epoch", itoa(bob.Epoch()))
			clk.Advance(10 * time.Millisecond)
			if err := bob.Release(); err != nil {
				return err
			}
			carol := registry.NewLeaseFS(fs, path, "carol", ttl)
			carol.SetClock(clk.Now)
			ok, err = carol.TryAcquire()
			if err != nil {
				return err
			}
			if !ok {
				return fmt.Errorf("carol failed to take the released lease")
			}
			ack.Set("lease:epoch", itoa(carol.Epoch()))
			return nil
		},
		Verify: func(img *vfs.FaultFS, ack *Ack) error {
			future := newFakeClock()
			future.Advance(time.Hour)
			img.SetClock(future.Now)
			// A restarting node re-creates its directory tree before
			// touching leases (fleet.Start does this for members/).
			if err := vfs.MkdirAllDurable(img, "/lease", 0o755); err != nil {
				return fmt.Errorf("recovery mkdir: %w", err)
			}
			acked := atoi(func() string { v, _ := ack.Get("lease:epoch"); return v }())
			if info, exists, err := registry.ReadLeaseFileFS(img, path); err == nil && exists && info.Epoch < acked {
				return fmt.Errorf("on-disk epoch %d below acked %d", info.Epoch, acked)
			}
			rec := registry.NewLeaseFS(img, path, "recover", ttl)
			rec.SetClock(future.Now)
			acquired := false
			for try := 0; try < 6 && !acquired; try++ {
				ok, err := rec.TryAcquire()
				if err != nil {
					return fmt.Errorf("recovery acquire: %w", err)
				}
				acquired = ok
				// A crashed stealer's lock needs one reap pass plus aging.
				future.Advance(2 * ttl)
			}
			if !acquired {
				return fmt.Errorf("lease wedged: recovery could not acquire")
			}
			if rec.Epoch() <= acked {
				return fmt.Errorf("recovery epoch %d does not fence acked epoch %d", rec.Epoch(), acked)
			}
			if _, err := img.Stat(path + ".steal"); !os.IsNotExist(err) {
				return fmt.Errorf("steal lock left behind after successful recovery")
			}
			if m, _ := img.Glob("/lease/*.reap-*"); len(m) > 0 {
				return fmt.Errorf("reaped lock artifacts left behind: %v", m)
			}
			return nil
		},
	}
}

// CheckpointWorkload saves a training checkpoint repeatedly through the
// exact disk path Checkpointer.save uses and asserts that after any
// crash the file loads clean as either the last acked version or the
// in-flight next one — never torn, never older.
func CheckpointWorkload() Workload {
	const path = "/ckpt/train.ckpt"
	payloadFor := func(v int) []byte {
		return bytes.Repeat([]byte(fmt.Sprintf("ckpt.v%d|", v)), 96)
	}
	return Workload{
		Name: "checkpoint",
		Run: func(fs *vfs.FaultFS, ack *Ack) error {
			if err := vfs.MkdirAllDurable(fs, "/ckpt", 0o755); err != nil {
				return err
			}
			for v := 1; v <= 4; v++ {
				ack.Set("ckpt:next", strconv.Itoa(v)) // in-flight before the write
				if err := core.WriteCheckpointPayload(fs, path, payloadFor(v)); err != nil {
					return err
				}
				ack.Set("ckpt:cur", strconv.Itoa(v))
			}
			return nil
		},
		Verify: func(img *vfs.FaultFS, ack *Ack) error {
			// A restarting trainer re-creates its checkpoint directory
			// before loading.
			if err := vfs.MkdirAllDurable(img, "/ckpt", 0o755); err != nil {
				return fmt.Errorf("recovery mkdir: %w", err)
			}
			payload, found, err := core.ReadCheckpointPayload(img, path)
			if err != nil {
				return fmt.Errorf("checkpoint torn after crash: %w", err)
			}
			cur := int(atoi(func() string { v, _ := ack.Get("ckpt:cur"); return v }()))
			next := int(atoi(func() string { v, _ := ack.Get("ckpt:next"); return v }()))
			if cur > 0 && !found {
				return fmt.Errorf("acked checkpoint v%d vanished", cur)
			}
			if found {
				okPayload := false
				for _, v := range []int{cur, next} {
					if v > 0 && bytes.Equal(payload, payloadFor(v)) {
						okPayload = true
					}
				}
				if !okPayload {
					return fmt.Errorf("recovered checkpoint is neither acked v%d nor in-flight v%d", cur, next)
				}
			}
			// The save path must come back up on the recovered disk.
			if err := core.WriteCheckpointPayload(img, path, payloadFor(99)); err != nil {
				return fmt.Errorf("post-crash save wedged: %w", err)
			}
			if got, _, err := core.ReadCheckpointPayload(img, path); err != nil || !bytes.Equal(got, payloadFor(99)) {
				return fmt.Errorf("post-crash save not readable back: %v", err)
			}
			return nil
		},
	}
}

// AllWorkloads is the standard exploration suite, one workload per
// durable artifact class.
func AllWorkloads() []Workload {
	return []Workload{
		RegistryWorkload(),
		WALWorkload(),
		JournalWorkload(),
		LeaseWorkload(),
		CheckpointWorkload(),
	}
}
