// Package ottertune reimplements the OtterTune baseline [4] the paper
// compares against: a pipelined learning model with (1) Lasso-based knob
// ranking, (2) workload mapping by internal-metric distance against a
// repository of historical tuning sessions, and (3) Gaussian-process
// regression with expected-improvement search to recommend the next
// configuration. A deep-learning variant (Figure 1's "OtterTune with deep
// learning") swaps the GP for a feed-forward network.
package ottertune
