package ottertune

import (
	"testing"

	"cdbtune/internal/dba"
	"cdbtune/internal/env"
	"cdbtune/internal/knobs"
	"cdbtune/internal/metrics"
	"cdbtune/internal/simdb"
	"cdbtune/internal/workload"
)

func newEnv(t *testing.T, w workload.Workload, seed int64) *env.Env {
	t.Helper()
	db := simdb.New(knobs.EngineCDB, simdb.CDBA, seed)
	return env.New(db, db.Catalog(), w)
}

// smallRepo builds a modest repository over two workloads.
func smallRepo(t *testing.T, samples int) *Repository {
	t.Helper()
	envs := []*env.Env{
		newEnv(t, workload.SysbenchRW(), 10),
		newEnv(t, workload.SysbenchRO(), 11),
	}
	repo, err := BuildRepository(envs, samples, dba.Recommend, 1)
	if err != nil {
		t.Fatal(err)
	}
	return repo
}

func TestBuildRepository(t *testing.T) {
	repo := smallRepo(t, 30)
	if len(repo.Sessions) != 2 {
		t.Fatalf("repo has %d sessions, want 2", len(repo.Sessions))
	}
	for _, s := range repo.Sessions {
		if s.X.Rows == 0 || s.X.Rows != len(s.Y) {
			t.Fatalf("session %s has inconsistent data: %d configs, %d labels", s.Workload, s.X.Rows, len(s.Y))
		}
		if len(s.Signature) != metrics.NumMetrics {
			t.Fatalf("signature dim %d", len(s.Signature))
		}
	}
}

func TestMapWorkloadPicksRightSession(t *testing.T) {
	repo := smallRepo(t, 20)
	// A fresh read-write environment must map to the read-write session.
	e := newEnv(t, workload.SysbenchRW(), 12)
	base, err := e.Measure()
	if err != nil {
		t.Fatal(err)
	}
	m := repo.MapWorkload(metrics.Normalize(base.State))
	if m == nil || m.Workload != "sysbench-rw" {
		t.Fatalf("mapped to %v, want sysbench-rw", m)
	}
	// And a read-only one to the read-only session.
	e2 := newEnv(t, workload.SysbenchRO(), 13)
	base2, err := e2.Measure()
	if err != nil {
		t.Fatal(err)
	}
	m2 := repo.MapWorkload(metrics.Normalize(base2.State))
	if m2 == nil || m2.Workload != "sysbench-ro" {
		t.Fatalf("mapped to %v, want sysbench-ro", m2)
	}
}

func TestMapWorkloadEmptyRepo(t *testing.T) {
	r := &Repository{}
	if r.MapWorkload(make([]float64, metrics.NumMetrics)) != nil {
		t.Fatal("empty repository must map to nil")
	}
}

func TestTuneImprovesOverDefault(t *testing.T) {
	repo := smallRepo(t, 40)
	e := newEnv(t, workload.SysbenchRW(), 14)
	base, err := e.Measure()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Candidates = 300
	res, err := Tune(e, repo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestPerf.Throughput <= base.Ext.Throughput {
		t.Fatalf("OtterTune found nothing better than default: %v vs %v",
			res.BestPerf.Throughput, base.Ext.Throughput)
	}
	if len(res.History) != cfg.Steps {
		t.Fatalf("history %d, want %d", len(res.History), cfg.Steps)
	}
}

func TestTuneWithDNNRuns(t *testing.T) {
	repo := smallRepo(t, 25)
	e := newEnv(t, workload.SysbenchRW(), 15)
	cfg := DefaultConfig()
	cfg.Steps = 4
	cfg.Candidates = 120
	cfg.UseDNN = true
	res, err := Tune(e, repo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("DNN variant returned no configuration")
	}
}

func TestRankKnobsPermutation(t *testing.T) {
	// Use a small knob subset so Lasso ranking is fast and meaningful.
	db := simdb.New(knobs.EngineCDB, simdb.CDBA, 16)
	sub := db.Catalog().Subset([]int{0, 1, 3, 5, 9, 16, 30, 40})
	e := env.New(db, sub, workload.SysbenchRW())
	repo, err := BuildRepository([]*env.Env{e}, 60, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	rank, err := repo.RankKnobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(rank) != 8 {
		t.Fatalf("rank len %d", len(rank))
	}
	seen := make(map[int]bool)
	for _, i := range rank {
		if seen[i] {
			t.Fatal("duplicate in ranking")
		}
		seen[i] = true
	}
}

func TestRankKnobsEmptyRepo(t *testing.T) {
	if _, err := (&Repository{}).RankKnobs(); err == nil {
		t.Fatal("empty repo must error")
	}
}

// TestMoreSamplesPlateau reproduces the Figure 1(a)/(b) observation: past
// a modest repository size, more samples stop buying OtterTune better
// recommendations (the pipeline, not data volume, is the bottleneck).
func TestMoreSamplesPlateau(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	perfAt := func(samples int) float64 {
		var sum float64
		for seed := int64(0); seed < 3; seed++ {
			envs := []*env.Env{newEnv(t, workload.SysbenchRW(), 20+seed)}
			repo, err := BuildRepository(envs, samples, dba.Recommend, 3+seed)
			if err != nil {
				t.Fatal(err)
			}
			e := newEnv(t, workload.SysbenchRW(), 30+seed)
			cfg := DefaultConfig()
			cfg.Steps = 5
			cfg.Candidates = 200
			cfg.Seed = seed
			res, err := Tune(e, repo, cfg)
			if err != nil {
				t.Fatal(err)
			}
			sum += res.BestPerf.Throughput
		}
		return sum / 3
	}
	small := perfAt(150)
	large := perfAt(800)
	// 5x the samples may help some, but not transformatively: under 2x.
	if large > small*2 {
		t.Fatalf("sample volume alone transformed OtterTune: %v -> %v", small, large)
	}
}
