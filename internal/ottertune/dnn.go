package ottertune

import (
	"math/rand"

	"cdbtune/internal/mat"
	"cdbtune/internal/nn"
)

// dnnScorer is the "OtterTune with deep learning" variant from Figure 1:
// the pipeline is unchanged but the regression stage is a feed-forward
// network instead of GP regression. It remains a pipelined supervised
// model — the paper's point is that swapping in deep learning does not fix
// the pipeline's reliance on high-quality samples.
type dnnScorer struct {
	net         *nn.Network
	yMean, yStd float64
	rng         *rand.Rand
}

// fitDNN trains a small MLP regressor config → throughput.
func fitDNN(x *mat.Matrix, y []float64, rng *rand.Rand) *dnnScorer {
	d := x.Cols
	net := nn.NewNetwork(
		nn.NewDense(d, 64), nn.NewTanh(),
		nn.NewDense(64, 32), nn.NewTanh(),
		nn.NewDense(32, 1),
	)
	net.InitUniform(rng, 0.2)
	opt := nn.NewAdam(net, 5e-3)

	s := &dnnScorer{net: net, rng: rng}
	s.yMean = mat.Mean(y)
	s.yStd = mat.Stddev(y)
	if s.yStd == 0 {
		s.yStd = 1
	}
	n := x.Rows
	target := mat.New(n, 1)
	for i, v := range y {
		target.Data[i] = (v - s.yMean) / s.yStd
	}
	const epochs = 150
	for ep := 0; ep < epochs; ep++ {
		out := net.Forward(x.Clone(), true)
		_, grad := nn.MSELoss(out, target)
		net.Backward(grad)
		net.ClipGradients(5)
		opt.Step()
	}
	return s
}

// score implements the surrogate interface: predicted mean plus a small
// exploration bonus (the network has no calibrated uncertainty, so the
// bonus is random — one of the variant's structural weaknesses).
func (s *dnnScorer) score(q []float64, best float64) float64 {
	x := mat.FromSlice(1, len(q), append([]float64(nil), q...))
	pred := s.net.Forward(x, false).Data[0]*s.yStd + s.yMean
	return pred - best + 0.05*s.yStd*s.rng.Float64()
}
