package ottertune

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"cdbtune/internal/env"
	"cdbtune/internal/gp"
	"cdbtune/internal/lasso"
	"cdbtune/internal/mat"
	"cdbtune/internal/metrics"
	"cdbtune/internal/simdb"
)

// Session is one historical tuning session: configurations tried on a
// workload, the observed throughput, and the workload's metric signature.
type Session struct {
	Workload string
	X        *mat.Matrix // n×d normalized configurations
	Y        []float64   // throughput per configuration
	// Signature is the normalized internal-metric vector observed under
	// the default configuration, used for workload mapping.
	Signature []float64
}

// Repository is OtterTune's accumulated training data. The paper notes it
// needs large-scale high-quality samples; BuildRepository in this package
// collects them by sampling environments.
type Repository struct {
	Sessions []Session
}

// BuildRepository samples each provided environment factory n times with
// random configurations (plus the expert configuration when expertCfg is
// non-nil, mirroring the 1:20 DBA-data mix of §5) and records a session
// per environment.
func BuildRepository(envs []*env.Env, n int, expertCfg func(*env.Env) []float64, seed int64) (*Repository, error) {
	rng := rand.New(rand.NewSource(seed))
	repo := &Repository{}
	for _, e := range envs {
		base, err := e.Measure()
		if err != nil {
			return nil, fmt.Errorf("ottertune: measuring default: %w", err)
		}
		sess := Session{
			Workload:  e.W.Name,
			Signature: metrics.Normalize(base.State),
		}
		var xs []float64
		var ys []float64
		add := func(x []float64) {
			out, err := e.Step(x)
			if err != nil {
				return // crashed samples carry no label (only crashes occur here)
			}
			xs = append(xs, x...)
			ys = append(ys, out.Ext.Throughput)
		}
		for i := 0; i < n; i++ {
			// Every 20th sample is expert data when available (§5 mixes
			// DBA experience at 1:20).
			if expertCfg != nil && i%20 == 19 {
				add(expertCfg(e))
				continue
			}
			x := make([]float64, e.Dim())
			for j := range x {
				x[j] = rng.Float64()
			}
			add(x)
		}
		if len(ys) == 0 {
			return nil, errors.New("ottertune: every repository sample crashed")
		}
		sess.X = mat.FromSlice(len(ys), e.Dim(), xs)
		sess.Y = ys
		repo.Sessions = append(repo.Sessions, sess)
	}
	return repo, nil
}

// MapWorkload returns the repository session whose metric signature is
// closest (Euclidean) to the observed one, or nil for an empty repository.
func (r *Repository) MapWorkload(signature []float64) *Session {
	var best *Session
	bestD := 0.0
	for i := range r.Sessions {
		d := mat.Dist2(signature, r.Sessions[i].Signature)
		if best == nil || d < bestD {
			best = &r.Sessions[i]
			bestD = d
		}
	}
	return best
}

// RankKnobs orders knob indices by importance using Lasso paths over the
// pooled repository samples — OtterTune's knob-ranking stage and the
// ordering behind Figure 7.
func (r *Repository) RankKnobs() ([]int, error) {
	if len(r.Sessions) == 0 {
		return nil, errors.New("ottertune: empty repository")
	}
	d := r.Sessions[0].X.Cols
	var rows int
	for _, s := range r.Sessions {
		rows += s.X.Rows
	}
	x := mat.New(rows, d)
	y := make([]float64, 0, rows)
	at := 0
	for _, s := range r.Sessions {
		// Standardize throughput within a session so workloads with
		// different scales pool sensibly.
		m, sd := mat.Mean(s.Y), mat.Stddev(s.Y)
		if sd == 0 {
			sd = 1
		}
		for i := 0; i < s.X.Rows; i++ {
			copy(x.Row(at), s.X.Row(i))
			at++
			y = append(y, (s.Y[i]-m)/sd)
		}
	}
	return lasso.RankFeatures(x, y, nil)
}

// Config controls a tuning run.
type Config struct {
	// Steps is the number of recommend-deploy-observe iterations; Table 2
	// gives OtterTune 11 steps per request.
	Steps int
	// Candidates is the EI search width per step.
	Candidates int
	// UseDNN switches the regression model from GP to the feed-forward
	// network (Figure 1's "OtterTune with deep learning").
	UseDNN bool
	// PruneTo, when positive, restricts workload mapping to the PruneTo
	// most informative metrics (the pipeline's metric-pruning stage).
	PruneTo int
	Seed    int64
}

// DefaultConfig mirrors the paper's setup.
func DefaultConfig() Config {
	return Config{Steps: 11, Candidates: 600, Seed: 1}
}

// Result is a tuning outcome.
type Result struct {
	Best     []float64
	BestPerf metrics.External
	History  []metrics.External
	Crashes  int
}

// Tune runs the OtterTune pipeline on the environment: observe, map the
// workload against the repository, then iterate GP/EI recommendations.
func Tune(e *env.Env, repo *Repository, cfg Config) (Result, error) {
	if cfg.Steps <= 0 {
		cfg = DefaultConfig()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var res Result

	base, err := e.Measure()
	if err != nil {
		return res, fmt.Errorf("ottertune: measuring default: %w", err)
	}
	var keep []int
	if cfg.PruneTo > 0 {
		keep = repo.PruneMetrics(cfg.PruneTo)
	}
	mapped := repo.MapWorkloadPruned(metrics.Normalize(base.State), keep)

	// Observation set: mapped-session history plus this session's steps.
	var xs []float64
	var ys []float64
	dim := e.Dim()
	if mapped != nil {
		xs = append(xs, mapped.X.Data...)
		ys = append(ys, mapped.Y...)
	}
	addObs := func(x []float64, tps float64) {
		xs = append(xs, x...)
		ys = append(ys, tps)
	}

	best := e.Default()
	bestPerf := base.Ext
	bestScore := base.Ext.Throughput

	for step := 0; step < cfg.Steps; step++ {
		next := recommend(xs, ys, dim, best, bestScore, cfg, rng)
		out, err := e.Step(next)
		if err != nil {
			if !errors.Is(err, simdb.ErrCrashed) {
				return res, fmt.Errorf("ottertune: step %d: %w", step, err)
			}
			res.Crashes++
			res.History = append(res.History, metrics.External{})
			addObs(next, 0) // a crash is a terrible observation, not a gap
			continue
		}
		res.History = append(res.History, out.Ext)
		addObs(next, out.Ext.Throughput)
		if out.Ext.Throughput > bestScore {
			bestScore = out.Ext.Throughput
			bestPerf = out.Ext
			best = next
		}
	}
	res.Best = best
	res.BestPerf = bestPerf
	return res, nil
}

// recommend fits the surrogate on (xs, ys) and returns the EI-maximizing
// candidate.
func recommend(xs []float64, ys []float64, dim int, incumbent []float64, best float64, cfg Config, rng *rand.Rand) []float64 {
	n := len(ys)
	if n == 0 {
		x := make([]float64, dim)
		for j := range x {
			x[j] = rng.Float64()
		}
		return x
	}
	// Cap the training set: GP is O(n³). Keep the most recent samples —
	// they include this session's observations.
	const maxTrain = 350
	if n > maxTrain {
		xs = xs[(n-maxTrain)*dim:]
		ys = ys[n-maxTrain:]
		n = maxTrain
	}
	x := mat.FromSlice(n, dim, append([]float64(nil), xs...))

	type scorer interface {
		score(q []float64, best float64) float64
	}
	var s scorer
	if cfg.UseDNN {
		s = fitDNN(x, ys, rng)
	} else {
		g, err := gp.Fit(x, ys, gp.Config{})
		if err != nil {
			// Singular kernel (duplicate samples): jitter the noise.
			g, err = gp.Fit(x, ys, gp.Config{NoiseVar: 1e-1})
			if err != nil {
				out := make([]float64, dim)
				for j := range out {
					out[j] = rng.Float64()
				}
				return out
			}
		}
		s = gpScorer{g}
	}

	bestEI := -1.0
	var bestX []float64
	for c := 0; c < cfg.Candidates; c++ {
		q := make([]float64, dim)
		if c%3 == 0 && incumbent != nil {
			// Local perturbation of the incumbent.
			for j := range q {
				q[j] = clamp01(incumbent[j] + 0.15*rng.NormFloat64())
			}
		} else {
			for j := range q {
				q[j] = rng.Float64()
			}
		}
		if ei := s.score(q, best); !math.IsNaN(ei) && ei > bestEI {
			bestEI = ei
			bestX = q
		}
	}
	if bestX == nil {
		// Degenerate surrogate (e.g. NaN scores): fall back to random.
		bestX = make([]float64, dim)
		for j := range bestX {
			bestX[j] = rng.Float64()
		}
	}
	return bestX
}

type gpScorer struct{ g *gp.GP }

func (s gpScorer) score(q []float64, best float64) float64 {
	return s.g.ExpectedImprovement(q, best)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
