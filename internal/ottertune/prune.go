package ottertune

import (
	"math"
	"sort"

	"cdbtune/internal/mat"
	"cdbtune/internal/metrics"
)

// PruneMetrics implements OtterTune's metric-pruning stage in simplified
// form: the original uses factor analysis plus k-means to drop redundant
// metrics before workload mapping; here metrics are ranked by their
// variance across session signatures and greedily deduplicated by
// correlation, returning the indices of the k metrics that carry the most
// independent signal. Workload mapping restricted to these indices is
// faster and less noise-prone.
func (r *Repository) PruneMetrics(k int) []int {
	if k <= 0 || k > metrics.NumMetrics {
		k = metrics.NumMetrics
	}
	n := len(r.Sessions)
	if n == 0 {
		out := make([]int, k)
		for i := range out {
			out[i] = i
		}
		return out
	}
	// Column statistics over the session signatures.
	cols := make([][]float64, metrics.NumMetrics)
	for j := range cols {
		cols[j] = make([]float64, n)
		for i, s := range r.Sessions {
			cols[j][i] = s.Signature[j]
		}
	}
	variance := make([]float64, metrics.NumMetrics)
	for j, c := range cols {
		sd := mat.Stddev(c)
		variance[j] = sd * sd
	}
	order := make([]int, metrics.NumMetrics)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return variance[order[a]] > variance[order[b]] })

	// Greedy selection: skip metrics highly correlated with an already
	// selected one (the factor-analysis dedup, poor man's version).
	var selected []int
	for _, j := range order {
		if len(selected) == k {
			break
		}
		dup := false
		for _, s := range selected {
			if math.Abs(correlation(cols[j], cols[s])) > 0.98 {
				dup = true
				break
			}
		}
		if !dup {
			selected = append(selected, j)
		}
	}
	// Top up with remaining metrics if dedup left fewer than k.
	for _, j := range order {
		if len(selected) == k {
			break
		}
		found := false
		for _, s := range selected {
			if s == j {
				found = true
				break
			}
		}
		if !found {
			selected = append(selected, j)
		}
	}
	sort.Ints(selected)
	return selected
}

// MapWorkloadPruned maps a signature using only the given metric indices.
func (r *Repository) MapWorkloadPruned(signature []float64, keep []int) *Session {
	if len(keep) == 0 {
		return r.MapWorkload(signature)
	}
	var best *Session
	bestD := 0.0
	for i := range r.Sessions {
		var d float64
		for _, j := range keep {
			diff := signature[j] - r.Sessions[i].Signature[j]
			d += diff * diff
		}
		if best == nil || d < bestD {
			best = &r.Sessions[i]
			bestD = d
		}
	}
	return best
}

func correlation(a, b []float64) float64 {
	ma, mb := mat.Mean(a), mat.Mean(b)
	var cov, va, vb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}
