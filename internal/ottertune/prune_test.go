package ottertune

import (
	"testing"

	"cdbtune/internal/metrics"
	"cdbtune/internal/workload"
)

func TestPruneMetricsSelection(t *testing.T) {
	repo := smallRepo(t, 15)
	keep := repo.PruneMetrics(10)
	if len(keep) != 10 {
		t.Fatalf("kept %d metrics, want 10", len(keep))
	}
	seen := map[int]bool{}
	for _, j := range keep {
		if j < 0 || j >= metrics.NumMetrics {
			t.Fatalf("index %d out of range", j)
		}
		if seen[j] {
			t.Fatalf("duplicate index %d", j)
		}
		seen[j] = true
	}
}

func TestPruneMetricsEmptyRepo(t *testing.T) {
	r := &Repository{}
	keep := r.PruneMetrics(5)
	if len(keep) != 5 {
		t.Fatalf("fallback kept %d", len(keep))
	}
}

func TestPruneMetricsDefaultsToAll(t *testing.T) {
	repo := smallRepo(t, 10)
	if got := len(repo.PruneMetrics(0)); got != metrics.NumMetrics {
		t.Fatalf("k=0 kept %d, want all %d", got, metrics.NumMetrics)
	}
	if got := len(repo.PruneMetrics(10_000)); got != metrics.NumMetrics {
		t.Fatalf("oversized k kept %d", got)
	}
}

func TestMapWorkloadPrunedStillDiscriminates(t *testing.T) {
	repo := smallRepo(t, 25)
	keep := repo.PruneMetrics(12)
	e := newEnv(t, workload.SysbenchRW(), 30)
	base, err := e.Measure()
	if err != nil {
		t.Fatal(err)
	}
	m := repo.MapWorkloadPruned(metrics.Normalize(base.State), keep)
	if m == nil || m.Workload != "sysbench-rw" {
		t.Fatalf("pruned mapping picked %v, want sysbench-rw", m)
	}
	// Empty keep falls back to the full-distance mapping.
	m2 := repo.MapWorkloadPruned(metrics.Normalize(base.State), nil)
	if m2 == nil || m2.Workload != "sysbench-rw" {
		t.Fatalf("fallback mapping picked %v", m2)
	}
}

func TestCorrelation(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	if c := correlation(a, a); c < 0.999 {
		t.Fatalf("self correlation = %v", c)
	}
	b := []float64{4, 3, 2, 1}
	if c := correlation(a, b); c > -0.999 {
		t.Fatalf("anti correlation = %v", c)
	}
	flat := []float64{5, 5, 5, 5}
	if c := correlation(a, flat); c != 0 {
		t.Fatalf("constant correlation = %v, want 0", c)
	}
}

func TestTuneWithPruning(t *testing.T) {
	repo := smallRepo(t, 15)
	e := newEnv(t, workload.SysbenchRW(), 31)
	cfg := DefaultConfig()
	cfg.Steps = 2
	cfg.Candidates = 80
	cfg.PruneTo = 12
	res, err := Tune(e, repo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("pruned pipeline returned nothing")
	}
}
