package metrics

import "fmt"

// Kind distinguishes the two metric families the paper describes.
type Kind int

// Metric kinds.
const (
	Gauge   Kind = iota // "state value": averaged over the window
	Counter             // "cumulative value": differenced over the window
)

// Counts fixed by the paper.
const (
	NumMetrics  = 63
	NumGauges   = 14
	NumCounters = 49
)

// Def describes one internal metric. Scale is the soft normalization
// constant: a raw value v maps to v/(v+Scale) ∈ [0,1). Bound, when
// positive, declares a hard upper bound and the metric maps to v/Bound
// clamped to [0,1] instead (used for ratios and percentages).
type Def struct {
	Name  string
	Kind  Kind
	Scale float64
	Bound float64
}

// Defs lists all 63 metrics in canonical order: gauges first, counters
// after, mirroring the layout of the paper's state vector.
var Defs = buildDefs()

func buildDefs() []Def {
	gauges := []Def{
		{Name: "buffer_pool_pages_data", Kind: Gauge, Scale: 100000},
		{Name: "buffer_pool_pages_dirty", Kind: Gauge, Scale: 20000},
		{Name: "buffer_pool_pages_free", Kind: Gauge, Scale: 100000},
		{Name: "buffer_pool_pages_total", Kind: Gauge, Scale: 100000},
		{Name: "buffer_pool_hit_ratio", Kind: Gauge, Bound: 1},
		{Name: "threads_running", Kind: Gauge, Scale: 64},
		{Name: "threads_connected", Kind: Gauge, Scale: 512},
		{Name: "threads_cached", Kind: Gauge, Scale: 64},
		{Name: "open_tables", Kind: Gauge, Scale: 2048},
		{Name: "row_lock_current_waits", Kind: Gauge, Scale: 32},
		{Name: "data_pending_reads", Kind: Gauge, Scale: 64},
		{Name: "data_pending_writes", Kind: Gauge, Scale: 64},
		{Name: "log_pending_fsyncs", Kind: Gauge, Scale: 16},
		{Name: "dirty_page_ratio", Kind: Gauge, Bound: 1},
	}
	counters := []Def{
		{Name: "bytes_received", Kind: Counter, Scale: 5e7},
		{Name: "bytes_sent", Kind: Counter, Scale: 5e7},
		{Name: "com_select", Kind: Counter, Scale: 20000},
		{Name: "com_insert", Kind: Counter, Scale: 20000},
		{Name: "com_update", Kind: Counter, Scale: 20000},
		{Name: "com_delete", Kind: Counter, Scale: 20000},
		{Name: "com_commit", Kind: Counter, Scale: 20000},
		{Name: "com_rollback", Kind: Counter, Scale: 2000},
		{Name: "questions", Kind: Counter, Scale: 50000},
		{Name: "queries", Kind: Counter, Scale: 50000},
		{Name: "slow_queries", Kind: Counter, Scale: 100},
		{Name: "buffer_pool_read_requests", Kind: Counter, Scale: 500000},
		{Name: "buffer_pool_reads", Kind: Counter, Scale: 50000},
		{Name: "buffer_pool_write_requests", Kind: Counter, Scale: 200000},
		{Name: "buffer_pool_pages_flushed", Kind: Counter, Scale: 50000},
		{Name: "buffer_pool_read_ahead", Kind: Counter, Scale: 20000},
		{Name: "buffer_pool_read_ahead_evicted", Kind: Counter, Scale: 5000},
		{Name: "buffer_pool_wait_free", Kind: Counter, Scale: 1000},
		{Name: "data_reads", Kind: Counter, Scale: 100000},
		{Name: "data_writes", Kind: Counter, Scale: 100000},
		{Name: "data_read_bytes", Kind: Counter, Scale: 1e9},
		{Name: "data_written_bytes", Kind: Counter, Scale: 1e9},
		{Name: "data_fsyncs", Kind: Counter, Scale: 20000},
		{Name: "log_writes", Kind: Counter, Scale: 50000},
		{Name: "log_write_requests", Kind: Counter, Scale: 100000},
		{Name: "os_log_written", Kind: Counter, Scale: 5e8},
		{Name: "os_log_fsyncs", Kind: Counter, Scale: 20000},
		{Name: "log_waits", Kind: Counter, Scale: 1000},
		{Name: "pages_created", Kind: Counter, Scale: 20000},
		{Name: "pages_read", Kind: Counter, Scale: 50000},
		{Name: "pages_written", Kind: Counter, Scale: 50000},
		{Name: "rows_read", Kind: Counter, Scale: 2e6},
		{Name: "rows_inserted", Kind: Counter, Scale: 100000},
		{Name: "rows_updated", Kind: Counter, Scale: 100000},
		{Name: "rows_deleted", Kind: Counter, Scale: 100000},
		{Name: "row_lock_waits", Kind: Counter, Scale: 5000},
		{Name: "row_lock_time_ms", Kind: Counter, Scale: 100000},
		{Name: "lock_timeouts", Kind: Counter, Scale: 500},
		{Name: "created_tmp_tables", Kind: Counter, Scale: 10000},
		{Name: "created_tmp_disk_tables", Kind: Counter, Scale: 2000},
		{Name: "created_tmp_files", Kind: Counter, Scale: 500},
		{Name: "handler_read_first", Kind: Counter, Scale: 10000},
		{Name: "handler_read_key", Kind: Counter, Scale: 1e6},
		{Name: "handler_read_next", Kind: Counter, Scale: 1e6},
		{Name: "handler_read_rnd_next", Kind: Counter, Scale: 1e6},
		{Name: "select_scan", Kind: Counter, Scale: 10000},
		{Name: "sort_merge_passes", Kind: Counter, Scale: 2000},
		{Name: "sort_rows", Kind: Counter, Scale: 500000},
		{Name: "table_locks_waited", Kind: Counter, Scale: 1000},
	}
	defs := append(gauges, counters...)
	if len(gauges) != NumGauges || len(counters) != NumCounters || len(defs) != NumMetrics {
		panic(fmt.Sprintf("metrics: definition counts %d+%d=%d, want %d+%d=%d",
			len(gauges), len(counters), len(defs), NumGauges, NumCounters, NumMetrics))
	}
	return defs
}

// Index returns the canonical position of the named metric, or -1.
func Index(name string) int {
	for i, d := range Defs {
		if d.Name == name {
			return i
		}
	}
	return -1
}

// Snapshot is one raw "show status" reading: gauges hold instantaneous
// values, counters hold monotone cumulative totals.
type Snapshot struct {
	Values [NumMetrics]float64
}

// Collector turns a window of periodic snapshots into the paper's state
// vector: gauges are averaged over the window and counters are
// differenced between the last and first snapshot (§2.2.2).
type Collector struct {
	samples []Snapshot
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Add appends one periodic sample.
func (c *Collector) Add(s Snapshot) { c.samples = append(c.samples, s) }

// Reset clears the window.
func (c *Collector) Reset() { c.samples = c.samples[:0] }

// Count reports the number of samples in the window.
func (c *Collector) Count() int { return len(c.samples) }

// State reduces the window to the 63-dimensional raw state vector. It
// panics if no samples were collected.
func (c *Collector) State() []float64 {
	if len(c.samples) == 0 {
		panic("metrics: State with empty collector")
	}
	out := make([]float64, NumMetrics)
	n := float64(len(c.samples))
	first := c.samples[0]
	last := c.samples[len(c.samples)-1]
	for i, d := range Defs {
		switch d.Kind {
		case Gauge:
			var sum float64
			for _, s := range c.samples {
				sum += s.Values[i]
			}
			out[i] = sum / n
		case Counter:
			delta := last.Values[i] - first.Values[i]
			if delta < 0 {
				delta = 0 // counter reset (e.g. after restart)
			}
			out[i] = delta
		}
	}
	return out
}

// Normalize maps a raw state vector into [0,1]^63 for the neural network:
// bounded metrics scale by their bound, unbounded ones through the
// saturating map v/(v+scale).
func Normalize(state []float64) []float64 {
	if len(state) != NumMetrics {
		panic(fmt.Sprintf("metrics: Normalize got %d values, want %d", len(state), NumMetrics))
	}
	out := make([]float64, NumMetrics)
	for i, d := range Defs {
		v := state[i]
		if v < 0 {
			v = 0
		}
		if d.Bound > 0 {
			x := v / d.Bound
			if x > 1 {
				x = 1
			}
			out[i] = x
		} else {
			out[i] = v / (v + d.Scale)
		}
	}
	return out
}

// External captures the two external metrics the reward derives from
// (§2.2.2): throughput in transactions per second and 99th-percentile
// latency in milliseconds.
type External struct {
	Throughput float64
	Latency99  float64
}

// MeanExternal averages periodic external samples, mirroring the
// collector's 5-second sampling and averaging of throughput and latency.
func MeanExternal(samples []External) External {
	if len(samples) == 0 {
		return External{}
	}
	var t, l float64
	for _, s := range samples {
		t += s.Throughput
		l += s.Latency99
	}
	n := float64(len(samples))
	return External{Throughput: t / n, Latency99: l / n}
}
