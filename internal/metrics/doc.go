// Package metrics defines the 63 internal metrics CDBTune uses as the RL
// state (§2.1.1): the statistics "show status" exposes, split into 14
// state values (gauges, averaged over the collection window) and 49
// cumulative values (counters, differenced over the window), exactly the
// processing the paper's metrics collector performs (§2.2.2).
package metrics
