package metrics

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDefCounts(t *testing.T) {
	if len(Defs) != NumMetrics {
		t.Fatalf("got %d defs, want %d", len(Defs), NumMetrics)
	}
	var g, c int
	for _, d := range Defs {
		switch d.Kind {
		case Gauge:
			g++
		case Counter:
			c++
		}
	}
	if g != NumGauges || c != NumCounters {
		t.Fatalf("got %d gauges / %d counters, want %d / %d", g, c, NumGauges, NumCounters)
	}
}

func TestDefNamesUnique(t *testing.T) {
	seen := make(map[string]bool)
	for _, d := range Defs {
		if seen[d.Name] {
			t.Fatalf("duplicate metric %q", d.Name)
		}
		seen[d.Name] = true
	}
}

func TestGaugesBeforeCounters(t *testing.T) {
	for i, d := range Defs {
		if i < NumGauges && d.Kind != Gauge {
			t.Fatalf("Defs[%d] = %s should be a gauge", i, d.Name)
		}
		if i >= NumGauges && d.Kind != Counter {
			t.Fatalf("Defs[%d] = %s should be a counter", i, d.Name)
		}
	}
}

func TestIndex(t *testing.T) {
	if Index("buffer_pool_hit_ratio") != 4 {
		t.Fatalf("Index(buffer_pool_hit_ratio) = %d", Index("buffer_pool_hit_ratio"))
	}
	if Index("nope") != -1 {
		t.Fatal("Index of unknown metric should be -1")
	}
}

func TestCollectorGaugeAveraging(t *testing.T) {
	c := NewCollector()
	for _, v := range []float64{10, 20, 30} {
		var s Snapshot
		s.Values[0] = v // gauge
		c.Add(s)
	}
	st := c.State()
	if st[0] != 20 {
		t.Fatalf("gauge average = %v, want 20", st[0])
	}
}

func TestCollectorCounterDifferencing(t *testing.T) {
	c := NewCollector()
	ci := NumGauges // first counter
	for _, v := range []float64{100, 150, 275} {
		var s Snapshot
		s.Values[ci] = v
		c.Add(s)
	}
	st := c.State()
	if st[ci] != 175 {
		t.Fatalf("counter delta = %v, want 175", st[ci])
	}
}

func TestCollectorCounterResetClamp(t *testing.T) {
	c := NewCollector()
	ci := NumGauges
	var s1, s2 Snapshot
	s1.Values[ci] = 1000
	s2.Values[ci] = 5 // restart reset the counter
	c.Add(s1)
	c.Add(s2)
	if st := c.State(); st[ci] != 0 {
		t.Fatalf("reset counter delta = %v, want 0", st[ci])
	}
}

func TestCollectorPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCollector().State()
}

func TestCollectorReset(t *testing.T) {
	c := NewCollector()
	c.Add(Snapshot{})
	c.Reset()
	if c.Count() != 0 {
		t.Fatalf("Count after Reset = %d", c.Count())
	}
}

func TestNormalizeBounds(t *testing.T) {
	raw := make([]float64, NumMetrics)
	for i := range raw {
		raw[i] = 1e12 // enormous values
	}
	n := Normalize(raw)
	for i, v := range n {
		if v < 0 || v > 1 {
			t.Fatalf("normalized[%d] = %v out of [0,1]", i, v)
		}
	}
	// Zero state maps to zero.
	z := Normalize(make([]float64, NumMetrics))
	for i, v := range z {
		if v != 0 {
			t.Fatalf("normalized zero[%d] = %v", i, v)
		}
	}
}

func TestNormalizeMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := make([]float64, NumMetrics)
		b := make([]float64, NumMetrics)
		for i := range a {
			a[i] = rng.Float64() * 1e6
			b[i] = a[i] * (1 + rng.Float64())
		}
		na, nb := Normalize(a), Normalize(b)
		for i := range na {
			if nb[i] < na[i]-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizePanicsOnWrongLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Normalize([]float64{1, 2, 3})
}

func TestMeanExternal(t *testing.T) {
	m := MeanExternal([]External{
		{Throughput: 100, Latency99: 10},
		{Throughput: 200, Latency99: 30},
	})
	if m.Throughput != 150 || m.Latency99 != 20 {
		t.Fatalf("MeanExternal = %+v", m)
	}
	if z := MeanExternal(nil); z.Throughput != 0 || z.Latency99 != 0 {
		t.Fatalf("MeanExternal(nil) = %+v", z)
	}
}
