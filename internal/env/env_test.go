package env

import (
	"errors"
	"math"
	"testing"

	"cdbtune/internal/knobs"
	"cdbtune/internal/simdb"
	"cdbtune/internal/workload"
)

func newEnv(t *testing.T) *Env {
	t.Helper()
	db := simdb.New(knobs.EngineCDB, simdb.CDBA, 1)
	return New(db, db.Catalog(), workload.SysbenchRW())
}

func TestStepChargesClock(t *testing.T) {
	e := newEnv(t)
	x := e.Default()
	if _, err := e.Step(x); err != nil {
		t.Fatal(err)
	}
	// No knob changed from default → no restart charge.
	want := simdb.DeploySec + simdb.StressTestSec + simdb.MetricsCollectSec
	if math.Abs(e.Clock.Seconds()-want) > 1e-6 {
		t.Fatalf("clock = %v, want %v", e.Clock.Seconds(), want)
	}
	if e.Steps() != 1 {
		t.Fatalf("Steps = %d", e.Steps())
	}
}

func TestStepChargesRestart(t *testing.T) {
	e := newEnv(t)
	x := e.Default()
	x[e.Cat.Index("innodb_buffer_pool_size")] = 0.8
	if _, err := e.Step(x); err != nil {
		t.Fatal(err)
	}
	want := simdb.DeploySec + simdb.RestartSec + simdb.StressTestSec + simdb.MetricsCollectSec
	if math.Abs(e.Clock.Seconds()-want) > 1e-6 {
		t.Fatalf("clock = %v, want %v (restart not charged?)", e.Clock.Seconds(), want)
	}
}

func TestStepCrashCharges(t *testing.T) {
	e := newEnv(t)
	x := e.Default()
	x[e.Cat.Index("innodb_log_file_size")] = 1
	x[e.Cat.Index("innodb_log_files_in_group")] = 1
	_, err := e.Step(x)
	if !errors.Is(err, simdb.ErrCrashed) {
		t.Fatalf("err = %v, want crash", err)
	}
	if e.Clock.Seconds() <= simdb.RestartSec {
		t.Fatal("crash must charge restart time")
	}
}

func TestMeasureDoesNotDeploy(t *testing.T) {
	e := newEnv(t)
	r, err := e.Measure()
	if err != nil {
		t.Fatal(err)
	}
	if r.Ext.Throughput <= 0 {
		t.Fatal("Measure returned no performance")
	}
	want := simdb.StressTestSec + simdb.MetricsCollectSec
	if math.Abs(e.Clock.Seconds()-want) > 1e-6 {
		t.Fatalf("clock = %v, want %v", e.Clock.Seconds(), want)
	}
}

func TestClockUnits(t *testing.T) {
	var c Clock
	c.Charge(120)
	if c.Minutes() != 2 || c.Seconds() != 120 {
		t.Fatalf("clock units wrong: %v s / %v min", c.Seconds(), c.Minutes())
	}
}

func TestNormalizedState(t *testing.T) {
	e := newEnv(t)
	r, err := e.Measure()
	if err != nil {
		t.Fatal(err)
	}
	s := NormalizedState(r.State)
	for i, v := range s {
		if v < 0 || v > 1 {
			t.Fatalf("state[%d] = %v out of [0,1]", i, v)
		}
	}
}

func TestDimMatchesSubset(t *testing.T) {
	db := simdb.New(knobs.EngineCDB, simdb.CDBA, 1)
	sub := db.Catalog().Subset([]int{0, 1, 2})
	e := New(db, sub, workload.TPCC())
	if e.Dim() != 3 {
		t.Fatalf("Dim = %d", e.Dim())
	}
	if len(e.Default()) != 3 {
		t.Fatalf("Default len = %d", len(e.Default()))
	}
}
