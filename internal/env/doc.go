// Package env wraps a simulated database instance, a tunable knob subset
// and a workload into the tuning environment every tuner (CDBTune, DBA,
// OtterTune, BestConfig) acts on. It also keeps the virtual wall clock
// that reproduces the paper's §5.1.1 time accounting: each evaluation
// charges the stress-test, metrics-collection and deployment times, plus
// the two-minute restart when a restart-class knob changed.
//
// The environment is hardened against the failure modes of measuring a
// live cloud database: transient stress-test failures are retried with
// exponential backoff (charged to the clock), non-finite metric vectors
// are sanitized before they reach an agent, and every fault is counted in
// a FaultReport so callers can surface retry/fault telemetry. The
// internal/chaos package injects those failures deterministically for
// tests and resilience experiments.
//
// # Time-varying workloads
//
// Setting Env.Timeline makes the measured workload a function of the
// virtual clock: each stress test runs the timeline's effective workload
// at the simulated hour the clock maps to (workload.Timeline.HourAt),
// sampled once at the start of the measurement window and held for its
// duration. The stationary W field remains the base profile and is what
// a nil-Timeline environment measures, so every existing tuner is
// unaffected. Because the timeline is driven purely by the clock,
// everything that charges virtual time — stress tests, deploys,
// restarts, retry backoffs, injected stalls — also advances the
// workload, which is exactly the cost model dynamic tuning needs: a
// slow re-tune burns simulated hours of a changing day.
package env
