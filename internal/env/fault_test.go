package env_test

import (
	"errors"
	"math"
	"testing"

	"cdbtune/internal/chaos"
	"cdbtune/internal/env"
	"cdbtune/internal/knobs"
	"cdbtune/internal/simdb"
	"cdbtune/internal/workload"
)

func chaosEnv(t *testing.T, cfg chaos.Config) (*env.Env, *chaos.Injector) {
	t.Helper()
	in := chaos.New(cfg)
	db := simdb.New(knobs.EngineCDB, simdb.CDBA, 1)
	return env.New(in.Wrap(db), db.Catalog(), workload.SysbenchRW()), in
}

func TestMeasureRetriesTransientsWithBackoff(t *testing.T) {
	// Two post-reset failures, then success: the default 3-retry budget
	// covers it. RecoveryFailures gives a deterministic failure count.
	e, in := chaosEnv(t, chaos.Config{RecoveryFailures: 2})
	e.DB.ResetDefaults()
	clean := simdb.StressTestSec + simdb.MetricsCollectSec
	res, err := e.Measure()
	if err != nil {
		t.Fatal(err)
	}
	if res.Ext.Throughput <= 0 {
		t.Fatal("retried measurement must return a real result")
	}
	f := e.Faults()
	if f.Transients != 2 || f.Retries != 2 {
		t.Fatalf("faults = %+v, want 2 transients / 2 retries", f)
	}
	// Three stress-test attempts plus two backoff waits; the first wait is
	// RetryBaseSec·[1,1.5), the second doubles the base.
	minClock := 3*clean + e.RetryBaseSec + 2*e.RetryBaseSec
	maxClock := 3*clean + 1.5*(e.RetryBaseSec+2*e.RetryBaseSec)
	if got := e.Clock.Seconds(); got < minClock-1e-6 || got > maxClock+1e-6 {
		t.Fatalf("clock = %v, want in [%v, %v] (backoff not charged?)", got, minClock, maxClock)
	}
	if f.RetrySec <= 0 {
		t.Fatal("RetrySec must record the charged backoff")
	}
	if in.Counters().RecoveryFails != 2 {
		t.Fatalf("injector counters = %+v", in.Counters())
	}
}

func TestMeasureGivesUpAfterRetryBudget(t *testing.T) {
	e, _ := chaosEnv(t, chaos.Config{TransientProb: 1})
	e.MaxRetries = 2
	_, err := e.Measure()
	if !errors.Is(err, simdb.ErrTransient) {
		t.Fatalf("err = %v, want ErrTransient after exhausted retries", err)
	}
	if f := e.Faults(); f.Transients != 3 || f.Retries != 2 {
		t.Fatalf("faults = %+v, want 3 transients / 2 retries", f)
	}
}

func TestApplyErrorDistinctFromCrash(t *testing.T) {
	// Apply-stage failure: wrapped in *env.ApplyError, not a crash.
	e, _ := chaosEnv(t, chaos.Config{ApplyFailProb: 1})
	_, err := e.Step(e.Default())
	var ae *env.ApplyError
	if !errors.As(err, &ae) {
		t.Fatalf("err = %v, want *env.ApplyError", err)
	}
	if errors.Is(err, simdb.ErrCrashed) {
		t.Fatal("apply failure must not look like a crash")
	}

	// Crash during the stress test: ErrCrashed, not an ApplyError.
	e2, _ := chaosEnv(t, chaos.Config{CrashProb: 1})
	_, err = e2.Step(e2.Default())
	if !errors.Is(err, simdb.ErrCrashed) {
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
	if errors.As(err, &ae) {
		t.Fatal("crash must not look like an apply failure")
	}
}

func TestStepSanitizesDropouts(t *testing.T) {
	e, in := chaosEnv(t, chaos.Config{Seed: 5, DropoutProb: 1})
	res, err := e.Step(e.Default())
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.State {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("state[%d] = %v after sanitization", i, v)
		}
	}
	if in.Counters().Dropouts == 0 {
		t.Fatal("dropout was not injected")
	}
	// NaN vectors count as sanitized dropouts; zeroed vectors are already
	// finite and pass through uncounted.
	norm := env.NormalizedState(res.State)
	for i, v := range norm {
		if math.IsNaN(v) {
			t.Fatalf("normalized state[%d] is NaN", i)
		}
	}
}

func TestStallChargesClock(t *testing.T) {
	e, _ := chaosEnv(t, chaos.Config{Seed: 2, StallProb: 1, StallSec: 90})
	clean := simdb.StressTestSec + simdb.MetricsCollectSec
	if _, err := e.Measure(); err != nil {
		t.Fatal(err)
	}
	f := e.Faults()
	if f.Stalls != 1 || f.StallSec <= 0 {
		t.Fatalf("faults = %+v, want one charged stall", f)
	}
	want := clean + f.StallSec
	if math.Abs(e.Clock.Seconds()-want) > 1e-6 {
		t.Fatalf("clock = %v, want %v (stall not charged)", e.Clock.Seconds(), want)
	}
}

func TestRecoverDefaultsSurvivesFlakyRecovery(t *testing.T) {
	// The post-reset measurement fails 3 times; the default retry budget
	// (3 retries = 4 attempts) absorbs it.
	e, _ := chaosEnv(t, chaos.Config{RecoveryFailures: 3})
	res, err := e.RecoverDefaults()
	if err != nil {
		t.Fatalf("RecoverDefaults = %v, want success after retries", err)
	}
	if res.Ext.Throughput <= 0 {
		t.Fatal("recovered measurement is empty")
	}
	if f := e.Faults(); f.Retries != 3 {
		t.Fatalf("faults = %+v, want 3 retries", f)
	}
}

func TestRecoverDefaultsReportsPersistentFailure(t *testing.T) {
	// More failures than the retry budget: the error must surface (the
	// caller — core — decides whether to retry recovery or abandon).
	// 7 failures vs 3 attempts per recovery (1 try + 2 retries): the
	// first two recoveries exhaust their budgets, the third succeeds.
	e, _ := chaosEnv(t, chaos.Config{RecoveryFailures: 7})
	e.MaxRetries = 2
	_, err := e.RecoverDefaults()
	if !errors.Is(err, simdb.ErrTransient) {
		t.Fatalf("err = %v, want ErrTransient", err)
	}
	// A second recovery attempt eats further into the failure budget and
	// eventually succeeds — the retry-the-recovery contract core relies on.
	if _, err := e.RecoverDefaults(); !errors.Is(err, simdb.ErrTransient) {
		t.Fatalf("second recovery: %v", err)
	}
	if res, err := e.RecoverDefaults(); err != nil || res.Ext.Throughput <= 0 {
		t.Fatalf("third recovery: res=%+v err=%v", res.Ext, err)
	}
}
