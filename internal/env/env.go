package env

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"cdbtune/internal/knobs"
	"cdbtune/internal/metrics"
	"cdbtune/internal/simdb"
	"cdbtune/internal/simdb/lsm"
	"cdbtune/internal/workload"
)

// Clock is a virtual wall clock measured in seconds.
type Clock struct{ seconds float64 }

// Charge advances the clock.
func (c *Clock) Charge(sec float64) { c.seconds += sec }

// Seconds reports elapsed virtual time.
func (c *Clock) Seconds() float64 { return c.seconds }

// Minutes reports elapsed virtual time in minutes.
func (c *Clock) Minutes() float64 { return c.seconds / 60 }

// Database is the measurement-path surface the environment drives —
// exactly what Env uses of *simdb.DB. Extracting it lets the chaos layer
// interpose fault injection between the environment and the simulator
// without the tuners noticing.
type Database interface {
	// ApplyKnobs deploys a normalized configuration over the knobs of cat,
	// reporting whether a restart was needed.
	ApplyKnobs(cat *knobs.Catalog, x []float64) (restarted bool, err error)
	// RunWorkload stress-tests the instance and collects metrics.
	RunWorkload(w workload.Workload, durationSec float64) (simdb.Result, error)
	// ResetDefaults restores every knob to its default value.
	ResetDefaults()
	// CurrentKnobs returns the normalized current values of cat's knobs.
	CurrentKnobs(cat *knobs.Catalog) []float64
	// Instance reports the hardware instance.
	Instance() simdb.Instance
	// KnobValue returns the actual value of the named knob.
	KnobValue(name string) (float64, bool)
	// Runs reports how many stress tests have been executed.
	Runs() int
}

// compile-time check: both simulated engine families satisfy the
// extracted surface.
var (
	_ Database = (*simdb.DB)(nil)
	_ Database = (*lsm.DB)(nil)
	_ Staller  = (*lsm.DB)(nil)
)

// OpenEngine constructs a database of the requested engine family on the
// given hardware: EngineLSM is served by the LSM simulator, every other
// engine by the buffer-pool simulator. This is the single dispatch point
// the CLI, the server and the experiment drivers share.
func OpenEngine(e knobs.Engine, inst simdb.Instance, seed int64) Database {
	if e == knobs.EngineLSM {
		return lsm.New(inst, seed)
	}
	return simdb.New(e, inst, seed)
}

// Staller is optionally implemented by fault-injecting databases whose
// last operation stalled: TakeStallSeconds returns (and clears) the extra
// virtual time the stall cost, which the environment charges to its clock.
type Staller interface {
	TakeStallSeconds() float64
}

// ApplyError marks a failure in the knob-deployment stage of a Step, as
// opposed to a crash or measurement failure during the stress test itself.
// Callers distinguish the stages with errors.As; the chained cause stays
// reachable through Unwrap (chaos-injected restart failures chain to
// simdb.ErrTransient, so retry-aware callers can treat them as skippable).
type ApplyError struct{ Err error }

// Error implements error.
func (e *ApplyError) Error() string { return "apply: " + e.Err.Error() }

// Unwrap exposes the underlying deployment failure.
func (e *ApplyError) Unwrap() error { return e.Err }

// FaultReport counts the measurement faults an environment absorbed. All
// counters are cumulative over the environment's lifetime.
type FaultReport struct {
	// Transients counts transient measurement failures observed (each
	// retry attempt that failed counts once).
	Transients int
	// Retries counts backoff-and-retry rounds performed; RetrySec is the
	// virtual backoff time they charged.
	Retries  int
	RetrySec float64
	// Stalls counts latency-spike/stall outcomes; StallSec is the extra
	// virtual time they charged.
	Stalls   int
	StallSec float64
	// Dropouts counts metric vectors that contained non-finite entries and
	// were sanitized before reaching an agent.
	Dropouts int
}

// Add accumulates another report into f.
func (f *FaultReport) Add(o FaultReport) {
	f.Transients += o.Transients
	f.Retries += o.Retries
	f.RetrySec += o.RetrySec
	f.Stalls += o.Stalls
	f.StallSec += o.StallSec
	f.Dropouts += o.Dropouts
}

// Any reports whether any fault was recorded.
func (f FaultReport) Any() bool {
	return f.Transients+f.Retries+f.Stalls+f.Dropouts > 0
}

// Env is one tuning session's environment.
type Env struct {
	DB  Database
	Cat *knobs.Catalog // the tunable subset exposed to the tuner
	W   workload.Workload

	// Timeline, when non-nil, makes the measured workload time-varying:
	// each measurement runs Timeline.At(Hour()) instead of the stationary
	// W (which stays the base profile). See the package doc.
	Timeline *workload.Timeline

	// DurationSec is the stress-test length per evaluation; the paper
	// replays ~150 s of workload (§2.1.2).
	DurationSec float64

	// DeltaScale, when positive, switches the environment to incremental
	// actions: Step input x is a per-knob adjustment and the deployed
	// configuration is current + (x−0.5)·2·DeltaScale, clamped to [0,1].
	// §3.2 notes CDBTune's action adjusts all knobs at a time; the delta
	// mode exists for the DESIGN.md action-representation ablation.
	DeltaScale float64

	// MaxRetries bounds how many times a transient measurement failure is
	// retried before Step/Measure give up and return it; RetryBaseSec is
	// the first backoff delay, doubled per retry with multiplicative
	// jitter, every delay charged to the Clock.
	MaxRetries   int
	RetryBaseSec float64

	Clock *Clock
	steps int

	faults FaultReport
	rng    *rand.Rand      // retry jitter; seeded so runs stay reproducible
	ctx    context.Context // nil = unbound; see Bind
}

// New builds an environment over db, exposing the knobs of cat, driving
// workload w.
func New(db Database, cat *knobs.Catalog, w workload.Workload) *Env {
	return &Env{
		DB: db, Cat: cat, W: w,
		DurationSec:  simdb.StressTestSec,
		MaxRetries:   3,
		RetryBaseSec: 5,
		Clock:        &Clock{},
		rng:          rand.New(rand.NewSource(1)),
	}
}

// Bind attaches a context to the environment's measurement path: Step,
// Measure and RecoverDefaults fail fast with ctx.Err() once the context is
// cancelled or past its deadline, checked on entry and before every retry
// backoff — a stress test mid-flight is never interrupted (the simulator
// is synchronous), but no new measurement or backoff wait starts after
// cancellation. The cancellation error is not a transient fault: it does
// not touch the FaultReport and hardened callers must not retry it. A nil
// ctx unbinds the environment.
func (e *Env) Bind(ctx context.Context) { e.ctx = ctx }

// ctxErr reports the bound context's cancellation state (nil when
// unbound).
func (e *Env) ctxErr() error {
	if e.ctx == nil {
		return nil
	}
	return e.ctx.Err()
}

// Dim is the tunable knob count.
func (e *Env) Dim() int { return e.Cat.Len() }

// Steps reports how many evaluations have been charged.
func (e *Env) Steps() int { return e.steps }

// Faults reports the measurement faults absorbed so far.
func (e *Env) Faults() FaultReport { return e.faults }

// Hour reports the simulated timeline hour the virtual clock currently
// maps to (0 when no timeline is set).
func (e *Env) Hour() float64 {
	if e.Timeline == nil {
		return 0
	}
	return e.Timeline.HourAt(e.Clock.Seconds())
}

// PhaseName reports the timeline segment active right now ("" when no
// timeline is set).
func (e *Env) PhaseName() string {
	if e.Timeline == nil {
		return ""
	}
	return e.Timeline.SegmentAt(e.Hour()).Name
}

// CurrentWorkload is the workload a measurement starting now would run:
// the timeline's effective workload at the current simulated hour, or
// the stationary W without a timeline.
func (e *Env) CurrentWorkload() workload.Workload {
	if e.Timeline == nil {
		return e.W
	}
	return e.Timeline.At(e.Hour())
}

// Default returns the normalized default configuration for this
// environment's hardware.
func (e *Env) Default() []float64 {
	hw := e.DB.Instance().HW
	return e.Cat.Defaults(hw.RAMGB, hw.DiskGB)
}

// Step deploys the normalized configuration x, stress-tests the workload
// and returns the result, charging the virtual clock for deployment,
// restart (when needed), stress testing and metric collection. A failure
// in the deployment stage is wrapped in *ApplyError; a crash returns
// simdb.ErrCrashed (the clock is still charged — the run happened);
// transient measurement failures are retried with backoff before being
// returned.
func (e *Env) Step(x []float64) (simdb.Result, error) {
	if err := e.ctxErr(); err != nil {
		return simdb.Result{}, err
	}
	e.steps++
	if e.DeltaScale > 0 {
		cur := e.DB.CurrentKnobs(e.Cat)
		adj := make([]float64, len(x))
		for i := range x {
			v := cur[i] + (x[i]-0.5)*2*e.DeltaScale
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			adj[i] = v
		}
		x = adj
	}
	restarted, err := e.DB.ApplyKnobs(e.Cat, x)
	if err != nil {
		return simdb.Result{}, &ApplyError{Err: err}
	}
	e.Clock.Charge(simdb.DeploySec)
	if restarted {
		e.Clock.Charge(simdb.RestartSec)
	}
	res, err := e.measure()
	if err != nil {
		if errors.Is(err, simdb.ErrCrashed) {
			// Crashed instances are restarted with the previous sane
			// configuration before the next step.
			e.Clock.Charge(simdb.RestartSec)
		}
		return simdb.Result{}, err
	}
	return res, nil
}

// Measure runs the workload under the current configuration without
// changing knobs (used to observe T0/L0 and the initial state). Transient
// failures are retried like in Step.
func (e *Env) Measure() (simdb.Result, error) {
	return e.measure()
}

// measure runs one stress test, charging the clock, retrying transient
// failures with exponential backoff + jitter, charging stall time, and
// sanitizing the returned state vector.
func (e *Env) measure() (simdb.Result, error) {
	backoff := e.RetryBaseSec
	for attempt := 0; ; attempt++ {
		if err := e.ctxErr(); err != nil {
			return simdb.Result{}, err
		}
		// The workload is sampled at the start of each measurement window
		// and held for its duration; retries re-sample, since their
		// backoff has advanced the clock (and so the timeline).
		res, err := e.DB.RunWorkload(e.CurrentWorkload(), e.DurationSec)
		e.Clock.Charge(e.DurationSec + simdb.MetricsCollectSec)
		if s, ok := e.DB.(Staller); ok {
			if extra := s.TakeStallSeconds(); extra > 0 {
				e.Clock.Charge(extra)
				e.faults.Stalls++
				e.faults.StallSec += extra
			}
		}
		if err == nil && !finiteExternal(res.Ext) {
			// A non-finite throughput/latency reading is useless and, fed
			// to a reward function, poisons the memory pool — treat it as
			// one more flavor of transient measurement failure.
			err = fmt.Errorf("%w: non-finite external metrics", simdb.ErrTransient)
		}
		if err == nil {
			e.sanitizeState(res.State)
			return res, nil
		}
		if !errors.Is(err, simdb.ErrTransient) {
			return simdb.Result{}, err
		}
		e.faults.Transients++
		if attempt >= e.MaxRetries {
			return simdb.Result{}, err
		}
		// Exponential backoff with multiplicative jitter in [1, 1.5),
		// charged to the virtual clock: waiting out a flaky collector
		// costs real time on a real platform.
		wait := backoff * (1 + 0.5*e.rng.Float64())
		e.Clock.Charge(wait)
		e.faults.Retries++
		e.faults.RetrySec += wait
		backoff *= 2
	}
}

// sanitizeState replaces non-finite entries (metric dropouts) with zero so
// downstream normalization and network forward passes stay finite.
func (e *Env) sanitizeState(s []float64) {
	bad := false
	for i, v := range s {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			s[i] = 0
			bad = true
		}
	}
	if bad {
		e.faults.Dropouts++
	}
}

func finiteExternal(ext metrics.External) bool {
	ok := func(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
	return ok(ext.Throughput) && ok(ext.Latency99)
}

// RecoverDefaults restarts a crashed instance with the default
// configuration and re-measures it, charging the clock for the
// measurement. Tuners call it after a crash so the next action conditions
// on the recovered instance's state rather than the stale pre-crash one.
// The post-reset measurement inherits Measure's transient-retry policy;
// when even that fails the error is returned and the caller decides
// whether to retry the whole recovery or abandon the episode.
func (e *Env) RecoverDefaults() (simdb.Result, error) {
	e.DB.ResetDefaults()
	return e.Measure()
}

// NormalizedState converts a raw collector state into the [0,1] vector the
// agents consume.
func NormalizedState(raw []float64) []float64 { return metrics.Normalize(raw) }
