// Package env wraps a simulated database instance, a tunable knob subset
// and a workload into the tuning environment every tuner (CDBTune, DBA,
// OtterTune, BestConfig) acts on. It also keeps the virtual wall clock
// that reproduces the paper's §5.1.1 time accounting: each evaluation
// charges the stress-test, metrics-collection and deployment times, plus
// the two-minute restart when a restart-class knob changed.
package env

import (
	"cdbtune/internal/knobs"
	"cdbtune/internal/metrics"
	"cdbtune/internal/simdb"
	"cdbtune/internal/workload"
)

// Clock is a virtual wall clock measured in seconds.
type Clock struct{ seconds float64 }

// Charge advances the clock.
func (c *Clock) Charge(sec float64) { c.seconds += sec }

// Seconds reports elapsed virtual time.
func (c *Clock) Seconds() float64 { return c.seconds }

// Minutes reports elapsed virtual time in minutes.
func (c *Clock) Minutes() float64 { return c.seconds / 60 }

// Env is one tuning session's environment.
type Env struct {
	DB  *simdb.DB
	Cat *knobs.Catalog // the tunable subset exposed to the tuner
	W   workload.Workload

	// DurationSec is the stress-test length per evaluation; the paper
	// replays ~150 s of workload (§2.1.2).
	DurationSec float64

	// DeltaScale, when positive, switches the environment to incremental
	// actions: Step input x is a per-knob adjustment and the deployed
	// configuration is current + (x−0.5)·2·DeltaScale, clamped to [0,1].
	// §3.2 notes CDBTune's action adjusts all knobs at a time; the delta
	// mode exists for the DESIGN.md action-representation ablation.
	DeltaScale float64

	Clock *Clock
	steps int
}

// New builds an environment over db, exposing the knobs of cat, driving
// workload w.
func New(db *simdb.DB, cat *knobs.Catalog, w workload.Workload) *Env {
	return &Env{DB: db, Cat: cat, W: w, DurationSec: simdb.StressTestSec, Clock: &Clock{}}
}

// Dim is the tunable knob count.
func (e *Env) Dim() int { return e.Cat.Len() }

// Steps reports how many evaluations have been charged.
func (e *Env) Steps() int { return e.steps }

// Default returns the normalized default configuration for this
// environment's hardware.
func (e *Env) Default() []float64 {
	hw := e.DB.Instance().HW
	return e.Cat.Defaults(hw.RAMGB, hw.DiskGB)
}

// Step deploys the normalized configuration x, stress-tests the workload
// and returns the result, charging the virtual clock for deployment,
// restart (when needed), stress testing and metric collection. A crash
// returns simdb.ErrCrashed; the clock is still charged (the run happened).
func (e *Env) Step(x []float64) (simdb.Result, error) {
	e.steps++
	if e.DeltaScale > 0 {
		cur := e.DB.CurrentKnobs(e.Cat)
		adj := make([]float64, len(x))
		for i := range x {
			v := cur[i] + (x[i]-0.5)*2*e.DeltaScale
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			adj[i] = v
		}
		x = adj
	}
	restarted, err := e.DB.ApplyKnobs(e.Cat, x)
	if err != nil {
		return simdb.Result{}, err
	}
	e.Clock.Charge(simdb.DeploySec)
	if restarted {
		e.Clock.Charge(simdb.RestartSec)
	}
	res, err := e.DB.RunWorkload(e.W, e.DurationSec)
	e.Clock.Charge(e.DurationSec + simdb.MetricsCollectSec)
	if err != nil {
		// Crashed instances are restarted with the previous sane
		// configuration before the next step.
		e.Clock.Charge(simdb.RestartSec)
		return simdb.Result{}, err
	}
	return res, nil
}

// Measure runs the workload under the current configuration without
// changing knobs (used to observe T0/L0 and the initial state).
func (e *Env) Measure() (simdb.Result, error) {
	res, err := e.DB.RunWorkload(e.W, e.DurationSec)
	e.Clock.Charge(e.DurationSec + simdb.MetricsCollectSec)
	return res, err
}

// RecoverDefaults restarts a crashed instance with the default
// configuration and re-measures it, charging the clock for the
// measurement. Tuners call it after a crash so the next action conditions
// on the recovered instance's state rather than the stale pre-crash one.
func (e *Env) RecoverDefaults() (simdb.Result, error) {
	e.DB.ResetDefaults()
	return e.Measure()
}

// NormalizedState converts a raw collector state into the [0,1] vector the
// agents consume.
func NormalizedState(raw []float64) []float64 { return metrics.Normalize(raw) }
