package env

import (
	"math"
	"testing"

	"cdbtune/internal/knobs"
	"cdbtune/internal/simdb"
	"cdbtune/internal/workload"
)

func TestTimelineDrivesMeasuredWorkload(t *testing.T) {
	db := simdb.New(knobs.EngineCDB, simdb.CDBA, 1)
	e := New(db, db.Catalog(), workload.SysbenchRW())
	e.Timeline = workload.FlashCrowd(e.W)
	e.DurationSec = simdb.ObserveSec

	if e.PhaseName() != "calm" {
		t.Fatalf("initial phase = %q, want calm", e.PhaseName())
	}
	calm, err := e.Measure()
	if err != nil {
		t.Fatal(err)
	}

	// Advance the clock into the burst phase and confirm the effective
	// workload tracked the timeline. The measurement above already spent
	// virtual time, so charge relative to the hour we are at now.
	e.Clock.Charge((1.5 - e.Hour()) * 3600 / e.Timeline.Scale())
	if got := e.PhaseName(); got != "burst" {
		t.Fatalf("phase after charge = %q, want burst", got)
	}
	cw := e.CurrentWorkload()
	if cw.Threads != 3*e.W.Threads {
		t.Errorf("burst Threads = %d, want %d", cw.Threads, 3*e.W.Threads)
	}
	if math.Abs(e.Hour()-1.5) > 1e-9 {
		t.Errorf("Hour = %v, want 1.5", e.Hour())
	}
	burst, err := e.Measure()
	if err != nil {
		t.Fatal(err)
	}
	// 3× concurrency with a much larger hot set must not look like the
	// calm phase: latency rises under pressure.
	if burst.Ext.Latency99 <= calm.Ext.Latency99 {
		t.Errorf("burst latency %v not above calm latency %v", burst.Ext.Latency99, calm.Ext.Latency99)
	}
}

func TestNilTimelineIsStationary(t *testing.T) {
	e := newEnv(t)
	if e.Hour() != 0 || e.PhaseName() != "" {
		t.Fatalf("stationary env reported Hour=%v Phase=%q", e.Hour(), e.PhaseName())
	}
	if got := e.CurrentWorkload(); got != e.W {
		t.Fatalf("CurrentWorkload = %+v, want base W", got)
	}
	e.Clock.Charge(1e6)
	if got := e.CurrentWorkload(); got != e.W {
		t.Fatalf("CurrentWorkload after charge = %+v, want base W", got)
	}
}
