package env

import (
	"math"
	"testing"

	"cdbtune/internal/knobs"
	"cdbtune/internal/metrics"
	"cdbtune/internal/simdb"
	"cdbtune/internal/workload"
)

// families enumerates one representative of each simulated engine family
// behind the Database surface.
func families() []struct {
	name   string
	engine knobs.Engine
	w      workload.Workload
} {
	return []struct {
		name   string
		engine knobs.Engine
		w      workload.Workload
	}{
		{"btree/cdb", knobs.EngineCDB, workload.SysbenchRW()},
		{"lsm", knobs.EngineLSM, workload.YCSB()},
	}
}

// TestDatabaseConformance drives the same behavioral contract through both
// engine families: knob round-trips, stress-test shape, reset semantics
// and run accounting must be indistinguishable to a tuner.
func TestDatabaseConformance(t *testing.T) {
	for _, f := range families() {
		f := f
		t.Run(f.name, func(t *testing.T) {
			db := OpenEngine(f.engine, simdb.CDBA, 7)
			cat := knobs.ForEngine(f.engine)
			hw := db.Instance().HW

			defaults := cat.Defaults(hw.RAMGB, hw.DiskGB)
			cur := db.CurrentKnobs(cat)
			if len(cur) != cat.Len() {
				t.Fatalf("CurrentKnobs returned %d values for %d knobs", len(cur), cat.Len())
			}
			for i := range cur {
				if math.Abs(cur[i]-defaults[i]) > 1e-9 {
					t.Fatalf("fresh instance not at defaults: knob %s = %v, want %v", cat.Knobs[i].Name, cur[i], defaults[i])
				}
			}

			// A mid-range configuration round-trips through ApplyKnobs →
			// CurrentKnobs up to quantization.
			x := append([]float64(nil), defaults...)
			for i := range x {
				x[i] = 0.5 * (x[i] + 0.5)
			}
			if _, err := db.ApplyKnobs(cat, x); err != nil {
				t.Fatal(err)
			}
			got := db.CurrentKnobs(cat)
			for i, k := range cat.Knobs {
				want := k.Normalize(k.Value(x[i], hw.RAMGB, hw.DiskGB), hw.RAMGB, hw.DiskGB)
				if math.Abs(got[i]-want) > 1e-6 {
					t.Fatalf("knob %s did not round-trip: got %v want %v", k.Name, got[i], want)
				}
			}

			// Knob lookups resolve by name.
			if _, ok := db.KnobValue(cat.Knobs[0].Name); !ok {
				t.Fatalf("KnobValue(%q) not found", cat.Knobs[0].Name)
			}
			if _, ok := db.KnobValue("no_such_knob"); ok {
				t.Fatal("KnobValue invented a knob")
			}

			// ResetDefaults restores the default configuration.
			db.ResetDefaults()
			cur = db.CurrentKnobs(cat)
			for i := range cur {
				if math.Abs(cur[i]-defaults[i]) > 1e-9 {
					t.Fatalf("ResetDefaults left knob %s at %v, want %v", cat.Knobs[i].Name, cur[i], defaults[i])
				}
			}

			// A stress test produces the canonical 63-metric state and sane
			// externals, and increments the run counter.
			runs := db.Runs()
			res, err := db.RunWorkload(f.w, simdb.StressTestSec)
			if err != nil {
				t.Fatal(err)
			}
			if db.Runs() != runs+1 {
				t.Fatalf("Runs() did not advance: %d → %d", runs, db.Runs())
			}
			if len(res.State) != metrics.NumMetrics {
				t.Fatalf("state has %d metrics, want %d", len(res.State), metrics.NumMetrics)
			}
			if res.Ext.Throughput <= 0 || res.Ext.Latency99 <= 0 {
				t.Fatalf("degenerate externals: %+v", res.Ext)
			}
			nonZero := 0
			for _, v := range res.State {
				if v != 0 {
					nonZero++
				}
			}
			if nonZero < metrics.NumMetrics/2 {
				t.Fatalf("only %d/%d metrics move under load", nonZero, metrics.NumMetrics)
			}

			// The environment drives the family end to end: a default step
			// charges deploy + stress + collection, no restart.
			e := New(OpenEngine(f.engine, simdb.CDBA, 7), cat, f.w)
			if _, err := e.Step(e.Default()); err != nil {
				t.Fatal(err)
			}
			want := simdb.DeploySec + simdb.StressTestSec + simdb.MetricsCollectSec
			if math.Abs(e.Clock.Seconds()-want) > 1e-6 {
				t.Fatalf("default step charged %v, want %v", e.Clock.Seconds(), want)
			}
		})
	}
}

// TestLSMStallChargesEnvClock: organic compaction stalls surface through
// env.Staller and charge the environment's virtual clock beyond the plain
// step cost, and are counted as stall faults.
func TestLSMStallChargesEnvClock(t *testing.T) {
	cat := knobs.ForEngine(knobs.EngineLSM)
	db := OpenEngine(knobs.EngineLSM, simdb.CDBA, 7)
	e := New(db, cat, workload.SysbenchWO())
	hw := db.Instance().HW

	x := cat.Defaults(hw.RAMGB, hw.DiskGB)
	starve := func(name string, actual float64) {
		i := cat.Index(name)
		if i < 0 {
			t.Fatalf("no knob %q", name)
		}
		x[i] = cat.Knobs[i].Normalize(actual, hw.RAMGB, hw.DiskGB)
	}
	starve("max_background_compactions", 1)
	starve("level_size_multiplier", 20)
	starve("level0_slowdown_writes_trigger", 12)
	starve("level0_stop_writes_trigger", 14)

	if _, err := e.Step(x); err != nil {
		t.Fatal(err)
	}
	base := simdb.DeploySec + simdb.StressTestSec + simdb.MetricsCollectSec
	if e.Clock.Seconds() <= base {
		t.Fatalf("stall charged nothing: clock %v ≤ base %v", e.Clock.Seconds(), base)
	}
	if f := e.Faults(); f.Stalls == 0 || f.StallSec <= 0 {
		t.Fatalf("stall not counted in FaultReport: %+v", f)
	}
}
