package env

import (
	"testing"

	"cdbtune/internal/knobs"
	"cdbtune/internal/simdb"
	"cdbtune/internal/workload"
)

func TestDeltaScaleAdjustsIncrementally(t *testing.T) {
	db := simdb.New(knobs.EngineCDB, simdb.CDBA, 1)
	cat := db.Catalog().Subset([]int{0}) // buffer pool only
	e := New(db, cat, workload.TPCC())
	e.DeltaScale = 0.1

	start := db.CurrentKnobs(cat)[0]
	// Action 1.0 = maximum positive delta (+0.2 of the normalized range).
	if _, err := e.Step([]float64{1}); err != nil {
		t.Fatal(err)
	}
	after := db.CurrentKnobs(cat)[0]
	moved := after - start
	if moved <= 0 || moved > 0.21 {
		t.Fatalf("delta step moved %v, want ≈+0.2", moved)
	}
	// Action 0.5 = no change.
	if _, err := e.Step([]float64{0.5}); err != nil {
		t.Fatal(err)
	}
	if got := db.CurrentKnobs(cat)[0]; got < after-0.01 || got > after+0.01 {
		t.Fatalf("neutral delta moved the knob: %v -> %v", after, got)
	}
}

func TestDeltaScaleClampsAtBounds(t *testing.T) {
	db := simdb.New(knobs.EngineCDB, simdb.CDBA, 1)
	cat := db.Catalog().Subset([]int{0})
	e := New(db, cat, workload.TPCC())
	e.DeltaScale = 0.5
	for i := 0; i < 10; i++ {
		if _, err := e.Step([]float64{0}); err != nil {
			t.Fatal(err)
		}
	}
	if got := db.CurrentKnobs(cat)[0]; got != 0 {
		t.Fatalf("knob should pin at 0, got %v", got)
	}
}

func TestAbsoluteModeUnaffected(t *testing.T) {
	db := simdb.New(knobs.EngineCDB, simdb.CDBA, 1)
	cat := db.Catalog().Subset([]int{0})
	e := New(db, cat, workload.TPCC()) // DeltaScale zero: absolute
	if _, err := e.Step([]float64{0.8}); err != nil {
		t.Fatal(err)
	}
	got := db.CurrentKnobs(cat)[0]
	if got < 0.77 || got > 0.83 {
		t.Fatalf("absolute step landed at %v, want ≈0.8", got)
	}
}
