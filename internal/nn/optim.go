package nn

import "math"

// Optimizer updates network parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update using the current gradients and then clears
	// them.
	Step()
}

// decayExempt reports whether a parameter is excluded from L2 weight
// decay: bias rows and BatchNorm affine parameters are not weights —
// shrinking gamma/beta toward zero distorts the learned normalization
// instead of regularizing capacity.
func decayExempt(p *Param) bool {
	switch p.Name {
	case "b", "beta", "gamma":
		return true
	}
	return false
}

// SGD is stochastic gradient descent with optional classical momentum and
// L2 weight decay.
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64

	params   []*Param
	velocity [][]float64
}

// NewSGD returns an SGD optimizer over the parameters of net.
func NewSGD(net *Network, lr, momentum float64) *SGD {
	ps := net.Params()
	vel := make([][]float64, len(ps))
	for i, p := range ps {
		vel[i] = make([]float64, len(p.Value.Data))
	}
	return &SGD{LR: lr, Momentum: momentum, params: ps, velocity: vel}
}

// Step implements Optimizer.
func (o *SGD) Step() {
	for i, p := range o.params {
		wd := o.WeightDecay
		if decayExempt(p) {
			wd = 0
		}
		v := o.velocity[i]
		for j := range p.Value.Data {
			g := p.Grad.Data[j] + wd*p.Value.Data[j]
			v[j] = o.Momentum*v[j] - o.LR*g
			p.Value.Data[j] += v[j]
		}
		p.ZeroGrad()
	}
}

// Adam is the Adam optimizer (Kingma & Ba 2015) with optional L2 weight
// decay, the optimizer used for both actor and critic in our DDPG.
type Adam struct {
	LR          float64
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64

	params []*Param
	m, v   [][]float64
	t      int
}

// NewAdam returns an Adam optimizer over the parameters of net with the
// standard moment coefficients (0.9, 0.999).
func NewAdam(net *Network, lr float64) *Adam {
	ps := net.Params()
	m := make([][]float64, len(ps))
	v := make([][]float64, len(ps))
	for i, p := range ps {
		m[i] = make([]float64, len(p.Value.Data))
		v[i] = make([]float64, len(p.Value.Data))
	}
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, params: ps, m: m, v: v}
}

// Reset clears the accumulated first/second moments and the step counter.
// The learner-health supervisor calls it after rolling weights back to a
// snapshot: moments estimated on a diverging trajectory would immediately
// push the restored weights back toward the divergence.
func (o *Adam) Reset() {
	o.t = 0
	for i := range o.m {
		for j := range o.m[i] {
			o.m[i][j] = 0
			o.v[i][j] = 0
		}
	}
}

// Step implements Optimizer.
func (o *Adam) Step() {
	o.t++
	bc1 := 1 - math.Pow(o.Beta1, float64(o.t))
	bc2 := 1 - math.Pow(o.Beta2, float64(o.t))
	for i, p := range o.params {
		wd := o.WeightDecay
		if decayExempt(p) {
			wd = 0
		}
		mi, vi := o.m[i], o.v[i]
		for j := range p.Value.Data {
			g := p.Grad.Data[j] + wd*p.Value.Data[j]
			mi[j] = o.Beta1*mi[j] + (1-o.Beta1)*g
			vi[j] = o.Beta2*vi[j] + (1-o.Beta2)*g*g
			mhat := mi[j] / bc1
			vhat := vi[j] / bc2
			p.Value.Data[j] -= o.LR * mhat / (math.Sqrt(vhat) + o.Eps)
		}
		p.ZeroGrad()
	}
}
