package nn

import "cdbtune/internal/mat"

// MSELoss returns the mean-squared-error between prediction and target,
// together with the gradient of the loss with respect to the prediction.
// Both matrices must have the same shape; the mean is over all elements.
func MSELoss(pred, target *mat.Matrix) (float64, *mat.Matrix) {
	if pred.Rows != target.Rows || pred.Cols != target.Cols {
		panic("nn: MSELoss shape mismatch")
	}
	n := float64(len(pred.Data))
	grad := mat.New(pred.Rows, pred.Cols)
	var loss float64
	for i := range pred.Data {
		d := pred.Data[i] - target.Data[i]
		loss += d * d
		grad.Data[i] = 2 * d / n
	}
	return loss / n, grad
}

// HuberLoss returns the mean Huber (smooth-L1) loss with threshold delta
// and its gradient with respect to pred. DQN training traditionally uses
// this to bound the effect of large TD errors.
func HuberLoss(pred, target *mat.Matrix, delta float64) (float64, *mat.Matrix) {
	if pred.Rows != target.Rows || pred.Cols != target.Cols {
		panic("nn: HuberLoss shape mismatch")
	}
	n := float64(len(pred.Data))
	grad := mat.New(pred.Rows, pred.Cols)
	var loss float64
	for i := range pred.Data {
		d := pred.Data[i] - target.Data[i]
		a := d
		if a < 0 {
			a = -a
		}
		if a <= delta {
			loss += 0.5 * d * d
			grad.Data[i] = d / n
		} else {
			loss += delta * (a - 0.5*delta)
			if d > 0 {
				grad.Data[i] = delta / n
			} else {
				grad.Data[i] = -delta / n
			}
		}
	}
	return loss / n, grad
}
