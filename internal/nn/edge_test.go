package nn

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"cdbtune/internal/mat"
)

func TestBatchNormSingleSampleTrainingFallsBackToRunningStats(t *testing.T) {
	bn := NewBatchNorm(2)
	bn.RunningMean = []float64{1, 2}
	bn.RunningVar = []float64{4, 9}
	x := mat.FromSlice(1, 2, []float64{3, 8})
	// Batch of one in training mode cannot compute batch statistics.
	y := bn.Forward(x, true)
	want := []float64{(3.0 - 1) / 2, (8.0 - 2) / 3}
	for i := range want {
		if math.Abs(y.Data[i]-want[i]) > 1e-3 {
			t.Fatalf("y[%d] = %v, want %v", i, y.Data[i], want[i])
		}
	}
	// Backward in that mode treats the stats as constants and must not
	// panic or return NaN.
	grad := mat.FromSlice(1, 2, []float64{1, 1})
	dx := bn.Backward(grad)
	for _, v := range dx.Data {
		if math.IsNaN(v) {
			t.Fatal("NaN gradient in eval-mode backward")
		}
	}
}

func TestDropoutZeroProbabilityIsIdentity(t *testing.T) {
	d := NewDropout(0, rand.New(rand.NewSource(1)))
	x := mat.FromSlice(2, 2, []float64{1, 2, 3, 4})
	y := d.Forward(x, true)
	for i := range x.Data {
		if y.Data[i] != x.Data[i] {
			t.Fatal("p=0 dropout changed values")
		}
	}
	g := mat.FromSlice(2, 2, []float64{5, 6, 7, 8})
	back := d.Backward(g)
	for i := range g.Data {
		if back.Data[i] != g.Data[i] {
			t.Fatal("p=0 dropout changed gradient")
		}
	}
}

func TestMSELossShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MSELoss(mat.New(2, 2), mat.New(2, 3))
}

func TestHuberLossShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	HuberLoss(mat.New(1, 2), mat.New(2, 1), 1)
}

func TestLoadTruncatedStream(t *testing.T) {
	n := NewNetwork(NewDense(2, 2))
	if err := n.Load(strings.NewReader("")); err == nil {
		t.Fatal("empty stream must error")
	}
}

func TestLoadWrongParamShape(t *testing.T) {
	src := NewNetwork(NewDense(2, 3))
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	dst := NewNetwork(NewDense(3, 2))
	if err := dst.Load(&buf); err == nil {
		t.Fatal("mismatched parameter shapes must error")
	}
}

func TestSoftUpdateMismatchedPanics(t *testing.T) {
	a := NewNetwork(NewDense(2, 2))
	b := NewNetwork(NewDense(2, 2), NewDense(2, 2))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.SoftUpdateFrom(b, 0.5)
}

func TestClipGradientsDisabled(t *testing.T) {
	n := NewNetwork(NewDense(2, 2))
	for _, p := range n.Params() {
		p.Grad.Fill(100)
	}
	n.ClipGradients(0) // disabled
	if n.Params()[0].Grad.Data[0] != 100 {
		t.Fatal("maxNorm<=0 must not clip")
	}
}

func TestAdamWeightDecayShrinksIdleWeights(t *testing.T) {
	n := NewNetwork(NewDense(1, 1))
	d := n.Layers[0].(*Dense)
	d.W.Value.Fill(10)
	opt := NewAdam(n, 0.1)
	opt.WeightDecay = 1
	for i := 0; i < 50; i++ {
		// Zero task gradient: only decay acts.
		opt.Step()
	}
	if math.Abs(d.W.Value.Data[0]) >= 10 {
		t.Fatalf("weight decay inert: %v", d.W.Value.Data[0])
	}
}

func TestSGDWeightDecay(t *testing.T) {
	n := NewNetwork(NewDense(1, 1))
	d := n.Layers[0].(*Dense)
	d.W.Value.Fill(10)
	opt := NewSGD(n, 0.1, 0)
	opt.WeightDecay = 0.5
	opt.Step()
	// w ← w − lr·decay·w = 10 − 0.1·0.5·10 = 9.5
	if math.Abs(d.W.Value.Data[0]-9.5) > 1e-12 {
		t.Fatalf("w = %v, want 9.5", d.W.Value.Data[0])
	}
}
