package nn

import (
	"math"
	"math/rand"
	"testing"

	"cdbtune/internal/mat"
)

// TestBatchNormRunningVarUnbiased is the regression test for the biased
// running-variance bug: the running estimate must fold in the unbiased
// (÷N−1) batch variance, not the biased (÷N) one used for in-batch
// normalization.
func TestBatchNormRunningVarUnbiased(t *testing.T) {
	bn := NewBatchNorm(1)
	bn.Momentum = 1 // running stats = exactly this batch's estimate

	// Batch {0,2,4,6}: mean 3, biased variance 5, unbiased variance 20/3.
	x := mat.FromSlice(4, 1, []float64{0, 2, 4, 6})
	bn.Forward(x, true)

	if got, want := bn.RunningMean[0], 3.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("RunningMean = %v, want %v", got, want)
	}
	if got, want := bn.RunningVar[0], 20.0/3.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("RunningVar = %v, want unbiased %v (biased estimate is 5)", got, want)
	}
}

// TestWeightDecayExemptsNormAndBias is the regression test for the
// over-eager weight decay bug: with zero gradients and positive decay,
// weight matrices must shrink while biases and BatchNorm gamma/beta stay
// exactly put.
func TestWeightDecayExemptsNormAndBias(t *testing.T) {
	build := func() *Network {
		net := NewNetwork(NewDense(3, 3), NewBatchNorm(3))
		d := net.Layers[0].(*Dense)
		d.W.Value.Fill(1)
		d.B.Value.Fill(0.5)
		bn := net.Layers[1].(*BatchNorm)
		bn.Beta.Value.Fill(0.25)
		return net
	}

	check := func(t *testing.T, net *Network, step func()) {
		t.Helper()
		d := net.Layers[0].(*Dense)
		bn := net.Layers[1].(*BatchNorm)
		step()
		if w := d.W.Value.Data[0]; w >= 1 {
			t.Fatalf("weight decay did not shrink W: %v", w)
		}
		if b := d.B.Value.Data[0]; b != 0.5 {
			t.Fatalf("weight decay touched bias: %v", b)
		}
		if g := bn.Gamma.Value.Data[0]; g != 1 {
			t.Fatalf("weight decay touched gamma: %v", g)
		}
		if bt := bn.Beta.Value.Data[0]; bt != 0.25 {
			t.Fatalf("weight decay touched beta: %v", bt)
		}
	}

	t.Run("sgd", func(t *testing.T) {
		net := build()
		opt := NewSGD(net, 0.1, 0)
		opt.WeightDecay = 0.1
		check(t, net, opt.Step)
	})
	t.Run("adam", func(t *testing.T) {
		net := build()
		opt := NewAdam(net, 0.1)
		opt.WeightDecay = 0.1
		check(t, net, opt.Step)
	})
}

// TestFusedInferMatchesUnfused pins the fused Dense+activation inference
// path against per-layer Infer and eval-mode Forward on a network ending
// in a bare Dense (no fusion partner), covering both branches.
func TestFusedInferMatchesUnfused(t *testing.T) {
	nets := []*Network{
		NewNetwork(NewDense(5, 7), NewLeakyReLU(0.2), NewDense(7, 3), NewTanh()),
		NewNetwork(NewDense(5, 7), NewSigmoid(), NewDense(7, 3)),
		NewNetwork(NewBatchNorm(5), NewDense(5, 3), NewReLU()),
	}
	for _, net := range nets {
		net.InitUniform(rand.New(rand.NewSource(11)), 0.3)
		x := mat.New(4, 5)
		r := rand.New(rand.NewSource(12))
		for i := range x.Data {
			x.Data[i] = r.NormFloat64()
		}
		want := net.Forward(x, false).Clone()
		got := net.Infer(x)
		if got.Rows != want.Rows || got.Cols != want.Cols {
			t.Fatalf("shape %dx%d, want %dx%d", got.Rows, got.Cols, want.Rows, want.Cols)
		}
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("fused Infer diverges from eval Forward at %d: %v vs %v", i, got.Data[i], want.Data[i])
			}
		}
	}
}
