package nn

import (
	"math/rand"
	"testing"

	"cdbtune/internal/mat"
)

// inferTestNet covers every layer type in one stack.
func inferTestNet(rng *rand.Rand) *Network {
	n := NewNetwork(
		NewDense(4, 8), NewLeakyReLU(0.2), NewBatchNorm(8),
		NewDense(8, 8), NewTanh(), NewDropout(0.3, rng),
		NewDense(8, 3), NewSigmoid(),
	)
	n.InitNormal(rng, 0.5)
	return n
}

// Infer must be numerically identical to eval-mode Forward.
func TestInferMatchesEvalForward(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := inferTestNet(rng)
	x := mat.New(5, 4)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	want := n.Forward(x.Clone(), false)
	got := n.Infer(x)
	if want.Rows != got.Rows || want.Cols != got.Cols {
		t.Fatalf("shape %dx%d, want %dx%d", got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		if want.Data[i] != got.Data[i] {
			t.Fatalf("Infer[%d] = %v, Forward = %v", i, got.Data[i], want.Data[i])
		}
	}
}

// Infer between a training-mode Forward and its Backward must not disturb
// the cached activations: the gradients must match a run without the
// interleaved Infer. This is the property that lets the inference batcher
// serve actions while a gradient update is mid-flight on another network.
func TestInferDoesNotClobberBackwardState(t *testing.T) {
	run := func(interleave bool) []float64 {
		rng := rand.New(rand.NewSource(23))
		n := inferTestNet(rng)
		x := mat.New(6, 4)
		probe := mat.New(2, 4)
		for i := range x.Data {
			x.Data[i] = rng.NormFloat64()
		}
		for i := range probe.Data {
			probe.Data[i] = rng.NormFloat64()
		}
		out := n.Forward(x, true)
		if interleave {
			n.Infer(probe)
		}
		grad := mat.New(out.Rows, out.Cols)
		grad.Fill(1)
		n.ZeroGrad()
		n.Backward(grad)
		var gs []float64
		for _, p := range n.Params() {
			gs = append(gs, p.Grad.Data...)
		}
		return gs
	}
	clean, interleaved := run(false), run(true)
	if len(clean) != len(interleaved) {
		t.Fatalf("gradient sizes differ: %d vs %d", len(clean), len(interleaved))
	}
	for i := range clean {
		if clean[i] != interleaved[i] {
			t.Fatalf("grad[%d] changed by interleaved Infer: %v vs %v", i, interleaved[i], clean[i])
		}
	}
}
