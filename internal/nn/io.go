package nn

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"path/filepath"

	"cdbtune/internal/vfs"
)

// WriteAtomic writes a file by streaming into a temp file in the target's
// directory, syncing it, renaming over the destination, and fsyncing the
// containing directory — a crash or write error never leaves a truncated
// file at path, and a crash right after the rename cannot lose the rename
// itself (the directory entry is durable before WriteAtomic returns). The
// temp file is removed on failure. It writes through the production
// filesystem; WriteAtomicFS is the same helper over an explicit vfs.FS
// (fault injection, crash-consistency exploration).
func WriteAtomic(path string, write func(io.Writer) error) error {
	return WriteAtomicFS(vfs.OS, path, write)
}

// WriteAtomicFS is WriteAtomic over an explicit filesystem. On failure —
// including an injected ENOSPC/EIO mid-stream — the temp file is removed
// and the destination untouched, so a retry after the condition clears
// is always safe.
func WriteAtomicFS(fsys vfs.FS, path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	f, err := fsys.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := write(f); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return err
	}
	return fsys.SyncDir(dir)
}

// SyncDir fsyncs a directory so a rename or create recorded in it survives
// a crash. Filesystems that refuse directory fsync (some network mounts)
// degrade to the pre-fsync durability rather than failing the write.
func SyncDir(dir string) error {
	return vfs.OS.SyncDir(dir)
}

// Rename renames oldpath onto newpath with plain rename semantics and
// none of the atomic-write fsync discipline. It exists for lock-claim
// protocols (renaming a stale lock file claims it: exactly one renamer
// wins) where the rename IS the atomic primitive and durability is
// irrelevant — lock files are advisory and rebuilt on restart. Every
// durable file still goes through WriteAtomic; the repo lint forbids a
// bare os.Rename anywhere outside this file and the vfs passthrough so
// nothing else bypasses it.
func Rename(oldpath, newpath string) error {
	return vfs.OS.Rename(oldpath, newpath)
}

// NetworkState is a deep copy of everything Save persists for a Network:
// parameter tensors in layer order plus BatchNorm running statistics. It
// doubles as the in-memory snapshot format the learner-health supervisor
// rolls back to, so capturing and restoring it must stay cheap (no
// encoding, just copies).
type NetworkState struct {
	Params       [][]float64
	RunningMeans [][]float64
	RunningVars  [][]float64
}

// State captures the network's current parameters and BatchNorm running
// statistics as an independent copy.
func (n *Network) State() *NetworkState {
	st := &NetworkState{}
	for _, p := range n.Params() {
		st.Params = append(st.Params, append([]float64(nil), p.Value.Data...))
	}
	for _, l := range n.Layers {
		if bn, ok := l.(*BatchNorm); ok {
			st.RunningMeans = append(st.RunningMeans, append([]float64(nil), bn.RunningMean...))
			st.RunningVars = append(st.RunningVars, append([]float64(nil), bn.RunningVar...))
		}
	}
	return st
}

// CheckState verifies that st is shape-compatible with the network —
// parameter count, per-parameter length, and BatchNorm statistics — without
// modifying anything. SetState performs the same checks; callers that must
// apply several states atomically check them all first.
func (n *Network) CheckState(st *NetworkState) error {
	ps := n.Params()
	if len(st.Params) != len(ps) {
		return fmt.Errorf("nn: state has %d params, network has %d", len(st.Params), len(ps))
	}
	for i, p := range ps {
		if len(st.Params[i]) != len(p.Value.Data) {
			return fmt.Errorf("nn: param %d has %d values, want %d", i, len(st.Params[i]), len(p.Value.Data))
		}
	}
	var bi int
	for _, l := range n.Layers {
		bn, ok := l.(*BatchNorm)
		if !ok {
			continue
		}
		if bi >= len(st.RunningMeans) || bi >= len(st.RunningVars) {
			return fmt.Errorf("nn: state missing running stats for BatchNorm %d", bi)
		}
		if len(st.RunningMeans[bi]) != bn.Dim || len(st.RunningVars[bi]) != bn.Dim {
			return fmt.Errorf("nn: BatchNorm %d stats dim %d, want %d", bi, len(st.RunningMeans[bi]), bn.Dim)
		}
		bi++
	}
	return nil
}

// SetState restores a state captured from an identically-shaped network
// (via State or ReadState), validating shapes before touching anything.
func (n *Network) SetState(st *NetworkState) error {
	if err := n.CheckState(st); err != nil {
		return err
	}
	for i, p := range n.Params() {
		copy(p.Value.Data, st.Params[i])
	}
	var bi int
	for _, l := range n.Layers {
		if bn, ok := l.(*BatchNorm); ok {
			copy(bn.RunningMean, st.RunningMeans[bi])
			copy(bn.RunningVar, st.RunningVars[bi])
			bi++
		}
	}
	return nil
}

// Finite returns a descriptive error if any parameter value or BatchNorm
// running statistic in the state is NaN or infinite — the validation gate
// that keeps a corrupt serialized model from being silently loaded.
func (st *NetworkState) Finite() error {
	for i, p := range st.Params {
		for _, v := range p {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("nn: param %d contains non-finite value %v", i, v)
			}
		}
	}
	for i, m := range st.RunningMeans {
		for _, v := range m {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("nn: BatchNorm %d running mean contains non-finite value %v", i, v)
			}
		}
	}
	for i, m := range st.RunningVars {
		for _, v := range m {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("nn: BatchNorm %d running variance contains non-finite value %v", i, v)
			}
		}
	}
	return nil
}

// ReadState decodes one serialized NetworkState from r without applying it
// to any network, so callers can validate (CheckState, Finite) before
// mutating weights.
func ReadState(r io.Reader) (*NetworkState, error) {
	var st NetworkState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return nil, fmt.Errorf("nn: decode network state: %w", err)
	}
	return &st, nil
}

// Save writes the network's parameters and normalization statistics to w
// in gob format. The architecture itself is not serialized: Load must be
// called on a network built with the same layer structure.
func (n *Network) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(n.State())
}

// Load restores parameters previously written by Save into a network with
// an identical architecture.
func (n *Network) Load(r io.Reader) error {
	st, err := ReadState(r)
	if err != nil {
		return err
	}
	return n.SetState(st)
}
