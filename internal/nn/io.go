package nn

import (
	"encoding/gob"
	"fmt"
	"io"
)

// netState is the serialized form of a Network: parameter tensors in layer
// order plus BatchNorm running statistics.
type netState struct {
	Params       [][]float64
	RunningMeans [][]float64
	RunningVars  [][]float64
}

// Save writes the network's parameters and normalization statistics to w
// in gob format. The architecture itself is not serialized: Load must be
// called on a network built with the same layer structure.
func (n *Network) Save(w io.Writer) error {
	st := netState{}
	for _, p := range n.Params() {
		st.Params = append(st.Params, append([]float64(nil), p.Value.Data...))
	}
	for _, l := range n.Layers {
		if bn, ok := l.(*BatchNorm); ok {
			st.RunningMeans = append(st.RunningMeans, append([]float64(nil), bn.RunningMean...))
			st.RunningVars = append(st.RunningVars, append([]float64(nil), bn.RunningVar...))
		}
	}
	return gob.NewEncoder(w).Encode(st)
}

// Load restores parameters previously written by Save into a network with
// an identical architecture.
func (n *Network) Load(r io.Reader) error {
	var st netState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return fmt.Errorf("nn: decode network state: %w", err)
	}
	ps := n.Params()
	if len(st.Params) != len(ps) {
		return fmt.Errorf("nn: state has %d params, network has %d", len(st.Params), len(ps))
	}
	for i, p := range ps {
		if len(st.Params[i]) != len(p.Value.Data) {
			return fmt.Errorf("nn: param %d has %d values, want %d", i, len(st.Params[i]), len(p.Value.Data))
		}
		copy(p.Value.Data, st.Params[i])
	}
	var bi int
	for _, l := range n.Layers {
		bn, ok := l.(*BatchNorm)
		if !ok {
			continue
		}
		if bi >= len(st.RunningMeans) {
			return fmt.Errorf("nn: state missing running stats for BatchNorm %d", bi)
		}
		if len(st.RunningMeans[bi]) != bn.Dim {
			return fmt.Errorf("nn: BatchNorm %d stats dim %d, want %d", bi, len(st.RunningMeans[bi]), bn.Dim)
		}
		copy(bn.RunningMean, st.RunningMeans[bi])
		copy(bn.RunningVar, st.RunningVars[bi])
		bi++
	}
	return nil
}
