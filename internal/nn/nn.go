package nn

import (
	"fmt"
	"math"
	"math/rand"

	"cdbtune/internal/mat"
)

// Param is a learnable tensor together with its accumulated gradient.
type Param struct {
	Name  string
	Value *mat.Matrix
	Grad  *mat.Matrix
}

// newParam allocates a named parameter of the given shape with a zero
// gradient buffer.
func newParam(name string, rows, cols int) *Param {
	return &Param{Name: name, Value: mat.New(rows, cols), Grad: mat.New(rows, cols)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Layer is one differentiable stage of a network. Forward consumes a batch
// (rows = samples) and returns the activated batch; Backward consumes the
// gradient of the loss with respect to the layer output and returns the
// gradient with respect to the layer input, accumulating parameter
// gradients along the way. A layer may behave differently in training and
// evaluation mode (Dropout, BatchNorm).
type Layer interface {
	Forward(x *mat.Matrix, train bool) *mat.Matrix
	Backward(grad *mat.Matrix) *mat.Matrix
	Params() []*Param
}

// Network is a sequential stack of layers. Layers must not be modified
// after the first call to Params (directly or via an optimizer,
// CopyTo, SoftUpdateFrom, ...): the parameter list is cached.
type Network struct {
	Layers []Layer

	params []*Param // cached by Params
}

// NewNetwork builds a sequential network from the given layers.
func NewNetwork(layers ...Layer) *Network { return &Network{Layers: layers} }

// Forward runs the batch x through every layer. train selects training-mode
// behaviour for stochastic/normalizing layers.
func (n *Network) Forward(x *mat.Matrix, train bool) *mat.Matrix {
	for _, l := range n.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Inferrer is an optional Layer extension: Infer computes the layer's
// evaluation-mode activation without caching state for Backward. Forward
// — even in evaluation mode — writes per-layer caches (last input,
// activation masks), so interleaving it with a training pass corrupts the
// pending backward state; Infer leaves the layer untouched. Every layer
// in this package implements it.
type Inferrer interface {
	Infer(x *mat.Matrix) *mat.Matrix
}

// Infer runs the batch x through every layer in evaluation mode without
// recording backward state, falling back to eval-mode Forward for layers
// that do not implement Inferrer. It is the inference fast path behind
// the DDPG agent's Act/ActBatch: numerically identical to
// Forward(x, false), but read-only on the network apart from parameter
// values — callers still must not run it concurrently with an update that
// mutates those parameters.
func (n *Network) Infer(x *mat.Matrix) *mat.Matrix {
	for i := 0; i < len(n.Layers); i++ {
		l := n.Layers[i]
		// Fused Dense+activation: the affine output lands in the Dense
		// layer's inference buffer and the elementwise activation is
		// applied to it in place, skipping the activation layer's own
		// buffer and pass entirely.
		if d, ok := l.(*Dense); ok && i+1 < len(n.Layers) {
			if act, fuse := n.Layers[i+1].(inPlaceActivation); fuse {
				x = d.Infer(x)
				act.activateInPlace(x)
				i++
				continue
			}
		}
		if inf, ok := l.(Inferrer); ok {
			x = inf.Infer(x)
		} else {
			x = l.Forward(x, false)
		}
	}
	return x
}

// inPlaceActivation marks stateless elementwise activations whose
// inference step can mutate the previous layer's output buffer directly,
// enabling the fused Dense+activation path in Network.Infer.
type inPlaceActivation interface {
	activateInPlace(m *mat.Matrix)
}

// Backward propagates the output gradient back through every layer,
// accumulating parameter gradients, and returns the input gradient.
func (n *Network) Backward(grad *mat.Matrix) *mat.Matrix {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		grad = n.Layers[i].Backward(grad)
	}
	return grad
}

// InputGradOnly is an optional Layer extension: BackwardInput returns
// the same input gradient as Backward without accumulating parameter
// gradients. Layers with parameters implement it so that input-gradient
// consumers (the deterministic policy gradient's ∇ₐQ pass) skip the
// weight-gradient GEMMs entirely instead of computing and discarding
// them.
type InputGradOnly interface {
	BackwardInput(grad *mat.Matrix) *mat.Matrix
}

// BackwardInput propagates the output gradient to the network input
// without accumulating any parameter gradient: layers implementing
// InputGradOnly use their parameter-free path, and parameter-less
// layers fall back to Backward (which touches no parameters). The
// returned gradient is bit-identical to Backward's; accumulated
// parameter gradients are left exactly as they were.
func (n *Network) BackwardInput(grad *mat.Matrix) *mat.Matrix {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		if l, ok := n.Layers[i].(InputGradOnly); ok {
			grad = l.BackwardInput(grad)
		} else {
			grad = n.Layers[i].Backward(grad)
		}
	}
	return grad
}

// Params returns every learnable parameter in layer order. The slice is
// computed once and cached; callers must not append to it or reorder it.
func (n *Network) Params() []*Param {
	if n.params == nil {
		for _, l := range n.Layers {
			n.params = append(n.params, l.Params()...)
		}
	}
	return n.params
}

// ZeroGrad clears all parameter gradients.
func (n *Network) ZeroGrad() {
	for _, p := range n.Params() {
		p.ZeroGrad()
	}
}

// CopyTo copies every parameter value of n into dst, which must have an
// identical architecture. Used to initialize DDPG target networks.
func (n *Network) CopyTo(dst *Network) {
	sp, dp := n.Params(), dst.Params()
	if len(sp) != len(dp) {
		panic(fmt.Sprintf("nn: CopyTo param count mismatch %d vs %d", len(sp), len(dp)))
	}
	for i := range sp {
		copy(dp[i].Value.Data, sp[i].Value.Data)
	}
}

// SoftUpdateFrom blends src parameters into n: θ ← τ·θ_src + (1−τ)·θ.
// This is the Polyak averaging DDPG uses for its target networks.
func (n *Network) SoftUpdateFrom(src *Network, tau float64) {
	sp, dp := src.Params(), n.Params()
	if len(sp) != len(dp) {
		panic(fmt.Sprintf("nn: SoftUpdateFrom param count mismatch %d vs %d", len(sp), len(dp)))
	}
	for i := range sp {
		d, s := dp[i].Value.Data, sp[i].Value.Data
		for j := range d {
			d[j] = tau*s[j] + (1-tau)*d[j]
		}
	}
}

// ClipGradients scales all gradients so the global L2 norm does not exceed
// maxNorm, returning the pre-clip norm. maxNorm <= 0 disables clipping.
func (n *Network) ClipGradients(maxNorm float64) float64 {
	var total float64
	for _, p := range n.Params() {
		for _, g := range p.Grad.Data {
			total += g * g
		}
	}
	norm := math.Sqrt(total)
	if maxNorm > 0 && norm > maxNorm {
		scale := maxNorm / norm
		for _, p := range n.Params() {
			p.Grad.Scale(scale)
		}
	}
	return norm
}

// MaxAbsWeight returns the largest parameter magnitude in the network — a
// cheap health signal: a diverging optimizer shows up as a runaway max
// weight long before every output is NaN. A NaN parameter anywhere makes
// the result NaN (returned immediately), so non-finite weights cannot hide
// behind a finite maximum.
func (n *Network) MaxAbsWeight() float64 {
	var max float64
	for _, p := range n.Params() {
		for _, v := range p.Value.Data {
			a := math.Abs(v)
			if math.IsNaN(a) {
				return a
			}
			if a > max {
				max = a
			}
		}
	}
	return max
}

// InitUniform fills every parameter value of n with Uniform(−a, a) draws,
// matching the paper's ω ~ Uniform(−0.1, 0.1) initialization (Table 4).
// Bias-style parameters (single row named "b" or "beta") are zeroed.
func (n *Network) InitUniform(rng *rand.Rand, a float64) {
	for _, p := range n.Params() {
		switch p.Name {
		case "b", "beta":
			p.Value.Zero()
		case "gamma":
			p.Value.Fill(1)
		default:
			for i := range p.Value.Data {
				p.Value.Data[i] = (rng.Float64()*2 - 1) * a
			}
		}
	}
}

// InitNormal fills weights with Normal(0, std) draws, matching the paper's
// θ^µ ~ Normal(0, 0.01) initialization (Table 4).
func (n *Network) InitNormal(rng *rand.Rand, std float64) {
	for _, p := range n.Params() {
		switch p.Name {
		case "b", "beta":
			p.Value.Zero()
		case "gamma":
			p.Value.Fill(1)
		default:
			for i := range p.Value.Data {
				p.Value.Data[i] = rng.NormFloat64() * std
			}
		}
	}
}
