package nn

import (
	"math/rand"
	"testing"

	"cdbtune/internal/mat"
)

// allocTestNet builds a network exercising every layer type with shapes
// small enough to stay on the serial GEMM path (so goroutine spawns
// cannot show up as allocations).
func allocTestNet(rng *rand.Rand) *Network {
	net := NewNetwork(
		NewDense(16, 16),
		NewLeakyReLU(0.2),
		NewBatchNorm(16),
		NewDense(16, 8),
		NewTanh(),
		NewDropout(0.3, rng),
		NewDense(8, 4),
		NewSigmoid(),
	)
	net.InitUniform(rng, 0.1)
	return net
}

// TestTrainStepAllocsZero pins the pooling contract for the whole stack:
// after warm-up, Forward(train) + Backward + Adam.Step allocates nothing.
func TestTrainStepAllocsZero(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net := allocTestNet(rng)
	opt := NewAdam(net, 1e-3)
	opt.WeightDecay = 1e-4

	x := mat.New(8, 16)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	grad := mat.New(8, 4)
	grad.Fill(0.01)

	allocs := testing.AllocsPerRun(30, func() {
		net.Forward(x, true)
		net.Backward(grad)
		opt.Step()
	})
	if allocs != 0 {
		t.Fatalf("steady-state train step allocates %v times, want 0", allocs)
	}
}

// TestInferAllocsZero pins the fused inference path: after warm-up,
// Network.Infer allocates nothing.
func TestInferAllocsZero(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	net := allocTestNet(rng)

	x := mat.New(8, 16)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}

	allocs := testing.AllocsPerRun(30, func() {
		net.Infer(x)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Infer allocates %v times, want 0", allocs)
	}
}

// TestParamsCached pins that the parameter list is computed once, so the
// per-step Params() calls in optimizers and soft updates stay free.
func TestParamsCached(t *testing.T) {
	net := allocTestNet(rand.New(rand.NewSource(9)))
	first := net.Params()
	if allocs := testing.AllocsPerRun(10, func() { net.Params() }); allocs != 0 {
		t.Fatalf("cached Params allocates %v times", allocs)
	}
	second := net.Params()
	if len(first) != len(second) || &first[0] != &second[0] {
		t.Fatal("Params returned a different slice on the second call")
	}
}
