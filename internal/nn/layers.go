package nn

import (
	"math"
	"math/rand"

	"cdbtune/internal/mat"
)

// Dense is a fully connected layer computing y = x·W + b for a batch x
// (rows = samples, cols = In). W is In×Out, b is 1×Out.
type Dense struct {
	In, Out int
	W, B    *Param

	lastInput *mat.Matrix
}

// NewDense returns a Dense layer with zero-initialized parameters; call one
// of the Network Init* methods (or set values directly) before use.
func NewDense(in, out int) *Dense {
	return &Dense{In: in, Out: out, W: newParam("W", in, out), B: newParam("b", 1, out)}
}

// Forward implements Layer.
func (d *Dense) Forward(x *mat.Matrix, train bool) *mat.Matrix {
	d.lastInput = x
	y := mat.Mul(mat.New(x.Rows, d.Out), x, d.W.Value)
	y.AddRowVector(d.B.Value.Data)
	return y
}

// Infer implements Inferrer: Forward without caching the input for
// Backward.
func (d *Dense) Infer(x *mat.Matrix) *mat.Matrix {
	y := mat.Mul(mat.New(x.Rows, d.Out), x, d.W.Value)
	y.AddRowVector(d.B.Value.Data)
	return y
}

// Backward implements Layer: accumulates dW = xᵀ·grad, db = Σ grad and
// returns dx = grad·Wᵀ.
func (d *Dense) Backward(grad *mat.Matrix) *mat.Matrix {
	dW := mat.TMul(mat.New(d.In, d.Out), d.lastInput, grad)
	d.W.Grad.AddScaled(1, dW)
	for j, s := range grad.ColSums() {
		d.B.Grad.Data[j] += s
	}
	return mat.MulT(mat.New(grad.Rows, d.In), grad, d.W.Value)
}

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

// ReLU applies max(0, x) elementwise. The paper's actor uses a (leaky)
// ReLU with slope Alpha on the negative side; Alpha = 0 gives plain ReLU
// and Table 5's "ReLU 0.2" corresponds to Alpha = 0.2.
type ReLU struct {
	Alpha float64

	mask *mat.Matrix
}

// NewReLU returns a plain rectifier.
func NewReLU() *ReLU { return &ReLU{} }

// NewLeakyReLU returns a leaky rectifier with the given negative slope.
func NewLeakyReLU(alpha float64) *ReLU { return &ReLU{Alpha: alpha} }

// Forward implements Layer.
func (r *ReLU) Forward(x *mat.Matrix, train bool) *mat.Matrix {
	y := mat.New(x.Rows, x.Cols)
	r.mask = mat.New(x.Rows, x.Cols)
	for i, v := range x.Data {
		if v > 0 {
			y.Data[i] = v
			r.mask.Data[i] = 1
		} else {
			y.Data[i] = r.Alpha * v
			r.mask.Data[i] = r.Alpha
		}
	}
	return y
}

// Infer implements Inferrer: Forward without recording the mask.
func (r *ReLU) Infer(x *mat.Matrix) *mat.Matrix {
	y := mat.New(x.Rows, x.Cols)
	for i, v := range x.Data {
		if v > 0 {
			y.Data[i] = v
		} else {
			y.Data[i] = r.Alpha * v
		}
	}
	return y
}

// Backward implements Layer.
func (r *ReLU) Backward(grad *mat.Matrix) *mat.Matrix {
	return mat.Hadamard(mat.New(grad.Rows, grad.Cols), grad, r.mask)
}

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// Tanh applies the hyperbolic tangent elementwise.
type Tanh struct{ lastOut *mat.Matrix }

// NewTanh returns a Tanh activation layer.
func NewTanh() *Tanh { return &Tanh{} }

// Forward implements Layer.
func (t *Tanh) Forward(x *mat.Matrix, train bool) *mat.Matrix {
	y := mat.New(x.Rows, x.Cols)
	for i, v := range x.Data {
		y.Data[i] = math.Tanh(v)
	}
	t.lastOut = y
	return y
}

// Infer implements Inferrer: Forward without recording the activation.
func (t *Tanh) Infer(x *mat.Matrix) *mat.Matrix {
	y := mat.New(x.Rows, x.Cols)
	for i, v := range x.Data {
		y.Data[i] = math.Tanh(v)
	}
	return y
}

// Backward implements Layer: dx = grad ⊙ (1 − y²).
func (t *Tanh) Backward(grad *mat.Matrix) *mat.Matrix {
	dx := mat.New(grad.Rows, grad.Cols)
	for i, g := range grad.Data {
		y := t.lastOut.Data[i]
		dx.Data[i] = g * (1 - y*y)
	}
	return dx
}

// Params implements Layer.
func (t *Tanh) Params() []*Param { return nil }

// Sigmoid applies the logistic function elementwise. The actor's output
// layer uses it to keep normalized knob values in (0, 1).
type Sigmoid struct{ lastOut *mat.Matrix }

// NewSigmoid returns a Sigmoid activation layer.
func NewSigmoid() *Sigmoid { return &Sigmoid{} }

// Forward implements Layer.
func (s *Sigmoid) Forward(x *mat.Matrix, train bool) *mat.Matrix {
	y := mat.New(x.Rows, x.Cols)
	for i, v := range x.Data {
		y.Data[i] = 1 / (1 + math.Exp(-v))
	}
	s.lastOut = y
	return y
}

// Infer implements Inferrer: Forward without recording the activation.
func (s *Sigmoid) Infer(x *mat.Matrix) *mat.Matrix {
	y := mat.New(x.Rows, x.Cols)
	for i, v := range x.Data {
		y.Data[i] = 1 / (1 + math.Exp(-v))
	}
	return y
}

// Backward implements Layer: dx = grad ⊙ y(1−y).
func (s *Sigmoid) Backward(grad *mat.Matrix) *mat.Matrix {
	dx := mat.New(grad.Rows, grad.Cols)
	for i, g := range grad.Data {
		y := s.lastOut.Data[i]
		dx.Data[i] = g * y * (1 - y)
	}
	return dx
}

// Params implements Layer.
func (s *Sigmoid) Params() []*Param { return nil }

// Dropout randomly zeroes activations with probability P during training
// (inverted dropout: surviving units are scaled by 1/(1−P) so evaluation
// needs no rescaling). Table 5 uses P = 0.3.
type Dropout struct {
	P   float64
	rng *rand.Rand

	mask *mat.Matrix
}

// NewDropout returns a Dropout layer with drop probability p, drawing
// masks from rng.
func NewDropout(p float64, rng *rand.Rand) *Dropout {
	return &Dropout{P: p, rng: rng}
}

// Forward implements Layer.
func (d *Dropout) Forward(x *mat.Matrix, train bool) *mat.Matrix {
	if !train || d.P <= 0 {
		d.mask = nil
		return x
	}
	keep := 1 - d.P
	d.mask = mat.New(x.Rows, x.Cols)
	y := mat.New(x.Rows, x.Cols)
	for i, v := range x.Data {
		if d.rng.Float64() < keep {
			d.mask.Data[i] = 1 / keep
			y.Data[i] = v / keep
		}
	}
	return y
}

// Infer implements Inferrer: inverted dropout is the identity at
// evaluation time, and unlike eval-mode Forward it leaves the training
// mask in place.
func (d *Dropout) Infer(x *mat.Matrix) *mat.Matrix { return x }

// Backward implements Layer.
func (d *Dropout) Backward(grad *mat.Matrix) *mat.Matrix {
	if d.mask == nil {
		return grad
	}
	return mat.Hadamard(mat.New(grad.Rows, grad.Cols), grad, d.mask)
}

// Params implements Layer.
func (d *Dropout) Params() []*Param { return nil }

// BatchNorm normalizes each feature over the batch during training and by
// running statistics during evaluation, then applies a learned affine
// transform γ·x̂ + β.
type BatchNorm struct {
	Dim      int
	Eps      float64
	Momentum float64

	Gamma, Beta *Param

	// Running statistics for evaluation mode.
	RunningMean, RunningVar []float64

	// Cached forward state for backward.
	xhat   *mat.Matrix
	invStd []float64
}

// NewBatchNorm returns a BatchNorm layer over dim features with the usual
// defaults (eps 1e-5, momentum 0.1).
func NewBatchNorm(dim int) *BatchNorm {
	bn := &BatchNorm{
		Dim:         dim,
		Eps:         1e-5,
		Momentum:    0.1,
		Gamma:       newParam("gamma", 1, dim),
		Beta:        newParam("beta", 1, dim),
		RunningMean: make([]float64, dim),
		RunningVar:  make([]float64, dim),
	}
	bn.Gamma.Value.Fill(1)
	for i := range bn.RunningVar {
		bn.RunningVar[i] = 1
	}
	return bn
}

// Forward implements Layer.
func (b *BatchNorm) Forward(x *mat.Matrix, train bool) *mat.Matrix {
	y := mat.New(x.Rows, x.Cols)
	if train && x.Rows > 1 {
		mean := x.ColMeans()
		variance := make([]float64, b.Dim)
		for i := 0; i < x.Rows; i++ {
			row := x.Row(i)
			for j, v := range row {
				d := v - mean[j]
				variance[j] += d * d
			}
		}
		for j := range variance {
			variance[j] /= float64(x.Rows)
		}
		b.invStd = make([]float64, b.Dim)
		for j := range b.invStd {
			b.invStd[j] = 1 / math.Sqrt(variance[j]+b.Eps)
		}
		b.xhat = mat.New(x.Rows, x.Cols)
		for i := 0; i < x.Rows; i++ {
			xr, hr, yr := x.Row(i), b.xhat.Row(i), y.Row(i)
			for j := range xr {
				h := (xr[j] - mean[j]) * b.invStd[j]
				hr[j] = h
				yr[j] = b.Gamma.Value.Data[j]*h + b.Beta.Value.Data[j]
			}
		}
		m := b.Momentum
		for j := range mean {
			b.RunningMean[j] = (1-m)*b.RunningMean[j] + m*mean[j]
			b.RunningVar[j] = (1-m)*b.RunningVar[j] + m*variance[j]
		}
		return y
	}
	// Evaluation (or single-sample) mode: use running statistics.
	b.xhat = nil
	for i := 0; i < x.Rows; i++ {
		xr, yr := x.Row(i), y.Row(i)
		for j := range xr {
			h := (xr[j] - b.RunningMean[j]) / math.Sqrt(b.RunningVar[j]+b.Eps)
			yr[j] = b.Gamma.Value.Data[j]*h + b.Beta.Value.Data[j]
		}
	}
	return y
}

// Infer implements Inferrer: normalization by running statistics without
// clearing the cached training-mode batch state.
func (b *BatchNorm) Infer(x *mat.Matrix) *mat.Matrix {
	y := mat.New(x.Rows, x.Cols)
	for i := 0; i < x.Rows; i++ {
		xr, yr := x.Row(i), y.Row(i)
		for j := range xr {
			h := (xr[j] - b.RunningMean[j]) / math.Sqrt(b.RunningVar[j]+b.Eps)
			yr[j] = b.Gamma.Value.Data[j]*h + b.Beta.Value.Data[j]
		}
	}
	return y
}

// Backward implements Layer using the standard batch-norm gradient.
func (b *BatchNorm) Backward(grad *mat.Matrix) *mat.Matrix {
	if b.xhat == nil {
		// Evaluation-mode backward (used when training with batch size 1):
		// treat running stats as constants.
		dx := mat.New(grad.Rows, grad.Cols)
		for i := 0; i < grad.Rows; i++ {
			gr, dr := grad.Row(i), dx.Row(i)
			for j := range gr {
				dr[j] = gr[j] * b.Gamma.Value.Data[j] / math.Sqrt(b.RunningVar[j]+b.Eps)
			}
		}
		return dx
	}
	n := float64(grad.Rows)
	dgamma := make([]float64, b.Dim)
	dbeta := make([]float64, b.Dim)
	for i := 0; i < grad.Rows; i++ {
		gr, hr := grad.Row(i), b.xhat.Row(i)
		for j := range gr {
			dgamma[j] += gr[j] * hr[j]
			dbeta[j] += gr[j]
		}
	}
	for j := range dgamma {
		b.Gamma.Grad.Data[j] += dgamma[j]
		b.Beta.Grad.Data[j] += dbeta[j]
	}
	dx := mat.New(grad.Rows, grad.Cols)
	for i := 0; i < grad.Rows; i++ {
		gr, hr, dr := grad.Row(i), b.xhat.Row(i), dx.Row(i)
		for j := range gr {
			g := b.Gamma.Value.Data[j]
			dr[j] = g * b.invStd[j] / n * (n*gr[j] - dbeta[j] - hr[j]*dgamma[j])
		}
	}
	return dx
}

// Params implements Layer.
func (b *BatchNorm) Params() []*Param { return []*Param{b.Gamma, b.Beta} }
