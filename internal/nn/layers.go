package nn

import (
	"math"
	"math/rand"

	"cdbtune/internal/mat"
)

// Every layer in this file owns per-layer scratch buffers for its
// Forward, Backward and Infer outputs (see the package documentation
// for the ownership contract): buffers are recycled via mat.Reuse, so
// the steady state of a training loop allocates nothing. A returned
// matrix is valid until the same layer's next call of the same kind.
// Forward and Infer deliberately use disjoint buffers — Infer between a
// training Forward and its Backward must not disturb the cached
// activations.

// Dense is a fully connected layer computing y = x·W + b for a batch x
// (rows = samples, cols = In). W is In×Out, b is 1×Out.
type Dense struct {
	In, Out int
	W, B    *Param

	lastInput *mat.Matrix

	out, inferOut, dx *mat.Matrix // scratch, recycled across calls
}

// NewDense returns a Dense layer with zero-initialized parameters; call one
// of the Network Init* methods (or set values directly) before use.
func NewDense(in, out int) *Dense {
	return &Dense{In: in, Out: out, W: newParam("W", in, out), B: newParam("b", 1, out)}
}

// Forward implements Layer.
func (d *Dense) Forward(x *mat.Matrix, train bool) *mat.Matrix {
	d.lastInput = x
	d.out = mat.Reuse(d.out, x.Rows, d.Out)
	mat.Mul(d.out, x, d.W.Value)
	d.out.AddRowVector(d.B.Value.Data)
	return d.out
}

// Infer implements Inferrer: Forward without caching the input for
// Backward, on a buffer disjoint from Forward's.
func (d *Dense) Infer(x *mat.Matrix) *mat.Matrix {
	d.inferOut = mat.Reuse(d.inferOut, x.Rows, d.Out)
	mat.Mul(d.inferOut, x, d.W.Value)
	d.inferOut.AddRowVector(d.B.Value.Data)
	return d.inferOut
}

// Backward implements Layer: accumulates dW = xᵀ·grad, db = Σ grad and
// returns dx = grad·Wᵀ. The weight and bias gradients accumulate
// directly into the Param tensors without intermediate products.
func (d *Dense) Backward(grad *mat.Matrix) *mat.Matrix {
	mat.TMulAdd(d.W.Grad, d.lastInput, grad)
	grad.AddColSums(d.B.Grad.Data)
	return d.BackwardInput(grad)
}

// BackwardInput implements InputGradOnly: dx = grad·Wᵀ, skipping the
// weight- and bias-gradient accumulation.
func (d *Dense) BackwardInput(grad *mat.Matrix) *mat.Matrix {
	d.dx = mat.Reuse(d.dx, grad.Rows, d.In)
	return mat.MulT(d.dx, grad, d.W.Value)
}

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

// ReLU applies max(0, x) elementwise. The paper's actor uses a (leaky)
// ReLU with slope Alpha on the negative side; Alpha = 0 gives plain ReLU
// and Table 5's "ReLU 0.2" corresponds to Alpha = 0.2.
type ReLU struct {
	Alpha float64

	mask *mat.Matrix

	out, inferOut, dx *mat.Matrix // scratch
}

// NewReLU returns a plain rectifier.
func NewReLU() *ReLU { return &ReLU{} }

// NewLeakyReLU returns a leaky rectifier with the given negative slope.
func NewLeakyReLU(alpha float64) *ReLU { return &ReLU{Alpha: alpha} }

// Forward implements Layer.
func (r *ReLU) Forward(x *mat.Matrix, train bool) *mat.Matrix {
	r.out = mat.Reuse(r.out, x.Rows, x.Cols)
	r.mask = mat.Reuse(r.mask, x.Rows, x.Cols)
	for i, v := range x.Data {
		if v > 0 {
			r.out.Data[i] = v
			r.mask.Data[i] = 1
		} else {
			r.out.Data[i] = r.Alpha * v
			r.mask.Data[i] = r.Alpha
		}
	}
	return r.out
}

// Infer implements Inferrer: Forward without recording the mask.
func (r *ReLU) Infer(x *mat.Matrix) *mat.Matrix {
	r.inferOut = mat.Reuse(r.inferOut, x.Rows, x.Cols)
	for i, v := range x.Data {
		if v > 0 {
			r.inferOut.Data[i] = v
		} else {
			r.inferOut.Data[i] = r.Alpha * v
		}
	}
	return r.inferOut
}

// activateInPlace implements the fused-inference hook.
func (r *ReLU) activateInPlace(m *mat.Matrix) {
	for i, v := range m.Data {
		if v <= 0 {
			m.Data[i] = r.Alpha * v
		}
	}
}

// Backward implements Layer.
func (r *ReLU) Backward(grad *mat.Matrix) *mat.Matrix {
	r.dx = mat.Reuse(r.dx, grad.Rows, grad.Cols)
	return mat.Hadamard(r.dx, grad, r.mask)
}

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// Tanh applies the hyperbolic tangent elementwise.
type Tanh struct {
	lastOut *mat.Matrix

	inferOut, dx *mat.Matrix // scratch (lastOut doubles as the Forward buffer)
}

// NewTanh returns a Tanh activation layer.
func NewTanh() *Tanh { return &Tanh{} }

// Forward implements Layer.
func (t *Tanh) Forward(x *mat.Matrix, train bool) *mat.Matrix {
	t.lastOut = mat.Reuse(t.lastOut, x.Rows, x.Cols)
	for i, v := range x.Data {
		t.lastOut.Data[i] = math.Tanh(v)
	}
	return t.lastOut
}

// Infer implements Inferrer: Forward without recording the activation.
func (t *Tanh) Infer(x *mat.Matrix) *mat.Matrix {
	t.inferOut = mat.Reuse(t.inferOut, x.Rows, x.Cols)
	for i, v := range x.Data {
		t.inferOut.Data[i] = math.Tanh(v)
	}
	return t.inferOut
}

// activateInPlace implements the fused-inference hook.
func (t *Tanh) activateInPlace(m *mat.Matrix) {
	for i, v := range m.Data {
		m.Data[i] = math.Tanh(v)
	}
}

// Backward implements Layer: dx = grad ⊙ (1 − y²).
func (t *Tanh) Backward(grad *mat.Matrix) *mat.Matrix {
	t.dx = mat.Reuse(t.dx, grad.Rows, grad.Cols)
	for i, g := range grad.Data {
		y := t.lastOut.Data[i]
		t.dx.Data[i] = g * (1 - y*y)
	}
	return t.dx
}

// Params implements Layer.
func (t *Tanh) Params() []*Param { return nil }

// Sigmoid applies the logistic function elementwise. The actor's output
// layer uses it to keep normalized knob values in (0, 1).
type Sigmoid struct {
	lastOut *mat.Matrix

	inferOut, dx *mat.Matrix // scratch
}

// NewSigmoid returns a Sigmoid activation layer.
func NewSigmoid() *Sigmoid { return &Sigmoid{} }

// Forward implements Layer.
func (s *Sigmoid) Forward(x *mat.Matrix, train bool) *mat.Matrix {
	s.lastOut = mat.Reuse(s.lastOut, x.Rows, x.Cols)
	for i, v := range x.Data {
		s.lastOut.Data[i] = 1 / (1 + math.Exp(-v))
	}
	return s.lastOut
}

// Infer implements Inferrer: Forward without recording the activation.
func (s *Sigmoid) Infer(x *mat.Matrix) *mat.Matrix {
	s.inferOut = mat.Reuse(s.inferOut, x.Rows, x.Cols)
	for i, v := range x.Data {
		s.inferOut.Data[i] = 1 / (1 + math.Exp(-v))
	}
	return s.inferOut
}

// activateInPlace implements the fused-inference hook.
func (s *Sigmoid) activateInPlace(m *mat.Matrix) {
	for i, v := range m.Data {
		m.Data[i] = 1 / (1 + math.Exp(-v))
	}
}

// Backward implements Layer: dx = grad ⊙ y(1−y).
func (s *Sigmoid) Backward(grad *mat.Matrix) *mat.Matrix {
	s.dx = mat.Reuse(s.dx, grad.Rows, grad.Cols)
	for i, g := range grad.Data {
		y := s.lastOut.Data[i]
		s.dx.Data[i] = g * y * (1 - y)
	}
	return s.dx
}

// Params implements Layer.
func (s *Sigmoid) Params() []*Param { return nil }

// Dropout randomly zeroes activations with probability P during training
// (inverted dropout: surviving units are scaled by 1/(1−P) so evaluation
// needs no rescaling). Table 5 uses P = 0.3.
type Dropout struct {
	P   float64
	rng *rand.Rand

	mask *mat.Matrix

	out, dx *mat.Matrix // scratch
}

// NewDropout returns a Dropout layer with drop probability p, drawing
// masks from rng.
func NewDropout(p float64, rng *rand.Rand) *Dropout {
	return &Dropout{P: p, rng: rng}
}

// Forward implements Layer.
func (d *Dropout) Forward(x *mat.Matrix, train bool) *mat.Matrix {
	if !train || d.P <= 0 {
		d.mask = nil
		return x
	}
	keep := 1 - d.P
	d.mask = mat.Reuse(d.mask, x.Rows, x.Cols)
	d.out = mat.Reuse(d.out, x.Rows, x.Cols)
	for i, v := range x.Data {
		if d.rng.Float64() < keep {
			d.mask.Data[i] = 1 / keep
			d.out.Data[i] = v / keep
		} else {
			d.mask.Data[i] = 0
			d.out.Data[i] = 0
		}
	}
	return d.out
}

// Infer implements Inferrer: inverted dropout is the identity at
// evaluation time, and unlike eval-mode Forward it leaves the training
// mask in place.
func (d *Dropout) Infer(x *mat.Matrix) *mat.Matrix { return x }

// Backward implements Layer.
func (d *Dropout) Backward(grad *mat.Matrix) *mat.Matrix {
	if d.mask == nil {
		return grad
	}
	d.dx = mat.Reuse(d.dx, grad.Rows, grad.Cols)
	return mat.Hadamard(d.dx, grad, d.mask)
}

// Params implements Layer.
func (d *Dropout) Params() []*Param { return nil }

// BatchNorm normalizes each feature over the batch during training and by
// running statistics during evaluation, then applies a learned affine
// transform γ·x̂ + β.
type BatchNorm struct {
	Dim      int
	Eps      float64
	Momentum float64

	Gamma, Beta *Param

	// Running statistics for evaluation mode. RunningVar tracks the
	// unbiased (÷N−1) batch variance, matching the standard estimator
	// eval-mode normalization expects; the in-batch normalization itself
	// uses the biased (÷N) variance as usual.
	RunningMean, RunningVar []float64

	// Cached forward state for backward.
	xhat   *mat.Matrix
	invStd []float64

	out, inferOut, dx *mat.Matrix // scratch
	mean, variance    []float64   // scratch
	dgamma, dbeta     []float64   // scratch
}

// NewBatchNorm returns a BatchNorm layer over dim features with the usual
// defaults (eps 1e-5, momentum 0.1).
func NewBatchNorm(dim int) *BatchNorm {
	bn := &BatchNorm{
		Dim:         dim,
		Eps:         1e-5,
		Momentum:    0.1,
		Gamma:       newParam("gamma", 1, dim),
		Beta:        newParam("beta", 1, dim),
		RunningMean: make([]float64, dim),
		RunningVar:  make([]float64, dim),
	}
	bn.Gamma.Value.Fill(1)
	for i := range bn.RunningVar {
		bn.RunningVar[i] = 1
	}
	return bn
}

// Forward implements Layer.
func (b *BatchNorm) Forward(x *mat.Matrix, train bool) *mat.Matrix {
	b.out = mat.Reuse(b.out, x.Rows, x.Cols)
	if train && x.Rows > 1 {
		b.mean = mat.ReuseVec(b.mean, b.Dim)
		x.ColMeansInto(b.mean)
		b.variance = mat.ReuseVec(b.variance, b.Dim)
		for j := range b.variance {
			b.variance[j] = 0
		}
		for i := 0; i < x.Rows; i++ {
			row := x.Row(i)
			for j, v := range row {
				d := v - b.mean[j]
				b.variance[j] += d * d
			}
		}
		for j := range b.variance {
			b.variance[j] /= float64(x.Rows)
		}
		b.invStd = mat.ReuseVec(b.invStd, b.Dim)
		for j := range b.invStd {
			b.invStd[j] = 1 / math.Sqrt(b.variance[j]+b.Eps)
		}
		b.xhat = mat.Reuse(b.xhat, x.Rows, x.Cols)
		for i := 0; i < x.Rows; i++ {
			xr, hr, yr := x.Row(i), b.xhat.Row(i), b.out.Row(i)
			for j := range xr {
				h := (xr[j] - b.mean[j]) * b.invStd[j]
				hr[j] = h
				yr[j] = b.Gamma.Value.Data[j]*h + b.Beta.Value.Data[j]
			}
		}
		// Running stats track the unbiased (÷N−1) variance estimator —
		// folding the biased batch variance in instead would skew
		// eval-mode outputs at small batch sizes.
		m := b.Momentum
		unbias := float64(x.Rows) / float64(x.Rows-1)
		for j := range b.mean {
			b.RunningMean[j] = (1-m)*b.RunningMean[j] + m*b.mean[j]
			b.RunningVar[j] = (1-m)*b.RunningVar[j] + m*b.variance[j]*unbias
		}
		return b.out
	}
	// Evaluation (or single-sample) mode: use running statistics.
	b.xhat = nil
	b.normalizeByRunningStats(x, b.out)
	return b.out
}

// Infer implements Inferrer: normalization by running statistics without
// clearing the cached training-mode batch state.
func (b *BatchNorm) Infer(x *mat.Matrix) *mat.Matrix {
	b.inferOut = mat.Reuse(b.inferOut, x.Rows, x.Cols)
	b.normalizeByRunningStats(x, b.inferOut)
	return b.inferOut
}

func (b *BatchNorm) normalizeByRunningStats(x, y *mat.Matrix) {
	for i := 0; i < x.Rows; i++ {
		xr, yr := x.Row(i), y.Row(i)
		for j := range xr {
			h := (xr[j] - b.RunningMean[j]) / math.Sqrt(b.RunningVar[j]+b.Eps)
			yr[j] = b.Gamma.Value.Data[j]*h + b.Beta.Value.Data[j]
		}
	}
}

// Backward implements Layer using the standard batch-norm gradient.
func (b *BatchNorm) Backward(grad *mat.Matrix) *mat.Matrix {
	return b.backward(grad, true)
}

// BackwardInput implements InputGradOnly. The per-feature gradient sums
// are still computed (the input gradient depends on them) but are not
// folded into Gamma.Grad/Beta.Grad.
func (b *BatchNorm) BackwardInput(grad *mat.Matrix) *mat.Matrix {
	return b.backward(grad, false)
}

func (b *BatchNorm) backward(grad *mat.Matrix, accumulate bool) *mat.Matrix {
	b.dx = mat.Reuse(b.dx, grad.Rows, grad.Cols)
	if b.xhat == nil {
		// Evaluation-mode backward (used when training with batch size 1):
		// treat running stats as constants.
		for i := 0; i < grad.Rows; i++ {
			gr, dr := grad.Row(i), b.dx.Row(i)
			for j := range gr {
				dr[j] = gr[j] * b.Gamma.Value.Data[j] / math.Sqrt(b.RunningVar[j]+b.Eps)
			}
		}
		return b.dx
	}
	n := float64(grad.Rows)
	b.dgamma = mat.ReuseVec(b.dgamma, b.Dim)
	b.dbeta = mat.ReuseVec(b.dbeta, b.Dim)
	for j := 0; j < b.Dim; j++ {
		b.dgamma[j] = 0
		b.dbeta[j] = 0
	}
	for i := 0; i < grad.Rows; i++ {
		gr, hr := grad.Row(i), b.xhat.Row(i)
		for j := range gr {
			b.dgamma[j] += gr[j] * hr[j]
			b.dbeta[j] += gr[j]
		}
	}
	if accumulate {
		for j := range b.dgamma {
			b.Gamma.Grad.Data[j] += b.dgamma[j]
			b.Beta.Grad.Data[j] += b.dbeta[j]
		}
	}
	for i := 0; i < grad.Rows; i++ {
		gr, hr, dr := grad.Row(i), b.xhat.Row(i), b.dx.Row(i)
		for j := range gr {
			g := b.Gamma.Value.Data[j]
			dr[j] = g * b.invStd[j] / n * (n*gr[j] - b.dbeta[j] - hr[j]*b.dgamma[j])
		}
	}
	return b.dx
}

// Params implements Layer.
func (b *BatchNorm) Params() []*Param { return []*Param{b.Gamma, b.Beta} }
