// Package nn implements the small feed-forward neural-network stack used by
// CDBTune's deep reinforcement-learning agents: dense, ReLU, Tanh, Sigmoid,
// Dropout and BatchNorm layers with hand-written backpropagation, plus SGD
// and Adam optimizers. The layer set is exactly what Table 5 of the paper's
// actor-critic architecture requires.
//
// # Buffer ownership
//
// Layers pool their output, gradient and inference buffers via mat.Reuse,
// so a steady-state train step (Forward + Backward + optimizer Step)
// allocates nothing. The matrix returned by a layer's Forward, Backward or
// Infer is owned by that layer and valid only until its next call of the
// same kind — callers that need the values past that point must Clone.
// Network.Forward/Infer results follow the same rule: the DDPG agent
// copies action rows out before the next pass, and anything retaining a
// network output across passes must do the same.
//
// Forward (training or evaluation mode) and Infer use disjoint buffers:
// an Infer call between a training Forward and its Backward leaves the
// cached activations untouched. Eval-mode Forward does NOT have that
// guarantee — it overwrites the caches — which is exactly why Infer
// exists.
//
// # Concurrency
//
// A layer, and hence a Network, is single-threaded: its scratch buffers
// are unsynchronized, so two concurrent passes through the same network
// race. Distinct Network instances are fully independent and may run
// concurrently (the DDPG learner overlaps target-network and online-
// network passes this way). Within one pass the mat kernels may fan out
// across goroutines internally; that is invisible to callers.
//
// # Weight decay
//
// SGD and Adam apply L2 weight decay to weight matrices only. Bias rows
// ("b"), BatchNorm shift ("beta") and BatchNorm scale ("gamma") are
// exempt: decaying gamma toward 0 or the others toward identity-breaking
// values regularizes nothing and measurably skews BatchNorm statistics.
package nn
