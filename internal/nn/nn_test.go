package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"cdbtune/internal/mat"
)

// numericalGrad estimates d(loss)/d(theta) by central differences, where
// loss = MSE(net(x), target) evaluated in training mode with dropout
// disabled (p=0) so the function is deterministic.
func numericalGrad(t *testing.T, net *Network, x, target *mat.Matrix, p *Param, idx int) float64 {
	t.Helper()
	const h = 1e-5
	orig := p.Value.Data[idx]
	p.Value.Data[idx] = orig + h
	lossPlus, _ := MSELoss(net.Forward(x.Clone(), true), target)
	p.Value.Data[idx] = orig - h
	lossMinus, _ := MSELoss(net.Forward(x.Clone(), true), target)
	p.Value.Data[idx] = orig
	return (lossPlus - lossMinus) / (2 * h)
}

func checkGradients(t *testing.T, net *Network, inDim, outDim, batch int) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	net.InitUniform(rng, 0.5)
	x := mat.New(batch, inDim)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	target := mat.New(batch, outDim)
	for i := range target.Data {
		target.Data[i] = rng.NormFloat64()
	}
	net.ZeroGrad()
	out := net.Forward(x.Clone(), true)
	_, grad := MSELoss(out, target)
	net.Backward(grad)
	for pi, p := range net.Params() {
		for _, idx := range sampleIndices(rng, len(p.Value.Data), 6) {
			want := numericalGrad(t, net, x, target, p, idx)
			got := p.Grad.Data[idx]
			tol := 1e-4 * math.Max(1, math.Abs(want))
			if math.Abs(got-want) > tol {
				t.Errorf("param %d (%s) idx %d: analytic %g, numeric %g", pi, p.Name, idx, got, want)
			}
		}
	}
}

func sampleIndices(rng *rand.Rand, n, k int) []int {
	if n <= k {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = rng.Intn(n)
	}
	return idx
}

func TestDenseGradient(t *testing.T) {
	checkGradients(t, NewNetwork(NewDense(4, 3)), 4, 3, 5)
}

func TestDeepTanhGradient(t *testing.T) {
	net := NewNetwork(NewDense(5, 8), NewTanh(), NewDense(8, 6), NewTanh(), NewDense(6, 2))
	checkGradients(t, net, 5, 2, 7)
}

func TestReLUGradient(t *testing.T) {
	net := NewNetwork(NewDense(4, 8), NewReLU(), NewDense(8, 3))
	checkGradients(t, net, 4, 3, 6)
}

func TestLeakyReLUGradient(t *testing.T) {
	net := NewNetwork(NewDense(4, 8), NewLeakyReLU(0.2), NewDense(8, 3))
	checkGradients(t, net, 4, 3, 6)
}

func TestSigmoidGradient(t *testing.T) {
	net := NewNetwork(NewDense(3, 5), NewSigmoid(), NewDense(5, 2))
	checkGradients(t, net, 3, 2, 4)
}

func TestBatchNormGradient(t *testing.T) {
	net := NewNetwork(NewDense(4, 6), NewBatchNorm(6), NewTanh(), NewDense(6, 2))
	checkGradients(t, net, 4, 2, 8)
}

func TestReLUForward(t *testing.T) {
	r := NewLeakyReLU(0.1)
	x := mat.FromSlice(1, 3, []float64{-2, 0, 3})
	y := r.Forward(x, true)
	want := []float64{-0.2, 0, 3}
	for i := range want {
		if math.Abs(y.Data[i]-want[i]) > 1e-12 {
			t.Fatalf("leaky relu[%d] = %v, want %v", i, y.Data[i], want[i])
		}
	}
}

func TestTanhBounds(t *testing.T) {
	tl := NewTanh()
	x := mat.FromSlice(1, 2, []float64{100, -100})
	y := tl.Forward(x, true)
	if y.Data[0] != 1 || y.Data[1] != -1 {
		t.Fatalf("tanh saturation = %v", y.Data)
	}
}

func TestSigmoidRange(t *testing.T) {
	s := NewSigmoid()
	x := mat.FromSlice(1, 3, []float64{-50, 0, 50})
	y := s.Forward(x, true)
	if y.Data[0] > 1e-10 || math.Abs(y.Data[1]-0.5) > 1e-12 || y.Data[2] < 1-1e-10 {
		t.Fatalf("sigmoid = %v", y.Data)
	}
}

func TestDropoutTrainEval(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := NewDropout(0.5, rng)
	x := mat.New(10, 100)
	x.Fill(1)
	yTrain := d.Forward(x, true)
	var zeros, scaled int
	for _, v := range yTrain.Data {
		switch v {
		case 0:
			zeros++
		case 2:
			scaled++
		default:
			t.Fatalf("dropout produced value %v, want 0 or 2", v)
		}
	}
	if zeros == 0 || scaled == 0 {
		t.Fatalf("dropout mask degenerate: %d zeros, %d kept", zeros, scaled)
	}
	frac := float64(zeros) / float64(len(yTrain.Data))
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("dropout rate %v, want ≈0.5", frac)
	}
	yEval := d.Forward(x, false)
	for _, v := range yEval.Data {
		if v != 1 {
			t.Fatalf("eval-mode dropout changed input: %v", v)
		}
	}
}

func TestBatchNormNormalizes(t *testing.T) {
	bn := NewBatchNorm(2)
	x := mat.FromSlice(4, 2, []float64{1, 10, 2, 20, 3, 30, 4, 40})
	y := bn.Forward(x, true)
	for j := 0; j < 2; j++ {
		var mean, sq float64
		for i := 0; i < 4; i++ {
			mean += y.At(i, j)
		}
		mean /= 4
		for i := 0; i < 4; i++ {
			d := y.At(i, j) - mean
			sq += d * d
		}
		if math.Abs(mean) > 1e-9 {
			t.Fatalf("col %d mean = %v, want 0", j, mean)
		}
		if math.Abs(sq/4-1) > 1e-3 {
			t.Fatalf("col %d var = %v, want ≈1", j, sq/4)
		}
	}
}

func TestBatchNormEvalUsesRunningStats(t *testing.T) {
	bn := NewBatchNorm(1)
	rng := rand.New(rand.NewSource(1))
	// Train on batches with mean 5, std 2.
	for i := 0; i < 500; i++ {
		x := mat.New(16, 1)
		for j := range x.Data {
			x.Data[j] = 5 + 2*rng.NormFloat64()
		}
		bn.Forward(x, true)
	}
	if math.Abs(bn.RunningMean[0]-5) > 0.3 {
		t.Fatalf("running mean = %v, want ≈5", bn.RunningMean[0])
	}
	if math.Abs(bn.RunningVar[0]-4) > 0.8 {
		t.Fatalf("running var = %v, want ≈4", bn.RunningVar[0])
	}
	x := mat.FromSlice(1, 1, []float64{5})
	y := bn.Forward(x, false)
	if math.Abs(y.Data[0]) > 0.1 {
		t.Fatalf("eval output for mean input = %v, want ≈0", y.Data[0])
	}
}

func TestNetworkLearnsXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	net := NewNetwork(NewDense(2, 16), NewTanh(), NewDense(16, 1), NewSigmoid())
	net.InitUniform(rng, 0.7)
	opt := NewAdam(net, 0.05)
	x := mat.FromSlice(4, 2, []float64{0, 0, 0, 1, 1, 0, 1, 1})
	target := mat.FromSlice(4, 1, []float64{0, 1, 1, 0})
	var loss float64
	for i := 0; i < 2000; i++ {
		out := net.Forward(x.Clone(), true)
		var grad *mat.Matrix
		loss, grad = MSELoss(out, target)
		net.Backward(grad)
		opt.Step()
	}
	if loss > 0.01 {
		t.Fatalf("XOR not learned: final loss %v", loss)
	}
	out := net.Forward(x.Clone(), false)
	for i, want := range []float64{0, 1, 1, 0} {
		if math.Abs(out.Data[i]-want) > 0.2 {
			t.Fatalf("XOR output[%d] = %v, want %v", i, out.Data[i], want)
		}
	}
}

func TestSGDMomentumLearnsLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	net := NewNetwork(NewDense(3, 1))
	net.InitUniform(rng, 0.1)
	opt := NewSGD(net, 0.05, 0.9)
	trueW := []float64{1.5, -2, 0.5}
	for i := 0; i < 800; i++ {
		x := mat.New(8, 3)
		target := mat.New(8, 1)
		for r := 0; r < 8; r++ {
			row := x.Row(r)
			for j := range row {
				row[j] = rng.NormFloat64()
			}
			target.Data[r] = mat.Dot(row, trueW) + 0.7
		}
		out := net.Forward(x, true)
		_, grad := MSELoss(out, target)
		net.Backward(grad)
		opt.Step()
	}
	d := net.Layers[0].(*Dense)
	for j, w := range trueW {
		if math.Abs(d.W.Value.At(j, 0)-w) > 0.05 {
			t.Fatalf("weight %d = %v, want %v", j, d.W.Value.At(j, 0), w)
		}
	}
	if math.Abs(d.B.Value.Data[0]-0.7) > 0.05 {
		t.Fatalf("bias = %v, want 0.7", d.B.Value.Data[0])
	}
}

func TestSoftUpdate(t *testing.T) {
	a := NewNetwork(NewDense(2, 2))
	b := NewNetwork(NewDense(2, 2))
	a.Params()[0].Value.Fill(1)
	b.Params()[0].Value.Fill(0)
	b.SoftUpdateFrom(a, 0.1)
	if v := b.Params()[0].Value.Data[0]; math.Abs(v-0.1) > 1e-12 {
		t.Fatalf("soft update = %v, want 0.1", v)
	}
	a.CopyTo(b)
	if v := b.Params()[0].Value.Data[0]; v != 1 {
		t.Fatalf("CopyTo = %v, want 1", v)
	}
}

func TestClipGradients(t *testing.T) {
	net := NewNetwork(NewDense(2, 2))
	for _, p := range net.Params() {
		p.Grad.Fill(10)
	}
	pre := net.ClipGradients(1)
	if pre <= 1 {
		t.Fatalf("pre-clip norm = %v, want > 1", pre)
	}
	var total float64
	for _, p := range net.Params() {
		for _, g := range p.Grad.Data {
			total += g * g
		}
	}
	if math.Abs(math.Sqrt(total)-1) > 1e-9 {
		t.Fatalf("post-clip norm = %v, want 1", math.Sqrt(total))
	}
}

func TestHuberLoss(t *testing.T) {
	pred := mat.FromSlice(1, 2, []float64{0, 10})
	target := mat.FromSlice(1, 2, []float64{0.5, 0})
	loss, grad := HuberLoss(pred, target, 1)
	// Element 0: |d|=0.5 ≤ 1 → 0.125; element 1: d=10 → 1*(10−0.5)=9.5.
	if math.Abs(loss-(0.125+9.5)/2) > 1e-12 {
		t.Fatalf("huber loss = %v", loss)
	}
	if math.Abs(grad.Data[0]-(-0.25)) > 1e-12 || math.Abs(grad.Data[1]-0.5) > 1e-12 {
		t.Fatalf("huber grad = %v", grad.Data)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	build := func() *Network {
		return NewNetwork(NewDense(4, 8), NewBatchNorm(8), NewTanh(), NewDense(8, 2))
	}
	src := build()
	src.InitNormal(rng, 0.5)
	// Push some data through to move running stats.
	x := mat.New(16, 4)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64() * 3
	}
	src.Forward(x, true)

	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	dst := build()
	if err := dst.Load(&buf); err != nil {
		t.Fatal(err)
	}
	xe := mat.New(3, 4)
	for i := range xe.Data {
		xe.Data[i] = rng.NormFloat64()
	}
	ys := src.Forward(xe.Clone(), false)
	yd := dst.Forward(xe.Clone(), false)
	for i := range ys.Data {
		if ys.Data[i] != yd.Data[i] {
			t.Fatalf("output %d differs after reload: %v vs %v", i, ys.Data[i], yd.Data[i])
		}
	}
}

func TestLoadRejectsMismatchedArch(t *testing.T) {
	src := NewNetwork(NewDense(2, 2))
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	dst := NewNetwork(NewDense(2, 2), NewDense(2, 2))
	if err := dst.Load(&buf); err == nil {
		t.Fatal("expected error loading into different architecture")
	}
}

func TestInitializers(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	net := NewNetwork(NewDense(10, 10), NewBatchNorm(10))
	net.InitUniform(rng, 0.1)
	d := net.Layers[0].(*Dense)
	for _, v := range d.W.Value.Data {
		if v < -0.1 || v > 0.1 {
			t.Fatalf("uniform init out of range: %v", v)
		}
	}
	for _, v := range d.B.Value.Data {
		if v != 0 {
			t.Fatalf("bias not zeroed: %v", v)
		}
	}
	bn := net.Layers[1].(*BatchNorm)
	if bn.Gamma.Value.Data[0] != 1 || bn.Beta.Value.Data[0] != 0 {
		t.Fatal("batchnorm affine params not reset")
	}
	net.InitNormal(rng, 0.01)
	var sum float64
	for _, v := range d.W.Value.Data {
		sum += math.Abs(v)
	}
	if sum/100 > 0.05 {
		t.Fatalf("normal(0,0.01) init too large: mean abs %v", sum/100)
	}
}
