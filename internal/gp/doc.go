// Package gp implements Gaussian-process regression with a squared
// exponential kernel, the model OtterTune [4] uses to map configurations
// to performance. Inputs are expected in normalized [0,1]^d space.
package gp
