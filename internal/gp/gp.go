package gp

import (
	"errors"
	"math"

	"cdbtune/internal/mat"
)

// GP is a fitted Gaussian-process regressor.
type GP struct {
	// Kernel hyperparameters.
	LengthScale float64 // shared RBF length scale
	SignalVar   float64 // kernel amplitude σ_f²
	NoiseVar    float64 // observation noise σ_n²

	x     *mat.Matrix // training inputs, n×d
	alpha []float64   // K⁻¹(y−μ)
	chol  *mat.Matrix // Cholesky factor of K + σ_n²I
	yMean float64
	yStd  float64
}

// Config selects GP hyperparameters; the zero value gets defaults suited
// to normalized inputs.
type Config struct {
	LengthScale float64
	SignalVar   float64
	NoiseVar    float64
}

// Fit trains a GP on inputs x (n×d) and targets y (len n). Targets are
// standardized internally. It returns an error when the kernel matrix is
// numerically singular.
func Fit(x *mat.Matrix, y []float64, cfg Config) (*GP, error) {
	if x.Rows != len(y) {
		return nil, errors.New("gp: x rows and y length differ")
	}
	if x.Rows == 0 {
		return nil, errors.New("gp: no training data")
	}
	g := &GP{
		LengthScale: cfg.LengthScale,
		SignalVar:   cfg.SignalVar,
		NoiseVar:    cfg.NoiseVar,
		x:           x.Clone(),
	}
	if g.LengthScale <= 0 {
		// Scale with dimensionality so that distances between random
		// points in [0,1]^d stay O(1) in kernel space.
		g.LengthScale = 0.3 * math.Sqrt(float64(x.Cols))
	}
	if g.SignalVar <= 0 {
		g.SignalVar = 1
	}
	if g.NoiseVar <= 0 {
		g.NoiseVar = 1e-3
	}
	g.yMean = mat.Mean(y)
	g.yStd = mat.Stddev(y)
	if g.yStd == 0 {
		g.yStd = 1
	}
	ys := make([]float64, len(y))
	for i, v := range y {
		ys[i] = (v - g.yMean) / g.yStd
	}

	n := x.Rows
	k := mat.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := g.kernel(x.Row(i), x.Row(j))
			k.Set(i, j, v)
			k.Set(j, i, v)
		}
		k.Set(i, i, k.At(i, i)+g.NoiseVar)
	}
	chol, err := mat.Cholesky(k)
	if err != nil {
		return nil, err
	}
	g.chol = chol
	g.alpha = mat.CholSolve(chol, ys)
	return g, nil
}

// kernel is the squared-exponential covariance.
func (g *GP) kernel(a, b []float64) float64 {
	d := mat.Dist2(a, b)
	return g.SignalVar * math.Exp(-d*d/(2*g.LengthScale*g.LengthScale))
}

// Predict returns the posterior mean and variance at query point q.
func (g *GP) Predict(q []float64) (mean, variance float64) {
	n := g.x.Rows
	ks := make([]float64, n)
	for i := 0; i < n; i++ {
		ks[i] = g.kernel(q, g.x.Row(i))
	}
	mu := mat.Dot(ks, g.alpha)
	v := mat.CholForward(g.chol, ks)
	variance = g.SignalVar - mat.Dot(v, v)
	if variance < 1e-12 {
		variance = 1e-12
	}
	return mu*g.yStd + g.yMean, variance * g.yStd * g.yStd
}

// ExpectedImprovement computes the EI acquisition of maximizing the target
// at q given the best observed value so far.
func (g *GP) ExpectedImprovement(q []float64, best float64) float64 {
	mean, variance := g.Predict(q)
	sd := math.Sqrt(variance)
	if sd < 1e-12 {
		return 0
	}
	z := (mean - best) / sd
	return (mean-best)*stdNormCDF(z) + sd*stdNormPDF(z)
}

func stdNormPDF(z float64) float64 {
	return math.Exp(-z*z/2) / math.Sqrt(2*math.Pi)
}

func stdNormCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}
