package gp

import (
	"math"
	"math/rand"
	"testing"

	"cdbtune/internal/mat"
)

func TestFitErrors(t *testing.T) {
	if _, err := Fit(mat.New(0, 2), nil, Config{}); err == nil {
		t.Fatal("empty data must error")
	}
	if _, err := Fit(mat.New(2, 2), []float64{1}, Config{}); err == nil {
		t.Fatal("length mismatch must error")
	}
}

func TestInterpolatesTrainingPoints(t *testing.T) {
	x := mat.FromSlice(4, 1, []float64{0, 0.33, 0.66, 1})
	y := []float64{1, 3, 2, 5}
	g, err := Fit(x, y, Config{NoiseVar: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	for i := range y {
		mean, variance := g.Predict(x.Row(i))
		if math.Abs(mean-y[i]) > 0.05 {
			t.Fatalf("point %d: predicted %v, want %v", i, mean, y[i])
		}
		if variance < 0 {
			t.Fatalf("negative variance %v", variance)
		}
	}
}

func TestVarianceGrowsAwayFromData(t *testing.T) {
	x := mat.FromSlice(3, 1, []float64{0.4, 0.5, 0.6})
	y := []float64{1, 2, 1}
	g, err := Fit(x, y, Config{LengthScale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	_, vNear := g.Predict([]float64{0.5})
	_, vFar := g.Predict([]float64{0.0})
	if vFar <= vNear {
		t.Fatalf("variance should grow away from data: near %v far %v", vNear, vFar)
	}
}

func TestLearnsSmoothFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 60
	x := mat.New(n, 2)
	y := make([]float64, n)
	f := func(a, b float64) float64 { return math.Sin(3*a) + b*b }
	for i := 0; i < n; i++ {
		a, b := rng.Float64(), rng.Float64()
		x.Set(i, 0, a)
		x.Set(i, 1, b)
		y[i] = f(a, b)
	}
	g, err := Fit(x, y, Config{LengthScale: 0.3, NoiseVar: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	var sumErr float64
	const probes = 40
	for i := 0; i < probes; i++ {
		a, b := rng.Float64(), rng.Float64()
		mean, _ := g.Predict([]float64{a, b})
		sumErr += math.Abs(mean - f(a, b))
	}
	if avg := sumErr / probes; avg > 0.08 {
		t.Fatalf("mean prediction error %v, want < 0.08", avg)
	}
}

func TestExpectedImprovement(t *testing.T) {
	x := mat.FromSlice(3, 1, []float64{0.2, 0.5, 0.8})
	y := []float64{1, 2, 1}
	g, err := Fit(x, y, Config{LengthScale: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	// EI at a known-bad observed point ≈ 0; EI in unexplored space > 0.
	eiKnown := g.ExpectedImprovement([]float64{0.2}, 2)
	eiUnknown := g.ExpectedImprovement([]float64{0.05}, 2)
	if eiUnknown <= eiKnown {
		t.Fatalf("EI should prefer unexplored regions: known %v unknown %v", eiKnown, eiUnknown)
	}
	if eiKnown < 0 || eiUnknown < 0 {
		t.Fatal("EI must be non-negative")
	}
}

func TestDefaultHyperparameters(t *testing.T) {
	x := mat.FromSlice(2, 4, []float64{0, 0, 0, 0, 1, 1, 1, 1})
	g, err := Fit(x, []float64{0, 1}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if g.LengthScale <= 0 || g.SignalVar != 1 || g.NoiseVar != 1e-3 {
		t.Fatalf("defaults not applied: %+v", g)
	}
}

func TestConstantTargets(t *testing.T) {
	x := mat.FromSlice(3, 1, []float64{0.1, 0.5, 0.9})
	g, err := Fit(x, []float64{7, 7, 7}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	mean, _ := g.Predict([]float64{0.3})
	if math.Abs(mean-7) > 0.01 {
		t.Fatalf("constant fit predicts %v, want 7", mean)
	}
}

// Property: EI is non-negative everywhere and zero-ish at dominated
// observed points with tight noise.
func TestEINonNegativeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 12
	x := mat.New(n, 2)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x.Set(i, 0, rng.Float64())
		x.Set(i, 1, rng.Float64())
		y[i] = rng.NormFloat64()
	}
	g, err := Fit(x, y, Config{})
	if err != nil {
		t.Fatal(err)
	}
	best := y[0]
	for _, v := range y[1:] {
		if v > best {
			best = v
		}
	}
	for i := 0; i < 200; i++ {
		q := []float64{rng.Float64(), rng.Float64()}
		if ei := g.ExpectedImprovement(q, best); ei < 0 || math.IsNaN(ei) {
			t.Fatalf("EI(%v) = %v", q, ei)
		}
	}
}
