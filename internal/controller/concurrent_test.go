package controller

import (
	"context"
	"sync"
	"testing"

	"cdbtune/internal/knobs"
	"cdbtune/internal/simdb"
	"cdbtune/internal/workload"
)

// TestConcurrentTuningRequests is the multi-tenant regression test: 8
// sessions hammer one controller (one shared tuner, one shared guardrail)
// through HandleTuningRequestCtx at once. Run under -race this pins down
// the controller's concurrency contract — the request counter, the
// capture rng and the guardrail must all be synchronized, and every
// request must still produce a valid, approved result against its own
// instance.
func TestConcurrentTuningRequests(t *testing.T) {
	tn, cat := testTuner(t)
	c, err := New(Config{Tuner: tn, Seed: 7, OnlineSteps: 3})
	if err != nil {
		t.Fatal(err)
	}
	const sessions = 8
	loads := workload.All()
	var wg sync.WaitGroup
	results := make([]RequestResult, sessions)
	errs := make([]error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			db := simdb.New(knobs.EngineCDB, simdb.CDBA, int64(1000+i))
			results[i], errs[i] = c.HandleTuningRequestCtx(context.Background(), db, loads[i%len(loads)])
		}(i)
	}
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("session %d: %v", i, errs[i])
		}
		if len(results[i].Values) != cat.Len() {
			t.Fatalf("session %d: %d values, want %d", i, len(results[i].Values), cat.Len())
		}
		if !results[i].Approved {
			t.Fatalf("session %d: auto-approver must approve", i)
		}
	}
	if got := c.Requests(); got != sessions {
		t.Fatalf("Requests = %d, want %d", got, sessions)
	}
}
