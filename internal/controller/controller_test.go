package controller

import (
	"bytes"
	"testing"

	"cdbtune/internal/core"
	"cdbtune/internal/env"
	"cdbtune/internal/knobs"
	"cdbtune/internal/metrics"
	"cdbtune/internal/rl/ddpg"
	"cdbtune/internal/simdb"
	"cdbtune/internal/workload"
)

func testTuner(t *testing.T) (*core.Tuner, *knobs.Catalog) {
	t.Helper()
	full := knobs.MySQL(knobs.EngineCDB)
	idx := make([]int, 8)
	for i := range idx {
		idx[i] = i
	}
	cat := full.Subset(idx)
	cfg := core.DefaultConfig(cat)
	d := ddpg.DefaultConfig(metrics.NumMetrics, cat.Len())
	d.ActorHidden = []int{24, 24}
	d.CriticHidden = []int{32, 24}
	cfg.DDPG = d
	cfg.StepsPerEpisode = 6
	cfg.UpdatesPerStep = 1
	tn, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tn, cat
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("missing tuner must error")
	}
	tn, _ := testTuner(t)
	c, err := New(Config{Tuner: tn})
	if err != nil {
		t.Fatal(err)
	}
	if c.cfg.CaptureSec != 150 || c.cfg.OnlineSteps != 5 {
		t.Fatalf("defaults not applied: %+v", c.cfg)
	}
}

func TestTuningRequestEndToEnd(t *testing.T) {
	tn, cat := testTuner(t)
	// A little training so the tuner has a remembered best.
	mk := func(ep int) *env.Env {
		db := simdb.New(knobs.EngineCDB, simdb.CDBA, int64(100+ep))
		return env.New(db, cat, workload.SysbenchRW())
	}
	if _, err := tn.OfflineTrain(mk, 4); err != nil {
		t.Fatal(err)
	}
	c, err := New(Config{Tuner: tn, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	db := simdb.New(knobs.EngineCDB, simdb.CDBA, 999)
	res, err := c.HandleTuningRequest(db, workload.SysbenchRW())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Approved {
		t.Fatal("auto-approver must approve")
	}
	if res.Replayed.Name != "replayed" {
		t.Fatalf("request did not replay the captured workload: %q", res.Replayed.Name)
	}
	if res.Replayed.ReadFraction < 0.6 || res.Replayed.ReadFraction > 0.8 {
		t.Fatalf("replayed profile lost the RW mix: %v", res.Replayed.ReadFraction)
	}
	if len(res.Values) != cat.Len() {
		t.Fatalf("values dim %d", len(res.Values))
	}
	if c.Requests() != 1 {
		t.Fatalf("Requests = %d", c.Requests())
	}
}

func TestRejectionRollsBack(t *testing.T) {
	tn, cat := testTuner(t)
	// Impossible threshold: nothing is ever approved.
	c, err := New(Config{Tuner: tn, Approver: ThresholdApprover{MinImprovement: 1e9}, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	db := simdb.New(knobs.EngineCDB, simdb.CDBA, 42)
	hw := db.Instance().HW
	before := cat.Denormalize(db.CurrentKnobs(cat), hw.RAMGB, hw.DiskGB)
	res, err := c.HandleTuningRequest(db, workload.TPCC())
	if err != nil {
		t.Fatal(err)
	}
	if res.Approved {
		t.Fatal("threshold approver should have rejected")
	}
	after := cat.Denormalize(db.CurrentKnobs(cat), hw.RAMGB, hw.DiskGB)
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("knob %s not rolled back: %v vs %v", cat.Knobs[i].Name, after[i], before[i])
		}
	}
}

func TestThresholdApprover(t *testing.T) {
	a := ThresholdApprover{MinImprovement: 0.05}
	if a.Approve(nil, nil, 0.04) {
		t.Fatal("should reject below threshold")
	}
	if !a.Approve(nil, nil, 0.06) {
		t.Fatal("should approve above threshold")
	}
}

func TestTrainingRequest(t *testing.T) {
	tn, cat := testTuner(t)
	c, err := New(Config{Tuner: tn})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(ep int) *env.Env {
		db := simdb.New(knobs.EngineCDB, simdb.CDBA, int64(500+ep))
		return env.New(db, cat, workload.SysbenchWO())
	}
	rep, err := c.HandleTrainingRequest(mk, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Episodes != 3 {
		t.Fatalf("Episodes = %d", rep.Episodes)
	}
	// Parallel path.
	rep, err = c.HandleTrainingRequest(mk, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Episodes != 4 {
		t.Fatalf("parallel Episodes = %d", rep.Episodes)
	}
}

func TestModelPersistence(t *testing.T) {
	tn, cat := testTuner(t)
	c, err := New(Config{Tuner: tn})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.SaveModel(&buf); err != nil {
		t.Fatal(err)
	}
	tn2, _ := testTuner(t)
	c2, err := New(Config{Tuner: tn2})
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.LoadModel(&buf); err != nil {
		t.Fatal(err)
	}
	s := make([]float64, metrics.NumMetrics)
	a, b := tn.Agent().Act(s), tn2.Agent().Act(s)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("model differs after reload")
		}
	}
	_ = cat
}
