// Package controller implements the distributed-cloud-platform controller
// of the paper's Figure 2: the component that mediates between the client,
// the CDB instances and the tuning system. It handles the two request
// kinds the paper describes — a user's tuning request (§2.1.2: capture
// ~150 s of the user's workload, replay it as a stress test, run the
// 5-step online tuning, and deploy only after acquiring the DBA's or
// user's license, §2.2.3) and a DBA's training request (§2.2: offline
// training against the workload generator).
package controller
