package controller

import (
	"path/filepath"
	"testing"

	"cdbtune/internal/chaos"
	"cdbtune/internal/core"
	"cdbtune/internal/env"
	"cdbtune/internal/knobs"
	"cdbtune/internal/simdb"
	"cdbtune/internal/workload"
)

// A tuning request served during a crash storm must leave the tenant on
// the best-known-good configuration — here the pre-request one, since
// every recommendation crashes — and report the guardrail's reverts.
func TestTuningRequestSurvivesCrashStorm(t *testing.T) {
	tn, cat := testTuner(t)
	mk := func(ep int) *env.Env {
		db := simdb.New(knobs.EngineCDB, simdb.CDBA, int64(200+ep))
		return env.New(db, cat, workload.SysbenchRW())
	}
	if _, err := tn.OfflineTrain(mk, 3); err != nil {
		t.Fatal(err)
	}
	c, err := New(Config{Tuner: tn, Seed: 1, GuardK: 2})
	if err != nil {
		t.Fatal(err)
	}

	// Run 1 is the request's baseline measurement; every later stress
	// test crashes.
	in := chaos.New(chaos.Config{Seed: 5, CrashStormAtRun: 2, CrashStormRuns: 500})
	db := simdb.New(knobs.EngineCDB, simdb.CDBA, 888)
	before := db.CurrentKnobs(cat)

	res, err := c.HandleTuningRequest(in.Wrap(db), workload.SysbenchRW())
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashes == 0 {
		t.Fatal("storm did not bite — test is vacuous")
	}
	if res.Reverts == 0 {
		t.Fatal("guardrail never reverted during the storm")
	}
	got := db.CurrentKnobs(cat)
	for i := range got {
		if got[i] != before[i] {
			t.Fatalf("knob %d left at %v, want pre-request %v — tenant must end on best-known-good", i, got[i], before[i])
		}
	}
	if _, _, regions := c.Guardrail().Stats(); regions == 0 {
		t.Fatal("crash regions were not recorded for future requests")
	}
}

// TestChaosSmoke is the `make chaos-smoke` scenario: a seeded run with
// every fault class enabled flows through offline training (killed and
// resumed from its checkpoint) and a served tuning request, and the fault
// accounting surfaces in the reports.
func TestChaosSmoke(t *testing.T) {
	tn, cat := testTuner(t)
	w := workload.SysbenchRW()

	in := chaos.New(chaos.Config{
		Seed:          42,
		TransientProb: 0.05,
		ApplyFailProb: 0.03,
		StallProb:     0.05,
		StallSec:      30,
		DropoutProb:   0.05,
		CrashProb:     0.02,
	})
	mk := func(ep int) *env.Env {
		db := simdb.New(knobs.EngineCDB, simdb.CDBA, int64(300+ep))
		return env.New(in.Wrap(db), cat, w)
	}

	// Train under chaos with checkpointing, "kill" the process halfway,
	// and resume: the resumed run's episode accounting must match the
	// full budget.
	const episodes, killAfter = 6, 3
	ck := &core.Checkpointer{Path: filepath.Join(t.TempDir(), "smoke.ckpt"), Every: 1}
	c, err := New(Config{Tuner: tn, Seed: 7, GuardK: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.HandleTrainingRequestOpts(mk, core.TrainOptions{
		Episodes: killAfter, Workers: 2, Checkpoint: ck,
	}); err != nil {
		t.Fatal(err)
	}
	rep, err := c.HandleTrainingRequestOpts(mk, core.TrainOptions{
		Episodes: episodes, Workers: 2, Checkpoint: ck, Resume: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Episodes != episodes || !rep.Resumed || rep.ResumedEpisodes != killAfter {
		t.Fatalf("resume accounting: episodes %d resumed %v/%d, want %d/%d",
			rep.Episodes, rep.Resumed, rep.ResumedEpisodes, episodes, killAfter)
	}
	if !rep.Faults.Any() && rep.Crashes == 0 {
		t.Fatal("chaos config injected nothing — smoke test is vacuous")
	}

	// Serve a tuning request against a chaotic instance.
	db := simdb.New(knobs.EngineCDB, simdb.CDBA, 777)
	res, err := c.HandleTuningRequest(in.Wrap(db), w)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) == 0 && res.SkippedSteps == 0 && res.Crashes == 0 {
		t.Fatal("request made no progress at all")
	}
	cnt := in.Counters()
	if cnt.Transients+cnt.Stalls+cnt.Dropouts+cnt.Crashes+cnt.ApplyFails == 0 {
		t.Fatalf("injector never fired: %+v", cnt)
	}
}
