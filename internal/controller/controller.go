package controller

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"

	"cdbtune/internal/core"
	"cdbtune/internal/env"
	"cdbtune/internal/knobs"
	"cdbtune/internal/simdb"
	"cdbtune/internal/workload"
)

// Approver models the license step of §2.2.3: after the recommender
// produces a configuration, the controller deploys it only with the DBA's
// or user's approval.
type Approver interface {
	// Approve inspects the recommended configuration (actual values,
	// aligned with cat) and the projected improvement and grants or
	// denies deployment.
	Approve(cat *knobs.Catalog, values []float64, improvement float64) bool
}

// AutoApprove grants every recommendation — the mode the paper's
// experiments effectively run in.
type AutoApprove struct{}

// Approve implements Approver.
func (AutoApprove) Approve(*knobs.Catalog, []float64, float64) bool { return true }

// ThresholdApprover approves only recommendations whose projected
// throughput improvement exceeds MinImprovement (e.g. 0.05 = +5 %);
// everything else keeps the user's current configuration.
type ThresholdApprover struct{ MinImprovement float64 }

// Approve implements Approver.
func (a ThresholdApprover) Approve(_ *knobs.Catalog, _ []float64, improvement float64) bool {
	return improvement >= a.MinImprovement
}

// Config assembles a controller.
type Config struct {
	Tuner    *core.Tuner
	Approver Approver
	// CaptureSec is the workload-capture window (§2.1.2: "recent about
	// 150 seconds"); CaptureOpsPerSec the trace sampling rate.
	CaptureSec       int
	CaptureOpsPerSec float64
	// OnlineSteps is the per-request recommendation budget (paper: 5).
	OnlineSteps int
	Seed        int64
	// GuardK is the consecutive-failure budget before the safety guardrail
	// reverts the instance to its best-known-good configuration (0 = the
	// guardrail default of 3); GuardRadius is the normalized knob distance
	// under which a recommendation counts as re-entering a recorded
	// near-crash region (0 = default 0.05).
	GuardK      int
	GuardRadius float64
}

// Controller mediates tuning and training requests. It is safe for
// concurrent use: the serving layer runs many sessions against one
// controller, so the request counter and the capture rng are mutex-
// protected here, the guardrail synchronizes itself, and the tuner
// serializes agent access internally (see the core package doc).
type Controller struct {
	cfg   Config
	guard *core.Guardrail

	mu       sync.Mutex
	rng      *rand.Rand
	requests int
}

// New builds a controller; Tuner is required, everything else defaults to
// the paper's protocol.
func New(cfg Config) (*Controller, error) {
	if cfg.Tuner == nil {
		return nil, errors.New("controller: Config.Tuner is required")
	}
	if cfg.Approver == nil {
		cfg.Approver = AutoApprove{}
	}
	if cfg.CaptureSec == 0 {
		cfg.CaptureSec = 150
	}
	if cfg.CaptureOpsPerSec == 0 {
		cfg.CaptureOpsPerSec = 50
	}
	if cfg.OnlineSteps == 0 {
		cfg.OnlineSteps = 5
	}
	return &Controller{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		guard: core.NewGuardrail(cfg.GuardK, cfg.GuardRadius),
	}, nil
}

// Guardrail exposes the controller's safety guardrail, shared across every
// tuning request it serves so near-crash regions learned on one request
// protect the next.
func (c *Controller) Guardrail() *core.Guardrail { return c.guard }

// Requests reports how many tuning requests have been served.
func (c *Controller) Requests() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.requests
}

// RequestResult is the outcome of one served tuning request.
type RequestResult struct {
	core.TuneResult
	// Replayed is the workload profile reconstructed from the captured
	// trace and used for the stress tests.
	Replayed workload.Workload
	// Approved reports whether the license step granted deployment; when
	// false the instance was rolled back to its pre-request configuration.
	Approved bool
	// Values are the recommended actual knob values (aligned with the
	// tuner's catalog).
	Values []float64
}

// HandleTuningRequest serves one user tuning request against the user's
// database instance: capture, replay, tune, license, deploy-or-rollback.
// The tuning loop runs under the controller's safety guardrail, so a
// faulty instance (crashes, transient measurement failures) is reverted to
// its best-known-good configuration rather than left on a bad one. db is
// any measurement target satisfying env.Database — the simulator directly,
// or a chaos-wrapped instance in resilience tests.
func (c *Controller) HandleTuningRequest(db env.Database, userWorkload workload.Workload) (RequestResult, error) {
	return c.HandleTuningRequestCtx(context.Background(), db, userWorkload)
}

// HandleTuningRequestCtx is HandleTuningRequest under a context. A
// cancelled or past-deadline ctx abandons the request promptly: the tuning
// loop stops recommending, and because the license step never ran the
// instance is rolled back to its pre-request configuration before the
// context's error is returned (with valid partial accounting in the
// result).
func (c *Controller) HandleTuningRequestCtx(ctx context.Context, db env.Database, userWorkload workload.Workload) (RequestResult, error) {
	var out RequestResult
	cat := c.cfg.Tuner.Config().Cat

	// Workload generator, replay mode (§2.2.1): capture the user's recent
	// operations and reconstruct an equivalent profile. The rng is shared
	// across concurrent requests, so the capture runs under the mutex.
	c.mu.Lock()
	c.requests++
	trace := workload.Record(userWorkload, c.cfg.CaptureSec, c.cfg.CaptureOpsPerSec, c.rng)
	c.mu.Unlock()
	replayed, err := workload.Replay(trace)
	if err != nil {
		return out, fmt.Errorf("controller: replaying captured workload: %w", err)
	}
	out.Replayed = replayed

	// Remember the pre-request configuration for rollback.
	before := db.CurrentKnobs(cat)

	e := env.New(db, cat, replayed)
	res, err := c.cfg.Tuner.OnlineTuneCtx(ctx, e, c.cfg.OnlineSteps, true, c.guard)
	out.TuneResult = res
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// Abandoned request: no license was granted, so the user's
			// instance must not keep whatever the cut-short exploration
			// deployed.
			if rbErr := applyWithRetry(db, cat, before); rbErr != nil {
				return out, fmt.Errorf("controller: rolling back abandoned request: %v (after %w)", rbErr, err)
			}
		}
		return out, err
	}

	hw := db.Instance().HW
	out.Values = cat.Denormalize(res.Best, hw.RAMGB, hw.DiskGB)
	improvement := res.BestPerf.Throughput/res.Initial.Throughput - 1
	out.Approved = c.cfg.Approver.Approve(cat, out.Values, improvement)
	if !out.Approved {
		if err := applyWithRetry(db, cat, before); err != nil {
			return out, fmt.Errorf("controller: rolling back: %w", err)
		}
	}
	return out, nil
}

// applyWithRetry deploys a known-good configuration, absorbing a few
// transient deployment failures — a rollback must not be defeated by the
// same flakiness that triggered it.
func applyWithRetry(db env.Database, cat *knobs.Catalog, values []float64) error {
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		if _, err = db.ApplyKnobs(cat, values); err == nil {
			return nil
		}
		if !errors.Is(err, simdb.ErrTransient) {
			return err
		}
	}
	return err
}

// HandleTrainingRequest serves a DBA training request: offline training
// with the workload generator's standard workloads, optionally across
// parallel training instances (§5.1's 30-server setup). The unified
// trainer handles any worker count, serial included.
func (c *Controller) HandleTrainingRequest(mkEnv core.EnvFactory, episodes, workers int) (core.TrainReport, error) {
	return c.cfg.Tuner.OfflineTrainParallel(mkEnv, episodes, workers)
}

// HandleTrainingRequestOpts is HandleTrainingRequest with the full option
// set — checkpoint/resume, worker-respawn budget, telemetry hooks.
func (c *Controller) HandleTrainingRequestOpts(mkEnv core.EnvFactory, opts core.TrainOptions) (core.TrainReport, error) {
	return c.cfg.Tuner.OfflineTrainOpts(mkEnv, opts)
}

// SaveModel and LoadModel persist the tuning model across controller
// restarts.
func (c *Controller) SaveModel(w io.Writer) error { return c.cfg.Tuner.Save(w) }
func (c *Controller) LoadModel(r io.Reader) error { return c.cfg.Tuner.Load(r) }
