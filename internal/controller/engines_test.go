package controller

import (
	"testing"

	"cdbtune/internal/core"
	"cdbtune/internal/env"
	"cdbtune/internal/knobs"
	"cdbtune/internal/metrics"
	"cdbtune/internal/rl/ddpg"
	"cdbtune/internal/simdb"
	"cdbtune/internal/workload"
)

// TestTuningRequestOtherEngines serves requests against MongoDB,
// Postgres and LSM instances — the controller is engine-agnostic because
// the tuner's catalog carries the engine and env.OpenEngine picks the
// simulator family.
func TestTuningRequestOtherEngines(t *testing.T) {
	cases := []struct {
		engine knobs.Engine
		inst   simdb.Instance
		w      workload.Workload
	}{
		{knobs.EngineMongoDB, simdb.CDBE, workload.YCSB()},
		{knobs.EnginePostgres, simdb.CDBD, workload.TPCC()},
		{knobs.EngineLSM, simdb.CDBC, workload.YCSB()},
	}
	for _, c := range cases {
		full := knobs.ForEngine(c.engine)
		idx := make([]int, 6)
		for i := range idx {
			idx[i] = i
		}
		cat := full.Subset(idx)
		cfg := core.DefaultConfig(cat)
		d := ddpg.DefaultConfig(metrics.NumMetrics, cat.Len())
		d.ActorHidden = []int{16, 16}
		d.CriticHidden = []int{24, 16}
		cfg.DDPG = d
		cfg.StepsPerEpisode = 4
		cfg.UpdatesPerStep = 1
		tn, err := core.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ctl, err := New(Config{Tuner: tn, Seed: 5, OnlineSteps: 2})
		if err != nil {
			t.Fatal(err)
		}
		db := env.OpenEngine(c.engine, c.inst, 77)
		res, err := ctl.HandleTuningRequest(db, c.w)
		if err != nil {
			t.Fatalf("%v: %v", c.engine, err)
		}
		if res.BestPerf.Throughput <= 0 {
			t.Fatalf("%v: no performance", c.engine)
		}
		if len(res.Values) != cat.Len() {
			t.Fatalf("%v: values dim %d", c.engine, len(res.Values))
		}
	}
}
