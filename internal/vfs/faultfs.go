package vfs

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"
)

// ErrCrashed is what every FaultFS operation returns after the simulated
// power cut fires: the process whose disk this is can do no further I/O.
var ErrCrashed = errors.New("vfs: simulated power cut")

// Injectable disk errors. They are the real syscall values so errors.Is
// and Retryable treat injected faults exactly like production ones.
var (
	ErrNoSpace error = syscall.ENOSPC
	ErrIO      error = syscall.EIO
)

// DefaultSectorSize is the granularity at which an un-synced write can be
// torn by a power cut: the crash image may hold any sector-aligned prefix
// of the write. Real disks persist whole sectors; sub-sector frames are
// torn only when they span a sector boundary.
const DefaultSectorSize = 512

// Op is one logged mutating filesystem operation. Crash points are the
// boundaries before each Op: CrashBefore(i) simulates losing power before
// ops[i] executed.
type Op struct {
	Index int
	Kind  string // "create", "write", "sync", "truncate", "rename", "remove", "link", "mkdir", "syncdir"
	Path  string
}

func (o Op) String() string { return fmt.Sprintf("#%d %s %s", o.Index, o.Kind, o.Path) }

// Fault is one injection rule: the Nth-and-later mutating operations
// matching Kind/PathContains fail with Err. For writes, Partial >= 0
// applies the first Partial bytes before failing — the short write a
// full disk produces mid-frame.
type Fault struct {
	Kind         string // must equal Op.Kind; "" matches any kind
	PathContains string // substring match on the path; "" matches any path
	Skip         int    // skip this many matching ops before firing
	Count        int    // fire at most this many times (<=0 means once)
	Err          error  // error to return (nil defaults to ErrIO)
	Partial      int    // writes only: bytes applied before failing; <0 applies none

	hits int
}

// FaultFS is a deterministic in-memory filesystem that distinguishes
// volatile state (what the running process observes) from durable state
// (what survives a power cut): file bytes become durable on File.Sync,
// directory entries (creates, renames, removes, links) on SyncDir, new
// directories when their parent is fsynced. Every mutating operation is
// logged; CrashBefore arms a power cut at an op boundary, after which all
// operations fail with ErrCrashed; CrashImage / CrashImageTorn then
// materialize the surviving disk as a fresh, fault-free FaultFS to run
// recovery against.
type FaultFS struct {
	mu     sync.Mutex
	root   *fnode
	clock  func() time.Time
	sector int
	nextID uint64
	tmpSeq int

	ops     []Op
	crashAt int // crash before mutating op with this index; <0 disarmed
	crashed bool
	faults  []*Fault
}

// NewFaultFS returns an empty filesystem with no faults armed.
func NewFaultFS() *FaultFS {
	fs := &FaultFS{clock: time.Now, sector: DefaultSectorSize, crashAt: -1}
	fs.root = fs.newNode(true)
	return fs
}

// SetClock overrides the clock used to stamp mtimes, so lease-staleness
// logic driven by a fake clock sees consistent file times.
func (fs *FaultFS) SetClock(now func() time.Time) {
	fs.mu.Lock()
	fs.clock = now
	fs.mu.Unlock()
}

// SetSectorSize overrides the torn-write granularity (default 512).
func (fs *FaultFS) SetSectorSize(n int) {
	fs.mu.Lock()
	if n > 0 {
		fs.sector = n
	}
	fs.mu.Unlock()
}

// CrashBefore arms the power cut: the mutating operation with index n
// (and everything after it) fails with ErrCrashed. n = OpCount() of a
// completed run crashes after the final op.
func (fs *FaultFS) CrashBefore(n int) {
	fs.mu.Lock()
	fs.crashAt = n
	fs.mu.Unlock()
}

// Crashed reports whether the armed power cut has fired.
func (fs *FaultFS) Crashed() bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.crashed
}

// OpCount reports how many mutating operations have executed.
func (fs *FaultFS) OpCount() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return len(fs.ops)
}

// Ops returns a copy of the mutating-operation log.
func (fs *FaultFS) Ops() []Op {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return append([]Op(nil), fs.ops...)
}

// AddFault arms one injection rule.
func (fs *FaultFS) AddFault(f Fault) {
	fs.mu.Lock()
	cp := f
	fs.faults = append(fs.faults, &cp)
	fs.mu.Unlock()
}

// ClearFaults disarms all injection rules.
func (fs *FaultFS) ClearFaults() {
	fs.mu.Lock()
	fs.faults = nil
	fs.mu.Unlock()
}

// ---------------------------------------------------------------------------
// nodes

// fileOp is one un-synced content mutation, kept so a crash image can
// tear the file at sector granularity.
type fileOp struct {
	truncate bool
	size     int64 // truncate only
	off      int64
	data     []byte
}

// nsOp is one un-synced namespace mutation in a directory: names removed
// and names added, applied atomically (a same-directory rename is one op).
type nsOp struct {
	del []string
	add map[string]*fnode
}

type fnode struct {
	id    uint64
	dir   bool
	mode  os.FileMode
	mtime time.Time

	// file state
	data    []byte   // volatile content (what open handles observe)
	durable []byte   // content as of the last Sync
	pending []fileOp // un-synced content ops since the last Sync

	// directory state
	children  map[string]*fnode // volatile entries
	durableCh map[string]*fnode // entries as of the last SyncDir
	nsPending []nsOp            // un-synced namespace ops since the last SyncDir
}

func (fs *FaultFS) newNode(dir bool) *fnode {
	fs.nextID++
	n := &fnode{id: fs.nextID, dir: dir, mtime: fs.clock()}
	if dir {
		n.mode = 0o755 | os.ModeDir
		n.children = make(map[string]*fnode)
		n.durableCh = make(map[string]*fnode)
	} else {
		n.mode = 0o644
	}
	return n
}

func splitPath(p string) []string {
	p = filepath.ToSlash(filepath.Clean(p))
	p = strings.TrimPrefix(p, "/")
	if p == "" || p == "." {
		return nil
	}
	return strings.Split(p, "/")
}

// lookup resolves a path; callers hold fs.mu.
func (fs *FaultFS) lookup(p string) (*fnode, bool) {
	n := fs.root
	for _, part := range splitPath(p) {
		if !n.dir {
			return nil, false
		}
		c, ok := n.children[part]
		if !ok {
			return nil, false
		}
		n = c
	}
	return n, true
}

// lookupDir resolves a path's parent directory and final name.
func (fs *FaultFS) lookupDir(p string) (*fnode, string, bool) {
	parts := splitPath(p)
	if len(parts) == 0 {
		return nil, "", false
	}
	n := fs.root
	for _, part := range parts[:len(parts)-1] {
		c, ok := n.children[part]
		if !ok || !c.dir {
			return nil, "", false
		}
		n = c
	}
	return n, parts[len(parts)-1], true
}

// ---------------------------------------------------------------------------
// gates

func pathErr(op, path string, err error) error {
	return &os.PathError{Op: op, Path: path, Err: err}
}

// rgate fails every operation once the power cut has fired; callers hold
// fs.mu.
func (fs *FaultFS) rgate(op, path string) error {
	if fs.crashed {
		return pathErr(op, path, ErrCrashed)
	}
	return nil
}

// mutgate is the crash-point and fault-injection boundary in front of
// every mutating operation; callers hold fs.mu and have already validated
// the operation (a doomed-anyway op is not a distinct crash point). It
// returns the matched fault (nil if none) so write paths can honor
// Partial.
func (fs *FaultFS) mutgate(kind, path string) (*Fault, error) {
	if fs.crashed {
		return nil, pathErr(kind, path, ErrCrashed)
	}
	if fs.crashAt >= 0 && len(fs.ops) >= fs.crashAt {
		fs.crashed = true
		return nil, pathErr(kind, path, ErrCrashed)
	}
	fs.ops = append(fs.ops, Op{Index: len(fs.ops), Kind: kind, Path: path})
	for _, f := range fs.faults {
		if f.Kind != "" && f.Kind != kind {
			continue
		}
		if f.PathContains != "" && !strings.Contains(path, f.PathContains) {
			continue
		}
		max := f.Count
		if max <= 0 {
			max = 1
		}
		if f.hits >= f.Skip+max {
			continue
		}
		f.hits++
		if f.hits <= f.Skip {
			continue
		}
		err := f.Err
		if err == nil {
			err = ErrIO
		}
		return f, pathErr(kind, path, err)
	}
	return nil, nil
}

// ---------------------------------------------------------------------------
// FS implementation

func (fs *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.rgate("open", name); err != nil {
		return nil, err
	}
	n, ok := fs.lookup(name)
	switch {
	case ok && n.dir:
		return nil, pathErr("open", name, syscall.EISDIR)
	case ok && flag&os.O_CREATE != 0 && flag&os.O_EXCL != 0:
		return nil, pathErr("open", name, os.ErrExist)
	case !ok && flag&os.O_CREATE == 0:
		return nil, pathErr("open", name, os.ErrNotExist)
	}
	if !ok {
		parent, base, pok := fs.lookupDir(name)
		if !pok || parent == nil {
			return nil, pathErr("open", name, os.ErrNotExist)
		}
		if _, err := fs.mutgate("create", name); err != nil {
			return nil, err
		}
		n = fs.newNode(false)
		n.mode = perm
		parent.children[base] = n
		parent.nsPending = append(parent.nsPending, nsOp{add: map[string]*fnode{base: n}})
		parent.mtime = fs.clock()
	} else if flag&os.O_TRUNC != 0 && flag&(os.O_WRONLY|os.O_RDWR) != 0 {
		if _, err := fs.mutgate("truncate", name); err != nil {
			return nil, err
		}
		n.data = nil
		n.pending = append(n.pending, fileOp{truncate: true, size: 0})
		n.mtime = fs.clock()
	}
	h := &faultFile{fs: fs, node: n, name: name, flag: flag}
	if flag&os.O_APPEND != 0 {
		h.off = int64(len(n.data))
	}
	return h, nil
}

func (fs *FaultFS) CreateTemp(dir, pattern string) (File, error) {
	// Like os.CreateTemp: deterministic sequence instead of random names,
	// but still skipping names that already exist (a crash image can hold
	// a dead writer's leftover temp file).
	for try := 0; ; try++ {
		fs.mu.Lock()
		fs.tmpSeq++
		seq := fs.tmpSeq
		fs.mu.Unlock()
		var name string
		if i := strings.LastIndex(pattern, "*"); i >= 0 {
			name = pattern[:i] + fmt.Sprintf("%06d", seq) + pattern[i+1:]
		} else {
			name = pattern + fmt.Sprintf("%06d", seq)
		}
		f, err := fs.OpenFile(filepath.Join(dir, name), os.O_CREATE|os.O_EXCL|os.O_RDWR, 0o600)
		if err != nil && os.IsExist(err) && try < 10000 {
			continue
		}
		return f, err
	}
}

func (fs *FaultFS) Rename(oldpath, newpath string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.rgate("rename", oldpath); err != nil {
		return err
	}
	srcDir, srcName, ok := fs.lookupDir(oldpath)
	if !ok || srcDir == nil {
		return pathErr("rename", oldpath, os.ErrNotExist)
	}
	n, ok := srcDir.children[srcName]
	if !ok {
		return pathErr("rename", oldpath, os.ErrNotExist)
	}
	dstDir, dstName, ok := fs.lookupDir(newpath)
	if !ok || dstDir == nil {
		return pathErr("rename", newpath, os.ErrNotExist)
	}
	if _, err := fs.mutgate("rename", oldpath+" -> "+newpath); err != nil {
		return err
	}
	delete(srcDir.children, srcName)
	dstDir.children[dstName] = n
	if srcDir == dstDir {
		// A same-directory rename is one atomic namespace op: a crash
		// image applies both halves or neither.
		srcDir.nsPending = append(srcDir.nsPending, nsOp{del: []string{srcName}, add: map[string]*fnode{dstName: n}})
	} else {
		// Cross-directory rename atomicity is not modeled; the repo's
		// durable paths only rename within one directory.
		srcDir.nsPending = append(srcDir.nsPending, nsOp{del: []string{srcName}})
		dstDir.nsPending = append(dstDir.nsPending, nsOp{add: map[string]*fnode{dstName: n}})
	}
	now := fs.clock()
	srcDir.mtime, dstDir.mtime = now, now
	return nil
}

func (fs *FaultFS) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.rgate("remove", name); err != nil {
		return err
	}
	parent, base, ok := fs.lookupDir(name)
	if !ok || parent == nil {
		return pathErr("remove", name, os.ErrNotExist)
	}
	n, ok := parent.children[base]
	if !ok {
		return pathErr("remove", name, os.ErrNotExist)
	}
	if n.dir && len(n.children) > 0 {
		return pathErr("remove", name, syscall.ENOTEMPTY)
	}
	if _, err := fs.mutgate("remove", name); err != nil {
		return err
	}
	delete(parent.children, base)
	parent.nsPending = append(parent.nsPending, nsOp{del: []string{base}})
	parent.mtime = fs.clock()
	return nil
}

func (fs *FaultFS) Link(oldname, newname string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.rgate("link", oldname); err != nil {
		return err
	}
	n, ok := fs.lookup(oldname)
	if !ok {
		return pathErr("link", oldname, os.ErrNotExist)
	}
	if n.dir {
		return pathErr("link", oldname, syscall.EPERM)
	}
	parent, base, ok := fs.lookupDir(newname)
	if !ok || parent == nil {
		return pathErr("link", newname, os.ErrNotExist)
	}
	if _, exists := parent.children[base]; exists {
		return pathErr("link", newname, os.ErrExist)
	}
	if _, err := fs.mutgate("link", newname); err != nil {
		return err
	}
	parent.children[base] = n
	parent.nsPending = append(parent.nsPending, nsOp{add: map[string]*fnode{base: n}})
	parent.mtime = fs.clock()
	return nil
}

func (fs *FaultFS) Stat(name string) (os.FileInfo, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.rgate("stat", name); err != nil {
		return nil, err
	}
	n, ok := fs.lookup(name)
	if !ok {
		return nil, pathErr("stat", name, os.ErrNotExist)
	}
	return n.info(filepath.Base(filepath.Clean(name))), nil
}

func (fs *FaultFS) ReadFile(name string) ([]byte, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.rgate("read", name); err != nil {
		return nil, err
	}
	n, ok := fs.lookup(name)
	if !ok {
		return nil, pathErr("read", name, os.ErrNotExist)
	}
	if n.dir {
		return nil, pathErr("read", name, syscall.EISDIR)
	}
	return append([]byte(nil), n.data...), nil
}

func (fs *FaultFS) ReadDir(name string) ([]os.DirEntry, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.rgate("readdir", name); err != nil {
		return nil, err
	}
	n, ok := fs.lookup(name)
	if !ok {
		return nil, pathErr("readdir", name, os.ErrNotExist)
	}
	if !n.dir {
		return nil, pathErr("readdir", name, syscall.ENOTDIR)
	}
	names := make([]string, 0, len(n.children))
	for name := range n.children {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]os.DirEntry, 0, len(names))
	for _, nm := range names {
		out = append(out, dirEntry{name: nm, node: n.children[nm]})
	}
	return out, nil
}

func (fs *FaultFS) Glob(pattern string) ([]string, error) {
	dir, base := filepath.Split(pattern)
	ents, err := fs.ReadDir(filepath.Clean(dir))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out []string
	for _, e := range ents {
		ok, err := filepath.Match(base, e.Name())
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, filepath.Join(filepath.Clean(dir), e.Name()))
		}
	}
	return out, nil
}

func (fs *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.rgate("mkdir", path); err != nil {
		return err
	}
	n := fs.root
	built := ""
	for _, part := range splitPath(path) {
		built = built + "/" + part
		c, ok := n.children[part]
		if ok {
			if !c.dir {
				return pathErr("mkdir", built, syscall.ENOTDIR)
			}
			n = c
			continue
		}
		if _, err := fs.mutgate("mkdir", built); err != nil {
			return err
		}
		c = fs.newNode(true)
		c.mode = perm | os.ModeDir
		n.children[part] = c
		n.nsPending = append(n.nsPending, nsOp{add: map[string]*fnode{part: c}})
		n.mtime = fs.clock()
		n = c
	}
	return nil
}

func (fs *FaultFS) SyncDir(dir string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.rgate("syncdir", dir); err != nil {
		return err
	}
	n, ok := fs.lookup(dir)
	if !ok {
		return pathErr("syncdir", dir, os.ErrNotExist)
	}
	if !n.dir {
		return pathErr("syncdir", dir, syscall.ENOTDIR)
	}
	if _, err := fs.mutgate("syncdir", dir); err != nil {
		return err
	}
	n.durableCh = make(map[string]*fnode, len(n.children))
	for name, c := range n.children {
		n.durableCh[name] = c
	}
	n.nsPending = nil
	return nil
}

func (fs *FaultFS) SameFile(a, b os.FileInfo) bool {
	fa, aok := a.(fileInfo)
	fb, bok := b.(fileInfo)
	return aok && bok && fa.node == fb.node
}

// ---------------------------------------------------------------------------
// file handles

type faultFile struct {
	fs   *FaultFS
	node *fnode
	name string
	flag int
	off  int64
}

func (f *faultFile) Name() string { return f.name }

func (f *faultFile) writable() bool {
	return f.flag&(os.O_WRONLY|os.O_RDWR) != 0
}

func (f *faultFile) Read(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if err := f.fs.rgate("read", f.name); err != nil {
		return 0, err
	}
	if f.flag&os.O_WRONLY != 0 {
		return 0, pathErr("read", f.name, syscall.EBADF)
	}
	if f.off >= int64(len(f.node.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.node.data[f.off:])
	f.off += int64(n)
	return n, nil
}

func (f *faultFile) ReadAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if err := f.fs.rgate("read", f.name); err != nil {
		return 0, err
	}
	if f.flag&os.O_WRONLY != 0 {
		return 0, pathErr("read", f.name, syscall.EBADF)
	}
	if off >= int64(len(f.node.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.node.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// writeAt applies a (possibly partial) write to the volatile content and
// records it as an un-synced pending op; callers hold fs.mu.
func (f *faultFile) writeAt(p []byte, off int64) {
	end := off + int64(len(p))
	if int64(len(f.node.data)) < end {
		grown := make([]byte, end)
		copy(grown, f.node.data)
		f.node.data = grown
	}
	copy(f.node.data[off:], p)
	f.node.pending = append(f.node.pending, fileOp{off: off, data: append([]byte(nil), p...)})
	f.node.mtime = f.fs.clock()
}

func (f *faultFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if err := f.fs.rgate("write", f.name); err != nil {
		return 0, err
	}
	if !f.writable() {
		return 0, pathErr("write", f.name, syscall.EBADF)
	}
	if f.flag&os.O_APPEND != 0 {
		f.off = int64(len(f.node.data))
	}
	fault, err := f.fs.mutgate("write", f.name)
	if err != nil {
		if fault != nil && fault.Partial > 0 {
			n := fault.Partial
			if n > len(p) {
				n = len(p)
			}
			f.writeAt(p[:n], f.off)
			f.off += int64(n)
			return n, err
		}
		return 0, err
	}
	f.writeAt(p, f.off)
	f.off += int64(len(p))
	return len(p), nil
}

func (f *faultFile) WriteAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if err := f.fs.rgate("write", f.name); err != nil {
		return 0, err
	}
	if !f.writable() {
		return 0, pathErr("write", f.name, syscall.EBADF)
	}
	fault, err := f.fs.mutgate("write", f.name)
	if err != nil {
		if fault != nil && fault.Partial > 0 {
			n := fault.Partial
			if n > len(p) {
				n = len(p)
			}
			f.writeAt(p[:n], off)
			return n, err
		}
		return 0, err
	}
	f.writeAt(p, off)
	return len(p), nil
}

func (f *faultFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if err := f.fs.rgate("sync", f.name); err != nil {
		return err
	}
	if _, err := f.fs.mutgate("sync", f.name); err != nil {
		return err
	}
	f.node.durable = append([]byte(nil), f.node.data...)
	f.node.pending = nil
	return nil
}

func (f *faultFile) Truncate(size int64) error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if err := f.fs.rgate("truncate", f.name); err != nil {
		return err
	}
	if !f.writable() {
		return pathErr("truncate", f.name, syscall.EBADF)
	}
	if _, err := f.fs.mutgate("truncate", f.name); err != nil {
		return err
	}
	if size < 0 {
		size = 0
	}
	if int64(len(f.node.data)) > size {
		f.node.data = f.node.data[:size]
	} else if int64(len(f.node.data)) < size {
		grown := make([]byte, size)
		copy(grown, f.node.data)
		f.node.data = grown
	}
	f.node.pending = append(f.node.pending, fileOp{truncate: true, size: size})
	f.node.mtime = f.fs.clock()
	return nil
}

func (f *faultFile) Stat() (os.FileInfo, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if err := f.fs.rgate("stat", f.name); err != nil {
		return nil, err
	}
	return f.node.info(filepath.Base(filepath.Clean(f.name))), nil
}

func (f *faultFile) Close() error { return nil }

// ---------------------------------------------------------------------------
// metadata

type fileInfo struct {
	name  string
	size  int64
	mode  os.FileMode
	mtime time.Time
	node  *fnode
}

func (fi fileInfo) Name() string       { return fi.name }
func (fi fileInfo) Size() int64        { return fi.size }
func (fi fileInfo) Mode() os.FileMode  { return fi.mode }
func (fi fileInfo) ModTime() time.Time { return fi.mtime }
func (fi fileInfo) IsDir() bool        { return fi.mode.IsDir() }
func (fi fileInfo) Sys() any           { return fi.node }

func (n *fnode) info(name string) os.FileInfo {
	return fileInfo{name: name, size: int64(len(n.data)), mode: n.mode, mtime: n.mtime, node: n}
}

type dirEntry struct {
	name string
	node *fnode
}

func (d dirEntry) Name() string               { return d.name }
func (d dirEntry) IsDir() bool                { return d.node.dir }
func (d dirEntry) Type() os.FileMode          { return d.node.mode.Type() }
func (d dirEntry) Info() (os.FileInfo, error) { return d.node.info(d.name), nil }

// ---------------------------------------------------------------------------
// crash materialization

// CrashImage materializes the strictly-durable disk state — exactly what
// was fsynced, nothing more: un-synced file writes are dropped entirely
// and un-synced namespace ops (creates, renames, removes) never happened.
// The result is a fresh, fault-free, fully-synced FaultFS to run recovery
// code against.
func (fs *FaultFS) CrashImage() *FaultFS {
	return fs.crashImage(nil)
}

// CrashImageTorn materializes one seeded ext4-like crash state: each
// directory retains some prefix (chosen by the seed) of its un-synced
// namespace ops in operation order, and each file some prefix of its
// un-synced writes, with the first unapplied write possibly torn at
// sector granularity. The same seed always yields the same image; the
// strict CrashImage is the prefix-zero special case.
func (fs *FaultFS) CrashImageTorn(seed int64) *FaultFS {
	return fs.crashImage(rand.New(rand.NewSource(seed)))
}

func (fs *FaultFS) crashImage(rng *rand.Rand) *FaultFS {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	out := NewFaultFS()
	out.clock = fs.clock
	out.sector = fs.sector
	fs.copyDir(fs.root, out, out.root, rng)
	return out
}

// copyDir materializes src's crash-surviving entries into dst (a dir node
// of the out filesystem); callers hold fs.mu. Iteration is sorted so the
// rng draw sequence — and therefore the whole image — is a deterministic
// function of the seed.
func (fs *FaultFS) copyDir(src *fnode, out *FaultFS, dst *fnode, rng *rand.Rand) {
	entries := make(map[string]*fnode, len(src.durableCh))
	for name, c := range src.durableCh {
		entries[name] = c
	}
	if rng != nil && len(src.nsPending) > 0 {
		keep := rng.Intn(len(src.nsPending) + 1)
		for _, op := range src.nsPending[:keep] {
			for _, name := range op.del {
				delete(entries, name)
			}
			for name, c := range op.add {
				entries[name] = c
			}
		}
	}
	names := make([]string, 0, len(entries))
	for name := range entries {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c := entries[name]
		if c.dir {
			nd := out.newNode(true)
			nd.mode = c.mode
			nd.mtime = c.mtime
			dst.children[name] = nd
			dst.durableCh[name] = nd
			fs.copyDir(c, out, nd, rng)
			continue
		}
		content := fs.crashContent(c, rng)
		nf := out.newNode(false)
		nf.mode = c.mode
		nf.mtime = c.mtime
		nf.data = content
		nf.durable = append([]byte(nil), content...)
		dst.children[name] = nf
		dst.durableCh[name] = nf
	}
}

// crashContent computes a file's post-crash bytes: the last-synced
// content, plus (torn mode only) a seeded prefix of the un-synced ops
// with the first unapplied write torn at sector granularity.
func (fs *FaultFS) crashContent(n *fnode, rng *rand.Rand) []byte {
	base := append([]byte(nil), n.durable...)
	if rng == nil || len(n.pending) == 0 {
		return base
	}
	keep := rng.Intn(len(n.pending) + 1)
	for _, op := range n.pending[:keep] {
		base = applyFileOp(base, op, op.data)
	}
	if keep < len(n.pending) {
		op := n.pending[keep]
		if !op.truncate && len(op.data) > 0 {
			// Tear the first unapplied write: persist a sector-aligned
			// prefix of it (possibly zero sectors).
			sectors := rng.Intn(len(op.data)/fs.sector + 1)
			if cut := sectors * fs.sector; cut > 0 {
				base = applyFileOp(base, op, op.data[:cut])
			}
		}
	}
	return base
}

// applyFileOp replays one pending content op (with data possibly cut
// short of op.data for a torn write) onto base.
func applyFileOp(base []byte, op fileOp, data []byte) []byte {
	if op.truncate {
		if int64(len(base)) > op.size {
			return base[:op.size]
		}
		grown := make([]byte, op.size)
		copy(grown, base)
		return grown
	}
	end := op.off + int64(len(data))
	if int64(len(base)) < end {
		grown := make([]byte, end)
		copy(grown, base)
		base = grown
	}
	copy(base[op.off:], data)
	return base
}
