package vfs

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"syscall"
)

// File is the open-file surface the durable paths need: positioned and
// offset reads/writes, fsync, truncate, and metadata.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	io.ReaderAt
	io.WriterAt
	// Name reports the path the file was opened with.
	Name() string
	// Stat reports the file's current metadata.
	Stat() (os.FileInfo, error)
	// Sync flushes the file's content to stable storage. On FaultFS this
	// is the only way file bytes become crash-durable.
	Sync() error
	// Truncate changes the file's size.
	Truncate(size int64) error
}

// FS is the filesystem operation set the durable paths use. Two
// implementations exist: OS (direct passthrough to the os package) and
// *FaultFS (deterministic in-memory filesystem with fault injection and
// power-cut simulation). The semantics FaultFS models — and that callers
// must therefore assume — are the strict POSIX/ext4 ones:
//
//   - file writes are volatile until File.Sync;
//   - creates, renames, removes and links are volatile until the parent
//     directory is fsynced (SyncDir);
//   - a newly created directory is volatile until ITS parent is fsynced
//     (use MkdirAllDurable, not bare MkdirAll, for durable trees).
type FS interface {
	// OpenFile opens a file with os.OpenFile flag semantics (O_CREATE,
	// O_EXCL, O_TRUNC, O_APPEND, O_RDONLY/O_WRONLY/O_RDWR).
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// CreateTemp creates a new file in dir with a unique name derived
	// from pattern (os.CreateTemp semantics).
	CreateTemp(dir, pattern string) (File, error)
	// Rename atomically renames oldpath onto newpath, replacing newpath.
	Rename(oldpath, newpath string) error
	// Remove unlinks a file.
	Remove(name string) error
	// Link creates newname as a hard link to oldname; it never replaces
	// an existing newname.
	Link(oldname, newname string) error
	// Stat reports a path's metadata.
	Stat(name string) (os.FileInfo, error)
	// ReadFile returns a file's full content.
	ReadFile(name string) ([]byte, error)
	// ReadDir lists a directory, sorted by name.
	ReadDir(name string) ([]os.DirEntry, error)
	// Glob matches files like filepath.Glob. Only the final path element
	// of pattern may carry meta-characters.
	Glob(pattern string) ([]string, error)
	// MkdirAll creates a directory tree. The created entries are NOT
	// crash-durable until their parents are fsynced; use MkdirAllDurable
	// when the tree must survive a power cut.
	MkdirAll(path string, perm os.FileMode) error
	// SyncDir fsyncs a directory, making the creates/renames/removes
	// recorded in it crash-durable. Filesystems that refuse directory
	// fsync (some network mounts) degrade to pre-fsync durability rather
	// than failing.
	SyncDir(dir string) error
	// SameFile reports whether two Stat results name the same file
	// (inode identity — survives renames, distinguishes re-creations).
	SameFile(a, b os.FileInfo) bool
}

// MkdirAllDurable creates dir (and any missing parents) and fsyncs the
// parent of every directory it created, so the new tree survives a power
// cut. A bare MkdirAll leaves the new entries volatile: on a crash the
// whole subtree — and every file later written inside it, however
// carefully fsynced — can vanish, because the files are only reachable
// through directory entries that were never made durable.
func MkdirAllDurable(fsys FS, dir string, perm os.FileMode) error {
	dir = filepath.Clean(dir)
	if dir == "." || dir == string(filepath.Separator) {
		return nil
	}
	// Find the missing suffix of the component chain.
	var missing []string
	p := dir
	for {
		if _, err := fsys.Stat(p); err == nil {
			break
		}
		missing = append(missing, p)
		parent := filepath.Dir(p)
		if parent == p {
			break
		}
		p = parent
	}
	if len(missing) == 0 {
		return nil
	}
	if err := fsys.MkdirAll(dir, perm); err != nil {
		return err
	}
	// Sync parents deepest-last so each created entry is durable before
	// the entry that references it from above... order actually does not
	// matter for correctness (all syncs complete before return); sync
	// each created component's parent once.
	synced := make(map[string]bool)
	for i := len(missing) - 1; i >= 0; i-- {
		parent := filepath.Dir(missing[i])
		if synced[parent] {
			continue
		}
		synced[parent] = true
		if err := fsys.SyncDir(parent); err != nil {
			return err
		}
	}
	return nil
}

// Retryable reports whether err is a transient disk-space or I/O error
// (ENOSPC, EIO — real or injected) after which the caller may retry the
// operation. Every write path in the repo guarantees that when it
// returns a retryable error it has left no partial on-disk state behind
// (torn tails truncated, temp files removed), so a retry after the
// condition clears is safe.
func Retryable(err error) bool {
	return errors.Is(err, syscall.ENOSPC) || errors.Is(err, syscall.EIO)
}
