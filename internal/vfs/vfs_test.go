package vfs

import (
	"errors"
	"os"
	"strings"
	"testing"
)

func mustWriteFile(t *testing.T, fsys FS, path string, data []byte, sync bool) {
	t.Helper()
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatalf("write %s: %v", path, err)
	}
	if sync {
		if err := f.Sync(); err != nil {
			t.Fatalf("sync %s: %v", path, err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close %s: %v", path, err)
	}
}

// TestUnsyncedWriteDroppedByCrash pins the core durability rule: synced
// bytes survive a strict crash image, un-synced bytes do not.
func TestUnsyncedWriteDroppedByCrash(t *testing.T) {
	fs := NewFaultFS()
	if err := MkdirAllDurable(fs, "/d", 0o755); err != nil {
		t.Fatal(err)
	}
	mustWriteFile(t, fs, "/d/synced", []byte("hello"), true)
	if err := fs.SyncDir("/d"); err != nil {
		t.Fatal(err)
	}
	f, err := fs.OpenFile("/d/synced", os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("HELLO-MORE"), 0); err != nil {
		t.Fatal(err)
	}

	img := fs.CrashImage()
	got, err := img.ReadFile("/d/synced")
	if err != nil {
		t.Fatalf("crash image read: %v", err)
	}
	if string(got) != "hello" {
		t.Fatalf("crash image content = %q, want the synced %q", got, "hello")
	}
	// The live fs still sees the volatile write.
	live, _ := fs.ReadFile("/d/synced")
	if string(live) != "HELLO-MORE" {
		t.Fatalf("live content = %q", live)
	}
}

// TestCreateNotDurableUntilDirSync pins the namespace rule: a created and
// even fsynced file vanishes if its directory entry was never synced.
func TestCreateNotDurableUntilDirSync(t *testing.T) {
	fs := NewFaultFS()
	if err := MkdirAllDurable(fs, "/d", 0o755); err != nil {
		t.Fatal(err)
	}
	mustWriteFile(t, fs, "/d/vanishes", []byte("x"), true) // file synced, dir not
	img := fs.CrashImage()
	if _, err := img.ReadFile("/d/vanishes"); !os.IsNotExist(err) {
		t.Fatalf("file without dir-sync survived the crash: err=%v", err)
	}
	if err := fs.SyncDir("/d"); err != nil {
		t.Fatal(err)
	}
	img = fs.CrashImage()
	if got, err := img.ReadFile("/d/vanishes"); err != nil || string(got) != "x" {
		t.Fatalf("file after dir-sync: %q, %v", got, err)
	}
}

// TestRenameNotDurableUntilDirSync: after rename without dir sync, the
// crash image still holds the old name/content.
func TestRenameNotDurableUntilDirSync(t *testing.T) {
	fs := NewFaultFS()
	if err := MkdirAllDurable(fs, "/d", 0o755); err != nil {
		t.Fatal(err)
	}
	mustWriteFile(t, fs, "/d/a", []byte("old"), true)
	if err := fs.SyncDir("/d"); err != nil {
		t.Fatal(err)
	}
	mustWriteFile(t, fs, "/d/a.tmp", []byte("new"), true)
	if err := fs.Rename("/d/a.tmp", "/d/a"); err != nil {
		t.Fatal(err)
	}

	img := fs.CrashImage()
	if got, _ := img.ReadFile("/d/a"); string(got) != "old" {
		t.Fatalf("pre-dir-sync crash image has %q, want %q", got, "old")
	}
	if err := fs.SyncDir("/d"); err != nil {
		t.Fatal(err)
	}
	img = fs.CrashImage()
	if got, _ := img.ReadFile("/d/a"); string(got) != "new" {
		t.Fatalf("post-dir-sync crash image has %q, want %q", got, "new")
	}
	if _, err := img.Stat("/d/a.tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file survived rename+sync: %v", err)
	}
}

// TestMkdirAllNotDurable: a tree made with bare MkdirAll vanishes, one
// made with MkdirAllDurable survives.
func TestMkdirAllNotDurable(t *testing.T) {
	fs := NewFaultFS()
	if err := fs.MkdirAll("/a/b", 0o755); err != nil {
		t.Fatal(err)
	}
	mustWriteFile(t, fs, "/a/b/f", []byte("x"), true)
	if err := fs.SyncDir("/a/b"); err != nil {
		t.Fatal(err)
	}
	img := fs.CrashImage()
	if _, err := img.Stat("/a"); !os.IsNotExist(err) {
		t.Fatalf("bare MkdirAll tree survived: %v", err)
	}

	fs2 := NewFaultFS()
	if err := MkdirAllDurable(fs2, "/a/b", 0o755); err != nil {
		t.Fatal(err)
	}
	mustWriteFile(t, fs2, "/a/b/f", []byte("x"), true)
	if err := fs2.SyncDir("/a/b"); err != nil {
		t.Fatal(err)
	}
	img = fs2.CrashImage()
	if got, err := img.ReadFile("/a/b/f"); err != nil || string(got) != "x" {
		t.Fatalf("MkdirAllDurable tree lost: %q, %v", got, err)
	}
}

// TestCrashBeforeStopsAllOps: once the armed op boundary is reached,
// every later operation fails with ErrCrashed.
func TestCrashBeforeStopsAllOps(t *testing.T) {
	fs := NewFaultFS()
	if err := MkdirAllDurable(fs, "/d", 0o755); err != nil {
		t.Fatal(err)
	}
	n := fs.OpCount()
	fs.CrashBefore(n) // next mutating op dies
	f, err := fs.OpenFile("/d/x", os.O_CREATE|os.O_WRONLY, 0o644)
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("create after crash: %v (file=%v)", err, f)
	}
	if !fs.Crashed() {
		t.Fatal("crash did not latch")
	}
	if _, err := fs.ReadFile("/d/x"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("read after crash: %v", err)
	}
}

// TestShortWriteFault: a Partial write fault applies a prefix and
// returns a retryable ENOSPC.
func TestShortWriteFault(t *testing.T) {
	fs := NewFaultFS()
	if err := MkdirAllDurable(fs, "/d", 0o755); err != nil {
		t.Fatal(err)
	}
	fs.AddFault(Fault{Kind: "write", PathContains: "victim", Err: ErrNoSpace, Partial: 3})
	f, err := fs.OpenFile("/d/victim", os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("abcdef"))
	if n != 3 || !errors.Is(err, ErrNoSpace) || !Retryable(err) {
		t.Fatalf("short write: n=%d err=%v retryable=%v", n, err, Retryable(err))
	}
	got, _ := fs.ReadFile("/d/victim")
	if string(got) != "abc" {
		t.Fatalf("partial content %q", got)
	}
	// The rule fires once; the retry goes through.
	if n, err := f.WriteAt([]byte("abcdef"), 0); n != 6 || err != nil {
		t.Fatalf("retry: n=%d err=%v", n, err)
	}
}

// TestTornMaterializationSectorGranularity: an un-synced multi-sector
// write appears in a torn image only as a sector-aligned prefix.
func TestTornMaterializationSectorGranularity(t *testing.T) {
	fs := NewFaultFS()
	fs.SetSectorSize(4)
	if err := MkdirAllDurable(fs, "/d", 0o755); err != nil {
		t.Fatal(err)
	}
	mustWriteFile(t, fs, "/d/f", []byte("AAAA"), true)
	if err := fs.SyncDir("/d"); err != nil {
		t.Fatal(err)
	}
	f, _ := fs.OpenFile("/d/f", os.O_RDWR, 0)
	if _, err := f.WriteAt([]byte("BBBBBBBBBBBB"), 0); err != nil { // 12 bytes, un-synced
		t.Fatal(err)
	}

	seen := map[int]bool{}
	for seed := int64(0); seed < 64; seed++ {
		img := fs.CrashImageTorn(seed)
		got, err := img.ReadFile("/d/f")
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		nb := strings.Count(string(got), "B")
		if nb%4 != 0 {
			t.Fatalf("seed %d: torn content %q not sector aligned", seed, got)
		}
		if rest := strings.TrimLeft(string(got), "B"); strings.Trim(rest, "A") != "" {
			t.Fatalf("seed %d: unexpected content %q", seed, got)
		}
		seen[nb] = true
	}
	if len(seen) < 2 {
		t.Fatalf("torn materialization never varied: %v", seen)
	}
	// Strict image: the write is dropped entirely.
	if got, _ := fs.CrashImage().ReadFile("/d/f"); string(got) != "AAAA" {
		t.Fatalf("strict image %q", got)
	}
}

// TestSameFileIdentity: SameFile tracks inode identity across rename and
// distinguishes re-created paths — the gate the lease steal lock uses.
func TestSameFileIdentity(t *testing.T) {
	fs := NewFaultFS()
	if err := MkdirAllDurable(fs, "/d", 0o755); err != nil {
		t.Fatal(err)
	}
	mustWriteFile(t, fs, "/d/lock", nil, false)
	fi1, err := fs.Stat("/d/lock")
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/d/lock", "/d/lock2"); err != nil {
		t.Fatal(err)
	}
	fi2, _ := fs.Stat("/d/lock2")
	if !fs.SameFile(fi1, fi2) {
		t.Fatal("rename changed identity")
	}
	mustWriteFile(t, fs, "/d/lock", nil, false)
	fi3, _ := fs.Stat("/d/lock")
	if fs.SameFile(fi1, fi3) {
		t.Fatal("re-created path kept identity")
	}
	// Link shares identity.
	if err := fs.Link("/d/lock2", "/d/lock3"); err != nil {
		t.Fatal(err)
	}
	fi4, _ := fs.Stat("/d/lock3")
	if !fs.SameFile(fi2, fi4) {
		t.Fatal("link broke identity")
	}
}

// TestExclusiveCreate: O_EXCL loses against an existing file with
// os.IsExist, as the lease acquire protocol requires.
func TestExclusiveCreate(t *testing.T) {
	fs := NewFaultFS()
	if err := MkdirAllDurable(fs, "/d", 0o755); err != nil {
		t.Fatal(err)
	}
	mustWriteFile(t, fs, "/d/l", nil, false)
	_, err := fs.OpenFile("/d/l", os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if !os.IsExist(err) {
		t.Fatalf("O_EXCL on existing: %v", err)
	}
	if _, err := fs.Stat("/d/none"); !os.IsNotExist(err) {
		t.Fatalf("stat missing: %v", err)
	}
}

// TestDeterministicOpLog: two identical runs produce identical op logs,
// the property crash-point enumeration rests on.
func TestDeterministicOpLog(t *testing.T) {
	run := func() []Op {
		fs := NewFaultFS()
		if err := MkdirAllDurable(fs, "/srv/reg", 0o755); err != nil {
			t.Fatal(err)
		}
		mustWriteFile(t, fs, "/srv/reg/a", []byte("1"), true)
		tmp, err := fs.CreateTemp("/srv/reg", "a.tmp-*")
		if err != nil {
			t.Fatal(err)
		}
		tmp.Write([]byte("2"))
		tmp.Sync()
		tmp.Close()
		fs.Rename(tmp.Name(), "/srv/reg/a")
		fs.SyncDir("/srv/reg")
		return fs.Ops()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("op counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestGlob matches the registry's *.model scan shape.
func TestGlob(t *testing.T) {
	fs := NewFaultFS()
	if err := MkdirAllDurable(fs, "/reg", 0o755); err != nil {
		t.Fatal(err)
	}
	mustWriteFile(t, fs, "/reg/m1.model", []byte("x"), false)
	mustWriteFile(t, fs, "/reg/m2.model", []byte("x"), false)
	mustWriteFile(t, fs, "/reg/other.txt", []byte("x"), false)
	got, err := fs.Glob("/reg/*.model")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "/reg/m1.model" || got[1] != "/reg/m2.model" {
		t.Fatalf("glob: %v", got)
	}
	if none, err := fs.Glob("/missing/*.model"); err != nil || none != nil {
		t.Fatalf("glob missing dir: %v %v", none, err)
	}
}
