// Package vfs is the filesystem interposition seam under every durable
// artifact in the repo: registry entries, the change-log WAL, lease
// files, the fleet job journal and training checkpoints all reach the
// disk through an FS value instead of calling the os package directly.
// Production code runs on OS, a zero-overhead passthrough; the
// crash-consistency harness (internal/crashtest) runs the same code on
// *FaultFS, a deterministic in-memory filesystem that records every
// mutating operation, injects EIO/ENOSPC/short writes, and materializes
// the exact state a power cut would leave behind at any op boundary.
//
// # Durability model
//
// FaultFS models strict POSIX/ext4 semantics, which is also the contract
// callers must code against:
//
//   - File bytes are volatile until File.Sync; a crash drops un-synced
//     writes entirely (CrashImage) or tears them at sector granularity
//     in operation order (CrashImageTorn).
//   - Directory entries — creates, renames, removes, links — are
//     volatile until the directory is fsynced (SyncDir). A rename within
//     one directory is atomic: a crash applies it fully or not at all.
//   - A new directory is itself an entry in its parent: bare MkdirAll
//     leaves the whole subtree able to vanish on a crash, taking every
//     carefully-fsynced file inside with it. MkdirAllDurable fsyncs the
//     parents of everything it creates.
//
// # Crash exploration
//
// Every mutating operation gets an index in the op log; CrashBefore(i)
// makes op i and everything after it fail with ErrCrashed, simulating
// the process losing power at that boundary. CrashImage() then builds
// the strictly-fsynced surviving disk; CrashImageTorn(seed) one seeded
// ext4-like variant. Both are fresh fault-free FaultFS values, so the
// normal recovery paths run against them unmodified.
//
// # Error injection
//
// AddFault arms rules matched against (kind, path) of mutating ops:
// ENOSPC/EIO on writes and syncs, with Partial > 0 modelling the short
// write a full disk produces mid-frame. Injected errors are the real
// syscall values, so errors.Is / Retryable treat them exactly like
// production faults. Write paths that return a Retryable error guarantee
// they left no partial state behind.
//
// The package has no dependencies inside the repo, so every layer —
// nn.WriteAtomic, the registry, the fleet journal, checkpoints — can
// take an FS without import cycles.
package vfs
