package vfs

import (
	"errors"
	"os"
	"path/filepath"
)

// OS is the production filesystem: a zero-overhead passthrough to the os
// package. It is the default everywhere an FS is optional.
var OS FS = osFS{}

// osFS delegates every operation to the os package. os.Rename and the
// other raw calls are allowed here and nowhere else in ported packages —
// the check.sh vfs lint enforces that everything routes through an FS.
type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) Link(oldname, newname string) error { return os.Link(oldname, newname) }

func (osFS) Stat(name string) (os.FileInfo, error) { return os.Stat(name) }

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }

func (osFS) Glob(pattern string) ([]string, error) { return filepath.Glob(pattern) }

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, os.ErrInvalid) {
		return err
	}
	return nil
}

func (osFS) SameFile(a, b os.FileInfo) bool { return os.SameFile(a, b) }
