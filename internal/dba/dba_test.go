package dba

import (
	"testing"

	"cdbtune/internal/env"
	"cdbtune/internal/knobs"
	"cdbtune/internal/simdb"
	"cdbtune/internal/workload"
)

func newEnv(t *testing.T, w workload.Workload) *env.Env {
	t.Helper()
	db := simdb.New(knobs.EngineCDB, simdb.CDBA, 1)
	return env.New(db, db.Catalog(), w)
}

func TestRecommendBeatsDefaults(t *testing.T) {
	for _, w := range []workload.Workload{workload.SysbenchRO(), workload.SysbenchRW(), workload.SysbenchWO(), workload.TPCC()} {
		e := newEnv(t, w)
		base, err := e.Measure()
		if err != nil {
			t.Fatal(err)
		}
		_, perf, err := Tune(e)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if perf.Throughput <= base.Ext.Throughput {
			t.Errorf("%s: expert tuning %v did not beat default %v", w.Name, perf.Throughput, base.Ext.Throughput)
		}
	}
}

func TestTuneChargesExpertTime(t *testing.T) {
	e := newEnv(t, workload.TPCC())
	if _, _, err := Tune(e); err != nil {
		t.Fatal(err)
	}
	if e.Clock.Seconds() < TuneSeconds {
		t.Fatalf("clock = %v, want ≥ %v (8.6 h expert time)", e.Clock.Seconds(), TuneSeconds)
	}
}

func TestRecommendedValuesFollowRules(t *testing.T) {
	e := newEnv(t, workload.SysbenchRO())
	cfg := Recommend(e)
	if _, err := e.Step(cfg); err != nil {
		t.Fatal(err)
	}
	bp, _ := e.DB.KnobValue("innodb_buffer_pool_size")
	wantBP := 0.75 * 8 * 1024
	if bp < wantBP*0.9 || bp > wantBP*1.1 {
		t.Fatalf("buffer pool = %v MiB, want ≈%v (75%% of RAM)", bp, wantBP)
	}
	flush, _ := e.DB.KnobValue("innodb_flush_log_at_trx_commit")
	if flush != 1 {
		t.Fatalf("flush policy = %v, DBAs keep durability (1)", flush)
	}
	qc, _ := e.DB.KnobValue("query_cache_type")
	if qc != 1 {
		t.Fatalf("query cache type = %v on read-only, want enabled", qc)
	}
}

func TestQueryCacheDisabledOnWrites(t *testing.T) {
	e := newEnv(t, workload.SysbenchRW())
	cfg := Recommend(e)
	if _, err := e.Step(cfg); err != nil {
		t.Fatal(err)
	}
	qc, _ := e.DB.KnobValue("query_cache_type")
	if qc != 0 {
		t.Fatalf("query cache type = %v on read-write, want disabled", qc)
	}
}

func TestRecommendScalesWithHardware(t *testing.T) {
	small := simdb.New(knobs.EngineCDB, simdb.MakeX1(4), 1)
	big := simdb.New(knobs.EngineCDB, simdb.MakeX1(64), 1)
	es := env.New(small, small.Catalog(), workload.SysbenchWO())
	eb := env.New(big, big.Catalog(), workload.SysbenchWO())
	es.Step(Recommend(es))
	eb.Step(Recommend(eb))
	bs, _ := small.KnobValue("innodb_buffer_pool_size")
	bb, _ := big.KnobValue("innodb_buffer_pool_size")
	if bb <= bs {
		t.Fatalf("expert buffer pool must scale with RAM: %v vs %v", bs, bb)
	}
}

func TestImportanceOrderValidPermutation(t *testing.T) {
	cat := knobs.MySQL(knobs.EngineCDB)
	order := ImportanceOrder(cat)
	if len(order) != cat.Len() {
		t.Fatalf("order len %d, want %d", len(order), cat.Len())
	}
	seen := make(map[int]bool)
	for _, i := range order {
		if seen[i] || i < 0 || i >= cat.Len() {
			t.Fatalf("order is not a permutation at %d", i)
		}
		seen[i] = true
	}
	// Most important knob per expert lore: the buffer pool.
	if cat.Knobs[order[0]].Role != knobs.RoleBufferPool {
		t.Fatalf("top knob = %s, want buffer pool", cat.Knobs[order[0]].Name)
	}
	// Aux knobs come after every semantically known knob.
	majorSeen := 0
	for _, i := range order {
		if cat.Knobs[i].Role != knobs.RoleAux {
			majorSeen++
		} else if majorSeen < 27 {
			t.Fatal("aux knob ranked above a major knob")
		}
	}
}

func TestRulesCoverEveryEngine(t *testing.T) {
	// The expert can tune any engine: every core role resolves to a rule.
	for _, e := range []knobs.Engine{knobs.EngineCDB, knobs.EngineMongoDB, knobs.EnginePostgres} {
		db := simdb.New(e, simdb.CDBD, 1)
		var w workload.Workload
		if e == knobs.EngineMongoDB {
			w = workload.YCSB()
		} else {
			w = workload.TPCC()
		}
		ev := env.New(db, db.Catalog(), w)
		base, err := ev.Measure()
		if err != nil {
			t.Fatal(err)
		}
		_, perf, err := Tune(ev)
		if err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		if perf.Throughput <= base.Ext.Throughput {
			t.Errorf("%v: expert rules did not help (%v vs %v)", e, perf.Throughput, base.Ext.Throughput)
		}
	}
}
