// Package dba encodes the expert rule-of-thumb tuning the paper's three
// Tencent DBAs apply (§5). The rules capture standard MySQL lore — buffer
// pool at ~75 % of RAM, moderate redo log growth, IO threads raised with
// the workload, durable flush settings kept — and deliberately stop at the
// major knobs: a DBA does not hand-tune two hundred minor parameters, which
// is exactly the gap §5.2 shows CDBTune exploiting (largest on write-heavy
// workloads, where the conservative durability rules cost the most).
package dba
