package dba

import (
	"cdbtune/internal/env"
	"cdbtune/internal/knobs"
	"cdbtune/internal/metrics"
	"cdbtune/internal/simdb"
	"cdbtune/internal/workload"
)

// TuneSeconds is the §5.1.2 cost of one expert tuning request: 8.6 hours.
const TuneSeconds = 8.6 * 3600

// Recommend returns the expert configuration for the environment's
// workload and hardware, over the environment's tunable knob subset.
// Knobs the rules do not cover are set to a midpoint guess — the
// "reasonable looking" value an expert writes into an unfamiliar knob.
func Recommend(e *env.Env) []float64 {
	hw := e.DB.Instance().HW
	w := e.W
	x := e.Default()
	for i, k := range e.Cat.Knobs {
		if v, ok := ruleFor(k, hw, w); ok {
			x[i] = v
		} else if k.Role == knobs.RoleAux {
			// Midpoint guess for unfamiliar knobs; §5.2.1 shows this is
			// where experts lose ground in high-dimensional spaces.
			x[i] = 0.5
		}
	}
	return x
}

// ruleFor returns the normalized setting the expert rules give for one
// knob, or ok=false if no rule covers it.
func ruleFor(k knobs.Knob, hw simdb.Hardware, w workload.Workload) (float64, bool) {
	norm := func(actual float64) float64 { return k.Normalize(actual, hw.RAMGB, hw.DiskGB) }
	switch k.Role {
	case knobs.RoleBufferPool:
		return norm(0.75 * hw.RAMGB * 1024), true
	case knobs.RoleLogFileSize:
		// Conservative: 512 MiB per file regardless of write pressure.
		return norm(512), true
	case knobs.RoleLogFilesInGroup:
		return norm(2), true
	case knobs.RoleFlushLogAtCommit:
		// Durability first: DBAs keep full fsync-per-commit.
		return norm(1), true
	case knobs.RoleSyncBinlog:
		return norm(1), true
	case knobs.RoleReadIOThreads:
		if w.ReadFraction > 0.6 {
			return norm(16), true
		}
		return norm(8), true
	case knobs.RoleWriteIOThreads:
		if w.WriteFraction() > 0.4 {
			return norm(16), true
		}
		return norm(8), true
	case knobs.RolePurgeThreads:
		return norm(4), true
	case knobs.RoleThreadConcurrency:
		return norm(float64(2 * hw.Cores)), true
	case knobs.RoleMaxConnections:
		return norm(1.2 * float64(w.Threads)), true
	case knobs.RoleIOCapacity:
		return norm(2000), true
	case knobs.RoleLogBufferSize:
		return norm(64), true
	case knobs.RoleQueryCacheSize:
		if w.WriteFraction() < 0.05 {
			return norm(256), true
		}
		return norm(0), true
	case knobs.RoleQueryCacheType:
		if w.WriteFraction() < 0.05 {
			return norm(1), true
		}
		return norm(0), true
	case knobs.RoleMaxDirtyPct:
		return norm(80), true
	case knobs.RoleSortBufferSize:
		if w.SortFraction > 0.3 {
			return norm(8), true
		}
		return norm(2), true
	case knobs.RoleJoinBufferSize:
		if w.JoinFraction > 0.3 {
			return norm(16), true
		}
		return norm(1), true
	case knobs.RoleTmpTableSize:
		return norm(128), true
	case knobs.RoleThreadCacheSize:
		return norm(float64(w.Threads) / 4), true
	case knobs.RoleTableOpenCache:
		return norm(8192), true
	default:
		return 0, false
	}
}

// Tune runs one expert tuning request: recommend, deploy, measure; charge
// the 8.6-hour expert time (§5.1.2 Table 2).
func Tune(e *env.Env) (cfg []float64, perf metrics.External, err error) {
	cfg = Recommend(e)
	e.Clock.Charge(TuneSeconds)
	res, err := e.Step(cfg)
	if err != nil {
		return nil, metrics.External{}, err
	}
	return cfg, res.Ext, nil
}

// ImportanceOrder returns the indices of cat's knobs in the expert's
// importance ranking (Figure 6): semantically known knobs first, in rule
// order, then the remainder in catalog order.
func ImportanceOrder(cat *knobs.Catalog) []int {
	priority := []knobs.Role{
		knobs.RoleBufferPool, knobs.RoleLogFileSize, knobs.RoleFlushLogAtCommit,
		knobs.RoleMaxConnections, knobs.RoleLogFilesInGroup, knobs.RoleSyncBinlog,
		knobs.RoleWriteIOThreads, knobs.RoleReadIOThreads, knobs.RoleIOCapacity,
		knobs.RoleThreadConcurrency, knobs.RoleMaxDirtyPct, knobs.RolePurgeThreads,
		knobs.RoleLogBufferSize, knobs.RoleTmpTableSize, knobs.RoleSortBufferSize,
		knobs.RoleJoinBufferSize, knobs.RoleQueryCacheSize, knobs.RoleQueryCacheType,
		knobs.RoleThreadCacheSize, knobs.RoleTableOpenCache, knobs.RoleAdaptiveHash,
		knobs.RoleDoublewrite, knobs.RoleChangeBuffering, knobs.RoleBufferPoolInstances,
		knobs.RoleReadAhead, knobs.RoleSpinWaitDelay, knobs.RoleCheckpointTarget,
	}
	order := make([]int, 0, cat.Len())
	used := make([]bool, cat.Len())
	for _, r := range priority {
		for i, k := range cat.Knobs {
			if k.Role == r && !used[i] {
				order = append(order, i)
				used[i] = true
			}
		}
	}
	for i := range cat.Knobs {
		if !used[i] {
			order = append(order, i)
		}
	}
	return order
}
