package knobs

import (
	"strings"
	"testing"
)

func TestFormatConfigMySQL(t *testing.T) {
	c := MySQL(EngineCDB)
	hw := struct{ ram, disk float64 }{8, 100}
	vals := c.Denormalize(c.Defaults(hw.ram, hw.disk), hw.ram, hw.disk)
	// Change one knob from default.
	i := c.Index("innodb_buffer_pool_size")
	vals[i] = 6144
	out, err := FormatConfig(c, vals, true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "[mysqld]\n") {
		t.Fatalf("missing section header:\n%s", out)
	}
	if !strings.Contains(out, "innodb_buffer_pool_size = 6144") {
		t.Fatalf("changed knob missing:\n%s", out)
	}
	if strings.Contains(out, "innodb_doublewrite") {
		t.Fatal("unchanged knob leaked into changed-only output")
	}
}

func TestFormatConfigAllKnobs(t *testing.T) {
	c := Postgres()
	vals := c.Denormalize(c.Defaults(16, 200), 16, 200)
	out, err := FormatConfig(c, vals, false)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "# postgresql.conf\n") {
		t.Fatalf("missing header:\n%.80s", out)
	}
	if got := strings.Count(out, "\n"); got != c.Len()+1 {
		t.Fatalf("emitted %d lines, want %d", got, c.Len()+1)
	}
}

func TestFormatConfigMongo(t *testing.T) {
	c := MongoDB()
	vals := c.Denormalize(c.Defaults(32, 300), 32, 300)
	i := c.Index("wiredtiger_cache_size")
	vals[i] = 20000
	out, err := FormatConfig(c, vals, true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "setParameter:\n") {
		t.Fatalf("missing header:\n%.80s", out)
	}
	if !strings.Contains(out, "  wiredtiger_cache_size: 20000") {
		t.Fatalf("changed knob missing:\n%s", out)
	}
}

func TestFormatConfigSorted(t *testing.T) {
	c := MySQL(EngineCDB)
	vals := c.Denormalize(c.Defaults(8, 100), 8, 100)
	out, err := FormatConfig(c, vals, false)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")[1:]
	for i := 1; i < len(lines); i++ {
		if lines[i-1] > lines[i] {
			t.Fatalf("output not sorted: %q before %q", lines[i-1], lines[i])
		}
	}
}

func TestFormatConfigLengthMismatch(t *testing.T) {
	c := Postgres()
	if _, err := FormatConfig(c, []float64{1}, true); err == nil {
		t.Fatal("length mismatch must error")
	}
}
