package knobs

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCatalogSizesMatchPaper(t *testing.T) {
	tests := []struct {
		name string
		cat  *Catalog
		want int
	}{
		{"cdb-mysql", MySQL(EngineCDB), 266},
		{"local-mysql", MySQL(EngineLocalMySQL), 266},
		{"mongodb", MongoDB(), 232},
		{"postgres", Postgres(), 169},
		{"lsm", LSM(), 160},
	}
	for _, tc := range tests {
		if got := tc.cat.Len(); got != tc.want {
			t.Errorf("%s catalog has %d knobs, want %d", tc.name, got, tc.want)
		}
	}
}

func TestCatalogNamesUnique(t *testing.T) {
	for _, e := range []Engine{EngineCDB, EngineMongoDB, EnginePostgres, EngineLSM} {
		c := ForEngine(e)
		seen := make(map[string]bool)
		for _, k := range c.Knobs {
			if seen[k.Name] {
				t.Fatalf("%v: duplicate knob %q", e, k.Name)
			}
			seen[k.Name] = true
		}
	}
}

func TestDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate names")
		}
	}()
	NewCatalog(EngineCDB, []Knob{{Name: "a"}, {Name: "a"}})
}

func TestEveryEngineHasCoreRoles(t *testing.T) {
	core := []Role{RoleBufferPool, RoleLogFileSize, RoleFlushLogAtCommit,
		RoleReadIOThreads, RoleWriteIOThreads, RoleMaxConnections}
	for _, e := range []Engine{EngineCDB, EngineMongoDB, EnginePostgres} {
		c := ForEngine(e)
		for _, r := range core {
			if c.RoleIndex(r) < 0 {
				t.Errorf("%v: missing role %d", e, r)
			}
		}
	}
}

// TestLSMCatalogShape pins the structural contract of the LSM catalog:
// every knob the cost model reads is present under its role, the major
// (documented) knobs lead the catalog, and the B-tree core roles the LSM
// family deliberately does not share stay absent.
func TestLSMCatalogShape(t *testing.T) {
	c := LSM()
	if c.Engine != EngineLSM {
		t.Fatalf("catalog engine = %v", c.Engine)
	}
	majors := 0
	for _, k := range c.Knobs {
		if k.Desc != "" {
			majors++
		}
	}
	if majors != 51 {
		t.Errorf("LSM catalog has %d documented major knobs, want 51", majors)
	}
	roles := []Role{RoleMemtableSize, RoleMemtableCount, RoleWALPolicy,
		RoleCompactionStyle, RoleLevelMultiplier, RoleL0CompactTrigger,
		RoleL0SlowdownTrigger, RoleL0StopTrigger, RoleCompactionThreads,
		RoleFlushThreads, RoleBloomBits, RoleBlockCache, RoleMaxConnections}
	for _, r := range roles {
		i := c.RoleIndex(r)
		if i < 0 {
			t.Errorf("LSM: missing role %d", r)
			continue
		}
		if c.Knobs[i].Desc == "" {
			t.Errorf("LSM: role %d knob %q is not a documented major", r, c.Knobs[i].Name)
		}
	}
	// The B-tree family's structural roles must not leak into the LSM
	// catalog: the cost models are separated by role, not by name.
	for _, r := range []Role{RoleBufferPool, RoleLogFileSize} {
		if i := c.RoleIndex(r); i >= 0 {
			t.Errorf("LSM: B-tree role %d present as %q", r, c.Knobs[i].Name)
		}
	}
}

// TestEngineByName round-trips every engine name and rejects junk.
func TestEngineByName(t *testing.T) {
	names := EngineNames()
	if len(names) != 5 {
		t.Fatalf("EngineNames = %v, want 5 engines", names)
	}
	sawLSM := false
	for _, n := range names {
		e, ok := EngineByName(n)
		if !ok {
			t.Fatalf("EngineByName(%q) not found", n)
		}
		if e.String() != n {
			t.Fatalf("EngineByName(%q) = %v (round-trip broken)", n, e)
		}
		if e == EngineLSM {
			sawLSM = true
		}
	}
	if !sawLSM {
		t.Fatal("EngineNames does not include lsm")
	}
	if _, ok := EngineByName("rocksdb"); ok {
		t.Fatal("EngineByName accepted an unknown name")
	}
	if _, ok := EngineByName(""); ok {
		t.Fatal("EngineByName accepted the empty string")
	}
}

func TestValueLinearAndLog(t *testing.T) {
	lin := Knob{Type: TypeFloat, Min: 0, Max: 10}
	if v := lin.Value(0.5, 1, 1); v != 5 {
		t.Fatalf("linear Value(0.5) = %v, want 5", v)
	}
	logk := Knob{Type: TypeFloat, Min: 1, Max: 10000, LogScale: true}
	if v := logk.Value(0.5, 1, 1); math.Abs(v-100) > 1e-9 {
		t.Fatalf("log Value(0.5) = %v, want 100", v)
	}
	if v := logk.Value(0, 1, 1); v != 1 {
		t.Fatalf("log Value(0) = %v, want 1", v)
	}
	if v := logk.Value(1, 1, 1); math.Abs(v-10000) > 1e-9 {
		t.Fatalf("log Value(1) = %v, want 10000", v)
	}
}

func TestValueClampsInput(t *testing.T) {
	k := Knob{Type: TypeFloat, Min: 0, Max: 10}
	if v := k.Value(-1, 1, 1); v != 0 {
		t.Fatalf("Value(-1) = %v", v)
	}
	if v := k.Value(2, 1, 1); v != 10 {
		t.Fatalf("Value(2) = %v", v)
	}
}

func TestValueRoundsDiscreteTypes(t *testing.T) {
	k := Knob{Type: TypeInt, Min: 0, Max: 10}
	if v := k.Value(0.51, 1, 1); v != 5 {
		t.Fatalf("int Value = %v, want 5", v)
	}
	b := Knob{Type: TypeBool, Min: 0, Max: 1}
	if v := b.Value(0.7, 1, 1); v != 1 {
		t.Fatalf("bool Value = %v, want 1", v)
	}
}

func TestMemoryScaling(t *testing.T) {
	c := MySQL(EngineCDB)
	i := c.Index("innodb_buffer_pool_size")
	if i < 0 {
		t.Fatal("missing buffer pool knob")
	}
	k := c.Knobs[i]
	small := k.Value(1, 8, 100)   // 8 GiB RAM
	large := k.Value(1, 128, 100) // 128 GiB RAM
	if large <= small {
		t.Fatalf("memory scaling broken: 8G max %v, 128G max %v", small, large)
	}
	// Max at 8 GiB should be ≈ 1228 MiB/GiB × 8 GiB ≈ 9.6 GiB in MiB.
	if math.Abs(large/small-16) > 0.5 {
		t.Fatalf("scaling ratio = %v, want ≈16", large/small)
	}
}

func TestDiskScaling(t *testing.T) {
	c := MySQL(EngineCDB)
	k := c.Knobs[c.Index("innodb_log_file_size")]
	small := k.Value(1, 8, 32)
	large := k.Value(1, 8, 512)
	if large <= small {
		t.Fatalf("disk scaling broken: %v vs %v", small, large)
	}
}

// Property: Normalize ∘ Value ≈ identity for continuous knobs.
func TestNormalizeValueRoundTrip(t *testing.T) {
	c := MySQL(EngineCDB)
	f := func(xRaw uint16, kiRaw uint16) bool {
		x := float64(xRaw) / 65535
		k := c.Knobs[int(kiRaw)%c.Len()]
		if k.Type != TypeFloat {
			return true // rounding breaks exact inversion for discrete knobs
		}
		v := k.Value(x, 12, 200)
		back := k.Normalize(v, 12, 200)
		return math.Abs(back-x) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Value always lies within [Min, effective Max].
func TestValueBoundsProperty(t *testing.T) {
	c := Postgres()
	f := func(xRaw uint16, kiRaw uint16, ram, disk uint8) bool {
		x := float64(xRaw) / 65535
		ramGB := 1 + float64(ram%128)
		diskGB := 16 + float64(disk)*4
		k := c.Knobs[int(kiRaw)%c.Len()]
		v := k.Value(x, ramGB, diskGB)
		max := k.Max
		if k.MemoryScaled {
			max *= ramGB
		}
		if k.DiskScaled {
			max *= diskGB
		}
		return v >= k.Min-0.5 && v <= max+0.5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultsWithinRange(t *testing.T) {
	for _, e := range []Engine{EngineCDB, EngineMongoDB, EnginePostgres, EngineLSM} {
		c := ForEngine(e)
		d := c.Defaults(8, 100)
		if len(d) != c.Len() {
			t.Fatalf("%v: defaults len %d", e, len(d))
		}
		for i, x := range d {
			if x < 0 || x > 1 {
				t.Errorf("%v knob %s: normalized default %v out of [0,1]", e, c.Knobs[i].Name, x)
			}
		}
	}
}

func TestDenormalize(t *testing.T) {
	c := MySQL(EngineCDB)
	x := make([]float64, c.Len())
	for i := range x {
		x[i] = 0.5
	}
	v := c.Denormalize(x, 8, 100)
	if len(v) != c.Len() {
		t.Fatalf("Denormalize len = %d", len(v))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong length")
		}
	}()
	c.Denormalize(x[:3], 8, 100)
}

func TestSubsetPreservesOrder(t *testing.T) {
	c := MySQL(EngineCDB)
	s := c.Subset([]int{5, 0, 10})
	if s.Len() != 3 {
		t.Fatalf("Subset len = %d", s.Len())
	}
	if s.Knobs[0].Name != c.Knobs[5].Name || s.Knobs[1].Name != c.Knobs[0].Name {
		t.Fatal("Subset order not preserved")
	}
}

func TestWithoutBlacklist(t *testing.T) {
	c := MySQL(EngineCDB)
	before := c.Len()
	s := c.WithoutBlacklist([]string{"innodb_doublewrite", "no_such_knob"})
	if s.Len() != before-1 {
		t.Fatalf("blacklist removed %d knobs, want 1", before-s.Len())
	}
	if s.Index("innodb_doublewrite") != -1 {
		t.Fatal("blacklisted knob still present")
	}
}

func TestIndexMissing(t *testing.T) {
	c := Postgres()
	if c.Index("nope") != -1 {
		t.Fatal("Index of missing knob should be -1")
	}
}

func TestTunableKnobCountFig1c(t *testing.T) {
	prev := 0
	for _, v := range []float64{1, 2, 3, 4, 5, 6, 7} {
		n := TunableKnobCount(v)
		if n <= prev {
			t.Fatalf("knob count not increasing at version %v: %d after %d", v, n, prev)
		}
		prev = n
	}
	if TunableKnobCount(9.9) != 0 {
		t.Fatal("unknown version should report 0")
	}
}

func TestAuxKnobsDeterministic(t *testing.T) {
	a := auxKnobs([]string{"x", "y"}, 5, 1)
	b := auxKnobs([]string{"x", "y"}, 5, 1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("aux knob %d not deterministic", i)
		}
	}
	cSeed := auxKnobs([]string{"x", "y"}, 5, 2)
	diff := false
	for i := range a {
		if a[i] != cSeed[i] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds should produce different aux knobs")
	}
}

func TestEngineString(t *testing.T) {
	if EngineCDB.String() != "cdb-mysql" || Engine(99).String() == "" {
		t.Fatal("Engine.String broken")
	}
}
