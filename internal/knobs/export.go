package knobs

import (
	"fmt"
	"sort"
	"strings"
)

// FormatConfig renders actual knob values (aligned with the catalog) as a
// configuration file in the engine's native syntax: a my.cnf [mysqld]
// section for MySQL/CDB, YAML-ish setParameter lines for MongoDB, and
// postgresql.conf assignments for Postgres. Only values that differ from
// the knob defaults are emitted, sorted by name; changedOnly=false emits
// everything.
func FormatConfig(c *Catalog, values []float64, changedOnly bool) (string, error) {
	if len(values) != c.Len() {
		return "", fmt.Errorf("knobs: FormatConfig got %d values for %d knobs", len(values), c.Len())
	}
	type kv struct {
		name  string
		value float64
		typ   Type
	}
	var out []kv
	for i, k := range c.Knobs {
		if changedOnly && values[i] == k.Default {
			continue
		}
		out = append(out, kv{k.Name, values[i], k.Type})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })

	var b strings.Builder
	switch c.Engine {
	case EngineCDB, EngineLocalMySQL:
		b.WriteString("[mysqld]\n")
		for _, e := range out {
			fmt.Fprintf(&b, "%s = %s\n", e.name, formatValue(e.value, e.typ))
		}
	case EngineMongoDB:
		b.WriteString("setParameter:\n")
		for _, e := range out {
			fmt.Fprintf(&b, "  %s: %s\n", e.name, formatValue(e.value, e.typ))
		}
	case EnginePostgres:
		b.WriteString("# postgresql.conf\n")
		for _, e := range out {
			fmt.Fprintf(&b, "%s = %s\n", e.name, formatValue(e.value, e.typ))
		}
	default:
		return "", fmt.Errorf("knobs: FormatConfig: unknown engine %v", c.Engine)
	}
	return b.String(), nil
}

func formatValue(v float64, t Type) string {
	switch t {
	case TypeFloat:
		return fmt.Sprintf("%g", v)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}
