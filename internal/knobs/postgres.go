package knobs

// postgresMajor lists the semantically modeled Postgres knobs. Byte-sized
// knobs are in MiB (MemoryScaled Max per GiB of RAM).
func postgresMajor() []Knob {
	return []Knob{
		{Desc: "Postgres shared page cache, the dominant memory knob (MiB)",
			Name: "shared_buffers", Type: TypeInt, Role: RoleBufferPool,
			Min: 128, Max: 1228, Default: 128, LogScale: true, MemoryScaled: true, Restart: true},
		{Desc: "WAL ceiling before a forced checkpoint (MiB)",
			Name: "max_wal_size", Type: TypeInt, Role: RoleLogFileSize,
			Min: 4, Max: 30, Default: 1024, LogScale: true, DiskScaled: true},
		{Desc: "retained WAL segments",
			Name: "wal_keep_segments", Type: TypeInt, Role: RoleLogFilesInGroup,
			Min: 2, Max: 10, Default: 2},
		{Desc: "commit durability: 1 = on, 2 = remote-ish, 0 = off",
			Name: "synchronous_commit", Type: TypeEnum, Role: RoleFlushLogAtCommit,
			Min: 0, Max: 2, Default: 1},
		{Desc: "WAL writer flush granularity",
			Name: "wal_writer_flush_after", Type: TypeInt, Role: RoleSyncBinlog,
			Min: 0, Max: 1000, Default: 1},
		{Desc: "expected concurrent IO for prefetching",
			Name: "effective_io_concurrency", Type: TypeInt, Role: RoleReadIOThreads,
			Min: 1, Max: 64, Default: 1},
		{Desc: "background writer pages per round",
			Name: "bgwriter_lru_maxpages", Type: TypeInt, Role: RoleWriteIOThreads,
			Min: 1, Max: 64, Default: 4},
		{Desc: "autovacuum worker processes",
			Name: "autovacuum_max_workers", Type: TypeInt, Role: RolePurgeThreads,
			Min: 1, Max: 32, Default: 3},
		{Desc: "background worker process cap",
			Name: "max_worker_processes", Type: TypeInt, Role: RoleThreadConcurrency,
			Min: 0, Max: 1000, Default: 8, Restart: true},
		{Desc: "client connection cap",
			Name: "max_connections", Type: TypeInt, Role: RoleMaxConnections,
			Min: 100, Max: 100000, Default: 100, LogScale: true, Restart: true},
		{Desc: "checkpoint writeback granularity",
			Name: "checkpoint_flush_after", Type: TypeInt, Role: RoleIOCapacity,
			Min: 100, Max: 40000, Default: 256, LogScale: true},
		{Desc: "WAL write buffer (MiB)",
			Name: "wal_buffers", Type: TypeInt, Role: RoleLogBufferSize,
			Min: 1, Max: 256, Default: 4, LogScale: true, Restart: true},
		{Desc: "per-sort/hash work memory (MiB)",
			Name: "work_mem", Type: TypeFloat, Role: RoleSortBufferSize,
			Min: 0.0625, Max: 1024, Default: 4, LogScale: true},
		{Desc: "per-session temp table buffer (MiB)",
			Name: "temp_buffers", Type: TypeInt, Role: RoleTmpTableSize,
			Min: 1, Max: 1024, Default: 8, LogScale: true},
		{Desc: "planner's OS cache estimate (MiB)",
			Name: "effective_cache_size", Type: TypeInt, Role: RoleQueryCacheSize,
			Min: 0, Max: 512, Default: 128},
		{Desc: "checkpoint spread fraction of the interval (scaled %)",
			Name: "checkpoint_completion_target", Type: TypeFloat, Role: RoleCheckpointTarget,
			Min: 0, Max: 70, Default: 35},
		{Desc: "vacuum IO budget before napping",
			Name: "vacuum_cost_limit", Type: TypeInt, Role: RoleMaxDirtyPct,
			Min: 5, Max: 99, Default: 20},
		{Desc: "full page images after checkpoints (torn-page safety)",
			Name: "full_page_writes", Type: TypeBool, Role: RoleDoublewrite,
			Min: 0, Max: 1, Default: 1},
	}
}

var postgresAuxNames = []string{
	"maintenance_work_mem", "autovacuum_work_mem", "max_stack_depth",
	"dynamic_shared_memory_type", "bgwriter_delay", "bgwriter_lru_multiplier",
	"bgwriter_flush_after", "backend_flush_after", "max_files_per_process",
	"vacuum_cost_delay", "vacuum_cost_page_hit", "vacuum_cost_page_miss",
	"vacuum_cost_page_dirty", "wal_compression", "wal_log_hints",
	"wal_writer_delay", "commit_delay", "commit_siblings", "checkpoint_timeout",
	"checkpoint_warning", "min_wal_size", "random_page_cost", "seq_page_cost",
	"cpu_tuple_cost", "cpu_index_tuple_cost", "cpu_operator_cost",
	"parallel_tuple_cost", "parallel_setup_cost", "min_parallel_table_scan_size",
	"min_parallel_index_scan_size", "default_statistics_target",
	"constraint_exclusion", "cursor_tuple_fraction", "from_collapse_limit",
	"join_collapse_limit", "force_parallel_mode", "jit_above_cost",
	"jit_inline_above_cost", "jit_optimize_above_cost", "geqo_threshold",
	"geqo_effort", "geqo_pool_size", "geqo_generations", "geqo_selection_bias",
	"geqo_seed", "enable_bitmapscan", "enable_hashagg", "enable_hashjoin",
	"enable_indexscan", "enable_indexonlyscan", "enable_material",
	"enable_mergejoin", "enable_nestloop", "enable_parallel_append",
	"enable_parallel_hash", "enable_partition_pruning", "enable_partitionwise_join",
	"enable_partitionwise_aggregate", "enable_seqscan", "enable_sort",
	"enable_tidscan", "max_parallel_workers", "max_parallel_workers_per_gather",
	"max_parallel_maintenance_workers", "autovacuum_naptime",
	"autovacuum_vacuum_threshold", "autovacuum_analyze_threshold",
	"autovacuum_vacuum_scale_factor", "autovacuum_analyze_scale_factor",
	"autovacuum_freeze_max_age", "autovacuum_multixact_freeze_max_age",
	"autovacuum_vacuum_cost_delay", "autovacuum_vacuum_cost_limit",
	"idle_in_transaction_session_timeout", "lock_timeout", "statement_timeout",
	"deadlock_timeout", "max_locks_per_transaction", "max_pred_locks_per_transaction",
	"max_pred_locks_per_relation", "max_pred_locks_per_page",
	"old_snapshot_threshold", "vacuum_freeze_min_age", "vacuum_freeze_table_age",
	"vacuum_multixact_freeze_min_age", "vacuum_multixact_freeze_table_age",
	"vacuum_defer_cleanup_age", "hot_standby_feedback_interval",
	"max_standby_archive_delay", "max_standby_streaming_delay",
	"wal_receiver_status_interval", "wal_receiver_timeout", "wal_retrieve_retry_interval",
	"wal_sender_timeout", "max_wal_senders", "max_replication_slots",
	"track_activity_query_size", "track_commit_timestamp", "track_functions_mode",
	"track_io_timing", "log_min_duration_statement", "log_autovacuum_min_duration",
	"log_temp_files", "log_rotation_age", "log_rotation_size",
	"temp_file_limit", "ssl_session_cache_timeout", "tcp_keepalives_idle",
	"tcp_keepalives_interval", "tcp_keepalives_count", "extra_float_digits",
	"gin_fuzzy_search_limit", "gin_pending_list_limit", "array_nulls_mode",
	"backslash_quote_mode", "escape_string_warning_level", "lo_compat_privileges_mode",
	"operator_precedence_warning_level", "quote_all_identifiers_mode",
	"standard_conforming_strings_mode", "synchronize_seqscans",
	"huge_pages_mode", "replacement_sort_tuples", "pre_auth_delay_tuning",
	"trace_notify_buffer", "session_replication_role_cache",
	"max_logical_replication_workers", "max_sync_workers_per_subscription",
	"logical_decoding_work_mem", "client_connection_check_interval",
	"recovery_prefetch_depth", "maintenance_io_concurrency", "wal_decode_buffer_size",
	"wal_init_zero_mode", "wal_recycle_mode", "wal_skip_threshold",
	"hash_mem_multiplier", "enable_incremental_sort", "enable_memoize",
	"enable_async_append", "plan_cache_mode_threshold", "stats_fetch_consistency_cache",
	"recursive_worktable_factor", "vacuum_failsafe_age", "vacuum_index_cleanup_mode",
	"toast_tuple_target", "default_toast_compression_level", "autovacuum_insert_threshold",
	"autovacuum_insert_scale_factor", "log_parameter_max_length_tuning",
	"idle_session_timeout", "checkpoint_segments_compat",
}

// Postgres builds the 169-knob Postgres catalog (Appendix C.3).
func Postgres() *Catalog {
	const total = 169
	ks := append([]Knob(nil), postgresMajor()...)
	ks = append(ks, auxKnobs(postgresAuxNames, total-len(ks), 0xc2b2ae35)...)
	return NewCatalog(EnginePostgres, ks)
}

// ForEngine returns the canonical catalog for the given engine.
func ForEngine(e Engine) *Catalog {
	switch e {
	case EngineCDB, EngineLocalMySQL:
		return MySQL(e)
	case EngineMongoDB:
		return MongoDB()
	case EnginePostgres:
		return Postgres()
	case EngineLSM:
		return LSM()
	default:
		panic("knobs: unknown engine " + e.String())
	}
}
