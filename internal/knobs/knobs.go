package knobs

import (
	"fmt"
	"math"
)

// Type describes a knob's value domain.
type Type int

// Knob value domains.
const (
	TypeInt Type = iota
	TypeFloat
	TypeEnum // integer levels 0..Max
	TypeBool // 0 or 1
)

// Role tags the semantic effect a knob has in the performance model.
type Role int

// Semantic roles recognized by the simulator. RoleAux knobs get
// procedurally generated minor effects.
const (
	RoleAux Role = iota
	RoleBufferPool
	RoleLogFileSize
	RoleLogFilesInGroup
	RoleFlushLogAtCommit
	RoleSyncBinlog
	RoleReadIOThreads
	RoleWriteIOThreads
	RolePurgeThreads
	RoleThreadConcurrency
	RoleMaxConnections
	RoleIOCapacity
	RoleBufferPoolInstances
	RoleLogBufferSize
	RoleQueryCacheSize
	RoleQueryCacheType
	RoleAdaptiveHash
	RoleMaxDirtyPct
	RoleDoublewrite
	RoleSortBufferSize
	RoleJoinBufferSize
	RoleTmpTableSize
	RoleThreadCacheSize
	RoleTableOpenCache
	RoleChangeBuffering
	RoleReadAhead
	RoleSpinWaitDelay
	RoleCheckpointTarget

	// LSM-engine roles (EngineLSM). The engine families share roles only
	// where the semantics genuinely coincide (connection caps, admission,
	// log write buffering); everything structurally LSM — memtables,
	// compaction geometry, stall triggers, bloom filters, the block cache —
	// carries its own role so neither cost model can accidentally consume
	// the other family's knobs.
	RoleMemtableSize
	RoleMemtableCount
	RoleMemtableMergeMin
	RoleWALPolicy
	RoleWALBytesPerSync
	RoleWALSizeLimit
	RoleCompactionStyle
	RoleLevelMultiplier
	RoleLevelBase
	RoleL0CompactTrigger
	RoleL0SlowdownTrigger
	RoleL0StopTrigger
	RoleCompactionThreads
	RoleFlushThreads
	RoleSubcompactions
	RoleTargetFileSize
	RoleTargetFileMultiplier
	RoleSoftPendingLimit
	RoleHardPendingLimit
	RoleBloomBits
	RoleBloomWholeKey
	RoleBlockCache
	RoleBlockSize
	RoleCacheIndexFilter
	RolePinL0Filter
	RoleRowCache
	RoleOptimizeFiltersHits
	RoleCompressionType
	RoleCompressionLevel
	RoleBottommostCompression
	RoleMaxOpenFiles
	RoleCompactionReadahead
	RoleRateLimiter
	RoleDelayedWriteRate
	RoleBytesPerSync
	RoleDirectIO
	RoleMmapRead
	RolePipelinedWrite
	RoleConcurrentMemtable
	RoleWriteThreadYield
	RoleNumLevels
	RoleDynamicLevelBytes
	RolePrefixBloom
	RoleUniversalSizeRatio
	RoleUniversalMinMerge
	RoleUniversalMaxSizeAmp
	RolePeriodicCompaction
	RoleIteratorReadahead
)

// Knob is one tunable configuration parameter.
type Knob struct {
	Name    string
	Type    Type
	Role    Role
	Min     float64
	Max     float64
	Default float64

	// LogScale interpolates the normalized value geometrically between Min
	// and Max — appropriate for byte-sized knobs spanning many orders of
	// magnitude.
	LogScale bool

	// MemoryScaled stretches Max in proportion to instance RAM (Max is
	// expressed per GiB of RAM). DiskScaled likewise per GiB of disk.
	MemoryScaled bool
	DiskScaled   bool

	// Restart marks knobs that require a database restart to apply; the
	// simulator charges the §5.1.1 restart time for them.
	Restart bool

	// Desc is a one-line human description shown by the CLI.
	Desc string
}

// Value converts a normalized setting x ∈ [0,1] into the knob's actual
// value for an instance with the given RAM and disk (both in GiB).
func (k *Knob) Value(x, ramGB, diskGB float64) float64 {
	if x < 0 {
		x = 0
	}
	if x > 1 {
		x = 1
	}
	min, max := k.Min, k.Max
	if k.MemoryScaled {
		max *= ramGB
	}
	if k.DiskScaled {
		max *= diskGB
	}
	if max < min {
		max = min
	}
	var v float64
	if k.LogScale && min > 0 {
		v = min * math.Pow(max/min, x)
	} else {
		v = min + x*(max-min)
	}
	switch k.Type {
	case TypeInt, TypeEnum, TypeBool:
		return math.Round(v)
	default:
		return v
	}
}

// Normalize is the inverse of Value: it maps an actual value back into
// [0,1] for the same instance.
func (k *Knob) Normalize(v, ramGB, diskGB float64) float64 {
	min, max := k.Min, k.Max
	if k.MemoryScaled {
		max *= ramGB
	}
	if k.DiskScaled {
		max *= diskGB
	}
	if max <= min {
		return 0
	}
	var x float64
	if k.LogScale && min > 0 {
		x = math.Log(v/min) / math.Log(max/min)
	} else {
		x = (v - min) / (max - min)
	}
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// Engine identifies a database engine variant from the paper's evaluation.
type Engine int

// Engines evaluated in the paper.
const (
	EngineCDB Engine = iota // Tencent CDB (MySQL-based), 266 knobs
	EngineLocalMySQL
	EngineMongoDB  // 232 knobs (Appendix C.3)
	EnginePostgres // 169 knobs (Appendix C.3)
	EngineLSM      // LSM-tree storage engine (RocksDB-style), 160 knobs
)

// String implements fmt.Stringer.
func (e Engine) String() string {
	switch e {
	case EngineCDB:
		return "cdb-mysql"
	case EngineLocalMySQL:
		return "local-mysql"
	case EngineMongoDB:
		return "mongodb"
	case EnginePostgres:
		return "postgres"
	case EngineLSM:
		return "lsm"
	default:
		return fmt.Sprintf("engine(%d)", int(e))
	}
}

// EngineByName parses an engine name as printed by Engine.String. It is the
// one parser every -engine flag shares, so the accepted spellings cannot
// drift between subcommands.
func EngineByName(name string) (Engine, bool) {
	for _, e := range []Engine{EngineCDB, EngineLocalMySQL, EngineMongoDB, EnginePostgres, EngineLSM} {
		if name == e.String() {
			return e, true
		}
	}
	return 0, false
}

// EngineNames lists the valid -engine flag values, for error messages.
func EngineNames() []string {
	return []string{
		EngineCDB.String(), EngineLocalMySQL.String(), EngineMongoDB.String(),
		EnginePostgres.String(), EngineLSM.String(),
	}
}

// Catalog is an ordered set of tunable knobs for one engine. The order is
// the catalog's canonical order; experiments reorder via Subset.
type Catalog struct {
	Engine Engine
	Knobs  []Knob

	byName map[string]int
}

// NewCatalog builds a catalog, verifying that knob names are unique.
func NewCatalog(engine Engine, ks []Knob) *Catalog {
	c := &Catalog{Engine: engine, Knobs: ks, byName: make(map[string]int, len(ks))}
	for i, k := range ks {
		if _, dup := c.byName[k.Name]; dup {
			panic(fmt.Sprintf("knobs: duplicate knob %q", k.Name))
		}
		c.byName[k.Name] = i
	}
	return c
}

// Len reports the number of knobs.
func (c *Catalog) Len() int { return len(c.Knobs) }

// Index returns the position of the named knob, or -1.
func (c *Catalog) Index(name string) int {
	if i, ok := c.byName[name]; ok {
		return i
	}
	return -1
}

// Defaults returns the normalized default configuration for an instance
// with ramGB RAM and diskGB disk. Hardware matters because memory- and
// disk-scaled knobs normalize against hardware-stretched ranges.
func (c *Catalog) Defaults(ramGB, diskGB float64) []float64 {
	x := make([]float64, len(c.Knobs))
	for i, k := range c.Knobs {
		x[i] = k.Normalize(k.Default, ramGB, diskGB)
	}
	return x
}

// Denormalize converts a normalized vector (len == Len) into actual knob
// values for an instance with ramGB RAM and diskGB disk.
func (c *Catalog) Denormalize(x []float64, ramGB, diskGB float64) []float64 {
	if len(x) != len(c.Knobs) {
		panic(fmt.Sprintf("knobs: Denormalize got %d values for %d knobs", len(x), len(c.Knobs)))
	}
	v := make([]float64, len(x))
	for i := range x {
		v[i] = c.Knobs[i].Value(x[i], ramGB, diskGB)
	}
	return v
}

// Subset returns a new catalog containing the knobs at the given indices,
// in that order. Experiments use it for the Figures 6-8 knob-count sweeps.
func (c *Catalog) Subset(indices []int) *Catalog {
	ks := make([]Knob, len(indices))
	for i, idx := range indices {
		ks[i] = c.Knobs[idx]
	}
	return NewCatalog(c.Engine, ks)
}

// WithoutBlacklist returns a catalog without the named knobs. The paper
// (§5.2) black-lists knobs that must not be tuned; callers pass user- or
// DBA-supplied names.
func (c *Catalog) WithoutBlacklist(names []string) *Catalog {
	drop := make(map[string]bool, len(names))
	for _, n := range names {
		drop[n] = true
	}
	var ks []Knob
	for _, k := range c.Knobs {
		if !drop[k.Name] {
			ks = append(ks, k)
		}
	}
	return NewCatalog(c.Engine, ks)
}

// RoleIndex returns the catalog position of the first knob with the given
// role, or -1 if the subset does not include it.
func (c *Catalog) RoleIndex(r Role) int {
	for i, k := range c.Knobs {
		if k.Role == r {
			return i
		}
	}
	return -1
}

// TunableKnobCount reports the number of tunable knobs exposed by each CDB
// major version, the data behind Figure 1(c). Versions are 1.0 … 7.0.
func TunableKnobCount(version float64) int {
	counts := map[float64]int{
		1.0: 222, 2.0: 262, 3.0: 291, 4.0: 328, 5.0: 389, 6.0: 462, 7.0: 547,
	}
	if n, ok := counts[version]; ok {
		return n
	}
	return 0
}
