package knobs

import (
	"strings"
	"testing"
)

func TestParseConfigRoundTrip(t *testing.T) {
	c := MySQL(EngineCDB)
	vals := c.Denormalize(c.Defaults(8, 100), 8, 100)
	vals[c.Index("innodb_buffer_pool_size")] = 4096
	vals[c.Index("max_connections")] = 2000
	text, err := FormatConfig(c, vals, true)
	if err != nil {
		t.Fatal(err)
	}
	parsed, unknown, err := ParseConfig(c, strings.NewReader(text), 8, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(unknown) != 0 {
		t.Fatalf("unknown keys from our own output: %v", unknown)
	}
	for i, k := range c.Knobs {
		// Round trip exact up to the knob's own value discretization.
		want := k.Value(k.Normalize(vals[i], 8, 100), 8, 100)
		if parsed[i] != want {
			t.Fatalf("knob %s: parsed %v, want %v", k.Name, parsed[i], want)
		}
	}
}

func TestParseConfigIgnoresCommentsAndSections(t *testing.T) {
	c := MySQL(EngineCDB)
	text := `
# a comment
; another comment
[mysqld]
innodb_buffer_pool_size = 2048
`
	parsed, unknown, err := ParseConfig(c, strings.NewReader(text), 8, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(unknown) != 0 {
		t.Fatalf("unknown: %v", unknown)
	}
	if got := parsed[c.Index("innodb_buffer_pool_size")]; got != 2048 {
		t.Fatalf("buffer pool = %v", got)
	}
}

func TestParseConfigUnknownKeys(t *testing.T) {
	c := Postgres()
	text := "not_a_real_knob = 5\nwork_mem = 64\n"
	parsed, unknown, err := ParseConfig(c, strings.NewReader(text), 16, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(unknown) != 1 || unknown[0] != "not_a_real_knob" {
		t.Fatalf("unknown = %v", unknown)
	}
	if got := parsed[c.Index("work_mem")]; got != 64 {
		t.Fatalf("work_mem = %v", got)
	}
}

func TestParseConfigClampsOutOfRange(t *testing.T) {
	c := MySQL(EngineCDB)
	text := "innodb_log_files_in_group = 99999\n"
	parsed, _, err := ParseConfig(c, strings.NewReader(text), 8, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got := parsed[c.Index("innodb_log_files_in_group")]; got != 10 {
		t.Fatalf("clamped value = %v, want max 10", got)
	}
}

func TestParseConfigBadValue(t *testing.T) {
	c := MySQL(EngineCDB)
	if _, _, err := ParseConfig(c, strings.NewReader("max_connections = lots\n"), 8, 100); err == nil {
		t.Fatal("non-numeric value must error")
	}
	if _, _, err := ParseConfig(c, strings.NewReader("just some words\n"), 8, 100); err == nil {
		t.Fatal("unparseable line must error")
	}
}

func TestParseConfigMongoSyntax(t *testing.T) {
	c := MongoDB()
	text := "setParameter:\n  wiredtiger_cache_size: 8192\n"
	parsed, unknown, err := ParseConfig(c, strings.NewReader(text), 32, 300)
	if err != nil {
		t.Fatal(err)
	}
	if len(unknown) != 0 {
		t.Fatalf("unknown = %v", unknown)
	}
	if got := parsed[c.Index("wiredtiger_cache_size")]; got != 8192 {
		t.Fatalf("cache = %v", got)
	}
}
