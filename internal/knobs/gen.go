package knobs

import (
	"fmt"
	"hash/fnv"
)

// auxKnobs builds n minor (RoleAux) knobs, drawing names from names and
// synthesizing extras if the list is shorter than n. Each knob's type,
// range and default derive deterministically from a hash of its name mixed
// with seed, so catalogs are stable across runs and engines differ.
func auxKnobs(names []string, n int, seed uint32) []Knob {
	ks := make([]Knob, 0, n)
	for i := 0; i < n; i++ {
		var name string
		if i < len(names) {
			name = names[i]
		} else {
			name = fmt.Sprintf("aux_tuning_knob_%03d", i-len(names))
		}
		ks = append(ks, auxKnob(name, seed))
	}
	return ks
}

// auxKnob derives a single minor knob from its name hash.
func auxKnob(name string, seed uint32) Knob {
	h := fnv.New32a()
	h.Write([]byte(name))
	x := h.Sum32() ^ seed
	k := Knob{Name: name, Role: RoleAux}
	switch x % 5 {
	case 0: // boolean switch
		k.Type = TypeBool
		k.Min, k.Max = 0, 1
		k.Default = float64((x >> 3) % 2)
	case 1: // small enum
		k.Type = TypeEnum
		k.Min = 0
		k.Max = float64(2 + (x>>3)%4) // 2..5 levels above zero
		k.Default = float64((x >> 7) % uint32(k.Max+1))
	case 2: // wide log-scaled integer (buffer/limit style)
		k.Type = TypeInt
		k.Min = 1
		k.Max = float64(uint32(1) << (10 + (x>>3)%14)) // 1Ki .. 8Mi
		k.LogScale = true
		k.Default = k.Min * 16
		if k.Default > k.Max {
			k.Default = k.Max
		}
	case 3: // linear integer (timeout/count style)
		k.Type = TypeInt
		k.Min = 0
		k.Max = float64(8 + (x>>3)%1024)
		k.Default = float64(uint32(k.Max) / 4)
	default: // fractional/percentage knob
		k.Type = TypeFloat
		k.Min = 0
		k.Max = 1 + float64((x>>3)%100)
		k.Default = k.Max / 2
	}
	return k
}
