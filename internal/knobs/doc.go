// Package knobs defines the tunable configuration-knob catalogs for the
// database engines the paper evaluates: 266 knobs for Tencent CDB (MySQL),
// the same catalog for local MySQL, 232 for MongoDB and 169 for Postgres
// (§5, Appendix C.3).
//
// Each knob carries a semantic Role so the simulator can model the effect
// of, say, the buffer pool without caring whether the knob is MySQL's
// innodb_buffer_pool_size or Postgres' shared_buffers. Knobs whose
// individual effect the paper does not describe carry RoleAux and are given
// small procedurally generated nonlinear response surfaces by the
// simulator, which is what makes the knob space genuinely 266-dimensional
// (see DESIGN.md §1).
//
// Agents act in normalized [0,1]^K space; Catalog.Denormalize converts a
// normalized vector into actual knob values for a concrete hardware
// instance (memory- and disk-scaled knobs widen with the instance).
package knobs
