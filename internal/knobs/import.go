package knobs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseConfig reads a configuration file in the engine's native syntax
// (the formats FormatConfig emits: my.cnf assignments, MongoDB
// setParameter lines, postgresql.conf assignments) and returns actual knob
// values aligned with the catalog. Knobs absent from the file keep their
// defaults; unknown keys are returned so callers can warn about them.
// Values outside a knob's valid range are clamped.
func ParseConfig(c *Catalog, r io.Reader, ramGB, diskGB float64) (values []float64, unknown []string, err error) {
	values = c.Denormalize(c.Defaults(ramGB, diskGB), ramGB, diskGB)
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, ";") {
			continue
		}
		if strings.HasPrefix(line, "[") && strings.HasSuffix(line, "]") {
			continue // my.cnf section header
		}
		if strings.HasSuffix(line, ":") {
			continue // YAML section header (setParameter:)
		}
		var key, val string
		switch {
		case strings.Contains(line, "="):
			parts := strings.SplitN(line, "=", 2)
			key, val = strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1])
		case strings.Contains(line, ":"):
			parts := strings.SplitN(line, ":", 2)
			key, val = strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1])
		default:
			return nil, nil, fmt.Errorf("knobs: line %d: cannot parse %q", lineNo, line)
		}
		i := c.Index(key)
		if i < 0 {
			unknown = append(unknown, key)
			continue
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("knobs: line %d: value %q for %s: %w", lineNo, val, key, err)
		}
		k := c.Knobs[i]
		// Clamp into the hardware-scaled valid range via the normalize/
		// denormalize round trip.
		values[i] = k.Value(k.Normalize(f, ramGB, diskGB), ramGB, diskGB)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("knobs: reading config: %w", err)
	}
	return values, unknown, nil
}
