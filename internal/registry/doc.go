// Package registry implements the model collection behind the paper's
// serving story (§5, "when a new tuning request arrives"): trained agents
// persisted on disk and keyed by a workload fingerprint, so a new tuning
// request can be matched against previously trained models and fine-tune
// the closest one instead of training from scratch.
//
// Each entry is one file (<id>.model) holding the entry metadata plus the
// serialized agent, written atomically (nn.WriteAtomic: temp file, fsync,
// rename, directory fsync) and framed with the same CRC32 integrity
// footer checkpoints use, so a torn or bit-flipped entry is detected and
// skipped loudly rather than served. Repeated fine-tunes of the same
// model update the entry in place and bump its version instead of
// duplicating it; when the collection outgrows MaxEntries, the
// least-recently-updated unpinned entry is evicted (Promote pins an entry
// against eviction).
//
// Fingerprints are built from the normalized metric state at the default
// configuration (Fingerprint). The dynamic serving loop also matches on
// fingerprints built from the *live* state mid-drift; those approximate
// the canonical default-config fingerprint — the serving configuration
// skews some metrics — but stay in the same normalized space, and the
// NearestWithin radius bounds how wrong an approximate match can be
// before warm-seeding is skipped.
//
// All methods are safe for concurrent use by multiple serving sessions.
package registry
