// Package registry implements the model collection behind the paper's
// serving story (§5, "when a new tuning request arrives"): trained agents
// persisted on disk and keyed by a workload fingerprint, so a new tuning
// request can be matched against previously trained models and fine-tune
// the closest one instead of training from scratch.
//
// Each entry is one file (<id>.model) holding the entry metadata plus the
// serialized agent, written atomically (nn.WriteAtomic: temp file, fsync,
// rename, directory fsync) and framed with the same CRC32 integrity
// footer checkpoints use, so a torn or bit-flipped entry is detected and
// skipped loudly rather than served. Repeated fine-tunes of the same
// model update the entry in place and bump its version instead of
// duplicating it; when the collection outgrows MaxEntries, the
// least-recently-updated unpinned entry is evicted (Promote pins an entry
// against eviction).
//
// Fingerprints are built from the normalized metric state at the default
// configuration (Fingerprint). The dynamic serving loop also matches on
// fingerprints built from the *live* state mid-drift; those approximate
// the canonical default-config fingerprint — the serving configuration
// skews some metrics — but stay in the same normalized space, and the
// NearestWithin radius bounds how wrong an approximate match can be
// before warm-seeding is skipped.
//
// All methods are safe for concurrent use by multiple serving sessions.
//
// # Multi-process sharing
//
// Shared layers file-lease coordination and a write-ahead change log over
// the same directory so N serve processes share one registry. Mutations
// (Put/Promote/Delete and the evictions they trigger) run under the
// registry write lease — a lease file (registry.lease) holding
// owner/epoch/expiry, acquired by fsync'd exclusive create, renewed by
// atomic replace, and stolen (epoch bump) after one TTL of silence — and
// append a CRC-framed record to registry.wal *before* the entry file is
// written. Readers replay the log (Refresh) before lookups; a record
// whose entry file has not caught up with the recorded post-state
// (version for puts, pin for promotions) is retried on later refreshes,
// so a reader never serves a torn view and a promotion is never lost. A
// torn final log frame — a writer crashed mid-append — is skipped by
// readers until complete, and reclaimed (truncated) by the next
// lease-holding appender so the dead bytes can never poison later
// appends. The Store interface abstracts over *Registry (one process)
// and *Shared (a fleet) for the serving layer.
package registry
