package registry

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func leasePath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "test.lease")
}

func TestLeaseAcquireRenewRelease(t *testing.T) {
	path := leasePath(t)
	l := NewLease(path, "n0", 200*time.Millisecond)
	ok, err := l.TryAcquire()
	if err != nil || !ok {
		t.Fatalf("acquire: ok=%v err=%v", ok, err)
	}
	if !l.Held() || l.Epoch() != 1 {
		t.Fatalf("held=%v epoch=%d, want held epoch 1", l.Held(), l.Epoch())
	}
	info, exists, err := l.Read()
	if err != nil || !exists || info.Owner != "n0" || info.Epoch != 1 {
		t.Fatalf("on-disk record: %+v exists=%v err=%v", info, exists, err)
	}
	if err := l.Renew(); err != nil {
		t.Fatalf("renew: %v", err)
	}
	// A live lease blocks a second owner.
	l2 := NewLease(path, "n1", 200*time.Millisecond)
	if ok, err := l2.TryAcquire(); err != nil || ok {
		t.Fatalf("second owner acquired a live lease: ok=%v err=%v", ok, err)
	}
	// Release tombstones (epoch preserved), and the next acquire bumps it.
	if err := l.Release(); err != nil {
		t.Fatal(err)
	}
	if l.Held() {
		t.Fatal("held after release")
	}
	ok, err = l2.TryAcquire()
	if err != nil || !ok {
		t.Fatalf("acquire after release: ok=%v err=%v", ok, err)
	}
	if l2.Epoch() != 2 {
		t.Fatalf("epoch after release-reacquire = %d, want 2", l2.Epoch())
	}
	if l2.Steals() != 0 {
		t.Fatalf("acquiring a released lease counted as a steal: %d", l2.Steals())
	}
}

func TestLeaseStealAfterExpiry(t *testing.T) {
	path := leasePath(t)
	base := time.Now()
	l0 := NewLease(path, "n0", 100*time.Millisecond)
	l0.SetClock(func() time.Time { return base })
	if ok, _ := l0.TryAcquire(); !ok {
		t.Fatal("n0 acquire failed")
	}

	// n1's clock is past n0's expiry: the steal must succeed, bump the
	// epoch, and count as a failover.
	l1 := NewLease(path, "n1", 100*time.Millisecond)
	l1.SetClock(func() time.Time { return base.Add(250 * time.Millisecond) })
	ok, err := l1.TryAcquire()
	if err != nil || !ok {
		t.Fatalf("steal: ok=%v err=%v", ok, err)
	}
	if l1.Epoch() != 2 || l1.Steals() != 1 {
		t.Fatalf("post-steal epoch=%d steals=%d, want 2/1", l1.Epoch(), l1.Steals())
	}
	// The stalled old holder cannot renew its way back in.
	l0.SetClock(func() time.Time { return base.Add(300 * time.Millisecond) })
	if err := l0.Renew(); err != ErrLeaseLost {
		t.Fatalf("stalled holder renew = %v, want ErrLeaseLost", err)
	}
	if l0.Held() {
		t.Fatal("stalled holder still believes it holds the lease")
	}
	// Re-acquiring after the loss goes through the steal path again.
	l0.SetClock(func() time.Time { return base.Add(600 * time.Millisecond) })
	if ok, err := l0.TryAcquire(); err != nil || !ok {
		t.Fatalf("re-acquire after loss: ok=%v err=%v", ok, err)
	}
	if l0.Epoch() != 3 {
		t.Fatalf("epoch after second steal = %d, want 3", l0.Epoch())
	}
}

// TestLeaseMutualExclusion hammers one lease from many handles and
// asserts no two ever hold it at once.
func TestLeaseMutualExclusion(t *testing.T) {
	path := leasePath(t)
	var holder atomic.Int32
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 1; i <= 8; i++ {
		wg.Add(1)
		go func(id int32) {
			defer wg.Done()
			l := NewLease(path, fmt.Sprintf("n%d", id), 500*time.Millisecond)
			for j := 0; j < 20; j++ {
				ok, err := l.TryAcquire()
				if err != nil {
					errs <- err
					return
				}
				if !ok {
					continue
				}
				if !holder.CompareAndSwap(0, id) {
					errs <- fmt.Errorf("lease held by %d while %d acquired", holder.Load(), id)
					return
				}
				time.Sleep(time.Millisecond)
				holder.Store(0)
				if err := l.Release(); err != nil {
					errs <- err
					return
				}
			}
		}(int32(i))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestChangeLogAppendTailTornFrame(t *testing.T) {
	path := filepath.Join(t.TempDir(), "registry.wal")
	c, err := OpenChangeLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 1; i <= 3; i++ {
		if _, err := c.Append(Change{Op: OpPut, ID: fmt.Sprintf("m%04d", i), Version: i}); err != nil {
			t.Fatal(err)
		}
	}
	// A second handle sees the full history, in order, with assigned seqs.
	c2, err := OpenChangeLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	records, err := c2.Tail()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 || records[0].Seq != 1 || records[2].Seq != 3 || records[2].ID != "m0003" {
		t.Fatalf("tail: %+v", records)
	}
	// Our own appends are consumed locally: Tail after Append is empty.
	if records, _ := c.Tail(); len(records) != 0 {
		t.Fatalf("writer re-read its own records: %+v", records)
	}

	// A torn final frame (writer crashed mid-append) is tolerated: earlier
	// records still replay, the torn one stays unread until complete.
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Append(Change{Op: OpPromote, ID: "m0001", Version: 1, Pinned: true}); err != nil {
		t.Fatal(err)
	}
	cut, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, cut[:len(full)+7], 0o644); err != nil {
		t.Fatal(err)
	}
	c3, err := OpenChangeLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	records, err = c3.Tail()
	if err != nil {
		t.Fatalf("torn tail must not error: %v", err)
	}
	if len(records) != 3 {
		t.Fatalf("torn tail: %d records, want 3", len(records))
	}
	// Completing the frame makes the record visible on the next Tail.
	if err := os.WriteFile(path, cut, 0o644); err != nil {
		t.Fatal(err)
	}
	records, err = c3.Tail()
	if err != nil || len(records) != 1 || records[0].Op != OpPromote || !records[0].Pinned {
		t.Fatalf("completed frame: %+v err=%v", records, err)
	}
}

func openShared(t *testing.T, dir, owner string) *Shared {
	t.Helper()
	s, err := OpenShared(dir, owner, []Option{WithLogf(t.Logf)}, WithLeaseTTL(200*time.Millisecond), WithLeaseWait(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestSharedReplication drives two Shared handles (two "processes") over
// one directory: puts, promotions and deletes made through one must be
// visible through the other, with no torn reads and no lost promotions.
func TestSharedReplication(t *testing.T) {
	dir := t.TempDir()
	a := openShared(t, dir, "nodeA")
	b := openShared(t, dir, "nodeB")

	ma, err := a.Put(Meta{Workload: "sysbench-rw", Fingerprint: fp(1), Episodes: 4, ScratchEpisodes: 4}, fakeModel("a"))
	if err != nil {
		t.Fatal(err)
	}
	// B sees A's entry through the change log.
	if got := b.List(); len(got) != 1 || got[0].ID != ma.ID {
		t.Fatalf("B's view after A's put: %+v", got)
	}
	if m, ok := b.Nearest(fp(1)); !ok || m.Meta.ID != ma.ID {
		t.Fatalf("B Nearest: %+v ok=%v", m.Meta, ok)
	}

	// B fine-tunes A's entry: version bump in place, visible to A.
	mb, err := b.Put(Meta{ID: ma.ID, Workload: "sysbench-rw", Fingerprint: fp(1), Episodes: 6}, fakeModel("a2"))
	if err != nil {
		t.Fatal(err)
	}
	if mb.Version != 2 {
		t.Fatalf("B's fine-tune version = %d, want 2", mb.Version)
	}
	if got, ok := peekAfterRefresh(a, ma.ID); !ok || got.Version != 2 || got.Episodes != 6 {
		t.Fatalf("A's view after B's fine-tune: %+v ok=%v", got, ok)
	}

	// A promotes; B must see the pin (lost promotions are the bug class
	// the change log exists to prevent).
	if err := a.Promote(ma.ID); err != nil {
		t.Fatal(err)
	}
	if got, ok := peekAfterRefresh(b, ma.ID); !ok || !got.Pinned {
		t.Fatalf("B's view after A's promote: %+v ok=%v", got, ok)
	}

	// New entries created on both sides get distinct IDs (the refresh
	// before each put advances nextID past the other writer's entries).
	m2, err := a.Put(Meta{Workload: "tpcc", Fingerprint: fp(10)}, fakeModel("t"))
	if err != nil {
		t.Fatal(err)
	}
	m3, err := b.Put(Meta{Workload: "wiki", Fingerprint: fp(20)}, fakeModel("w"))
	if err != nil {
		t.Fatal(err)
	}
	if m2.ID == m3.ID || m2.ID == ma.ID || m3.ID == ma.ID {
		t.Fatalf("ID collision across writers: %s %s %s", ma.ID, m2.ID, m3.ID)
	}

	// B deletes its entry; A forgets it on refresh.
	if err := b.Delete(m3.ID); err != nil {
		t.Fatal(err)
	}
	if _, ok := peekAfterRefresh(a, m3.ID); ok {
		t.Fatalf("A still sees %s after B's delete", m3.ID)
	}

	// Registry state passes CRC validation end to end.
	if healthy, corrupt := a.Verify(); healthy != 2 || len(corrupt) != 0 {
		t.Fatalf("verify: healthy=%d corrupt=%v", healthy, corrupt)
	}
}

func peekAfterRefresh(s *Shared, id string) (Meta, bool) {
	if err := s.Refresh(); err != nil {
		return Meta{}, false
	}
	return s.Peek(id)
}

// TestSharedLaggingRecordRetried pins the no-lost-promotion mechanism: a
// change-log record whose entry file has not caught up (writer between
// WAL append and entry rename) is retried on later refreshes instead of
// being dropped.
func TestSharedLaggingRecordRetried(t *testing.T) {
	dir := t.TempDir()
	a := openShared(t, dir, "nodeA")
	b := openShared(t, dir, "nodeB")
	ma, err := a.Put(Meta{Workload: "w", Fingerprint: fp(1)}, fakeModel("a"))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Refresh(); err != nil {
		t.Fatal(err)
	}

	// Simulate a record ahead of its entry file: version 99 never landed.
	if _, err := b.log.Append(Change{Op: OpPut, ID: ma.ID, Version: 99}); err != nil {
		t.Fatal(err)
	}
	// A's refresh sees the record, finds the entry behind it, and keeps
	// the old (valid) view rather than dropping the entry.
	if err := a.Refresh(); err != nil {
		t.Fatal(err)
	}
	if got, ok := a.Peek(ma.ID); !ok || got.Version != 1 {
		t.Fatalf("entry dropped while lagging: %+v ok=%v", got, ok)
	}
	a.mu.Lock()
	_, lagging := a.lagging[ma.ID]
	a.mu.Unlock()
	if !lagging {
		t.Fatal("record not queued for retry")
	}

	// Once the entry file catches up (version 99 lands), the retry
	// resolves and the new version is visible.
	writeEntryVersion(t, b, ma, 99)
	if err := a.Refresh(); err != nil {
		t.Fatal(err)
	}
	if got, ok := a.Peek(ma.ID); !ok || got.Version != 99 {
		t.Fatalf("caught-up entry not applied: %+v ok=%v", got, ok)
	}
	a.mu.Lock()
	_, lagging = a.lagging[ma.ID]
	a.mu.Unlock()
	if lagging {
		t.Fatal("resolved record still queued for retry")
	}
}

// writeEntryVersion writes an entry file at an exact version, bypassing
// Put's version bump — simulating the delayed writer finishing its
// rename.
func writeEntryVersion(t *testing.T, s *Shared, meta Meta, version int) {
	t.Helper()
	meta.Version = version
	s.Registry.mu.Lock()
	err := s.Registry.writeLocked(meta, fakeModel("caught-up"))
	s.Registry.entries[meta.ID] = cloneMeta(meta)
	s.Registry.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
}

// TestEvictionVsFineTuneRace is the satellite race test: pin-aware LRU
// eviction racing concurrent fine-tune write-backs must never delete an
// entry mid-version-bump, and a write-back must never strip the pin that
// protects the entry. The hot entry is promoted: an unpinned entry would
// legitimately become the LRU victim the moment its writer goes quiet,
// so only the pin makes survival deterministic under any interleaving.
// Run under -race (make check does).
func TestEvictionVsFineTuneRace(t *testing.T) {
	r := quietOpen(t, t.TempDir(), WithMaxEntries(4))
	hot, err := r.Put(Meta{Workload: "hot", Fingerprint: fp(1), ScratchEpisodes: 4}, fakeModel("hot"))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Promote(hot.ID); err != nil {
		t.Fatal(err)
	}

	const updates, churn = 60, 60
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	wg.Add(2)
	// Writer A: fine-tune write-backs on the hot entry (version bumps).
	go func() {
		defer wg.Done()
		for i := 0; i < updates; i++ {
			m, err := r.Put(Meta{ID: hot.ID, Workload: "hot", Fingerprint: fp(1), Episodes: i + 1}, fakeModel(fmt.Sprintf("hot%d", i)))
			if err != nil {
				errs <- fmt.Errorf("fine-tune %d: %w", i, err)
				return
			}
			if m.ID != hot.ID {
				errs <- fmt.Errorf("fine-tune %d created a duplicate entry %s", i, m.ID)
				return
			}
		}
	}()
	// Writer B: a stream of fresh entries forcing LRU eviction.
	go func() {
		defer wg.Done()
		for i := 0; i < churn; i++ {
			if _, err := r.Put(Meta{Workload: fmt.Sprintf("cold%d", i), Fingerprint: fp(float64(i + 2))}, fakeModel(fmt.Sprintf("c%d", i))); err != nil {
				errs <- fmt.Errorf("churn %d: %w", i, err)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// The hot entry survived every eviction round (its pin held through
	// all 60 unpinned write-backs), its file reads back CRC-clean at the
	// final version, and the collection respected its bound.
	meta, model, err := r.Get(hot.ID)
	if err != nil {
		t.Fatalf("hot entry lost under eviction churn: %v", err)
	}
	if !meta.Pinned {
		t.Fatal("fine-tune write-back stripped the pin")
	}
	if meta.Version != updates+1 {
		t.Fatalf("hot entry version = %d, want %d", meta.Version, updates+1)
	}
	if string(model) != string(fakeModel(fmt.Sprintf("hot%d", updates-1))) {
		t.Fatal("hot entry bytes do not match the last write-back")
	}
	if got := r.Len(); got > 4 {
		t.Fatalf("eviction failed to bound the collection: %d entries", got)
	}
	if healthy, corrupt := r.Verify(); len(corrupt) != 0 || healthy != r.Len() {
		t.Fatalf("post-race verify: healthy=%d len=%d corrupt=%v", healthy, r.Len(), corrupt)
	}
}

// TestChangeLogAppendReclaimsTornTail pins the crash-recovery fix: a
// writer that died mid-append can leave a torn frame LONGER than the next
// record. Append must truncate the dead tail before writing — overwriting
// it in place would leave mid-frame garbage behind the new frame, and
// every later append or replay would die on "bad frame magic".
func TestChangeLogAppendReclaimsTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "registry.wal")
	c, err := OpenChangeLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Append(Change{Op: OpPut, ID: "m0001", Version: 1}); err != nil {
		t.Fatal(err)
	}
	valid, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// A large frame, torn mid-payload: 200 dangling bytes, far longer than
	// any of the small replacement frames below.
	big := Change{Op: OpPut, ID: "m" + fmt.Sprintf("%0600d", 2), Version: 2}
	if _, err := c.Append(big); err != nil {
		t.Fatal(err)
	}
	c.Close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, full[:len(valid)+200], 0o644); err != nil {
		t.Fatal(err)
	}

	w, err := OpenChangeLog(path) // the recovering writer (new lease holder)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := w.Tail(); err != nil {
		t.Fatalf("tail over torn frame: %v", err)
	}
	if _, err := w.Append(Change{Op: OpPut, ID: "m0002", Version: 1}); err != nil {
		t.Fatalf("append over torn tail: %v", err)
	}
	if _, err := w.Append(Change{Op: OpPut, ID: "m0003", Version: 1}); err != nil {
		t.Fatalf("append after reclaim: %v", err)
	}

	r, err := OpenChangeLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	records, err := r.Tail()
	if err != nil {
		t.Fatalf("replay after reclaim: %v", err)
	}
	if len(records) != 3 || records[0].ID != "m0001" || records[1].ID != "m0002" || records[2].ID != "m0003" {
		t.Fatalf("replay: %+v", records)
	}
}

// TestLeaseCorruptRecordEpochMonotone pins the fencing fix: stealing a
// lease whose record is unreadable must never regress the epoch below
// anything the damaged record may have held.
func TestLeaseCorruptRecordEpochMonotone(t *testing.T) {
	path := leasePath(t)
	record := fmt.Sprintf(`{"owner":"n0","epoch":7,"expiry_unix_ms":%d}`,
		time.Now().Add(time.Hour).UnixMilli())
	if err := os.WriteFile(path, []byte(record), 0o644); err != nil {
		t.Fatal(err)
	}
	l := NewLease(path, "n1", 100*time.Millisecond)
	// The handle observes epoch 7 while the lease is live.
	if ok, err := l.TryAcquire(); err != nil || ok {
		t.Fatalf("live lease acquired: ok=%v err=%v", ok, err)
	}
	// The record is then corrupted (torn write, bit rot) and stolen.
	if err := os.WriteFile(path, []byte("{corrupt"), 0o644); err != nil {
		t.Fatal(err)
	}
	ok, err := l.TryAcquire()
	if err != nil || !ok {
		t.Fatalf("steal of corrupt lease: ok=%v err=%v", ok, err)
	}
	if l.Epoch() <= 7 {
		t.Fatalf("epoch %d after corrupt steal regresses below the observed 7", l.Epoch())
	}

	// A handle that never saw the healthy record still leaps far ahead
	// instead of restarting near 1.
	path2 := filepath.Join(t.TempDir(), "blind.lease")
	if err := os.WriteFile(path2, []byte("{corrupt"), 0o644); err != nil {
		t.Fatal(err)
	}
	l2 := NewLease(path2, "n2", 100*time.Millisecond)
	if ok, err := l2.TryAcquire(); err != nil || !ok {
		t.Fatalf("blind steal of corrupt lease: ok=%v err=%v", ok, err)
	}
	if l2.Epoch() <= corruptEpochJump {
		t.Fatalf("blind corrupt steal epoch %d, want a leap past %d", l2.Epoch(), corruptEpochJump)
	}
}

// TestStaleStealLockReaped pins the reaper: a steal lock abandoned by a
// crashed stealer is cleared safely (claim by rename, never a blind
// remove) and the lease becomes acquirable again, while a fresh lock — a
// live competitor mid-steal — is left untouched.
func TestStaleStealLockReaped(t *testing.T) {
	path := leasePath(t)
	record := fmt.Sprintf(`{"owner":"n0","epoch":3,"expiry_unix_ms":%d}`,
		time.Now().Add(-time.Hour).UnixMilli())
	if err := os.WriteFile(path, []byte(record), 0o644); err != nil {
		t.Fatal(err)
	}
	lock := path + ".steal"
	if err := os.WriteFile(lock, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-time.Hour)
	if err := os.Chtimes(lock, old, old); err != nil {
		t.Fatal(err)
	}

	l := NewLease(path, "n1", 100*time.Millisecond)
	// First attempt reaps the corpse; it must not steal through it.
	if ok, err := l.TryAcquire(); err != nil || ok {
		t.Fatalf("first attempt: ok=%v err=%v, want reap without acquire", ok, err)
	}
	if _, err := os.Stat(lock); !os.IsNotExist(err) {
		t.Fatalf("stale steal lock not reaped: %v", err)
	}
	ok, err := l.TryAcquire()
	if err != nil || !ok {
		t.Fatalf("acquire after reap: ok=%v err=%v", ok, err)
	}
	if l.Epoch() != 4 || l.Steals() != 1 {
		t.Fatalf("post-steal epoch=%d steals=%d, want 4/1", l.Epoch(), l.Steals())
	}

	// A fresh steal lock blocks without being deleted.
	if err := l.Release(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(lock, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if ok, err := NewLease(path, "n2", 100*time.Millisecond).TryAcquire(); err != nil || ok {
		t.Fatalf("acquired through a live competitor's steal lock: ok=%v err=%v", ok, err)
	}
	if _, err := os.Stat(lock); err != nil {
		t.Fatalf("fresh steal lock was removed: %v", err)
	}
}
