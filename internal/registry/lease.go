package registry

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"cdbtune/internal/nn"
	"cdbtune/internal/vfs"
)

// DefaultLeaseTTL is the lease lifetime when NewLease is not told
// otherwise. Holders renew well inside it; a lease not renewed within its
// TTL is up for stealing.
const DefaultLeaseTTL = 2 * time.Second

// ErrLeaseLost reports that a renewal found the lease expired or owned by
// someone else: the holder must stop mutating shared state and re-acquire
// (which bumps the epoch) before continuing.
var ErrLeaseLost = errors.New("registry: lease lost")

// corruptEpochJump is added to the best-known epoch when the lease file is
// unreadable at steal time: the corrupt record's epoch cannot be recovered,
// so the replacement leaps far enough ahead that any epoch the damaged
// file plausibly held stays fenced instead of regressing to 1.
const corruptEpochJump = 1 << 20

// LeaseInfo is the on-disk lease record: who holds it, the fencing epoch
// (bumped on every ownership change, including a steal), when it expires,
// and an opaque holder payload (the fleet stores the member's address
// here).
type LeaseInfo struct {
	Owner        string `json:"owner"`
	Epoch        int64  `json:"epoch"`
	ExpiryUnixMs int64  `json:"expiry_unix_ms"`
	Data         string `json:"data,omitempty"`
}

// ExpiredAt reports whether the lease is free game at time t: released
// (blank owner) or past its expiry.
func (li LeaseInfo) ExpiredAt(t time.Time) bool {
	return li.Owner == "" || t.UnixMilli() > li.ExpiryUnixMs
}

// Lease is one process's handle on a file lease. Multiple processes (or
// goroutines) open handles on the same path; at most one holds it at a
// time. Every on-disk transition is fsync'd and atomic: the first acquire
// is an exclusive create, renewals and steals replace the file through the
// atomic-write helper, and steals additionally serialize through an
// exclusive-create steal lock so two stealers cannot both win. A crashed
// holder is healed by expiry: once the TTL passes without a renewal, any
// handle may steal the lease, bumping the epoch so the old holder's writes
// are fenceable.
type Lease struct {
	path  string
	owner string
	ttl   time.Duration
	fs    vfs.FS

	// now is the clock; tests and chaos injection override it.
	now func() time.Time

	mu     sync.Mutex
	held   bool
	epoch  int64
	data   string
	steals int
	// seenEpoch is the highest epoch this handle ever observed on disk —
	// the local monotone floor used when a corrupt lease record forces a
	// blind steal.
	seenEpoch int64
}

// NewLease builds a handle on the lease at path for the named owner. A
// ttl <= 0 means DefaultLeaseTTL. Nothing touches the disk until
// TryAcquire.
func NewLease(path, owner string, ttl time.Duration) *Lease {
	return NewLeaseFS(vfs.OS, path, owner, ttl)
}

// NewLeaseFS is NewLease over an explicit filesystem (fault injection,
// crash-consistency exploration).
func NewLeaseFS(fsys vfs.FS, path, owner string, ttl time.Duration) *Lease {
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	return &Lease{path: path, owner: owner, ttl: ttl, fs: fsys, now: time.Now}
}

// SetClock overrides the lease clock (tests, chaos stalls).
func (l *Lease) SetClock(now func() time.Time) {
	l.mu.Lock()
	l.now = now
	l.mu.Unlock()
}

// SetData attaches an opaque payload written into the lease record on the
// next acquire/renew (the fleet stores the member's serving address).
func (l *Lease) SetData(data string) {
	l.mu.Lock()
	l.data = data
	l.mu.Unlock()
}

// Owner reports the handle's owner name.
func (l *Lease) Owner() string { return l.owner }

// TTL reports the lease lifetime.
func (l *Lease) TTL() time.Duration { return l.ttl }

// Held reports whether this handle believes it holds the lease. The
// belief is only as fresh as the last acquire/renew; an expired holder
// learns the truth on its next Renew.
func (l *Lease) Held() bool {
	l.mu.Lock()
	h := l.held
	l.mu.Unlock()
	return h
}

// Epoch reports the last epoch this handle held (0 before any acquire).
func (l *Lease) Epoch() int64 {
	l.mu.Lock()
	e := l.epoch
	l.mu.Unlock()
	return e
}

// Steals reports how many times this handle took the lease from a
// different (expired) owner — the failover counter.
func (l *Lease) Steals() int {
	l.mu.Lock()
	s := l.steals
	l.mu.Unlock()
	return s
}

// TryAcquire attempts to take the lease: a fresh file is created
// exclusively, an expired or released one is stolen (epoch bump), a live
// one owned by someone else is left alone (false, nil). A handle that
// already holds the lease renews it instead.
func (l *Lease) TryAcquire() (bool, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()

	if l.held {
		if err := l.renewLocked(now); err == nil {
			return true, nil
		}
		// Renewal failed (expired or stolen): fall through and compete for
		// the lease like any other handle.
	}

	info, exists, err := l.readLeaseLocked()
	if err != nil {
		// An unreadable lease file is treated as expired: steal it (the
		// steal lock serializes racers) rather than deadlocking the fleet.
		return l.stealLocked(LeaseInfo{Epoch: info.Epoch}, now)
	}
	if !exists {
		ok, err := l.createLocked(now)
		if ok || err != nil {
			return ok, err
		}
		// Lost the create race; re-read and fall through.
		if info, exists, err = l.readLeaseLocked(); err != nil || !exists {
			return false, err
		}
	}
	if !info.ExpiredAt(now) && info.Owner != l.owner {
		return false, nil // live, someone else's
	}
	return l.stealLocked(info, now)
}

// Renew extends a held lease by one TTL. It re-reads the file first: a
// lease that expired or was stolen returns ErrLeaseLost and drops the
// held flag, so a stalled holder cannot fence in after a steal.
func (l *Lease) Renew() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.renewLocked(l.now())
}

func (l *Lease) renewLocked(now time.Time) error {
	if !l.held {
		return ErrLeaseLost
	}
	info, exists, err := l.readLeaseLocked()
	if err != nil {
		return err
	}
	if !exists || info.Owner != l.owner || info.Epoch != l.epoch || info.ExpiredAt(now) {
		// Stolen, released elsewhere, or expired: too late to renew — the
		// next TryAcquire goes through the steal path and bumps the epoch.
		l.held = false
		return ErrLeaseLost
	}
	return l.writeLocked(LeaseInfo{
		Owner: l.owner, Epoch: l.epoch,
		ExpiryUnixMs: now.Add(l.ttl).UnixMilli(), Data: l.data,
	})
}

// Release gives the lease up: the record is tombstoned (blank owner, same
// epoch) rather than removed, so the epoch stays monotone across
// ownership changes. Releasing a lease this handle does not hold is a
// no-op.
func (l *Lease) Release() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.held {
		return nil
	}
	l.held = false
	info, exists, err := l.readLeaseLocked()
	if err != nil || !exists || info.Owner != l.owner || info.Epoch != l.epoch {
		return nil // already stolen or gone; nothing to tombstone
	}
	return l.writeLocked(LeaseInfo{Epoch: l.epoch})
}

// createLocked acquires a lease that has never existed via exclusive
// create — two racing handles cannot both win O_EXCL.
func (l *Lease) createLocked(now time.Time) (bool, error) {
	info := LeaseInfo{
		Owner: l.owner, Epoch: 1,
		ExpiryUnixMs: now.Add(l.ttl).UnixMilli(), Data: l.data,
	}
	payload, err := json.Marshal(info)
	if err != nil {
		return false, err
	}
	f, err := l.fs.OpenFile(l.path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		if os.IsExist(err) {
			return false, nil
		}
		return false, fmt.Errorf("registry: lease create: %w", err)
	}
	_, werr := f.Write(payload)
	if werr == nil {
		werr = f.Sync()
	}
	if werr != nil {
		f.Close()
		// Unlink the partial record and make the unlink durable: a crash
		// right after this return must not resurrect a torn lease file.
		l.fs.Remove(l.path)
		l.fs.SyncDir(filepath.Dir(l.path))
		return false, fmt.Errorf("registry: lease create: %w", werr)
	}
	if err := f.Close(); err != nil {
		return false, err
	}
	if err := l.fs.SyncDir(filepath.Dir(l.path)); err != nil {
		return false, err
	}
	l.held, l.epoch = true, info.Epoch
	if info.Epoch > l.seenEpoch {
		l.seenEpoch = info.Epoch
	}
	return true, nil
}

// stealLocked takes an expired/released/unreadable lease, serializing
// racing stealers through an exclusive-create steal lock. The epoch is
// bumped past the old record's, fencing the previous holder.
func (l *Lease) stealLocked(old LeaseInfo, now time.Time) (bool, error) {
	lockPath := l.path + ".steal"
	f, err := l.fs.OpenFile(lockPath, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		if os.IsExist(err) {
			// A stealer that crashed mid-steal must not wedge the lease
			// forever; reap its lock (safely — never a live one) and let
			// the next attempt claim the cleared path.
			l.reapStaleStealLock(lockPath, now)
			return false, nil
		}
		return false, fmt.Errorf("registry: lease steal lock: %w", err)
	}
	defer func() {
		// Remove only a lock this handle still owns: a reaper that
		// misjudged it as stale may have cleared the path, and a successor
		// may hold a fresh lock there — deleting that one would reopen the
		// double-steal race. The unlink is made durable (dir fsync): a
		// crash later must not resurrect a finished steal's lock and wedge
		// the next failover until the reap timeout.
		if l.ownsStealLock(f, lockPath) {
			l.fs.Remove(lockPath)
			l.fs.SyncDir(filepath.Dir(lockPath))
		}
		f.Close()
	}()

	// Re-check under the steal lock: a renewal or competing steal may have
	// landed between our read and the lock.
	corrupt := false
	cur, exists, rerr := l.readLeaseLocked()
	switch {
	case rerr != nil:
		corrupt = true
	case exists:
		if !cur.ExpiredAt(now) && cur.Owner != l.owner {
			return false, nil
		}
		old = cur
	}

	// The new epoch must stay monotone even when the current record is
	// unreadable: floor it at the highest epoch this handle ever observed,
	// and leap over anything a corrupt record may have held.
	epoch := old.Epoch
	if l.seenEpoch > epoch {
		epoch = l.seenEpoch
	}
	if corrupt {
		epoch += corruptEpochJump
	}
	info := LeaseInfo{
		Owner: l.owner, Epoch: epoch + 1,
		ExpiryUnixMs: now.Add(l.ttl).UnixMilli(), Data: l.data,
	}

	// Final fencing gate: write the lease only while the lock path still
	// names our inode. If a reaper wrongly renamed our lock away and a
	// competitor claimed the path, exactly one of us passes this check —
	// the one the path names.
	if !l.ownsStealLock(f, lockPath) {
		return false, nil
	}
	if err := l.writeLocked(info); err != nil {
		return false, err
	}
	if old.Owner != "" && old.Owner != l.owner {
		l.steals++
	}
	l.held, l.epoch = true, info.Epoch
	if info.Epoch > l.seenEpoch {
		l.seenEpoch = info.Epoch
	}
	return true, nil
}

// ownsStealLock reports whether lockPath still names the lock file this
// handle created (same inode) — false once a reaper cleared it or a
// successor claimed the path.
func (l *Lease) ownsStealLock(f vfs.File, lockPath string) bool {
	fi, err := f.Stat()
	if err != nil {
		return false
	}
	di, err := l.fs.Stat(lockPath)
	if err != nil {
		return false
	}
	return l.fs.SameFile(fi, di)
}

// reapStaleStealLock clears a steal lock abandoned by a stealer that
// crashed mid-steal, without ever deleting a live competitor's lock out
// from under it (the TOCTOU a blind stat-then-remove has). The stale lock
// is claimed by rename — exactly one reaper wins — and re-verified on the
// renamed inode, which only this owner can touch. If it turns out fresh
// after all (cleared and re-created between our stat and the rename), it
// is restored with a non-clobbering link; whoever's inode ends up at the
// lock path wins its holder's ownsStealLock gate. The reaper itself never
// proceeds to steal: it only clears the path, and a later TryAcquire
// claims it through the normal exclusive create.
func (l *Lease) reapStaleStealLock(lockPath string, now time.Time) {
	st, err := l.fs.Stat(lockPath)
	if err != nil || now.Sub(st.ModTime()) <= l.ttl {
		return
	}
	reaped := lockPath + ".reap-" + l.owner
	if err := l.fs.Rename(lockPath, reaped); err != nil {
		return // another reaper won, or the holder finished and removed it
	}
	if st, err := l.fs.Stat(reaped); err == nil && now.Sub(st.ModTime()) <= l.ttl {
		// Fresh after all: put it back. Link cannot clobber — if an even
		// newer lock already took the path, its holder proceeds and the
		// one we renamed is the loser by the ownsStealLock gate.
		_ = l.fs.Link(reaped, lockPath)
	}
	// Unlink the reaped name durably so a crash cannot resurrect a
	// half-reaped lock file next to the live one.
	l.fs.Remove(reaped)
	l.fs.SyncDir(filepath.Dir(reaped))
}

// readLeaseLocked reads the lease file, recording the highest epoch this
// handle has ever observed. Callers hold l.mu.
func (l *Lease) readLeaseLocked() (LeaseInfo, bool, error) {
	info, exists, err := ReadLeaseFileFS(l.fs, l.path)
	if err == nil && exists && info.Epoch > l.seenEpoch {
		l.seenEpoch = info.Epoch
	}
	return info, exists, err
}

// writeLocked replaces the lease record through the fsync'd atomic-write
// helper: a crash never leaves a torn lease, and the rename is durable
// before the call returns.
func (l *Lease) writeLocked(info LeaseInfo) error {
	payload, err := json.Marshal(info)
	if err != nil {
		return err
	}
	return nn.WriteAtomicFS(l.fs, l.path, func(w io.Writer) error {
		_, werr := w.Write(payload)
		return werr
	})
}

// Read reports the current on-disk lease record without touching it.
// exists is false when no lease file is present.
func (l *Lease) Read() (info LeaseInfo, exists bool, err error) {
	return ReadLeaseFileFS(l.fs, l.path)
}

// ReadLeaseFile parses the lease record at path on the production
// filesystem. A missing file is (zero, false, nil); an unreadable or
// unparsable one is an error.
func ReadLeaseFile(path string) (LeaseInfo, bool, error) {
	return ReadLeaseFileFS(vfs.OS, path)
}

// ReadLeaseFileFS is ReadLeaseFile over an explicit filesystem.
func ReadLeaseFileFS(fsys vfs.FS, path string) (LeaseInfo, bool, error) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return LeaseInfo{}, false, nil
		}
		return LeaseInfo{}, false, err
	}
	var info LeaseInfo
	if err := json.Unmarshal(data, &info); err != nil {
		return LeaseInfo{}, true, fmt.Errorf("registry: lease %s: %w", filepath.Base(path), err)
	}
	return info, true, nil
}
