package registry

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"cdbtune/internal/core"
	"cdbtune/internal/nn"
	"cdbtune/internal/vfs"
)

// entryMagic tags the CRC32 integrity footer of every registry entry.
var entryMagic = [4]byte{'r', 'e', 'g', '1'}

// DefaultMaxEntries bounds the collection when Open is not told otherwise.
const DefaultMaxEntries = 64

// Meta describes one registered model. The registry owns ID, Version, Seq
// and the timestamps; everything else is the caller's.
type Meta struct {
	// ID names the entry (and its file, <ID>.model). Empty on Put creates
	// a new entry; a known ID updates it in place.
	ID string
	// Workload and Instance label the training conditions for humans; the
	// Fingerprint is what lookup actually matches on.
	Workload string
	Instance string
	// Fingerprint is the workload fingerprint the model was trained under
	// (see Fingerprint in this package).
	Fingerprint []float64
	// Version counts writes of this entry: 1 on creation, +1 per
	// fine-tune update.
	Version int
	// Episodes is the cumulative training episodes baked into the model;
	// ScratchEpisodes what the original from-scratch training cost (the
	// baseline against which a warm start's savings are measured).
	Episodes        int
	ScratchEpisodes int
	// BestThroughput is the best stress-test throughput the model has
	// achieved (txn/sec).
	BestThroughput float64
	// Pinned marks a promoted entry: preferred on near-ties and protected
	// from eviction.
	Pinned bool

	CreatedUnix int64
	UpdatedUnix int64
	// Seq is a registry-assigned monotone update counter; eviction removes
	// the unpinned entry with the lowest Seq.
	Seq int64
}

// entryBlob is the on-disk format inside the CRC frame.
type entryBlob struct {
	Meta  Meta
	Model []byte
}

// Registry is a persistent, concurrency-safe collection of trained models.
type Registry struct {
	dir string
	max int
	fs  vfs.FS

	mu      sync.Mutex
	entries map[string]Meta
	corrupt map[string]string // file base name -> reason
	seq     int64
	nextID  int
	logf    func(format string, args ...any)

	// changeHook, when set, is called with every mutation *before* it
	// touches the entry files — the write-ahead point Shared uses to append
	// the change log. A hook error aborts the mutation.
	changeHook func(Change) error
}

// Store is the registry surface the serving layer depends on. Both the
// in-process *Registry and the lease-replicated *Shared implement it, so
// a single-process server and a fleet node run the same Manager code.
type Store interface {
	Put(meta Meta, model []byte) (Meta, error)
	Get(id string) (Meta, []byte, error)
	Nearest(fp []float64) (Match, bool)
	NearestWithin(fp []float64, radius float64) (Match, bool)
	List() []Meta
	Corrupt() map[string]string
	Len() int
	Promote(id string) error
	Delete(id string) error
}

var (
	_ Store = (*Registry)(nil)
	_ Store = (*Shared)(nil)
)

// Option customizes Open.
type Option func(*Registry)

// WithMaxEntries bounds the collection (default DefaultMaxEntries).
func WithMaxEntries(n int) Option {
	return func(r *Registry) {
		if n > 0 {
			r.max = n
		}
	}
}

// WithFS runs the registry on an explicit filesystem instead of the
// production passthrough — the seam the crash-consistency harness uses to
// inject faults and power cuts under every entry write.
func WithFS(fsys vfs.FS) Option {
	return func(r *Registry) {
		if fsys != nil {
			r.fs = fsys
		}
	}
}

// WithLogf redirects the registry's complaints about corrupt entries
// (default log.Printf). Corruption is never silent: skipped entries are
// both logged and recorded in Corrupt.
func WithLogf(f func(format string, args ...any)) Option {
	return func(r *Registry) {
		if f != nil {
			r.logf = f
		}
	}
}

// Open loads (creating if needed) the registry rooted at dir. Entries
// that fail their integrity check are skipped loudly: logged, recorded in
// Corrupt, and left on disk for inspection.
func Open(dir string, opts ...Option) (*Registry, error) {
	r := &Registry{
		dir:     dir,
		max:     DefaultMaxEntries,
		fs:      vfs.OS,
		entries: make(map[string]Meta),
		corrupt: make(map[string]string),
		logf:    log.Printf,
	}
	for _, o := range opts {
		o(r)
	}
	// Durable mkdir: a registry whose directory entry is still volatile
	// loses every fsync'd model file with it on a power cut.
	if err := vfs.MkdirAllDurable(r.fs, dir, 0o755); err != nil {
		return nil, fmt.Errorf("registry: %w", err)
	}
	files, err := r.fs.Glob(filepath.Join(dir, "*.model"))
	if err != nil {
		return nil, fmt.Errorf("registry: %w", err)
	}
	for _, f := range files {
		blob, err := readEntry(r.fs, f)
		if err != nil {
			r.noteCorrupt(filepath.Base(f), err)
			continue
		}
		r.entries[blob.Meta.ID] = blob.Meta
		if blob.Meta.Seq > r.seq {
			r.seq = blob.Meta.Seq
		}
		var n int
		if _, err := fmt.Sscanf(blob.Meta.ID, "m%d", &n); err == nil && n >= r.nextID {
			r.nextID = n + 1
		}
	}
	return r, nil
}

// Dir reports the registry's root directory.
func (r *Registry) Dir() string { return r.dir }

// Len reports the number of healthy entries.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// List returns the healthy entries sorted by ID.
func (r *Registry) List() []Meta {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Meta, 0, len(r.entries))
	for _, m := range r.entries {
		out = append(out, cloneMeta(m))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Corrupt reports the entry files skipped for failing their integrity
// check (file base name → reason), since Open.
func (r *Registry) Corrupt() map[string]string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]string, len(r.corrupt))
	for k, v := range r.corrupt {
		out[k] = v
	}
	return out
}

// Put stores a model. An empty meta.ID creates a new entry; a known ID
// updates it in place, preserving CreatedUnix and bumping Version — the
// fine-tune path never duplicates a model. The returned Meta carries the
// registry-assigned fields. Storing may evict the least-recently-updated
// unpinned entry once the collection exceeds its bound.
func (r *Registry) Put(meta Meta, model []byte) (Meta, error) {
	if len(model) == 0 {
		return Meta{}, fmt.Errorf("registry: refusing to store empty model")
	}
	if len(meta.Fingerprint) == 0 {
		return Meta{}, fmt.Errorf("registry: refusing to store model without fingerprint")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	now := time.Now().Unix()
	if meta.ID == "" {
		meta.ID = fmt.Sprintf("m%04d", r.nextID)
		r.nextID++
		meta.Version = 1
		meta.CreatedUnix = now
	} else if prev, ok := r.entries[meta.ID]; ok {
		meta.Version = prev.Version + 1
		meta.CreatedUnix = prev.CreatedUnix
		if meta.ScratchEpisodes == 0 {
			meta.ScratchEpisodes = prev.ScratchEpisodes
		}
		// A fine-tune write-back must not silently unpin a promoted
		// model; the pin survives updates (only Delete removes it).
		meta.Pinned = meta.Pinned || prev.Pinned
	} else {
		// Caller-chosen ID for a fresh entry.
		if meta.Version == 0 {
			meta.Version = 1
		}
		meta.CreatedUnix = now
	}
	meta.UpdatedUnix = now
	r.seq++
	meta.Seq = r.seq
	if err := r.noteChangeLocked(Change{Op: OpPut, ID: meta.ID, Version: meta.Version, Pinned: meta.Pinned}); err != nil {
		return Meta{}, err
	}
	if err := r.writeLocked(meta, model); err != nil {
		return Meta{}, err
	}
	r.entries[meta.ID] = cloneMeta(meta)
	delete(r.corrupt, meta.ID+".model")
	if err := r.evictLocked(); err != nil {
		// The new entry is stored and durable; what failed is making the
		// eviction's unlink durable. Fail the Put anyway: a success here
		// would promise the caller a bounded collection while a crash
		// could resurrect the victim. A retry converges (version bump on
		// an already-stored entry, eviction re-attempted).
		return Meta{}, err
	}
	return meta, nil
}

// Get returns an entry's metadata and model bytes, re-verifying the file's
// integrity. A file that went corrupt after Open is skipped loudly: the
// entry is dropped from the index, recorded in Corrupt, and an error
// returned.
func (r *Registry) Get(id string) (Meta, []byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.getLocked(id)
}

func (r *Registry) getLocked(id string) (Meta, []byte, error) {
	if _, ok := r.entries[id]; !ok {
		return Meta{}, nil, fmt.Errorf("registry: no entry %q", id)
	}
	blob, err := readEntry(r.fs, r.path(id))
	if err != nil {
		r.noteCorrupt(id+".model", err)
		delete(r.entries, id)
		return Meta{}, nil, fmt.Errorf("registry: entry %q: %w", id, err)
	}
	return blob.Meta, blob.Model, nil
}

// Match is the outcome of a nearest-fingerprint lookup.
type Match struct {
	Meta     Meta
	Model    []byte
	Distance float64
}

// Nearest returns the healthy entry whose fingerprint is closest to fp
// (normalized RMS Euclidean distance; see Distance), verifying the
// winner's file before returning it. Entries that fail verification are
// skipped loudly and the next-nearest survivor is returned instead. A
// pinned entry wins a near-tie (within 1% distance) against an unpinned
// one. ok is false when the registry holds no readable entry.
func (r *Registry) Nearest(fp []float64) (Match, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	type cand struct {
		id  string
		d   float64
		pin bool
	}
	var cands []cand
	for id, m := range r.entries {
		d, err := Distance(fp, m.Fingerprint)
		if err != nil {
			continue // dimension mismatch: a different metric layout, never a match
		}
		cands = append(cands, cand{id: id, d: d, pin: m.Pinned})
	}
	sort.Slice(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if a.pin != b.pin && nearTie(a.d, b.d) {
			return a.pin
		}
		return a.d < b.d
	})
	for _, c := range cands {
		meta, model, err := r.getLocked(c.id)
		if err != nil {
			continue // already logged and recorded; try the next survivor
		}
		return Match{Meta: meta, Model: model, Distance: c.d}, true
	}
	return Match{}, false
}

// NearestWithin is Nearest restricted to a match radius: lookups whose
// best candidate sits farther than radius return ok = false, so callers
// warm-seeding a re-tune can fall back to their current weights instead
// of adopting a model trained for an unrelated workload. A radius ≤ 0
// means unrestricted.
func (r *Registry) NearestWithin(fp []float64, radius float64) (Match, bool) {
	m, ok := r.Nearest(fp)
	if !ok || (radius > 0 && m.Distance > radius) {
		return Match{}, false
	}
	return m, true
}

// nearTie reports whether two distances are within 1% (relative) of each
// other.
func nearTie(a, b float64) bool {
	hi := a
	if b > hi {
		hi = b
	}
	if hi == 0 {
		return true
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d/hi <= 0.01
}

// Promote pins an entry: protected from eviction and preferred on
// near-tie lookups. The entry file is rewritten (same version).
func (r *Registry) Promote(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	meta, model, err := r.getLocked(id)
	if err != nil {
		return err
	}
	if meta.Pinned {
		return nil
	}
	meta.Pinned = true
	meta.UpdatedUnix = time.Now().Unix()
	if err := r.noteChangeLocked(Change{Op: OpPromote, ID: id, Version: meta.Version, Pinned: true}); err != nil {
		return err
	}
	if err := r.writeLocked(meta, model); err != nil {
		return err
	}
	r.entries[id] = cloneMeta(meta)
	return nil
}

// Delete removes an entry and its file. Deleting an unknown ID is an
// error; deleting an entry whose file already vanished is not.
func (r *Registry) Delete(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[id]; !ok {
		return fmt.Errorf("registry: no entry %q", id)
	}
	if err := r.noteChangeLocked(Change{Op: OpDelete, ID: id}); err != nil {
		return err
	}
	if err := r.fs.Remove(r.path(id)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("registry: delete %q: %w", id, err)
	}
	// Make the unlink durable: without the directory fsync a crash can
	// resurrect the deleted entry, and a follower that already applied the
	// delete record would serve a model the operator removed.
	if err := r.fs.SyncDir(r.dir); err != nil {
		return fmt.Errorf("registry: delete %q: %w", id, err)
	}
	delete(r.entries, id)
	return nil
}

// evictLocked removes least-recently-updated unpinned entries until the
// collection fits its bound. A collection of nothing but pinned entries is
// allowed to exceed the bound (with a complaint). An unlink that cannot
// be completed and made durable is an error: the victim stays indexed
// (disk and memory agree) and the caller's mutation fails rather than
// acking an eviction a crash could undo.
func (r *Registry) evictLocked() error {
	for len(r.entries) > r.max {
		victim := ""
		var low int64
		for id, m := range r.entries {
			if m.Pinned {
				continue
			}
			if victim == "" || m.Seq < low {
				victim, low = id, m.Seq
			}
		}
		if victim == "" {
			r.logf("registry: %d entries all pinned, over the %d bound; not evicting", len(r.entries), r.max)
			return nil
		}
		if err := r.noteChangeLocked(Change{Op: OpEvict, ID: victim}); err != nil {
			r.logf("registry: eviction of %s not logged (%v); keeping the entry", victim, err)
			return nil
		}
		if err := r.fs.Remove(r.path(victim)); err != nil && !os.IsNotExist(err) {
			r.logf("registry: evicting %s: %v", victim, err)
			return fmt.Errorf("registry: evicting %s: %w", victim, err)
		}
		delete(r.entries, victim)
		// Durable unlink, same as Delete: an evicted entry that resurrects
		// after a crash would push the collection back over its bound and
		// resurface a model every follower already forgot.
		if err := r.fs.SyncDir(r.dir); err != nil {
			return fmt.Errorf("registry: evicting %s: dir sync: %w", victim, err)
		}
		r.logf("registry: evicted %s (collection over %d entries)", victim, r.max)
	}
	return nil
}

// noteChangeLocked runs the change hook (when installed) ahead of a
// mutation's disk writes; callers hold r.mu.
func (r *Registry) noteChangeLocked(ch Change) error {
	if r.changeHook == nil {
		return nil
	}
	return r.changeHook(ch)
}

// setChangeHook installs the write-ahead mutation hook (see Shared).
func (r *Registry) setChangeHook(hook func(Change) error) {
	r.mu.Lock()
	r.changeHook = hook
	r.mu.Unlock()
}

// ReloadEntry re-reads one entry file into the index — how a process
// picks up another process's write to the shared directory. A vanished
// file drops the entry from the index (not an error: deletes and evicts
// look like this from a follower); a corrupt one is skipped loudly.
func (r *Registry) ReloadEntry(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	blob, err := readEntry(r.fs, r.path(id))
	if err != nil {
		if os.IsNotExist(err) {
			delete(r.entries, id)
			return nil
		}
		r.noteCorrupt(id+".model", err)
		delete(r.entries, id)
		return fmt.Errorf("registry: reload %q: %w", id, err)
	}
	r.entries[id] = blob.Meta
	delete(r.corrupt, id+".model")
	if blob.Meta.Seq > r.seq {
		r.seq = blob.Meta.Seq
	}
	var n int
	if _, err := fmt.Sscanf(blob.Meta.ID, "m%d", &n); err == nil && n >= r.nextID {
		r.nextID = n + 1
	}
	return nil
}

// Forget drops an entry from the in-memory index without touching its
// file — applying another process's delete or evict.
func (r *Registry) Forget(id string) {
	r.mu.Lock()
	delete(r.entries, id)
	r.mu.Unlock()
}

// Peek returns an entry's indexed metadata without re-reading its file.
func (r *Registry) Peek(id string) (Meta, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.entries[id]
	if !ok {
		return Meta{}, false
	}
	return cloneMeta(m), true
}

// Verify re-reads every entry file under the registry directory and
// checks its CRC frame, independent of the in-memory index — the
// post-chaos validation the fleet harness runs. It reports the number of
// healthy entries and the corrupt files (base name → reason).
func (r *Registry) Verify() (healthy int, corrupt map[string]string) {
	corrupt = make(map[string]string)
	files, err := r.fs.Glob(filepath.Join(r.dir, "*.model"))
	if err != nil {
		corrupt["(glob)"] = err.Error()
		return 0, corrupt
	}
	for _, f := range files {
		if _, err := readEntry(r.fs, f); err != nil {
			corrupt[filepath.Base(f)] = err.Error()
			continue
		}
		healthy++
	}
	return healthy, corrupt
}

func (r *Registry) path(id string) string {
	return filepath.Join(r.dir, id+".model")
}

func (r *Registry) noteCorrupt(file string, err error) {
	reason := err.Error()
	// Keep the reason short in the index; the log line has the full text.
	if i := strings.IndexByte(reason, '\n'); i >= 0 {
		reason = reason[:i]
	}
	r.corrupt[file] = reason
	r.logf("registry: skipping corrupt entry %s: %v", file, err)
}

// writeLocked persists one entry atomically with the CRC frame.
func (r *Registry) writeLocked(meta Meta, model []byte) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(entryBlob{Meta: meta, Model: model}); err != nil {
		return fmt.Errorf("registry: encode %q: %w", meta.ID, err)
	}
	return nn.WriteAtomicFS(r.fs, r.path(meta.ID), func(w io.Writer) error {
		return core.WriteFramed(w, buf.Bytes(), entryMagic)
	})
}

// readEntry reads and verifies one entry file.
func readEntry(fsys vfs.FS, path string) (entryBlob, error) {
	var blob entryBlob
	data, err := fsys.ReadFile(path)
	if err != nil {
		return blob, err
	}
	payload, err := core.ReadFramed(data, entryMagic, "registry entry")
	if err != nil {
		return blob, err
	}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&blob); err != nil {
		return blob, fmt.Errorf("registry entry: decode: %w", err)
	}
	if blob.Meta.ID == "" {
		return blob, fmt.Errorf("registry entry: blank ID")
	}
	return blob, nil
}

func cloneMeta(m Meta) Meta {
	m.Fingerprint = append([]float64(nil), m.Fingerprint...)
	return m
}
