package registry

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"time"

	"cdbtune/internal/vfs"
)

// ErrShortAppend reports that an Append failed mid-frame — a short write
// or I/O error from a full or faulty disk. The torn bytes have already
// been truncated away (the log's tail is back at the last good frame),
// so the caller may safely retry the same record once the condition
// clears; nothing partial remains on disk either way.
var ErrShortAppend = errors.New("registry: change log append cut short (tail reclaimed, retry safe)")

// DebugSkipTailReclaim re-introduces the pre-crash-harness torn-tail bug
// for detector-sensitivity testing ONLY: Append overwrites a torn tail
// in place instead of truncating it first, so a replacement frame
// shorter than the torn remnant leaves mid-frame garbage that wedges
// later reads. The crashtest suite flips it on to prove the harness
// catches exactly this class of bug; nothing else may set it.
var DebugSkipTailReclaim bool

// Change operations recorded in the registry change log.
const (
	OpPut     = "put"
	OpPromote = "promote"
	OpDelete  = "delete"
	OpEvict   = "evict"
)

// walMagic tags every change-log frame.
var walMagic = [4]byte{'w', 'c', 'h', 'g'}

// Change is one registry mutation in the write-ahead change log. Version
// and Pinned carry the expected post-state for puts and promotions, so a
// follower that replays the record before the entry file lands can tell
// it is still looking at the old bytes and retry — no lost promotion, no
// torn read served as current.
type Change struct {
	Seq     int64  `json:"seq"`
	Op      string `json:"op"`
	ID      string `json:"id"`
	Version int    `json:"version,omitempty"`
	Pinned  bool   `json:"pinned,omitempty"`
	// Epoch is the writer's registry-lease epoch at append time.
	Epoch  int64 `json:"epoch,omitempty"`
	UnixMs int64 `json:"unix_ms"`
}

// ChangeLog is an append-only, CRC-framed log of registry mutations
// shared by every process serving one registry directory. Appends happen
// under the registry write lease and are fsync'd; Tail reads whatever
// other writers appended since the last call. A torn final frame (a
// writer crashed mid-append) is tolerated: Tail stops in front of it and
// re-reads it once it is complete.
type ChangeLog struct {
	path string
	fs   vfs.FS

	mu      sync.Mutex
	f       vfs.File
	off     int64 // read position: everything before off has been returned by Tail
	lastSeq int64
}

// OpenChangeLog opens (creating if needed) the change log at path on the
// production filesystem. The read position starts at zero: the first
// Tail returns the full history.
func OpenChangeLog(path string) (*ChangeLog, error) {
	return OpenChangeLogFS(vfs.OS, path)
}

// OpenChangeLogFS is OpenChangeLog over an explicit filesystem. When the
// call creates the log file it fsyncs the parent directory, so a log
// whose first appends were acked cannot vanish wholesale because its
// directory entry was never made durable.
func OpenChangeLogFS(fsys vfs.FS, path string) (*ChangeLog, error) {
	_, serr := fsys.Stat(path)
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("registry: change log: %w", err)
	}
	if os.IsNotExist(serr) {
		if err := fsys.SyncDir(filepath.Dir(path)); err != nil {
			f.Close()
			return nil, fmt.Errorf("registry: change log: %w", err)
		}
	}
	return &ChangeLog{path: path, fs: fsys, f: f}, nil
}

// Close releases the log's file handle.
func (c *ChangeLog) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.f.Close()
}

// LastSeq reports the highest sequence number seen (read or written).
func (c *ChangeLog) LastSeq() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastSeq
}

// Tail returns the records appended since the previous Tail (or since
// Open). A torn final frame is not an error: it stays unread until the
// writer finishes it. A corrupt frame body is an error — the records
// before it are still returned, and the read position stops in front of
// the damage so the problem stays visible.
func (c *ChangeLog) Tail() ([]Change, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tailLocked()
}

func (c *ChangeLog) tailLocked() ([]Change, error) {
	st, err := c.f.Stat()
	if err != nil {
		return nil, fmt.Errorf("registry: change log: %w", err)
	}
	if st.Size() <= c.off {
		return nil, nil
	}
	buf := make([]byte, st.Size()-c.off)
	if _, err := c.f.ReadAt(buf, c.off); err != nil {
		return nil, fmt.Errorf("registry: change log read: %w", err)
	}
	var out []Change
	pos := 0
	for pos < len(buf) {
		// Frame: magic(4) | payload len (uint32 LE) | payload | crc32(payload).
		if len(buf)-pos < 8 {
			break // torn header
		}
		if string(buf[pos:pos+4]) != string(walMagic[:]) {
			return out, fmt.Errorf("registry: change log: bad frame magic at offset %d", c.off+int64(pos))
		}
		n := int(binary.LittleEndian.Uint32(buf[pos+4 : pos+8]))
		if n <= 0 || n > 1<<20 {
			return out, fmt.Errorf("registry: change log: implausible frame length %d at offset %d", n, c.off+int64(pos))
		}
		if len(buf)-pos < 8+n+4 {
			break // torn payload: the writer is mid-append
		}
		payload := buf[pos+8 : pos+8+n]
		want := binary.LittleEndian.Uint32(buf[pos+8+n : pos+8+n+4])
		if got := crc32.ChecksumIEEE(payload); got != want {
			return out, fmt.Errorf("registry: change log: frame CRC %08x != %08x at offset %d", got, want, c.off+int64(pos))
		}
		var ch Change
		if err := json.Unmarshal(payload, &ch); err != nil {
			return out, fmt.Errorf("registry: change log: frame decode at offset %d: %w", c.off+int64(pos), err)
		}
		pos += 8 + n + 4
		c.off += int64(8 + n + 4)
		if ch.Seq > c.lastSeq {
			c.lastSeq = ch.Seq
		}
		out = append(out, ch)
	}
	return out, nil
}

// Append writes one record with the next sequence number and fsyncs it.
// The caller must hold the registry write lease: Append first tails the
// log to pick up sequence numbers from other (lease-serialized) writers,
// then writes its frame at the end. The appended record — Seq and UnixMs
// filled in — is returned. Records appended by this handle are consumed
// locally (a later Tail does not return them): the writer already applied
// the mutation it is logging.
func (c *ChangeLog) Append(ch Change) (Change, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.tailLocked(); err != nil {
		// Unparseable bytes at the write offset. The lease serializes
		// writers, so nothing another live writer needs can sit past the
		// consumed frames: the damage is a dead tail (a crashed writer's
		// leftovers). Reclaim it rather than wedging every future append.
		if !DebugSkipTailReclaim {
			if terr := c.truncateTailLocked(); terr != nil {
				return Change{}, terr
			}
		}
	}
	// A torn final frame (a writer crashed mid-append) also leaves bytes
	// past the read position. Overwriting it in place would be wrong: a
	// replacement frame shorter than the torn one leaves mid-frame garbage
	// after it, poisoning every later read. Drop the tail first.
	if !DebugSkipTailReclaim {
		if err := c.truncateTailLocked(); err != nil {
			return Change{}, err
		}
	}
	ch.Seq = c.lastSeq + 1
	ch.UnixMs = time.Now().UnixMilli()
	payload, err := json.Marshal(ch)
	if err != nil {
		return Change{}, err
	}
	frame := make([]byte, 0, 8+len(payload)+4)
	frame = append(frame, walMagic[:]...)
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = append(frame, payload...)
	frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(payload))
	if _, err := c.f.WriteAt(frame, c.off); err != nil {
		// A short write (ENOSPC mid-frame) left a torn frame at the tail.
		// Reclaim it NOW, not on the next append: until then every reader
		// would sit behind a tail that no live writer is ever going to
		// finish, and a crash would hand the garbage to recovery. After
		// the truncate the log is exactly as before this call, so the
		// typed error tells the caller a retry is safe.
		if terr := c.truncateTailLocked(); terr != nil {
			return Change{}, fmt.Errorf("registry: change log append: %w (and tail reclaim failed: %w)", err, terr)
		}
		return Change{}, fmt.Errorf("registry: change log append: %w: %w", ErrShortAppend, err)
	}
	if err := c.f.Sync(); err != nil {
		// The frame may or may not have reached the platter; drop it from
		// the file so the in-memory offset and the disk agree, and report
		// retryable.
		if terr := c.truncateTailLocked(); terr != nil {
			return Change{}, fmt.Errorf("registry: change log sync: %w (and tail reclaim failed: %w)", err, terr)
		}
		return Change{}, fmt.Errorf("registry: change log sync: %w: %w", ErrShortAppend, err)
	}
	c.off += int64(len(frame))
	c.lastSeq = ch.Seq
	return ch, nil
}

// truncateTailLocked discards everything after the read position — torn
// or garbage bytes a crashed writer left behind. Only the lease holder
// (Append) calls it: readers must keep stopping in front of a torn frame
// and wait for its writer, never destroy it. Callers hold c.mu.
func (c *ChangeLog) truncateTailLocked() error {
	st, err := c.f.Stat()
	if err != nil {
		return fmt.Errorf("registry: change log: %w", err)
	}
	if st.Size() <= c.off {
		return nil
	}
	if err := c.f.Truncate(c.off); err != nil {
		return fmt.Errorf("registry: change log truncate: %w", err)
	}
	if err := c.f.Sync(); err != nil {
		return fmt.Errorf("registry: change log sync: %w", err)
	}
	return nil
}
