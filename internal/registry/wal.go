package registry

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
	"time"
)

// Change operations recorded in the registry change log.
const (
	OpPut     = "put"
	OpPromote = "promote"
	OpDelete  = "delete"
	OpEvict   = "evict"
)

// walMagic tags every change-log frame.
var walMagic = [4]byte{'w', 'c', 'h', 'g'}

// Change is one registry mutation in the write-ahead change log. Version
// and Pinned carry the expected post-state for puts and promotions, so a
// follower that replays the record before the entry file lands can tell
// it is still looking at the old bytes and retry — no lost promotion, no
// torn read served as current.
type Change struct {
	Seq     int64  `json:"seq"`
	Op      string `json:"op"`
	ID      string `json:"id"`
	Version int    `json:"version,omitempty"`
	Pinned  bool   `json:"pinned,omitempty"`
	// Epoch is the writer's registry-lease epoch at append time.
	Epoch  int64 `json:"epoch,omitempty"`
	UnixMs int64 `json:"unix_ms"`
}

// ChangeLog is an append-only, CRC-framed log of registry mutations
// shared by every process serving one registry directory. Appends happen
// under the registry write lease and are fsync'd; Tail reads whatever
// other writers appended since the last call. A torn final frame (a
// writer crashed mid-append) is tolerated: Tail stops in front of it and
// re-reads it once it is complete.
type ChangeLog struct {
	path string

	mu      sync.Mutex
	f       *os.File
	off     int64 // read position: everything before off has been returned by Tail
	lastSeq int64
}

// OpenChangeLog opens (creating if needed) the change log at path. The
// read position starts at zero: the first Tail returns the full history.
func OpenChangeLog(path string) (*ChangeLog, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("registry: change log: %w", err)
	}
	return &ChangeLog{path: path, f: f}, nil
}

// Close releases the log's file handle.
func (c *ChangeLog) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.f.Close()
}

// LastSeq reports the highest sequence number seen (read or written).
func (c *ChangeLog) LastSeq() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastSeq
}

// Tail returns the records appended since the previous Tail (or since
// Open). A torn final frame is not an error: it stays unread until the
// writer finishes it. A corrupt frame body is an error — the records
// before it are still returned, and the read position stops in front of
// the damage so the problem stays visible.
func (c *ChangeLog) Tail() ([]Change, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tailLocked()
}

func (c *ChangeLog) tailLocked() ([]Change, error) {
	st, err := c.f.Stat()
	if err != nil {
		return nil, fmt.Errorf("registry: change log: %w", err)
	}
	if st.Size() <= c.off {
		return nil, nil
	}
	buf := make([]byte, st.Size()-c.off)
	if _, err := c.f.ReadAt(buf, c.off); err != nil {
		return nil, fmt.Errorf("registry: change log read: %w", err)
	}
	var out []Change
	pos := 0
	for pos < len(buf) {
		// Frame: magic(4) | payload len (uint32 LE) | payload | crc32(payload).
		if len(buf)-pos < 8 {
			break // torn header
		}
		if string(buf[pos:pos+4]) != string(walMagic[:]) {
			return out, fmt.Errorf("registry: change log: bad frame magic at offset %d", c.off+int64(pos))
		}
		n := int(binary.LittleEndian.Uint32(buf[pos+4 : pos+8]))
		if n <= 0 || n > 1<<20 {
			return out, fmt.Errorf("registry: change log: implausible frame length %d at offset %d", n, c.off+int64(pos))
		}
		if len(buf)-pos < 8+n+4 {
			break // torn payload: the writer is mid-append
		}
		payload := buf[pos+8 : pos+8+n]
		want := binary.LittleEndian.Uint32(buf[pos+8+n : pos+8+n+4])
		if got := crc32.ChecksumIEEE(payload); got != want {
			return out, fmt.Errorf("registry: change log: frame CRC %08x != %08x at offset %d", got, want, c.off+int64(pos))
		}
		var ch Change
		if err := json.Unmarshal(payload, &ch); err != nil {
			return out, fmt.Errorf("registry: change log: frame decode at offset %d: %w", c.off+int64(pos), err)
		}
		pos += 8 + n + 4
		c.off += int64(8 + n + 4)
		if ch.Seq > c.lastSeq {
			c.lastSeq = ch.Seq
		}
		out = append(out, ch)
	}
	return out, nil
}

// Append writes one record with the next sequence number and fsyncs it.
// The caller must hold the registry write lease: Append first tails the
// log to pick up sequence numbers from other (lease-serialized) writers,
// then writes its frame at the end. The appended record — Seq and UnixMs
// filled in — is returned. Records appended by this handle are consumed
// locally (a later Tail does not return them): the writer already applied
// the mutation it is logging.
func (c *ChangeLog) Append(ch Change) (Change, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.tailLocked(); err != nil {
		// Unparseable bytes at the write offset. The lease serializes
		// writers, so nothing another live writer needs can sit past the
		// consumed frames: the damage is a dead tail (a crashed writer's
		// leftovers). Reclaim it rather than wedging every future append.
		if terr := c.truncateTailLocked(); terr != nil {
			return Change{}, terr
		}
	}
	// A torn final frame (a writer crashed mid-append) also leaves bytes
	// past the read position. Overwriting it in place would be wrong: a
	// replacement frame shorter than the torn one leaves mid-frame garbage
	// after it, poisoning every later read. Drop the tail first.
	if err := c.truncateTailLocked(); err != nil {
		return Change{}, err
	}
	ch.Seq = c.lastSeq + 1
	ch.UnixMs = time.Now().UnixMilli()
	payload, err := json.Marshal(ch)
	if err != nil {
		return Change{}, err
	}
	frame := make([]byte, 0, 8+len(payload)+4)
	frame = append(frame, walMagic[:]...)
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = append(frame, payload...)
	frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(payload))
	if _, err := c.f.WriteAt(frame, c.off); err != nil {
		return Change{}, fmt.Errorf("registry: change log append: %w", err)
	}
	if err := c.f.Sync(); err != nil {
		return Change{}, fmt.Errorf("registry: change log sync: %w", err)
	}
	c.off += int64(len(frame))
	c.lastSeq = ch.Seq
	return ch, nil
}

// truncateTailLocked discards everything after the read position — torn
// or garbage bytes a crashed writer left behind. Only the lease holder
// (Append) calls it: readers must keep stopping in front of a torn frame
// and wait for its writer, never destroy it. Callers hold c.mu.
func (c *ChangeLog) truncateTailLocked() error {
	st, err := c.f.Stat()
	if err != nil {
		return fmt.Errorf("registry: change log: %w", err)
	}
	if st.Size() <= c.off {
		return nil
	}
	if err := c.f.Truncate(c.off); err != nil {
		return fmt.Errorf("registry: change log truncate: %w", err)
	}
	if err := c.f.Sync(); err != nil {
		return fmt.Errorf("registry: change log sync: %w", err)
	}
	return nil
}
