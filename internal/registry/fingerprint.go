package registry

import (
	"fmt"
	"math"

	"cdbtune/internal/metrics"
	"cdbtune/internal/simdb"
	"cdbtune/internal/workload"
)

// FingerprintDim is the length of a workload fingerprint: the 63
// normalized internal metrics observed under the default configuration,
// the workload's read/write ratio, and four hardware-class features.
const FingerprintDim = metrics.NumMetrics + 2 + 4

// Fingerprint builds the workload fingerprint lookup matches on: the
// 63-metric state vector measured under the *default* configuration (so
// two requests for the same workload on the same hardware class land near
// each other regardless of their current tuning), the read/write ratio,
// and the hardware class (RAM, disk size, disk medium, cores — each
// soft-normalized into [0,1]). defaultState is the raw collector vector
// (simdb.Result.State); it is normalized here. Every component lives in
// [0,1], so the RMS Euclidean Distance below is scale-free.
func Fingerprint(defaultState []float64, w workload.Workload, hw simdb.Hardware) []float64 {
	fp := make([]float64, 0, FingerprintDim)
	fp = append(fp, metrics.Normalize(defaultState)...)
	fp = append(fp, clamp01(w.ReadFraction), clamp01(w.WriteFraction()))
	fp = append(fp,
		hw.RAMGB/(hw.RAMGB+16),
		hw.DiskGB/(hw.DiskGB+200),
		diskKind01(hw.Disk),
		float64(hw.Cores)/(float64(hw.Cores)+16),
	)
	return fp
}

// diskKind01 maps the disk medium onto a speed-ordered scalar.
func diskKind01(k simdb.DiskKind) float64 {
	switch k {
	case simdb.DiskHDD:
		return 0
	case simdb.DiskNVM:
		return 1
	default: // SSD
		return 0.5
	}
}

func clamp01(v float64) float64 {
	if math.IsNaN(v) || v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Distance is the normalized RMS Euclidean distance between two
// fingerprints: sqrt(mean((a−b)²)). With every component in [0,1] the
// result is in [0,1] too — 0 is identical, and the serving layer's match
// radius is expressed in these units. Mismatched lengths (a different
// metric layout) are an error, never a match.
func Distance(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("registry: fingerprint dims %d vs %d", len(a), len(b))
	}
	if len(a) == 0 {
		return 0, fmt.Errorf("registry: empty fingerprints")
	}
	var ss float64
	for i := range a {
		d := a[i] - b[i]
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(a))), nil
}

// Cosine is the cosine similarity between two fingerprints (1 = parallel,
// 0 = orthogonal), provided for diagnostics and experiments; lookup uses
// Distance.
func Cosine(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("registry: fingerprint dims %d vs %d", len(a), len(b))
	}
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0, nil
	}
	return dot / math.Sqrt(na*nb), nil
}
