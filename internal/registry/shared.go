package registry

import (
	"fmt"
	"path/filepath"
	"sync"
	"time"
)

// DefaultLeaseWait bounds how long a mutation waits to take the registry
// write lease before failing.
const DefaultLeaseWait = 10 * time.Second

// Shared is a Registry served by multiple processes out of one directory.
// Reads first replay the shared change log (Refresh), so promotions,
// fine-tune version bumps, deletes and evictions made by other processes
// are visible; mutations take the on-disk write lease (registry.lease)
// and append to the write-ahead change log (registry.wal) before the
// entry file is touched. The lease is held lazily across mutations and
// stolen by a peer after its TTL, so a crashed writer stalls peers for at
// most one TTL.
type Shared struct {
	*Registry
	lease *Lease
	log   *ChangeLog

	leaseWait time.Duration

	mu sync.Mutex
	// lagging holds replayed records whose on-disk entry has not caught up
	// with the recorded post-state yet (the writer was between its WAL
	// append and its entry rename); they are retried on every Refresh so a
	// promotion or version bump is never silently lost.
	lagging map[string]Change
}

// SharedOption customizes OpenShared.
type SharedOption func(*Shared)

// WithLeaseTTL sets the write-lease TTL (default DefaultLeaseTTL).
func WithLeaseTTL(ttl time.Duration) SharedOption {
	return func(s *Shared) {
		if ttl > 0 {
			s.lease = NewLeaseFS(s.lease.fs, s.lease.path, s.lease.owner, ttl)
		}
	}
}

// WithLeaseWait bounds how long mutations wait for the write lease
// (default DefaultLeaseWait).
func WithLeaseWait(d time.Duration) SharedOption {
	return func(s *Shared) {
		if d > 0 {
			s.leaseWait = d
		}
	}
}

// OpenShared opens the registry at dir for multi-process serving. owner
// names this process in the lease file (use a stable node ID). Registry
// options (WithMaxEntries, WithLogf) apply to the embedded collection.
func OpenShared(dir, owner string, regOpts []Option, opts ...SharedOption) (*Shared, error) {
	r, err := Open(dir, regOpts...)
	if err != nil {
		return nil, err
	}
	log, err := OpenChangeLogFS(r.fs, filepath.Join(dir, "registry.wal"))
	if err != nil {
		return nil, err
	}
	s := &Shared{
		Registry:  r,
		lease:     NewLeaseFS(r.fs, filepath.Join(dir, "registry.lease"), owner, 0),
		log:       log,
		leaseWait: DefaultLeaseWait,
		lagging:   make(map[string]Change),
	}
	for _, o := range opts {
		o(s)
	}
	// Open already scanned every entry file; discard the log's history so
	// Refresh starts from "now".
	if _, err := log.Tail(); err != nil {
		s.Registry.logf("registry: change log has a damaged tail at open: %v", err)
	}
	r.setChangeHook(s.recordChange)
	return s, nil
}

// Close releases the write lease (if held) and the change-log handle.
func (s *Shared) Close() error {
	err := s.lease.Release()
	if cerr := s.log.Close(); err == nil {
		err = cerr
	}
	return err
}

// Lease exposes the registry write lease (metrics: epoch, steals).
func (s *Shared) Lease() *Lease { return s.lease }

// recordChange is the Registry change hook: append the mutation to the
// write-ahead log before any entry file is touched. Mutations run under
// the write lease, which serializes appends across processes.
func (s *Shared) recordChange(ch Change) error {
	ch.Epoch = s.lease.Epoch()
	_, err := s.log.Append(ch)
	return err
}

// Refresh replays change-log records appended by other processes into the
// in-memory index. Records whose on-disk entry has not caught up with the
// recorded post-state (version for puts, pin for promotions) are kept and
// retried on the next Refresh.
func (s *Shared) Refresh() error {
	records, err := s.log.Tail()
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, ch := range s.lagging {
		if s.applyLocked(ch) {
			delete(s.lagging, id)
		}
	}
	for _, ch := range records {
		if !s.applyLocked(ch) {
			s.lagging[ch.ID] = ch
		} else {
			delete(s.lagging, ch.ID)
		}
	}
	return err
}

// applyLocked applies one replayed record; callers hold s.mu. It reports
// whether the on-disk state has caught up with the record.
func (s *Shared) applyLocked(ch Change) bool {
	switch ch.Op {
	case OpDelete, OpEvict:
		s.Registry.Forget(ch.ID)
		return true
	case OpPut, OpPromote:
		if err := s.Registry.ReloadEntry(ch.ID); err != nil {
			return false
		}
		meta, ok := s.Registry.Peek(ch.ID)
		if !ok {
			// Entry file not there yet (writer mid-rename) — or already
			// deleted by a later record, which will say so itself.
			return false
		}
		if meta.Version < ch.Version {
			return false
		}
		if ch.Op == OpPromote && !meta.Pinned {
			return false
		}
		return true
	default:
		return true // unknown op from a newer version: nothing to apply
	}
}

// withLease runs fn while holding the registry write lease, acquiring it
// (waiting up to leaseWait for the current holder to expire) if needed.
// The lease is kept after fn returns — repeat writers skip the acquire —
// and stolen by peers after one TTL of silence.
func (s *Shared) withLease(fn func() error) error {
	deadline := time.Now().Add(s.leaseWait)
	for {
		ok, err := s.lease.TryAcquire()
		if err != nil {
			return fmt.Errorf("registry: write lease: %w", err)
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			info, _, _ := s.lease.Read()
			return fmt.Errorf("registry: write lease held by %q (epoch %d) past %s wait", info.Owner, info.Epoch, s.leaseWait)
		}
		time.Sleep(s.lease.TTL() / 20)
	}
	return fn()
}

// Put stores a model under the write lease, refreshing first so version
// bumps build on the newest shared state.
func (s *Shared) Put(meta Meta, model []byte) (Meta, error) {
	var out Meta
	err := s.withLease(func() error {
		if err := s.Refresh(); err != nil {
			s.Registry.logf("registry: refresh before put: %v", err)
		}
		var err error
		out, err = s.Registry.Put(meta, model)
		return err
	})
	return out, err
}

// Promote pins an entry under the write lease.
func (s *Shared) Promote(id string) error {
	return s.withLease(func() error {
		if err := s.Refresh(); err != nil {
			s.Registry.logf("registry: refresh before promote: %v", err)
		}
		return s.Registry.Promote(id)
	})
}

// Delete removes an entry under the write lease.
func (s *Shared) Delete(id string) error {
	return s.withLease(func() error {
		if err := s.Refresh(); err != nil {
			s.Registry.logf("registry: refresh before delete: %v", err)
		}
		return s.Registry.Delete(id)
	})
}

// Nearest refreshes from the change log, then matches.
func (s *Shared) Nearest(fp []float64) (Match, bool) {
	if err := s.Refresh(); err != nil {
		s.Registry.logf("registry: refresh before lookup: %v", err)
	}
	return s.Registry.Nearest(fp)
}

// NearestWithin refreshes from the change log, then matches.
func (s *Shared) NearestWithin(fp []float64, radius float64) (Match, bool) {
	if err := s.Refresh(); err != nil {
		s.Registry.logf("registry: refresh before lookup: %v", err)
	}
	return s.Registry.NearestWithin(fp, radius)
}

// List refreshes from the change log, then lists.
func (s *Shared) List() []Meta {
	if err := s.Refresh(); err != nil {
		s.Registry.logf("registry: refresh before list: %v", err)
	}
	return s.Registry.List()
}

// Get refreshes from the change log, then reads.
func (s *Shared) Get(id string) (Meta, []byte, error) {
	if err := s.Refresh(); err != nil {
		s.Registry.logf("registry: refresh before get: %v", err)
	}
	return s.Registry.Get(id)
}
