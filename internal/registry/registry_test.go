package registry

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cdbtune/internal/simdb"
	"cdbtune/internal/workload"
)

// fakeModel builds distinguishable model bytes.
func fakeModel(tag string) []byte {
	return []byte("model-bytes-" + tag + strings.Repeat("x", 64))
}

// fp builds a fingerprint whose metric block is a constant v — entries
// with different v are far apart, same v identical.
func fp(v float64) []float64 {
	w := workload.SysbenchRW()
	state := make([]float64, 63)
	for i := range state {
		state[i] = v * 1e6 // raw scale; Normalize squashes into [0,1)
	}
	return Fingerprint(state, w, simdb.CDBA.HW)
}

func quietOpen(t *testing.T, dir string, opts ...Option) *Registry {
	t.Helper()
	opts = append(opts, WithLogf(t.Logf))
	r, err := Open(dir, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestFingerprintShapeAndDistance(t *testing.T) {
	a := fp(1)
	if len(a) != FingerprintDim {
		t.Fatalf("fingerprint dim %d, want %d", len(a), FingerprintDim)
	}
	for i, v := range a {
		if v < 0 || v > 1 {
			t.Fatalf("component %d = %v out of [0,1]", i, v)
		}
	}
	d, err := Distance(a, fp(1))
	if err != nil || d != 0 {
		t.Fatalf("identical fingerprints: d=%v err=%v", d, err)
	}
	far, err := Distance(a, fp(50))
	if err != nil {
		t.Fatal(err)
	}
	if far <= 0.01 {
		t.Fatalf("different workloads should be far apart, d=%v", far)
	}
	if _, err := Distance(a, a[:10]); err == nil {
		t.Fatal("dimension mismatch must error")
	}
	c, err := Cosine(a, a)
	if err != nil || c < 0.999 {
		t.Fatalf("self-cosine = %v err=%v", c, err)
	}
	// Read/write ratio separates otherwise-identical metric blocks.
	ro, wo := workload.SysbenchRO(), workload.SysbenchWO()
	state := make([]float64, 63)
	fa := Fingerprint(state, ro, simdb.CDBA.HW)
	fb := Fingerprint(state, wo, simdb.CDBA.HW)
	d, _ = Distance(fa, fb)
	if d == 0 {
		t.Fatal("read/write ratio must separate fingerprints")
	}
}

func TestPutGetVersioning(t *testing.T) {
	r := quietOpen(t, t.TempDir())
	m1, err := r.Put(Meta{Workload: "sysbench-rw", Instance: "CDB-A", Fingerprint: fp(1), Episodes: 6, ScratchEpisodes: 6}, fakeModel("a"))
	if err != nil {
		t.Fatal(err)
	}
	if m1.ID == "" || m1.Version != 1 {
		t.Fatalf("new entry meta: %+v", m1)
	}
	// Fine-tune update: same ID, version bumps, no duplicate.
	m2, err := r.Put(Meta{ID: m1.ID, Workload: "sysbench-rw", Instance: "CDB-A", Fingerprint: fp(1), Episodes: 8}, fakeModel("a2"))
	if err != nil {
		t.Fatal(err)
	}
	if m2.Version != 2 || m2.ID != m1.ID {
		t.Fatalf("update meta: %+v", m2)
	}
	if m2.ScratchEpisodes != 6 {
		t.Fatalf("update must inherit ScratchEpisodes, got %d", m2.ScratchEpisodes)
	}
	if r.Len() != 1 {
		t.Fatalf("fine-tune duplicated the entry: %d entries", r.Len())
	}
	meta, model, err := r.Get(m1.ID)
	if err != nil {
		t.Fatal(err)
	}
	if string(model) != string(fakeModel("a2")) || meta.Episodes != 8 {
		t.Fatalf("round-trip lost the update: %+v", meta)
	}

	// Reopen: the entry persists, version and seq intact.
	r2 := quietOpen(t, r.Dir())
	if r2.Len() != 1 {
		t.Fatalf("reopen lost entries: %d", r2.Len())
	}
	if got := r2.List()[0]; got.Version != 2 || got.ID != m1.ID {
		t.Fatalf("reopen meta: %+v", got)
	}
	// A fresh Put after reopen must not collide with the existing ID.
	m3, err := r2.Put(Meta{Workload: "tpcc", Fingerprint: fp(3)}, fakeModel("b"))
	if err != nil {
		t.Fatal(err)
	}
	if m3.ID == m1.ID {
		t.Fatalf("ID collision after reopen: %s", m3.ID)
	}
}

// TestCorruptEntrySkippedLoudly is the registry round-trip satellite:
// save N models, corrupt one on disk, verify lookup skips it loudly and
// nearest-fingerprint returns the right survivor.
func TestCorruptEntrySkippedLoudly(t *testing.T) {
	dir := t.TempDir()
	r := quietOpen(t, dir)
	ids := make([]string, 3)
	for i, v := range []float64{1, 5, 30} {
		m, err := r.Put(Meta{Workload: fmt.Sprintf("w%d", i), Fingerprint: fp(v)}, fakeModel(fmt.Sprint(i)))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = m.ID
	}

	// Corrupt the entry that *would* win a lookup near fp(1): flip bytes in
	// the middle of ids[0]'s file, leaving the length intact.
	victim := filepath.Join(dir, ids[0]+".model")
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	for i := len(data) / 2; i < len(data)/2+8; i++ {
		data[i] ^= 0xff
	}
	if err := os.WriteFile(victim, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// Lookup must skip the corrupt winner loudly and hand back the
	// next-nearest survivor (ids[1], fp(5) is closer to fp(1) than fp(30)).
	match, ok := r.Nearest(fp(1))
	if !ok {
		t.Fatal("no survivor returned")
	}
	if match.Meta.ID != ids[1] {
		t.Fatalf("nearest survivor = %s, want %s", match.Meta.ID, ids[1])
	}
	if string(match.Model) != string(fakeModel("1")) {
		t.Fatal("survivor model bytes wrong")
	}
	if len(r.Corrupt()) != 1 {
		t.Fatalf("corruption not recorded: %v", r.Corrupt())
	}
	if _, _, err := r.Get(ids[0]); err == nil {
		t.Fatal("Get of corrupt entry must error")
	}
	if r.Len() != 2 {
		t.Fatalf("corrupt entry still indexed: %d", r.Len())
	}

	// Reopen: the corrupt file is skipped at scan time too.
	r2 := quietOpen(t, dir)
	if r2.Len() != 2 || len(r2.Corrupt()) != 1 {
		t.Fatalf("reopen: %d entries, corrupt %v", r2.Len(), r2.Corrupt())
	}
	// A truncated file is rejected as loudly as a bit-flip.
	trunc := filepath.Join(dir, ids[1]+".model")
	data, _ = os.ReadFile(trunc)
	os.WriteFile(trunc, data[:len(data)-5], 0o644)
	r3 := quietOpen(t, dir)
	if r3.Len() != 1 || len(r3.Corrupt()) != 2 {
		t.Fatalf("truncation not caught: %d entries, corrupt %v", r3.Len(), r3.Corrupt())
	}
}

func TestNearestPrefersPinnedOnNearTie(t *testing.T) {
	r := quietOpen(t, t.TempDir())
	a, _ := r.Put(Meta{Workload: "a", Fingerprint: fp(2)}, fakeModel("a"))
	b, _ := r.Put(Meta{Workload: "b", Fingerprint: fp(2)}, fakeModel("b"))
	if err := r.Promote(b.ID); err != nil {
		t.Fatal(err)
	}
	match, ok := r.Nearest(fp(2))
	if !ok || match.Meta.ID != b.ID {
		t.Fatalf("pinned entry should win the tie, got %+v", match.Meta)
	}
	_ = a
	// Promote survives reopen and does not bump the version.
	if got := quietOpen(t, r.Dir()).List(); !pinnedByID(got, b.ID) {
		t.Fatalf("promotion lost on reopen: %+v", got)
	}
	if match.Meta.Version != 1 {
		t.Fatalf("promote bumped version: %d", match.Meta.Version)
	}
}

func pinnedByID(ms []Meta, id string) bool {
	for _, m := range ms {
		if m.ID == id {
			return m.Pinned
		}
	}
	return false
}

func TestEvictionSparesPinned(t *testing.T) {
	r := quietOpen(t, t.TempDir(), WithMaxEntries(2))
	a, _ := r.Put(Meta{Workload: "a", Fingerprint: fp(1)}, fakeModel("a"))
	if err := r.Promote(a.ID); err != nil {
		t.Fatal(err)
	}
	b, _ := r.Put(Meta{Workload: "b", Fingerprint: fp(2)}, fakeModel("b"))
	c, _ := r.Put(Meta{Workload: "c", Fingerprint: fp(3)}, fakeModel("c"))
	if r.Len() != 2 {
		t.Fatalf("eviction did not bound the collection: %d", r.Len())
	}
	if _, _, err := r.Get(b.ID); err == nil {
		t.Fatal("oldest unpinned entry should have been evicted")
	}
	for _, id := range []string{a.ID, c.ID} {
		if _, _, err := r.Get(id); err != nil {
			t.Fatalf("%s should have survived: %v", id, err)
		}
	}
	if _, err := os.Stat(filepath.Join(r.Dir(), b.ID+".model")); !os.IsNotExist(err) {
		t.Fatal("evicted entry file still on disk")
	}
}

func TestDelete(t *testing.T) {
	r := quietOpen(t, t.TempDir())
	m, _ := r.Put(Meta{Workload: "a", Fingerprint: fp(1)}, fakeModel("a"))
	if err := r.Delete(m.ID); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 0 {
		t.Fatal("delete left the entry indexed")
	}
	if err := r.Delete(m.ID); err == nil {
		t.Fatal("double delete must error")
	}
	if _, ok := r.Nearest(fp(1)); ok {
		t.Fatal("empty registry must report no match")
	}
}

func TestPutValidation(t *testing.T) {
	r := quietOpen(t, t.TempDir())
	if _, err := r.Put(Meta{Fingerprint: fp(1)}, nil); err == nil {
		t.Fatal("empty model must be rejected")
	}
	if _, err := r.Put(Meta{}, fakeModel("x")); err == nil {
		t.Fatal("missing fingerprint must be rejected")
	}
}

func TestNearestWithinRadius(t *testing.T) {
	r := quietOpen(t, t.TempDir())
	a, err := r.Put(Meta{Workload: "a", Fingerprint: fp(0.2)}, fakeModel("a"))
	if err != nil {
		t.Fatal(err)
	}
	// Exact fingerprint: inside any radius.
	if m, ok := r.NearestWithin(fp(0.2), 0.05); !ok || m.Meta.ID != a.ID {
		t.Fatalf("NearestWithin exact = %v/%v, want %s", m.Meta.ID, ok, a.ID)
	}
	// A distant query must be rejected by a tight radius but pass
	// unrestricted.
	far := fp(50)
	if _, ok := r.NearestWithin(far, 0.05); ok {
		t.Fatal("NearestWithin matched beyond its radius")
	}
	if m, ok := r.NearestWithin(far, 0); !ok || m.Meta.ID != a.ID {
		t.Fatalf("unrestricted NearestWithin = %v/%v, want %s", m.Meta.ID, ok, a.ID)
	}
	// Empty registry: never a match.
	r2 := quietOpen(t, t.TempDir())
	if _, ok := r2.NearestWithin(fp(0.2), 0); ok {
		t.Fatal("NearestWithin matched in an empty registry")
	}
}
