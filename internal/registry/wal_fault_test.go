package registry

import (
	"errors"
	"testing"

	"cdbtune/internal/vfs"
)

// A short write mid-frame (full disk) must come back as the typed,
// retryable ErrShortAppend with the torn bytes already reclaimed: the
// caller retries the same record and readers never see damage.
func TestChangeLogShortAppendTyped(t *testing.T) {
	fs := vfs.NewFaultFS()
	if err := vfs.MkdirAllDurable(fs, "/d", 0o755); err != nil {
		t.Fatal(err)
	}
	log, err := OpenChangeLogFS(fs, "/d/x.wal")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := log.Append(Change{Op: OpPut, ID: "a", Version: 1}); err != nil {
		t.Fatal(err)
	}

	fs.AddFault(vfs.Fault{Kind: "write", PathContains: "x.wal", Err: vfs.ErrNoSpace, Partial: 7})
	_, err = log.Append(Change{Op: OpPut, ID: "b", Version: 1})
	if err == nil {
		t.Fatal("append through an ENOSPC short write unexpectedly succeeded")
	}
	if !errors.Is(err, ErrShortAppend) {
		t.Fatalf("error not typed as ErrShortAppend: %v", err)
	}
	if !vfs.Retryable(err) {
		t.Fatalf("short append not retryable: %v", err)
	}

	// The condition cleared (the fault was one-shot): the same record
	// retries cleanly with the next sequence number.
	ch, err := log.Append(Change{Op: OpPut, ID: "b", Version: 1})
	if err != nil {
		t.Fatalf("retry after short append: %v", err)
	}
	if ch.Seq != 2 {
		t.Fatalf("retry got seq %d, want 2 (failed append must not consume a sequence number)", ch.Seq)
	}

	fresh, err := OpenChangeLogFS(fs, "/d/x.wal")
	if err != nil {
		t.Fatal(err)
	}
	recs, err := fresh.Tail()
	if err != nil {
		t.Fatalf("replay after reclaimed short append: %v", err)
	}
	if len(recs) != 2 || recs[0].ID != "a" || recs[1].ID != "b" {
		t.Fatalf("replay = %+v, want exactly records a, b", recs)
	}
}

// A sync failure after a complete frame write is just as torn from the
// caller's perspective: typed, retryable, truncated back.
func TestChangeLogSyncFailureTyped(t *testing.T) {
	fs := vfs.NewFaultFS()
	if err := vfs.MkdirAllDurable(fs, "/d", 0o755); err != nil {
		t.Fatal(err)
	}
	log, err := OpenChangeLogFS(fs, "/d/y.wal")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := log.Append(Change{Op: OpPut, ID: "a", Version: 1}); err != nil {
		t.Fatal(err)
	}

	// Skip the WriteAt (first matching mutating op is the frame write —
	// target the sync instead).
	fs.AddFault(vfs.Fault{Kind: "sync", PathContains: "y.wal", Err: vfs.ErrIO})
	_, err = log.Append(Change{Op: OpPut, ID: "b", Version: 1})
	if err == nil {
		t.Fatal("append through an EIO sync unexpectedly succeeded")
	}
	if !errors.Is(err, ErrShortAppend) || !vfs.Retryable(err) {
		t.Fatalf("sync failure not typed/retryable: %v", err)
	}
	if _, err := log.Append(Change{Op: OpPut, ID: "b", Version: 1}); err != nil {
		t.Fatalf("retry after sync failure: %v", err)
	}
	fresh, err := OpenChangeLogFS(fs, "/d/y.wal")
	if err != nil {
		t.Fatal(err)
	}
	recs, err := fresh.Tail()
	if err != nil || len(recs) != 2 {
		t.Fatalf("replay = %d records (err %v), want 2", len(recs), err)
	}
}
