package bestconfig

import (
	"math/rand"

	"cdbtune/internal/env"
	"cdbtune/internal/metrics"
)

// Config controls the search.
type Config struct {
	// Budget is the total number of evaluations (the paper gives
	// BestConfig 50 steps).
	Budget int
	// RoundSamples is the number of DDS samples per round before the
	// space is re-bounded around the incumbent.
	RoundSamples int
	// Shrink is the factor by which RBS narrows the search box around the
	// incumbent after each round.
	Shrink float64
	Seed   int64
}

// DefaultConfig mirrors the paper's experimental setup.
func DefaultConfig() Config {
	return Config{Budget: 50, RoundSamples: 10, Shrink: 0.5, Seed: 1}
}

// Result is the outcome of one search.
type Result struct {
	Best     []float64
	BestPerf metrics.External
	// History holds the performance of every evaluated sample in order.
	History []metrics.External
	// Crashes counts evaluations that crashed the instance.
	Crashes int
}

// score is the scalarized objective: throughput per unit latency keeps the
// search honest on both externals.
func score(ext metrics.External) float64 {
	if ext.Latency99 <= 0 {
		return 0
	}
	return ext.Throughput / ext.Latency99
}

// Tune runs DDS+RBS on the environment within cfg.Budget evaluations.
func Tune(e *env.Env, cfg Config) (Result, error) {
	if cfg.Budget <= 0 {
		cfg = DefaultConfig()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	dim := e.Dim()

	lo := make([]float64, dim)
	hi := make([]float64, dim)
	for i := range hi {
		hi[i] = 1
	}

	var res Result
	best := e.Default()
	bestScore := -1.0
	evals := 0

	for evals < cfg.Budget {
		n := cfg.RoundSamples
		if evals+n > cfg.Budget {
			n = cfg.Budget - evals
		}
		// DDS: divide each dimension into n intervals and take one sample
		// per interval with a random permutation per dimension (a Latin
		// hypercube over the current bounds).
		perms := make([][]int, dim)
		for d := 0; d < dim; d++ {
			perms[d] = rng.Perm(n)
		}
		roundBestScore := -1.0
		var roundBest []float64
		for s := 0; s < n; s++ {
			x := make([]float64, dim)
			for d := 0; d < dim; d++ {
				cell := float64(perms[d][s])
				x[d] = lo[d] + (hi[d]-lo[d])*(cell+rng.Float64())/float64(n)
			}
			out, err := e.Step(x)
			evals++
			if err != nil {
				res.Crashes++
				res.History = append(res.History, metrics.External{})
				continue
			}
			res.History = append(res.History, out.Ext)
			if sc := score(out.Ext); sc > roundBestScore {
				roundBestScore = sc
				roundBest = x
			}
		}
		if roundBestScore > bestScore {
			bestScore = roundBestScore
			best = roundBest
		}
		// RBS: bound the next round's space around the incumbent.
		if best != nil {
			for d := 0; d < dim; d++ {
				half := (hi[d] - lo[d]) * cfg.Shrink / 2
				c := best[d]
				lo[d] = clamp01(c - half)
				hi[d] = clamp01(c + half)
				if hi[d]-lo[d] < 1e-3 {
					lo[d] = clamp01(c - 5e-4)
					hi[d] = clamp01(c + 5e-4)
				}
			}
		}
	}

	// Deploy the incumbent and report its measured performance.
	out, err := e.Step(best)
	if err != nil {
		// The incumbent was measured successfully during search; a crash
		// here means noise pushed it over a cliff — fall back to defaults.
		out, err = e.Step(e.Default())
		if err != nil {
			return res, err
		}
	}
	res.Best = best
	res.BestPerf = out.Ext
	return res, nil
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
