// Package bestconfig implements the BestConfig baseline [55]: the
// divide-and-diverge sampling (DDS) plus recursive-bound-and-search (RBS)
// strategy. BestConfig keeps no model across requests — every tuning
// request restarts the search from scratch, which is exactly the
// limitation §5.1.2 measures (50 steps ≈ 250 minutes per request).
package bestconfig
