package bestconfig

import (
	"testing"

	"cdbtune/internal/env"
	"cdbtune/internal/knobs"
	"cdbtune/internal/metrics"
	"cdbtune/internal/simdb"
	"cdbtune/internal/workload"
)

func newEnv(t *testing.T, seed int64) *env.Env {
	t.Helper()
	db := simdb.New(knobs.EngineCDB, simdb.CDBA, seed)
	return env.New(db, db.Catalog(), workload.SysbenchRW())
}

func TestTuneImprovesOverDefault(t *testing.T) {
	e := newEnv(t, 1)
	base, err := e.Measure()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Tune(e, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.BestPerf.Throughput <= base.Ext.Throughput {
		t.Fatalf("BestConfig found nothing better than default: %v vs %v",
			res.BestPerf.Throughput, base.Ext.Throughput)
	}
	if len(res.Best) != e.Dim() {
		t.Fatalf("best config dim %d", len(res.Best))
	}
}

func TestBudgetRespected(t *testing.T) {
	e := newEnv(t, 2)
	cfg := DefaultConfig()
	cfg.Budget = 20
	if _, err := Tune(e, cfg); err != nil {
		t.Fatal(err)
	}
	// Budget evaluations + 1 final incumbent deployment.
	if e.Steps() > cfg.Budget+2 {
		t.Fatalf("used %d steps with budget %d", e.Steps(), cfg.Budget)
	}
}

func TestHistoryLength(t *testing.T) {
	e := newEnv(t, 3)
	cfg := DefaultConfig()
	cfg.Budget = 15
	res, err := Tune(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != 15 {
		t.Fatalf("history has %d entries, want 15", len(res.History))
	}
}

func TestNoMemoryAcrossRequests(t *testing.T) {
	// Two identical requests search from scratch: same seed → identical
	// first-round behaviour (the §6 "searches twice" critique).
	e1, e2 := newEnv(t, 4), newEnv(t, 4)
	cfg := DefaultConfig()
	cfg.Budget = 10
	r1, err := Tune(e1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Tune(e2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Best {
		if r1.Best[i] != r2.Best[i] {
			t.Fatal("same request should reproduce the same search")
		}
	}
}

func TestZeroBudgetGetsDefaults(t *testing.T) {
	e := newEnv(t, 5)
	res, err := Tune(e, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestPerf.Throughput <= 0 {
		t.Fatal("default config fallback broken")
	}
}

func TestCrashesAreSurvived(t *testing.T) {
	// A full-space random search over 266 knobs hits crash zones (huge
	// logs, memory over-subscription); the search must skip them and still
	// return a working configuration.
	e := newEnv(t, 6)
	res, err := Tune(e, Config{Budget: 30, RoundSamples: 10, Shrink: 0.5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestPerf.Throughput <= 0 {
		t.Fatal("no working configuration found")
	}
	t.Logf("crashes survived: %d", res.Crashes)
}

func TestShrinkBoundsStayValid(t *testing.T) {
	// Many rounds of RBS shrinking must keep [lo, hi] a valid sub-box of
	// [0, 1] (regression guard for the epsilon floor).
	e := newEnv(t, 9)
	cfg := Config{Budget: 40, RoundSamples: 4, Shrink: 0.3, Seed: 1}
	res, err := Tune(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.Best {
		if v < 0 || v > 1 {
			t.Fatalf("best[%d] = %v outside [0,1]", i, v)
		}
	}
}

func TestScoreFunction(t *testing.T) {
	ext := func(tp, l float64) metrics.External {
		return metrics.External{Throughput: tp, Latency99: l}
	}
	if score(ext(0, 0)) != 0 {
		t.Fatal("zero latency must not divide by zero")
	}
	a := score(ext(100, 10))
	b := score(ext(100, 20))
	if a <= b {
		t.Fatal("lower latency must score higher at equal throughput")
	}
	c := score(ext(200, 10))
	if c <= a {
		t.Fatal("higher throughput must score higher at equal latency")
	}
}
