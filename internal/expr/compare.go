package expr

import (
	"fmt"

	"cdbtune/internal/bestconfig"
	"cdbtune/internal/core"
	"cdbtune/internal/dba"
	"cdbtune/internal/knobs"
	"cdbtune/internal/metrics"
	"cdbtune/internal/ottertune"
	"cdbtune/internal/simdb"
	"cdbtune/internal/workload"
)

// sixWay runs the paper's standard comparison (Figures 9, 16, 17, 18):
// engine defaults, CDB defaults, BestConfig, DBA, OtterTune and CDBTune on
// one workload/instance, returning (throughput, latency99) per tuner.
type sixWayResult struct {
	Names []string
	Perf  []metrics.External
}

func runSixWay(b Budget, engine knobs.Engine, inst simdb.Instance, w workload.Workload, tuner *core.Tuner, repo *ottertune.Repository, seed int64) (sixWayResult, error) {
	var out sixWayResult
	add := func(name string, p metrics.External) {
		out.Names = append(out.Names, name)
		out.Perf = append(out.Perf, p)
	}
	cat := tuner.Config().Cat

	// Engine defaults.
	e := newEnv(engine, inst, cat, w, seed)
	base, err := e.Measure()
	if err != nil {
		return out, err
	}
	add(engine.String()+" default", base.Ext)

	// CDB shipped defaults.
	e = newEnv(engine, inst, cat, w, seed+1)
	res, err := e.Step(cdbDefault(e))
	if err != nil {
		return out, err
	}
	add("CDB default", res.Ext)

	// BestConfig.
	e = newEnv(engine, inst, cat, w, seed+2)
	bcfg := bestconfig.DefaultConfig()
	bcfg.Budget = b.BestConfigSteps
	bcfg.Seed = seed
	bres, err := bestconfig.Tune(e, bcfg)
	if err != nil {
		return out, err
	}
	add("BestConfig", bres.BestPerf)

	// DBA.
	e = newEnv(engine, inst, cat, w, seed+3)
	_, dperf, err := dba.Tune(e)
	if err != nil {
		return out, err
	}
	add("DBA", dperf)

	// OtterTune.
	e = newEnv(engine, inst, cat, w, seed+4)
	ocfg := ottertune.DefaultConfig()
	ocfg.Steps = b.OtterTuneSteps
	ocfg.Seed = seed
	ores, err := ottertune.Tune(e, repo, ocfg)
	if err != nil {
		return out, err
	}
	add("OtterTune", ores.BestPerf)

	// CDBTune: the 5-step online protocol with fine-tuning.
	e = newEnv(engine, inst, cat, w, seed+5)
	tres, err := tuner.OnlineTune(e, b.OnlineSteps, true)
	if err != nil {
		return out, err
	}
	add("CDBTune", tres.BestPerf)
	return out, nil
}

// fig9Cache memoizes Fig9 runs per budget: the experiment is
// deterministic in (budget name, seed), and Table 3 is derived from the
// same data.
var fig9Cache = map[string][]Table{}

// Fig9 reproduces Figure 9: throughput and 99th-percentile latency for
// Sysbench RW, RO and WO on CDB-A across the six settings.
func Fig9(b Budget) ([]Table, error) {
	key := fmt.Sprintf("%s/%d/%d", b.Name, b.Seed, b.Episodes)
	if cached, ok := fig9Cache[key]; ok {
		return cached, nil
	}
	tables, err := fig9Run(b)
	if err == nil {
		fig9Cache[key] = tables
	}
	return tables, err
}

func fig9Run(b Budget) ([]Table, error) {
	cat := knobs.MySQL(knobs.EngineCDB)
	ws := []workload.Workload{workload.SysbenchRW(), workload.SysbenchRO(), workload.SysbenchWO()}
	repo, err := buildRepo(b, knobs.EngineCDB, simdb.CDBA, cat, ws, b.Seed+500)
	if err != nil {
		return nil, err
	}
	var tables []Table
	for wi, w := range ws {
		tuner, _, err := trainTuner(b, knobs.EngineCDB, simdb.CDBA, cat, []workload.Workload{w}, b.Seed+int64(wi*100))
		if err != nil {
			return nil, err
		}
		six, err := runSixWay(b, knobs.EngineCDB, simdb.CDBA, w, tuner, repo, b.Seed+int64(wi*100)+50)
		if err != nil {
			return nil, err
		}
		t := Table{
			Title:  fmt.Sprintf("Figure 9 (%s on CDB-A)", w.Name),
			Header: []string{"tuner", "throughput (txn/sec)", "99th %-tile latency (ms)"},
		}
		for i, n := range six.Names {
			t.Rows = append(t.Rows, []string{n, fmtF(six.Perf[i].Throughput), fmtF(six.Perf[i].Latency99)})
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// Table3 reproduces Table 3: CDBTune's throughput gain and latency
// reduction relative to BestConfig, DBA and OtterTune for Sysbench RW, RO
// and WO. It reuses the Figure 9 runs.
func Table3(b Budget) (Table, error) {
	tables, err := Fig9(b)
	if err != nil {
		return Table{}, err
	}
	out := Table{
		Title: "Table 3: CDBTune improvement over BestConfig / DBA / OtterTune",
		Header: []string{"workload",
			"T vs BestConfig", "L vs BestConfig",
			"T vs DBA", "L vs DBA",
			"T vs OtterTune", "L vs OtterTune"},
	}
	parse := func(t Table, tuner string) (tp, lat float64) {
		for _, row := range t.Rows {
			if row[0] == tuner {
				fmt.Sscanf(row[1], "%f", &tp)
				fmt.Sscanf(row[2], "%f", &lat)
			}
		}
		return tp, lat
	}
	names := []string{"rw", "ro", "wo"}
	for i, t := range tables {
		ct, cl := parse(t, "CDBTune")
		row := []string{names[i]}
		for _, other := range []string{"BestConfig", "DBA", "OtterTune"} {
			ot, ol := parse(t, other)
			row = append(row, fmtPct(ct/ot-1), fmtPct(1-cl/ol))
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Fig16to18 reproduces Appendix C.3: the six-way comparison on MongoDB
// (YCSB, CDB-E), Postgres (TPC-C, CDB-D) and local MySQL (TPC-C, CDB-C).
func Fig16to18(b Budget) ([]Table, error) {
	cases := []struct {
		title  string
		engine knobs.Engine
		inst   simdb.Instance
		w      workload.Workload
	}{
		{"Figure 16: YCSB on MongoDB (CDB-E, 232 knobs)", knobs.EngineMongoDB, simdb.CDBE, workload.YCSB()},
		{"Figure 17: TPC-C on Postgres (CDB-D, 169 knobs)", knobs.EnginePostgres, simdb.CDBD, workload.TPCC()},
		{"Figure 18: TPC-C on local MySQL (CDB-C)", knobs.EngineLocalMySQL, simdb.CDBC, workload.TPCC()},
	}
	var tables []Table
	for ci, c := range cases {
		cat := knobs.ForEngine(c.engine)
		seed := b.Seed + int64(2000+ci*100)
		repo, err := buildRepo(b, c.engine, c.inst, cat, []workload.Workload{c.w}, seed)
		if err != nil {
			return nil, err
		}
		tuner, _, err := trainTuner(b, c.engine, c.inst, cat, []workload.Workload{c.w}, seed+10)
		if err != nil {
			return nil, err
		}
		six, err := runSixWay(b, c.engine, c.inst, c.w, tuner, repo, seed+60)
		if err != nil {
			return nil, err
		}
		t := Table{Title: c.title, Header: []string{"tuner", "throughput", "latency99 (ms)"}}
		for i, n := range six.Names {
			t.Rows = append(t.Rows, []string{n, fmtF(six.Perf[i].Throughput), fmtF(six.Perf[i].Latency99)})
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// Table2 reproduces Table 2: steps and wall-clock time per online tuning
// request for each tool, measured on the virtual clock.
func Table2(b Budget) (Table, error) {
	cat := knobs.MySQL(knobs.EngineCDB)
	w := workload.SysbenchRW()
	out := Table{
		Title:  "Table 2: online tuning steps and time per request",
		Header: []string{"tuning tool", "total steps", "total time (min)"},
	}

	// CDBTune: 5 recommendation steps with a pre-trained model.
	tuner, _, err := trainTuner(b, knobs.EngineCDB, simdb.CDBA, cat, []workload.Workload{w}, b.Seed+3000)
	if err != nil {
		return out, err
	}
	e := newEnv(knobs.EngineCDB, simdb.CDBA, cat, w, b.Seed+3050)
	tres, err := tuner.OnlineTune(e, b.OnlineSteps, true)
	if err != nil {
		return out, err
	}
	out.Rows = append(out.Rows, []string{"CDBTune", fmt.Sprintf("%d", b.OnlineSteps), fmtF(tres.Seconds / 60)})

	// OtterTune: trains/fits per request, 11 steps.
	repo, err := buildRepo(b, knobs.EngineCDB, simdb.CDBA, cat, []workload.Workload{w}, b.Seed+3100)
	if err != nil {
		return out, err
	}
	e = newEnv(knobs.EngineCDB, simdb.CDBA, cat, w, b.Seed+3150)
	ocfg := ottertune.DefaultConfig()
	ocfg.Steps = b.OtterTuneSteps
	if _, err := ottertune.Tune(e, repo, ocfg); err != nil {
		return out, err
	}
	out.Rows = append(out.Rows, []string{"OtterTune", fmt.Sprintf("%d", b.OtterTuneSteps), fmtF(e.Clock.Minutes())})

	// BestConfig: 50-step search from scratch.
	e = newEnv(knobs.EngineCDB, simdb.CDBA, cat, w, b.Seed+3200)
	bcfg := bestconfig.DefaultConfig()
	bcfg.Budget = b.BestConfigSteps
	if _, err := bestconfig.Tune(e, bcfg); err != nil {
		return out, err
	}
	out.Rows = append(out.Rows, []string{"BestConfig", fmt.Sprintf("%d", b.BestConfigSteps), fmtF(e.Clock.Minutes())})

	// DBA: one expert pass, 8.6 hours.
	e = newEnv(knobs.EngineCDB, simdb.CDBA, cat, w, b.Seed+3300)
	if _, _, err := dba.Tune(e); err != nil {
		return out, err
	}
	out.Rows = append(out.Rows, []string{"DBA", "1", fmtF(e.Clock.Minutes())})
	return out, nil
}
