package expr

import (
	"fmt"

	"cdbtune/internal/knobs"
	"cdbtune/internal/simdb"
	"cdbtune/internal/workload"
)

// Findings reproduces the §5.2.3 narrative quantitatively: what CDBTune
// does to the headline knobs per workload class — enlarging the buffer
// pool everywhere, expanding the redo log under writes, raising read IO
// threads under RO and write/purge threads under WO/RW — compared with
// the MySQL defaults.
func Findings(b Budget) (Table, error) {
	cat := knobs.MySQL(knobs.EngineCDB)
	watch := []string{
		"innodb_buffer_pool_size", "innodb_log_file_size",
		"innodb_read_io_threads", "innodb_write_io_threads",
		"innodb_purge_threads", "innodb_flush_log_at_trx_commit",
	}
	t := Table{
		Title:  "§5.2.3 findings: recommended values of headline knobs per workload (CDB-A)",
		Header: append([]string{"workload"}, watch...),
	}
	hw := simdb.CDBA.HW
	def := cat.Defaults(hw.RAMGB, hw.DiskGB)
	defRow := []string{"(defaults)"}
	for _, name := range watch {
		i := cat.Index(name)
		defRow = append(defRow, fmt.Sprintf("%.0f", cat.Knobs[i].Value(def[i], hw.RAMGB, hw.DiskGB)))
	}
	t.Rows = append(t.Rows, defRow)

	for wi, w := range []workload.Workload{workload.SysbenchRO(), workload.SysbenchWO(), workload.SysbenchRW()} {
		seed := b.Seed + int64(14000+wi*29)
		tuner, _, err := trainTuner(b, knobs.EngineCDB, simdb.CDBA, cat, []workload.Workload{w}, seed)
		if err != nil {
			return t, err
		}
		e := newEnv(knobs.EngineCDB, simdb.CDBA, cat, w, seed+90)
		res, err := tuner.OnlineTune(e, b.OnlineSteps, true)
		if err != nil {
			return t, err
		}
		row := []string{w.Name}
		for _, name := range watch {
			i := cat.Index(name)
			row = append(row, fmt.Sprintf("%.0f", cat.Knobs[i].Value(res.Best[i], hw.RAMGB, hw.DiskGB)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// ExtYCSBVariants is an extension experiment beyond the paper: one model
// tuned per YCSB core variant (B-F) on MongoDB, demonstrating the library
// on the full YCSB suite the paper's YCSB-A setup belongs to.
func ExtYCSBVariants(b Budget) (Table, error) {
	t := Table{
		Title:  "Extension: CDBTune across YCSB core variants (MongoDB, CDB-E)",
		Header: []string{"variant", "default T", "tuned T", "gain", "tuned L99 (ms)"},
	}
	cat := knobs.MongoDB()
	for vi, w := range workload.YCSBVariants() {
		seed := b.Seed + int64(15000+vi*31)
		e := newEnv(knobs.EngineMongoDB, simdb.CDBE, cat, w, seed)
		base, err := e.Measure()
		if err != nil {
			return t, err
		}
		tuner, _, err := trainTuner(b, knobs.EngineMongoDB, simdb.CDBE, cat, []workload.Workload{w}, seed+10)
		if err != nil {
			return t, err
		}
		e2 := newEnv(knobs.EngineMongoDB, simdb.CDBE, cat, w, seed+90)
		res, err := tuner.OnlineTune(e2, b.OnlineSteps, true)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{
			w.Name, fmtF(base.Ext.Throughput), fmtF(res.BestPerf.Throughput),
			fmtPct(res.BestPerf.Throughput/base.Ext.Throughput - 1),
			fmtF(res.BestPerf.Latency99),
		})
	}
	return t, nil
}
