package expr

import (
	"fmt"
	"strings"
)

// Series is one named line of an experiment figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Table is one experiment table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Figure is a set of series with axis labels.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Render formats a table as aligned text.
func (t Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&b, "%-*s  ", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// Render formats a figure's series as aligned columns of (x, y) pairs.
func (f Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", f.Title)
	fmt.Fprintf(&b, "   x = %s, y = %s\n", f.XLabel, f.YLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "-- %s\n", s.Name)
		for i := range s.X {
			fmt.Fprintf(&b, "   %12.3f  %12.3f\n", s.X[i], s.Y[i])
		}
	}
	return b.String()
}

// Budget scales the compute an experiment spends. Quick keeps every
// experiment runnable on one laptop core in seconds-to-minutes; Full uses
// the paper-faithful Table 5 architecture and longer training.
type Budget struct {
	Name string

	// Training budget for CDBTune models.
	Episodes        int
	StepsPerEpisode int
	UpdatesPerStep  int
	ActorHidden     []int
	CriticHidden    []int

	// Baseline budgets.
	RepoSamples     int // OtterTune repository size per workload
	OtterTuneSteps  int
	BestConfigSteps int

	// OnlineSteps is the per-request recommendation budget (paper: 5).
	OnlineSteps int

	Seed int64
}

// Quick is the default experiment budget: reduced episode counts and
// narrower networks so the whole suite completes on a single core.
func Quick() Budget {
	return Budget{
		Name:            "quick",
		Episodes:        40,
		StepsPerEpisode: 20,
		UpdatesPerStep:  2,
		ActorHidden:     []int{64, 64},
		CriticHidden:    []int{128, 64},
		RepoSamples:     60,
		OtterTuneSteps:  11,
		BestConfigSteps: 50,
		OnlineSteps:     5,
		Seed:            1,
	}
}

// Full is the paper-faithful budget: Table 5 networks and longer training.
func Full() Budget {
	return Budget{
		Name:            "full",
		Episodes:        60,
		StepsPerEpisode: 20,
		UpdatesPerStep:  3,
		ActorHidden:     []int{128, 128, 128, 64},
		CriticHidden:    []int{256, 256, 256, 64},
		RepoSamples:     150,
		OtterTuneSteps:  11,
		BestConfigSteps: 50,
		OnlineSteps:     5,
		Seed:            1,
	}
}
