package expr

import (
	"strings"
	"testing"
)

// micro is the smallest budget that still exercises every code path; the
// suite must stay unit-test fast on one core.
func micro() Budget {
	return Budget{
		Name:            "micro",
		Episodes:        3,
		StepsPerEpisode: 6,
		UpdatesPerStep:  1,
		ActorHidden:     []int{24, 24},
		CriticHidden:    []int{32, 24},
		RepoSamples:     10,
		OtterTuneSteps:  2,
		BestConfigSteps: 6,
		OnlineSteps:     2,
		Seed:            1,
	}
}

func TestBudgets(t *testing.T) {
	q, f := Quick(), Full()
	if q.Episodes >= f.Episodes {
		t.Fatal("quick budget should train less than full")
	}
	if len(f.ActorHidden) != 4 || f.ActorHidden[0] != 128 {
		t.Fatal("full budget must use the Table 5 actor")
	}
}

func TestTableRender(t *testing.T) {
	tb := Table{Title: "t", Header: []string{"a", "bb"}, Rows: [][]string{{"1", "2"}}}
	out := tb.Render()
	if !strings.Contains(out, "== t ==") || !strings.Contains(out, "bb") {
		t.Fatalf("Render output:\n%s", out)
	}
}

func TestFigureRender(t *testing.T) {
	f := Figure{Title: "f", XLabel: "x", YLabel: "y", Series: []Series{{Name: "s", X: []float64{1}, Y: []float64{2}}}}
	out := f.Render()
	if !strings.Contains(out, "== f ==") || !strings.Contains(out, "-- s") {
		t.Fatalf("Render output:\n%s", out)
	}
}

func TestFig1C(t *testing.T) {
	tb := Fig1C()
	if len(tb.Rows) != 7 {
		t.Fatalf("Fig1C rows = %d, want 7 versions", len(tb.Rows))
	}
}

func TestFig1D(t *testing.T) {
	tb, err := Fig1D(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 || len(tb.Rows[0]) != 6 {
		t.Fatalf("Fig1D grid shape %dx%d", len(tb.Rows), len(tb.Rows[0]))
	}
	// The surface must be non-constant (Figure 1d's point).
	vals := map[string]bool{}
	for _, row := range tb.Rows {
		for _, c := range row[1:] {
			vals[c] = true
		}
	}
	if len(vals) < 5 {
		t.Fatalf("surface nearly constant: %d distinct cells", len(vals))
	}
}

func TestTable1(t *testing.T) {
	tb := Table1()
	if len(tb.Rows) != 7 { // 5 fixed + X1 + X2
		t.Fatalf("Table1 rows = %d", len(tb.Rows))
	}
}

func TestTiming(t *testing.T) {
	tb := Timing()
	if len(tb.Rows) != 6 {
		t.Fatalf("Timing rows = %d", len(tb.Rows))
	}
}

func TestFig1ABMicro(t *testing.T) {
	figs, err := Fig1AB(micro(), []int{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 2 {
		t.Fatalf("Fig1AB figures = %d", len(figs))
	}
	for _, f := range figs {
		if len(f.Series) != 4 {
			t.Fatalf("%s: series = %d, want 4", f.Title, len(f.Series))
		}
		for _, s := range f.Series {
			if len(s.X) != 2 {
				t.Fatalf("%s/%s: points = %d", f.Title, s.Name, len(s.X))
			}
		}
	}
}

func TestTable2Micro(t *testing.T) {
	tb, err := Table2(micro())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("Table2 rows = %d, want 4 tools", len(tb.Rows))
	}
	// DBA must be by far the slowest (8.6 h); CDBTune the fastest protocol.
	if tb.Rows[0][0] != "CDBTune" || tb.Rows[3][0] != "DBA" {
		t.Fatalf("unexpected tool order: %v", tb.Rows)
	}
}

func TestFig9AndTable3Micro(t *testing.T) {
	tables, err := Fig9(micro())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 3 {
		t.Fatalf("Fig9 tables = %d", len(tables))
	}
	for _, tb := range tables {
		if len(tb.Rows) != 6 {
			t.Fatalf("%s: rows = %d, want 6 tuners", tb.Title, len(tb.Rows))
		}
	}
	t3, err := Table3(micro())
	if err != nil {
		t.Fatal(err)
	}
	if len(t3.Rows) != 3 || len(t3.Header) != 7 {
		t.Fatalf("Table3 shape %dx%d", len(t3.Rows), len(t3.Header))
	}
}

func TestKnobSweepMicro(t *testing.T) {
	tput, lat, iters, err := KnobSweep(micro(), OrderDBA, []int{5, 15})
	if err != nil {
		t.Fatal(err)
	}
	if len(tput.Series) != 3 || len(lat.Series) != 3 {
		t.Fatalf("Fig6 series: %d tput, %d lat", len(tput.Series), len(lat.Series))
	}
	if len(iters.Series[0].X) != 2 {
		t.Fatal("iterations series wrong length")
	}
	// Random order (Figure 8) only tracks CDBTune.
	tput8, _, _, err := KnobSweep(micro(), OrderRandom, []int{5, 15})
	if err != nil {
		t.Fatal(err)
	}
	if len(tput8.Series) != 1 {
		t.Fatalf("Fig8 series = %d, want 1", len(tput8.Series))
	}
}

func TestFig5Micro(t *testing.T) {
	figs, err := Fig5(micro(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 6 { // 3 workloads × (throughput, latency)
		t.Fatalf("Fig5 figures = %d", len(figs))
	}
}

func TestFig10to12Micro(t *testing.T) {
	t10, err := Fig10(micro(), []float64{4})
	if err != nil {
		t.Fatal(err)
	}
	if len(t10) != 1 || len(t10[0].Rows) != 5 {
		t.Fatalf("Fig10 shape: %d tables, %d rows", len(t10), len(t10[0].Rows))
	}
	t11, err := Fig11(micro(), []float64{512})
	if err != nil {
		t.Fatal(err)
	}
	if len(t11) != 1 {
		t.Fatalf("Fig11 tables = %d", len(t11))
	}
	t12, err := Fig12(micro())
	if err != nil {
		t.Fatal(err)
	}
	if len(t12.Rows) != 5 {
		t.Fatalf("Fig12 rows = %d", len(t12.Rows))
	}
}

func TestFig14Micro(t *testing.T) {
	tables, err := Fig14(micro())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 3 {
		t.Fatalf("Fig14 tables = %d", len(tables))
	}
	for _, tb := range tables {
		if len(tb.Rows) != 4 {
			t.Fatalf("%s: rows = %d, want 4 reward functions", tb.Title, len(tb.Rows))
		}
	}
}

func TestFig15Micro(t *testing.T) {
	fig, err := Fig15(micro(), []float64{0.3, 0.5, 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 || len(fig.Series[0].X) != 3 {
		t.Fatalf("Fig15 shape wrong")
	}
	// The CT=0.5 point is the baseline: ratio exactly 1.
	for _, s := range fig.Series {
		if s.Y[1] != 1 {
			t.Fatalf("baseline ratio = %v, want 1", s.Y[1])
		}
	}
}

func TestTable6Micro(t *testing.T) {
	tb, err := Table6(micro(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 8 {
		t.Fatalf("Table6 rows = %d, want 8 architectures", len(tb.Rows))
	}
}

func TestFig16to18Micro(t *testing.T) {
	tables, err := Fig16to18(micro())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 3 {
		t.Fatalf("Fig16to18 tables = %d", len(tables))
	}
}

func TestQLearnDQNMicro(t *testing.T) {
	tb, err := QLearnDQN(micro(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("QLearnDQN rows = %d", len(tb.Rows))
	}
	if !strings.Contains(tb.Rows[3][1], "10^") {
		t.Fatalf("blow-up row missing: %v", tb.Rows[3])
	}
}

func TestAblationsMicro(t *testing.T) {
	rt, err := AblationReplay(micro())
	if err != nil {
		t.Fatal(err)
	}
	if len(rt.Rows) != 2 {
		t.Fatalf("AblationReplay rows = %d", len(rt.Rows))
	}
	at, err := AblationAction(micro())
	if err != nil {
		t.Fatal(err)
	}
	if len(at.Rows) != 2 {
		t.Fatalf("AblationAction rows = %d", len(at.Rows))
	}
}

func TestFindingsMicro(t *testing.T) {
	tb, err := Findings(micro())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 { // defaults + 3 workloads
		t.Fatalf("Findings rows = %d", len(tb.Rows))
	}
	if len(tb.Header) != 7 {
		t.Fatalf("Findings header = %d", len(tb.Header))
	}
}

func TestExtYCSBVariantsMicro(t *testing.T) {
	tb, err := ExtYCSBVariants(micro())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("variants rows = %d, want 5 (B-F)", len(tb.Rows))
	}
}

func TestCrossEngineMicro(t *testing.T) {
	tb, err := CrossEngine(micro(), 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("cross-engine table has %d rows, want 4 engine families", len(tb.Rows))
	}
	seen := map[string]bool{}
	for _, row := range tb.Rows {
		seen[row[0]] = true
		if row[3] != "6" {
			t.Fatalf("knob cap not applied: %v", row)
		}
	}
	for _, want := range []string{"cdb-mysql", "mongodb", "postgres", "lsm"} {
		if !seen[want] {
			t.Fatalf("engine %s missing from table: %v", want, seen)
		}
	}
}
