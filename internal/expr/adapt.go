package expr

import (
	"fmt"

	"cdbtune/internal/bestconfig"
	"cdbtune/internal/dba"
	"cdbtune/internal/knobs"
	"cdbtune/internal/ottertune"
	"cdbtune/internal/simdb"
	"cdbtune/internal/workload"
)

// Fig10 reproduces Figure 10 (adaptability to memory-size change): a model
// trained on CDB-A (8 GB) recommends for CDB-X1 instances with other RAM
// sizes (cross testing, M_8G→XG) and is compared with models trained
// directly on those instances (normal testing, M_XG→XG), plus the
// baselines, under Sysbench WO. rams defaults to a subset of the paper's
// (4, 12, 32, 64, 128).
func Fig10(b Budget, rams []float64) ([]Table, error) {
	if len(rams) == 0 {
		rams = []float64{4, 32, 128}
	}
	return adaptSweep(b, "Figure 10", workload.SysbenchWO(), simdb.CDBA, func(x float64) simdb.Instance {
		return simdb.MakeX1(x)
	}, rams, "M_8G")
}

// Fig11 reproduces Figure 11 (adaptability to disk-capacity change):
// trained on CDB-C (200 GB disk), tuned on CDB-X2 variants, Sysbench RO.
func Fig11(b Budget, disks []float64) ([]Table, error) {
	if len(disks) == 0 {
		disks = []float64{32, 100, 512}
	}
	return adaptSweep(b, "Figure 11", workload.SysbenchRO(), simdb.CDBC, func(x float64) simdb.Instance {
		return simdb.MakeX2(x)
	}, disks, "M_200G")
}

// adaptSweep implements the shared cross-vs-normal testing protocol.
func adaptSweep(b Budget, title string, w workload.Workload, trainInst simdb.Instance, mkInst func(float64) simdb.Instance, xs []float64, modelName string) ([]Table, error) {
	cat := knobs.MySQL(knobs.EngineCDB)
	seed := b.Seed + 5000

	// One base model trained on the training instance.
	baseTuner, _, err := trainTuner(b, knobs.EngineCDB, trainInst, cat, []workload.Workload{w}, seed)
	if err != nil {
		return nil, err
	}
	repo, err := buildRepo(b, knobs.EngineCDB, trainInst, cat, []workload.Workload{w}, seed+20)
	if err != nil {
		return nil, err
	}

	var tables []Table
	for xi, x := range xs {
		inst := mkInst(x)
		s := seed + int64(100+xi*31)
		t := Table{
			Title:  fmt.Sprintf("%s: %s→%s under %s", title, modelName, inst.Name, w.Name),
			Header: []string{"tuner", "throughput (txn/sec)", "latency99 (ms)"},
		}
		// Baselines on the target instance.
		e := newEnv(knobs.EngineCDB, inst, cat, w, s)
		bcfg := bestconfig.DefaultConfig()
		bcfg.Budget = b.BestConfigSteps
		bcfg.Seed = s
		bres, err := bestconfig.Tune(e, bcfg)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{"BestConfig", fmtF(bres.BestPerf.Throughput), fmtF(bres.BestPerf.Latency99)})

		e = newEnv(knobs.EngineCDB, inst, cat, w, s+1)
		_, dperf, err := dba.Tune(e)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{"DBA", fmtF(dperf.Throughput), fmtF(dperf.Latency99)})

		e = newEnv(knobs.EngineCDB, inst, cat, w, s+2)
		ocfg := ottertune.DefaultConfig()
		ocfg.Steps = b.OtterTuneSteps
		ocfg.Seed = s
		ores, err := ottertune.Tune(e, repo, ocfg)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{"OtterTune", fmtF(ores.BestPerf.Throughput), fmtF(ores.BestPerf.Latency99)})

		// Cross testing: the base model tunes the new hardware directly.
		e = newEnv(knobs.EngineCDB, inst, cat, w, s+3)
		cross, err := baseTuner.OnlineTune(e, b.OnlineSteps, true)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{"CDBTune (cross testing)", fmtF(cross.BestPerf.Throughput), fmtF(cross.BestPerf.Latency99)})

		// Normal testing: a model trained on the target hardware.
		normTuner, _, err := trainTuner(b, knobs.EngineCDB, inst, cat, []workload.Workload{w}, s+4)
		if err != nil {
			return nil, err
		}
		e = newEnv(knobs.EngineCDB, inst, cat, w, s+5)
		norm, err := normTuner.OnlineTune(e, b.OnlineSteps, true)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{"CDBTune (normal testing)", fmtF(norm.BestPerf.Throughput), fmtF(norm.BestPerf.Latency99)})
		tables = append(tables, t)
	}
	return tables, nil
}

// Fig12 reproduces Figure 12 (adaptability to workload change): a model
// trained on Sysbench RW recommends for TPC-C (M_RW→TPC-C, cross testing)
// against a model trained on TPC-C (normal testing) and the baselines, on
// CDB-C.
func Fig12(b Budget) (Table, error) {
	cat := knobs.MySQL(knobs.EngineCDB)
	inst := simdb.CDBC
	target := workload.TPCC()
	seed := b.Seed + 6000

	t := Table{
		Title:  "Figure 12: model trained on Sysbench RW applied to TPC-C (CDB-C)",
		Header: []string{"tuner", "throughput (txn/sec)", "latency99 (ms)"},
	}

	e := newEnv(knobs.EngineCDB, inst, cat, target, seed)
	bcfg := bestconfig.DefaultConfig()
	bcfg.Budget = b.BestConfigSteps
	bcfg.Seed = seed
	bres, err := bestconfig.Tune(e, bcfg)
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, []string{"BestConfig", fmtF(bres.BestPerf.Throughput), fmtF(bres.BestPerf.Latency99)})

	e = newEnv(knobs.EngineCDB, inst, cat, target, seed+1)
	_, dperf, err := dba.Tune(e)
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, []string{"DBA", fmtF(dperf.Throughput), fmtF(dperf.Latency99)})

	repo, err := buildRepo(b, knobs.EngineCDB, inst, cat, []workload.Workload{workload.SysbenchRW()}, seed+2)
	if err != nil {
		return t, err
	}
	e = newEnv(knobs.EngineCDB, inst, cat, target, seed+3)
	ocfg := ottertune.DefaultConfig()
	ocfg.Steps = b.OtterTuneSteps
	ocfg.Seed = seed
	ores, err := ottertune.Tune(e, repo, ocfg)
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, []string{"OtterTune", fmtF(ores.BestPerf.Throughput), fmtF(ores.BestPerf.Latency99)})

	// Cross testing: M_RW→TPC-C.
	rwTuner, _, err := trainTuner(b, knobs.EngineCDB, inst, cat, []workload.Workload{workload.SysbenchRW()}, seed+10)
	if err != nil {
		return t, err
	}
	e = newEnv(knobs.EngineCDB, inst, cat, target, seed+11)
	cross, err := rwTuner.OnlineTune(e, b.OnlineSteps, true)
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, []string{"CDBTune (M_RW→TPC-C)", fmtF(cross.BestPerf.Throughput), fmtF(cross.BestPerf.Latency99)})

	// Normal testing: M_TPC-C→TPC-C.
	tpccTuner, _, err := trainTuner(b, knobs.EngineCDB, inst, cat, []workload.Workload{target}, seed+20)
	if err != nil {
		return t, err
	}
	e = newEnv(knobs.EngineCDB, inst, cat, target, seed+21)
	norm, err := tpccTuner.OnlineTune(e, b.OnlineSteps, true)
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, []string{"CDBTune (M_TPC-C→TPC-C)", fmtF(norm.BestPerf.Throughput), fmtF(norm.BestPerf.Latency99)})
	return t, nil
}
