package expr

import (
	"strings"
	"testing"
)

func TestTableCSV(t *testing.T) {
	tb := Table{
		Title:  "x",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "two, quoted"}, {"3", `say "hi"`}},
	}
	out := tb.CSV()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if lines[0] != "a,b" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != `1,"two, quoted"` {
		t.Fatalf("row 1 = %q", lines[1])
	}
	if lines[2] != `3,"say ""hi"""` {
		t.Fatalf("row 2 = %q", lines[2])
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := Table{
		Title:  "demo",
		Header: []string{"tuner", "tps"},
		Rows:   [][]string{{"CDBTune", "1900"}, {"a|b", "1"}},
	}
	out := tb.Markdown()
	if !strings.Contains(out, "### demo") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "| tuner | tps |") {
		t.Fatalf("header row missing:\n%s", out)
	}
	if !strings.Contains(out, `| a\|b | 1 |`) {
		t.Fatalf("pipe not escaped:\n%s", out)
	}
}

func TestFigureCSV(t *testing.T) {
	f := Figure{
		XLabel: "knobs",
		YLabel: "tps",
		Series: []Series{{Name: "CDBTune", X: []float64{20, 60}, Y: []float64{1, 2}}},
	}
	out := f.CSV()
	want := "series,knobs,tps\nCDBTune,20,1\nCDBTune,60,2\n"
	if out != want {
		t.Fatalf("CSV = %q, want %q", out, want)
	}
}
