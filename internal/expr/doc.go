// Package expr is the experiment harness: one constructor per table and
// figure in the paper's evaluation (§5 and Appendix C), each returning the
// same rows/series the paper reports. cmd/expdriver prints them;
// bench_test.go regenerates them under `go test -bench`.
//
// Absolute numbers come from the simulator substrate and are not expected
// to match the paper's Tencent testbed; EXPERIMENTS.md records, per
// experiment, the paper's shape next to the measured shape.
package expr
