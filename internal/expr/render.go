package expr

import (
	"fmt"
	"strings"
)

// CSV renders the table as RFC-4180-ish CSV (quoted only when needed),
// for feeding the regenerated results into external plotting tools.
func (t Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteString(`"` + strings.ReplaceAll(c, `"`, `""`) + `"`)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavored markdown table.
func (t Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s\n\n", t.Title)
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat(" --- |", len(t.Header)) + "\n")
	for _, row := range t.Rows {
		cells := make([]string, len(row))
		for i, c := range row {
			cells[i] = strings.ReplaceAll(c, "|", `\|`)
		}
		b.WriteString("| " + strings.Join(cells, " | ") + " |\n")
	}
	return b.String()
}

// CSV renders every series as long-format CSV: series,x,y.
func (f Figure) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "series,%s,%s\n", csvEscape(f.XLabel), csvEscape(f.YLabel))
	for _, s := range f.Series {
		for i := range s.X {
			fmt.Fprintf(&b, "%s,%g,%g\n", csvEscape(s.Name), s.X[i], s.Y[i])
		}
	}
	return b.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
