package expr

import (
	"fmt"
	"math/rand"

	"cdbtune/internal/dba"
	"cdbtune/internal/knobs"
	"cdbtune/internal/ottertune"
	"cdbtune/internal/simdb"
	"cdbtune/internal/workload"
)

// defaultKnobCounts is the compressed version of the paper's 20..266 axis
// used by the quick budget.
var defaultKnobCounts = []int{20, 60, 100, 150, 200, 266}

// KnobOrder selects the ranking behind a Figure 6/7/8 sweep.
type KnobOrder int

// Knob orderings from the paper.
const (
	OrderDBA       KnobOrder = iota // Figure 6: expert importance ranking
	OrderOtterTune                  // Figure 7: Lasso ranking
	OrderRandom                     // Figure 8: random nested subsets
)

// knobOrder computes the knob index permutation for the sweep.
func knobOrder(b Budget, order KnobOrder, cat *knobs.Catalog) ([]int, error) {
	switch order {
	case OrderDBA:
		return dba.ImportanceOrder(cat), nil
	case OrderOtterTune:
		// Rank with Lasso over a sampled repository (TPC-C on CDB-B, the
		// Figure 7 setting).
		repo, err := buildRepo(b, knobs.EngineCDB, simdb.CDBB, cat, []workload.Workload{workload.TPCC()}, b.Seed+4000)
		if err != nil {
			return nil, err
		}
		return repo.RankKnobs()
	default:
		rng := rand.New(rand.NewSource(b.Seed + 4100))
		return rng.Perm(cat.Len()), nil
	}
}

// KnobSweep runs the Figure 6/7/8 experiment: performance as the tunable
// knob count grows along the given ordering, with TPC-C on CDB-B. For the
// DBA and OtterTune orderings it also evaluates those tuners per point;
// the random ordering (Figure 8) tracks CDBTune plus its training
// iterations.
func KnobSweep(b Budget, order KnobOrder, counts []int) (Figure, Figure, Figure, error) {
	if len(counts) == 0 {
		counts = defaultKnobCounts
	}
	full := knobs.MySQL(knobs.EngineCDB)
	perm, err := knobOrder(b, order, full)
	if err != nil {
		return Figure{}, Figure{}, Figure{}, err
	}
	w := workload.TPCC()

	name := map[KnobOrder]string{
		OrderDBA:       "Figure 6 (knobs sorted by DBA)",
		OrderOtterTune: "Figure 7 (knobs sorted by OtterTune)",
		OrderRandom:    "Figure 8 (knobs randomly selected by CDBTune)",
	}[order]
	tputFig := Figure{Title: name + " — throughput", XLabel: "number of knobs", YLabel: "throughput (txn/sec)"}
	latFig := Figure{Title: name + " — latency", XLabel: "number of knobs", YLabel: "99th %-tile (ms)"}
	iterFig := Figure{Title: name + " — iterations", XLabel: "number of knobs", YLabel: "training iterations"}

	var cdbT, cdbL, dbaT, dbaL, otT, otL, iters Series
	cdbT.Name, cdbL.Name = "CDBTune", "CDBTune"
	dbaT.Name, dbaL.Name = "DBA", "DBA"
	otT.Name, otL.Name = "OtterTune", "OtterTune"
	iters.Name = "CDBTune iterations"

	for pi, n := range counts {
		if n > full.Len() {
			n = full.Len()
		}
		sub := full.Subset(perm[:n])
		seed := b.Seed + int64(4200+pi*37)
		x := float64(n)

		// CDBTune trained on the subset.
		tuner, rep, err := trainTuner(b, knobs.EngineCDB, simdb.CDBB, sub, []workload.Workload{w}, seed)
		if err != nil {
			return tputFig, latFig, iterFig, err
		}
		e := newEnv(knobs.EngineCDB, simdb.CDBB, sub, w, seed+60)
		tres, err := tuner.OnlineTune(e, b.OnlineSteps, true)
		if err != nil {
			return tputFig, latFig, iterFig, err
		}
		cdbT.X, cdbT.Y = append(cdbT.X, x), append(cdbT.Y, tres.BestPerf.Throughput)
		cdbL.X, cdbL.Y = append(cdbL.X, x), append(cdbL.Y, tres.BestPerf.Latency99)
		conv := rep.ConvergedAt
		if conv == 0 {
			conv = rep.Iterations
		}
		iters.X, iters.Y = append(iters.X, x), append(iters.Y, float64(conv))

		if order == OrderRandom {
			continue
		}
		// DBA restricted to the subset.
		e = newEnv(knobs.EngineCDB, simdb.CDBB, sub, w, seed+61)
		_, dperf, err := dba.Tune(e)
		if err != nil {
			return tputFig, latFig, iterFig, err
		}
		dbaT.X, dbaT.Y = append(dbaT.X, x), append(dbaT.Y, dperf.Throughput)
		dbaL.X, dbaL.Y = append(dbaL.X, x), append(dbaL.Y, dperf.Latency99)

		// OtterTune on the subset.
		repo, err := buildRepo(b, knobs.EngineCDB, simdb.CDBB, sub, []workload.Workload{w}, seed+62)
		if err != nil {
			return tputFig, latFig, iterFig, err
		}
		e = newEnv(knobs.EngineCDB, simdb.CDBB, sub, w, seed+63)
		ocfg := ottertune.DefaultConfig()
		ocfg.Steps = b.OtterTuneSteps
		ocfg.Seed = seed
		ores, err := ottertune.Tune(e, repo, ocfg)
		if err != nil {
			return tputFig, latFig, iterFig, err
		}
		otT.X, otT.Y = append(otT.X, x), append(otT.Y, ores.BestPerf.Throughput)
		otL.X, otL.Y = append(otL.X, x), append(otL.Y, ores.BestPerf.Latency99)
	}

	tputFig.Series = append(tputFig.Series, cdbT)
	latFig.Series = append(latFig.Series, cdbL)
	if order != OrderRandom {
		tputFig.Series = append(tputFig.Series, dbaT, otT)
		latFig.Series = append(latFig.Series, dbaL, otL)
	}
	iterFig.Series = append(iterFig.Series, iters)
	return tputFig, latFig, iterFig, nil
}

// Fig5 reproduces Figure 5: performance as the accumulated trying steps
// grow from 5 to maxSteps in increments of 5, for Sysbench RW/RO/WO on
// CDB-A. Per the paper's protocol the reported point at step budget k is
// the best performance within the first k online steps.
func Fig5(b Budget, maxSteps int) ([]Figure, error) {
	if maxSteps <= 0 {
		maxSteps = 50
	}
	cat := knobs.MySQL(knobs.EngineCDB)
	var figs []Figure
	for wi, w := range []workload.Workload{workload.SysbenchRW(), workload.SysbenchRO(), workload.SysbenchWO()} {
		seed := b.Seed + int64(4500+wi*41)
		tuner, _, err := trainTuner(b, knobs.EngineCDB, simdb.CDBA, cat, []workload.Workload{w}, seed)
		if err != nil {
			return nil, err
		}
		e := newEnv(knobs.EngineCDB, simdb.CDBA, cat, w, seed+70)
		res, err := tuner.OnlineTune(e, maxSteps, true)
		if err != nil {
			return nil, err
		}
		var tput, lat Series
		tput.Name, lat.Name = "CDBTune throughput", "CDBTune latency"
		bestT, bestL := res.Initial.Throughput, res.Initial.Latency99
		for i, ext := range res.History {
			if ext.Throughput > bestT {
				bestT = ext.Throughput
			}
			if ext.Latency99 < bestL {
				bestL = ext.Latency99
			}
			step := i + 1
			if step%5 == 0 {
				tput.X, tput.Y = append(tput.X, float64(step)), append(tput.Y, bestT)
				lat.X, lat.Y = append(lat.X, float64(step)), append(lat.Y, bestL)
			}
		}
		figs = append(figs,
			Figure{Title: fmt.Sprintf("Figure 5 (%s) — throughput vs steps", w.Name), XLabel: "steps", YLabel: "txn/sec", Series: []Series{tput}},
			Figure{Title: fmt.Sprintf("Figure 5 (%s) — latency vs steps", w.Name), XLabel: "steps", YLabel: "99th %-tile (ms)", Series: []Series{lat}},
		)
	}
	return figs, nil
}
