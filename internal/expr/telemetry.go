package expr

import (
	"fmt"
	"sort"

	"cdbtune/internal/chaos"
	"cdbtune/internal/core"
	"cdbtune/internal/env"
	"cdbtune/internal/knobs"
	"cdbtune/internal/simdb"
	"cdbtune/internal/workload"
)

// TrainingTelemetry runs a short parallel offline training (§5.1's
// multi-server try-and-error, scaled to `workers` simulated training
// servers) and reports the per-episode telemetry stream: exploration
// annealing, reward and loss trajectories, crash counts and virtual time.
// The training runs under a light seeded fault mix (transient measurement
// failures, latency stalls, metric dropouts), so the stream also shows the
// resilience layer absorbing faults: retries, skipped steps, and the
// unchanged annealing schedule. A second table summarizes the injected
// faults against the counters the hardened loop reports, and closes with a
// guardrail-protected online-tuning request against the same chaotic
// instance class.
func TrainingTelemetry(b Budget, workers int) ([]Table, error) {
	if workers <= 0 {
		workers = 4
	}
	inst := simdb.CDBA
	cat := knobs.MySQL(knobs.EngineCDB)
	cfg := warmConfig(b, cat, inst)
	// Shard the replay pool one-per-worker so the telemetry stream also
	// exercises (and reports) the lock-striped ingestion path.
	cfg.MemoryShards = workers
	t, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	episodes := b.Episodes / 2
	if episodes < 8 {
		episodes = 8
	}
	w := workload.SysbenchRW()
	// A light mix: every fault class fires over a normal run, none often
	// enough to drown the learning signal.
	in := chaos.New(chaos.Config{
		Seed:          b.Seed,
		TransientProb: 0.03,
		StallProb:     0.03,
		StallSec:      30,
		DropoutProb:   0.03,
		// Occasional corrupted-but-finite measurements: they pass the env
		// sanitizers by design, so the learner-health table below shows the
		// supervisor watching (reward clamping keeps them non-fatal here).
		SpikeProb: 0.02,
	})
	var records []core.EpisodeStats
	rep, err := t.OfflineTrainOpts(func(ep int) *env.Env {
		db := simdb.New(knobs.EngineCDB, inst, b.Seed+int64(ep))
		return env.New(in.Wrap(db), cat, w)
	}, core.TrainOptions{
		Episodes: episodes,
		Workers:  workers,
		// The hook is invoked under the trainer's accounting lock, so the
		// append needs no extra synchronization.
		OnEpisode: func(s core.EpisodeStats) { records = append(records, s) },
	})
	if err != nil {
		return nil, err
	}
	// Completion order is nondeterministic across workers; present the
	// stream by episode index.
	sort.Slice(records, func(i, j int) bool { return records[i].Episode < records[j].Episode })
	stream := Table{
		Title: fmt.Sprintf("Training telemetry (%d episodes, %d workers; converged=%v at iter %d, best %.1f txn/sec)",
			rep.Episodes, workers, rep.Converged, rep.ConvergedAt, rep.BestPerf.Throughput),
		Header: []string{"episode", "worker", "best tput", "mean reward", "critic loss", "actor loss", "sigma", "crashes", "faults", "retries", "skipped", "infer batch", "virtual sec"},
	}
	for _, s := range records {
		stream.Rows = append(stream.Rows, []string{
			fmt.Sprintf("%d", s.Episode),
			fmt.Sprintf("%d", s.Worker),
			fmtF(s.BestThroughput),
			fmt.Sprintf("%+.3f", s.MeanReward),
			fmt.Sprintf("%.4f", s.CriticLoss),
			fmt.Sprintf("%+.3f", s.ActorLoss),
			fmt.Sprintf("%.4f", s.NoiseSigma),
			fmt.Sprintf("%d", s.Crashes),
			fmt.Sprintf("%d", s.Transients),
			fmt.Sprintf("%d", s.Retries),
			fmt.Sprintf("%d", s.SkippedSteps),
			fmt.Sprintf("%.2f", s.InferBatchMean),
			fmt.Sprintf("%.0f", s.VirtualSeconds),
		})
	}

	// A guarded online-tuning request against a crashier instance of the
	// same class: the guardrail's reverts and vetoes close the summary.
	tuneIn := chaos.New(chaos.Config{
		Seed:          b.Seed + 1,
		TransientProb: 0.05,
		CrashProb:     0.15,
	})
	tuneDB := simdb.New(knobs.EngineCDB, inst, b.Seed+9999)
	guard := core.NewGuardrail(2, 0.05)
	tuned, err := t.OnlineTuneGuarded(env.New(tuneIn.Wrap(tuneDB), cat, w), 5, true, guard)
	if err != nil {
		return nil, err
	}
	reverts, vetoes, regions := guard.Stats()

	cnt := in.Counters()
	resil := Table{
		Title:  "Resilience summary (seeded fault injection vs. hardened-loop accounting)",
		Header: []string{"counter", "training", "online tune"},
		Rows: [][]string{
			{"injected transients", fmt.Sprintf("%d", cnt.Transients), fmt.Sprintf("%d", tuneIn.Counters().Transients)},
			{"injected stalls", fmt.Sprintf("%d", cnt.Stalls), fmt.Sprintf("%d", tuneIn.Counters().Stalls)},
			{"injected dropouts", fmt.Sprintf("%d", cnt.Dropouts), fmt.Sprintf("%d", tuneIn.Counters().Dropouts)},
			{"injected crashes", fmt.Sprintf("%d", cnt.Crashes), fmt.Sprintf("%d", tuneIn.Counters().Crashes)},
			{"injected reward spikes", fmt.Sprintf("%d", cnt.Spikes), fmt.Sprintf("%d", tuneIn.Counters().Spikes)},
			{"absorbed transients", fmt.Sprintf("%d", rep.Faults.Transients), fmt.Sprintf("%d", tuned.Faults.Transients)},
			{"backoff retries", fmt.Sprintf("%d", rep.Faults.Retries), fmt.Sprintf("%d", tuned.Faults.Retries)},
			{"retry backoff vsec", fmt.Sprintf("%.0f", rep.Faults.RetrySec), fmt.Sprintf("%.0f", tuned.Faults.RetrySec)},
			{"stall vsec charged", fmt.Sprintf("%.0f", rep.Faults.StallSec), fmt.Sprintf("%.0f", tuned.Faults.StallSec)},
			{"state dropouts sanitized", fmt.Sprintf("%d", rep.Faults.Dropouts), fmt.Sprintf("%d", tuned.Faults.Dropouts)},
			{"skipped steps", "-", fmt.Sprintf("%d", tuned.SkippedSteps)},
			{"guardrail reverts", "-", fmt.Sprintf("%d", reverts)},
			{"guardrail vetoes", "-", fmt.Sprintf("%d", vetoes)},
			{"crash regions recorded", "-", fmt.Sprintf("%d", regions)},
			{"worker deaths / lost episodes", fmt.Sprintf("%d / %d", rep.WorkerDeaths, rep.LostEpisodes), "-"},
		},
	}

	// Learner-health summary: what the divergence supervisor saw. On a
	// healthy run the gauges document normal operating levels (the baseline
	// against which a diverging run's q-explosion or gradient blowup is
	// obvious); heals and dropped batches are zero unless something poisoned
	// the learner.
	health := Table{
		Title:  "Learner health (divergence supervision over the training run)",
		Header: []string{"signal", "value"},
		Rows: [][]string{
			{"supervised", fmt.Sprintf("%v", rep.Learner.Supervised)},
			{"healthy at end", fmt.Sprintf("%v", rep.Learner.Healthy)},
			{"heals (rollbacks)", fmt.Sprintf("%d", rep.Learner.Heals)},
			{"weight snapshots taken", fmt.Sprintf("%d", rep.Learner.Snapshots)},
			{"non-finite batches dropped", fmt.Sprintf("%d", rep.Learner.SkippedBatches)},
			{"learning-rate backoff scale", fmt.Sprintf("%.3g", rep.Learner.LRScale)},
			{"EMA mean |Q|", fmt.Sprintf("%.2f", rep.Learner.MeanAbsQ)},
			{"EMA critic grad norm", fmt.Sprintf("%.2f", rep.Learner.GradNorm)},
			{"EMA actor saturation", fmt.Sprintf("%.3f", rep.Learner.Saturation)},
			{"max |weight|", fmt.Sprintf("%.2f", rep.Learner.MaxWeight)},
		},
	}
	if rep.Learner.Diagnosis != "" {
		health.Rows = append(health.Rows, []string{"diagnosis", rep.Learner.Diagnosis})
	}
	return []Table{stream, health, resil}, nil
}
