package expr

import (
	"fmt"
	"sort"

	"cdbtune/internal/core"
	"cdbtune/internal/env"
	"cdbtune/internal/knobs"
	"cdbtune/internal/simdb"
	"cdbtune/internal/workload"
)

// TrainingTelemetry runs a short parallel offline training (§5.1's
// multi-server try-and-error, scaled to `workers` simulated training
// servers) and reports the per-episode telemetry stream: exploration
// annealing, reward and loss trajectories, crash counts and virtual time.
// The stream is the observability substrate the scale-out work builds on;
// here it doubles as a demonstration that the parallel schedule matches
// serial annealing (sigma decays once per completed episode).
func TrainingTelemetry(b Budget, workers int) (Table, error) {
	if workers <= 0 {
		workers = 4
	}
	inst := simdb.CDBA
	cat := knobs.MySQL(knobs.EngineCDB)
	cfg := warmConfig(b, cat, inst)
	// Shard the replay pool one-per-worker so the telemetry stream also
	// exercises (and reports) the lock-striped ingestion path.
	cfg.MemoryShards = workers
	t, err := core.New(cfg)
	if err != nil {
		return Table{}, err
	}
	episodes := b.Episodes / 2
	if episodes < 8 {
		episodes = 8
	}
	w := workload.SysbenchRW()
	var records []core.EpisodeStats
	rep, err := t.OfflineTrainOpts(func(ep int) *env.Env {
		return newEnv(knobs.EngineCDB, inst, cat, w, b.Seed+int64(ep))
	}, core.TrainOptions{
		Episodes: episodes,
		Workers:  workers,
		// The hook is invoked under the trainer's accounting lock, so the
		// append needs no extra synchronization.
		OnEpisode: func(s core.EpisodeStats) { records = append(records, s) },
	})
	if err != nil {
		return Table{}, err
	}
	// Completion order is nondeterministic across workers; present the
	// stream by episode index.
	sort.Slice(records, func(i, j int) bool { return records[i].Episode < records[j].Episode })
	tab := Table{
		Title: fmt.Sprintf("Training telemetry (%d episodes, %d workers; converged=%v at iter %d, best %.1f txn/sec)",
			rep.Episodes, workers, rep.Converged, rep.ConvergedAt, rep.BestPerf.Throughput),
		Header: []string{"episode", "worker", "best tput", "mean reward", "critic loss", "actor loss", "sigma", "crashes", "infer batch", "virtual sec"},
	}
	for _, s := range records {
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprintf("%d", s.Episode),
			fmt.Sprintf("%d", s.Worker),
			fmtF(s.BestThroughput),
			fmt.Sprintf("%+.3f", s.MeanReward),
			fmt.Sprintf("%.4f", s.CriticLoss),
			fmt.Sprintf("%+.3f", s.ActorLoss),
			fmt.Sprintf("%.4f", s.NoiseSigma),
			fmt.Sprintf("%d", s.Crashes),
			fmt.Sprintf("%.2f", s.InferBatchMean),
			fmt.Sprintf("%.0f", s.VirtualSeconds),
		})
	}
	return tab, nil
}
