package expr

import (
	"fmt"

	"cdbtune/internal/dba"
	"cdbtune/internal/env"
	"cdbtune/internal/knobs"
	"cdbtune/internal/ottertune"
	"cdbtune/internal/simdb"
	"cdbtune/internal/workload"
)

// Fig1AB reproduces Figure 1(a)/(b): OtterTune and OtterTune-with-deep-
// learning throughput as the training-sample count grows, against the
// MySQL-default and DBA horizontal references, on TPC-H (a) and Sysbench
// RW (b) over CDB-A. sampleCounts defaults to a compressed version of the
// paper's 1k-14k axis, scaled to what a simulator session can hold.
func Fig1AB(b Budget, sampleCounts []int) ([]Figure, error) {
	if len(sampleCounts) == 0 {
		sampleCounts = []int{50, 100, 200, 400, 800}
	}
	var figs []Figure
	for fi, w := range []workload.Workload{workload.TPCH(), workload.SysbenchRW()} {
		seed := b.Seed + int64(fi*1000)
		// References.
		eDef := newEnv(knobs.EngineCDB, simdb.CDBA, knobs.MySQL(knobs.EngineCDB), w, seed)
		base, err := eDef.Measure()
		if err != nil {
			return nil, err
		}
		eDBA := newEnv(knobs.EngineCDB, simdb.CDBA, knobs.MySQL(knobs.EngineCDB), w, seed+1)
		_, dbaPerf, err := dba.Tune(eDBA)
		if err != nil {
			return nil, err
		}

		mkSeries := func(name string, useDNN bool) (Series, error) {
			s := Series{Name: name}
			for i, n := range sampleCounts {
				repoEnv := newEnv(knobs.EngineCDB, simdb.CDBA, knobs.MySQL(knobs.EngineCDB), w, seed+10+int64(i))
				repo, err := ottertune.BuildRepository([]*env.Env{repoEnv}, n, dba.Recommend, seed+20+int64(i))
				if err != nil {
					return s, err
				}
				e := newEnv(knobs.EngineCDB, simdb.CDBA, knobs.MySQL(knobs.EngineCDB), w, seed+40+int64(i))
				cfg := ottertune.DefaultConfig()
				cfg.Steps = b.OtterTuneSteps
				cfg.UseDNN = useDNN
				cfg.Seed = seed + int64(i)
				out, err := ottertune.Tune(e, repo, cfg)
				if err != nil {
					return s, err
				}
				s.X = append(s.X, float64(n))
				s.Y = append(s.Y, out.BestPerf.Throughput)
			}
			return s, nil
		}
		ot, err := mkSeries("OtterTune", false)
		if err != nil {
			return nil, err
		}
		otDNN, err := mkSeries("OtterTune with deep learning", true)
		if err != nil {
			return nil, err
		}
		flat := func(name string, y float64) Series {
			s := Series{Name: name}
			for _, n := range sampleCounts {
				s.X = append(s.X, float64(n))
				s.Y = append(s.Y, y)
			}
			return s
		}
		figs = append(figs, Figure{
			Title:  fmt.Sprintf("Figure 1(%c): throughput vs number of samples, %s on CDB-A", 'a'+fi, w.Name),
			XLabel: "training samples",
			YLabel: "throughput (txn/sec)",
			Series: []Series{ot, otDNN, flat("MySQL Default", base.Ext.Throughput), flat("DBA", dbaPerf.Throughput)},
		})
	}
	return figs, nil
}

// Fig1C reproduces Figure 1(c): tunable knob count per CDB version.
func Fig1C() Table {
	t := Table{
		Title:  "Figure 1(c): tunable knobs by CDB version",
		Header: []string{"CDB version", "tunable knobs"},
	}
	for _, v := range []float64{1, 2, 3, 4, 5, 6, 7} {
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%.1f", v), fmt.Sprintf("%d", knobs.TunableKnobCount(v))})
	}
	return t
}

// Fig1D reproduces Figure 1(d): the throughput surface over two knobs
// (buffer pool size × write IO threads) under Sysbench RW on an
// 8 GB / 100 GB instance, showing the non-monotone interacting landscape.
func Fig1D(grid int) (Table, error) {
	if grid <= 0 {
		grid = 9
	}
	cat := knobs.MySQL(knobs.EngineCDB)
	w := workload.SysbenchRW()
	t := Table{
		Title:  "Figure 1(d): performance surface (throughput, txn/sec) over buffer pool × write IO threads, Sysbench RW, 8 GB RAM / 100 GB disk",
		Header: []string{"bp\\wio"},
	}
	for j := 0; j < grid; j++ {
		t.Header = append(t.Header, fmt.Sprintf("%.2f", float64(j)/float64(grid-1)))
	}
	bpIdx := cat.Index("innodb_buffer_pool_size")
	wtIdx := cat.Index("innodb_write_io_threads")
	for i := 0; i < grid; i++ {
		bp := float64(i) / float64(grid-1)
		row := []string{fmt.Sprintf("%.2f", bp)}
		for j := 0; j < grid; j++ {
			wt := float64(j) / float64(grid-1)
			db := simdb.New(knobs.EngineCDB, simdb.CDBA, 1)
			x := cat.Defaults(8, 100)
			x[bpIdx] = bp
			x[wtIdx] = wt
			if _, err := db.ApplyKnobs(cat, x); err != nil {
				return t, err
			}
			res, err := db.RunWorkload(w, 30)
			if err != nil {
				row = append(row, "crash")
				continue
			}
			row = append(row, fmt.Sprintf("%.0f", res.Ext.Throughput))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Table1 reproduces Table 1: the database instances and hardware matrix.
func Table1() Table {
	t := Table{
		Title:  "Table 1: database instances and hardware configuration",
		Header: []string{"Instance", "RAM (GB)", "Disk (GB)"},
	}
	for _, in := range simdb.Table1() {
		t.Rows = append(t.Rows, []string{in.Name, fmtF(in.HW.RAMGB), fmtF(in.HW.DiskGB)})
	}
	t.Rows = append(t.Rows,
		[]string{"CDB-X1", "(4, 12, 32, 64, 128)", "100"},
		[]string{"CDB-X2", "12", "(32, 64, 100, 256, 512)"},
	)
	return t
}

// Timing reproduces the §5.1.1 execution-time breakdown of one step.
func Timing() Table {
	return Table{
		Title:  "§5.1.1: execution time of one training/tuning step",
		Header: []string{"stage", "time"},
		Rows: [][]string{
			{"stress testing", fmt.Sprintf("%.2f s", simdb.StressTestSec)},
			{"metrics collection", fmt.Sprintf("%.2f ms", simdb.MetricsCollectSec*1000)},
			{"model update", fmt.Sprintf("%.2f ms", 28.76)},
			{"recommendation", fmt.Sprintf("%.2f ms", 2.16)},
			{"deployment", fmt.Sprintf("%.2f s", simdb.DeploySec)},
			{"restart (when required)", fmt.Sprintf("%.0f s", float64(simdb.RestartSec))},
		},
	}
}
