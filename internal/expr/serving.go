package expr

import (
	"fmt"
	"os"
	"time"

	"cdbtune/internal/core"
	"cdbtune/internal/knobs"
	"cdbtune/internal/registry"
	"cdbtune/internal/server"
)

// ServingTelemetry exercises the multi-tenant serving layer end to end and
// reports its per-session telemetry: a stream of tuning requests runs
// through the session manager (fingerprint → registry match → warm-start
// or scratch training → guarded online tuning), with repeated workloads
// deliberately in the mix so the warm-start path fires and its
// episodes-saved accounting shows up next to the scratch baselines. A
// second table summarizes the service counters — throughput of the worker
// pool, queue-wait percentiles, warm-start hit rate, and the fine-tuning
// savings the model registry is buying (§5's "match and fine-tune the
// closest model" serving story).
func ServingTelemetry(b Budget) ([]Table, error) {
	// A compact knob subset keeps per-session training in budget; the
	// serving pipeline is what's under measurement here, not the policy.
	full := knobs.MySQL(knobs.EngineCDB)
	idx := make([]int, 8)
	for i := range idx {
		idx[i] = i
	}
	cat := full.Subset(idx)

	regDir, err := os.MkdirTemp("", "cdbtune-serving-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(regDir)
	reg, err := registry.Open(regDir, registry.WithLogf(func(string, ...any) {}))
	if err != nil {
		return nil, err
	}

	m, err := server.NewManager(server.Config{
		Registry:            reg,
		Workers:             2,
		OnlineSteps:         5,
		MinScratchEpisodes:  4,
		MaxScratchEpisodes:  b.Episodes / 4,
		MaxFineTuneEpisodes: 2,
		ChunkEpisodes:       2,
		MatchRadius:         0.25,
		Seed:                b.Seed,
		Catalog:             cat,
		TunerConfig:         func(c *knobs.Catalog) core.Config { return tunerConfig(b, c) },
		Logf:                func(string, ...any) {},
	})
	if err != nil {
		return nil, err
	}
	defer m.Close()

	// Six requests, three workload classes, in two waves: the first wave
	// trains each class from scratch and populates the registry; the
	// second repeats the classes, so every one of its sessions should
	// match a wave-1 model and take the warm-start path.
	waves := [][]server.JobRequest{
		{
			{Workload: "sysbench-rw", Instance: "CDB-A"},
			{Workload: "tpcc", Instance: "CDB-A"},
			{Workload: "sysbench-ro", Instance: "CDB-A"},
		},
		{
			{Workload: "sysbench-rw", Instance: "CDB-A"},
			{Workload: "tpcc", Instance: "CDB-A"},
			{Workload: "sysbench-ro", Instance: "CDB-A"},
		},
	}
	for _, wave := range waves {
		ids := make([]string, 0, len(wave))
		for _, r := range wave {
			st, err := m.Submit(r)
			if err != nil {
				return nil, err
			}
			ids = append(ids, st.ID)
		}
		for _, id := range ids {
			if err := waitDone(m, id); err != nil {
				return nil, err
			}
		}
	}

	sessions := Table{
		Title:  "Serving sessions (multi-tenant tuning service; warm = fine-tuned a registry match)",
		Header: []string{"session", "workload", "path", "match dist", "queue ms", "episodes", "saved", "improvement"},
	}
	for _, s := range m.Sessions() {
		dist := "-"
		if s.Path == server.PathWarm {
			dist = fmt.Sprintf("%.4f", s.MatchDistance)
		}
		sessions.Rows = append(sessions.Rows, []string{
			s.ID, s.Workload, s.Path, dist,
			fmt.Sprintf("%.0f", s.QueueWaitMs),
			fmt.Sprintf("%d", s.Episodes),
			fmt.Sprintf("%d", s.EpisodesSaved),
			fmtPct(s.Improvement),
		})
	}

	mt := m.Metrics()
	hitRate := 0.0
	if mt.WarmHits+mt.WarmMisses > 0 {
		hitRate = float64(mt.WarmHits) / float64(mt.WarmHits+mt.WarmMisses)
	}
	saved := 0.0
	if mt.EpisodesTrained+mt.EpisodesSaved > 0 {
		saved = float64(mt.EpisodesSaved) / float64(mt.EpisodesTrained+mt.EpisodesSaved)
	}
	summary := Table{
		Title:  "Serving summary",
		Header: []string{"metric", "value"},
		Rows: [][]string{
			{"sessions completed / failed", fmt.Sprintf("%d / %d", mt.Completed, mt.Failed)},
			{"queue wait p50 / p95 (ms)", fmt.Sprintf("%.0f / %.0f", mt.QueueWaitP50Ms, mt.QueueWaitP95Ms)},
			{"warm-start hit rate", fmt.Sprintf("%.0f%% (%d/%d)", hitRate*100, mt.WarmHits, mt.WarmHits+mt.WarmMisses)},
			{"episodes trained", fmt.Sprintf("%d", mt.EpisodesTrained)},
			{"episodes saved by fine-tuning", fmt.Sprintf("%d (%.0f%% of the scratch-equivalent budget)", mt.EpisodesSaved, saved*100)},
			{"registry entries / corrupt", fmt.Sprintf("%d / %d", mt.RegistryEntries, mt.RegistryCorrupt)},
		},
	}
	return []Table{sessions, summary}, nil
}

// waitDone polls a session until it reaches a terminal state, failing on
// anything but a clean completion.
func waitDone(m *server.Manager, id string) error {
	deadline := time.Now().Add(10 * time.Minute)
	for time.Now().Before(deadline) {
		st, ok := m.Job(id)
		if !ok {
			return fmt.Errorf("serving: job %s vanished", id)
		}
		switch st.State {
		case server.StateDone:
			return nil
		case server.StateFailed, server.StateCanceled:
			return fmt.Errorf("serving: job %s %s: %s", id, st.State, st.Error)
		}
		time.Sleep(10 * time.Millisecond)
	}
	return fmt.Errorf("serving: job %s timed out", id)
}
