package expr

import (
	"fmt"

	"cdbtune/internal/core"
	"cdbtune/internal/env"
	"cdbtune/internal/knobs"
	"cdbtune/internal/reward"
	"cdbtune/internal/simdb"
	"cdbtune/internal/workload"
)

// Fig14 reproduces Appendix C.1.1 (Figure 14): training convergence
// iterations and resulting performance for the four reward functions
// (RF-A, RF-B, RF-C, RF-CDBTune) on TPC-C (CDB-C) and Sysbench RW and RO
// (CDB-A).
func Fig14(b Budget) ([]Table, error) {
	cases := []struct {
		w    workload.Workload
		inst simdb.Instance
	}{
		{workload.TPCC(), simdb.CDBC},
		{workload.SysbenchRW(), simdb.CDBA},
		{workload.SysbenchRO(), simdb.CDBA},
	}
	kinds := []reward.Kind{reward.RFA, reward.RFB, reward.RFC, reward.RFCDBTune}
	cat := knobs.MySQL(knobs.EngineCDB)

	var tables []Table
	for ci, c := range cases {
		t := Table{
			Title:  fmt.Sprintf("Figure 14 (%s on %s): reward-function comparison", c.w.Name, c.inst.Name),
			Header: []string{"reward function", "iterations to converge", "throughput (txn/sec)", "latency99 (ms)"},
		}
		for ki, kind := range kinds {
			seed := b.Seed + int64(7000+ci*100+ki*13)
			cfg := warmConfig(b, cat, c.inst)
			cfg.RewardKind = kind
			cfg.Seed = seed
			tuner, err := core.New(cfg)
			if err != nil {
				return nil, err
			}
			rep, err := tuner.OfflineTrain(func(ep int) *env.Env {
				return newEnv(knobs.EngineCDB, c.inst, cat, c.w, seed+int64(ep))
			}, scaledEpisodes(b, cat))
			if err != nil {
				return nil, err
			}
			e := newEnv(knobs.EngineCDB, c.inst, cat, c.w, seed+90)
			res, err := tuner.OnlineTune(e, b.OnlineSteps, true)
			if err != nil {
				return nil, err
			}
			conv := rep.ConvergedAt
			if conv == 0 {
				conv = rep.Iterations
			}
			t.Rows = append(t.Rows, []string{
				kind.String(), fmt.Sprintf("%d", conv),
				fmtF(res.BestPerf.Throughput), fmtF(res.BestPerf.Latency99),
			})
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// Fig15 reproduces Appendix C.1.2 (Figure 15): sweeping the throughput
// coefficient CT (CL = 1 − CT) and reporting the throughput and latency
// of the tuned system relative to the CT = CL = 0.5 baseline, on Sysbench
// RW (CDB-A).
func Fig15(b Budget, cts []float64) (Figure, error) {
	if len(cts) == 0 {
		cts = []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	}
	cat := knobs.MySQL(knobs.EngineCDB)
	w := workload.SysbenchRW()
	fig := Figure{
		Title:  "Figure 15: throughput/latency change rate vs CT (CL = 1−CT), Sysbench RW",
		XLabel: "CT",
		YLabel: "ratio vs CT=0.5 baseline",
	}
	perfAt := func(ct float64) (float64, float64, error) {
		seed := b.Seed + int64(8000+int(ct*100))
		cfg := warmConfig(b, cat, simdb.CDBA)
		cfg.CT, cfg.CL = ct, 1-ct
		cfg.Seed = seed
		tuner, err := core.New(cfg)
		if err != nil {
			return 0, 0, err
		}
		if _, err := tuner.OfflineTrain(func(ep int) *env.Env {
			return newEnv(knobs.EngineCDB, simdb.CDBA, cat, w, seed+int64(ep))
		}, scaledEpisodes(b, cat)); err != nil {
			return 0, 0, err
		}
		e := newEnv(knobs.EngineCDB, simdb.CDBA, cat, w, seed+90)
		res, err := tuner.OnlineTune(e, b.OnlineSteps, true)
		if err != nil {
			return 0, 0, err
		}
		return res.BestPerf.Throughput, res.BestPerf.Latency99, nil
	}
	baseT, baseL, err := perfAt(0.5)
	if err != nil {
		return fig, err
	}
	var tput, lat Series
	tput.Name, lat.Name = "Throughput", "Latency"
	for _, ct := range cts {
		t, l := baseT, baseL
		if ct != 0.5 {
			t, l, err = perfAt(ct)
			if err != nil {
				return fig, err
			}
		}
		tput.X, tput.Y = append(tput.X, ct), append(tput.Y, t/baseT)
		lat.X, lat.Y = append(lat.X, ct), append(lat.Y, l/baseL)
	}
	fig.Series = []Series{tput, lat}
	return fig, nil
}

// Table6 reproduces Appendix C.2 (Table 6): tuning performance and
// training iterations as the actor/critic depth and width vary. The row
// set mirrors the paper's; the quick budget divides every width by the
// given shrink factor to stay single-core friendly (shrink 1 = paper
// architecture).
func Table6(b Budget, shrink int) (Table, error) {
	if shrink <= 0 {
		shrink = 1
	}
	type arch struct {
		actor, critic []int
	}
	rows := []arch{
		{[]int{128, 128, 64}, []int{256, 256, 64}},
		{[]int{256, 256, 128}, []int{512, 512, 128}},
		{[]int{128, 128, 128, 64}, []int{256, 256, 256, 64}},
		{[]int{256, 256, 256, 128}, []int{512, 512, 512, 128}},
		{[]int{128, 128, 128, 128, 64}, []int{256, 256, 256, 256, 64}},
		{[]int{256, 256, 256, 256, 128}, []int{512, 512, 512, 512, 128}},
		{[]int{128, 128, 128, 128, 128, 64}, []int{256, 256, 256, 256, 256, 64}},
		{[]int{256, 256, 256, 256, 256, 128}, []int{512, 512, 512, 512, 512, 128}},
	}
	div := func(ws []int) []int {
		out := make([]int, len(ws))
		for i, w := range ws {
			out[i] = w / shrink
			if out[i] < 8 {
				out[i] = 8
			}
		}
		return out
	}
	cat := knobs.MySQL(knobs.EngineCDB)
	w := workload.TPCC()
	t := Table{
		Title:  "Table 6: tuning performance by actor/critic architecture (TPC-C, 266 knobs)",
		Header: []string{"AHL", "actor neurons", "CHL", "critic neurons", "throughput", "latency99 (ms)", "iterations"},
	}
	for ri, a := range rows {
		seed := b.Seed + int64(9000+ri*17)
		cfg := warmConfig(b, cat, simdb.CDBB)
		cfg.DDPG.ActorHidden = div(a.actor)
		cfg.DDPG.CriticHidden = div(a.critic)
		cfg.Seed = seed
		tuner, err := core.New(cfg)
		if err != nil {
			return t, err
		}
		rep, err := tuner.OfflineTrain(func(ep int) *env.Env {
			return newEnv(knobs.EngineCDB, simdb.CDBB, cat, w, seed+int64(ep))
		}, scaledEpisodes(b, cat))
		if err != nil {
			return t, err
		}
		e := newEnv(knobs.EngineCDB, simdb.CDBB, cat, w, seed+90)
		res, err := tuner.OnlineTune(e, b.OnlineSteps, true)
		if err != nil {
			return t, err
		}
		conv := rep.ConvergedAt
		if conv == 0 {
			conv = rep.Iterations
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", len(a.actor)), fmtInts(div(a.actor)),
			fmt.Sprintf("%d", len(a.critic)), fmtInts(div(a.critic)),
			fmtF(res.BestPerf.Throughput), fmtF(res.BestPerf.Latency99),
			fmt.Sprintf("%d", conv),
		})
	}
	return t, nil
}

func fmtInts(xs []int) string {
	s := ""
	for i, x := range xs {
		if i > 0 {
			s += "-"
		}
		s += fmt.Sprintf("%d", x)
	}
	return s
}
