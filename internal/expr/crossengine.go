package expr

import (
	"fmt"

	"cdbtune/internal/knobs"
	"cdbtune/internal/simdb"
	"cdbtune/internal/workload"
)

// CrossEngine runs the same train-then-tune protocol against every engine
// family in one invocation — the two MySQL flavors' stand-in (CDB), the
// document store, the row store and the LSM engine — and reports default
// vs tuned externals side by side. One table answers the architectural
// question the engine abstraction exists for: does the tuner improve every
// engine family it can open, without engine-specific code?
//
// knobCap > 0 restricts each engine to the first knobCap knobs of its
// catalog (the major knobs lead every catalog); 0 tunes the full catalog.
func CrossEngine(b Budget, knobCap int) (Table, error) {
	cases := []struct {
		engine knobs.Engine
		inst   simdb.Instance
		w      workload.Workload
	}{
		{knobs.EngineCDB, simdb.CDBA, workload.SysbenchRW()},
		{knobs.EngineMongoDB, simdb.CDBE, workload.YCSB()},
		{knobs.EnginePostgres, simdb.CDBD, workload.TPCC()},
		{knobs.EngineLSM, simdb.CDBC, workload.YCSB()},
	}
	out := Table{
		Title: "Cross-engine: one tuner, four engine families",
		Header: []string{"engine", "instance", "workload", "knobs",
			"default tput", "tuned tput", "Δtput", "default p99 (ms)", "tuned p99 (ms)"},
	}
	for ci, c := range cases {
		cat := knobs.ForEngine(c.engine)
		if knobCap > 0 && cat.Len() > knobCap {
			idx := make([]int, knobCap)
			for i := range idx {
				idx[i] = i
			}
			cat = cat.Subset(idx)
		}
		seed := b.Seed + int64(7000+ci*100)

		// Defaults reference on a fresh instance.
		base, err := newEnv(c.engine, c.inst, cat, c.w, seed).Measure()
		if err != nil {
			return out, fmt.Errorf("%s defaults: %w", c.engine, err)
		}

		tuner, _, err := trainTuner(b, c.engine, c.inst, cat, []workload.Workload{c.w}, seed+10)
		if err != nil {
			return out, fmt.Errorf("%s train: %w", c.engine, err)
		}
		e := newEnv(c.engine, c.inst, cat, c.w, seed+90)
		res, err := tuner.OnlineTune(e, b.OnlineSteps, true)
		if err != nil {
			return out, fmt.Errorf("%s tune: %w", c.engine, err)
		}
		out.Rows = append(out.Rows, []string{
			c.engine.String(), c.inst.Name, c.w.Name, fmt.Sprintf("%d", cat.Len()),
			fmtF(base.Ext.Throughput), fmtF(res.BestPerf.Throughput),
			fmtPct(res.BestPerf.Throughput/base.Ext.Throughput - 1),
			fmtF(base.Ext.Latency99), fmtF(res.BestPerf.Latency99),
		})
	}
	return out, nil
}
