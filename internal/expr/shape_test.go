package expr

import (
	"strconv"
	"testing"
)

// TestPaperShapeSixWay is the repository's headline integration test: on
// Sysbench RW over CDB-A, the tuner ordering the paper reports must hold
// qualitatively — CDBTune clearly above the defaults and competitive with
// or above every baseline. It uses a reduced (but non-micro) budget, so
// it is skipped under -short.
func TestPaperShapeSixWay(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	b := Quick()
	b.Episodes = 25 // trimmed for test time; the bench suite uses the full quick budget
	tables, err := Fig9(b)
	if err != nil {
		t.Fatal(err)
	}
	get := func(tb Table, tuner string) float64 {
		for _, row := range tb.Rows {
			if row[0] == tuner {
				v, err := strconv.ParseFloat(row[1], 64)
				if err != nil {
					t.Fatalf("parsing %q: %v", row[1], err)
				}
				return v
			}
		}
		t.Fatalf("tuner %q missing from %s", tuner, tb.Title)
		return 0
	}
	for _, tb := range tables {
		def := get(tb, "cdb-mysql default")
		cdb := get(tb, "CDBTune")
		dba := get(tb, "DBA")
		ot := get(tb, "OtterTune")
		bc := get(tb, "BestConfig")
		if cdb < def*2 {
			t.Errorf("%s: CDBTune %v not clearly above default %v", tb.Title, cdb, def)
		}
		maxBase := dba
		if ot > maxBase {
			maxBase = ot
		}
		if bc > maxBase {
			maxBase = bc
		}
		// Paper shape: CDBTune leads; allow a small noise margin so a
		// single unlucky seed does not flake the suite.
		if cdb < maxBase*0.8 {
			t.Errorf("%s: CDBTune %v far below best baseline %v", tb.Title, cdb, maxBase)
		}
	}
}
