package expr

import (
	"fmt"

	"cdbtune/internal/core"
	"cdbtune/internal/dba"
	"cdbtune/internal/env"
	"cdbtune/internal/knobs"
	"cdbtune/internal/metrics"
	"cdbtune/internal/ottertune"
	"cdbtune/internal/rl/ddpg"
	"cdbtune/internal/simdb"
	"cdbtune/internal/workload"
)

// newEnv builds a fresh environment: a new instance of engine on inst
// driving w, exposing the knobs of cat. Engine dispatch goes through
// env.OpenEngine, so EngineLSM gets the LSM simulator.
func newEnv(engine knobs.Engine, inst simdb.Instance, cat *knobs.Catalog, w workload.Workload, seed int64) *env.Env {
	return env.New(env.OpenEngine(engine, inst, seed), cat, w)
}

// tunerConfig assembles a core.Config from the budget.
func tunerConfig(b Budget, cat *knobs.Catalog) core.Config {
	cfg := core.DefaultConfig(cat)
	cfg.StepsPerEpisode = b.StepsPerEpisode
	cfg.UpdatesPerStep = b.UpdatesPerStep
	cfg.Seed = b.Seed
	d := ddpg.DefaultConfig(metrics.NumMetrics, cat.Len())
	d.ActorHidden = b.ActorHidden
	d.CriticHidden = b.CriticHidden
	d.Seed = b.Seed
	cfg.DDPG = d
	return cfg
}

// scaledEpisodes grows the training budget with the action dimension.
func scaledEpisodes(b Budget, cat *knobs.Catalog) int {
	episodes := b.Episodes
	if scaled := b.Episodes * cat.Len() / 133; scaled > episodes {
		episodes = scaled
	}
	return episodes
}

// warmConfig is tunerConfig plus the default-configuration warm start for
// the given instance (DESIGN.md §5 item 8).
func warmConfig(b Budget, cat *knobs.Catalog, inst simdb.Instance) core.Config {
	cfg := tunerConfig(b, cat)
	cfg.DDPG.ActionBias = cat.Defaults(inst.HW.RAMGB, inst.HW.DiskGB)
	return cfg
}

// trainTuner offline-trains a CDBTune model on the given workloads
// (cycled across episodes) against the given instance. The episode budget
// scales with the action dimension: larger knob spaces need proportionally
// more try-and-error samples (the paper trains every configuration to
// convergence; a fixed budget would starve the 266-knob models).
func trainTuner(b Budget, engine knobs.Engine, inst simdb.Instance, cat *knobs.Catalog, ws []workload.Workload, seedBase int64) (*core.Tuner, core.TrainReport, error) {
	t, err := core.New(warmConfig(b, cat, inst))
	if err != nil {
		return nil, core.TrainReport{}, err
	}
	episodes := scaledEpisodes(b, cat)
	rep, err := t.OfflineTrain(func(ep int) *env.Env {
		w := ws[ep%len(ws)]
		return newEnv(engine, inst, cat, w, seedBase+int64(ep))
	}, episodes)
	return t, rep, err
}

// cdbDefault is the Tencent CDB shipped configuration: modestly better
// than the MySQL defaults (a bigger pool and log, more connections) but
// untuned for any particular workload.
func cdbDefault(e *env.Env) []float64 {
	hw := e.DB.Instance().HW
	x := e.Default()
	set := func(role knobs.Role, actual float64) {
		i := e.Cat.RoleIndex(role)
		if i < 0 {
			return
		}
		x[i] = e.Cat.Knobs[i].Normalize(actual, hw.RAMGB, hw.DiskGB)
	}
	set(knobs.RoleBufferPool, 0.25*hw.RAMGB*1024)
	set(knobs.RoleLogFileSize, 256)
	set(knobs.RoleMaxConnections, 800)
	set(knobs.RoleLogBufferSize, 16)
	return x
}

// buildRepo collects an OtterTune repository on the given workloads.
func buildRepo(b Budget, engine knobs.Engine, inst simdb.Instance, cat *knobs.Catalog, ws []workload.Workload, seed int64) (*ottertune.Repository, error) {
	envs := make([]*env.Env, len(ws))
	for i, w := range ws {
		envs[i] = newEnv(engine, inst, cat, w, seed+int64(i))
	}
	return ottertune.BuildRepository(envs, b.RepoSamples, dba.Recommend, seed)
}

// fmtF formats a float with one decimal for table cells.
func fmtF(v float64) string { return fmt.Sprintf("%.1f", v) }

// fmtPct formats a ratio as a signed percentage.
func fmtPct(v float64) string { return fmt.Sprintf("%+.2f%%", v*100) }
