package expr

import (
	"strings"
	"testing"
)

func TestPlotBasics(t *testing.T) {
	f := Figure{
		Title:  "test",
		XLabel: "steps",
		YLabel: "tps",
		Series: []Series{
			{Name: "up", X: []float64{0, 1, 2, 3}, Y: []float64{1, 2, 3, 4}},
			{Name: "down", X: []float64{0, 1, 2, 3}, Y: []float64{4, 3, 2, 1}},
		},
	}
	out := f.Plot(40, 10)
	if !strings.Contains(out, "test") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "* up") || !strings.Contains(out, "o down") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatal("markers missing")
	}
	// The rising series' first point is bottom-left, last top-right.
	lines := strings.Split(out, "\n")
	var plotLines []string
	for _, l := range lines {
		if strings.Contains(l, "|") {
			plotLines = append(plotLines, l)
		}
	}
	if len(plotLines) != 10 {
		t.Fatalf("plot rows = %d, want 10", len(plotLines))
	}
	top, bottom := plotLines[0], plotLines[len(plotLines)-1]
	if !strings.Contains(top, "*") && !strings.Contains(top, "&") {
		t.Fatalf("rising series missing from top row: %q", top)
	}
	if !strings.Contains(bottom, "*") && !strings.Contains(bottom, "&") {
		t.Fatalf("rising series missing from bottom row: %q", bottom)
	}
}

func TestPlotEmpty(t *testing.T) {
	f := Figure{Title: "empty"}
	if out := f.Plot(20, 8); !strings.Contains(out, "no data") {
		t.Fatalf("empty figure output: %q", out)
	}
}

func TestPlotConstantSeries(t *testing.T) {
	f := Figure{
		Title:  "flat",
		Series: []Series{{Name: "c", X: []float64{0, 1}, Y: []float64{5, 5}}},
	}
	out := f.Plot(20, 8) // must not divide by zero
	if !strings.Contains(out, "*") {
		t.Fatalf("flat series not drawn:\n%s", out)
	}
}

func TestPlotMinimumDimensions(t *testing.T) {
	f := Figure{Series: []Series{{Name: "s", X: []float64{0}, Y: []float64{0}}}}
	out := f.Plot(1, 1) // clamped up internally
	if len(out) == 0 {
		t.Fatal("no output")
	}
}
