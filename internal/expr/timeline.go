package expr

import (
	"bytes"
	"fmt"
	"math"
	"os"

	"cdbtune/internal/core"
	"cdbtune/internal/knobs"
	"cdbtune/internal/registry"
	"cdbtune/internal/simdb"
	"cdbtune/internal/workload"
)

// TimelineTelemetry exercises the dynamic-serving layer over a compressed
// 24-hour tenant day (workload.Diurnal24): a model trained on the steady
// base workload serves the timeline with the drift detector live, re-tuning
// in place each time the streamed metric fingerprint diverges from what the
// serving configuration was tuned for; a control run over the same day and
// seeds has the detector disabled, so its configuration goes stale as the
// phases shift. The tables report per-phase throughput for both runs, every
// drift-triggered re-tune (stale vs re-tuned throughput), and the safety
// accounting — the acceptance bar is at least one improving re-tune and
// zero unreverted guardrail violations. The figure plots both throughput
// curves against the scaled load curve, hour by simulated hour.
func TimelineTelemetry(b Budget) ([]Table, Figure, error) {
	var fig Figure
	// A compact knob subset keeps training in budget; the serving loop and
	// detector are what's under measurement, not the policy.
	full := knobs.MySQL(knobs.EngineCDB)
	idx := make([]int, 10)
	for i := range idx {
		idx[i] = i
	}
	cat := full.Subset(idx)
	inst, base := simdb.Table1()[0], workload.SysbenchRW()

	// Train the serving model on the stationary base profile — the
	// workload the tenant looked like before the day started.
	tuner, _, err := trainTuner(b, knobs.EngineCDB, inst, cat, []workload.Workload{base}, b.Seed)
	if err != nil {
		return nil, fig, err
	}

	// A throwaway registry holding the trained model gives the drift path
	// a warm-seed candidate, exercising the fingerprint lookup end to end.
	regDir, err := os.MkdirTemp("", "cdbtune-timeline-*")
	if err != nil {
		return nil, fig, err
	}
	defer os.RemoveAll(regDir)
	reg, err := registry.Open(regDir, registry.WithLogf(func(string, ...any) {}))
	if err != nil {
		return nil, fig, err
	}
	baseEnv := newEnv(knobs.EngineCDB, inst, cat, base, b.Seed)
	baseRes, err := baseEnv.Measure()
	if err != nil {
		return nil, fig, err
	}
	var buf bytes.Buffer
	if err := tuner.Save(&buf); err != nil {
		return nil, fig, err
	}
	stored, err := reg.Put(registry.Meta{
		Workload: base.Name, Instance: inst.Name,
		Fingerprint: registry.Fingerprint(baseRes.State, base, inst.HW),
	}, buf.Bytes())
	if err != nil {
		return nil, fig, err
	}

	serve := func(t *core.Tuner, threshold float64, warm bool) (core.DynamicReport, error) {
		e := newEnv(knobs.EngineCDB, inst, cat, base, b.Seed+1)
		e.Timeline = workload.Diurnal24(base)
		// Half the default compression: a re-tune (a few virtual minutes of
		// stress tests, deploys and restarts) then costs ~4 simulated hours
		// instead of ~9, so the drift-aware run still samples most of the
		// day's phases between re-tunes.
		e.Timeline.TimeScale = 30
		opts := core.DynamicOptions{
			HorizonHours: e.Timeline.TotalHours(),
			Drift:        core.DriftConfig{Threshold: threshold},
			ReTuneSteps:  3,
			FineTune:     true,
		}
		if warm {
			opts.WarmSeed = func(state []float64, w workload.Workload) (string, bool) {
				fp := registry.Fingerprint(state, w, inst.HW)
				mt, ok := reg.NearestWithin(fp, 0.5)
				if !ok {
					return "", false
				}
				if lerr := t.Load(bytes.NewReader(mt.Model)); lerr != nil {
					return "", false
				}
				return mt.Meta.ID, true
			}
		}
		return t.ServeDynamic(e, opts)
	}

	// Drift-aware run, then the stale-config control: an identically
	// trained model over the identical day with the detector muted (a
	// threshold no EWMA can reach).
	rep, err := serve(tuner, 0, true)
	if err != nil {
		return nil, fig, err
	}
	control, err := core.New(warmConfig(b, cat, inst))
	if err != nil {
		return nil, fig, err
	}
	if err := control.Load(bytes.NewReader(buf.Bytes())); err != nil {
		return nil, fig, err
	}
	staleRep, err := serve(control, math.Inf(1), false)
	if err != nil {
		return nil, fig, err
	}

	type phaseAgg struct {
		load, tuned, stale float64
		nT, nS             int
	}
	var order []string
	agg := map[string]*phaseAgg{}
	get := func(phase string) *phaseAgg {
		a := agg[phase]
		if a == nil {
			a = &phaseAgg{}
			agg[phase] = a
			order = append(order, phase)
		}
		return a
	}
	for _, s := range rep.Samples {
		a := get(s.Phase)
		a.load += s.Load
		a.tuned += s.Ext.Throughput
		a.nT++
	}
	for _, s := range staleRep.Samples {
		a := get(s.Phase)
		a.stale += s.Ext.Throughput
		a.nS++
	}

	phases := Table{
		Title:  "Per-phase throughput over a compressed 24h day (diurnal24; drift-aware vs stale config)",
		Header: []string{"phase", "mean load", "drift-aware tx/s", "stale tx/s", "delta"},
	}
	for _, name := range order {
		a := agg[name]
		tuned, stale := "-", "-"
		delta := "-"
		if a.nT > 0 {
			tuned = fmtF(a.tuned / float64(a.nT))
		}
		if a.nS > 0 {
			stale = fmtF(a.stale / float64(a.nS))
		}
		if a.nT > 0 && a.nS > 0 && a.stale > 0 {
			delta = fmtPct((a.tuned/float64(a.nT))/(a.stale/float64(a.nS)) - 1)
		}
		load := "-"
		if a.nT > 0 {
			load = fmt.Sprintf("%.2f", a.load/float64(a.nT))
		}
		phases.Rows = append(phases.Rows, []string{name, load, tuned, stale, delta})
	}

	retunes := Table{
		Title:  "Drift-triggered re-tunes (warm seed = registry nearest-model lookup)",
		Header: []string{"hour", "phase", "seed", "stale tx/s", "re-tuned tx/s", "delta", "reverts", "vetoes", "cost (vmin)"},
	}
	for _, rt := range rep.Retunes {
		delta := "-"
		if rt.Stale.Throughput > 0 {
			delta = fmtPct(rt.Tuned.Throughput/rt.Stale.Throughput - 1)
		}
		seed := rt.Seed
		if seed == "" {
			seed = "in-place"
		} else if seed == stored.ID {
			seed += " (base model)"
		}
		retunes.Rows = append(retunes.Rows, []string{
			fmt.Sprintf("%.1f", rt.Hour), rt.Phase, seed,
			fmtF(rt.Stale.Throughput), fmtF(rt.Tuned.Throughput), delta,
			fmt.Sprintf("%d", rt.Reverts), fmt.Sprintf("%d", rt.Vetoes),
			fmt.Sprintf("%.1f", rt.Seconds/60),
		})
	}

	summary := Table{
		Title:  "Dynamic serving summary (zero unreverted violations is the safety bar)",
		Header: []string{"metric", "drift-aware", "stale control"},
		Rows: [][]string{
			{"mean throughput (tx/s)", fmtF(rep.MeanThroughput()), fmtF(staleRep.MeanThroughput())},
			{"drifts detected", fmt.Sprintf("%d", rep.Drifts), fmt.Sprintf("%d", staleRep.Drifts)},
			{"re-tunes", fmt.Sprintf("%d", len(rep.Retunes)), fmt.Sprintf("%d", len(staleRep.Retunes))},
			{"reverts", fmt.Sprintf("%d", rep.Reverts), fmt.Sprintf("%d", staleRep.Reverts)},
			{"crashes", fmt.Sprintf("%d", rep.Crashes), fmt.Sprintf("%d", staleRep.Crashes)},
			{"unreverted violations", fmt.Sprintf("%d", rep.Unreverted), fmt.Sprintf("%d", staleRep.Unreverted)},
			{"simulated hours served", fmt.Sprintf("%.1f", rep.Hours), fmt.Sprintf("%.1f", staleRep.Hours)},
			{"virtual cost (minutes)", fmt.Sprintf("%.1f", rep.Seconds/60), fmt.Sprintf("%.1f", staleRep.Seconds/60)},
		},
	}

	// The load curve shares the throughput axis by scaling its 0.35–2.2×
	// multiplier range up to the drift-aware peak, so all three shapes are
	// comparable in one plot.
	peak, maxLoad := 0.0, 0.0
	for _, s := range rep.Samples {
		peak = math.Max(peak, s.Ext.Throughput)
		maxLoad = math.Max(maxLoad, s.Load)
	}
	if maxLoad == 0 {
		maxLoad = 1
	}
	tunedSeries := Series{Name: "drift-aware throughput"}
	loadSeries := Series{Name: fmt.Sprintf("load curve (scaled x%.0f)", peak/maxLoad)}
	for _, s := range rep.Samples {
		tunedSeries.X = append(tunedSeries.X, s.Hour)
		tunedSeries.Y = append(tunedSeries.Y, s.Ext.Throughput)
		loadSeries.X = append(loadSeries.X, s.Hour)
		loadSeries.Y = append(loadSeries.Y, s.Load/maxLoad*peak)
	}
	staleSeries := Series{Name: "stale-config throughput"}
	for _, s := range staleRep.Samples {
		staleSeries.X = append(staleSeries.X, s.Hour)
		staleSeries.Y = append(staleSeries.Y, s.Ext.Throughput)
	}
	fig = Figure{
		Title:  "Throughput tracking the compressed 24h load curve (re-tunes at drift marks)",
		XLabel: "simulated hour",
		YLabel: "txn/sec",
		Series: []Series{tunedSeries, staleSeries, loadSeries},
	}
	return []Table{phases, retunes, summary}, fig, nil
}
