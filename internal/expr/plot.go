package expr

import (
	"fmt"
	"math"
	"strings"
)

// Plot renders the figure's series as an ASCII chart (width×height
// characters of plot area, plus axes). Each series uses its own marker;
// expdriver prints this under the numeric listing so trends are visible
// in a terminal.
func (f Figure) Plot(width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 6 {
		height = 6
	}
	var xMin, xMax, yMin, yMax float64
	first := true
	for _, s := range f.Series {
		for i := range s.X {
			if first {
				xMin, xMax, yMin, yMax = s.X[i], s.X[i], s.Y[i], s.Y[i]
				first = false
				continue
			}
			xMin = math.Min(xMin, s.X[i])
			xMax = math.Max(xMax, s.X[i])
			yMin = math.Min(yMin, s.Y[i])
			yMax = math.Max(yMax, s.Y[i])
		}
	}
	if first {
		return "(no data)\n"
	}
	if xMax == xMin {
		xMax = xMin + 1
	}
	if yMax == yMin {
		yMax = yMin + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	markers := []byte{'*', 'o', '+', 'x', '#', '@'}
	for si, s := range f.Series {
		m := markers[si%len(markers)]
		for i := range s.X {
			c := int(math.Round((s.X[i] - xMin) / (xMax - xMin) * float64(width-1)))
			r := height - 1 - int(math.Round((s.Y[i]-yMin)/(yMax-yMin)*float64(height-1)))
			if c >= 0 && c < width && r >= 0 && r < height {
				if grid[r][c] != ' ' && grid[r][c] != m {
					grid[r][c] = '&' // overlapping series
				} else {
					grid[r][c] = m
				}
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", f.Title)
	for r, row := range grid {
		label := "          "
		if r == 0 {
			label = fmt.Sprintf("%9.4g ", yMax)
		} else if r == height-1 {
			label = fmt.Sprintf("%9.4g ", yMin)
		}
		fmt.Fprintf(&b, "%s|%s\n", label, string(row))
	}
	fmt.Fprintf(&b, "%s+%s\n", strings.Repeat(" ", 10), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s%-.4g%s%.4g  (%s)\n", strings.Repeat(" ", 11), xMin,
		strings.Repeat(" ", maxInt(1, width-12)), xMax, f.XLabel)
	for si, s := range f.Series {
		fmt.Fprintf(&b, "%s%c %s\n", strings.Repeat(" ", 11), markers[si%len(markers)], s.Name)
	}
	return b.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
