package expr

import (
	"fmt"
	"math"

	"cdbtune/internal/core"
	"cdbtune/internal/env"
	"cdbtune/internal/knobs"
	"cdbtune/internal/metrics"
	"cdbtune/internal/rl/dqn"
	"cdbtune/internal/rl/qlearn"
	"cdbtune/internal/simdb"
	"cdbtune/internal/workload"
)

// qdqnKnobs is the tiny subset Q-learning/DQN can even enumerate.
var qdqnKnobs = []string{"innodb_buffer_pool_size", "innodb_log_file_size", "innodb_flush_log_at_trx_commit"}

// QLearnDQN reproduces the §3.3 argument quantitatively: tabular
// Q-Learning and DQN against DDPG on the same tiny knob subset, plus the
// combinatorial blow-up that rules them out at paper scale (100^266
// discretized actions).
func QLearnDQN(b Budget, episodes int) (Table, error) {
	if episodes <= 0 {
		episodes = b.Episodes
	}
	full := knobs.MySQL(knobs.EngineCDB)
	var idx []int
	for _, n := range qdqnKnobs {
		idx = append(idx, full.Index(n))
	}
	cat := full.Subset(idx)
	w := workload.SysbenchRW()
	const levels = 5
	numActions := 1
	for range cat.Knobs {
		numActions *= levels
	}
	decode := func(a int) []float64 {
		x := make([]float64, cat.Len())
		for i := range x {
			x[i] = float64(a%levels) / float64(levels-1)
			a /= levels
		}
		return x
	}

	t := Table{
		Title: fmt.Sprintf("§3.3 ablation: Q-Learning / DQN / DDPG on %d knobs × %d levels (Sysbench RW, CDB-A)", cat.Len(), levels),
		Header: []string{"method", "action space", "state space", "best throughput",
			"notes"},
	}

	runDiscrete := func(act func(s []float64) int, update func(s []float64, a int, r float64, n []float64)) float64 {
		best := 0.0
		for ep := 0; ep < episodes; ep++ {
			e := newEnv(knobs.EngineCDB, simdb.CDBA, cat, w, b.Seed+int64(10000+ep))
			base, err := e.Measure()
			if err != nil {
				continue
			}
			state := metrics.Normalize(base.State)
			t0 := base.Ext.Throughput
			for step := 0; step < b.StepsPerEpisode; step++ {
				a := act(state)
				res, err := e.Step(decode(a))
				if err != nil {
					update(state, a, -10, state)
					break
				}
				r := (res.Ext.Throughput - t0) / t0
				next := metrics.Normalize(res.State)
				update(state, a, r, next)
				state = next
				if res.Ext.Throughput > best {
					best = res.Ext.Throughput
				}
			}
		}
		return best
	}

	// Tabular Q-learning over the hashed 63-dim state.
	qcfg := qlearn.DefaultConfig(numActions)
	qcfg.Seed = b.Seed
	qa := qlearn.New(qcfg)
	qBest := runDiscrete(
		func(s []float64) int { return qa.ActEpsilonGreedy(s) },
		func(s []float64, a int, r float64, n []float64) { qa.Update(s, a, r, n, false) },
	)
	t.Rows = append(t.Rows, []string{
		"Q-Learning", fmt.Sprintf("%d", numActions),
		fmt.Sprintf("%d distinct (no generalization)", qa.TableSize()),
		fmtF(qBest), "table grows with every state seen",
	})

	// DQN over the same discrete action set.
	dcfg := dqn.DefaultConfig(metrics.NumMetrics, numActions)
	dcfg.Seed = b.Seed
	da := dqn.New(dcfg)
	dBest := runDiscrete(
		func(s []float64) int { return da.ActEpsilonGreedy(s) },
		func(s []float64, a int, r float64, n []float64) {
			da.Observe(s, a, r, n, false)
			da.TrainStep()
		},
	)
	t.Rows = append(t.Rows, []string{
		"DQN", fmt.Sprintf("%d", numActions), "generalized by network",
		fmtF(dBest), "output layer = one unit per action",
	})

	// DDPG on the same subset: continuous actions, no enumeration.
	tuner, _, err := trainTuner(b, knobs.EngineCDB, simdb.CDBA, cat, []workload.Workload{w}, b.Seed+11000)
	if err != nil {
		return t, err
	}
	e := newEnv(knobs.EngineCDB, simdb.CDBA, cat, w, b.Seed+11090)
	res, err := tuner.OnlineTune(e, b.OnlineSteps, true)
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, []string{
		"DDPG (CDBTune)", "continuous", "generalized by network",
		fmtF(res.BestPerf.Throughput), "scales to 266 knobs",
	})

	// The blow-up row: the paper's 266 knobs × 100 levels.
	t.Rows = append(t.Rows, []string{
		"(any discrete method, paper scale)",
		fmt.Sprintf("100^266 ≈ 10^%d", int(266*math.Log10(100))),
		"10^126 discretized states", "-", "infeasible (§3.3)",
	})
	return t, nil
}

// AblationReplay compares prioritized vs uniform experience replay: §5.1
// reports prioritized replay doubling convergence speed.
func AblationReplay(b Budget) (Table, error) {
	cat := knobs.MySQL(knobs.EngineCDB)
	w := workload.SysbenchRW()
	t := Table{
		Title:  "Ablation: prioritized vs uniform experience replay (Sysbench RW, CDB-A)",
		Header: []string{"replay", "iterations to converge", "best throughput"},
	}
	for _, prioritized := range []bool{true, false} {
		seed := b.Seed + 12000
		cfg := warmConfig(b, cat, simdb.CDBA)
		cfg.DDPG.Prioritized = prioritized
		cfg.Seed = seed
		tuner, err := core.New(cfg)
		if err != nil {
			return t, err
		}
		rep, err := tuner.OfflineTrain(func(ep int) *env.Env {
			return newEnv(knobs.EngineCDB, simdb.CDBA, cat, w, seed+int64(ep))
		}, scaledEpisodes(b, cat))
		if err != nil {
			return t, err
		}
		conv := rep.ConvergedAt
		if conv == 0 {
			conv = rep.Iterations
		}
		name := "uniform"
		if prioritized {
			name = "prioritized"
		}
		t.Rows = append(t.Rows, []string{name, fmt.Sprintf("%d", conv), fmtF(rep.BestPerf.Throughput)})
	}
	return t, nil
}

// AblationAction compares the paper's action representation (§3.2: one
// action sets all knob values at once) against an incremental per-step
// delta representation.
func AblationAction(b Budget) (Table, error) {
	cat := knobs.MySQL(knobs.EngineCDB)
	w := workload.SysbenchRW()
	t := Table{
		Title:  "Ablation: absolute full-vector actions vs incremental delta actions (Sysbench RW, CDB-A)",
		Header: []string{"action mode", "best throughput", "latency99 (ms)"},
	}
	for _, delta := range []float64{0, 0.15} {
		seed := b.Seed + 13000
		cfg := warmConfig(b, cat, simdb.CDBA)
		cfg.Seed = seed
		tuner, err := core.New(cfg)
		if err != nil {
			return t, err
		}
		mk := func(ep int) *env.Env {
			e := newEnv(knobs.EngineCDB, simdb.CDBA, cat, w, seed+int64(ep))
			e.DeltaScale = delta
			return e
		}
		if _, err := tuner.OfflineTrain(mk, scaledEpisodes(b, cat)); err != nil {
			return t, err
		}
		e := mk(9999)
		res, err := tuner.OnlineTune(e, b.OnlineSteps, true)
		if err != nil {
			return t, err
		}
		name := "absolute (paper §3.2)"
		if delta > 0 {
			name = fmt.Sprintf("delta ±%.2f per step", delta)
		}
		t.Rows = append(t.Rows, []string{name, fmtF(res.BestPerf.Throughput), fmtF(res.BestPerf.Latency99)})
	}
	return t, nil
}
