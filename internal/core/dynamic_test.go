package core

import (
	"context"
	"testing"

	"cdbtune/internal/chaos"
	"cdbtune/internal/env"
	"cdbtune/internal/knobs"
	"cdbtune/internal/simdb"
	"cdbtune/internal/workload"
)

func dynamicEnv(t *testing.T, cat *knobs.Catalog, seed int64) *env.Env {
	t.Helper()
	db := simdb.New(knobs.EngineCDB, simdb.CDBA, seed)
	base := workload.SysbenchRW()
	e := env.New(db, cat, base)
	e.Timeline = workload.FlashCrowd(base)
	return e
}

func TestServeDynamicRequiresTimeline(t *testing.T) {
	cat := testCat(t)
	tn, err := New(testConfig(t, cat))
	if err != nil {
		t.Fatal(err)
	}
	db := simdb.New(knobs.EngineCDB, simdb.CDBA, 1)
	e := env.New(db, cat, workload.SysbenchRW())
	if _, err := tn.ServeDynamic(e, DynamicOptions{}); err == nil {
		t.Fatal("ServeDynamic accepted a stationary environment")
	}
}

func TestDynamicServeRetunesOnBurst(t *testing.T) {
	cat := testCat(t)
	tn, err := New(testConfig(t, cat))
	if err != nil {
		t.Fatal(err)
	}
	e := dynamicEnv(t, cat, 11)

	var events []DynamicEvent
	rep, err := tn.ServeDynamic(e, DynamicOptions{
		HorizonHours: 6,
		WarmSeed: func(state []float64, w workload.Workload) (string, bool) {
			if len(state) == 0 || w.Threads == 0 {
				t.Error("WarmSeed called with empty state or workload")
			}
			return "test-seed", true
		},
		OnEvent: func(ev DynamicEvent) { events = append(events, ev) },
	})
	if err != nil {
		t.Fatalf("ServeDynamic: %v", err)
	}
	if rep.Drifts < 1 || len(rep.Retunes) < 1 {
		t.Fatalf("drifts %d, retunes %d — want ≥ 1 each", rep.Drifts, len(rep.Retunes))
	}
	// The 3× flash crowd is the drift: the first re-tune must trigger
	// inside the burst phase.
	if got := rep.Retunes[0].Phase; got != "burst" {
		t.Errorf("first re-tune phase = %q, want burst", got)
	}
	if rep.Unreverted != 0 {
		t.Errorf("Unreverted = %d, want 0", rep.Unreverted)
	}
	if rep.Retunes[0].Seed != "test-seed" {
		t.Errorf("retune seed = %q, want test-seed", rep.Retunes[0].Seed)
	}
	// Events mirror the report: at least one drift followed by a retune.
	var sawDrift, sawRetune bool
	for _, ev := range events {
		switch ev.Kind {
		case "drift":
			sawDrift = true
		case "retune":
			if !sawDrift {
				t.Error("retune event before any drift event")
			}
			sawRetune = true
		}
	}
	if !sawDrift || !sawRetune {
		t.Errorf("event stream missing drift/retune: %v", events)
	}
	if len(rep.Samples) == 0 || rep.Final.Throughput <= 0 {
		t.Errorf("report lacks samples (%d) or final measurement (%v)", len(rep.Samples), rep.Final)
	}
}

func TestDynamicServeRevertsOnChaos(t *testing.T) {
	cat := testCat(t)
	tn, err := New(testConfig(t, cat))
	if err != nil {
		t.Fatal(err)
	}
	base := workload.SysbenchRW()
	inner := simdb.New(knobs.EngineCDB, simdb.CDBA, 5)
	inj := chaos.New(chaos.Config{Seed: 5, CrashProb: 0.22})
	e := env.New(inj.Wrap(inner), cat, base)
	e.Timeline = workload.FlashCrowd(base)

	var stats []EpisodeStats
	rep, err := tn.ServeDynamic(e, DynamicOptions{
		HorizonHours: 8,
		OnEpisode:    func(s EpisodeStats) { stats = append(stats, s) },
	})
	if err != nil {
		t.Fatalf("ServeDynamic under chaos: %v", err)
	}
	if rep.Crashes < 1 {
		t.Fatalf("chaos injected no crashes (counters %+v)", inj.Counters())
	}
	if rep.Reverts < 1 {
		t.Fatalf("crashes observed (%d) but no revert recorded", rep.Crashes)
	}
	// Every crash was recovered: the window ends healthy.
	if rep.Unreverted != 0 {
		t.Fatalf("Unreverted = %d, want 0", rep.Unreverted)
	}
	if rep.Final.Throughput <= 0 {
		t.Fatalf("final measurement missing: %+v", rep.Final)
	}
	// EpisodeStats records carry the drift telemetry fields.
	for _, s := range stats {
		if s.Phase == "" || s.DriftEWMA <= 0 {
			t.Errorf("retune EpisodeStats missing drift fields: %+v", s)
		}
	}
}

func TestDynamicServeCancellation(t *testing.T) {
	cat := testCat(t)
	tn, err := New(testConfig(t, cat))
	if err != nil {
		t.Fatal(err)
	}
	e := dynamicEnv(t, cat, 3)
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	_, err = tn.ServeDynamic(e, DynamicOptions{
		HorizonHours: 100,
		Ctx:          ctx,
		OnSample: func(DynamicSample) {
			n++
			if n == 2 {
				cancel()
			}
		},
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n > 3 {
		t.Fatalf("kept sampling after cancellation (%d samples)", n)
	}
}

// TestDriftSmoke is the `make drift-smoke` gate: a compressed flash-crowd
// timeline must produce at least one drift-triggered re-tune with zero
// unreverted guardrail violations.
func TestDriftSmoke(t *testing.T) {
	cat := testCat(t)
	tn, err := New(testConfig(t, cat))
	if err != nil {
		t.Fatal(err)
	}
	e := dynamicEnv(t, cat, 1)
	rep, err := tn.ServeDynamic(e, DynamicOptions{HorizonHours: 6})
	if err != nil {
		t.Fatalf("ServeDynamic: %v", err)
	}
	if len(rep.Retunes) < 1 {
		t.Fatalf("no drift-triggered re-tune in %v simulated hours (%d drifts)", rep.Hours, rep.Drifts)
	}
	if rep.Unreverted != 0 {
		t.Fatalf("unreverted guardrail violations: %d", rep.Unreverted)
	}
	t.Logf("drift smoke: %d samples, %d drifts, %d retunes, %d reverts over %.1f simulated hours",
		len(rep.Samples), rep.Drifts, len(rep.Retunes), rep.Reverts, rep.Hours)
}
