package core

import (
	"bytes"
	"testing"

	"cdbtune/internal/env"
	"cdbtune/internal/knobs"
	"cdbtune/internal/metrics"
	"cdbtune/internal/reward"
	"cdbtune/internal/rl/ddpg"
	"cdbtune/internal/simdb"
	"cdbtune/internal/workload"
)

// testCat is a 10-knob subset covering the highest-impact roles, keeping
// DDPG training inside unit-test time.
func testCat(t *testing.T) *knobs.Catalog {
	t.Helper()
	full := knobs.MySQL(knobs.EngineCDB)
	names := []string{
		"innodb_buffer_pool_size", "innodb_log_file_size", "innodb_log_files_in_group",
		"innodb_flush_log_at_trx_commit", "sync_binlog", "innodb_read_io_threads",
		"innodb_write_io_threads", "max_connections", "innodb_io_capacity",
		"query_cache_size",
	}
	idx := make([]int, len(names))
	for i, n := range names {
		idx[i] = full.Index(n)
		if idx[i] < 0 {
			t.Fatalf("missing knob %s", n)
		}
	}
	return full.Subset(idx)
}

func testConfig(t *testing.T, cat *knobs.Catalog) Config {
	t.Helper()
	cfg := DefaultConfig(cat)
	d := ddpg.DefaultConfig(metrics.NumMetrics, cat.Len())
	d.ActorHidden = []int{32, 32}
	d.CriticHidden = []int{64, 32}
	cfg.DDPG = d
	cfg.StepsPerEpisode = 10
	cfg.UpdatesPerStep = 1
	return cfg
}

func mkEnvFactory(cat *knobs.Catalog, w workload.Workload, base int64) EnvFactory {
	return func(ep int) *env.Env {
		db := simdb.New(knobs.EngineCDB, simdb.CDBA, base+int64(ep))
		return env.New(db, cat, w)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil catalog must error")
	}
	cat := testCat(t)
	cfg := DefaultConfig(cat)
	cfg.DDPG.ActionDim = 3 // wrong on purpose
	if _, err := New(cfg); err == nil {
		t.Fatal("action-dim mismatch must error")
	}
}

func TestDefaultsFilled(t *testing.T) {
	cat := testCat(t)
	tn, err := New(Config{Cat: cat})
	if err != nil {
		t.Fatal(err)
	}
	cfg := tn.Config()
	if cfg.CT != 0.5 || cfg.CL != 0.5 {
		t.Fatalf("CT/CL defaults = %v/%v", cfg.CT, cfg.CL)
	}
	if cfg.StepsPerEpisode == 0 || cfg.UpdatesPerStep == 0 || cfg.RewardScale == 0 {
		t.Fatal("zero-valued defaults not filled")
	}
	if cfg.DDPG.ActionDim != cat.Len() || cfg.DDPG.StateDim != metrics.NumMetrics {
		t.Fatalf("DDPG dims %d/%d", cfg.DDPG.StateDim, cfg.DDPG.ActionDim)
	}
}

func TestOfflineTrainRuns(t *testing.T) {
	cat := testCat(t)
	tn, err := New(testConfig(t, cat))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := tn.OfflineTrain(mkEnvFactory(cat, workload.SysbenchRW(), 100), 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Episodes != 4 {
		t.Fatalf("Episodes = %d", rep.Episodes)
	}
	if rep.Iterations == 0 || tn.Iterations() != rep.Iterations {
		t.Fatalf("Iterations bookkeeping broken: %d vs %d", rep.Iterations, tn.Iterations())
	}
	if rep.BestPerf.Throughput <= 0 {
		t.Fatal("no performance recorded")
	}
	if tn.Agent().Memory.Len() == 0 {
		t.Fatal("memory pool empty after training")
	}
}

func TestOnlineTuneProtocol(t *testing.T) {
	cat := testCat(t)
	tn, err := New(testConfig(t, cat))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn.OfflineTrain(mkEnvFactory(cat, workload.SysbenchRW(), 200), 3); err != nil {
		t.Fatal(err)
	}
	e := mkEnvFactory(cat, workload.SysbenchRW(), 300)(0)
	res, err := tn.OnlineTune(e, 5, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History)+res.Crashes != 5 {
		t.Fatalf("history %d + crashes %d != 5 steps", len(res.History), res.Crashes)
	}
	if res.BestPerf.Throughput < res.Initial.Throughput {
		t.Fatal("best-of-steps must never be below the initial performance")
	}
	if len(res.Best) != cat.Len() {
		t.Fatalf("best config dim %d", len(res.Best))
	}
	// Table 2 shape: the 5-step request costs ≈ 15-35 virtual minutes.
	if res.Seconds < 10*60 || res.Seconds > 45*60 {
		t.Fatalf("online request took %v virtual minutes, want ≈25", res.Seconds/60)
	}
	// The best configuration must be deployed at return. Compare in
	// actual-value space: discrete knobs round, so normalized values
	// differ legitimately.
	hw := e.DB.Instance().HW
	cur := e.DB.CurrentKnobs(e.Cat)
	for i, k := range e.Cat.Knobs {
		got := k.Value(cur[i], hw.RAMGB, hw.DiskGB)
		want := k.Value(res.Best[i], hw.RAMGB, hw.DiskGB)
		if got != want {
			t.Fatalf("knob %s not deployed: %v vs %v", k.Name, got, want)
		}
	}
}

func TestOnlineTuneDefaultSteps(t *testing.T) {
	cat := testCat(t)
	tn, err := New(testConfig(t, cat))
	if err != nil {
		t.Fatal(err)
	}
	e := mkEnvFactory(cat, workload.TPCC(), 400)(0)
	res, err := tn.OnlineTune(e, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History)+res.Crashes != 5 {
		t.Fatalf("default steps should be 5, got %d", len(res.History)+res.Crashes)
	}
}

func TestTrainingImprovesPolicy(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	cat := testCat(t)
	cfg := testConfig(t, cat)
	cfg.UpdatesPerStep = 2
	tn, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := workload.SysbenchRW()
	evalPolicy := func() float64 {
		e := mkEnvFactory(cat, w, 900)(0)
		res, err := tn.OnlineTune(e, 3, false)
		if err != nil {
			t.Fatal(err)
		}
		return res.BestPerf.Throughput
	}
	before := evalPolicy()
	if _, err := tn.OfflineTrain(mkEnvFactory(cat, w, 500), 30); err != nil {
		t.Fatal(err)
	}
	after := evalPolicy()
	if after <= before {
		t.Fatalf("training did not improve the policy: %v -> %v", before, after)
	}
	// The trained policy must clearly beat the default configuration.
	e := mkEnvFactory(cat, w, 950)(0)
	base, err := e.Measure()
	if err != nil {
		t.Fatal(err)
	}
	if after < base.Ext.Throughput*1.5 {
		t.Fatalf("trained policy %v is not clearly above default %v", after, base.Ext.Throughput)
	}
}

func TestCrashGivesNegativeRewardAndSurvives(t *testing.T) {
	cat := testCat(t)
	tn, err := New(testConfig(t, cat))
	if err != nil {
		t.Fatal(err)
	}
	// Force the crash path deterministically: the remembered best config
	// (proposed first by OnlineTune) points into the crash zone.
	crash := make([]float64, cat.Len())
	for i := range crash {
		crash[i] = 0.5
	}
	crash[cat.Index("innodb_log_file_size")] = 1
	crash[cat.Index("innodb_log_files_in_group")] = 1
	tn.Agent().SetBCTarget(crash)
	e := mkEnvFactory(cat, workload.SysbenchWO(), 600)(0)
	res, err := tn.OnlineTune(e, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashes == 0 {
		t.Fatal("crash-zone recommendation must be recorded as a crash")
	}
	// The request survives: remaining steps ran and the result is sane.
	if res.BestPerf.Throughput < res.Initial.Throughput {
		t.Fatal("crash recovery lost the initial configuration")
	}
}

func TestRewardScaleClipsCrash(t *testing.T) {
	cat := testCat(t)
	tn, err := New(testConfig(t, cat))
	if err != nil {
		t.Fatal(err)
	}
	// CrashReward × RewardScale = −10, within ±RewardClip.
	cfg := tn.Config()
	scaled := float64(reward.CrashReward) * cfg.RewardScale
	if scaled < -cfg.RewardClip || scaled > 0 {
		t.Fatalf("scaled crash reward %v outside (−clip, 0)", scaled)
	}
}

func TestSaveLoadTuner(t *testing.T) {
	cat := testCat(t)
	tn, err := New(testConfig(t, cat))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn.OfflineTrain(mkEnvFactory(cat, workload.TPCC(), 700), 2); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tn.Save(&buf); err != nil {
		t.Fatal(err)
	}
	tn2, err := New(testConfig(t, cat))
	if err != nil {
		t.Fatal(err)
	}
	if err := tn2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	state := make([]float64, metrics.NumMetrics)
	a, b := tn.Agent().Act(state), tn2.Agent().Act(state)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("reloaded model differs")
		}
	}
}

func TestParallelTraining(t *testing.T) {
	cat := testCat(t)
	tn, err := New(testConfig(t, cat))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := tn.OfflineTrainParallel(mkEnvFactory(cat, workload.SysbenchRW(), 800), 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Episodes != 8 {
		t.Fatalf("parallel training ran %d episodes, want 8", rep.Episodes)
	}
	if rep.Iterations == 0 {
		t.Fatal("no iterations recorded")
	}
	// Single-worker path falls through to sequential.
	tn2, _ := New(testConfig(t, cat))
	rep2, err := tn2.OfflineTrainParallel(mkEnvFactory(cat, workload.SysbenchRW(), 850), 2, 1)
	if err != nil || rep2.Episodes != 2 {
		t.Fatalf("sequential fallback: %v, %d episodes", err, rep2.Episodes)
	}
}

func TestMismatchedEnvRejected(t *testing.T) {
	cat := testCat(t)
	tn, err := New(testConfig(t, cat))
	if err != nil {
		t.Fatal(err)
	}
	other := knobs.MySQL(knobs.EngineCDB).Subset([]int{0, 1})
	_, err = tn.OfflineTrain(mkEnvFactory(other, workload.TPCC(), 860), 1)
	if err == nil {
		t.Fatal("knob-count mismatch must error")
	}
}

func TestOnlineTuneFeedsMemoryPool(t *testing.T) {
	// §2.1.1 incremental training: tuning requests add their transitions
	// to the memory pool.
	cat := testCat(t)
	tn, err := New(testConfig(t, cat))
	if err != nil {
		t.Fatal(err)
	}
	before := tn.Agent().Memory.Len()
	e := mkEnvFactory(cat, workload.TPCC(), 880)(0)
	if _, err := tn.OnlineTune(e, 4, true); err != nil {
		t.Fatal(err)
	}
	if got := tn.Agent().Memory.Len(); got != before+4 {
		t.Fatalf("memory grew by %d, want 4", got-before)
	}
}

func TestSnapshotSelectionKeepsBestPolicy(t *testing.T) {
	cat := testCat(t)
	cfg := testConfig(t, cat)
	cfg.SnapshotEvery = 1
	tn, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn.OfflineTrain(mkEnvFactory(cat, workload.SysbenchRW(), 910), 6); err != nil {
		t.Fatal(err)
	}
	if tn.bestSnapshot == nil {
		t.Fatal("no snapshot was taken")
	}
	if tn.bestEval <= 0 {
		t.Fatalf("bestEval = %v", tn.bestEval)
	}
}

func TestSnapshotDisabled(t *testing.T) {
	cat := testCat(t)
	cfg := testConfig(t, cat)
	cfg.SnapshotEvery = -1
	tn, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn.OfflineTrain(mkEnvFactory(cat, workload.SysbenchRW(), 920), 3); err != nil {
		t.Fatal(err)
	}
	if tn.bestSnapshot != nil {
		t.Fatal("snapshots taken despite SnapshotEvery=-1")
	}
}

func TestBestActionTracked(t *testing.T) {
	cat := testCat(t)
	tn, err := New(testConfig(t, cat))
	if err != nil {
		t.Fatal(err)
	}
	if tn.Agent().BCTarget() != nil {
		t.Fatal("fresh tuner must have no remembered best")
	}
	if _, err := tn.OfflineTrain(mkEnvFactory(cat, workload.SysbenchRW(), 930), 3); err != nil {
		t.Fatal(err)
	}
	best := tn.Agent().BCTarget()
	if best == nil || len(best) != cat.Len() {
		t.Fatalf("remembered best missing or wrong dim: %v", best)
	}
	if tn.bestActionPerf <= 0 {
		t.Fatalf("bestActionPerf = %v", tn.bestActionPerf)
	}
}
