package core

import (
	"testing"

	"cdbtune/internal/env"
	"cdbtune/internal/knobs"
	"cdbtune/internal/metrics"
	"cdbtune/internal/simdb"
	"cdbtune/internal/workload"
)

// crashConfig is a normalized configuration inside the simulator's crash
// zone: the redo log group exceeds the disk budget (§5.2.3).
func crashConfig(t *testing.T, cat *knobs.Catalog) []float64 {
	t.Helper()
	x := make([]float64, cat.Len())
	for i := range x {
		x[i] = 0.5
	}
	for _, n := range []string{"innodb_log_file_size", "innodb_log_files_in_group"} {
		i := cat.Index(n)
		if i < 0 {
			t.Fatalf("missing knob %s", n)
		}
		x[i] = 1
	}
	return x
}

func sameSlice(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// A single parallel worker must reproduce serial training exactly: same
// report, same annealing schedule, same final policy.
func TestParallelSingleWorkerMatchesSerial(t *testing.T) {
	cat := testCat(t)
	w := workload.SysbenchRW()
	run := func(parallel bool) (*Tuner, TrainReport) {
		tn, err := New(testConfig(t, cat))
		if err != nil {
			t.Fatal(err)
		}
		var rep TrainReport
		if parallel {
			rep, err = tn.OfflineTrainParallel(mkEnvFactory(cat, w, 1000), 6, 1)
		} else {
			rep, err = tn.OfflineTrain(mkEnvFactory(cat, w, 1000), 6)
		}
		if err != nil {
			t.Fatal(err)
		}
		return tn, rep
	}
	tnSerial, repSerial := run(false)
	tnPar, repPar := run(true)
	if repSerial != repPar {
		t.Fatalf("reports differ:\nserial   %+v\nparallel %+v", repSerial, repPar)
	}
	if got, want := tnPar.Agent().Noise.Scale(), tnSerial.Agent().Noise.Scale(); got != want {
		t.Fatalf("noise scale %v, serial %v", got, want)
	}
	state := make([]float64, metrics.NumMetrics)
	if !sameSlice(tnSerial.Agent().Act(state), tnPar.Agent().Act(state)) {
		t.Fatal("single-worker parallel training produced a different policy than serial")
	}
}

// With several workers the exploration scale must still follow the serial
// annealing schedule — one decay per completed episode — and the telemetry
// stream must report every episode exactly once.
func TestParallelNoiseAnnealingAndTelemetry(t *testing.T) {
	cat := testCat(t)
	cfg := testConfig(t, cat)
	tn, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const episodes, workers = 8, 4
	var recs []EpisodeStats
	rep, err := tn.OfflineTrainOpts(mkEnvFactory(cat, workload.SysbenchRW(), 1100), TrainOptions{
		Episodes:  episodes,
		Workers:   workers,
		OnEpisode: func(s EpisodeStats) { recs = append(recs, s) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Episodes != episodes || len(recs) != episodes {
		t.Fatalf("episodes %d, telemetry records %d, want %d", rep.Episodes, len(recs), episodes)
	}
	// Replicate the canonical schedule: sigma·0.99 per completed episode,
	// floored at MinSigma — the k-th record must sit on it no matter which
	// worker ran the episode.
	sigma := cfg.DDPG.NoiseSigma
	seen := make(map[int]bool)
	var vsum float64
	for k, r := range recs {
		sigma *= 0.99
		if sigma < 0.01 {
			sigma = 0.01
		}
		if r.NoiseSigma != sigma {
			t.Fatalf("record %d: sigma %v off the shared schedule %v", k, r.NoiseSigma, sigma)
		}
		if r.Episode < 0 || r.Episode >= episodes || seen[r.Episode] {
			t.Fatalf("episode %d missing or reported twice", r.Episode)
		}
		seen[r.Episode] = true
		if r.Worker < 0 || r.Worker >= workers {
			t.Fatalf("worker id %d out of range", r.Worker)
		}
		if r.Steps != cfg.StepsPerEpisode {
			t.Fatalf("record %d: %d steps, want %d", k, r.Steps, cfg.StepsPerEpisode)
		}
		if r.VirtualSeconds <= 0 {
			t.Fatalf("record %d: no virtual time charged", k)
		}
		vsum += r.VirtualSeconds
	}
	if got := tn.Agent().Noise.Scale(); got != sigma {
		t.Fatalf("final noise scale %v, want %v after %d episodes", got, sigma, episodes)
	}
	if vsum != rep.VirtualSeconds {
		t.Fatalf("telemetry seconds %v != report %v", vsum, rep.VirtualSeconds)
	}
	if recs[0].String() == "" {
		t.Fatal("empty telemetry log line")
	}
}

// The §C.1.1 convergence rule must fire on the parallel path too: with a
// one-episode window and a huge tolerance, every episode after the first
// counts as flat.
func TestParallelConvergenceReported(t *testing.T) {
	cat := testCat(t)
	cfg := testConfig(t, cat)
	cfg.ConvergeWindow = 1
	cfg.ConvergeEps = 10
	tn, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := tn.OfflineTrainParallel(mkEnvFactory(cat, workload.SysbenchRW(), 1200), 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Fatal("training did not report convergence")
	}
	if rep.ConvergedAt <= 0 || rep.ConvergedAt > rep.Iterations {
		t.Fatalf("ConvergedAt = %d outside (0, %d]", rep.ConvergedAt, rep.Iterations)
	}
}

// An episode that fails must not be counted as completed.
func TestParallelErrorDoesNotCountEpisodes(t *testing.T) {
	cat := testCat(t)
	tn, err := New(testConfig(t, cat))
	if err != nil {
		t.Fatal(err)
	}
	other := knobs.MySQL(knobs.EngineCDB).Subset([]int{0, 1})
	rep, err := tn.OfflineTrainParallel(mkEnvFactory(other, workload.TPCC(), 1300), 4, 2)
	if err == nil {
		t.Fatal("knob-count mismatch must error")
	}
	if rep.Episodes != 0 {
		t.Fatalf("errored episodes counted as completed: %d", rep.Episodes)
	}
}

// After a crash the next recommendation must condition on the re-measured
// recovered instance, not the stale pre-crash state.
func TestOnlineTuneCrashRecoveryConditionsOnRecoveredState(t *testing.T) {
	cat := testCat(t)
	tn, err := New(testConfig(t, cat))
	if err != nil {
		t.Fatal(err)
	}
	// The remembered best config — proposed first by OnlineTune — points
	// into the crash zone, so step 0 crashes deterministically.
	tn.Agent().SetBCTarget(crashConfig(t, cat))
	e := mkEnvFactory(cat, workload.SysbenchWO(), 640)(0)
	const steps = 3
	res, err := tn.OnlineTune(e, steps, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashes == 0 {
		t.Fatal("crash-zone recommendation must crash")
	}
	// Run accounting: one initial measurement, one stress test per step
	// (crashed steps included), one recovery re-measurement per crash.
	if got, want := e.DB.Runs(), 1+steps+res.Crashes; got != want {
		t.Fatalf("stress-test runs = %d, want %d (crash recovery must re-measure)", got, want)
	}
	trs := tn.Agent().Memory.Transitions()
	if len(trs) != steps {
		t.Fatalf("%d transitions stored, want %d", len(trs), steps)
	}
	// Crash transitions are the terminal self-loops; the step after one
	// must start from a freshly measured state.
	ci := -1
	for i := 0; i < len(trs)-1; i++ {
		if trs[i].Done && sameSlice(trs[i].NextState, trs[i].State) {
			ci = i
			break
		}
	}
	if ci < 0 {
		t.Fatal("no crash transition stored")
	}
	post := trs[ci+1]
	if sameSlice(post.State, trs[ci].State) {
		t.Fatal("post-crash step conditioned on the stale pre-crash state")
	}
	// fineTune=false means the model never changed, so the stored action
	// must be exactly the greedy policy at the stored (recovered) state.
	if !sameSlice(post.Action, tn.Agent().Act(post.State)) {
		t.Fatal("post-crash action was not computed from the recovered state")
	}
}

// Offline training pays for crash recovery too: every crashed step is
// followed by a recovery re-measurement on the same instance.
func TestOfflineTrainRemeasuresAfterCrash(t *testing.T) {
	cat := testCat(t)
	cfg := testConfig(t, cat)
	cfg.SnapshotEvery = -1 // keep each episode's runs on its own env
	// Warm-start the policy inside the crash zone with near-zero
	// exploration, so every step of every episode crashes.
	cfg.DDPG.ActionBias = crashConfig(t, cat)
	cfg.DDPG.NoiseSigma = 1e-9
	tn, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var dbs []*simdb.DB
	w := workload.SysbenchRW()
	mk := func(ep int) *env.Env {
		db := simdb.New(knobs.EngineCDB, simdb.CDBA, 1400+int64(ep))
		dbs = append(dbs, db)
		return env.New(db, cat, w)
	}
	const episodes = 2
	rep, err := tn.OfflineTrain(mk, episodes)
	if err != nil {
		t.Fatal(err)
	}
	if want := episodes * cfg.StepsPerEpisode; rep.Crashes != want {
		t.Fatalf("crashes = %d, want every step (%d)", rep.Crashes, want)
	}
	var runs int
	for _, db := range dbs {
		runs += db.Runs()
	}
	// Per episode: one initial measurement, one stress test per step, one
	// recovery re-measurement per crash (here: per step).
	if want := episodes * (1 + 2*cfg.StepsPerEpisode); runs != want {
		t.Fatalf("stress-test runs = %d, want %d (crash recovery must re-measure)", runs, want)
	}
	if rep.VirtualSeconds <= 0 {
		t.Fatal("no virtual time charged")
	}
}
