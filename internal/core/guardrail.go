package core

import (
	"math"
	"sync"
)

// Guardrail is the online-tuning safety net OnlineTuneGuarded consults:
// it tracks the best-known-good configuration of the current request,
// reverts the instance to it after K consecutive failed or crashed steps,
// and remembers near-crash knob regions — across requests — so a
// recommendation proposing to re-enter one is pulled back toward known
// good territory before deployment. This is the OnlineTune-style safety
// contract ("Towards Dynamic and Safe Configuration Tuning for Cloud
// Databases") grafted onto CDBTune's recommendation loop: exploration may
// fail, but a production tenant is never left running a crashing
// configuration.
type Guardrail struct {
	// K is the consecutive-failure budget before a revert (default 3).
	K int
	// Radius is the normalized RMS knob distance under which a proposal
	// counts as re-entering a recorded crash region (default 0.05).
	Radius float64
	// MaxRegions caps the remembered crash centers, oldest evicted first
	// (default 64).
	MaxRegions int

	mu       sync.Mutex
	centers  [][]float64 // crash regions, persisted across requests
	best     []float64   // best-known-good normalized configuration
	bestPerf float64
	consec   int // consecutive failed/crashed steps
	reverts  int
	vetoes   int
}

// NewGuardrail returns a guardrail with the given failure budget and
// crash-region radius; zero values pick the defaults.
func NewGuardrail(k int, radius float64) *Guardrail {
	g := &Guardrail{K: k, Radius: radius}
	if g.K <= 0 {
		g.K = 3
	}
	if g.Radius <= 0 {
		g.Radius = 0.05
	}
	if g.MaxRegions <= 0 {
		g.MaxRegions = 64
	}
	return g
}

// BeginRequest resets the per-request state: the current configuration
// becomes the best-known-good with the measured baseline performance.
// Crash regions recorded by earlier requests are kept.
func (g *Guardrail) BeginRequest(current []float64, perf float64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.best = append([]float64(nil), current...)
	g.bestPerf = perf
	g.consec = 0
}

// Screen inspects a proposed configuration before deployment. A proposal
// inside a recorded crash region is pulled back toward the best-known-good
// configuration (halving the distance until it leaves every region) and
// the veto is counted. The returned bool reports whether the proposal was
// adjusted.
func (g *Guardrail) Screen(action []float64) ([]float64, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.best == nil || !g.nearCrashLocked(action) {
		return action, false
	}
	adj := append([]float64(nil), action...)
	for i := 0; i < 8 && g.nearCrashLocked(adj); i++ {
		for j := range adj {
			adj[j] = 0.5*adj[j] + 0.5*g.best[j]
		}
	}
	g.vetoes++
	return adj, true
}

// NoteGood records a successfully measured configuration, resetting the
// consecutive-failure count and updating the best-known-good when the
// performance improved.
func (g *Guardrail) NoteGood(action []float64, perf float64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.consec = 0
	if perf > g.bestPerf || g.best == nil {
		g.best = append([]float64(nil), action...)
		g.bestPerf = perf
	}
}

// NoteCrash records a crashing configuration as a crash region and counts
// the failed step.
func (g *Guardrail) NoteCrash(action []float64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.consec++
	g.centers = append(g.centers, append([]float64(nil), action...))
	if len(g.centers) > g.MaxRegions {
		g.centers = g.centers[len(g.centers)-g.MaxRegions:]
	}
}

// NoteFailure counts a failed (but non-crashing) step: a transient
// measurement failure that exhausted its retries, or a deployment that
// never took.
func (g *Guardrail) NoteFailure() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.consec++
}

// RevertTarget reports whether the consecutive-failure budget is spent
// and, if so, returns the configuration to revert to, resetting the
// counter and counting the revert.
func (g *Guardrail) RevertTarget() ([]float64, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.best == nil || g.consec < g.K {
		return nil, false
	}
	g.consec = 0
	g.reverts++
	return append([]float64(nil), g.best...), true
}

// Best returns the best-known-good configuration and its performance.
func (g *Guardrail) Best() ([]float64, float64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]float64(nil), g.best...), g.bestPerf
}

// Stats reports the lifetime revert and veto counts and the number of
// remembered crash regions.
func (g *Guardrail) Stats() (reverts, vetoes, regions int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.reverts, g.vetoes, len(g.centers)
}

// nearCrashLocked reports whether x lies within Radius (normalized RMS
// distance) of any recorded crash center. Caller holds g.mu.
func (g *Guardrail) nearCrashLocked(x []float64) bool {
	for _, c := range g.centers {
		if len(c) != len(x) {
			continue
		}
		var ss float64
		for i := range x {
			d := x[i] - c[i]
			ss += d * d
		}
		if math.Sqrt(ss/float64(len(x))) < g.Radius {
			return true
		}
	}
	return false
}
