package core

import (
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"testing"

	"cdbtune/internal/chaos"
	"cdbtune/internal/env"
	"cdbtune/internal/knobs"
	"cdbtune/internal/simdb"
	"cdbtune/internal/workload"
)

// chaosFactory builds per-episode environments whose databases share one
// fault injector, so the schedule (run counters, storms, kills) spans the
// whole training run.
func chaosFactory(cat *knobs.Catalog, w workload.Workload, base int64, in *chaos.Injector) EnvFactory {
	return func(ep int) *env.Env {
		db := simdb.New(knobs.EngineCDB, simdb.CDBA, base+int64(ep))
		return env.New(in.Wrap(db), cat, w)
	}
}

// A lost training worker must be respawned, its episode re-run, and the
// shared annealing schedule preserved: the run completes the full episode
// budget with the same final sigma as an undisturbed run.
func TestWorkerLostRespawns(t *testing.T) {
	cat := testCat(t)
	w := workload.SysbenchRW()
	tn, err := New(testConfig(t, cat))
	if err != nil {
		t.Fatal(err)
	}
	// Kill the 15th stress test — mid-episode, past the first episodes'
	// measurements, well before the run ends.
	in := chaos.New(chaos.Config{KillWorkerAtRun: 15})
	const episodes = 6
	var stats []EpisodeStats
	rep, err := tn.OfflineTrainOpts(chaosFactory(cat, w, 500, in), TrainOptions{
		Episodes:  episodes,
		Workers:   2,
		OnEpisode: func(s EpisodeStats) { stats = append(stats, s) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.WorkerDeaths != 1 {
		t.Fatalf("WorkerDeaths = %d, want 1 (injector: %+v)", rep.WorkerDeaths, in.Counters())
	}
	if rep.Episodes != episodes {
		t.Fatalf("Episodes = %d, want %d — the interrupted episode must be re-run", rep.Episodes, episodes)
	}
	if len(stats) != episodes {
		t.Fatalf("telemetry records = %d, want %d", len(stats), episodes)
	}
	seen := map[int]bool{}
	for _, s := range stats {
		if seen[s.Episode] {
			t.Fatalf("episode %d completed twice", s.Episode)
		}
		seen[s.Episode] = true
	}
	wantSigma := 0.2 * math.Pow(0.99, episodes)
	if got := tn.Agent().Noise.Scale(); math.Abs(got-wantSigma) > 1e-12 {
		t.Fatalf("sigma = %v, want %v — respawn must not disturb the shared schedule", got, wantSigma)
	}
}

// alwaysLost reports every stress test as a lost training server, driving
// the respawn budget to exhaustion.
type alwaysLost struct{ env.Database }

func (alwaysLost) RunWorkload(workload.Workload, float64) (simdb.Result, error) {
	return simdb.Result{}, fmt.Errorf("%w: test: permanently dead server", simdb.ErrWorkerLost)
}

func TestWorkerRespawnBudgetExhausts(t *testing.T) {
	cat := testCat(t)
	w := workload.SysbenchRW()
	tn, err := New(testConfig(t, cat))
	if err != nil {
		t.Fatal(err)
	}
	mk := func(ep int) *env.Env {
		db := simdb.New(knobs.EngineCDB, simdb.CDBA, int64(ep))
		return env.New(alwaysLost{Database: db}, cat, w)
	}
	rep, err := tn.OfflineTrainOpts(mk, TrainOptions{Episodes: 4, Workers: 2, MaxWorkerRespawns: 3})
	if err == nil {
		t.Fatal("permanently dying workers must eventually fail the run")
	}
	if !errors.Is(err, simdb.ErrWorkerLost) {
		t.Fatalf("err = %v, want ErrWorkerLost chain", err)
	}
	if rep.WorkerDeaths != 4 {
		t.Fatalf("WorkerDeaths = %d, want budget+1 = 4", rep.WorkerDeaths)
	}
}

// A run killed after k episodes and resumed from its checkpoint must end
// with the same episode accounting as an uninterrupted run.
func TestCheckpointResumeMatchesUnkilled(t *testing.T) {
	cat := testCat(t)
	w := workload.SysbenchRW()
	const episodes, killAfter = 6, 3
	ckpt := filepath.Join(t.TempDir(), "train.ckpt")

	fresh := func() *Tuner {
		tn, err := New(testConfig(t, cat))
		if err != nil {
			t.Fatal(err)
		}
		return tn
	}

	// Reference: one uninterrupted run.
	full, err := fresh().OfflineTrainOpts(mkEnvFactory(cat, w, 1000), TrainOptions{Episodes: episodes})
	if err != nil {
		t.Fatal(err)
	}

	// "Killed" run: the process stops after killAfter episodes, leaving
	// only the checkpoint behind.
	ck := &Checkpointer{Path: ckpt, Every: 1}
	if _, err := fresh().OfflineTrainOpts(mkEnvFactory(cat, w, 1000), TrainOptions{
		Episodes: killAfter, Checkpoint: ck,
	}); err != nil {
		t.Fatal(err)
	}

	// Resume in a brand-new process (a brand-new tuner).
	resumedTuner := fresh()
	resumed, err := resumedTuner.OfflineTrainOpts(mkEnvFactory(cat, w, 1000), TrainOptions{
		Episodes: episodes, Checkpoint: ck, Resume: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resumed.Resumed || resumed.ResumedEpisodes != killAfter {
		t.Fatalf("resume accounting: %+v", resumed)
	}
	if resumed.Episodes != full.Episodes {
		t.Fatalf("Episodes = %d, want %d (unkilled run)", resumed.Episodes, full.Episodes)
	}
	if resumed.Iterations != full.Iterations {
		t.Fatalf("Iterations = %d, want %d", resumed.Iterations, full.Iterations)
	}
	if got, want := resumedTuner.Agent().Noise.Scale(), 0.2*math.Pow(0.99, episodes); math.Abs(got-want) > 1e-12 {
		t.Fatalf("sigma = %v, want %v — the annealing schedule must survive the kill", got, want)
	}
	if resumedTuner.Agent().Memory.Len() == 0 {
		t.Fatal("replay memory did not survive the round trip")
	}

	// Resuming a finished run is a no-op with full accounting.
	again, err := fresh().OfflineTrainOpts(mkEnvFactory(cat, w, 1000), TrainOptions{
		Episodes: episodes, Checkpoint: ck, Resume: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if again.Episodes != episodes || again.ResumedEpisodes != episodes {
		t.Fatalf("re-resume accounting: %+v", again)
	}
}

func TestWriteAtomic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.bin")
	if err := os.WriteFile(path, []byte("good"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A failing writer must leave the original intact and no temp litter.
	boom := errors.New("boom")
	err := WriteAtomic(path, func(io.Writer) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "good" {
		t.Fatalf("original clobbered: %q, %v", got, err)
	}
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp file left behind: %v", entries)
	}
	// A successful writer replaces the content.
	if err := WriteAtomic(path, func(w io.Writer) error {
		_, err := w.Write([]byte("new"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "new" {
		t.Fatalf("content = %q", got)
	}
}

func TestGuardrailScreenAndRevert(t *testing.T) {
	g := NewGuardrail(2, 0.1)
	good := []float64{0.5, 0.5, 0.5}
	g.BeginRequest(good, 100)

	// No crash regions yet: proposals pass through untouched.
	if _, changed := g.Screen([]float64{0.9, 0.9, 0.9}); changed {
		t.Fatal("clean proposal must not be vetoed")
	}

	crash := []float64{0.9, 0.9, 0.9}
	g.NoteCrash(crash)
	adj, changed := g.Screen([]float64{0.91, 0.9, 0.89})
	if !changed {
		t.Fatal("near-crash proposal must be adjusted")
	}
	var ss float64
	for i := range adj {
		d := adj[i] - crash[i]
		ss += d * d
	}
	if math.Sqrt(ss/3) < 0.1 {
		t.Fatalf("adjusted proposal %v still inside the crash region", adj)
	}

	// The crash above already counts toward the streak; clear it so the
	// failure budget is exercised from zero.
	g.NoteGood(good, 100)
	if _, ok := g.RevertTarget(); ok {
		t.Fatal("revert before any failure")
	}
	g.NoteFailure()
	if _, ok := g.RevertTarget(); ok {
		t.Fatal("revert after 1 failure, budget is 2")
	}
	g.NoteFailure()
	target, ok := g.RevertTarget()
	if !ok || !sameSlice(target, good) {
		t.Fatalf("revert target = %v/%v, want best-known-good", target, ok)
	}
	// The revert consumed the counter.
	if _, ok := g.RevertTarget(); ok {
		t.Fatal("revert counter must reset after a revert")
	}
	// A success resets the failure streak and can raise the bar.
	g.NoteFailure()
	g.NoteGood([]float64{0.6, 0.6, 0.6}, 120)
	g.NoteFailure()
	if _, ok := g.RevertTarget(); ok {
		t.Fatal("streak must reset on success")
	}
	best, perf := g.Best()
	if perf != 120 || !sameSlice(best, []float64{0.6, 0.6, 0.6}) {
		t.Fatalf("best = %v @ %v", best, perf)
	}
	reverts, vetoes, regions := g.Stats()
	if reverts != 1 || vetoes != 1 || regions != 1 {
		t.Fatalf("stats = %d/%d/%d", reverts, vetoes, regions)
	}
}

// Under a crash storm covering the whole request, the guarded tuner must
// revert and finish deployed on the best-known-good configuration — never
// on the crashing recommendation.
func TestGuardedTuneSurvivesCrashStorm(t *testing.T) {
	cat := testCat(t)
	w := workload.SysbenchRW()
	tn, err := New(testConfig(t, cat))
	if err != nil {
		t.Fatal(err)
	}
	// Light pre-training so recommendations are not random.
	if _, err := tn.OfflineTrain(mkEnvFactory(cat, w, 300), 2); err != nil {
		t.Fatal(err)
	}
	// The first run is the baseline measurement; everything after crashes.
	in := chaos.New(chaos.Config{CrashStormAtRun: 2, CrashStormRuns: 200})
	db := simdb.New(knobs.EngineCDB, simdb.CDBA, 77)
	e := env.New(in.Wrap(db), cat, w)
	before := db.CurrentKnobs(cat)

	g := NewGuardrail(2, 0.05)
	res, err := tn.OnlineTuneGuarded(e, 5, true, g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashes == 0 {
		t.Fatal("storm did not bite — test is vacuous")
	}
	if res.Reverts == 0 {
		t.Fatal("guardrail never reverted under a full crash storm")
	}
	if !sameSlice(res.Best, before) {
		t.Fatalf("Best must stay the initial configuration when every step crashes")
	}
	if !sameSlice(db.CurrentKnobs(cat), before) {
		t.Fatal("instance must end on the best-known-good configuration")
	}
	if _, _, regions := g.Stats(); regions == 0 {
		t.Fatal("crash regions were not recorded")
	}
}
