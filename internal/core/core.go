package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"

	"cdbtune/internal/env"
	"cdbtune/internal/knobs"
	"cdbtune/internal/metrics"
	"cdbtune/internal/reward"
	"cdbtune/internal/rl"
	"cdbtune/internal/rl/ddpg"
	"cdbtune/internal/simdb"
)

// Wall-clock costs of the model-side stages of one step (§5.1.1); the
// environment-side costs live in simdb.
const (
	ModelUpdateSec = 0.02876
	RecommendSec   = 0.00216
)

// Config assembles a CDBTune tuner.
type Config struct {
	// Cat is the tunable knob subset (the action space).
	Cat *knobs.Catalog

	// DDPG overrides the agent hyperparameters; leave zero-valued to get
	// the paper's Table 4/5 defaults sized for Cat.
	DDPG ddpg.Config

	// RewardKind selects the reward function (RF-CDBTune by default);
	// CT/CL weight throughput vs latency (0.5/0.5 by default, §C.1.2).
	RewardKind reward.Kind
	CT, CL     float64

	// StepsPerEpisode bounds one training episode; UpdatesPerStep is the
	// number of gradient updates after each environment step.
	StepsPerEpisode int
	UpdatesPerStep  int

	// ConvergeWindow and ConvergeEps implement the §C.1.1 convergence
	// rule: converged when performance changes ≤ ConvergeEps for
	// ConvergeWindow consecutive steps.
	ConvergeWindow int
	ConvergeEps    float64

	// SnapshotEvery > 0 enables best-policy snapshot selection: every
	// SnapshotEvery training episodes the greedy policy is probed on a
	// fresh environment and the best-performing snapshot is restored when
	// training ends. This is standard early-stopping engineering on top of
	// the paper's algorithm: DDPG's last iterate is not its best one.
	SnapshotEvery int

	// RewardScale, RewardClip and RewardFloor stabilize critic regression:
	// stored rewards are reward·RewardScale clamped into
	// [−RewardFloor, RewardClip]. The paper's reward (Eq. 6) is quadratic
	// in the relative change and reaches the hundreds (negative) when a
	// bad configuration multiplies tail latency; unclamped, a single bad
	// region dominates the critic's squared loss and inverts the learned
	// slope of the knobs that border it. For tuning, *how* bad a bad
	// configuration is carries no useful signal — the floor encodes that.
	RewardScale float64
	RewardClip  float64
	RewardFloor float64

	// MemoryShards, when ≥ 2, shards the replay memory pool across that
	// many independently locked ring buffers (rounded up to a power of
	// two; see rl.ShardedMemory), letting parallel training workers store
	// experience without serializing behind the agent lock. 0 or 1 keeps
	// the single-lock pool — and with it the exact serial-training
	// determinism the equivalence tests pin down. Ignored when a
	// fully-specified DDPG config already sets its own MemoryShards.
	MemoryShards int

	// CrashPenalty is the stored (post-scale) reward for a crashed step.
	// The paper uses −100 raw; stored at full scale it dominates the
	// squared critic loss and — because crashes co-occur with high values
	// of *several* memory knobs under exploration — inverts the learned
	// value slope of the buffer pool. A modest penalty keeps crash
	// avoidance while preserving the topology of the good region.
	CrashPenalty float64

	Seed int64
}

// DefaultConfig returns the paper's setup for the given knob subset.
func DefaultConfig(cat *knobs.Catalog) Config {
	return Config{
		Cat:             cat,
		DDPG:            ddpg.DefaultConfig(metrics.NumMetrics, cat.Len()),
		RewardKind:      reward.RFCDBTune,
		CT:              0.5,
		CL:              0.5,
		StepsPerEpisode: 20,
		UpdatesPerStep:  2,
		ConvergeWindow:  5,
		ConvergeEps:     0.005,
		SnapshotEvery:   2,
		RewardScale:     0.1,
		RewardClip:      15,
		RewardFloor:     4,
		CrashPenalty:    -3,
		Seed:            1,
	}
}

// Tuner is a CDBTune instance: one trained model serving online tuning
// requests (§2.1: the model is trained once offline, then fine-tuned per
// request).
type Tuner struct {
	cfg   Config
	agent *ddpg.Agent

	// agentMu serializes access to the agent's networks, optimizers and
	// rng: action selection, gradient updates, snapshot Save/Load and the
	// self-imitation target. The replay memory is covered by it only when
	// unsharded; with Config.MemoryShards ≥ 2 the pool synchronizes
	// itself and observe bypasses this lock (see the package doc for the
	// full concurrency contract).
	agentMu sync.Mutex

	// concMem records whether the agent's memory pool is internally
	// synchronized (rl.ConcurrentMemory), letting observe skip agentMu;
	// memShards is the pool's shard count (1 = single lock), surfaced in
	// EpisodeStats.
	concMem   bool
	memShards int

	// infer, when non-nil, is the batched inference front-end the
	// parallel trainer installs for the duration of a multi-worker run:
	// runEpisode routes action selection through it so concurrent workers
	// share one forward pass per batch. Written only while no worker is
	// running (set before the workers start, cleared after they join).
	infer *inferBatcher

	// super, when non-nil, is the learner-health supervisor the trainer
	// installs for the duration of an offline training run. Like infer it
	// is written only while no worker runs; trainUpdates consults it under
	// agentMu after every gradient update.
	super *Supervisor

	mu         sync.Mutex
	iterations int

	bestSnapshot []byte
	bestEval     float64

	bestActionPerf float64
}

// New builds a tuner from cfg, filling defaults for zero-valued fields.
func New(cfg Config) (*Tuner, error) {
	if cfg.Cat == nil {
		return nil, errors.New("core: Config.Cat is required")
	}
	def := DefaultConfig(cfg.Cat)
	if cfg.DDPG.StateDim == 0 {
		cfg.DDPG = def.DDPG
		cfg.DDPG.Seed = cfg.Seed
	}
	if cfg.CT == 0 && cfg.CL == 0 {
		cfg.CT, cfg.CL = def.CT, def.CL
	}
	if cfg.StepsPerEpisode == 0 {
		cfg.StepsPerEpisode = def.StepsPerEpisode
	}
	if cfg.UpdatesPerStep == 0 {
		cfg.UpdatesPerStep = def.UpdatesPerStep
	}
	if cfg.ConvergeWindow == 0 {
		cfg.ConvergeWindow = def.ConvergeWindow
	}
	if cfg.ConvergeEps == 0 {
		cfg.ConvergeEps = def.ConvergeEps
	}
	if cfg.SnapshotEvery == 0 {
		cfg.SnapshotEvery = def.SnapshotEvery
	}
	if cfg.RewardScale == 0 {
		cfg.RewardScale = def.RewardScale
	}
	if cfg.RewardClip == 0 {
		cfg.RewardClip = def.RewardClip
	}
	if cfg.RewardFloor == 0 {
		cfg.RewardFloor = def.RewardFloor
	}
	if cfg.CrashPenalty == 0 {
		cfg.CrashPenalty = def.CrashPenalty
	}
	if cfg.MemoryShards > 1 && cfg.DDPG.MemoryShards == 0 {
		cfg.DDPG.MemoryShards = cfg.MemoryShards
	}
	if cfg.DDPG.ActionDim != cfg.Cat.Len() {
		return nil, fmt.Errorf("core: DDPG action dim %d != %d knobs", cfg.DDPG.ActionDim, cfg.Cat.Len())
	}
	t := &Tuner{cfg: cfg, agent: ddpg.New(cfg.DDPG)}
	_, t.concMem = t.agent.Memory.(rl.ConcurrentMemory)
	t.memShards = 1
	if sm, ok := t.agent.Memory.(*rl.ShardedMemory); ok {
		t.memShards = sm.ShardCount()
	}
	return t, nil
}

// Config returns the tuner configuration.
func (t *Tuner) Config() Config { return t.cfg }

// Agent exposes the underlying DDPG agent (diagnostics and tests).
func (t *Tuner) Agent() *ddpg.Agent { return t.agent }

// Iterations reports the total environment steps consumed by training —
// the "number of iterations" metric of Figures 8/14 and Table 6.
func (t *Tuner) Iterations() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.iterations
}

// Save and Load persist the trained model.
func (t *Tuner) Save(w io.Writer) error { return t.agent.Save(w) }
func (t *Tuner) Load(r io.Reader) error { return t.agent.Load(r) }

// TrainReport summarizes an offline training run.
type TrainReport struct {
	Episodes    int
	Iterations  int
	Crashes     int
	Converged   bool
	ConvergedAt int // iteration index of convergence, 0 if never
	// BestPerf is the best stress-test result seen during training.
	BestPerf metrics.External
	// VirtualSeconds is the simulated wall-clock cost summed over every
	// training environment, snapshot probes included — the single-server
	// cost, without the parallel-worker discount.
	VirtualSeconds float64

	// WorkerDeaths counts training workers lost mid-episode (the training
	// server became unreachable) and respawned; their episodes were
	// re-queued and run again.
	WorkerDeaths int
	// LostEpisodes counts episodes abandoned after the instance could not
	// be recovered (persistent crash or measurement failure). They still
	// count toward Episodes — the budget was spent — but produced few or
	// no samples.
	LostEpisodes int
	// Faults aggregates the measurement faults every training environment
	// absorbed: transient failures, retries, stalls, metric dropouts.
	Faults env.FaultReport

	// Resumed reports whether this run continued from a checkpoint;
	// ResumedEpisodes is how many completed episodes the checkpoint
	// carried (they are included in Episodes).
	Resumed         bool
	ResumedEpisodes int

	// Learner summarizes the learner-health supervision of the run: heals
	// performed, batches discarded as non-finite, snapshot cadence and the
	// final health signals. Learner.Healthy is false only when the run
	// aborted on an exhausted heal budget (the returned error is then a
	// *DivergenceError carrying the full Diagnosis).
	Learner LearnerReport

	// Stalls counts stall-watchdog flags: a worker observed stuck
	// mid-step for longer than TrainOptions.StallTimeout (each distinct
	// stuck step is flagged once).
	Stalls int
}

// LearnerReport is the learner-health section of a TrainReport.
type LearnerReport struct {
	// Supervised reports whether a learner-health supervisor watched the
	// run (see TrainOptions.Supervisor).
	Supervised bool
	// Heals counts divergence rollbacks; Snapshots the in-memory weight
	// snapshots taken; SkippedBatches the non-finite batches discarded
	// before they could touch a weight.
	Heals          int
	Snapshots      int
	SkippedBatches int
	// LRScale is the cumulative learning-rate backoff (1 = never backed
	// off); MeanAbsQ, GradNorm and Saturation the final EMA health
	// signals; MaxWeight the last observed weight magnitude.
	LRScale    float64
	MeanAbsQ   float64
	GradNorm   float64
	Saturation float64
	MaxWeight  float64
	// Healthy is true when the run ended without an unhealed divergence.
	Healthy bool
	// Diagnosis is the rendered post-mortem when Healthy is false.
	Diagnosis string
}

// EnvFactory produces a fresh training environment per episode — the
// workload generator driving standard workloads against a training
// instance (§2.2.1 cold start).
type EnvFactory func(episode int) *env.Env

// OfflineTrain trains the model for the given number of episodes. Each
// episode resets to the default configuration, measures T0/L0, then
// walks StepsPerEpisode try-and-error steps. Crashes are punished
// (§5.2.3) and the instance is restarted with defaults so the episode's
// remaining steps still produce samples.
func (t *Tuner) OfflineTrain(mkEnv EnvFactory, episodes int) (TrainReport, error) {
	return t.OfflineTrainOpts(mkEnv, TrainOptions{Episodes: episodes, Workers: 1})
}

// maybeSnapshot probes the current greedy policy on a fresh environment
// and keeps a copy of the model when it is the best seen so far. Probe
// steps do not enter the memory pool or the iteration count.
func (t *Tuner) maybeSnapshot(e *env.Env) error {
	base, err := e.Measure()
	if err != nil {
		if benignFault(err) {
			// A probe lost to environment faults skips this snapshot
			// round; the next SnapshotEvery boundary tries again.
			return nil
		}
		return fmt.Errorf("core: snapshot probe: %w", err)
	}
	best := base.Ext.Throughput
	state := metrics.Normalize(base.State)
	probeSteps := 3
	for i := 0; i < probeSteps; i++ {
		action := t.selectAction(state, false, nil)
		res, err := e.Step(action)
		if err != nil {
			if errors.Is(err, simdb.ErrCrashed) {
				// Restart with defaults and re-measure so the next probe
				// action conditions on the recovered instance, not the
				// stale pre-crash state.
				rec, rerr := recoverEnv(e)
				if rerr != nil {
					if benignFault(rerr) {
						break // probe cut short; snapshot with what we saw
					}
					return fmt.Errorf("core: snapshot probe crash recovery: %w", rerr)
				}
				state = metrics.Normalize(rec.State)
				continue
			}
			if benignFault(err) {
				continue // skipped probe step
			}
			return err
		}
		state = metrics.Normalize(res.State)
		if res.Ext.Throughput > best {
			best = res.Ext.Throughput
		}
	}
	t.agentMu.Lock()
	defer t.agentMu.Unlock()
	if t.bestSnapshot == nil || best > t.bestEval {
		var buf bytes.Buffer
		if err := t.agent.Save(&buf); err != nil {
			return err
		}
		t.bestSnapshot = buf.Bytes()
		t.bestEval = best
	}
	return nil
}

// restoreBest reloads the best snapshot taken during training.
func (t *Tuner) restoreBest() error {
	t.agentMu.Lock()
	defer t.agentMu.Unlock()
	if t.bestSnapshot == nil {
		return nil
	}
	return t.agent.Load(bytes.NewReader(t.bestSnapshot))
}

// epStats accumulates one episode's outcome and telemetry while it runs.
type epStats struct {
	crashes     int
	steps       int
	skipped     int // steps lost to transient/apply failures (no sample)
	convergedAt int
	lost        bool // episode abandoned: instance unrecoverable
	best        metrics.External

	rewardSum float64
	rewardN   int
	updates   updateTotals
}

// meanReward averages the episode's stored rewards (crash penalties
// included); zero when no step completed.
func (s epStats) meanReward() float64 {
	if s.rewardN == 0 {
		return 0
	}
	return s.rewardSum / float64(s.rewardN)
}

// benignFault reports whether an episode error is an environment fault
// the trainer should absorb (crash, exhausted transient retries, failed
// deployment) rather than a programming or configuration error it must
// surface. A lost training server is NOT benign for the episode — the
// parallel trainer handles it by respawning the worker.
func benignFault(err error) bool {
	if errors.Is(err, simdb.ErrWorkerLost) {
		return false
	}
	var ae *env.ApplyError
	return errors.Is(err, simdb.ErrCrashed) || errors.Is(err, simdb.ErrTransient) || errors.As(err, &ae)
}

// recoverEnv retries the full default-reset recovery a few times; the
// post-reset measurement already retries transients internally, so this
// covers recoveries whose measurement keeps failing (chaos storms,
// instances that crash even on defaults).
func recoverEnv(e *env.Env) (simdb.Result, error) {
	var rec simdb.Result
	var err error
	for i := 0; i < 3; i++ {
		rec, err = e.RecoverDefaults()
		if err == nil {
			return rec, nil
		}
		if !benignFault(err) {
			return rec, err
		}
	}
	return rec, err
}

// runEpisode executes one try-and-error episode on e. When train is true
// the agent explores (drawing from noise, or the agent's own process when
// nil) and learns; otherwise it acts greedily. Environment faults are
// absorbed: transient failures that out-ran env's retries skip the step,
// crashes recover to defaults, and an instance that cannot be recovered
// ends the episode early (st.lost) instead of aborting training. A
// cancelled ctx ends the episode with its error (never absorbed); beat,
// when non-nil, is called before every environment step so the stall
// watchdog can see the worker making progress.
func (t *Tuner) runEpisode(ctx context.Context, e *env.Env, train bool, noise rl.Noise, beat func()) (epStats, error) {
	var st epStats
	if beat != nil {
		beat()
	}
	base, err := e.Measure()
	if err != nil {
		if errors.Is(err, simdb.ErrCrashed) {
			var rerr error
			base, rerr = recoverEnv(e)
			err = rerr
		}
		if err != nil {
			if benignFault(err) {
				st.lost = true
				return st, nil
			}
			return st, fmt.Errorf("core: measuring initial performance: %w", err)
		}
	}
	rf := reward.New(t.cfg.RewardKind, t.cfg.CT, t.cfg.CL)
	rf.Init(base.Ext.Throughput, base.Ext.Latency99)
	st.best = base.Ext
	state := metrics.Normalize(base.State)

	flat := 0
	var prevT float64 = base.Ext.Throughput
	for step := 0; step < t.cfg.StepsPerEpisode; step++ {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return st, err
			}
		}
		if beat != nil {
			beat()
		}
		action := t.selectAction(state, train, noise)
		e.Clock.Charge(RecommendSec)
		res, err := e.Step(action)
		t.mu.Lock()
		t.iterations++
		t.mu.Unlock()
		st.steps++
		if err != nil {
			if !errors.Is(err, simdb.ErrCrashed) {
				if benignFault(err) {
					// Transient measurement or deployment failure that
					// out-ran env's retries: the step produced no sample,
					// the instance is unchanged, the episode continues.
					st.skipped++
					continue
				}
				return st, err
			}
			st.crashes++
			st.rewardSum += t.cfg.CrashPenalty
			st.rewardN++
			t.observeRaw(rl.Transition{
				State: state, Action: action,
				Reward: t.cfg.CrashPenalty, NextState: state, Done: true,
			})
			if train {
				u, uerr := t.trainUpdates(e)
				st.updates.add(u)
				if uerr != nil {
					return st, uerr
				}
			}
			// The controller redeploys defaults and the episode continues
			// from the recovered instance — §5.2.3 reports frequent
			// crashes early in training that the negative reward
			// gradually eliminates; each one costs a restart and a
			// re-measurement, not the rest of the episode's samples. An
			// instance that stays down through the recovery retries ends
			// the episode early rather than killing the whole run.
			rec, rerr := recoverEnv(e)
			if rerr != nil {
				if benignFault(rerr) {
					st.lost = true
					return st, nil
				}
				return st, fmt.Errorf("core: re-measuring after crash: %w", rerr)
			}
			state = metrics.Normalize(rec.State)
			prevT = rec.Ext.Throughput
			continue
		}
		r := rf.Compute(res.Ext.Throughput, res.Ext.Latency99)
		next := metrics.Normalize(res.State)
		st.rewardSum += t.storedReward(r)
		st.rewardN++
		t.observe(rl.Transition{
			State: state, Action: action, Reward: r,
			NextState: next, Done: step == t.cfg.StepsPerEpisode-1,
		})
		if train {
			u, uerr := t.trainUpdates(e)
			st.updates.add(u)
			if uerr != nil {
				return st, uerr
			}
		}
		state = next
		if res.Ext.Throughput > st.best.Throughput {
			st.best = res.Ext
		}
		if train {
			t.noteBestAction(action, res.Ext.Throughput)
		}
		if prevT > 0 && math.Abs(res.Ext.Throughput-prevT)/prevT <= t.cfg.ConvergeEps {
			flat++
			if flat >= t.cfg.ConvergeWindow && st.convergedAt == 0 {
				st.convergedAt = step + 1
			}
		} else {
			flat = 0
		}
		prevT = res.Ext.Throughput
	}
	return st, nil
}

// selectAction picks the next configuration for a training or probe step:
// greedy µ(s), or µ(s) perturbed by the worker's noise fork when
// exploring. During a multi-worker training run the request goes through
// the inference batcher, sharing one forward pass with whatever other
// workers are asking at the same time; otherwise it takes agentMu
// directly.
func (t *Tuner) selectAction(state []float64, train bool, noise rl.Noise) []float64 {
	if b := t.infer; b != nil {
		return b.act(state, train, noise)
	}
	t.agentMu.Lock()
	defer t.agentMu.Unlock()
	if train {
		return t.agent.ActNoisyFrom(state, noise)
	}
	return t.agent.Act(state)
}

// noteBestAction feeds the self-imitation target: the best-throughput
// action observed during training (see ddpg.Config.BCWeight).
func (t *Tuner) noteBestAction(action []float64, tput float64) {
	t.agentMu.Lock()
	defer t.agentMu.Unlock()
	if tput > t.bestActionPerf {
		t.bestActionPerf = tput
		t.agent.SetBCTarget(action)
	}
}

// observeRaw stores a transition whose reward is already in stored scale.
// A sharded memory pool synchronizes itself, so storing skips agentMu
// entirely and never waits behind another worker's gradient update; the
// single-lock pools still require it.
func (t *Tuner) observeRaw(tr rl.Transition) {
	if t.concMem {
		t.agent.Observe(tr)
		return
	}
	t.agentMu.Lock()
	t.agent.Observe(tr)
	t.agentMu.Unlock()
}

// storedReward maps a raw reward into stored scale: scaled by RewardScale
// and clamped into [−RewardFloor, RewardClip].
func (t *Tuner) storedReward(raw float64) float64 {
	r := raw * t.cfg.RewardScale
	if r > t.cfg.RewardClip {
		r = t.cfg.RewardClip
	}
	if r < -t.cfg.RewardFloor {
		r = -t.cfg.RewardFloor
	}
	return r
}

// observe stores a transition in the memory pool, scaling and clipping
// the reward per Config.RewardScale/RewardClip. Locking follows
// observeRaw: agentMu only when the pool is unsharded.
func (t *Tuner) observe(tr rl.Transition) {
	tr.Reward = t.storedReward(tr.Reward)
	t.observeRaw(tr)
}

// updateTotals sums the losses of a batch of gradient updates.
type updateTotals struct {
	criticSum float64
	criticN   int
	actorSum  float64
	actorN    int
}

func (u *updateTotals) add(v updateTotals) {
	u.criticSum += v.criticSum
	u.criticN += v.criticN
	u.actorSum += v.actorSum
	u.actorN += v.actorN
}

// meanCritic and meanActor average the accumulated losses, zero when no
// update of that kind ran.
func (u updateTotals) meanCritic() float64 {
	if u.criticN == 0 {
		return 0
	}
	return u.criticSum / float64(u.criticN)
}

func (u updateTotals) meanActor() float64 {
	if u.actorN == 0 {
		return 0
	}
	return u.actorSum / float64(u.actorN)
}

// trainUpdates performs UpdatesPerStep gradient updates under agentMu,
// feeding each step's health signals to the installed supervisor (when
// any). A non-nil error is fatal to the run: the supervisor's heal budget
// is exhausted (*DivergenceError) or a rollback itself failed.
func (t *Tuner) trainUpdates(e *env.Env) (updateTotals, error) {
	var u updateTotals
	t.agentMu.Lock()
	defer t.agentMu.Unlock()
	for i := 0; i < t.cfg.UpdatesPerStep; i++ {
		info, ok := t.agent.TrainStepInfo()
		if !ok {
			continue
		}
		e.Clock.Charge(ModelUpdateSec)
		if !info.SkippedNonFinite {
			u.criticSum += info.CriticLoss
			u.criticN++
			if info.ActorUpdated {
				u.actorSum += info.ActorLoss
				u.actorN++
			}
		}
		if t.super != nil {
			if err := t.super.observe(info); err != nil {
				return u, err
			}
		}
	}
	return u, nil
}

// TuneResult is the outcome of one online tuning request.
type TuneResult struct {
	Best     []float64
	BestPerf metrics.External
	Initial  metrics.External
	History  []metrics.External
	Crashes  int
	// Seconds is the request's virtual wall-clock cost; Table 2 expects
	// ≈ 25 minutes for the 5-step protocol.
	Seconds float64

	// Reverts counts guardrail reverts to the best-known-good
	// configuration after K consecutive failed steps; Vetoes counts
	// recommendations adjusted away from recorded near-crash regions.
	// Both are zero without a guardrail.
	Reverts int
	Vetoes  int
	// SkippedSteps counts steps lost to transient measurement or
	// deployment failures (no sample produced).
	SkippedSteps int
	// Faults is the environment's fault/retry accounting for the request.
	Faults env.FaultReport
}

// OnlineTune serves one tuning request (§2.1.2): replay the user's
// workload (already baked into e), recommend with the trained model for
// `steps` steps (the paper uses 5), fine-tune the model on the observed
// feedback, and return the configuration with the best observed
// performance. The memory pool keeps the new transitions — incremental
// training (§2.1.1).
func (t *Tuner) OnlineTune(e *env.Env, steps int, fineTune bool) (TuneResult, error) {
	return t.OnlineTuneGuarded(e, steps, fineTune, nil)
}

// OnlineTuneGuarded is OnlineTune with a safety guardrail: g screens
// every recommendation against remembered near-crash regions, tracks the
// request's best-known-good configuration, and reverts the instance to it
// after K consecutive failed or crashed steps. Whatever happens during
// exploration, the instance ends the request on the best configuration
// actually measured — never on a crashing one. A nil g runs unguarded.
func (t *Tuner) OnlineTuneGuarded(e *env.Env, steps int, fineTune bool, g *Guardrail) (TuneResult, error) {
	return t.OnlineTuneCtx(context.Background(), e, steps, fineTune, g)
}

// OnlineTuneCtx is OnlineTuneGuarded under a context: a cancelled or
// past-deadline ctx stops recommending promptly (checked before every
// step; the environment is bound to ctx so backoff waits abort too), but
// the request still ends with the best-effort deploy of the best
// configuration measured so far — an abandoned request must not leave the
// instance on an exploratory configuration. The returned error is then
// ctx's error and the TuneResult is valid partial accounting.
func (t *Tuner) OnlineTuneCtx(ctx context.Context, e *env.Env, steps int, fineTune bool, g *Guardrail) (TuneResult, error) {
	var out TuneResult
	if steps <= 0 {
		steps = 5
	}
	if ctx == nil {
		ctx = context.Background()
	}
	e.Bind(ctx)
	defer e.Bind(nil)
	start := e.Clock.Seconds()
	base, err := e.Measure()
	if err != nil {
		if errors.Is(err, simdb.ErrCrashed) {
			// The instance is down before tuning even starts; recover it
			// so the request can proceed from defaults.
			var rerr error
			base, rerr = recoverEnv(e)
			err = rerr
		}
		if err != nil {
			return out, fmt.Errorf("core: measuring initial performance: %w", err)
		}
	}
	rf := reward.New(t.cfg.RewardKind, t.cfg.CT, t.cfg.CL)
	rf.Init(base.Ext.Throughput, base.Ext.Latency99)
	out.Initial = base.Ext
	out.BestPerf = base.Ext
	out.Best = e.DB.CurrentKnobs(e.Cat)
	state := metrics.Normalize(base.State)
	if g != nil {
		g.BeginRequest(out.Best, base.Ext.Throughput)
	}

	var cancelErr error
	for step := 0; step < steps; step++ {
		if err := ctx.Err(); err != nil {
			cancelErr = err
			break
		}
		var action []float64
		t.agentMu.Lock()
		if best := t.agent.BCTarget(); step == 0 && best != nil {
			// The memory pool's best-known configuration is the first
			// recommendation — §2.1.2: "those knobs corresponding to the
			// best performance in online tuning will be recommended".
			action = append([]float64(nil), best...)
		} else if fineTune && step > 1 {
			// Small exploration during fine-tuning adapts the standard
			// model to the user's real workload.
			action = t.agent.ActNoisy(state)
		} else {
			action = t.agent.Act(state)
		}
		t.agentMu.Unlock()
		if g != nil {
			if adj, changed := g.Screen(action); changed {
				action = adj
				out.Vetoes++
			}
		}
		e.Clock.Charge(RecommendSec)
		res, err := e.Step(action)
		if err != nil {
			switch {
			case errors.Is(err, simdb.ErrCrashed):
				out.Crashes++
				if g != nil {
					g.NoteCrash(action)
				}
				t.observeRaw(rl.Transition{
					State: state, Action: action,
					Reward: t.cfg.CrashPenalty, NextState: state, Done: true,
				})
				// Restart with defaults and re-measure so the next
				// recommendation conditions on the recovered instance. If
				// the instance stays down through the retries, continue
				// anyway: the guardrail revert below (and the final
				// best-known-good deploy) is the recovery of last resort.
				rec, rerr := recoverEnv(e)
				if rerr == nil {
					state = metrics.Normalize(rec.State)
				} else if !benignFault(rerr) {
					return out, fmt.Errorf("core: re-measuring after crash: %w", rerr)
				}
			case benignFault(err):
				// Transient measurement or deployment failure: the step
				// produced nothing; the instance keeps its configuration.
				out.SkippedSteps++
				if g != nil {
					g.NoteFailure()
				}
			default:
				if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
					// Cancellation surfaced through the bound environment
					// mid-step: stop recommending, but still fall through to
					// the best-known-good deploy below.
					cancelErr = err
					break
				}
				out.Faults = e.Faults()
				return out, err
			}
			if cancelErr != nil {
				break
			}
			if g != nil {
				if target, ok := g.RevertTarget(); ok {
					// K consecutive failed steps: put the instance back on
					// the best configuration this request has measured.
					out.Reverts++
					if _, aerr := e.DB.ApplyKnobs(e.Cat, target); aerr == nil {
						if rec, merr := e.Measure(); merr == nil {
							state = metrics.Normalize(rec.State)
						}
					}
				}
			}
			continue
		}
		r := rf.Compute(res.Ext.Throughput, res.Ext.Latency99)
		next := metrics.Normalize(res.State)
		if g != nil {
			g.NoteGood(action, res.Ext.Throughput)
		}
		t.observe(rl.Transition{
			State: state, Action: action, Reward: r,
			NextState: next, Done: step == steps-1,
		})
		if fineTune {
			if _, uerr := t.trainUpdates(e); uerr != nil {
				out.Faults = e.Faults()
				return out, uerr
			}
		}
		state = next
		out.History = append(out.History, res.Ext)
		if res.Ext.Throughput > out.BestPerf.Throughput {
			out.BestPerf = res.Ext
			out.Best = append([]float64(nil), action...)
		}
	}
	// Deploy the best configuration found (§2.1.2: "those knobs
	// corresponding to the best performance will be recommended"). The
	// deployment itself is retried: ending the request on a half-applied
	// or crashing configuration is the one outcome the guardrail exists
	// to prevent.
	var aerr error
	for attempt := 0; attempt < 3; attempt++ {
		if _, aerr = e.DB.ApplyKnobs(e.Cat, out.Best); aerr == nil {
			break
		}
	}
	out.Faults = e.Faults()
	if aerr != nil {
		return out, fmt.Errorf("core: deploying final configuration: %w", aerr)
	}
	out.Seconds = e.Clock.Seconds() - start
	return out, cancelErr
}
