package core

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cdbtune/internal/workload"
)

// TestCheckpointCRCDetectsCorruption writes a real checkpoint through a
// short training run, then damages it the two ways disk corruption
// presents: a flipped bit mid-payload and a truncated tail. Both must be
// rejected with a descriptive error before any state is restored, and the
// pristine bytes must still load.
func TestCheckpointCRCDetectsCorruption(t *testing.T) {
	cat := testCat(t)
	tn, err := New(testConfig(t, cat))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ckpt.gob")
	ck := &Checkpointer{Path: path, Every: 1}
	if _, err := tn.OfflineTrainOpts(mkEnvFactory(cat, workload.SysbenchRW(), 60), TrainOptions{
		Episodes: 2, Workers: 1, Checkpoint: ck,
	}); err != nil {
		t.Fatal(err)
	}

	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(pristine) < 16 {
		t.Fatalf("checkpoint implausibly small: %d bytes", len(pristine))
	}
	if !bytes.Equal(pristine[len(pristine)-8:len(pristine)-4], checkpointMagic[:]) {
		t.Fatal("checkpoint does not end with the integrity footer magic")
	}

	freshTuner := func() *Tuner {
		nt, err := New(testConfig(t, cat))
		if err != nil {
			t.Fatal(err)
		}
		return nt
	}

	// A single flipped bit anywhere in the payload must fail the CRC.
	flipped := append([]byte(nil), pristine...)
	flipped[len(flipped)/3] ^= 0x40
	if err := os.WriteFile(path, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ck.Load(freshTuner()); err == nil {
		t.Fatal("bit-flipped checkpoint loaded without error")
	} else if !strings.Contains(err.Error(), "CRC") {
		t.Fatalf("bit-flip error should blame the CRC, got: %v", err)
	}

	// A truncated file (e.g. a partial copy) loses the footer entirely.
	if err := os.WriteFile(path, pristine[:len(pristine)-12], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ck.Load(freshTuner()); err == nil {
		t.Fatal("truncated checkpoint loaded without error")
	} else if !strings.Contains(err.Error(), "integrity footer") {
		t.Fatalf("truncation error should mention the footer, got: %v", err)
	}

	// The pristine bytes still restore cleanly.
	if err := os.WriteFile(path, pristine, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, found, err := ck.Load(freshTuner())
	if err != nil || !found {
		t.Fatalf("pristine checkpoint must load: found=%v err=%v", found, err)
	}
	if rep.Episodes != 2 {
		t.Fatalf("restored report has %d episodes, want 2", rep.Episodes)
	}
}
