package core

import (
	"math"
	"testing"
)

// synthetic fingerprints: flat vectors at a given level.
func flat(n int, v float64) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = v
	}
	return s
}

func TestDriftDetectorStepChange(t *testing.T) {
	d := NewDriftDetector(DriftConfig{Threshold: 0.05, Alpha: 0.5, Warmup: 2, Cooldown: 2})
	ref := flat(63, 0.4)
	d.Rebase(ref)

	// Quiet stream: tiny jitter never fires.
	for i := 0; i < 10; i++ {
		jit := flat(63, 0.4+0.002*float64(i%2*2-1))
		if s := d.Observe(jit); s.Drifted {
			t.Fatalf("observation %d: drifted on jitter (ewma %v)", i, s.EWMA)
		}
	}

	// Step change: fingerprint jumps by 0.2 RMS. EWMA at α=0.5 reaches
	// the 0.05 threshold on the first shifted observation past warmup.
	var fired int
	var firedAt int
	for i := 0; i < 6; i++ {
		s := d.Observe(flat(63, 0.6))
		if math.Abs(s.Distance-0.2) > 1e-9 {
			t.Fatalf("distance = %v, want 0.2", s.Distance)
		}
		if s.Drifted {
			if fired == 0 {
				firedAt = i
			}
			fired++
		}
	}
	if fired == 0 {
		t.Fatal("step change never fired the detector")
	}
	if firedAt != 0 {
		t.Errorf("first firing at shifted observation %d, want 0 (warmup already served)", firedAt)
	}
	// Cooldown spaces repeat firings: 6 shifted observations with
	// cooldown 2 can fire at most 3 times.
	if fired > 3 {
		t.Errorf("fired %d times in 6 observations with cooldown 2", fired)
	}
}

func TestDriftDetectorWarmupAndRebase(t *testing.T) {
	d := NewDriftDetector(DriftConfig{Threshold: 0.05, Alpha: 1, Warmup: 3, Cooldown: 1})
	d.Rebase(flat(10, 0.1))
	// Even a huge divergence stays quiet through the warmup window.
	for i := 0; i < 3; i++ {
		if s := d.Observe(flat(10, 0.9)); s.Drifted {
			t.Fatalf("fired during warmup at observation %d", i)
		}
	}
	if s := d.Observe(flat(10, 0.9)); !s.Drifted {
		t.Fatal("did not fire after warmup")
	}
	// Rebase adopts the new fingerprint: the same stream is quiet again.
	d.Rebase(flat(10, 0.9))
	for i := 0; i < 6; i++ {
		if s := d.Observe(flat(10, 0.9)); s.Drifted {
			t.Fatalf("fired after rebase at observation %d", i)
		}
	}
}

func TestDriftDetectorDefaultsAndFirstObserve(t *testing.T) {
	d := NewDriftDetector(DriftConfig{})
	cfg := d.Config()
	if cfg.Threshold != DefaultDriftThreshold || cfg.Alpha != DefaultDriftAlpha ||
		cfg.Warmup != DefaultDriftWarmup || cfg.Cooldown != DefaultDriftCooldown {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	// First Observe without a Rebase adopts the state as reference.
	if s := d.Observe(flat(5, 0.7)); s.Drifted || s.Distance != 0 {
		t.Fatalf("first observe = %+v, want zero sample", s)
	}
	if s := d.Observe(flat(5, 0.7)); s.Distance != 0 {
		t.Fatalf("identical state distance = %v", s.Distance)
	}
}

func TestRMSDistanceMatchesRegistryMetric(t *testing.T) {
	a := []float64{0, 0.5, 1}
	b := []float64{0.3, 0.5, 0.6}
	want := math.Sqrt((0.09 + 0 + 0.16) / 3)
	if got := rmsDistance(a, b); math.Abs(got-want) > 1e-12 {
		t.Fatalf("rmsDistance = %v, want %v", got, want)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched lengths did not panic")
		}
	}()
	rmsDistance(a, []float64{1})
}
