package core

import (
	"fmt"
	"math"
)

// Drift-detector defaults. The threshold is calibrated against the
// simulator: between repeated measurements of the same workload the
// normalized 63-metric state moves by an RMS distance well under 0.01
// (measurement noise), while a 2–3× load change or a read/write mix
// shift moves it by several times that. See the package doc for how to
// pick a threshold for a new deployment.
const (
	// DefaultDriftThreshold is the EWMA registry-distance that declares
	// workload drift.
	DefaultDriftThreshold = 0.02
	// DefaultDriftAlpha is the EWMA smoothing factor: high enough to
	// react within 2–3 observation windows, low enough that one noisy
	// sample cannot fire the detector alone.
	DefaultDriftAlpha = 0.5
	// DefaultDriftWarmup and DefaultDriftCooldown are the observation
	// counts the detector stays quiet after a rebase: warmup lets the
	// EWMA fill before it is trusted; cooldown additionally spaces
	// consecutive re-tunes so one cannot trigger off its own wake.
	DefaultDriftWarmup   = 2
	DefaultDriftCooldown = 2
)

// DriftConfig tunes the workload-drift detector.
type DriftConfig struct {
	// Threshold is the smoothed fingerprint distance (RMS Euclidean over
	// the normalized metric state, the same distance the model registry
	// uses for nearest-neighbor lookup) that declares drift. 0 means
	// DefaultDriftThreshold.
	Threshold float64
	// Alpha is the EWMA smoothing factor in (0,1]; 0 means
	// DefaultDriftAlpha. 1 disables smoothing (raw distances).
	Alpha float64
	// Warmup is how many observations after a Rebase the detector
	// refuses to fire; 0 means DefaultDriftWarmup. Negative disables the
	// warmup entirely.
	Warmup int
	// Cooldown is the minimum number of observations between two drift
	// firings; 0 means DefaultDriftCooldown, negative disables.
	Cooldown int
}

func (c DriftConfig) withDefaults() DriftConfig {
	if c.Threshold == 0 {
		c.Threshold = DefaultDriftThreshold
	}
	if c.Alpha == 0 {
		c.Alpha = DefaultDriftAlpha
	}
	if c.Warmup == 0 {
		c.Warmup = DefaultDriftWarmup
	}
	if c.Cooldown == 0 {
		c.Cooldown = DefaultDriftCooldown
	}
	return c
}

// DriftSample is one detector observation.
type DriftSample struct {
	// Distance is the raw fingerprint distance of this observation from
	// the reference state; EWMA is its smoothed value.
	Distance float64
	EWMA     float64
	// Drifted reports that the smoothed distance crossed the threshold
	// (outside warmup/cooldown) on this observation.
	Drifted bool
}

// DriftDetector watches a stream of normalized metric states for
// divergence from a reference fingerprint — the signal that the workload
// a serving configuration was tuned for is no longer the workload the
// instance is running. It is a plain accumulator with no locking; the
// dynamic serving loop drives it from one goroutine.
type DriftDetector struct {
	cfg       DriftConfig
	ref       []float64
	ewma      float64
	seen      int // observations since the last Rebase
	sinceFire int // observations since the last drift firing (-1 = never)
}

// NewDriftDetector builds a detector with cfg's zero values defaulted.
func NewDriftDetector(cfg DriftConfig) *DriftDetector {
	return &DriftDetector{cfg: cfg.withDefaults(), sinceFire: -1}
}

// Config returns the effective (defaulted) configuration.
func (d *DriftDetector) Config() DriftConfig { return d.cfg }

// Rebase sets the reference fingerprint to state — the normalized metric
// vector measured right after (re-)tuning — and clears the smoothed
// distance and warmup counters.
func (d *DriftDetector) Rebase(state []float64) {
	d.ref = append(d.ref[:0], state...)
	d.ewma = 0
	d.seen = 0
	d.sinceFire = -1
}

// Observe folds one normalized metric state into the detector and
// reports the resulting sample. Observing before any Rebase adopts the
// state as the reference.
func (d *DriftDetector) Observe(state []float64) DriftSample {
	if d.ref == nil {
		d.Rebase(state)
		return DriftSample{}
	}
	dist := rmsDistance(d.ref, state)
	d.seen++
	if d.seen == 1 {
		d.ewma = dist
	} else {
		d.ewma = d.cfg.Alpha*dist + (1-d.cfg.Alpha)*d.ewma
	}
	s := DriftSample{Distance: dist, EWMA: d.ewma}
	if d.sinceFire >= 0 {
		d.sinceFire++
	}
	warm := d.cfg.Warmup <= 0 || d.seen > d.cfg.Warmup
	cool := d.sinceFire < 0 || d.cfg.Cooldown <= 0 || d.sinceFire >= d.cfg.Cooldown
	if warm && cool && d.ewma > d.cfg.Threshold {
		s.Drifted = true
		d.sinceFire = 0
	}
	return s
}

// rmsDistance is the RMS Euclidean distance between equal-length vectors
// — the same metric internal/registry uses over its fingerprints. It is
// re-implemented here because registry depends on core (warm-started
// tuners), so core cannot import it back.
func rmsDistance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("core: drift distance over mismatched vectors (%d vs %d)", len(a), len(b)))
	}
	if len(a) == 0 {
		return 0
	}
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(a)))
}
