package core

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cdbtune/internal/chaos"
	"cdbtune/internal/env"
	"cdbtune/internal/knobs"
	"cdbtune/internal/metrics"
	"cdbtune/internal/rl/ddpg"
	"cdbtune/internal/simdb"
	"cdbtune/internal/workload"
)

// supervisorTestAgent is a tiny agent for driving Supervisor.observe
// directly with synthetic health signals.
func supervisorTestAgent() *ddpg.Agent {
	cfg := ddpg.DefaultConfig(8, 4)
	cfg.ActorHidden = []int{8, 8}
	cfg.CriticHidden = []int{16, 8}
	return ddpg.New(cfg)
}

func TestSupervisorNonFiniteBudget(t *testing.T) {
	a := supervisorTestAgent()
	s := newSupervisor(SupervisorConfig{NonFiniteBudget: 3, HealBudget: 5}, a, 20)
	bad := ddpg.StepInfo{SkippedNonFinite: true, CriticLoss: math.NaN()}
	if err := s.observe(bad); err != nil {
		t.Fatal(err)
	}
	if err := s.observe(bad); err != nil {
		t.Fatal(err)
	}
	if s.Stats().Heals != 0 {
		t.Fatal("healed before the non-finite budget was spent")
	}
	if err := s.observe(bad); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Heals != 1 {
		t.Fatalf("Heals = %d after 3 consecutive non-finite batches, want 1", st.Heals)
	}
	if st.SkippedBatches != 3 {
		t.Fatalf("SkippedBatches = %d, want 3", st.SkippedBatches)
	}
	if st.LRScale >= 1 {
		t.Fatalf("heal must back the learning rate off, LRScale = %v", st.LRScale)
	}
}

func TestSupervisorQExplosionAndBudgetExhaustion(t *testing.T) {
	a := supervisorTestAgent()
	s := newSupervisor(SupervisorConfig{WarmupSteps: 2, HealBudget: 1, QLimit: 100}, a, 20)
	healthy := ddpg.StepInfo{CriticLoss: 0.1, CriticGradNorm: 1, MeanAbsQ: 5, MaxWeight: 0.5}
	for i := 0; i < 4; i++ {
		if err := s.observe(healthy); err != nil {
			t.Fatal(err)
		}
	}
	exploding := healthy
	exploding.MeanAbsQ = 5000 // instant trip: > 10 × QLimit
	if err := s.observe(exploding); err != nil {
		t.Fatalf("first divergence must heal, not abort: %v", err)
	}
	if s.Stats().Heals != 1 {
		t.Fatalf("Heals = %d, want 1", s.Stats().Heals)
	}
	// Re-warm, then diverge again: the budget (1) is now spent.
	for i := 0; i < 3; i++ {
		if err := s.observe(healthy); err != nil {
			t.Fatal(err)
		}
	}
	err := s.observe(exploding)
	var dErr *DivergenceError
	if !errors.As(err, &dErr) {
		t.Fatalf("exhausted budget must return *DivergenceError, got %v", err)
	}
	d := dErr.Diagnosis
	if d.Reason != "q-explosion" || d.Heals != 2 || d.Step == 0 || d.QLimit != 100 {
		t.Fatalf("diagnosis incomplete: %+v", d)
	}
	if s.Diagnosis() == nil || s.Stats().Healthy {
		t.Fatal("supervisor must record the post-mortem and report unhealthy")
	}
}

// divergentConfig is testConfig with the critic learning rate cranked far
// past stability — the classic runaway-critic divergence, injected
// learner-side so it fires deterministically.
func divergentConfig(t *testing.T, cat *knobs.Catalog, criticLR float64) Config {
	cfg := testConfig(t, cat)
	cfg.DDPG.CriticLR = criticLR
	cfg.Seed = 7
	cfg.DDPG.Seed = 7
	return cfg
}

// TestDivergenceHealsAndConverges is the headline robustness property: a
// seeded critic divergence is detected, rolled back, and — because every
// heal halves the learning rate — the run finishes healthy with the heal
// counter advanced and finite weights.
func TestDivergenceHealsAndConverges(t *testing.T) {
	cat := testCat(t)
	tn, err := New(divergentConfig(t, cat, 25))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := tn.OfflineTrainOpts(mkEnvFactory(cat, workload.SysbenchRW(), 300), TrainOptions{
		Episodes: 30,
		Workers:  1,
		Supervisor: SupervisorConfig{
			HealBudget:  20,
			WarmupSteps: 8,
			// Roll back to the pristine initial weights every time: with the
			// critic diverging from step one, any mid-run snapshot would be
			// taken during a healthy-looking but already-inflating phase.
			SnapshotEvery: 1 << 20,
			LRBackoff:     0.2,
		},
	})
	if err != nil {
		t.Fatalf("supervised run must heal its way through, got: %v", err)
	}
	if !rep.Learner.Supervised {
		t.Fatal("report must mark the run as supervised")
	}
	if rep.Learner.Heals == 0 {
		t.Fatal("a critic LR of 25 must trip the supervisor at least once")
	}
	if !rep.Learner.Healthy {
		t.Fatalf("run ended unhealthy: %s", rep.Learner.Diagnosis)
	}
	if rep.Learner.LRScale >= 1 {
		t.Fatalf("heals must have backed the learning rate off, LRScale = %v", rep.Learner.LRScale)
	}
	if rep.Episodes != 30 {
		t.Fatalf("Episodes = %d, want 30", rep.Episodes)
	}
	// The healed model must be finite end to end.
	state := make([]float64, metrics.NumMetrics)
	for _, v := range tn.Agent().Act(state) {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("healed policy emits non-finite actions")
		}
	}
}

// TestDivergenceBudgetAborts: with no heal budget, the first divergence
// aborts with a structured diagnosis instead of returning a garbage model.
func TestDivergenceBudgetAborts(t *testing.T) {
	cat := testCat(t)
	tn, err := New(divergentConfig(t, cat, 25))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := tn.OfflineTrainOpts(mkEnvFactory(cat, workload.SysbenchRW(), 300), TrainOptions{
		Episodes: 30,
		Workers:  1,
		Supervisor: SupervisorConfig{
			HealBudget:  -1, // abort on the first divergence
			WarmupSteps: 8,
		},
	})
	var dErr *DivergenceError
	if !errors.As(err, &dErr) {
		t.Fatalf("want *DivergenceError, got %v", err)
	}
	if dErr.Diagnosis.Reason == "" || dErr.Diagnosis.Step == 0 {
		t.Fatalf("diagnosis incomplete: %+v", dErr.Diagnosis)
	}
	if rep.Learner.Healthy {
		t.Fatal("report must mark the aborted run unhealthy")
	}
	if rep.Learner.Diagnosis == "" {
		t.Fatal("report must carry the rendered diagnosis")
	}
	if rep.Episodes >= 30 {
		t.Fatalf("run must have aborted early, Episodes = %d", rep.Episodes)
	}
}

// TestDivergenceSmoke drives the full stack: chaos injects
// corrupted-but-finite reward spikes that pass every environment-side
// sanitizer, the tuner is configured with the reward clamps effectively
// off (the misconfiguration the supervisor backstops), and the run must
// either heal or abort with a diagnosis — never silently return a
// poisoned model. `make divergence-smoke` runs exactly this test.
func TestDivergenceSmoke(t *testing.T) {
	cat := testCat(t)
	cfg := testConfig(t, cat)
	cfg.Seed = 11
	cfg.DDPG.Seed = 11
	cfg.DDPG.CriticLR = 0.5 // chase the spiked targets fast enough to trip in-test
	cfg.RewardScale = 1
	cfg.RewardClip = 1e9 // clamps effectively off
	cfg.RewardFloor = 1e9
	tn, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	in := chaos.New(chaos.Config{Seed: 11, SpikeProb: 0.25, SpikeFactor: 1e3})
	mk := func(ep int) *env.Env {
		db := simdb.New(knobs.EngineCDB, simdb.CDBA, 500+int64(ep))
		return env.New(in.Wrap(db), cat, workload.SysbenchRW())
	}
	rep, err := tn.OfflineTrainOpts(mk, TrainOptions{
		Episodes: 24,
		Workers:  2,
		Supervisor: SupervisorConfig{
			QLimit:      200, // the honest Q scale of this reward function
			WarmupSteps: 8,
		},
	})
	if in.Counters().Spikes == 0 {
		t.Fatal("chaos injected no reward spikes; the smoke test exercised nothing")
	}
	if err != nil {
		var dErr *DivergenceError
		if !errors.As(err, &dErr) {
			t.Fatalf("a supervised run may only fail with a *DivergenceError, got: %v", err)
		}
		if rep.Learner.Diagnosis == "" {
			t.Fatal("aborted run must carry a diagnosis")
		}
		return // clean abort is an acceptable outcome
	}
	if rep.Learner.Heals == 0 && rep.Learner.SkippedBatches == 0 {
		t.Fatal("spiked rewards reached the learner but the supervisor never engaged")
	}
	state := make([]float64, metrics.NumMetrics)
	for _, v := range tn.Agent().Act(state) {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("run reported healthy but the policy is non-finite")
		}
	}
}

// slowDB wraps a database with a fixed real-time delay per stress test,
// standing in for a hung collector or an instance that stopped answering.
type slowDB struct {
	env.Database
	delay time.Duration
}

func (d *slowDB) RunWorkload(w workload.Workload, sec float64) (simdb.Result, error) {
	time.Sleep(d.delay)
	return d.Database.RunWorkload(w, sec)
}

func TestTrainDeadlineStopsPromptly(t *testing.T) {
	cat := testCat(t)
	tn, err := New(testConfig(t, cat))
	if err != nil {
		t.Fatal(err)
	}
	mk := func(ep int) *env.Env {
		db := simdb.New(knobs.EngineCDB, simdb.CDBA, 900+int64(ep))
		return env.New(&slowDB{Database: db, delay: 3 * time.Millisecond}, cat, workload.SysbenchRW())
	}
	start := time.Now()
	rep, err := tn.OfflineTrainOpts(mk, TrainOptions{
		Episodes: 500,
		Workers:  3,
		Deadline: 150 * time.Millisecond,
	})
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("deadline did not stop the run promptly: %v", elapsed)
	}
	if rep.Episodes >= 500 {
		t.Fatalf("run claims all %d episodes despite the deadline", rep.Episodes)
	}
	// The partial report is valid accounting.
	if rep.Iterations != tn.Iterations() {
		t.Fatalf("partial report iterations %d != tuner %d", rep.Iterations, tn.Iterations())
	}
	if rep.Episodes > 0 && rep.VirtualSeconds <= 0 {
		t.Fatal("completed episodes must have charged virtual time")
	}
}

func TestTrainCtxCancelStopsMultiWorkerRun(t *testing.T) {
	cat := testCat(t)
	tn, err := New(testConfig(t, cat))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var after atomic.Int32
	rep, err := tn.OfflineTrainOpts(mkEnvFactory(cat, workload.SysbenchRW(), 700), TrainOptions{
		Episodes: 200,
		Workers:  4,
		Ctx:      ctx,
		OnEpisode: func(s EpisodeStats) {
			if after.Add(1) == 3 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if rep.Episodes < 3 || rep.Episodes >= 200 {
		t.Fatalf("Episodes = %d, want a partial count ≥ 3", rep.Episodes)
	}
	if rep.BestPerf.Throughput <= 0 {
		t.Fatal("partial report lost the best performance seen")
	}
}

func TestStallWatchdogFlagsStuckWorker(t *testing.T) {
	cat := testCat(t)
	cfg := testConfig(t, cat)
	cfg.StepsPerEpisode = 5
	cfg.SnapshotEvery = -1 // probes would double the slow measurements
	tn, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(ep int) *env.Env {
		db := simdb.New(knobs.EngineCDB, simdb.CDBA, 40+int64(ep))
		return env.New(&slowDB{Database: db, delay: 80 * time.Millisecond}, cat, workload.SysbenchRW())
	}
	var (
		mu      sync.Mutex
		flagged []int
	)
	rep, err := tn.OfflineTrainOpts(mk, TrainOptions{
		Episodes:     2,
		Workers:      1,
		StallTimeout: 20 * time.Millisecond,
		OnStall: func(worker int, stuck time.Duration) {
			mu.Lock()
			flagged = append(flagged, worker)
			mu.Unlock()
			if stuck < 20*time.Millisecond {
				t.Errorf("flagged a stall of only %v", stuck)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stalls == 0 {
		t.Fatal("an 80 ms step under a 20 ms stall timeout must be flagged")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(flagged) != rep.Stalls {
		t.Fatalf("OnStall fired %d times but report counts %d stalls", len(flagged), rep.Stalls)
	}
	for _, wk := range flagged {
		if wk != 0 {
			t.Fatalf("flagged worker %d; only worker 0 ran", wk)
		}
	}
}

// cancelAfterDB cancels a context after its Nth stress test — a
// deterministic mid-request cancellation for the online path.
type cancelAfterDB struct {
	env.Database
	after  int
	count  int
	cancel context.CancelFunc
}

func (d *cancelAfterDB) RunWorkload(w workload.Workload, sec float64) (simdb.Result, error) {
	d.count++
	if d.count == d.after {
		d.cancel()
	}
	return d.Database.RunWorkload(w, sec)
}

func TestOnlineTuneCtxCancelDeploysBestKnown(t *testing.T) {
	cat := testCat(t)
	tn, err := New(testConfig(t, cat))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	db := &cancelAfterDB{
		Database: simdb.New(knobs.EngineCDB, simdb.CDBA, 77),
		after:    3, // initial measure + two tuning steps, then cancel
		cancel:   cancel,
	}
	e := env.New(db, cat, workload.SysbenchRW())
	res, err := tn.OnlineTuneCtx(ctx, e, 5, false, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if res.Initial.Throughput <= 0 || len(res.History) == 0 {
		t.Fatalf("partial accounting missing: initial %+v, %d history entries", res.Initial, len(res.History))
	}
	// The abandoned request must still leave the instance on the best
	// configuration it measured. Knob quantization makes CurrentKnobs differ
	// from the raw action vector, so compare against a reference instance
	// with the same config deployed.
	ref := simdb.New(knobs.EngineCDB, simdb.CDBA, 77)
	if _, err := ref.ApplyKnobs(cat, res.Best); err != nil {
		t.Fatal(err)
	}
	cur, want := db.CurrentKnobs(cat), ref.CurrentKnobs(cat)
	for i := range cur {
		if math.Abs(cur[i]-want[i]) > 1e-9 {
			t.Fatalf("instance not on best-known config at knob %d: %v vs %v", i, cur[i], want[i])
		}
	}
}

func TestEnvBindCancellation(t *testing.T) {
	cat := testCat(t)
	db := simdb.New(knobs.EngineCDB, simdb.CDBA, 5)
	e := env.New(db, cat, workload.SysbenchRW())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e.Bind(ctx)
	if _, err := e.Measure(); !errors.Is(err, context.Canceled) {
		t.Fatalf("bound Measure after cancel: want context.Canceled, got %v", err)
	}
	if _, err := e.Step(e.Default()); !errors.Is(err, context.Canceled) {
		t.Fatalf("bound Step after cancel: want context.Canceled, got %v", err)
	}
	if f := e.Faults(); f.Any() {
		t.Fatalf("cancellation must not count as a measurement fault: %+v", f)
	}
	e.Bind(nil)
	if _, err := e.Measure(); err != nil {
		t.Fatalf("unbound environment must measure normally: %v", err)
	}
}
