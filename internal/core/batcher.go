package core

import (
	"sync"
	"time"

	"cdbtune/internal/rl"
)

// defaultInferWait is the batcher's latency cap: after the first pending
// request, at most this long is spent waiting for more workers to show up
// before the batch is flushed. It bounds the worst case a lone worker
// pays for batching at a fraction of a single environment step.
const defaultInferWait = 200 * time.Microsecond

// actRequest is one worker's pending action selection: the normalized
// state to act on, whether to explore, the worker's forked noise process
// (nil lets the agent fall back to its own), and the channel the chosen
// action is delivered on.
type actRequest struct {
	state []float64
	noisy bool
	noise rl.Noise
	reply chan []float64
}

// inferBatcher is the batched inference front-end of the parallel
// trainer: in-flight workers enqueue their states onto one channel, a
// single collector goroutine folds everything pending (up to maxBatch,
// waiting at most `wait` for stragglers) into one agent.ActBatch forward
// pass under a single agentMu acquisition, perturbs the exploring
// requests, and fans the actions back out. N workers asking for actions
// cost one lock round-trip and one network traversal instead of N.
//
// Ordering contract: requests from different workers carry no ordering
// guarantee — they are batched in channel-arrival order and answered
// together. Each worker blocks on its own reply, so the per-episode
// sequence observe(s,a,r,s') the worker later stores is always internally
// consistent; only cross-worker interleaving (which the replay pool is
// explicitly designed to tolerate, §2.2.4's i.i.d.-ifying random
// sampling) is left unspecified.
type inferBatcher struct {
	t        *Tuner
	maxBatch int
	wait     time.Duration
	reqs     chan actRequest
	quit     chan struct{}
	done     sync.WaitGroup

	mu       sync.Mutex
	requests int
	batches  int
	largest  int
}

// newInferBatcher starts a collector serving at most maxBatch requests
// per forward pass. Callers stop it with stop() once every worker that
// could submit has exited.
func newInferBatcher(t *Tuner, maxBatch int) *inferBatcher {
	if maxBatch < 1 {
		maxBatch = 1
	}
	b := &inferBatcher{
		t:        t,
		maxBatch: maxBatch,
		wait:     defaultInferWait,
		reqs:     make(chan actRequest, maxBatch),
		quit:     make(chan struct{}),
	}
	b.done.Add(1)
	go b.loop()
	return b
}

// stop shuts the collector down. It must only be called after all
// submitting workers have returned (the trainer calls it after
// wg.Wait()), so no request can be stranded without a reply.
func (b *inferBatcher) stop() {
	close(b.quit)
	b.done.Wait()
}

// act submits one action-selection request and blocks until the batched
// forward pass that includes it completes.
func (b *inferBatcher) act(state []float64, noisy bool, noise rl.Noise) []float64 {
	reply := make(chan []float64, 1)
	b.reqs <- actRequest{state: state, noisy: noisy, noise: noise, reply: reply}
	return <-reply
}

// loop is the collector: take one request, gather whatever else arrives
// within the latency cap (or until the batch is full), flush.
func (b *inferBatcher) loop() {
	defer b.done.Done()
	for {
		var first actRequest
		select {
		case first = <-b.reqs:
		case <-b.quit:
			return
		}
		batch := append(make([]actRequest, 0, b.maxBatch), first)
		timer := time.NewTimer(b.wait)
	gather:
		for len(batch) < b.maxBatch {
			select {
			case r := <-b.reqs:
				batch = append(batch, r)
			case <-timer.C:
				break gather
			}
		}
		timer.Stop()
		b.flush(batch)
	}
}

// flush runs the shared forward pass and answers every request in the
// batch. The whole batch — forward pass plus per-request noise — costs
// one agentMu acquisition.
func (b *inferBatcher) flush(batch []actRequest) {
	states := make([][]float64, len(batch))
	for i, r := range batch {
		states[i] = r.state
	}
	t := b.t
	t.agentMu.Lock()
	acts := t.agent.ActBatch(states)
	for i, r := range batch {
		if r.noisy {
			acts[i] = t.agent.Perturb(acts[i], r.noise)
		}
	}
	t.agentMu.Unlock()
	for i, r := range batch {
		r.reply <- acts[i]
	}
	b.mu.Lock()
	b.requests += len(batch)
	b.batches++
	if len(batch) > b.largest {
		b.largest = len(batch)
	}
	b.mu.Unlock()
}

// meanBatch reports the mean number of requests folded into one forward
// pass so far; 1 before any batch has flushed.
func (b *inferBatcher) meanBatch() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.batches == 0 {
		return 1
	}
	return float64(b.requests) / float64(b.batches)
}
