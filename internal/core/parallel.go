package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"cdbtune/internal/simdb"
)

// OfflineTrainParallel runs offline training with `workers` concurrent
// environments sharing one agent, the simulator's stand-in for the 30
// training servers §5.1 uses to cut offline training time.
func (t *Tuner) OfflineTrainParallel(mkEnv EnvFactory, episodes, workers int) (TrainReport, error) {
	return t.OfflineTrainOpts(mkEnv, TrainOptions{Episodes: episodes, Workers: workers})
}

// OfflineTrainOpts is the offline trainer behind OfflineTrain and
// OfflineTrainParallel: a work-sharing loop where each worker repeatedly
// claims the next episode index, runs it on a fresh environment from
// mkEnv, and folds the outcome into one shared report. Gradient updates
// are serialized on the agent lock, but the other two hot-path agent
// operations scale past it: with Workers ≥ 2 an inference batcher folds
// concurrent action requests into one shared forward pass (see
// TrainOptions.InferBatch), and with Config.MemoryShards ≥ 2 workers
// store transitions into the lock-striped replay pool without touching
// the agent lock at all. The stress tests — the expensive part in real
// life — always run concurrently.
//
// The serial training semantics are preserved at any worker count:
//
//   - mkEnv(ep) is called exactly once per episode index, in order (plus
//     one extra call per snapshot probe when TrainOptions.ProbeEnv is nil;
//     see TrainOptions). Exceptions: an episode interrupted by a lost
//     worker, or in flight when a resumed run was killed, re-runs, so
//     mkEnv sees that index again.
//   - Exploration noise decays once per *completed episode* on one shared
//     schedule, so sigma after N episodes matches serial training no
//     matter how many workers ran them. Each worker explores with its own
//     fork of the noise process, keeping OU temporal correlation within,
//     not across, concurrent episodes. A respawned worker forks from the
//     canonical process, so it rejoins the same schedule.
//   - Convergence (§C.1.1) is detected over episodes in completion order,
//     which for one worker is exactly the serial episode order.
//   - TrainReport.VirtualSeconds sums every environment's clock, snapshot
//     probes included — the single-server cost, without the
//     parallel-worker discount.
//
// Resilience: an episode whose error is an absorbed environment fault
// never reaches this loop (see runEpisode); a worker whose environment
// reports simdb.ErrWorkerLost is respawned (up to
// TrainOptions.MaxWorkerRespawns) and its episode re-queued; any other
// episode error stops the handout of new episodes, in-flight episodes on
// other workers drain, and the error is returned. With
// TrainOptions.Checkpoint set, completed-episode accounting and the full
// learning state persist atomically every Checkpointer.Every episodes,
// and TrainOptions.Resume continues a killed run so its final report
// matches an uninterrupted one's episode accounting.
func (t *Tuner) OfflineTrainOpts(mkEnv EnvFactory, opts TrainOptions) (TrainReport, error) {
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	probeEnv := opts.ProbeEnv
	if probeEnv == nil {
		probeEnv = mkEnv
	}
	maxRespawns := opts.MaxWorkerRespawns
	if maxRespawns <= 0 {
		maxRespawns = 8
	}
	ctx := opts.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Deadline)
		defer cancel()
	}

	var rep TrainReport
	var next int
	if opts.Checkpoint != nil && opts.Resume {
		saved, found, err := opts.Checkpoint.Load(t)
		if err != nil {
			return rep, err
		}
		if found {
			rep = saved
			rep.Resumed = true
			rep.ResumedEpisodes = saved.Episodes
			next = saved.Episodes
		}
	}
	// A resumed run's checkpoint carries the prior segment's learner
	// accounting: the supervisor restarts from zero, so its counters are
	// added on top of these.
	priorLearner := rep.Learner

	if !opts.Supervisor.Disabled {
		// qBound is the largest honest stored-return magnitude: stored
		// rewards live in [−RewardFloor, RewardClip] and the discounted sum
		// of a constant bounded reward is bound/(1−γ).
		qBound := t.cfg.RewardClip
		if t.cfg.RewardFloor > qBound {
			qBound = t.cfg.RewardFloor
		}
		if g := t.cfg.DDPG.Gamma; g > 0 && g < 1 {
			qBound /= 1 - g
		}
		t.agentMu.Lock()
		t.super = newSupervisor(opts.Supervisor, t.agent, qBound)
		t.agentMu.Unlock()
		defer func() { t.super = nil }()
	}

	if workers > 1 && opts.InferBatch != 1 {
		maxBatch := opts.InferBatch
		if maxBatch <= 0 {
			maxBatch = workers
		}
		t.infer = newInferBatcher(t, maxBatch)
		// Workers have all joined by the time the deferred stop runs, so
		// no request can be in flight.
		defer func() {
			t.infer.stop()
			t.infer = nil
		}()
	}
	var (
		mu    sync.Mutex
		wg    sync.WaitGroup
		retry []int // episodes interrupted by a lost worker, run next
		fatal error

		// flat and bestSoFar drive the §C.1.1 convergence rule over
		// completed episodes: converged once the best performance seen has
		// not improved by more than ConvergeEps for ConvergeWindow
		// consecutive episodes. A resumed run re-arms the window from the
		// checkpointed best.
		flat      int
		bestSoFar = rep.BestPerf.Throughput
	)
	takeEpisode := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if fatal != nil {
			return 0, false
		}
		if err := ctx.Err(); err != nil {
			// Cancellation is the run's terminal condition, not an episode
			// failure: stop the handout and surface ctx's error.
			fatal = err
			return 0, false
		}
		if len(retry) > 0 {
			ep := retry[0]
			retry = retry[1:]
			return ep, true
		}
		if next >= opts.Episodes {
			return 0, false
		}
		ep := next
		next++
		return ep, true
	}
	checkpoint := func() {
		// Caller holds mu; save takes the agent lock internally (the
		// mu → agentMu order every accounting path uses).
		if opts.Checkpoint == nil {
			return
		}
		every := opts.Checkpoint.Every
		if every < 1 {
			every = 1
		}
		if rep.Episodes%every != 0 && rep.Episodes != opts.Episodes {
			return
		}
		rep.Learner = t.learnerReport(priorLearner)
		if err := opts.Checkpoint.save(t, rep); err != nil && fatal == nil {
			fatal = err
		}
	}
	// Stall watchdog: each worker stamps a heartbeat (real time) before
	// every environment step and clears it while doing accounting; the
	// watchdog goroutine flags any heartbeat older than StallTimeout, once
	// per stuck step.
	var beats []atomic.Int64
	var watchStop, watchDone chan struct{}
	if opts.StallTimeout > 0 {
		beats = make([]atomic.Int64, workers)
		watchStop = make(chan struct{})
		watchDone = make(chan struct{})
		go func() {
			defer close(watchDone)
			lastFlag := make([]int64, len(beats))
			period := opts.StallTimeout / 4
			if period < time.Millisecond {
				period = time.Millisecond
			}
			tick := time.NewTicker(period)
			defer tick.Stop()
			for {
				select {
				case <-watchStop:
					return
				case <-tick.C:
					now := time.Now().UnixNano()
					for i := range beats {
						b := beats[i].Load()
						if b == 0 || b == lastFlag[i] || now-b < int64(opts.StallTimeout) {
							continue
						}
						lastFlag[i] = b
						mu.Lock()
						rep.Stalls++
						mu.Unlock()
						if opts.OnStall != nil {
							opts.OnStall(i, time.Duration(now-b))
						}
					}
				}
			}
		}()
	}
	var runWorker func(wk int)
	runWorker = func(wk int) {
		defer wg.Done()
		beat := func() {}
		idle := func() {}
		if beats != nil {
			b := &beats[wk]
			beat = func() { b.Store(time.Now().UnixNano()) }
			idle = func() { b.Store(0) }
			defer idle()
		}
		t.agentMu.Lock()
		noise := t.agent.Noise.Fork()
		t.agentMu.Unlock()
		for {
			ep, ok := takeEpisode()
			if !ok {
				return
			}
			e := mkEnv(ep)
			e.Bind(ctx)
			var st epStats
			var err error
			if e.Cat.Len() != t.cfg.Cat.Len() {
				err = fmt.Errorf("episode env has %d knobs, tuner expects %d", e.Cat.Len(), t.cfg.Cat.Len())
			} else {
				st, err = t.runEpisode(ctx, e, true, noise, beat)
			}
			seconds := e.Clock.Seconds()
			faults := e.Faults()
			if err == nil && t.cfg.SnapshotEvery > 0 && (ep+1)%t.cfg.SnapshotEvery == 0 {
				pe := probeEnv(ep)
				pe.Bind(ctx)
				beat()
				err = t.maybeSnapshot(pe)
				seconds += pe.Clock.Seconds()
				faults.Add(pe.Faults())
			}
			idle()
			mu.Lock()
			if err != nil {
				if errors.Is(err, simdb.ErrWorkerLost) && fatal == nil {
					// The training server died mid-episode. The partial
					// episode's cost and faults are real; the episode
					// itself re-queues and a replacement worker takes
					// over on the shared annealing schedule.
					rep.WorkerDeaths++
					rep.VirtualSeconds += seconds
					rep.Faults.Add(faults)
					retry = append(retry, ep)
					if rep.WorkerDeaths > maxRespawns {
						fatal = fmt.Errorf("core: lost %d training workers (budget %d): %w", rep.WorkerDeaths, maxRespawns, err)
						mu.Unlock()
						return
					}
					wg.Add(1)
					go runWorker(wk)
					mu.Unlock()
					return
				}
				if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
					// Cancelled mid-episode: the partial episode's cost is
					// real and belongs in the report; the run's error is
					// ctx's own, not an episode failure.
					rep.VirtualSeconds += seconds
					rep.Faults.Add(faults)
					if fatal == nil {
						fatal = err
					}
					mu.Unlock()
					return
				}
				if fatal == nil {
					fatal = fmt.Errorf("core: episode %d: %w", ep, err)
				}
				mu.Unlock()
				return
			}
			rep.Episodes++
			rep.Crashes += st.crashes
			if st.lost {
				rep.LostEpisodes++
			}
			rep.Faults.Add(faults)
			if st.best.Throughput > rep.BestPerf.Throughput {
				rep.BestPerf = st.best
			}
			rep.VirtualSeconds += seconds
			if bestSoFar > 0 && st.best.Throughput <= bestSoFar*(1+t.cfg.ConvergeEps) {
				flat++
			} else {
				flat = 0
			}
			if st.best.Throughput > bestSoFar {
				bestSoFar = st.best.Throughput
			}
			if !rep.Converged && flat >= t.cfg.ConvergeWindow {
				rep.Converged = true
				rep.ConvergedAt = t.Iterations()
			}
			// One decay per completed episode on the canonical process,
			// then sync this worker's fork to the shared schedule.
			t.agentMu.Lock()
			sigma := t.agent.Noise.Decay()
			var sup SupervisorStats
			if t.super != nil {
				sup = t.super.Stats()
			}
			t.agentMu.Unlock()
			noise.SetScale(sigma)
			noise.Reset()
			checkpoint()
			if opts.OnEpisode != nil {
				inferMean := 1.0
				if t.infer != nil {
					inferMean = t.infer.meanBatch()
				}
				opts.OnEpisode(EpisodeStats{
					Episode:        ep,
					Worker:         wk,
					Steps:          st.steps,
					Crashes:        st.crashes,
					BestThroughput: st.best.Throughput,
					MeanReward:     st.meanReward(),
					CriticLoss:     st.updates.meanCritic(),
					ActorLoss:      st.updates.meanActor(),
					NoiseSigma:     sigma,
					VirtualSeconds: seconds,
					InferBatchMean: inferMean,
					MemoryShards:   t.memShards,
					Transients:     faults.Transients,
					Retries:        faults.Retries,
					SkippedSteps:   st.skipped,
					Lost:           st.lost,
					Heals:          sup.Heals,
					SkippedBatches: sup.SkippedBatches,
					MeanAbsQ:       sup.MeanAbsQ,
					CriticGradNorm: sup.GradNorm,
				})
			}
			mu.Unlock()
		}
	}
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go runWorker(wk)
	}
	wg.Wait()
	if watchStop != nil {
		// Join the watchdog before touching rep: it writes rep.Stalls.
		close(watchStop)
		<-watchDone
	}
	rep.Learner = t.learnerReport(priorLearner)
	rep.Iterations = t.Iterations()
	if fatal != nil {
		return rep, fatal
	}
	if err := t.restoreBest(); err != nil {
		return rep, err
	}
	return rep, nil
}

// learnerReport folds the installed supervisor's counters (when one is
// installed) on top of the prior accounting a resumed checkpoint carried.
// Counter fields add; gauge fields reflect the current run.
func (t *Tuner) learnerReport(prior LearnerReport) LearnerReport {
	if t.super == nil {
		return prior
	}
	t.agentMu.Lock()
	s := t.super.Stats()
	d := t.super.Diagnosis()
	t.agentMu.Unlock()
	out := LearnerReport{
		Supervised:     true,
		Heals:          prior.Heals + s.Heals,
		Snapshots:      prior.Snapshots + s.Snapshots,
		SkippedBatches: prior.SkippedBatches + s.SkippedBatches,
		LRScale:        s.LRScale,
		MeanAbsQ:       s.MeanAbsQ,
		GradNorm:       s.GradNorm,
		Saturation:     s.Saturation,
		MaxWeight:      s.MaxWeight,
		Healthy:        s.Healthy,
	}
	if d != nil {
		out.Diagnosis = d.String()
	}
	return out
}
