package core

import (
	"errors"
	"fmt"
	"sync"

	"cdbtune/internal/simdb"
)

// OfflineTrainParallel runs offline training with `workers` concurrent
// environments sharing one agent, the simulator's stand-in for the 30
// training servers §5.1 uses to cut offline training time.
func (t *Tuner) OfflineTrainParallel(mkEnv EnvFactory, episodes, workers int) (TrainReport, error) {
	return t.OfflineTrainOpts(mkEnv, TrainOptions{Episodes: episodes, Workers: workers})
}

// OfflineTrainOpts is the offline trainer behind OfflineTrain and
// OfflineTrainParallel: a work-sharing loop where each worker repeatedly
// claims the next episode index, runs it on a fresh environment from
// mkEnv, and folds the outcome into one shared report. Gradient updates
// are serialized on the agent lock, but the other two hot-path agent
// operations scale past it: with Workers ≥ 2 an inference batcher folds
// concurrent action requests into one shared forward pass (see
// TrainOptions.InferBatch), and with Config.MemoryShards ≥ 2 workers
// store transitions into the lock-striped replay pool without touching
// the agent lock at all. The stress tests — the expensive part in real
// life — always run concurrently.
//
// The serial training semantics are preserved at any worker count:
//
//   - mkEnv(ep) is called exactly once per episode index, in order (plus
//     one extra call per snapshot probe when TrainOptions.ProbeEnv is nil;
//     see TrainOptions). Exceptions: an episode interrupted by a lost
//     worker, or in flight when a resumed run was killed, re-runs, so
//     mkEnv sees that index again.
//   - Exploration noise decays once per *completed episode* on one shared
//     schedule, so sigma after N episodes matches serial training no
//     matter how many workers ran them. Each worker explores with its own
//     fork of the noise process, keeping OU temporal correlation within,
//     not across, concurrent episodes. A respawned worker forks from the
//     canonical process, so it rejoins the same schedule.
//   - Convergence (§C.1.1) is detected over episodes in completion order,
//     which for one worker is exactly the serial episode order.
//   - TrainReport.VirtualSeconds sums every environment's clock, snapshot
//     probes included — the single-server cost, without the
//     parallel-worker discount.
//
// Resilience: an episode whose error is an absorbed environment fault
// never reaches this loop (see runEpisode); a worker whose environment
// reports simdb.ErrWorkerLost is respawned (up to
// TrainOptions.MaxWorkerRespawns) and its episode re-queued; any other
// episode error stops the handout of new episodes, in-flight episodes on
// other workers drain, and the error is returned. With
// TrainOptions.Checkpoint set, completed-episode accounting and the full
// learning state persist atomically every Checkpointer.Every episodes,
// and TrainOptions.Resume continues a killed run so its final report
// matches an uninterrupted one's episode accounting.
func (t *Tuner) OfflineTrainOpts(mkEnv EnvFactory, opts TrainOptions) (TrainReport, error) {
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	probeEnv := opts.ProbeEnv
	if probeEnv == nil {
		probeEnv = mkEnv
	}
	maxRespawns := opts.MaxWorkerRespawns
	if maxRespawns <= 0 {
		maxRespawns = 8
	}

	var rep TrainReport
	var next int
	if opts.Checkpoint != nil && opts.Resume {
		saved, found, err := opts.Checkpoint.Load(t)
		if err != nil {
			return rep, err
		}
		if found {
			rep = saved
			rep.Resumed = true
			rep.ResumedEpisodes = saved.Episodes
			next = saved.Episodes
		}
	}

	if workers > 1 && opts.InferBatch != 1 {
		maxBatch := opts.InferBatch
		if maxBatch <= 0 {
			maxBatch = workers
		}
		t.infer = newInferBatcher(t, maxBatch)
		// Workers have all joined by the time the deferred stop runs, so
		// no request can be in flight.
		defer func() {
			t.infer.stop()
			t.infer = nil
		}()
	}
	var (
		mu    sync.Mutex
		wg    sync.WaitGroup
		retry []int // episodes interrupted by a lost worker, run next
		fatal error

		// flat and bestSoFar drive the §C.1.1 convergence rule over
		// completed episodes: converged once the best performance seen has
		// not improved by more than ConvergeEps for ConvergeWindow
		// consecutive episodes. A resumed run re-arms the window from the
		// checkpointed best.
		flat      int
		bestSoFar = rep.BestPerf.Throughput
	)
	takeEpisode := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if fatal != nil {
			return 0, false
		}
		if len(retry) > 0 {
			ep := retry[0]
			retry = retry[1:]
			return ep, true
		}
		if next >= opts.Episodes {
			return 0, false
		}
		ep := next
		next++
		return ep, true
	}
	checkpoint := func() {
		// Caller holds mu; save takes the agent lock internally (the
		// mu → agentMu order every accounting path uses).
		if opts.Checkpoint == nil {
			return
		}
		every := opts.Checkpoint.Every
		if every < 1 {
			every = 1
		}
		if rep.Episodes%every != 0 && rep.Episodes != opts.Episodes {
			return
		}
		if err := opts.Checkpoint.save(t, rep); err != nil && fatal == nil {
			fatal = err
		}
	}
	var runWorker func(wk int)
	runWorker = func(wk int) {
		defer wg.Done()
		t.agentMu.Lock()
		noise := t.agent.Noise.Fork()
		t.agentMu.Unlock()
		for {
			ep, ok := takeEpisode()
			if !ok {
				return
			}
			e := mkEnv(ep)
			var st epStats
			var err error
			if e.Cat.Len() != t.cfg.Cat.Len() {
				err = fmt.Errorf("episode env has %d knobs, tuner expects %d", e.Cat.Len(), t.cfg.Cat.Len())
			} else {
				st, err = t.runEpisode(e, true, noise)
			}
			seconds := e.Clock.Seconds()
			faults := e.Faults()
			if err == nil && t.cfg.SnapshotEvery > 0 && (ep+1)%t.cfg.SnapshotEvery == 0 {
				pe := probeEnv(ep)
				err = t.maybeSnapshot(pe)
				seconds += pe.Clock.Seconds()
				faults.Add(pe.Faults())
			}
			mu.Lock()
			if err != nil {
				if errors.Is(err, simdb.ErrWorkerLost) && fatal == nil {
					// The training server died mid-episode. The partial
					// episode's cost and faults are real; the episode
					// itself re-queues and a replacement worker takes
					// over on the shared annealing schedule.
					rep.WorkerDeaths++
					rep.VirtualSeconds += seconds
					rep.Faults.Add(faults)
					retry = append(retry, ep)
					if rep.WorkerDeaths > maxRespawns {
						fatal = fmt.Errorf("core: lost %d training workers (budget %d): %w", rep.WorkerDeaths, maxRespawns, err)
						mu.Unlock()
						return
					}
					wg.Add(1)
					go runWorker(wk)
					mu.Unlock()
					return
				}
				if fatal == nil {
					fatal = fmt.Errorf("core: episode %d: %w", ep, err)
				}
				mu.Unlock()
				return
			}
			rep.Episodes++
			rep.Crashes += st.crashes
			if st.lost {
				rep.LostEpisodes++
			}
			rep.Faults.Add(faults)
			if st.best.Throughput > rep.BestPerf.Throughput {
				rep.BestPerf = st.best
			}
			rep.VirtualSeconds += seconds
			if bestSoFar > 0 && st.best.Throughput <= bestSoFar*(1+t.cfg.ConvergeEps) {
				flat++
			} else {
				flat = 0
			}
			if st.best.Throughput > bestSoFar {
				bestSoFar = st.best.Throughput
			}
			if !rep.Converged && flat >= t.cfg.ConvergeWindow {
				rep.Converged = true
				rep.ConvergedAt = t.Iterations()
			}
			// One decay per completed episode on the canonical process,
			// then sync this worker's fork to the shared schedule.
			t.agentMu.Lock()
			sigma := t.agent.Noise.Decay()
			t.agentMu.Unlock()
			noise.SetScale(sigma)
			noise.Reset()
			checkpoint()
			if opts.OnEpisode != nil {
				inferMean := 1.0
				if t.infer != nil {
					inferMean = t.infer.meanBatch()
				}
				opts.OnEpisode(EpisodeStats{
					Episode:        ep,
					Worker:         wk,
					Steps:          st.steps,
					Crashes:        st.crashes,
					BestThroughput: st.best.Throughput,
					MeanReward:     st.meanReward(),
					CriticLoss:     st.updates.meanCritic(),
					ActorLoss:      st.updates.meanActor(),
					NoiseSigma:     sigma,
					VirtualSeconds: seconds,
					InferBatchMean: inferMean,
					MemoryShards:   t.memShards,
					Transients:     faults.Transients,
					Retries:        faults.Retries,
					SkippedSteps:   st.skipped,
					Lost:           st.lost,
				})
			}
			mu.Unlock()
		}
	}
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go runWorker(wk)
	}
	wg.Wait()
	if fatal != nil {
		return rep, fatal
	}
	if err := t.restoreBest(); err != nil {
		return rep, err
	}
	rep.Iterations = t.Iterations()
	return rep, nil
}
