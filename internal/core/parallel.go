package core

import (
	"fmt"
	"sync"
)

// OfflineTrainParallel runs offline training with `workers` concurrent
// environments sharing one agent, the simulator's stand-in for the 30
// training servers §5.1 uses to cut offline training time. Agent access
// (action selection, observation, gradient updates) is serialized inside
// the tuner; the stress tests — the expensive part in real life — run
// concurrently. Episode indices are handed out in order, so mkEnv(ep) sees
// every episode exactly once.
func (t *Tuner) OfflineTrainParallel(mkEnv EnvFactory, episodes, workers int) (TrainReport, error) {
	if workers <= 1 {
		return t.OfflineTrain(mkEnv, episodes)
	}
	var (
		rep   TrainReport
		mu    sync.Mutex
		wg    sync.WaitGroup
		next  int
		fatal error
	)
	takeEpisode := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if next >= episodes || fatal != nil {
			return 0, false
		}
		ep := next
		next++
		return ep, true
	}
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				ep, ok := takeEpisode()
				if !ok {
					return
				}
				e := mkEnv(ep)
				crashes, best, _, err := t.runEpisode(e, true)
				if err == nil && t.cfg.SnapshotEvery > 0 && (ep+1)%t.cfg.SnapshotEvery == 0 {
					err = t.maybeSnapshot(mkEnv(ep))
				}
				mu.Lock()
				if err != nil && fatal == nil {
					fatal = fmt.Errorf("core: parallel episode %d: %w", ep, err)
				}
				rep.Episodes++
				rep.Crashes += crashes
				if best.Throughput > rep.BestPerf.Throughput {
					rep.BestPerf = best
				}
				if e.Clock.Seconds() > rep.VirtualSeconds {
					rep.VirtualSeconds = e.Clock.Seconds()
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if fatal != nil {
		return rep, fatal
	}
	t.agentMu.Lock()
	t.agent.Noise.Decay()
	t.agentMu.Unlock()
	if err := t.restoreBest(); err != nil {
		return rep, err
	}
	rep.Iterations = t.Iterations()
	return rep, nil
}
