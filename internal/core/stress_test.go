package core

import (
	"math/rand"
	"sync"
	"testing"

	"cdbtune/internal/metrics"
	"cdbtune/internal/rl"
	"cdbtune/internal/workload"
)

// TestConcurrentObserveSampleAct hammers the tuner's three hot-path agent
// operations from 8 goroutines at once — Observe into the sharded pool
// (no agent lock), batched Act through the inference batcher, and
// TrainStep (Sample + UpdatePriorities + gradient update) under the agent
// lock. Its job is to fail under the race detector (`make check` runs the
// suite with -race) if the concurrency contract in doc.go is ever broken.
func TestConcurrentObserveSampleAct(t *testing.T) {
	cat := testCat(t)
	cfg := testConfig(t, cat)
	cfg.MemoryShards = 8
	tn, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !tn.concMem {
		t.Fatal("MemoryShards=8 must enable lock-free observe")
	}
	tn.infer = newInferBatcher(tn, 4)
	defer func() {
		tn.infer.stop()
		tn.infer = nil
	}()

	const goroutines = 8
	const iters = 60
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			tn.agentMu.Lock()
			noise := tn.agent.Noise.Fork()
			tn.agentMu.Unlock()
			state := make([]float64, metrics.NumMetrics)
			for i := range state {
				state[i] = rng.Float64()
			}
			for i := 0; i < iters; i++ {
				act := tn.selectAction(state, i%2 == 0, noise)
				if len(act) != cat.Len() {
					t.Errorf("action dim %d, want %d", len(act), cat.Len())
					return
				}
				tn.observe(rl.Transition{
					State: state, Action: act,
					Reward: rng.Float64(), NextState: state,
				})
				if i%4 == 0 {
					tn.agentMu.Lock()
					tn.agent.TrainStep()
					tn.agentMu.Unlock()
				}
			}
		}(g)
	}
	wg.Wait()
	if got, want := tn.agent.Memory.Len(), goroutines*iters; got != want {
		t.Fatalf("memory holds %d transitions after concurrent run, want %d", got, want)
	}
	if mean := tn.infer.meanBatch(); mean < 1 {
		t.Fatalf("mean inference batch %v < 1", mean)
	}
}

// A multi-worker training run with sharding and batching enabled must
// produce the same accounting guarantees as the single-lock path: every
// episode reported once, all transitions stored, batch stats surfaced.
func TestParallelTrainingWithShardsAndBatching(t *testing.T) {
	cat := testCat(t)
	cfg := testConfig(t, cat)
	cfg.MemoryShards = 4
	cfg.SnapshotEvery = -1
	tn, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const episodes, workers = 8, 4
	var recs []EpisodeStats
	rep, err := tn.OfflineTrainOpts(mkEnvFactory(cat, workload.SysbenchRW(), 4200), TrainOptions{
		Episodes:  episodes,
		Workers:   workers,
		OnEpisode: func(s EpisodeStats) { recs = append(recs, s) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Episodes != episodes || len(recs) != episodes {
		t.Fatalf("episodes %d, telemetry records %d, want %d", rep.Episodes, len(recs), episodes)
	}
	for _, r := range recs {
		if r.MemoryShards != 4 {
			t.Fatalf("telemetry shards %d, want 4", r.MemoryShards)
		}
		if r.InferBatchMean < 1 {
			t.Fatalf("telemetry mean batch %v < 1", r.InferBatchMean)
		}
	}
	// Every step stores exactly one transition (crashed steps store their
	// penalty transition) — the sharded pool must not lose any.
	steps := 0
	for _, r := range recs {
		steps += r.Steps
	}
	if got := tn.agent.Memory.Len(); got != steps {
		t.Fatalf("memory holds %d transitions, telemetry counted %d steps", got, steps)
	}
	if tn.infer != nil {
		t.Fatal("batcher must be torn down after training")
	}
}
