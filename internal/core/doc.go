// Package core assembles CDBTune, the paper's end-to-end automatic cloud
// database tuning system (§2): the DDPG agent over the 63-metric state and
// the knob-configuration action space, the reward function of §4.2, the
// experience-replay memory pool, offline training against standard
// workloads (cold start), and the 5-step online tuning protocol with
// fine-tuning on the user's replayed workload.
//
// # Concurrency contract
//
// A Tuner is safe for one training run (OfflineTrain, OfflineTrainOpts,
// OfflineTrainParallel) or one OnlineTune call at a time; those
// entry points themselves must not be invoked concurrently with each
// other on the same Tuner. Inside a parallel training run, worker
// goroutines share the agent under this discipline:
//
//   - agentMu serializes everything that touches the agent's networks,
//     optimizers or rng: action selection (Act/ActBatch/Perturb),
//     gradient updates (TrainStep), snapshot Save/Load, and the
//     self-imitation target.
//   - Observe (storing a transition) is serialized by agentMu only when
//     the replay pool is the default single-lock flavor. With
//     Config.MemoryShards ≥ 2 the pool is an rl.ShardedMemory —
//     internally lock-striped and safe for concurrent use — and workers
//     store transitions without taking agentMu at all, so experience
//     ingestion never waits behind another worker's gradient update.
//   - Iterations and the best-snapshot bookkeeping take their own small
//     locks; TrainOptions.OnEpisode hooks run under the trainer's
//     accounting lock, serialized in episode-completion order.
//
// Data flow of one parallel training step, with the batched inference
// front-end the trainer installs when Workers ≥ 2:
//
//	workers ──states──► inferBatcher ──one ActBatch──► agent (agentMu)
//	   ▲                                                  │
//	   └────────────────actions (fan-out)─────────────────┘
//	workers ──transitions──► sharded replay memory (no agentMu)
//	workers ──TrainStep (sample + update)──► agent (agentMu)
//
// The batcher folds every in-flight action request (up to the worker
// count, waiting at most a 200µs latency cap for stragglers) into one
// forward pass, so a lone worker never stalls and N workers pay one lock
// round-trip instead of N. The batcher preserves each worker's own
// request/response ordering — a worker blocks until its action returns —
// but makes no promise about cross-worker interleaving of observations
// in the memory pool; replay sampling is random precisely so that order
// does not matter (§2.2.4).
package core
