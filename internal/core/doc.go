// Package core assembles CDBTune, the paper's end-to-end automatic cloud
// database tuning system (§2): the DDPG agent over the 63-metric state and
// the knob-configuration action space, the reward function of §4.2, the
// experience-replay memory pool, offline training against standard
// workloads (cold start), and the 5-step online tuning protocol with
// fine-tuning on the user's replayed workload.
//
// # Concurrency contract
//
// A Tuner is safe for one training run (OfflineTrain, OfflineTrainOpts,
// OfflineTrainParallel) or one OnlineTune call at a time; those
// entry points themselves must not be invoked concurrently with each
// other on the same Tuner. Inside a parallel training run, worker
// goroutines share the agent under this discipline:
//
//   - agentMu serializes everything that touches the agent's networks,
//     optimizers or rng: action selection (Act/ActBatch/Perturb),
//     gradient updates (TrainStep), snapshot Save/Load, and the
//     self-imitation target.
//   - Observe (storing a transition) is serialized by agentMu only when
//     the replay pool is the default single-lock flavor. With
//     Config.MemoryShards ≥ 2 the pool is an rl.ShardedMemory —
//     internally lock-striped and safe for concurrent use — and workers
//     store transitions without taking agentMu at all, so experience
//     ingestion never waits behind another worker's gradient update.
//   - Iterations and the best-snapshot bookkeeping take their own small
//     locks; TrainOptions.OnEpisode hooks run under the trainer's
//     accounting lock, serialized in episode-completion order.
//   - The learner-health supervisor has no locking of its own: it is
//     installed before workers start and cleared after they join (both
//     under agentMu), and observe/heal/Stats are invoked only while
//     agentMu is held — observe immediately after each TrainStep, Stats
//     from the per-episode accounting section. Rollback (agent.Restore),
//     LR backoff and noise backoff therefore never race a concurrent
//     update. A *DivergenceError returned by observe propagates out of
//     the episode as a fatal error; the trainer still finalizes a valid
//     partial TrainReport (episode accounting, learner-health counters,
//     diagnosis) on that path.
//
// # Cancellation contract
//
// TrainOptions.Ctx and Deadline bound a training run; OnlineTuneCtx
// bounds an online request. The context is bound to each worker's
// environment (env.Bind), which checks it on Step/Measure entry and
// before every retry backoff — cancellation is never counted as a
// measurement fault and never retried. Workers observe cancellation at
// the next step boundary, the dispatcher stops handing out episodes, and
// the run returns ctx.Err() alongside a valid partial report. The online
// path deploys the best-known configuration before returning on
// cancellation, so an abandoned request never leaves the instance on an
// experimental config. TrainOptions.StallTimeout arms a watchdog that
// flags (OnStall, TrainReport.Stalls) workers stuck inside one step
// longer than the timeout; it observes per-worker heartbeats and never
// touches the agent.
//
// Data flow of one parallel training step, with the batched inference
// front-end the trainer installs when Workers ≥ 2:
//
//	workers ──states──► inferBatcher ──one ActBatch──► agent (agentMu)
//	   ▲                                                  │
//	   └────────────────actions (fan-out)─────────────────┘
//	workers ──transitions──► sharded replay memory (no agentMu)
//	workers ──TrainStep (sample + update)──► agent (agentMu)
//
// The batcher folds every in-flight action request (up to the worker
// count, waiting at most a 200µs latency cap for stragglers) into one
// forward pass, so a lone worker never stalls and N workers pay one lock
// round-trip instead of N. The batcher preserves each worker's own
// request/response ordering — a worker blocks until its action returns —
// but makes no promise about cross-worker interleaving of observations
// in the memory pool; replay sampling is random precisely so that order
// does not matter (§2.2.4).
//
// # Drift detection and dynamic serving
//
// ServeDynamic keeps a tuned instance healthy under a time-varying
// workload (env.Env with a workload.Timeline): short observation
// windows stream the normalized 63-metric state into a DriftDetector,
// which tracks the EWMA of the RMS fingerprint distance from a
// reference state captured right after the last (re-)tune — the same
// distance metric internal/registry uses for nearest-model lookup
// (re-implemented here because registry already imports core). When the
// smoothed distance crosses DriftConfig.Threshold the loop runs an
// in-place guarded re-tune, optionally warm-seeded from a registry
// model via the DynamicOptions.WarmSeed callback.
//
// Threshold semantics: distances are over [0,1]-normalized metrics, so
// they are comparable across workloads and hardware. Against the
// simulator the same-workload noise floor is ~0.002 RMS and benign
// diurnal wobble (±15% load) stays under ~0.005, while real phase
// changes — a 2–3× burst, a write-heavy batch window, an overnight
// trough — measure 0.03–0.15. DefaultDriftThreshold (0.02) therefore
// fires on phase changes within 2–3 observation windows (EWMA α = 0.5)
// and never on noise; raise it toward 0.05 to re-tune only on severe
// shifts, lower it toward 0.01 to chase smaller mix changes at the cost
// of more re-tune churn. Warmup and Cooldown stop the detector from
// firing off a half-filled EWMA or immediately after its own re-tune.
//
// Interaction with the Guardrail and Supervisor: every re-tune runs
// through OnlineTuneCtx under one Guardrail that persists across the
// whole serving window, so near-crash regions screened during one burst
// still veto recommendations hours later, and K consecutive failures
// inside any re-tune revert to the window's best-known-good
// configuration. Crashes at the steady serving configuration (outside a
// re-tune) recover to defaults and rebase the detector — the revert of
// last resort — and DynamicReport.Unreverted counts the violations that
// could not be recovered (zero is the safety bar). The learner-health
// Supervisor is orthogonal: it guards gradient updates during offline
// training and fine-tuning re-tunes (FineTune = true), while the drift
// detector guards the serving configuration; a Supervisor heal rolls
// back model weights, a guardrail revert rolls back the database
// config.
//
// # Buffer ownership under the pooled hot path
//
// The nn layers reuse their output matrices across passes (see the
// internal/nn package doc), so anything the agent returns from a pooled
// buffer would be clobbered by the next forward pass. The agent API this
// package consumes is therefore copy-out by contract: Act/ActBatch/
// ActNoisy return freshly allocated action slices, never views into
// network-owned scratch. That is what makes it safe for the batcher to
// release agentMu and fan actions out to workers that read them after
// another batch (or a concurrent TrainStep) has already run the actor
// again.
package core
