package core

import (
	"fmt"
	"math"

	"cdbtune/internal/rl/ddpg"
)

// SupervisorConfig tunes the learner-health supervisor. The zero value
// enables supervision with defaults sized from the tuner's reward scale;
// set Disabled to run unsupervised.
type SupervisorConfig struct {
	// Disabled turns learner-health supervision off entirely.
	Disabled bool

	// HealBudget bounds how many rollbacks the supervisor performs before
	// declaring the run unhealable and aborting with a Diagnosis instead
	// of a garbage model. 0 means the default of 3; negative aborts on the
	// first divergence.
	HealBudget int

	// QLimit is the EMA mean-|Q| level that declares critic divergence.
	// 0 derives it from the tuner's reward scale: stored rewards are
	// clamped into [−RewardFloor, RewardClip], so no honest return exceeds
	// max(RewardClip, RewardFloor)/(1−γ); the default limit is 25× that.
	QLimit float64

	// GradLimit is the EMA pre-clip gradient-norm level that declares a
	// gradient blowup. 0 derives it as 200× the agent's MaxGradNorm
	// (1000 when clipping is disabled).
	GradLimit float64

	// SaturationLimit declares a collapsed policy when the EMA fraction of
	// actor outputs pinned within 0.02 of a boundary exceeds it. Default
	// 0.995 — knob policies legitimately ride many boundaries (defaults
	// normalize near 0), so only a fully pinned policy counts.
	SaturationLimit float64

	// NonFiniteBudget is the number of consecutive discarded (non-finite)
	// batches that declares divergence. Default 3.
	NonFiniteBudget int

	// EMABeta is the smoothing factor of the health EMAs. Default 0.95.
	EMABeta float64

	// SnapshotEvery is the number of healthy train steps between
	// in-memory weight snapshots — the rollback targets. Default 64.
	SnapshotEvery int

	// WarmupSteps arms the threshold checks (Q, gradient, saturation)
	// only after this many observed train steps since start or since the
	// last heal; the non-finite check is always armed. Default 16.
	WarmupSteps int

	// LRBackoff multiplies both learning rates on every heal (default
	// 0.5); NoiseBackoff multiplies the exploration scale (default 0.7).
	// A heal that does not slow the learner down would replay the same
	// divergence from the same snapshot.
	LRBackoff    float64
	NoiseBackoff float64
}

// withDefaults fills zero-valued fields. qBound is the largest honest
// stored-return magnitude (from the tuner's reward clamps and γ);
// maxGradNorm is the agent's clip threshold.
func (c SupervisorConfig) withDefaults(qBound, maxGradNorm float64) SupervisorConfig {
	if c.HealBudget == 0 {
		c.HealBudget = 3
	}
	if c.HealBudget < 0 {
		c.HealBudget = 0
	}
	if c.QLimit == 0 {
		c.QLimit = 25 * qBound
		if c.QLimit <= 0 {
			c.QLimit = 500
		}
	}
	if c.GradLimit == 0 {
		if maxGradNorm > 0 {
			c.GradLimit = 200 * maxGradNorm
		} else {
			c.GradLimit = 1000
		}
	}
	if c.SaturationLimit == 0 {
		c.SaturationLimit = 0.995
	}
	if c.NonFiniteBudget == 0 {
		c.NonFiniteBudget = 3
	}
	if c.EMABeta == 0 {
		c.EMABeta = 0.95
	}
	if c.SnapshotEvery == 0 {
		c.SnapshotEvery = 64
	}
	if c.WarmupSteps == 0 {
		c.WarmupSteps = 16
	}
	if c.LRBackoff == 0 {
		c.LRBackoff = 0.5
	}
	if c.NoiseBackoff == 0 {
		c.NoiseBackoff = 0.7
	}
	return c
}

// Diagnosis is the structured post-mortem of a learner divergence: what
// tripped, where the health signals stood, and what the supervisor had
// already tried. It is embedded in DivergenceError when the heal budget
// is exhausted.
type Diagnosis struct {
	// Reason names the tripped check: "non-finite", "q-explosion",
	// "gradient-blowup" or "actor-saturation".
	Reason string
	// Step is the observed train-step index at detection.
	Step int
	// Heals is how many rollbacks had been spent (budget included).
	Heals int
	// MeanAbsQ, GradNorm and Saturation are the EMA health signals at
	// detection; MaxWeight the last observed weight magnitude.
	MeanAbsQ   float64
	GradNorm   float64
	Saturation float64
	MaxWeight  float64
	// SkippedBatches is the cumulative count of discarded non-finite
	// batches.
	SkippedBatches int
	// QLimit and GradLimit echo the thresholds in force.
	QLimit    float64
	GradLimit float64
}

// String renders the diagnosis as one log-friendly line.
func (d Diagnosis) String() string {
	return fmt.Sprintf("reason=%s step=%d heals=%d |Q|=%.1f (limit %.1f) grad=%.1f (limit %.1f) sat=%.3f maxW=%.2f skipped=%d",
		d.Reason, d.Step, d.Heals, d.MeanAbsQ, d.QLimit, d.GradNorm, d.GradLimit, d.Saturation, d.MaxWeight, d.SkippedBatches)
}

// DivergenceError reports that the learner diverged and the supervisor's
// heal budget could not bring it back. The embedded Diagnosis carries the
// structured post-mortem; the training report returned alongside it is
// still valid accounting.
type DivergenceError struct {
	Diagnosis Diagnosis
}

// Error implements error.
func (e *DivergenceError) Error() string {
	return "core: learner diverged beyond heal budget: " + e.Diagnosis.String()
}

// Supervisor watches every gradient update's health signals, keeps a
// rolling in-memory snapshot of the last-known-healthy weights, and heals
// divergence by rolling back with learning-rate and noise backoff. It is
// created per training run and called under the agent lock, so it needs
// no locking of its own. See the package doc for the contract.
type Supervisor struct {
	cfg   SupervisorConfig
	agent *ddpg.Agent

	snap      *ddpg.WeightSnapshot
	snapshots int

	steps       int // observed updates (lifetime)
	sinceHeal   int // observed updates since start or last heal (warmup)
	healthy     int // consecutive healthy updates (snapshot cadence)
	consecNF    int // consecutive non-finite (skipped) batches
	heals       int
	lrScale     float64
	emaQ        float64
	emaGrad     float64
	emaSat      float64
	satSeen     bool
	emaInit     bool
	lastMaxW    float64
	skippedSeen int // skipped batches observed through StepInfo
	diag        *Diagnosis
}

// newSupervisor builds a supervisor for one training run and takes the
// initial snapshot (so a rollback target always exists). Caller holds the
// agent lock.
func newSupervisor(cfg SupervisorConfig, agent *ddpg.Agent, qBound float64) *Supervisor {
	s := &Supervisor{
		cfg:     cfg.withDefaults(qBound, agent.Config().MaxGradNorm),
		agent:   agent,
		lrScale: 1,
	}
	s.snap = agent.Snapshot()
	s.snapshots++
	return s
}

// SupervisorStats is a snapshot of the supervisor's health signals for
// telemetry.
type SupervisorStats struct {
	Heals          int
	Snapshots      int
	SkippedBatches int
	LRScale        float64
	MeanAbsQ       float64
	GradNorm       float64
	Saturation     float64
	MaxWeight      float64
	QLimit         float64
	GradLimit      float64
	Healthy        bool
}

// Stats reports the current health signals. Caller holds the agent lock.
func (s *Supervisor) Stats() SupervisorStats {
	return SupervisorStats{
		Heals:          s.heals,
		Snapshots:      s.snapshots,
		SkippedBatches: s.skippedSeen,
		LRScale:        s.lrScale,
		MeanAbsQ:       s.emaQ,
		GradNorm:       s.emaGrad,
		Saturation:     s.emaSat,
		MaxWeight:      s.lastMaxW,
		QLimit:         s.cfg.QLimit,
		GradLimit:      s.cfg.GradLimit,
		Healthy:        s.diag == nil,
	}
}

// observe folds one gradient update's health signals into the EMAs,
// checks the divergence conditions, and heals (or aborts with a
// *DivergenceError once the budget is spent). Caller holds the agent
// lock. A nil return means the learner is healthy or was healed.
func (s *Supervisor) observe(info ddpg.StepInfo) error {
	s.steps++
	s.sinceHeal++

	if info.SkippedNonFinite {
		s.skippedSeen++
		s.consecNF++
		s.healthy = 0
		if s.consecNF >= s.cfg.NonFiniteBudget {
			return s.heal("non-finite")
		}
		return nil
	}
	s.consecNF = 0

	beta := s.cfg.EMABeta
	if !s.emaInit {
		s.emaInit = true
		s.emaQ = info.MeanAbsQ
		s.emaGrad = info.CriticGradNorm
	} else {
		s.emaQ = beta*s.emaQ + (1-beta)*info.MeanAbsQ
		s.emaGrad = beta*s.emaGrad + (1-beta)*info.CriticGradNorm
	}
	if info.ActorUpdated {
		if info.ActorGradNorm > s.emaGrad {
			s.emaGrad = beta*s.emaGrad + (1-beta)*info.ActorGradNorm
		}
		if !s.satSeen {
			s.satSeen = true
			s.emaSat = info.ActorSaturation
		} else {
			s.emaSat = beta*s.emaSat + (1-beta)*info.ActorSaturation
		}
	}
	s.lastMaxW = info.MaxWeight

	// NaN/Inf anywhere in the weights is divergence regardless of warmup:
	// the skip guard keeps poisoned *batches* out, so a non-finite weight
	// means the optimizer itself overflowed.
	if math.IsNaN(info.MaxWeight) || math.IsInf(info.MaxWeight, 0) {
		return s.heal("non-finite")
	}
	if s.sinceHeal >= s.cfg.WarmupSteps {
		switch {
		case s.emaQ > s.cfg.QLimit || info.MeanAbsQ > 10*s.cfg.QLimit:
			return s.heal("q-explosion")
		case s.emaGrad > s.cfg.GradLimit || info.CriticGradNorm > 10*s.cfg.GradLimit:
			return s.heal("gradient-blowup")
		case s.satSeen && s.emaSat > s.cfg.SaturationLimit:
			return s.heal("actor-saturation")
		}
	}

	s.healthy++
	if s.healthy >= s.cfg.SnapshotEvery {
		s.healthy = 0
		s.snap = s.agent.Snapshot()
		s.snapshots++
	}
	return nil
}

// heal rolls the agent back to the last-healthy snapshot with
// learning-rate and noise backoff, or — when the budget is exhausted —
// records the diagnosis and returns a *DivergenceError.
func (s *Supervisor) heal(reason string) error {
	s.heals++
	d := Diagnosis{
		Reason:         reason,
		Step:           s.steps,
		Heals:          s.heals,
		MeanAbsQ:       s.emaQ,
		GradNorm:       s.emaGrad,
		Saturation:     s.emaSat,
		MaxWeight:      s.lastMaxW,
		SkippedBatches: s.skippedSeen,
		QLimit:         s.cfg.QLimit,
		GradLimit:      s.cfg.GradLimit,
	}
	if s.heals > s.cfg.HealBudget {
		s.diag = &d
		return &DivergenceError{Diagnosis: d}
	}
	if err := s.agent.Restore(s.snap); err != nil {
		// A snapshot that no longer fits the agent is a programming error;
		// surface it instead of training on half-restored weights.
		s.diag = &d
		return fmt.Errorf("core: supervisor rollback: %w", err)
	}
	s.agent.ScaleLR(s.cfg.LRBackoff)
	s.lrScale *= s.cfg.LRBackoff
	s.agent.Noise.SetScale(s.agent.Noise.Scale() * s.cfg.NoiseBackoff)

	// Re-arm from a clean slate: the EMAs described the diverged
	// trajectory, not the restored one.
	s.emaInit = false
	s.satSeen = false
	s.emaQ, s.emaGrad, s.emaSat = 0, 0, 0
	s.consecNF = 0
	s.healthy = 0
	s.sinceHeal = 0
	return nil
}

// Diagnosis returns the recorded divergence post-mortem, or nil while the
// learner is healthy (or healed).
func (s *Supervisor) Diagnosis() *Diagnosis { return s.diag }
