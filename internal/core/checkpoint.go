package core

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"cdbtune/internal/nn"
	"cdbtune/internal/vfs"
)

// WriteAtomic writes a file atomically and durably (temp file + fsync +
// rename + directory fsync). It is nn.WriteAtomic re-exported under the
// name the training stack has always used.
func WriteAtomic(path string, write func(io.Writer) error) error {
	return nn.WriteAtomic(path, write)
}

// WriteFramed writes payload to w followed by the 8-byte integrity footer
// (4 magic bytes + the little-endian IEEE CRC32 of the payload) that
// checkpoints and registry entries end with. ReadFramed verifies and
// strips the footer before any decoding happens, so a truncated or
// bit-flipped file is rejected with a clear error instead of a gob decode
// failure (or, worse, silently plausible garbage).
func WriteFramed(w io.Writer, payload []byte, magic [4]byte) error {
	var footer [8]byte
	copy(footer[:4], magic[:])
	binary.LittleEndian.PutUint32(footer[4:], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(payload); err != nil {
		return err
	}
	_, err := w.Write(footer[:])
	return err
}

// ReadFramed verifies data's integrity footer against magic and returns
// the payload with the footer stripped. The name argument labels errors.
func ReadFramed(data []byte, magic [4]byte, name string) ([]byte, error) {
	if len(data) < 8 || !bytes.Equal(data[len(data)-8:len(data)-4], magic[:]) {
		return nil, fmt.Errorf("%s: missing integrity footer (truncated file, or written by an older version)", name)
	}
	payload := data[:len(data)-8]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, fmt.Errorf("%s: payload CRC %08x does not match footer %08x: file is corrupt", name, got, want)
	}
	return payload, nil
}

// Checkpointer periodically persists a training run so a killed process
// resumes instead of starting over: agent weights, the replay memory
// (§2.2.4 — the accumulated try-and-error history), the best-policy
// snapshot, the episode counter and the noise-annealing schedule. Writes
// are atomic (temp file + rename), so a crash mid-checkpoint leaves the
// previous checkpoint intact.
type Checkpointer struct {
	// Path is the checkpoint file.
	Path string
	// Every is the number of completed episodes between checkpoints;
	// values below 1 checkpoint after every episode.
	Every int
	// FS overrides the filesystem the checkpoint is written through (nil
	// means the production passthrough) — the crash-consistency harness's
	// injection seam.
	FS vfs.FS
}

func (c *Checkpointer) fsys() vfs.FS {
	if c.FS != nil {
		return c.FS
	}
	return vfs.OS
}

// WriteCheckpointPayload wraps payload in the checkpoint CRC frame and
// writes it atomically (and durably) at path through fsys. It is the
// exact disk path Checkpointer.save takes — exported so the
// crash-consistency harness can drive it without assembling a Tuner.
func WriteCheckpointPayload(fsys vfs.FS, path string, payload []byte) error {
	return nn.WriteAtomicFS(fsys, path, func(w io.Writer) error {
		return WriteFramed(w, payload, checkpointMagic)
	})
}

// ReadCheckpointPayload reads and CRC-verifies the checkpoint file at
// path through fsys, returning the payload with the frame stripped. A
// missing file is (nil, false, nil); a damaged one is an error.
func ReadCheckpointPayload(fsys vfs.FS, path string) ([]byte, bool, error) {
	data, err := fsys.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	payload, err := ReadFramed(data, checkpointMagic, "core: checkpoint "+path)
	if err != nil {
		return nil, false, err
	}
	return payload, true, nil
}

const checkpointVersion = 2

// checkpointMagic tags the 8-byte integrity footer every checkpoint ends
// with: 4 magic bytes + the little-endian IEEE CRC32 of the gob payload.
// Load verifies the footer before decoding a single byte, so a truncated
// or bit-flipped file is rejected with a clear error instead of a gob
// decode failure (or, worse, silently plausible garbage).
var checkpointMagic = [4]byte{'c', 'k', 'p', '2'}

// checkpointBlob is the on-disk format.
type checkpointBlob struct {
	Version        int
	Report         TrainReport // accumulated accounting at checkpoint time
	Iterations     int
	NoiseSigma     float64
	BestEval       float64
	BestActionPerf float64
	Agent          []byte
	Memory         []byte
	BestSnapshot   []byte
}

// persistentMemory is satisfied by every replay-pool flavor.
type persistentMemory interface {
	Save(io.Writer) error
	Load(io.Reader) error
}

// save captures the tuner's training state and writes it atomically. The
// trainer calls it from its accounting section, so rep is a consistent
// snapshot of completed-episode accounting; the agent state is captured
// under the agent lock. With a sharded replay pool and concurrent workers
// the memory snapshot is best-effort (transitions stored mid-snapshot may
// be missed) — acceptable for replay experience.
func (c *Checkpointer) save(t *Tuner, rep TrainReport) error {
	blob := checkpointBlob{Version: checkpointVersion, Report: rep}

	t.agentMu.Lock()
	var agentBuf bytes.Buffer
	err := t.agent.Save(&agentBuf)
	if err == nil {
		if pm, ok := t.agent.Memory.(persistentMemory); ok {
			var memBuf bytes.Buffer
			if err = pm.Save(&memBuf); err == nil {
				blob.Memory = memBuf.Bytes()
			}
		}
	}
	blob.Agent = agentBuf.Bytes()
	blob.NoiseSigma = t.agent.Noise.Scale()
	blob.BestEval = t.bestEval
	blob.BestActionPerf = t.bestActionPerf
	if t.bestSnapshot != nil {
		blob.BestSnapshot = append([]byte(nil), t.bestSnapshot...)
	}
	t.agentMu.Unlock()
	if err != nil {
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	blob.Iterations = t.Iterations()

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(blob); err != nil {
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	return WriteCheckpointPayload(c.fsys(), c.Path, buf.Bytes())
}

// Load restores a checkpoint into t: agent weights, replay memory, noise
// scale, iteration counter, and the best-policy snapshot. It returns the
// accounting accumulated up to the checkpoint and whether a checkpoint
// was found (a missing file is not an error — the run simply starts
// fresh).
func (c *Checkpointer) Load(t *Tuner) (TrainReport, bool, error) {
	payload, found, err := ReadCheckpointPayload(c.fsys(), c.Path)
	if err != nil || !found {
		return TrainReport{}, false, err
	}
	var blob checkpointBlob
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&blob); err != nil {
		return TrainReport{}, false, fmt.Errorf("core: decoding checkpoint %s: %w", c.Path, err)
	}
	if blob.Version != checkpointVersion {
		return TrainReport{}, false, fmt.Errorf("core: checkpoint %s has version %d, want %d", c.Path, blob.Version, checkpointVersion)
	}

	t.agentMu.Lock()
	err = t.agent.Load(bytes.NewReader(blob.Agent))
	if err == nil && len(blob.Memory) > 0 {
		if pm, ok := t.agent.Memory.(persistentMemory); ok {
			err = pm.Load(bytes.NewReader(blob.Memory))
		}
	}
	if err == nil {
		t.agent.Noise.SetScale(blob.NoiseSigma)
		t.bestEval = blob.BestEval
		t.bestActionPerf = blob.BestActionPerf
		t.bestSnapshot = nil
		if len(blob.BestSnapshot) > 0 {
			t.bestSnapshot = append([]byte(nil), blob.BestSnapshot...)
		}
	}
	t.agentMu.Unlock()
	if err != nil {
		return TrainReport{}, false, fmt.Errorf("core: restoring checkpoint: %w", err)
	}
	t.mu.Lock()
	t.iterations = blob.Iterations
	t.mu.Unlock()
	return blob.Report, true, nil
}
