package core

import (
	"context"
	"errors"
	"fmt"

	"cdbtune/internal/env"
	"cdbtune/internal/metrics"
	"cdbtune/internal/simdb"
	"cdbtune/internal/workload"
)

// DynamicEvent is one notable moment of a dynamic serving window:
// Kind is "drift" (detector fired), "retune" (guarded re-tune finished),
// "revert" (the guardrail or crash recovery put a known-good
// configuration back) or "crash" (the serving configuration crashed
// outside a re-tune).
type DynamicEvent struct {
	Kind     string
	Hour     float64
	Phase    string
	Distance float64
	EWMA     float64
	Detail   string
}

// String renders the event as one log line.
func (ev DynamicEvent) String() string {
	s := fmt.Sprintf("h%05.2f [%s] %s", ev.Hour, ev.Phase, ev.Kind)
	if ev.Kind == "drift" {
		s += fmt.Sprintf(" dist %.4f ewma %.4f", ev.Distance, ev.EWMA)
	}
	if ev.Detail != "" {
		s += "  " + ev.Detail
	}
	return s
}

// DynamicSample is one steady-state observation of the serving loop.
type DynamicSample struct {
	Hour  float64
	Phase string
	// Load is the timeline's instantaneous request-rate multiplier.
	Load float64
	Ext  metrics.External
	// Distance and EWMA are the drift detector's view of this sample.
	Distance float64
	EWMA     float64
}

// Retune records one drift-triggered guarded re-tune.
type Retune struct {
	// Hour and Phase locate the triggering drift on the timeline.
	Hour  float64
	Phase string
	// Seed labels the warm-start model the re-tune began from ("" =
	// in-place, continuing with the currently loaded weights).
	Seed string
	// Stale is the last measurement of the old configuration under the
	// drifted workload; Tuned the best measurement the re-tune achieved.
	// The two are directly comparable: same instance, same phase of the
	// timeline (modulo the simulated hours the re-tune itself consumed).
	Stale metrics.External
	Tuned metrics.External
	// Crashes/Reverts/Vetoes/SkippedSteps mirror TuneResult accounting.
	Crashes      int
	Reverts      int
	Vetoes       int
	SkippedSteps int
	// Seconds is the re-tune's virtual wall-clock cost.
	Seconds float64
}

// DynamicOptions configures ServeDynamic.
type DynamicOptions struct {
	// HorizonHours is how many simulated hours to serve; 0 serves one
	// full timeline cycle.
	HorizonHours float64
	// ObserveSec is the stress-test length of each steady-state
	// observation window (and of re-tune measurements); 0 means
	// simdb.ObserveSec. The full StressTestSec would burn simulated
	// hours per sample at typical time compression.
	ObserveSec float64
	// Drift configures the detector (zero values → calibrated defaults).
	Drift DriftConfig
	// Guard is the safety guardrail handed to every re-tune; nil builds
	// a fresh NewGuardrail(3, 0.05) for the window. The guardrail
	// persists across re-tunes, so near-crash regions learned during one
	// burst still screen recommendations during the next.
	Guard *Guardrail
	// ReTuneSteps is the online-tuning step budget per re-tune (0 = 3 —
	// deliberately below the paper's 5: a re-tune races the workload it
	// is adapting to); FineTune additionally updates the model on the
	// observed feedback.
	ReTuneSteps int
	FineTune    bool
	// WarmSeed, when non-nil, is consulted at each drift with the
	// drifted raw metric state (the input registry.Fingerprint expects —
	// it normalizes internally) and the current effective workload; it
	// may load a better-matching model into the tuner (the server wires
	// this to a registry nearest-neighbor lookup) and returns a label
	// for the event stream. Returning ok=false re-tunes in place with
	// the current weights.
	WarmSeed func(state []float64, w workload.Workload) (label string, ok bool)
	// OnSample/OnEvent/OnEpisode stream telemetry: every observation,
	// every notable event, and one EpisodeStats per re-tune.
	OnSample  func(DynamicSample)
	OnEvent   func(DynamicEvent)
	OnEpisode EpisodeHook
	// Ctx bounds the window; cancellation stops serving after the
	// current observation or re-tune and returns ctx's error with valid
	// partial accounting.
	Ctx context.Context
}

// DynamicReport summarizes a dynamic serving window.
type DynamicReport struct {
	Samples []DynamicSample
	Events  []DynamicEvent
	Retunes []Retune

	// Drifts counts detector firings; Reverts guardrail/crash-recovery
	// reverts; Vetoes near-crash screens; Crashes every crash observed
	// (inside and outside re-tunes). Unreverted counts crashes or
	// guardrail trips that could NOT be recovered to a known-good
	// configuration — zero is the safety acceptance bar.
	Drifts     int
	Reverts    int
	Vetoes     int
	Crashes    int
	Unreverted int

	// Final is the last successful measurement; Seconds the window's
	// virtual wall-clock cost; Hours the simulated hours served.
	Final   metrics.External
	Seconds float64
	Hours   float64
}

// MeanThroughput averages throughput over the window's steady samples.
func (r DynamicReport) MeanThroughput() float64 {
	if len(r.Samples) == 0 {
		return 0
	}
	var sum float64
	for _, s := range r.Samples {
		sum += s.Ext.Throughput
	}
	return sum / float64(len(r.Samples))
}

// ServeDynamic keeps a tuned instance healthy under a time-varying
// workload: it observes the streaming metric state in short windows,
// feeds each normalized state to a DriftDetector rebased on the
// post-tuning fingerprint, and when the smoothed fingerprint distance
// crosses the threshold it runs an in-place guarded re-tune
// (OnlineTuneCtx), optionally warm-seeded from a registry model via
// opts.WarmSeed. Crashes at the serving configuration revert to
// defaults and re-tune from there; the guardrail screens every re-tune
// recommendation and reverts after consecutive failures, so the
// instance never finishes a window on a crashing configuration.
//
// The environment must carry a workload.Timeline; its DurationSec is
// overridden to opts.ObserveSec for the duration of the window and
// restored on return. See the package doc for the detector's
// interaction with the Guardrail and Supervisor.
func (t *Tuner) ServeDynamic(e *env.Env, opts DynamicOptions) (DynamicReport, error) {
	var out DynamicReport
	if e.Timeline == nil {
		return out, errors.New("core: ServeDynamic requires an environment with a Timeline")
	}
	if opts.ObserveSec <= 0 {
		opts.ObserveSec = simdb.ObserveSec
	}
	if opts.ReTuneSteps <= 0 {
		opts.ReTuneSteps = 3
	}
	if opts.HorizonHours <= 0 {
		opts.HorizonHours = e.Timeline.TotalHours()
	}
	ctx := opts.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	guard := opts.Guard
	if guard == nil {
		guard = NewGuardrail(3, 0.05)
	}
	det := NewDriftDetector(opts.Drift)

	prevDur := e.DurationSec
	e.DurationSec = opts.ObserveSec
	defer func() { e.DurationSec = prevDur }()
	e.Bind(ctx)
	defer e.Bind(nil)

	start := e.Clock.Seconds()
	startHour := e.Hour()
	emit := func(ev DynamicEvent) {
		out.Events = append(out.Events, ev)
		if opts.OnEvent != nil {
			opts.OnEvent(ev)
		}
	}
	finish := func(err error) (DynamicReport, error) {
		out.Seconds = e.Clock.Seconds() - start
		out.Hours = e.Hour() - startHour
		return out, err
	}

	// Baseline: fingerprint the workload the current configuration was
	// tuned for.
	base, err := e.Measure()
	if err != nil {
		if errors.Is(err, simdb.ErrCrashed) {
			out.Crashes++
			if base, err = recoverEnv(e); err == nil {
				out.Reverts++
				emit(DynamicEvent{Kind: "revert", Hour: e.Hour(), Phase: e.PhaseName(), Detail: "baseline crash, recovered defaults"})
			}
		}
		if err != nil {
			return finish(fmt.Errorf("core: dynamic baseline measurement: %w", err))
		}
	}
	det.Rebase(metrics.Normalize(base.State))
	out.Final = base.Ext

	rebase := false // next good observation rebases instead of observing
	for e.Hour()-startHour < opts.HorizonHours {
		if err := ctx.Err(); err != nil {
			return finish(err)
		}
		res, err := e.Measure()
		if err != nil {
			switch {
			case errors.Is(err, simdb.ErrCrashed):
				// The serving configuration crashed under the workload the
				// timeline moved to. Recover to defaults (the revert of
				// last resort), rebase the detector there, and let the
				// next observations decide whether a re-tune is needed.
				out.Crashes++
				emit(DynamicEvent{Kind: "crash", Hour: e.Hour(), Phase: e.PhaseName(), Detail: "serving config crashed"})
				rec, rerr := recoverEnv(e)
				if rerr != nil {
					if errors.Is(rerr, context.Canceled) || errors.Is(rerr, context.DeadlineExceeded) {
						return finish(rerr)
					}
					out.Unreverted++
					return finish(fmt.Errorf("core: recovering crashed serving config: %w", rerr))
				}
				out.Reverts++
				emit(DynamicEvent{Kind: "revert", Hour: e.Hour(), Phase: e.PhaseName(), Detail: "recovered to defaults"})
				det.Rebase(metrics.Normalize(rec.State))
				out.Final = rec.Ext
				continue
			case benignFault(err):
				// Transient measurement failure out-ran the retries: skip
				// this window.
				continue
			default:
				return finish(err)
			}
		}
		state := metrics.Normalize(res.State)
		out.Final = res.Ext
		if rebase {
			det.Rebase(state)
			rebase = false
			continue
		}
		s := det.Observe(state)
		sample := DynamicSample{
			Hour: e.Hour(), Phase: e.PhaseName(),
			Load: e.Timeline.LoadAt(e.Hour()),
			Ext:  res.Ext, Distance: s.Distance, EWMA: s.EWMA,
		}
		out.Samples = append(out.Samples, sample)
		if opts.OnSample != nil {
			opts.OnSample(sample)
		}
		if !s.Drifted {
			continue
		}

		// Drift: the fingerprint has diverged from what the serving
		// configuration was tuned for.
		out.Drifts++
		driftHour, driftPhase := e.Hour(), e.PhaseName()
		emit(DynamicEvent{Kind: "drift", Hour: driftHour, Phase: driftPhase, Distance: s.Distance, EWMA: s.EWMA})

		seed := ""
		if opts.WarmSeed != nil {
			if label, ok := opts.WarmSeed(res.State, e.CurrentWorkload()); ok {
				seed = label
			}
		}
		tr, terr := t.OnlineTuneCtx(ctx, e, opts.ReTuneSteps, opts.FineTune, guard)
		e.Bind(ctx) // OnlineTuneCtx unbinds on return
		out.Crashes += tr.Crashes
		out.Reverts += tr.Reverts
		out.Vetoes += tr.Vetoes
		rt := Retune{
			Hour: driftHour, Phase: driftPhase, Seed: seed,
			Stale: res.Ext, Tuned: tr.BestPerf,
			Crashes: tr.Crashes, Reverts: tr.Reverts, Vetoes: tr.Vetoes,
			SkippedSteps: tr.SkippedSteps, Seconds: tr.Seconds,
		}
		out.Retunes = append(out.Retunes, rt)
		if tr.Reverts > 0 {
			emit(DynamicEvent{Kind: "revert", Hour: e.Hour(), Phase: e.PhaseName(),
				Detail: fmt.Sprintf("guardrail reverted %d time(s) during re-tune", tr.Reverts)})
		}
		emit(DynamicEvent{Kind: "retune", Hour: e.Hour(), Phase: e.PhaseName(),
			Detail: fmt.Sprintf("%.0f → %.0f tx/s in %d steps (seed %s)", rt.Stale.Throughput, rt.Tuned.Throughput, opts.ReTuneSteps, orDash(seed))})
		if opts.OnEpisode != nil {
			opts.OnEpisode(EpisodeStats{
				Episode: len(out.Retunes), Steps: opts.ReTuneSteps,
				Crashes: tr.Crashes, BestThroughput: tr.BestPerf.Throughput,
				VirtualSeconds: tr.Seconds,
				Phase:          driftPhase, Hour: driftHour,
				Drifts: out.Drifts, Retunes: len(out.Retunes),
				Reverts: out.Reverts, DriftEWMA: s.EWMA,
			})
		}
		if terr != nil {
			if errors.Is(terr, context.Canceled) || errors.Is(terr, context.DeadlineExceeded) {
				return finish(terr)
			}
			// A re-tune that failed outright left the instance on its
			// best-known configuration only if the final deploy worked;
			// verify with a measurement before deciding.
			if _, merr := e.Measure(); merr != nil {
				out.Unreverted++
				return finish(fmt.Errorf("core: re-tune failed and instance unhealthy: %w", terr))
			}
		}
		out.Final = tr.BestPerf
		rebase = true // fingerprint the re-tuned steady state next window
	}

	// The window must end on a healthy configuration: a final
	// measurement that crashes means a guardrail violation survived.
	fin, err := e.Measure()
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return finish(err)
		}
		if benignFault(err) {
			return finish(nil)
		}
		out.Unreverted++
		return finish(fmt.Errorf("core: dynamic window ended unhealthy: %w", err))
	}
	out.Final = fin.Ext
	return finish(nil)
}

func orDash(s string) string {
	if s == "" {
		return "in-place"
	}
	return s
}
