package core

import (
	"context"
	"fmt"
	"time"
)

// EpisodeStats is one per-episode training-telemetry record, emitted after
// every completed offline-training episode (serial or parallel). It is the
// observable heartbeat of the §5.1 try-and-error loop: schedulers watch
// NoiseSigma to confirm annealing, dashboards watch BestThroughput and the
// losses, and crash counts localize unstable knob regions.
type EpisodeStats struct {
	// Episode is the episode index handed to the EnvFactory; Worker is the
	// training worker (0-based) that ran it.
	Episode int
	Worker  int

	// Steps and Crashes count the episode's environment steps and crashed
	// steps.
	Steps   int
	Crashes int

	// BestThroughput is the best stress-test throughput the episode saw.
	BestThroughput float64

	// MeanReward averages the stored (scaled and clipped) rewards of the
	// episode's transitions, crash penalties included.
	MeanReward float64

	// CriticLoss and ActorLoss average the losses of the episode's
	// gradient updates; zero when no update ran (memory pool still
	// filling, or PolicyDelay skipped every actor update).
	CriticLoss float64
	ActorLoss  float64

	// NoiseSigma is the exploration scale after this episode's decay —
	// with W workers the schedule still decays once per completed episode,
	// matching serial training.
	NoiseSigma float64

	// VirtualSeconds is the episode's simulated wall-clock cost, including
	// its snapshot probe when one ran after the episode.
	VirtualSeconds float64

	// InferBatchMean is the cumulative mean number of action-selection
	// requests folded into one batched forward pass since training
	// started — the amortization the cross-worker inference batcher is
	// buying. It is 1 when batching is off (serial training, or
	// TrainOptions.InferBatch = 1).
	InferBatchMean float64

	// MemoryShards is the number of independently locked shards behind
	// the replay memory pool (1 = the single-lock pool; see
	// Config.MemoryShards).
	MemoryShards int

	// Transients and Retries count the episode environment's transient
	// measurement failures and the backoff retries that absorbed them
	// (snapshot-probe faults included); SkippedSteps counts steps that
	// produced no sample because a fault out-ran the retries.
	Transients   int
	Retries      int
	SkippedSteps int

	// Lost marks an episode abandoned early because its instance could
	// not be recovered.
	Lost bool

	// Heals and SkippedBatches are the learner-health supervisor's
	// cumulative rollback and discarded-batch counts at episode
	// completion; MeanAbsQ and CriticGradNorm its EMA health gauges.
	// All zero when the run is unsupervised.
	Heals          int
	SkippedBatches int
	MeanAbsQ       float64
	CriticGradNorm float64

	// Dynamic-serving fields, set only on records emitted by
	// ServeDynamic (one per drift-triggered re-tune): Phase and Hour
	// locate the triggering drift on the workload timeline, DriftEWMA is
	// the smoothed fingerprint distance that fired the detector, and
	// Drifts/Retunes/Reverts are the serving window's cumulative
	// counters at emission. Phase == "" on offline-training records.
	Phase     string
	Hour      float64
	DriftEWMA float64
	Drifts    int
	Retunes   int
	Reverts   int
}

// String renders the record as a compact single log line.
func (s EpisodeStats) String() string {
	line := fmt.Sprintf("ep %3d wk %d  best %8.1f tx/s  reward %+6.2f  closs %8.4f  aloss %+8.3f  sigma %.4f  crashes %d  batch %4.1f  %6.0f vsec",
		s.Episode, s.Worker, s.BestThroughput, s.MeanReward, s.CriticLoss, s.ActorLoss, s.NoiseSigma, s.Crashes, s.InferBatchMean, s.VirtualSeconds)
	if s.Transients > 0 || s.Retries > 0 || s.SkippedSteps > 0 {
		line += fmt.Sprintf("  faults %d/%d retries, %d skipped", s.Transients, s.Retries, s.SkippedSteps)
	}
	if s.Heals > 0 || s.SkippedBatches > 0 {
		line += fmt.Sprintf("  health %d heals, %d dropped batches, |Q| %.1f", s.Heals, s.SkippedBatches, s.MeanAbsQ)
	}
	if s.Lost {
		line += "  LOST"
	}
	if s.Phase != "" {
		line += fmt.Sprintf("  drift h%05.2f [%s] ewma %.4f (%d drifts, %d retunes, %d reverts)",
			s.Hour, s.Phase, s.DriftEWMA, s.Drifts, s.Retunes, s.Reverts)
	}
	return line
}

// EpisodeHook receives telemetry after each completed training episode.
// The trainer invokes it under its accounting lock, so calls are
// serialized in episode-completion order; keep the hook fast and do not
// call back into the Tuner from it.
type EpisodeHook func(EpisodeStats)

// TrainOptions configures OfflineTrainOpts beyond the episode budget.
type TrainOptions struct {
	// Episodes is the number of training episodes; Workers the number of
	// concurrent training environments (≤ 1 means serial).
	Episodes int
	Workers  int

	// ProbeEnv, when non-nil, builds the fresh environments used by
	// best-policy snapshot probes (Config.SnapshotEvery), keeping the
	// mkEnv contract at exactly one call per episode. When nil, probes
	// reuse mkEnv with the probed episode's index, so mkEnv sees that
	// index a second time.
	ProbeEnv EnvFactory

	// OnEpisode, when non-nil, receives a telemetry record after each
	// completed episode.
	OnEpisode EpisodeHook

	// InferBatch bounds how many in-flight action requests the
	// cross-worker inference batcher folds into one forward pass. 0 picks
	// the worker count; 1 disables batching (every worker takes the agent
	// lock for its own single-state pass); values above the worker count
	// are harmless. Batching only activates when Workers ≥ 2 — a serial
	// run always selects actions directly, preserving exact
	// serial-training determinism.
	InferBatch int

	// Checkpoint, when non-nil, periodically persists the run (atomic
	// temp-file + rename) so a killed training process can continue;
	// a final checkpoint is always written when the run ends cleanly.
	Checkpoint *Checkpointer

	// Resume restores Checkpoint's file (when present) before training
	// and continues from the recorded episode count: the resumed run's
	// report accounts for the restored episodes, so its totals match an
	// unkilled run's. With parallel workers, episodes in flight at the
	// kill re-run from scratch (mkEnv may see those indices twice).
	Resume bool

	// MaxWorkerRespawns bounds how many lost training workers the run
	// will replace before giving up (0 = default 8). Each loss re-queues
	// the interrupted episode and respawns the worker on the shared
	// annealing schedule.
	MaxWorkerRespawns int

	// Ctx, when non-nil, cancels the run: no new episode is handed out and
	// every worker's environment fails fast once the context is done. The
	// run drains promptly and returns the context's error with valid
	// partial accounting (episodes completed before cancellation are fully
	// reported). Nil means no external cancellation.
	Ctx context.Context

	// Deadline, when positive, bounds the run's real (not virtual)
	// wall-clock time: the run behaves as if Ctx had that timeout. Both
	// can be combined; whichever fires first stops the run.
	Deadline time.Duration

	// StallTimeout arms the stall watchdog: a worker that sits on one
	// environment step for longer than this (real time) is flagged —
	// TrainReport.Stalls increments and OnStall fires, once per stuck
	// step. The watchdog observes and reports; it never kills the worker
	// (the simulator is synchronous, so the step eventually returns —
	// combine with Deadline to bound the whole run). 0 disables.
	StallTimeout time.Duration

	// OnStall, when non-nil, is invoked from the watchdog goroutine each
	// time a worker is flagged as stalled. Keep it fast; it must not call
	// back into the Tuner.
	OnStall func(worker int, stuck time.Duration)

	// Supervisor configures learner-health supervision of the run
	// (divergence detection and auto-rollback; see SupervisorConfig). The
	// zero value supervises with defaults; set Supervisor.Disabled to
	// train unsupervised.
	Supervisor SupervisorConfig
}
