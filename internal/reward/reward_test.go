package reward

import (
	"math"
	"testing"
	"testing/quick"
)

func calcT(kind Kind) *Calc {
	// Throughput-only weighting isolates the throughput term.
	c := New(kind, 1, 0)
	c.Init(100, 50)
	return c
}

func TestNewValidatesCoefficients(t *testing.T) {
	for _, bad := range [][2]float64{{0.3, 0.3}, {-0.1, 1.1}, {0.8, 0.4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("CT=%v CL=%v should panic", bad[0], bad[1])
				}
			}()
			New(RFCDBTune, bad[0], bad[1])
		}()
	}
	New(RFCDBTune, 0.5, 0.5) // must not panic
}

func TestComputeBeforeInitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(RFCDBTune, 0.5, 0.5).Compute(1, 1)
}

func TestImprovementPositive(t *testing.T) {
	c := calcT(RFCDBTune)
	if r := c.Compute(120, 50); r <= 0 {
		t.Fatalf("20%% throughput gain reward = %v, want > 0", r)
	}
}

func TestRegressionNegative(t *testing.T) {
	c := calcT(RFCDBTune)
	if r := c.Compute(80, 50); r >= 0 {
		t.Fatalf("20%% throughput loss reward = %v, want < 0", r)
	}
}

func TestEq6Values(t *testing.T) {
	// First step after Init: prev == initial, so d0 == dt.
	c := calcT(RFCDBTune)
	// T: 100→110: d0 = dt = 0.1. r = ((1.1)²−1)·|1.1| = 0.21·1.1 = 0.231.
	if r := c.Compute(110, 50); math.Abs(r-0.231) > 1e-12 {
		t.Fatalf("reward = %v, want 0.231", r)
	}
	// T: 110→90: d0 = −0.1, dt = −0.1818…
	// r = −((1.1)²−1)·|1−dt| = −0.21·1.1818… = −0.2481…
	want := -0.21 * (1 + 20.0/110.0)
	if r := c.Compute(90, 50); math.Abs(r-want) > 1e-12 {
		t.Fatalf("reward = %v, want %v", r, want)
	}
}

func TestZeroingRule(t *testing.T) {
	// Above initial but below previous: positive branch with dt < 0 → 0
	// for RF-CDBTune, non-zero for RF-C.
	c := calcT(RFCDBTune)
	c.Compute(150, 50) // prev = 150
	if r := c.Compute(120, 50); r != 0 {
		t.Fatalf("RF-CDBTune reward = %v, want 0 (above init, below prev)", r)
	}
	cc := calcT(RFC)
	cc.Compute(150, 50)
	if r := cc.Compute(120, 50); r <= 0 {
		t.Fatalf("RF-C reward = %v, want > 0 (no zeroing rule)", r)
	}
}

func TestRFAOnlyPrevious(t *testing.T) {
	c := calcT(RFA)
	c.Compute(50, 50) // big drop; prev = 50
	// Now improve to 60: still below T0=100, but above previous. RF-A must
	// be positive, RF-CDBTune negative.
	if r := c.Compute(60, 50); r <= 0 {
		t.Fatalf("RF-A reward = %v, want > 0", r)
	}
	d := calcT(RFCDBTune)
	d.Compute(50, 50)
	if r := d.Compute(60, 50); r >= 0 {
		t.Fatalf("RF-CDBTune reward = %v, want < 0 (still below initial)", r)
	}
}

func TestRFBOnlyInitial(t *testing.T) {
	c := calcT(RFB)
	c.Compute(150, 50)
	// Drop to 120: still above initial; RF-B stays positive even though
	// the step regressed.
	if r := c.Compute(120, 50); r <= 0 {
		t.Fatalf("RF-B reward = %v, want > 0", r)
	}
}

func TestLatencyRewardSign(t *testing.T) {
	c := New(RFCDBTune, 0, 1)
	c.Init(100, 50)
	if r := c.Compute(100, 40); r <= 0 {
		t.Fatalf("latency improvement reward = %v, want > 0", r)
	}
	c2 := New(RFCDBTune, 0, 1)
	c2.Init(100, 50)
	if r := c2.Compute(100, 70); r >= 0 {
		t.Fatalf("latency regression reward = %v, want < 0", r)
	}
}

func TestCombinedWeights(t *testing.T) {
	// With CT=1 the latency change must not matter and vice versa.
	ct := New(RFCDBTune, 1, 0)
	ct.Init(100, 50)
	r1 := ct.Compute(120, 500) // latency 10x worse, ignored
	ct2 := New(RFCDBTune, 1, 0)
	ct2.Init(100, 50)
	r2 := ct2.Compute(120, 5)
	if r1 != r2 {
		t.Fatalf("CT=1 rewards differ with latency: %v vs %v", r1, r2)
	}
}

func TestCTSweepShiftsBalance(t *testing.T) {
	// Same observation, increasing CT: the throughput component dominates.
	// Observation: throughput better, latency worse.
	var prev float64 = math.Inf(-1)
	for _, ct := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		c := New(RFCDBTune, ct, 1-ct)
		c.Init(100, 50)
		r := c.Compute(130, 65)
		if r < prev {
			t.Fatalf("reward not monotone in CT: %v after %v", r, prev)
		}
		prev = r
	}
}

func TestCrashRewardConstant(t *testing.T) {
	if CrashReward != -100 {
		t.Fatalf("CrashReward = %v, want -100 (§5.2.3)", CrashReward)
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{RFCDBTune: "RF-CDBTune", RFA: "RF-A", RFB: "RF-B", RFC: "RF-C"}
	for k, want := range names {
		if k.String() != want {
			t.Fatalf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

// Property: strictly improving both metrics never yields negative reward,
// and strictly degrading both never yields positive reward, under every
// variant.
func TestRewardSignProperty(t *testing.T) {
	f := func(tGainRaw, lGainRaw uint8, kindRaw uint8) bool {
		kind := Kind(kindRaw % 4)
		gainT := 1 + float64(tGainRaw%50+1)/100
		gainL := 1 - float64(lGainRaw%50+1)/200
		c := New(kind, 0.5, 0.5)
		c.Init(100, 50)
		if c.Compute(100*gainT, 50*gainL) < 0 {
			return false
		}
		c2 := New(kind, 0.5, 0.5)
		c2.Init(100, 50)
		if c2.Compute(100/gainT, 50/gainL) > 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
